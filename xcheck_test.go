package dart

import (
	"sort"
	"testing"

	"dart/internal/audit"
	"dart/internal/iface"
	"dart/internal/minisip"
	"dart/internal/progs"
)

// xcheckCorpus is the differential gate's program set: every progs
// fixture, covering aborts, crashes (NULL, wild pointer, division),
// non-linear fallbacks, pointer-shape search, external environment
// inputs, library black boxes, and the solver-gate/cluster searches.
var xcheckCorpus = []struct {
	name, src, top string
	depth          int
}{
	{"section21", progs.Section21, "h", 0},
	{"section24", progs.Section24, "f", 0},
	{"section25-cast", progs.Section25Cast, "bar", 0},
	{"foobar", progs.Foobar, "foobar", 0},
	{"foobar-lib", progs.FoobarLib, "foobar", 0},
	{"ac-controller", progs.ACController, "ac_controller", 2},
	{"external-env", progs.ExternalEnv, "watch", 0},
	{"list-sum", progs.ListSum, "sum2", 0},
	{"div-by-zero", progs.DivByZero, "quotient", 0},
	{"null-chain", progs.NullChain, "walk", 0},
	{"straight-line", progs.StraightLineDeref, "poke", 0},
	{"clusters", progs.Clusters, "clusters", 0},
	{"solver-gate", progs.SolverGate, "gate", 0},
	{"filter", progs.Filter, "entry", 0},
}

// TestCompiledMatchesInterp is the differential gate: the compiled
// closure-threaded engine and the reference interpreter must produce
// byte-identical report signatures — bugs, coverage, completeness
// flags, resolved explain ledger, profile site counters, and (at one
// worker) the exact run/step/solver tallies — over the whole progs
// corpus at workers 1, 2, and 8.  The solve cache is disabled so the
// per-site counter plane is deterministic across worker counts.
func TestCompiledMatchesInterp(t *testing.T) {
	for _, tc := range xcheckCorpus {
		t.Run(tc.name, func(t *testing.T) {
			prog := compileT(t, tc.src)
			for _, workers := range []int{1, 2, 8} {
				var sigs [2]string
				for i, interp := range []bool{false, true} {
					rep, err := Run(prog, Options{
						Toplevel:       tc.top,
						Depth:          tc.depth,
						MaxRuns:        800,
						Seed:           3,
						Workers:        workers,
						SolveCacheCap:  -1,
						CollectProfile: true,
						CollectExplain: true,
						Interpreter:    interp,
					})
					if err != nil {
						t.Fatalf("workers=%d interp=%t: %v", workers, interp, err)
					}
					sigs[i] = rep.EngineSignature(prog.IR)
				}
				if sigs[0] != sigs[1] {
					t.Errorf("workers=%d: engines diverged\ncompiled:\n%s\ninterp:\n%s",
						workers, sigs[0], sigs[1])
				}
			}
		})
	}
}

// TestCompiledMatchesInterpMinisip runs the differential gate over the
// bundled minisip library audit: every candidate function, both
// engines, signatures compared entry by entry.
func TestCompiledMatchesInterpMinisip(t *testing.T) {
	progIR, sem, err := minisip.Compile()
	if err != nil {
		t.Fatalf("minisip compile: %v", err)
	}
	tops := iface.Candidates(sem)
	sort.Strings(tops)
	if len(tops) == 0 {
		t.Fatal("no audit candidates in minisip")
	}
	for _, workers := range []int{1, 2} {
		var sigs [2][]string
		for i, interp := range []bool{false, true} {
			res := audit.Run(progIR, audit.Options{
				Toplevels:      tops,
				Seed:           1,
				MaxRuns:        200,
				Workers:        workers,
				Jobs:           2,
				SolveCacheCap:  -1,
				CollectProfile: true,
				CollectExplain: true,
				Interpreter:    interp,
			})
			for _, e := range res.Entries {
				sig := e.Function + ": " + string(e.Status)
				if e.Report != nil {
					sig += "\n" + e.Report.EngineSignature(progIR)
				}
				sigs[i] = append(sigs[i], sig)
			}
		}
		if len(sigs[0]) != len(sigs[1]) {
			t.Fatalf("workers=%d: entry count mismatch: %d vs %d", workers, len(sigs[0]), len(sigs[1]))
		}
		for j := range sigs[0] {
			if sigs[0][j] != sigs[1][j] {
				t.Errorf("workers=%d: engines diverged on %s\ncompiled:\n%s\ninterp:\n%s",
					workers, tops[j], sigs[0][j], sigs[1][j])
			}
		}
	}
}
