package dart

// Incremental re-audit gate on the paper's flagship target: a warm
// audit of the unmodified miniSIP library — answered entirely by
// distilled-suite replay from the corpus — must reproduce the cold
// audit's verdict plane (per-function status, bug set, completeness
// flags, aggregate coverage) exactly, at every supported per-function
// worker count.  The progs-corpus half of this gate lives in
// internal/audit (TestAuditWarmMatchesCold).

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dart/internal/audit"
	"dart/internal/corpus"
	"dart/internal/iface"
	"dart/internal/minisip"
)

// sipSig renders the deterministic verdict plane of a miniSIP batch.
func sipSig(r *audit.Result) string {
	var out string
	for _, e := range r.Entries {
		out += fmt.Sprintf("%s status=%s retried=%v", e.Function, e.Status, e.Retried)
		if rep := e.Report; rep != nil {
			out += fmt.Sprintf(" runs=%d complete=%v linear=%v locs=%v solver=%v stopped=%q",
				rep.Runs, rep.Complete, rep.AllLinear, rep.AllLocsDefinite,
				rep.SolverComplete, rep.Stopped)
			var bugs []string
			for _, b := range rep.Bugs {
				bugs = append(bugs, fmt.Sprintf("%s|%s|run%d|%v", b.Kind, b.Msg, b.Run, b.Inputs))
			}
			sort.Strings(bugs)
			out += fmt.Sprintf(" bugs=%v", bugs)
		}
		out += "\n"
	}
	out += fmt.Sprintf("coverage %d/%d touched=%d\n",
		r.Coverage.Covered(), r.Coverage.Total(), r.Coverage.SitesTouched())
	return out
}

func TestIncrementalSIPWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full-library warm/cold audit")
	}
	prog, sem, err := minisip.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fns := iface.Candidates(sem)
	sort.Strings(fns)

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := corpus.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			opts := audit.Options{
				Toplevels: fns,
				Seed:      1,
				MaxRuns:   150,
				Workers:   workers,
				Corpus:    c,
			}
			cold := audit.Run(prog, opts)
			if cold.CorpusHits != 0 {
				t.Fatalf("cold run claims %d corpus hits", cold.CorpusHits)
			}
			if cold.CorpusStores == 0 {
				t.Fatal("cold run stored nothing")
			}
			warm := audit.Run(prog, opts)
			if got, want := sipSig(warm), sipSig(cold); got != want {
				t.Errorf("warm verdicts diverge from cold:\ncold:\n%swarm:\n%s", want, got)
			}
			if warm.CorpusHits != cold.CorpusStores {
				t.Errorf("warm hits = %d, want %d (every stored entry)",
					warm.CorpusHits, cold.CorpusStores)
			}
			if !reflect.DeepEqual(warm.Coverage, cold.Coverage) {
				t.Error("warm coverage set differs from cold")
			}
		})
	}
}
