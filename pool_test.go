package dart

import (
	"encoding/json"
	"fmt"
	"testing"

	"dart/internal/concolic"
	"dart/internal/obs"
	"dart/internal/progs"
)

// TestBugsSurvivePooledReuse proves that a Report's bugs hold no
// references into the pooled machine the search kept reusing after
// recording them: every Bug's input vector, replayed on a fresh
// machine, must still reproduce exactly the recorded failure.  If the
// Bug snapshot aliased the engine's live input map or the machine's
// Branches backing array, later runs of the same search would have
// rewritten it and the replay would miss.  scripts/check.sh runs this
// under -race at Workers 2, where the pooled machines are concurrently
// live across worker goroutines.
func TestBugsSurvivePooledReuse(t *testing.T) {
	src := `
int two_bugs(int a, int b) {
    if (a == 77) {
        int *p = 0;
        return *p;
    }
    if (b == 123) abort();
    return a + b;
}
`
	prog := compileT(t, src)
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := Options{Toplevel: "two_bugs", MaxRuns: 200, Seed: 13, Workers: workers}
			rep, err := Run(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Bugs) < 2 {
				t.Fatalf("expected both bugs, got %v", rep.Bugs)
			}
			for _, bug := range rep.Bugs {
				rerr, err := Replay(prog, opts, bug.Inputs)
				if err != nil {
					t.Fatalf("replay %v: %v", bug, err)
				}
				if rerr == nil {
					t.Fatalf("bug %v did not reproduce from its recorded inputs; "+
						"Inputs aliased pooled machine state?", bug)
				}
				if rerr.Outcome != bug.Kind || rerr.Msg != bug.Msg || rerr.Pos != bug.Pos {
					t.Errorf("bug %v replayed as [%s] %s at %s", bug, rerr.Outcome, rerr.Msg, rerr.Pos)
				}
			}
		})
	}
}

// TestConcreteSearchZeroShadowPhase pins the taint bitmap's
// pay-as-you-go contract at the search level: a program with no
// inputs at all executes fully concretely, so the compiled engine
// must record a zero shadow_eval phase count in the profile, while
// the reference interpreter — shadowing unconditionally — records a
// positive one on the same search.
func TestConcreteSearchZeroShadowPhase(t *testing.T) {
	src := `
int steady() {
    int s = 0;
    int i = 0;
    while (i < 20) {
        if (i % 3 == 0) s = s + i;
        i = i + 1;
    }
    return s;
}
`
	prog := compileT(t, src)
	shadowCount := func(interp bool) int64 {
		t.Helper()
		rep, err := Run(prog, Options{Toplevel: "steady", MaxRuns: 10, Seed: 1,
			CollectProfile: true, Interpreter: interp})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Profile == nil {
			t.Fatal("no profile collected")
		}
		for _, ph := range rep.Profile.Phases {
			if ph.Phase == obs.SpanShadow {
				return ph.Count
			}
		}
		return 0
	}
	if n := shadowCount(false); n != 0 {
		t.Errorf("compiled engine recorded %d shadow evals on an input-free program, want 0", n)
	}
	if n := shadowCount(true); n == 0 {
		t.Errorf("interpreter recorded 0 shadow evals; phase counter broken")
	}
}

// TestTaintSpreadExplainParity is the other half of the taint-bitmap
// contract: on a program whose inputs do spread taint through memory,
// skipping untainted shadow work must not change a single verdict in
// the coverage explainer's resolved ledger.  The compiled engine's
// ledger is compared byte-for-byte against the reference
// interpreter's (the PR 8 semantics).
func TestTaintSpreadExplainParity(t *testing.T) {
	for _, tc := range []struct {
		name, src, top string
		depth          int
	}{
		{"filter", progs.Filter, "entry", 0},
		{"ac-controller", progs.ACController, "ac_controller", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := compileT(t, tc.src)
			var ledgers [2]string
			for i, interp := range []bool{false, true} {
				rep, err := Run(prog, Options{Toplevel: tc.top, Depth: tc.depth,
					MaxRuns: 400, Seed: 8, CollectExplain: true, Interpreter: interp})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Explain == nil {
					t.Fatal("no explain ledger collected")
				}
				resolved := concolic.ResolveExplain(prog.IR, rep.Explain, rep.Coverage)
				js, err := json.Marshal(resolved)
				if err != nil {
					t.Fatal(err)
				}
				ledgers[i] = string(js)
			}
			if ledgers[0] != ledgers[1] {
				t.Errorf("explain ledgers diverge:\ncompiled: %s\ninterp:   %s", ledgers[0], ledgers[1])
			}
		})
	}
}
