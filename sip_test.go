package dart

import (
	"strings"
	"testing"
	"time"

	"dart/internal/audit"
	"dart/internal/minisip"
)

// TestSIPAudit mirrors Sec. 4.3: auditing every externally visible
// function of the SIP library with a 1000-run budget crashes a majority
// of them (the paper: 65% of ~600 oSIP functions), almost all through
// the same pattern — dereferencing pointer arguments without NULL checks.
func TestSIPAudit(t *testing.T) {
	prog, sem, err := minisip.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := minisip.Audit(prog, sem, 1, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("directed audit: %d/%d functions crashed (%.0f%%) in %d total runs",
		res.CrashedFunctions, res.TotalFunctions, 100*res.Fraction(), res.TotalRuns)
	if res.Fraction() < 0.5 {
		t.Errorf("expected a majority of functions to crash, got %.0f%%", 100*res.Fraction())
	}
	// Functions documented as fully guarded must never crash.
	for _, e := range res.Entries {
		switch e.Function {
		case "msg_validate", "uri_default_port", "uri_set_scheme", "list_size",
			"header_chain_len", "msg_from_port_safe", "parse_method_byte",
			"parse_packet_fixed", "uri_clear", "header_last", "msg_kind",
			"msg_set_status", "checksum_items", "uri_scheme_name_len",
			"header_set", "list_sum":
			if e.Crashed {
				t.Errorf("guarded function %s crashed", e.Function)
			}
		case "uri_init", "uri_get_scheme", "msg_init", "list_pop",
			"uri_user_first", "parse_body_offset":
			// parse_body_offset guards its pointer but trusts the caller-
			// supplied length, so out-of-bounds reads crash it.
			if !e.Crashed {
				t.Errorf("crashable function %s did not crash", e.Function)
			}
		}
	}
}

// TestSIPAuditSupervised runs the same audit under supervision: a
// 4-worker pool with a generous per-function deadline must reproduce
// the sequential results, and every entry must carry a status.
func TestSIPAuditSupervised(t *testing.T) {
	prog, sem, err := minisip.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := minisip.AuditSupervised(prog, sem, 1, 200, false, 2*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFunctions == 0 || len(res.Entries) != res.TotalFunctions {
		t.Fatalf("entries %d / functions %d: every function must be reported",
			len(res.Entries), res.TotalFunctions)
	}
	for _, e := range res.Entries {
		switch e.Status {
		case audit.OK, audit.Buggy, audit.TimedOut:
		default:
			t.Errorf("%s: unexpected status %q", e.Function, e.Status)
		}
	}
}

// TestAllocaVulnerability mirrors the paper's oSIP security finding: the
// packet parser passes its syntactic filters (magic framing, no NUL, no
// '|', minimum size) and then crashes on an unchecked alloca failure for
// oversized packets; random testing never even reaches the alloca because
// of the 2^-32 magic filter. The fixed parser survives the same search.
func TestAllocaVulnerability(t *testing.T) {
	prog, _, err := minisip.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{IR: prog}

	rep, err := Run(p, Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var crash *Bug
	for i := range rep.Bugs {
		if rep.Bugs[i].Kind == Crashed {
			crash = &rep.Bugs[i]
		}
	}
	if crash == nil {
		t.Fatalf("parser vulnerability not found in %d runs", rep.Runs)
	}
	if !strings.Contains(crash.Msg, "NULL pointer") {
		t.Errorf("expected a NULL write crash, got %q", crash.Msg)
	}
	in := crash.Inputs
	if in["d0.magic"] != 0x53495032 {
		t.Errorf("crash input does not satisfy the magic filter: %v", in)
	}
	if in["d0.first"] == 0 || in["d0.first"] == '|' {
		t.Errorf("crash input violates the content filter: %v", in)
	}
	if in["d0.len"] < 65536 {
		t.Errorf("crash requires an oversized packet, len=%d", in["d0.len"])
	}
	t.Logf("vulnerability: %v with inputs %v", crash, in)

	rnd, err := RandomTest(p, Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rnd.Bugs) != 0 {
		t.Errorf("random testing should not pass the magic filter, found %v", rnd.Bugs)
	}

	repFixed, err := Run(p, Options{Toplevel: "parse_packet_fixed", MaxRuns: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(repFixed.Bugs) != 0 {
		t.Errorf("fixed parser should survive, found %v", repFixed.Bugs)
	}
}
