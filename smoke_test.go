package dart

import "testing"

// TestSection21Intro reproduces the paper's introductory example: h is
// defective because f(x) == x+10 has the solution x = 10, which random
// testing essentially never finds but the directed search reaches by
// negating the second branch predicate.
func TestSection21Intro(t *testing.T) {
	src := `
int f(int x) { return 2 * x; }
int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort(); /* error */
    return 0;
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep, err := Run(prog, Options{Toplevel: "h", MaxRuns: 50, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("directed search found no bug in %d runs", rep.Runs)
	}
	if bug.Kind != Aborted {
		t.Fatalf("bug kind = %v, want abort", bug.Kind)
	}
	if rep.Runs > 10 {
		t.Errorf("directed search took %d runs; the paper finds it within a handful", rep.Runs)
	}
	t.Logf("found %v with inputs %v after %d runs", bug, bug.Inputs, bug.Run)

	// The interprocedural constraint 2*x0 == x0+10 must force x == 10.
	if x, ok := bug.Inputs["d0.x"]; !ok || x != 10 {
		t.Errorf("expected solved input x = 10, got inputs %v", bug.Inputs)
	}
}
