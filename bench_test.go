package dart

// Benchmarks regenerating the paper's tables and figures; each benchmark
// corresponds to one experiment of DESIGN.md's index and reports, besides
// Go's time/op, the number of program executions (runs/op) the search
// needed — the unit the paper's own tables use.  EXPERIMENTS.md records
// paper-vs-measured values.
//
// The multi-minute Fig. 10 depth-4 search (e7full) and the Lowe-fix
// comparison (e8) are exercised by cmd/dart-experiments instead of a
// benchmark; their single-shot cost (paper: 18 minutes) does not fit the
// benchmarking harness.

import (
	"fmt"
	"sort"
	"testing"

	"dart/internal/audit"
	"dart/internal/corpus"
	"dart/internal/iface"
	"dart/internal/minisip"
	"dart/internal/obs"
	"dart/internal/progs"
	"dart/internal/protocols"
)

func benchProgram(b *testing.B, src string) *Program {
	b.Helper()
	prog, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// reportSearch runs one directed search per iteration and reports its
// run count as a metric.
func benchDirected(b *testing.B, prog *Program, opts Options, wantBug bool) {
	b.Helper()
	var totalRuns int64
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		rep, err := Run(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		if wantBug && rep.FirstBug() == nil {
			b.Fatalf("iteration %d: bug not found in %d runs", i, rep.Runs)
		}
		if !wantBug && len(rep.Bugs) != 0 {
			b.Fatalf("iteration %d: unexpected bugs %v", i, rep.Bugs)
		}
		totalRuns += int64(rep.Runs)
	}
	b.ReportMetric(float64(totalRuns)/float64(b.N), "runs/op")
}

// BenchmarkE1IntroExample: Sec. 2.1 — directed search solves
// f(x) == x+10 (paper: a couple of runs).
func BenchmarkE1IntroExample(b *testing.B) {
	prog := benchProgram(b, progs.Section21)
	benchDirected(b, prog, Options{Toplevel: "h", MaxRuns: 100, StopAtFirstBug: true}, true)
}

// BenchmarkE2Completeness: Sec. 2.4 — proving the abort unreachable.
func BenchmarkE2Completeness(b *testing.B) {
	prog := benchProgram(b, progs.Section24)
	benchDirected(b, prog, Options{Toplevel: "f", MaxRuns: 100}, false)
}

// BenchmarkE3PointerCast: Sec. 2.5 — solving a->c == 0 through the
// char* alias.
func BenchmarkE3PointerCast(b *testing.B) {
	prog := benchProgram(b, progs.Section25Cast)
	benchDirected(b, prog, Options{Toplevel: "bar", MaxRuns: 200, StopAtFirstBug: true}, true)
}

// BenchmarkE4Foobar: Sec. 2.5 — graceful degradation on non-linear
// conditions (abort found with probability ~1/2 per restart; the bench
// uses a run budget that makes discovery near-certain).
func BenchmarkE4Foobar(b *testing.B) {
	prog := benchProgram(b, progs.Foobar)
	var totalRuns int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(prog, Options{Toplevel: "foobar", MaxRuns: 200, Seed: int64(i + 1), StopAtFirstBug: true})
		if err != nil {
			b.Fatal(err)
		}
		totalRuns += int64(rep.Runs)
	}
	b.ReportMetric(float64(totalRuns)/float64(b.N), "runs/op")
}

// BenchmarkACControllerDepth1: Sec. 4.1 row 1 — exhaustive sweep
// (paper: 6 iterations, <1s).
func BenchmarkACControllerDepth1(b *testing.B) {
	prog := benchProgram(b, progs.ACController)
	benchDirected(b, prog, Options{Toplevel: "ac_controller", Depth: 1, MaxRuns: 2000}, false)
}

// BenchmarkACControllerDepth2: Sec. 4.1 row 2 — the (3, 0) violation
// (paper: 7 iterations, <1s).
func BenchmarkACControllerDepth2(b *testing.B) {
	prog := benchProgram(b, progs.ACController)
	benchDirected(b, prog, Options{Toplevel: "ac_controller", Depth: 2, MaxRuns: 2000, StopAtFirstBug: true}, true)
}

// BenchmarkACControllerRandomBaseline: the random-search column of
// Sec. 4.1 at a fixed 10k-run budget (finds nothing).
func BenchmarkACControllerRandomBaseline(b *testing.B) {
	prog := benchProgram(b, progs.ACController)
	for i := 0; i < b.N; i++ {
		rep, err := RandomTest(prog, Options{Toplevel: "ac_controller", Depth: 2, MaxRuns: 10000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Bugs) != 0 {
			b.Fatal("random search got impossibly lucky")
		}
	}
}

// BenchmarkNSPossibilisticDepth1: Fig. 9 row 1 (paper: 69 runs).
func BenchmarkNSPossibilisticDepth1(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.Possibilistic, protocols.NoFix))
	benchDirected(b, prog, Options{Toplevel: protocols.Toplevel, Depth: 1, MaxRuns: 20000}, false)
}

// BenchmarkNSPossibilisticDepth2: Fig. 9 row 2 — the projected attack
// (paper: 664 runs, 2s).
func BenchmarkNSPossibilisticDepth2(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.Possibilistic, protocols.NoFix))
	benchDirected(b, prog, Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 50000, StopAtFirstBug: true}, true)
}

// BenchmarkNSDolevYaoDepth1: Fig. 10 row 1 (paper: 5 runs).
func BenchmarkNSDolevYaoDepth1(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix))
	benchDirected(b, prog, Options{Toplevel: protocols.Toplevel, Depth: 1, MaxRuns: 50000}, false)
}

// BenchmarkNSDolevYaoDepth2: Fig. 10 row 2 (paper: 85 runs).
func BenchmarkNSDolevYaoDepth2(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix))
	benchDirected(b, prog, Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 50000}, false)
}

// BenchmarkNSDolevYaoDepth3: Fig. 10 row 3 (paper: 6260 runs, 22s).
// The exhaustive sweep takes ~10s per iteration.
func BenchmarkNSDolevYaoDepth3(b *testing.B) {
	if testing.Short() {
		b.Skip("exhaustive depth-3 sweep")
	}
	prog := benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix))
	benchDirected(b, prog, Options{Toplevel: protocols.Toplevel, Depth: 3, MaxRuns: 300000}, false)
}

// BenchmarkSIPAudit: Sec. 4.3 — the whole-library audit at a reduced
// 100-run budget per function (the full 1000-run audit is exercised by
// cmd/dart-experiments -exp e9 and the tests).
func BenchmarkSIPAudit(b *testing.B) {
	prog, sem, err := minisip.Compile()
	if err != nil {
		b.Fatal(err)
	}
	var crashedPct float64
	for i := 0; i < b.N; i++ {
		res, err := minisip.Audit(prog, sem, int64(i+1), 100, false)
		if err != nil {
			b.Fatal(err)
		}
		crashedPct = 100 * res.Fraction()
	}
	b.ReportMetric(crashedPct, "%crashed")
}

// BenchmarkE10AllocaVulnerability: Sec. 4.3 — deriving the oversized
// packet that defeats the parser's filters.
func BenchmarkE10AllocaVulnerability(b *testing.B) {
	prog, _, err := minisip.Compile()
	if err != nil {
		b.Fatal(err)
	}
	p := &Program{IR: prog}
	var totalRuns int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(p, Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: int64(i + 1), StopAtFirstBug: true})
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, bug := range rep.Bugs {
			if bug.Kind == Crashed {
				found = true
			}
		}
		if !found {
			b.Fatalf("iteration %d: vulnerability not found", i)
		}
		totalRuns += int64(rep.Runs)
	}
	b.ReportMetric(float64(totalRuns)/float64(b.N), "runs/op")
}

// BenchmarkStrategies: ablation A1 — branch-selection strategy on the
// AC-controller violation.
func BenchmarkStrategies(b *testing.B) {
	prog := benchProgram(b, progs.ACController)
	for _, s := range []Strategy{DFS, BFS, RandomBranch} {
		b.Run(s.String(), func(b *testing.B) {
			var totalRuns int64
			for i := 0; i < b.N; i++ {
				rep, err := Run(prog, Options{
					Toplevel: "ac_controller", Depth: 2, MaxRuns: 5000,
					Seed: int64(i + 1), Strategy: s, StopAtFirstBug: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.FirstBug() == nil {
					b.Fatalf("strategy %v missed the violation", s)
				}
				totalRuns += int64(rep.Runs)
			}
			b.ReportMetric(float64(totalRuns)/float64(b.N), "runs/op")
		})
	}
}

// BenchmarkCoverageCurve: ablation A2 — branch coverage reached by a
// 50-run budget, directed vs random, on the input-filter program.
func BenchmarkCoverageCurve(b *testing.B) {
	prog := benchProgram(b, progs.Filter)
	b.Run("directed", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			rep, err := Run(prog, Options{Toplevel: "entry", MaxRuns: 50, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			cov = rep.Coverage.Fraction()
		}
		b.ReportMetric(100*cov, "%coverage")
	})
	b.Run("random", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			rep, err := RandomTest(prog, Options{Toplevel: "entry", MaxRuns: 50, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			cov = rep.Coverage.Fraction()
		}
		b.ReportMetric(100*cov, "%coverage")
	})
}

// BenchmarkShapeSearchAblation: design-choice ablation — systematic
// pointer-shape search vs the paper's coin-toss-only shapes, on a
// straight-line dereference with no NULL-check branch (so the paper's
// search has no predicate to flip).  The systematic search always finds
// the NULL crash by its second run; the coin-toss variant executes the
// single branch-free path, concludes the tree is exhausted, and stops —
// finding the crash only when its first coin lands on NULL (~50%).
func BenchmarkShapeSearchAblation(b *testing.B) {
	prog := benchProgram(b, progs.StraightLineDeref)
	for _, v := range []struct {
		name    string
		disable bool
	}{{"systematic", false}, {"coin-toss", true}} {
		b.Run(v.name, func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				rep, err := Run(prog, Options{
					Toplevel: "poke", MaxRuns: 2, Seed: int64(i + 1),
					StopAtFirstBug: true, DisableShapeSearch: v.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.FirstBug() != nil {
					found++
				}
			}
			b.ReportMetric(100*float64(found)/float64(b.N), "%found")
		})
	}
}

// BenchmarkSolverHeavyGate: the solver fast path on the cache workload —
// a gauntlet of sequential conditionals whose flips reduce, after
// independence slicing, to a handful of distinct (slice, hint) keys.
// Besides time/op it reports the solver work units actually spent
// (cache hits spend none) and the solver call count; the cache/nocache
// pair is the A/B the -solve-cache flag exposes.
func BenchmarkSolverHeavyGate(b *testing.B) {
	prog := benchProgram(b, progs.SolverGate)
	for _, v := range []struct {
		name string
		cap  int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(v.name, func(b *testing.B) {
			var work, calls int64
			for i := 0; i < b.N; i++ {
				rep, err := Run(prog, Options{
					Toplevel: "gate", MaxRuns: 300, Seed: int64(i + 1),
					SolveCacheCap: v.cap, CollectMetrics: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				work += rep.Metrics.Histograms[obs.HSolverWork].Sum
				calls += int64(rep.SolverCalls)
			}
			b.ReportMetric(float64(work)/float64(b.N), "solverwork/op")
			b.ReportMetric(float64(calls)/float64(b.N), "solvercalls/op")
		})
	}
}

// BenchmarkMachineThroughput: raw concolic-execution speed — one full
// depth-2 Dolev-Yao sweep (1228 runs) per iteration, reporting runs per
// second (the paper's search did ~300 runs/s on 2005 hardware).  The
// compiled/interp split is the PR 9 engine A/B: identical search (the
// differential gate proves the reports byte-identical), only the
// execution engine differs.  The BENCH_pr9.json gate requires compiled
// ≥2× the BENCH_pr7 baseline with allocs/op down ≥10×.
func BenchmarkMachineThroughput(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix))
	for _, v := range []struct {
		name   string
		interp bool
	}{{"compiled", false}, {"interp", true}} {
		b.Run(v.name, func(b *testing.B) {
			var runs, steps int64
			for i := 0; i < b.N; i++ {
				rep, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 2,
					MaxRuns: 5000, Seed: int64(i + 1), Interpreter: v.interp})
				if err != nil {
					b.Fatal(err)
				}
				runs += int64(rep.Runs)
				steps += rep.Steps
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
			b.ReportMetric(float64(steps)/float64(runs), "instructions/run")
		})
	}
}

// BenchmarkProfileOverhead: the profiler's cost discipline as a direct
// A/B.  "off" is the default path — a nil *obs.Profile whose methods
// are no-ops and which reads no clock, so it must stay within noise of
// a build that predates the profiler (the BENCH_pr7.json gate, <2% on
// per-side minimums).  "on" prices what span-attributed timing costs
// when asked for; it is allowed to be slower, it just has to be honest
// about it.  The machine-heavy workload maximises spans per second and
// is therefore the worst case for both sides.
func BenchmarkProfileOverhead(b *testing.B) {
	prog := benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix))
	for _, v := range []struct {
		name    string
		collect bool
	}{{"off", false}, {"on", true}} {
		b.Run(v.name, func(b *testing.B) {
			var runs int64
			for i := 0; i < b.N; i++ {
				rep, err := Run(prog, Options{
					Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 5000,
					Seed: int64(i + 1), CollectProfile: v.collect,
				})
				if err != nil {
					b.Fatal(err)
				}
				if v.collect && rep.Profile == nil {
					b.Fatal("profiled run returned no profile")
				}
				runs += int64(rep.Runs)
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkWorkerScaling: the parallel frontier's scaling curve over a
// machine-heavy workload (a depth-2 Dolev-Yao sweep: thousands of
// concrete executions, cheap solves) and a solver-heavy one (the
// SolverGate gauntlet: most of the time inside the solver fast path).
// BFS puts every worker count on the same frontier scheduler, so each
// sub-benchmark performs the same logical search and time/op isolates
// the pool's effect.  runs/op must not drift across worker counts (the
// determinism contract); speedup is bounded by available cores — on a
// single-CPU container expect a flat curve, and the interesting gate is
// that workers=2..8 stay within the coordination-overhead noise of
// workers=1 rather than behind it.
func BenchmarkWorkerScaling(b *testing.B) {
	workloads := []struct {
		name string
		prog *Program
		opts Options
	}{
		{"machine", benchProgram(b, protocols.Source(protocols.DolevYao, protocols.NoFix)),
			Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 5000, Strategy: BFS}},
		{"solver", benchProgram(b, progs.SolverGate),
			Options{Toplevel: "gate", MaxRuns: 300, Strategy: BFS}},
	}
	for _, wl := range workloads {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				var runs int64
				for i := 0; i < b.N; i++ {
					opts := wl.opts
					opts.Seed = int64(i + 1)
					opts.Workers = workers
					rep, err := Run(wl.prog, opts)
					if err != nil {
						b.Fatal(err)
					}
					runs += int64(rep.Runs)
				}
				b.ReportMetric(float64(runs)/float64(b.N), "runs/op")
			})
		}
	}
}

// BenchmarkCompile: front-end cost over the largest source (minisip).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(minisip.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalReaudit: the incremental re-audit cold/warm A/B
// on the paper's flagship target.  cold audits the full miniSIP
// library into a fresh corpus — search, set-cover distillation, entry
// store.  warm re-audits the unchanged library from a populated corpus
// — IR hash check, distilled-suite replay, bug-fixture validation.
// The 1000-run budget is the paper's own (Sec. 4.3); replay cost is
// proportional to the distilled suite, not the search budget, which is
// the point of distillation.  Gate (BENCH_pr10.json): warm ns/op at
// least 10x below cold; verdict equality itself is
// TestIncrementalSIPWarmMatchesCold's job.
func BenchmarkIncrementalReaudit(b *testing.B) {
	prog, sem, err := minisip.Compile()
	if err != nil {
		b.Fatal(err)
	}
	fns := iface.Candidates(sem)
	sort.Strings(fns)
	newOpts := func(c *corpus.Corpus) audit.Options {
		return audit.Options{Toplevels: fns, Seed: 1, MaxRuns: 1000, Corpus: c}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := corpus.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if res := audit.Run(prog, newOpts(c)); res.CorpusHits != 0 {
				b.Fatal("cold run hit the corpus")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c, err := corpus.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		seed := audit.Run(prog, newOpts(c))
		if seed.CorpusStores == 0 {
			b.Fatal("seeding run stored nothing")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := audit.Run(prog, newOpts(c)); res.CorpusHits != seed.CorpusStores {
				b.Fatalf("warm run hit %d of %d entries", res.CorpusHits, seed.CorpusStores)
			}
		}
	})
}
