// Auditing a SIP library function-by-function (the paper's Sec. 4.3 oSIP
// experiment): every externally visible function becomes the toplevel in
// turn, with a 1000-run budget, and crashes are tallied.  The paper found
// ways to crash 65% of oSIP's ~600 functions this way — almost all by
// passing NULL where the function expected a valid pointer — plus a
// remotely triggerable parser crash through an unchecked alloca().
//
// Run with:
//
//	go run ./examples/sipaudit
package main

import (
	"fmt"
	"log"

	"dart"
	"dart/internal/minisip"
)

func main() {
	prog, sem, err := minisip.Compile()
	if err != nil {
		log.Fatal(err)
	}

	res, err := minisip.Audit(prog, sem, 1, 1000, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audited %d externally visible functions, 1000-run budget each\n", res.TotalFunctions)
	fmt.Printf("crashed: %d (%.0f%%)   [paper: 65%% of ~600 oSIP functions]\n\n",
		res.CrashedFunctions, 100*res.Fraction())
	fmt.Printf("%-24s %-10s %s\n", "function", "crashed", "first crashing run")
	for _, e := range res.Entries {
		mark, first := "-", "-"
		if e.Crashed {
			mark = "CRASH"
			first = fmt.Sprint(e.FirstCrashRun)
		}
		fmt.Printf("%-24s %-10s %s\n", e.Function, mark, first)
	}

	// The security vulnerability: the parser copies packets into
	// alloca()d stack space without checking for allocation failure, so
	// an oversized packet that passes the syntactic filters crashes it.
	fmt.Println("\n--- parser vulnerability (unchecked alloca) ---")
	p := &dart.Program{IR: prog}
	rep, err := dart.Run(p, dart.Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range rep.Bugs {
		if b.Kind == dart.Crashed {
			fmt.Printf("found: %s\n", b.Msg)
			fmt.Printf("attack packet: magic=0x%x first-byte=%d length=%d cells\n",
				b.Inputs["d0.magic"], b.Inputs["d0.first"], b.Inputs["d0.len"])
			fmt.Println("(the filters demand correct framing, no NUL/'|' bytes, and a")
			fmt.Println(" minimum size; the crash additionally needs length > the 65536-cell")
			fmt.Println(" stack limit — the analogue of the paper's >2.5 MB SIP message)")
		}
	}
	fixed, err := dart.Run(p, dart.Options{Toplevel: "parse_packet_fixed", MaxRuns: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parse_packet_fixed (the oSIP 2.2.0 repair): %d bugs found\n", len(fixed.Bugs))
}
