// The AC-controller example of the paper's Sec. 4.1 (Fig. 6): a reactive
// controller whose assertion can only fail across *two* successive
// messages — close the door (3) while the room is cold, then heat the
// room (0).  At depth 1 DART proves the controller safe by sweeping all
// execution paths; at depth 2 it finds the two-message counterexample,
// which pure random testing (one chance in 2^64) never does.
//
// Run with:
//
//	go run ./examples/acontroller
package main

import (
	"fmt"
	"log"

	"dart"
	"dart/internal/progs"
)

func main() {
	prog, err := dart.Compile(progs.ACController)
	if err != nil {
		log.Fatal(err)
	}

	for depth := 1; depth <= 2; depth++ {
		rep, err := dart.Run(prog, dart.Options{
			Toplevel:       "ac_controller",
			Depth:          depth,
			Seed:           1,
			MaxRuns:        2000,
			StopAtFirstBug: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("depth %d: ", depth)
		switch {
		case rep.FirstBug() != nil:
			b := rep.FirstBug()
			fmt.Printf("assertion violation after %d runs\n", rep.Runs)
			fmt.Printf("  message sequence: %d then %d\n", b.Inputs["d0.message"], b.Inputs["d1.message"])
			fmt.Println("  (close the door while cold, then mark the room hot: AC stays off)")
		case rep.Complete:
			fmt.Printf("no error; every feasible path explored in %d runs\n", rep.Runs)
		default:
			fmt.Printf("no error found in %d runs (search incomplete)\n", rep.Runs)
		}
	}

	// The same search, but purely random: the filter values 0..3 are
	// four points in a 2^32 input space, so random testing rarely even
	// reaches the controller's core logic.
	rnd, err := dart.RandomTest(prog, dart.Options{
		Toplevel: "ac_controller", Depth: 2, Seed: 1, MaxRuns: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random baseline at depth 2: %d bugs in %d runs\n", len(rnd.Bugs), rnd.Runs)
}
