// Finding Lowe's attack on the Needham-Schroeder public-key protocol
// (the paper's Sec. 4.2).
//
// The protocol implementation simulates initiator A and responder B in
// one process, driven by input messages.  Under the *possibilistic*
// intruder (the most general environment), DART finds the projection of
// Lowe's attack at depth 2 in seconds: the path constraint lets it
// "guess" B's nonce, which is exactly the paper's observation about that
// environment model.  Under the Dolev-Yao intruder the attack needs the
// full six-step exchange (input depth 4, the paper's 18-minute search);
// this example runs the fast depths and prints how to launch the full
// one.
//
// Run with:
//
//	go run ./examples/needham
package main

import (
	"fmt"
	"log"

	"dart"
	"dart/internal/protocols"
)

func main() {
	fmt.Println("--- possibilistic intruder (most general environment) ---")
	poss, err := dart.Compile(protocols.Source(protocols.Possibilistic, protocols.NoFix))
	if err != nil {
		log.Fatal(err)
	}
	for depth := 1; depth <= 2; depth++ {
		rep, err := dart.Run(poss, dart.Options{
			Toplevel: protocols.Toplevel, Depth: depth, Seed: 1,
			MaxRuns: 50000, StopAtFirstBug: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if b := rep.FirstBug(); b != nil {
			fmt.Printf("depth %d: ATTACK after %d runs (paper: 664)\n", depth, rep.Runs)
			fmt.Printf("  msg1 to B: {nonce=%d, sender=A}Kb\n", b.Inputs["d0.n1"])
			fmt.Printf("  msg3 to B: {nonce=%d}Kb  <- the 'guessed' Nb\n", b.Inputs["d1.n1"])
		} else {
			fmt.Printf("depth %d: no attack, %d runs (paper: 69; complete=%v)\n", depth, rep.Runs, rep.Complete)
		}
	}

	fmt.Println()
	fmt.Println("--- Dolev-Yao intruder (decrypt-own, replay, compose) ---")
	dy, err := dart.Compile(protocols.Source(protocols.DolevYao, protocols.NoFix))
	if err != nil {
		log.Fatal(err)
	}
	for depth := 1; depth <= 2; depth++ {
		rep, err := dart.Run(dy, dart.Options{
			Toplevel: protocols.Toplevel, Depth: depth, Seed: 1, MaxRuns: 50000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("depth %d: no attack, %d runs (complete=%v)\n", depth, rep.Runs, rep.Complete)
	}
	fmt.Println()
	fmt.Println("the full Lowe attack appears at depth 4 (paper: 328459 runs, 18 min);")
	fmt.Println("reproduce it with:  go run ./cmd/dart-experiments -exp e7full")
}
