// Quickstart: test a tiny MiniC program with DART and inspect the result.
//
// The program under test is the paper's introductory example (Sec. 2.1):
// h aborts when f(x) == x+10, i.e. when x == 10 — a needle random
// testing essentially never finds in the 2^32-value input space, and the
// directed search derives in two runs by negating the branch predicate
// 2*x0 != x0 + 10 and solving.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dart"
)

const src = `
int f(int x) { return 2 * x; }

int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort(); /* error */
    return 0;
}
`

func main() {
	// 1. Compile the program: parse, type-check, lower to the RAM machine.
	prog, err := dart.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the automatically extracted interface (technique 1 of
	// the paper): the inputs of h are its two int parameters.
	in, err := dart.ExtractInterface(prog, "h")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(in)

	// 3. Run the directed search (techniques 2+3): random driver plus
	// concolic path exploration.
	rep, err := dart.Run(prog, dart.Options{
		Toplevel:       "h",
		Seed:           1,
		MaxRuns:        100,
		StopAtFirstBug: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndirected search: %d runs, %d solver calls\n", rep.Runs, rep.SolverCalls)
	if bug := rep.FirstBug(); bug != nil {
		fmt.Printf("found %v\n", bug)
		fmt.Printf("triggering inputs: x=%d y=%d\n", bug.Inputs["d0.x"], bug.Inputs["d0.y"])
	}

	// 4. Compare with the pure-random baseline on the same budget.
	rnd, err := dart.RandomTest(prog, dart.Options{Toplevel: "h", Seed: 1, MaxRuns: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom baseline: %d runs, %d bugs found (expected 0: the\n", rnd.Runs, len(rnd.Bugs))
	fmt.Println("needle x == 10 has probability 2^-32 per run)")
}
