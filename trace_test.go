package dart

// Golden-trace test: the NDJSON trace of a fixed-seed search is part of
// the tool's observable contract — events carry only deterministic
// payloads, so the byte stream must reproduce exactly.  Regenerate with
//
//	go test -run TestTraceGolden -update .

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dart/internal/progs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceE1 runs the Sec. 2.1 introductory example with seed 1 and
// returns its NDJSON trace.
func traceE1(t *testing.T) []byte {
	t.Helper()
	prog, err := Compile(progs.Section21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = Run(prog, Options{
		Toplevel:       "h",
		MaxRuns:        50,
		Seed:           1,
		StopAtFirstBug: true,
		Observer:       NewNDJSONSink(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceGoldenE1Intro(t *testing.T) {
	got := traceE1(t)
	golden := filepath.Join("testdata", "trace_e1intro.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace diverged from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceReplayByteIdentical(t *testing.T) {
	a, b := traceE1(t), traceE1(t)
	if !bytes.Equal(a, b) {
		t.Errorf("same program + same seed must trace byte-identically\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
