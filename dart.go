// Package dart is a Go implementation of DART — Directed Automated
// Random Testing (Godefroid, Klarlund, Sen; PLDI 2005) — for programs
// written in MiniC, a C subset with pointers, structs, arrays, and
// external interfaces.
//
// DART tests a program with no hand-written harness by combining three
// techniques:
//
//  1. interface extraction: the program's inputs are the arguments of a
//     chosen toplevel function, its extern variables, and the return
//     values of its extern functions (Interface);
//  2. an automatically generated random test driver that initializes
//     every input (pointers become NULL or fresh heap objects with
//     probability 1/2 each, recursively); and
//  3. a directed search: each run executes concretely and symbolically
//     at once, collecting a path constraint over the inputs; negating a
//     branch predicate and solving yields inputs that steer the next run
//     down a new path, sweeping the program's execution tree.
//
// Basic use:
//
//	prog, err := dart.Compile(src)
//	rep, err := dart.Run(prog, dart.Options{Toplevel: "h"})
//	if bug := rep.FirstBug(); bug != nil { ... }
//
// Run reports program crashes (segmentation faults, division by zero),
// abort() reachability and assertion violations, and optionally
// non-termination (step-budget exhaustion).  If the search terminates
// with Report.Complete, every feasible execution path was exercised and
// the program is error-free for the checked classes (Theorem 1 of the
// paper).  RandomTest provides the pure random-testing baseline the
// paper compares against.
package dart

import (
	"fmt"
	"io"

	"dart/internal/audit"
	"dart/internal/concolic"
	"dart/internal/corpus"
	"dart/internal/coverage"
	"dart/internal/iface"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/minisip"
	"dart/internal/obs"
	"dart/internal/ops"
	"dart/internal/parser"
	"dart/internal/sema"
	"dart/internal/serve"
	"dart/internal/solver"
	"dart/internal/types"
)

// DefaultSolveCacheCap is the default capacity of the per-search solve
// cache (Options.SolveCacheCap; see the "Solver fast path" note in the
// README).
const DefaultSolveCacheCap = solver.DefaultCacheCap

// Program is a compiled MiniC program ready for testing.
type Program struct {
	IR  *ir.Prog
	Sem *sema.Program
}

// Options configures a search; see the field documentation in the
// concolic package.
type Options = concolic.Options

// Report summarizes a search.
type Report = concolic.Report

// Bug is one distinct error found.
type Bug = concolic.Bug

// Interface is the extracted external interface of a program.
type Interface = iface.Interface

// Strategy selects the directed search's branch-selection order.
type Strategy = concolic.Strategy

// Search strategies.
const (
	DFS          = concolic.DFS
	BFS          = concolic.BFS
	RandomBranch = concolic.RandomBranch
)

// Outcome re-exports the run outcome classification for bug kinds.
type Outcome = machine.Outcome

// Bug kinds.
const (
	Aborted   = machine.Aborted
	Crashed   = machine.Crashed
	StepLimit = machine.StepLimit
)

// StopReason explains why a search ended (Report.Stopped).  A tripped
// deadline or a cancellation yields a partial Report with the matching
// reason, never an error.
type StopReason = concolic.StopReason

// Stop reasons.
const (
	StopExhausted = concolic.StopExhausted
	StopMaxRuns   = concolic.StopMaxRuns
	StopDeadline  = concolic.StopDeadline
	StopCancelled = concolic.StopCancelled
	StopFirstBug  = concolic.StopFirstBug
	StopInternal  = concolic.StopInternal
)

// InternalError is an isolated fault of the testing engine itself,
// reported on Report.InternalErrors instead of crashing the process.
type InternalError = concolic.InternalError

// CompileConfig adjusts compilation.
type CompileConfig struct {
	// DisableOptimizer skips the IR optimizer (constant folding, branch
	// folding, jump threading, dead-code removal); useful as an ablation
	// or when debugging lowered code.
	DisableOptimizer bool
	// Lib overrides the library (black-box) function signatures; nil
	// selects the standard library.
	Lib map[string]*types.Func
}

// Compile parses, type-checks, and lowers a MiniC translation unit.  The
// standard library (abs, min, max, mix, cube, alloca, memset, memcpy,
// strlen, strcmp) is available to the program as black-box functions,
// and the IR optimizer runs by default.
func Compile(src string) (*Program, error) {
	return CompileWith(src, CompileConfig{})
}

// CompileWith is Compile with explicit configuration.
func CompileWith(src string, cfg CompileConfig) (*Program, error) {
	file, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	lib := cfg.Lib
	if lib == nil {
		lib = machine.StdLibSigs()
	}
	sem, err := sema.Check(file, lib)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if !cfg.DisableOptimizer {
		ir.Optimize(prog)
	}
	return &Program{IR: prog, Sem: sem}, nil
}

// Run performs DART's directed search on the program.
func Run(p *Program, opts Options) (*Report, error) {
	return concolic.Run(p.IR, opts)
}

// RandomTest performs pure random testing (the baseline of the paper's
// evaluation tables).
func RandomTest(p *Program, opts Options) (*Report, error) {
	return concolic.RandomTest(p.IR, opts)
}

// Replay executes the program once, concretely, on a recorded input
// vector — typically a Bug's Inputs.  It returns nil when the run
// terminates normally, or the error the inputs reproduce.  Every bug
// reported by Run replays to the same error (the paper's Theorem 1(a):
// errors found by DART are sound).
func Replay(p *Program, opts Options, inputs map[string]int64) (*machine.RunError, error) {
	return concolic.Replay(p.IR, opts, inputs)
}

// RunError describes how a replayed execution terminated abnormally.
type RunError = machine.RunError

// ExtractInterface returns the program's external interface for the
// given toplevel function (the paper's technique 1).
func ExtractInterface(p *Program, toplevel string) (*Interface, error) {
	return iface.Extract(p.Sem, toplevel)
}

// Functions lists every defined function, i.e. every valid toplevel
// choice; a whole-library audit (the oSIP experiment) iterates over it.
func Functions(p *Program) []string {
	return iface.Candidates(p.Sem)
}

// AuditOptions configures a whole-library audit; see the field
// documentation in the audit package.
type AuditOptions = audit.Options

// AuditResult is a whole-library audit's batch outcome.
type AuditResult = audit.Result

// AuditEntry is the audit result for one function.
type AuditEntry = audit.Entry

// AuditStatus classifies one function's audit outcome.
type AuditStatus = audit.Status

// Audit statuses.
const (
	AuditOK        = audit.OK
	AuditBuggy     = audit.Buggy
	AuditTimedOut  = audit.TimedOut
	AuditFaulted   = audit.Faulted
	AuditCancelled = audit.Cancelled
)

// TraceEvent is one structured event of the search observability layer
// (see the obs package).  Events carry only deterministic payloads, so
// a fixed-seed search traces byte-identically on every replay.
type TraceEvent = obs.Event

// TraceKind discriminates trace events.
type TraceKind = obs.Kind

// Trace event kinds.
const (
	EvRunStart         = obs.RunStart
	EvRunEnd           = obs.RunEnd
	EvBranchFlip       = obs.BranchFlip
	EvMisprediction    = obs.Misprediction
	EvRestart          = obs.Restart
	EvSolverCall       = obs.SolverCall
	EvSolverVerdict    = obs.SolverVerdict
	EvSolveCacheHit    = obs.SolveCacheHit
	EvFallbackConcrete = obs.FallbackConcrete
	EvBugFound         = obs.BugFound
	EvAuditFnStart     = obs.AuditFnStart
	EvAuditFnEnd       = obs.AuditFnEnd
)

// TraceSink receives trace events; set Options.Observer (or
// AuditOptions.Observer) to attach one.  A nil observer costs one
// nil-check; a panicking observer is isolated like any other internal
// fault and observation is disabled for the rest of the search.
type TraceSink = obs.Sink

// TraceSinkFunc adapts a function to the TraceSink interface.
type TraceSinkFunc = obs.SinkFunc

// NDJSONSink writes one JSON object per event line with monotonic
// sequence numbers; safe for concurrent audit workers.
type NDJSONSink = obs.NDJSON

// NewNDJSONSink returns an NDJSONSink writing to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return obs.NewNDJSON(w) }

// TeeSinks fans events out to several sinks (nils are skipped).
func TeeSinks(sinks ...TraceSink) TraceSink { return obs.Tee(sinks...) }

// PathTree is a sink reconstructing the explored execution tree from
// the event stream; it renders to JSON or Graphviz DOT.
type PathTree = obs.Tree

// NewPathTree returns a PathTree capped at maxNodes nodes
// (0 = the default cap).
func NewPathTree(maxNodes int) *PathTree { return obs.NewTree(maxNodes) }

// MetricsSnapshot is the point-in-time view of a search's metrics
// registry (Report.Metrics, AuditResult.Metrics).
type MetricsSnapshot = obs.Snapshot

// ProfileSnapshot is a search's cost profile (Report.Profile,
// AuditResult.Profile; enabled by Options.CollectProfile): the
// per-phase wall-time breakdown and per-branch-site solver attribution.
type ProfileSnapshot = obs.ProfileSnapshot

// PhaseProfile and SiteProfile are a ProfileSnapshot's rows.
type (
	PhaseProfile = obs.PhaseProfile
	SiteProfile  = obs.SiteProfile
)

// ExplainSnapshot is a search's raw coverage-explainer ledger plus its
// run-indexed timeline (Report.Explain, AuditResult.Explain; enabled by
// Options.CollectExplain).  The ledger half is deterministic — an exact
// function of the seed on tree-exhausting searches, byte-identical
// across worker counts — while the timeline and stall count are honest
// schedule texture.
type ExplainSnapshot = obs.ExplainSnapshot

// ExplainReport is the resolved coverage explanation: every branch
// direction of the program accounted covered or carrying exactly one
// "why not covered" reason.  Render it with Table.
type ExplainReport = obs.ExplainReport

// SiteOutcome and DirOutcome are an ExplainReport's rows; TimelineSample
// and TimelineStall are the timeline's entries.
type (
	SiteOutcome    = obs.SiteOutcome
	DirOutcome     = obs.DirOutcome
	TimelineSample = obs.TimelineSample
	TimelineStall  = obs.TimelineStall
)

// ResolveExplain resolves a raw explainer ledger against the program's
// full branch-site universe and the accumulated coverage: the report
// accounts covered + every reason bucket to exactly 100% of the
// program's branch directions.
func ResolveExplain(p *Program, snap *ExplainSnapshot, cov *CoverageSet) *ExplainReport {
	return concolic.ResolveExplain(p.IR, snap, cov)
}

// CoverageSet accumulates branch-direction coverage over runs
// (Report.Coverage, AuditResult.Coverage).  Sets from different
// searches over the same program merge with Merge.
type CoverageSet = coverage.Set

// BranchSite locates one conditional branch site of a compiled program
// in its source.
type BranchSite = coverage.SiteInfo

// CoverageReport is an annotated source-level coverage view; render it
// with Text or HTML.
type CoverageReport = coverage.Report

// BranchSites indexes every conditional branch site of the compiled
// program by source position, for source-level coverage reports.
func BranchSites(p *Program) []BranchSite {
	return coverage.ProgSites(p.IR)
}

// AnnotateCoverage builds the source-level coverage report for src
// (the program text) under the accumulated set.
func AnnotateCoverage(src string, sites []BranchSite, set *CoverageSet) *CoverageReport {
	return coverage.Annotate(src, sites, set)
}

// OpsConfig configures the live operations HTTP server; see the ops
// package for the endpoint catalogue.
type OpsConfig = ops.Config

// OpsServer is a running live-operations HTTP server.  Feed it by
// adding Sink() to the search's observer tee and calling
// ReportCoverage as reports complete.
type OpsServer = ops.Server

// ServeOps starts the live operations server on cfg.Addr
// ("127.0.0.1:0" picks a free port; Addr() reports the binding).
func ServeOps(cfg OpsConfig) (*OpsServer, error) {
	return ops.Start(cfg)
}

// NewOpsServer builds an ops server without binding its socket, so a
// job service can mount its endpoints (JobService.RegisterOn) before
// Listen starts serving.
func NewOpsServer(cfg OpsConfig) *OpsServer {
	return ops.NewServer(cfg)
}

// JobsConfig configures the audit-as-a-service layer; see the serve
// package for field documentation (queue depth, executor pool, per-job
// deadline, retry policy, result-store and history caps).
type JobsConfig = serve.Config

// JobService is a running audit-as-a-service instance: a bounded job
// queue feeding a fixed executor pool, with per-job fault isolation and
// a bounded content-addressed result store.  Mount its HTTP surface on
// an ops server with RegisterOn, shut it down with Drain.
type JobService = serve.Service

// JobSubmission is one job request (source or registered library name,
// plus the search options that form the job's cache identity).
type JobSubmission = serve.Submission

// JobRecord is one submission's lifecycle record.
type JobRecord = serve.Job

// JobReport is the deterministic, cacheable outcome of one job.
type JobReport = serve.JobReport

// Job-admission errors: a full queue and a draining service are
// backpressure signals (HTTP 429 / 503), not faults.
var (
	ErrJobQueueFull = serve.ErrQueueFull
	ErrJobsDraining = serve.ErrDraining
)

// Job-service defaults, re-exported so cmd/dart's flag defaults show
// the real values in -help.
const (
	DefaultJobQueueDepth = serve.DefaultQueueDepth
	DefaultJobTimeout    = serve.DefaultJobTimeout
	DefaultDrainTimeout  = serve.DefaultDrainTimeout
	DefaultJobMaxBody    = serve.DefaultMaxBody
)

// NewJobService starts an audit-as-a-service instance; its executor
// pool is live on return.
func NewJobService(cfg JobsConfig) *JobService {
	return serve.New(cfg)
}

// BuiltinLibraries returns the registered library sources a job service
// can audit by name ("minisip": the paper's oSIP stand-in), for
// JobsConfig.Libraries.
func BuiltinLibraries() map[string]string {
	return map[string]string{"minisip": minisip.SourceText()}
}

// Corpus is an open incremental re-audit corpus: a versioned,
// checksummed directory holding each audited function's distilled
// replay suite and bug fixtures (keyed by IR content hash and options
// signature), the persistent solve cache layered under the in-memory
// LRU, and the job service's report spill.  Attach one via
// AuditOptions.Corpus or JobsConfig.Corpus; any corrupt file degrades
// to a full re-search, never a wrong verdict.
type Corpus = corpus.Corpus

// OpenCorpus opens (creating when absent) the corpus directory at dir.
func OpenCorpus(dir string) (*Corpus, error) {
	return corpus.Open(dir)
}

// Audit tests every function of the program (or opts.Toplevels when
// set) as the toplevel in turn — the paper's oSIP experiment — fanned
// out over a worker pool, with each function supervised by its own
// deadline and recover barrier.  The batch always returns per-function
// partial results; a hung or faulting function cannot take it down.
func Audit(p *Program, opts AuditOptions) *AuditResult {
	if len(opts.Toplevels) == 0 {
		opts.Toplevels = Functions(p)
	}
	return audit.Run(p.IR, opts)
}
