GO ?= go

.PHONY: build test check race vet experiments bench-scale

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: everything test runs, plus vet and the race
# detector over the concurrent audit pool.
check: build vet race

experiments:
	$(GO) run ./cmd/dart-experiments

# bench-scale measures the parallel frontier's worker scaling curve on a
# machine-heavy and a solver-heavy workload (1/2/4/8 workers; see
# BENCH_pr5.json for recorded numbers and scripts/bench.sh for the full
# gate).  Speedup is bounded by the cores actually available.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkWorkerScaling' -count=3 .
