GO ?= go

.PHONY: build test check race vet experiments

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: everything test runs, plus vet and the race
# detector over the concurrent audit pool.
check: build vet race

experiments:
	$(GO) run ./cmd/dart-experiments
