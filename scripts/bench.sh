#!/bin/sh
# Performance gate for the observability layer: the two throughput
# benchmarks that must stay within 2% of the pre-obs baseline when no
# observer is attached (see BENCH_pr2.json for the pre/post numbers of
# the obs layer itself, and BENCH_pr3.json for the serve-off gate of
# the live ops layer — with no -serve the ops server is never
# constructed, so the engine path must be byte-for-byte the same cost).
#
# BenchmarkSolverHeavyGate is the solver fast-path A/B (BENCH_pr4.json):
# its cache sub-benchmark must spend measurably fewer solverwork/op than
# nocache, and nocache must not regress the gate benchmarks.
#
# Usage: scripts/bench.sh [count]
#   count — benchmark repetitions per target (default 5).  On noisy
#   shared machines compare the per-side MINIMUM, not the mean: OS
#   scheduler noise only ever adds time.
set -eu
cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="${BENCH_OUT:-/tmp/dart_bench.txt}"

# BenchmarkProfileOverhead is the profiler A/B (BENCH_pr7.json): the
# "off" side must stay within 2% of the pre-profiler baseline (nil
# no-op methods, no clock reads), and "on" prices span timing honestly.
#
# BenchmarkMachineThroughput is the execution-engine A/B
# (BENCH_pr9.json): /compiled (closure-threaded code, pooled machine,
# taint-gated shadow) against /interp (the reference interpreter on the
# same pooling and taint gating).  Gate: /compiled ns/op and allocs/op
# must beat the BENCH_pr7 pre-compilation baseline by the margins
# recorded in BENCH_pr9.json, and /compiled must not lose to /interp.
go test -run '^$' \
    -bench 'BenchmarkE2Completeness$|BenchmarkMachineThroughput$|BenchmarkSolverHeavyGate|BenchmarkProfileOverhead' \
    -benchmem -count="$COUNT" . | tee "$OUT"

# Parallel scaling curve (BENCH_pr5.json): the same logical search —
# BFS puts every worker count on the one frontier scheduler — at
# 1/2/4/8 workers over a machine-heavy and a solver-heavy workload.
# Gates: runs/op identical across worker counts (the determinism
# contract), and workers=2..8 within noise of workers=1 when only one
# core is available (speedup needs real cores; nproc decides the rest).
go test -run '^$' \
    -bench 'BenchmarkWorkerScaling' \
    -count="$COUNT" . | tee -a "$OUT"

# Incremental re-audit A/B (BENCH_pr10.json): a full miniSIP audit at
# the paper's 1000-run budget, cold (search + distillation + corpus
# store) against warm (IR-hash check + distilled-suite replay +
# bug-fixture validation from a populated corpus).  Gate: warm ns/op
# at least 10x below cold on per-side minimums; verdict equality is
# TestIncrementalSIPWarmMatchesCold's job, not this benchmark's.
# MachineThroughput above doubles as the PR 10 allocation gate: the
# Lin arena must put compiled allocs/op past the 10x-vs-BENCH_pr7
# reduction PR 9 missed, without moving ns/op.
go test -run '^$' \
    -bench 'BenchmarkIncrementalReaudit' \
    -benchmem -count="$COUNT" . | tee -a "$OUT"

# Job-service throughput (BENCH_pr6.json): jobs/sec through the full
# admit→compile→audit→report pipeline (fresh) and the content-addressed
# store fast path (cached).  Gate: cached must be orders of magnitude
# above fresh — the store turning repeat submissions into lookups is
# the point of the layer.
go test -run '^$' \
    -bench 'BenchmarkJobsThroughput' \
    -benchmem -count="$COUNT" ./internal/serve/ | tee -a "$OUT"

echo
echo "wrote $OUT — compare mins against BENCH_pr3.json (gate: <2% on ns/op, allocs/op identical)"
echo "scaling curve: compare against BENCH_pr5.json (gate: runs/op constant across workers)"
echo "job service: compare jobs/s against BENCH_pr6.json (gate: cached >> fresh)"
echo "profiler: compare ProfileOverhead/off against BENCH_pr7.json (gate: <2% vs pre-profiler baseline)"
echo "execution engine: compare MachineThroughput/compiled against BENCH_pr9.json (gate: >=2x ns/op vs the BENCH_pr7 baseline, allocs/op down, compiled <= interp)"
echo "incremental re-audit: compare IncrementalReaudit warm vs cold against BENCH_pr10.json (gate: warm >=10x below cold ns/op; MachineThroughput allocs/op >=10x below the BENCH_pr7 baseline)"
