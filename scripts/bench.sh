#!/bin/sh
# Performance gate for the observability layer: the two throughput
# benchmarks that must stay within 2% of the pre-obs baseline when no
# observer is attached (see BENCH_pr2.json for the pre/post numbers of
# the obs layer itself, and BENCH_pr3.json for the serve-off gate of
# the live ops layer — with no -serve the ops server is never
# constructed, so the engine path must be byte-for-byte the same cost).
#
# BenchmarkSolverHeavyGate is the solver fast-path A/B (BENCH_pr4.json):
# its cache sub-benchmark must spend measurably fewer solverwork/op than
# nocache, and nocache must not regress the gate benchmarks.
#
# Usage: scripts/bench.sh [count]
#   count — benchmark repetitions per target (default 5).  On noisy
#   shared machines compare the per-side MINIMUM, not the mean: OS
#   scheduler noise only ever adds time.
set -eu
cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="${BENCH_OUT:-/tmp/dart_bench.txt}"

go test -run '^$' \
    -bench 'BenchmarkE2Completeness$|BenchmarkMachineThroughput$|BenchmarkSolverHeavyGate' \
    -benchmem -count="$COUNT" . | tee "$OUT"

echo
echo "wrote $OUT — compare mins against BENCH_pr3.json (gate: <2% on ns/op, allocs/op identical)"
