#!/bin/sh
# Tier-2 verification gate: static checks plus the race detector (the
# audit worker pool is the main concurrent code path it exercises).
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# Trace-golden gate: the fixed-seed E1 trace must stay byte-identical
# (regenerate deliberately with `go test -run TestTraceGolden -update .`).
go test -run 'TestTraceGolden' .
go test -race ./...
# Ops smoke: a real dart process with -serve answering on every live
# endpoint mid-audit, plus the in-process endpoint/counter checks.
go test -count=1 -run 'TestCLIServeEndpoints' .
go test -count=1 -run 'TestServerLiveAudit' ./internal/ops/
# Solver fast-path gate: slicing + caching must never change what a
# search finds — cache on/off/tiny report equality under both engines,
# jobs-independence with the cache on, and replayable random-mode bugs.
go test -count=1 -run 'TestSolveCache|TestSlicingOnClusters|TestRandomBugsReplay' ./internal/concolic/
go test -count=1 -run 'TestAuditCacheDeterministicAcrossJobs' ./internal/audit/
# Parallel search gate: worker-count determinism, pool invariants, and
# the shared solve cache under the race detector, then a real CLI audit
# driving the pool end to end (exit 1 = bugs found, the expected result).
go test -count=1 -race -run 'TestWorkers|TestParallel|TestFrontierDrop' ./internal/concolic/
go test -count=1 -race -run 'TestShardedCache' ./internal/solver/
go test -count=1 -race -run 'TestAuditParallelWorkersFindSameBugs' ./internal/audit/
# Serve gate (audit as a service): flood POST /jobs past the queue
# depth of a race-instrumented `dart -serve` process, require honest
# 429s counted in /metrics as dart_jobs_rejected_total, then SIGTERM
# and a clean exit-0 drain with jobs still mid-flight.  The in-process
# half covers poisoned-job isolation, byte-identical cached reports,
# and the drain checkpoint under the race detector.
go test -count=1 -run 'TestCLIServeGate|TestCLIServeJobService|TestCLIServeBindError' .
go test -count=1 -race -run 'TestPoisonedJobIsolation|TestCachedByteIdentical|TestDrainCheckpointsBacklog|TestHTTPQueueFull429|TestConcurrentSubmissions' ./internal/serve/
# Profiler gate (search cost accounting): per-site solver attribution
# must be byte-identical at -workers 1/2/8 under the race detector (the
# counter plane is deterministic; only nanos are wall clock), profiling
# must stay off unless asked for, /profile + flame + per-job envelope
# profiles must serve real data, ring drops must be visible as seq gaps
# plus dart_events_dropped_total, and long-poll/SSE job completion must
# block, stream, and shed load honestly.
go test -count=1 -race -run 'TestProfileDeterministicAcrossWorkers|TestProfileOffByDefault|TestProfilePhases|TestProfileCacheAttribution' ./internal/concolic/
go test -count=1 -run 'TestProfile|TestLiveProfile|TestTreeFlame' ./internal/obs/
go test -count=1 -race -run 'TestRingSeqGapsMatchDrops|TestEventsFollowTrailingDrops|TestServerProfileEndpoint' ./internal/ops/
go test -count=1 -race -run 'TestJobWait|TestJobSSEStream|TestCachedJobHasNoProfile|TestJobProfileFeedsServerProfile' ./internal/serve/
# CLI end to end: -profile must print both cost tables and -json must
# carry the structured profile object.
go test -count=1 -run 'TestCLIProfile' .
# Explainer gate (coverage accounting): the resolved explanation — one
# terminal reason per uncovered direction — must be byte-identical at
# -workers 1/2/8 under the race detector (verdicts are the
# deterministic plane; the timeline is schedule texture), the stall
# detector must fire exactly per flat window and stay off when
# disabled, /explain + the per-job envelope explain must serve real
# data, idle SSE streams must heartbeat, /metrics must carry the
# dart_uncovered_total{reason} family and dart_build_info, and the
# HTML coverage report must escape hostile source.
go test -count=1 -race -run 'TestExplain' ./internal/concolic/
go test -count=1 -run 'TestExplain|TestTimeline' ./internal/obs/
go test -count=1 -race -run 'TestServerExplainEndpoint|TestServerEventsFollowHeartbeat' ./internal/ops/
go test -count=1 -race -run 'TestJobEnvelopeCarriesExplain|TestJobSSEHeartbeat' ./internal/serve/
go test -count=1 -run 'TestAnnotateHTML' ./internal/coverage/
go test -count=1 -run 'TestCLIExplain' .
tmp="$(mktemp -d)"
cat > "$tmp/gate.mc" <<'EOF'
int f(int x) { return 2 * x; }

int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort();
    return 0;
}
EOF
go run -race ./cmd/dart -workers 4 -audit -seed 1 "$tmp/gate.mc" || [ "$?" -eq 1 ]
# CLI explain determinism: the "explain" object of -json must not move
# between the sequential engine (-workers 1) and the frontier pool
# (-workers 4) on a tree-exhausting fixture.
cat > "$tmp/explain.mc" <<'EOF'
int blend(int x, int y) {
    int r = 0;
    if (x > 3) {
        if (y == 7) {
            if (y > 10) { r = 1; }
        }
        if (x + y > 50) { r = r + 2; }
    }
    return r;
}
EOF
go run ./cmd/dart -top blend -explain -json -workers 1 "$tmp/explain.mc" \
    | sed -n '/^  "explain": {/,/^  },$/p' > "$tmp/explain-w1.json"
go run ./cmd/dart -top blend -explain -json -workers 4 "$tmp/explain.mc" \
    | sed -n '/^  "explain": {/,/^  },$/p' > "$tmp/explain-w4.json"
grep -q '"solver-unsat"' "$tmp/explain-w1.json"
diff "$tmp/explain-w1.json" "$tmp/explain-w4.json"
# Execution-engine gate (compiled vs reference interpreter): the
# differential signature must be byte-identical across engines over the
# progs corpus and the minisip audit at -workers 1/2/8 under the race
# detector; the pooled machine must not leak state between runs
# (poisoned-run reuse, step-counter reset, narrow-store sign
# extension), pooled reports must not alias machine state, and the
# taint bitmap must skip the shadow on concrete runs without moving
# the explain ledger.
go test -count=1 -race -run 'TestCompiledMatchesInterp' .
go test -count=1 -race -run 'TestBugsSurvivePooledReuse|TestConcreteSearchZeroShadowPhase|TestTaintSpreadExplainParity' .
go test -count=1 -run 'TestNarrowStoreParity|TestResetClearsStepCounter|TestResetAfterPoisonedRun|TestBranchSnapshotDetachedFromPool|TestConcreteRunSkipsShadow|TestCompiledErrorMessagesMatchInterp|TestCompile' ./internal/machine/
# CLI: -xcheck runs both engines back to back and exits nonzero on any
# signature divergence.
go run ./cmd/dart -xcheck -top blend "$tmp/explain.mc"
rm -rf "$tmp"
# Incremental re-audit gate (PR 10): a warm audit answered from the
# corpus — distilled-suite replay plus bug-fixture validation — must
# reproduce the cold audit's verdict plane byte for byte (bug set,
# per-function status and run counts, coverage, completeness flags),
# staleness must re-search only the changed function, and corrupt
# corpus artifacts must degrade to a full re-search, never a wrong
# verdict.
go test -count=1 -race -run 'TestAuditWarmMatchesCold|TestAuditStaleHash|TestAuditCorruptEntryDegrades|TestAuditOptionsSigGatesReplay|TestPersistentSolveCache' ./internal/audit/
go test -count=1 -race ./internal/corpus/ ./internal/distill/
go test -count=1 -race -run 'TestRestartServesFromCorpusDisk|TestRestartCorpusFastPath' ./internal/serve/
go test -count=1 -race -run 'TestIncrementalSIPWarmMatchesCold' .
# CLI warm-vs-cold plane equality: strip the timing and corpus
# provenance fields (the only legitimately different ones) and the two
# -json reports must be byte-identical; the warm run must actually be
# answered from the corpus, and both runs must agree on the exit code.
tmp="$(mktemp -d)"
cat > "$tmp/incr.mc" <<'EOF'
int f(int x) { return 2 * x; }

int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort();
    return 0;
}
EOF
cold_rc=0; go run ./cmd/dart -audit -seed 1 -corpus "$tmp/corpus" -json "$tmp/incr.mc" > "$tmp/cold.json" || cold_rc=$?
warm_rc=0; go run ./cmd/dart -audit -seed 1 -corpus "$tmp/corpus" -json "$tmp/incr.mc" > "$tmp/warm.json" || warm_rc=$?
[ "$cold_rc" -eq 1 ] && [ "$warm_rc" -eq 1 ]
grep -q '"cached_by_corpus": true' "$tmp/warm.json"
grep -q '"corpus_stores": 2' "$tmp/cold.json"
grep -q '"corpus_hits": 2' "$tmp/warm.json"
# The metrics registry tallies work performed (solves, restarts, replay
# counts) — legitimately different warm vs cold — so it is excluded
# from the verdict plane along with timing and corpus provenance.
for side in cold warm; do
    sed '/^  "metrics": {$/,/^  },$/d' "$tmp/$side.json" \
        | grep -v 'elapsed_seconds\|cached_by_corpus\|corpus_hits\|corpus_stores' \
        > "$tmp/$side.plane"
done
diff "$tmp/cold.plane" "$tmp/warm.plane"
rm -rf "$tmp"
