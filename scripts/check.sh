#!/bin/sh
# Tier-2 verification gate: static checks plus the race detector (the
# audit worker pool is the main concurrent code path it exercises).
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# Trace-golden gate: the fixed-seed E1 trace must stay byte-identical
# (regenerate deliberately with `go test -run TestTraceGolden -update .`).
go test -run 'TestTraceGolden' .
go test -race ./...
# Ops smoke: a real dart process with -serve answering on every live
# endpoint mid-audit, plus the in-process endpoint/counter checks.
go test -count=1 -run 'TestCLIServeEndpoints' .
go test -count=1 -run 'TestServerLiveAudit' ./internal/ops/
# Solver fast-path gate: slicing + caching must never change what a
# search finds — cache on/off/tiny report equality under both engines,
# jobs-independence with the cache on, and replayable random-mode bugs.
go test -count=1 -run 'TestSolveCache|TestSlicingOnClusters|TestRandomBugsReplay' ./internal/concolic/
go test -count=1 -run 'TestAuditCacheDeterministicAcrossJobs' ./internal/audit/
