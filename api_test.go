package dart

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dart/internal/progen"
	"dart/internal/progs"
	"dart/internal/rng"
)

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"int f( {", "parse:"},
		{"int f() { return g; }", "check:"},
		{"int f() { goto x; }", "parse:"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) error = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestFunctionsList(t *testing.T) {
	prog := compileT(t, progs.Section21)
	fns := Functions(prog)
	want := []string{"f", "h"}
	if len(fns) != 2 || fns[0] != want[0] || fns[1] != want[1] {
		t.Errorf("Functions = %v, want %v", fns, want)
	}
}

func TestExtractInterfacePublic(t *testing.T) {
	prog := compileT(t, progs.ExternalEnv)
	in, err := ExtractInterface(prog, "watch")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.ExternFuncs) != 1 || in.ExternFuncs[0].Name != "getmsg" {
		t.Errorf("extern funcs: %+v", in.ExternFuncs)
	}
	if len(in.ExternVars) != 1 || in.ExternVars[0].Name != "threshold" {
		t.Errorf("extern vars: %+v", in.ExternVars)
	}
}

func TestReplayHandCraftedInputs(t *testing.T) {
	prog := compileT(t, progs.Section21)
	// The known bug-triggering vector.
	rerr, err := Replay(prog, Options{Toplevel: "h"}, map[string]int64{
		"d0.x": 10, "d0.y": 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerr == nil || rerr.Outcome != Aborted {
		t.Fatalf("replay of the attack vector: %v", rerr)
	}
	// A benign vector terminates normally.
	rerr, err = Replay(prog, Options{Toplevel: "h"}, map[string]int64{
		"d0.x": 1, "d0.y": 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatalf("benign vector crashed: %v", rerr)
	}
}

func TestReplayMissingInputs(t *testing.T) {
	prog := compileT(t, progs.Section21)
	if _, err := Replay(prog, Options{Toplevel: "h"}, map[string]int64{"d0.x": 1}); err == nil {
		t.Error("replay with a missing input should error")
	}
}

// TestOptimizerPreservesSearchResults: the IR optimizer must not change
// what the directed search finds — same bug kinds at the same source
// positions on the whole fixture corpus and a batch of random programs.
func TestOptimizerPreservesSearchResults(t *testing.T) {
	fixtures := map[string]struct {
		src string
		fn  string
	}{
		"Section21":    {progs.Section21, "h"},
		"Section24":    {progs.Section24, "f"},
		"Section25":    {progs.Section25Cast, "bar"},
		"ACController": {progs.ACController, "ac_controller"},
		"DivByZero":    {progs.DivByZero, "quotient"},
		"NullChain":    {progs.NullChain, "walk"},
		"Filter":       {progs.Filter, "entry"},
	}
	for name, fx := range fixtures {
		t.Run(name, func(t *testing.T) {
			compareOptimized(t, fx.src, fx.fn, 1)
		})
	}
	t.Run("generated", func(t *testing.T) {
		for seed := int64(0); seed < 8; seed++ {
			src := progen.Program(rng.New(seed), progen.Default)
			compareOptimized(t, src, progen.Toplevel, seed)
		}
	})
}

func compareOptimized(t *testing.T, src, fn string, seed int64) {
	t.Helper()
	opt, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompileWith(src, CompileConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Toplevel: fn, MaxRuns: 80, Seed: seed, MaxSteps: 100000}
	a, err := Run(opt, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bugSet(a) != bugSet(b) {
		t.Errorf("bug sets differ:\noptimized: %v\nraw:       %v", a.Bugs, b.Bugs)
	}
}

func bugSet(r *Report) string {
	var sigs []string
	for _, b := range r.Bugs {
		sigs = append(sigs, fmt.Sprintf("%v@%v:%s", b.Kind, b.Pos, b.Msg))
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "|")
}

func TestOptimizerShrinksPrograms(t *testing.T) {
	opt, _ := Compile(progs.ACController)
	raw, _ := CompileWith(progs.ACController, CompileConfig{DisableOptimizer: true})
	optLen, rawLen := 0, 0
	for _, name := range opt.IR.FuncOrder {
		optLen += len(opt.IR.Funcs[name].Code)
	}
	for _, name := range raw.IR.FuncOrder {
		rawLen += len(raw.IR.Funcs[name].Code)
	}
	if optLen > rawLen {
		t.Errorf("optimizer grew the program: %d vs %d", optLen, rawLen)
	}
	t.Logf("instructions: %d optimized vs %d raw", optLen, rawLen)
}

func TestOutcomeNames(t *testing.T) {
	if Aborted.String() != "abort" || Crashed.String() != "crash" || StepLimit.String() != "step-limit" {
		t.Error("outcome names changed; CLI output depends on them")
	}
}
