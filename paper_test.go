package dart

import (
	"testing"

	"dart/internal/progs"
)

func compileT(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

// TestSection24Example: the paper walks this program to completion in two
// runs and proves the abort unreachable (all completeness flags intact).
func TestSection24Example(t *testing.T) {
	prog := compileT(t, progs.Section24)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 20, Seed: 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Bugs) != 0 {
		t.Fatalf("found unexpected bugs: %v", rep.Bugs)
	}
	if !rep.Complete {
		t.Fatalf("search did not prove completeness (runs=%d allLinear=%v allLocs=%v)",
			rep.Runs, rep.AllLinear, rep.AllLocsDefinite)
	}
	// The paper's walk finishes after 2 runs: first run takes some path,
	// second covers the flip, and x==z ∧ y==x+10 (with z=y) is UNSAT.
	if rep.Runs > 4 {
		t.Errorf("expected completion within a few runs, took %d", rep.Runs)
	}
	t.Logf("complete after %d runs, %d solver calls", rep.Runs, rep.SolverCalls)
}

// TestSection25PointerCast: the abort guarded by the char*-aliased write
// is reachable; static analyses equivocate but DART finds a concrete
// execution by solving a->c == 0 and the NULL-ness constraint.
func TestSection25PointerCast(t *testing.T) {
	prog := compileT(t, progs.Section25Cast)
	rep, err := Run(prog, Options{Toplevel: "bar", MaxRuns: 100, Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var abortBug *Bug
	for i := range rep.Bugs {
		if rep.Bugs[i].Kind == Aborted {
			abortBug = &rep.Bugs[i]
		}
	}
	if abortBug == nil {
		t.Fatalf("abort not reached in %d runs; bugs: %v", rep.Runs, rep.Bugs)
	}
	// Reaching it requires a non-NULL struct pointer.
	if v := abortBug.Inputs["d0.a"]; v == 0 {
		t.Errorf("abort reached with NULL input pointer?! inputs %v", abortBug.Inputs)
	}
	t.Logf("found %v with inputs %v", abortBug, abortBug.Inputs)
}

// TestFoobarNonlinear: x*x*x is outside the linear theory. DART must
// still find the reachable abort (x>0, y==10) with high probability and
// must not claim completeness.  Every reported abort must be genuinely
// reachable (Theorem 1(a) soundness): under the machine's faithful C
// wraparound semantics that means either (x>0, y==10) on the then side,
// or (x>0, y==20) on the else side with int32(x*x*x) <= 0 — the overflow
// case the paper's mathematical reading of x*x*x>0 ignores.
func TestFoobarNonlinear(t *testing.T) {
	for _, src := range []struct {
		name string
		code string
	}{{"inline", progs.Foobar}, {"library", progs.FoobarLib}} {
		t.Run(src.name, func(t *testing.T) {
			prog := compileT(t, src.code)
			found := false
			for seed := int64(1); seed <= 8; seed++ {
				rep, err := Run(prog, Options{Toplevel: "foobar", MaxRuns: 60, Seed: seed})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if rep.Complete {
					t.Fatalf("claimed completeness despite non-linear fallback (seed %d)", seed)
				}
				if rep.AllLinear {
					t.Errorf("all_linear flag survived a non-linear branch (seed %d)", seed)
				}
				for _, b := range rep.Bugs {
					if b.Kind != Aborted {
						continue
					}
					x := b.Inputs["d0.x"]
					y := b.Inputs["d0.y"]
					cube := int64(int32(int32(x) * int32(x) * int32(x)))
					thenSide := cube > 0 && x > 0 && y == 10
					elseSide := cube <= 0 && x > 0 && y == 20
					if !thenSide && !elseSide {
						t.Fatalf("reported abort with inputs x=%d y=%d (cube=%d) — not reachable", x, y, cube)
					}
					if thenSide {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("reachable abort (x>0, y==10) not found under any of 8 seeds")
			}
		})
	}
}

// TestACControllerDepths mirrors Sec. 4.1: depth 1 is error-free and the
// search proves it by exhausting all paths; depth 2 has the (3, 0)
// message sequence that fires the assertion.
func TestACControllerDepths(t *testing.T) {
	prog := compileT(t, progs.ACController)

	rep1, err := Run(prog, Options{Toplevel: "ac_controller", Depth: 1, MaxRuns: 200, Seed: 5})
	if err != nil {
		t.Fatalf("Run depth 1: %v", err)
	}
	if len(rep1.Bugs) != 0 {
		t.Fatalf("depth 1 should be error-free, found %v", rep1.Bugs)
	}
	if !rep1.Complete {
		t.Fatalf("depth 1 search should be complete (runs=%d)", rep1.Runs)
	}
	t.Logf("depth 1: complete after %d runs (paper: 6 iterations)", rep1.Runs)

	rep2, err := Run(prog, Options{Toplevel: "ac_controller", Depth: 2, MaxRuns: 500, Seed: 5, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run depth 2: %v", err)
	}
	bug := rep2.FirstBug()
	if bug == nil {
		t.Fatalf("depth 2 assertion violation not found in %d runs", rep2.Runs)
	}
	if bug.Kind != Aborted {
		t.Fatalf("bug kind %v, want abort", bug.Kind)
	}
	m1, m2 := bug.Inputs["d0.message"], bug.Inputs["d1.message"]
	if !(m1 == 3 && m2 == 0) {
		t.Errorf("expected trigger sequence (3, 0), got (%d, %d)", m1, m2)
	}
	t.Logf("depth 2: violation after %d runs with messages (%d, %d) (paper: 7 iterations)", rep2.Runs, m1, m2)
}

// TestExternalEnvironment: external functions return fresh inputs per
// call; external variables are inputs too. The abort needs
// getmsg#0 == threshold and getmsg#1 == threshold+25.
func TestExternalEnvironment(t *testing.T) {
	prog := compileT(t, progs.ExternalEnv)
	rep, err := Run(prog, Options{Toplevel: "watch", MaxRuns: 50, Seed: 11, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("abort not found in %d runs", rep.Runs)
	}
	a := bug.Inputs["ext:getmsg#0"]
	b := bug.Inputs["ext:getmsg#1"]
	th := bug.Inputs["g:threshold"]
	if a != th || b != th+25 {
		t.Errorf("inputs do not satisfy the path constraint: a=%d b=%d threshold=%d", a, b, th)
	}
	t.Logf("found after %d runs: a=%d b=%d threshold=%d", rep.Runs, a, b, th)
}

// TestListSum: unbounded dynamic input data — the directed search must
// materialize a list of length >= 2 with value[0]+value[1] == 42.
func TestListSum(t *testing.T) {
	prog := compileT(t, progs.ListSum)
	rep, err := Run(prog, Options{Toplevel: "sum2", MaxRuns: 100, Seed: 2, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("abort not found in %d runs", rep.Runs)
	}
	if bug.Inputs["d0.l"] != 1 || bug.Inputs["d0.l.*.next"] != 1 {
		t.Errorf("expected both list pointers allocated, inputs %v", bug.Inputs)
	}
	v0 := bug.Inputs["d0.l.*.value"]
	v1 := bug.Inputs["d0.l.*.next.*.value"]
	if v0+v1 != 42 {
		t.Errorf("list values %d + %d != 42", v0, v1)
	}
	t.Logf("found after %d runs: values %d + %d", rep.Runs, v0, v1)
}

// TestDivByZero: division by zero is detected as a crash, reachable only
// through the d == 7 window.
func TestDivByZero(t *testing.T) {
	prog := compileT(t, progs.DivByZero)
	rep, err := Run(prog, Options{Toplevel: "quotient", MaxRuns: 50, Seed: 4, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("division crash not found in %d runs", rep.Runs)
	}
	if bug.Kind != Crashed {
		t.Fatalf("bug kind %v, want crash", bug.Kind)
	}
	if d := bug.Inputs["d0.d"]; d != 7 {
		t.Errorf("crash requires d == 7, got %d", d)
	}
}

// TestNullChain: three pointer decisions plus a scalar constraint.
func TestNullChain(t *testing.T) {
	prog := compileT(t, progs.NullChain)
	rep, err := Run(prog, Options{Toplevel: "walk", MaxRuns: 200, Seed: 9, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("abort not found in %d runs", rep.Runs)
	}
	if tag := bug.Inputs["d0.p.*.b.*.c.*.tag"]; tag != 77 {
		t.Errorf("tag input = %d, want 77 (inputs %v)", tag, bug.Inputs)
	}
	t.Logf("found after %d runs", rep.Runs)
}

// TestFilterPattern: directed search learns its way through input
// filtering code and solves the core arithmetic relation; bounded random
// testing does not.
func TestFilterPattern(t *testing.T) {
	prog := compileT(t, progs.Filter)
	rep, err := Run(prog, Options{Toplevel: "entry", MaxRuns: 100, Seed: 6, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("abort not found in %d runs", rep.Runs)
	}
	a, b := bug.Inputs["d0.a"], bug.Inputs["d0.b"]
	if 3*a-2*b != 17 {
		t.Errorf("3*%d - 2*%d != 17", a, b)
	}

	rnd, err := RandomTest(prog, Options{Toplevel: "entry", MaxRuns: 2000, Seed: 6})
	if err != nil {
		t.Fatalf("RandomTest: %v", err)
	}
	if len(rnd.Bugs) != 0 {
		t.Logf("random testing got lucky in %d runs (possible but rare)", rnd.Runs)
	}
	if rnd.Coverage.Covered() >= rep.Coverage.Covered() {
		t.Logf("note: random coverage %d >= directed %d", rnd.Coverage.Covered(), rep.Coverage.Covered())
	}
}
