package dart

// Self-fuzzing property tests: random MiniC programs exercise the whole
// pipeline, checking the properties the paper proves.
//
//   - Soundness (Theorem 1a): every bug the directed search reports
//     carries an input vector whose plain concrete replay reproduces the
//     same error at the same location.
//   - Determinism: equal seeds produce byte-identical searches.
//   - Consistency: on linear programs that the search sweeps completely
//     without finding bugs, a random-testing barrage agrees.

import (
	"fmt"
	"testing"

	"dart/internal/progen"
	"dart/internal/rng"
)

func generate(t *testing.T, seed int64, cfg progen.Config) (*Program, string) {
	t.Helper()
	src := progen.Program(rng.New(seed), cfg)
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("generated program does not compile: %v\n%s", err, src)
	}
	return prog, src
}

// TestGeneratedProgramsCompile: the generator only emits valid MiniC.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := progen.Program(rng.New(seed), progen.Default)
		if _, err := Compile(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestSoundnessEveryBugReplays is Theorem 1(a) as a property: each
// reported bug's input vector, replayed concretely with no symbolic
// machinery, reproduces the identical error.
func TestSoundnessEveryBugReplays(t *testing.T) {
	trials := 80
	if testing.Short() {
		trials = 20
	}
	bugs := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		prog, src := generate(t, seed, progen.Default)
		opts := Options{Toplevel: progen.Toplevel, MaxRuns: 40, Seed: seed, MaxSteps: 100000}
		rep, err := Run(prog, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, bug := range rep.Bugs {
			bugs++
			rerr, err := Replay(prog, opts, bug.Inputs)
			if err != nil {
				t.Fatalf("seed %d: replay failed: %v\nbug: %v\n%s", seed, err, bug, src)
			}
			if rerr == nil {
				t.Fatalf("seed %d: bug did not replay: %v\ninputs %v\n%s", seed, bug, bug.Inputs, src)
			}
			if rerr.Outcome != bug.Kind || rerr.Pos != bug.Pos {
				t.Fatalf("seed %d: replay mismatch: reported %v at %v, replayed %v at %v\n%s",
					seed, bug.Kind, bug.Pos, rerr.Outcome, rerr.Pos, src)
			}
		}
	}
	if bugs == 0 {
		t.Error("the generator produced no findable bugs across all trials; it has gone stale")
	}
	t.Logf("replayed %d bugs successfully", bugs)
}

// TestSearchDeterminism: the entire pipeline is deterministic per seed.
func TestSearchDeterminism(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		prog, _ := generate(t, seed, progen.Default)
		opts := Options{Toplevel: progen.Toplevel, MaxRuns: 30, Seed: seed, MaxSteps: 100000}
		a, err := Run(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Runs != b.Runs || a.Steps != b.Steps || len(a.Bugs) != len(b.Bugs) ||
			a.SolverCalls != b.SolverCalls || a.Complete != b.Complete {
			t.Fatalf("seed %d: nondeterministic search: %+v vs %+v", seed, a, b)
		}
		for i := range a.Bugs {
			if fmt.Sprint(a.Bugs[i].Inputs) != fmt.Sprint(b.Bugs[i].Inputs) {
				t.Fatalf("seed %d: bug %d inputs differ", seed, i)
			}
		}
	}
}

// TestCompletenessAgreesWithRandom: when the directed search sweeps a
// linear program completely and reports no bugs, a much larger random
// barrage must agree (it cannot contradict an exhaustive sweep).
func TestCompletenessAgreesWithRandom(t *testing.T) {
	cfg := progen.Default
	cfg.AllowNonlinear = false
	cfg.AllowDivision = false
	cfg.AbortProb = 50
	checked := 0
	for seed := int64(0); seed < 120 && checked < 20; seed++ {
		prog, src := generate(t, seed, cfg)
		rep, err := Run(prog, Options{Toplevel: progen.Toplevel, MaxRuns: 300, Seed: seed, MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			continue // swept trees only
		}
		checked++
		rnd, err := RandomTest(prog, Options{Toplevel: progen.Toplevel, MaxRuns: 1000, Seed: seed + 1000, MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if len(rnd.Bugs) > 0 {
			t.Fatalf("seed %d: directed search claimed a complete error-free sweep but random testing found %v\n%s",
				seed, rnd.Bugs, src)
		}
	}
	if checked == 0 {
		t.Skip("no generated program was swept completely; generator drift")
	}
	t.Logf("cross-checked %d complete sweeps against random testing", checked)
}

// TestDirectedAtLeastAsStrongAsRandom: on generated programs, with equal
// run budgets, the directed search finds a superset... in general that
// is not a theorem (random may get lucky on non-linear needles), so this
// test checks the weaker, true property: any bug random testing finds at
// a tiny budget is also found by the directed search at a generous one.
func TestDirectedAtLeastAsStrongAsRandom(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	cfg := progen.Default
	cfg.AllowNonlinear = false // keep within the solver's theory
	for seed := int64(0); seed < int64(trials); seed++ {
		prog, src := generate(t, seed, cfg)
		rnd, err := RandomTest(prog, Options{Toplevel: progen.Toplevel, MaxRuns: 30, Seed: seed, MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if len(rnd.Bugs) == 0 {
			continue
		}
		dir, err := Run(prog, Options{Toplevel: progen.Toplevel, MaxRuns: 1500, Seed: seed, MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		for _, rb := range rnd.Bugs {
			found := false
			for _, db := range dir.Bugs {
				if db.Kind == rb.Kind && db.Pos == rb.Pos {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d: random found %v but the directed search did not\n%s", seed, rb, src)
			}
		}
	}
}

// TestSoundnessWithPointerInputs runs the replay property over programs
// with linked-node pointer inputs, exercising the shape machinery end to
// end: pointer decisions recorded in the bug's input vector must rebuild
// the same heap shape on replay and reproduce the same crash.
func TestSoundnessWithPointerInputs(t *testing.T) {
	cfg := progen.Default
	cfg.PointerParams = true
	trials := 60
	if testing.Short() {
		trials = 15
	}
	bugs := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		prog, src := generate(t, seed, cfg)
		opts := Options{Toplevel: progen.Toplevel, MaxRuns: 40, Seed: seed, MaxSteps: 100000}
		rep, err := Run(prog, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, bug := range rep.Bugs {
			bugs++
			rerr, err := Replay(prog, opts, bug.Inputs)
			if err != nil {
				t.Fatalf("seed %d: replay failed: %v\nbug: %v\n%s", seed, err, bug, src)
			}
			if rerr == nil || rerr.Outcome != bug.Kind || rerr.Pos != bug.Pos {
				t.Fatalf("seed %d: replay mismatch for %v (got %v)\ninputs %v\n%s",
					seed, bug, rerr, bug.Inputs, src)
			}
		}
	}
	if bugs == 0 {
		t.Error("pointer fuzzing found no bugs; the unguarded dereference arm has gone stale")
	}
	t.Logf("replayed %d pointer bugs successfully", bugs)
}
