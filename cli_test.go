package dart

// CLI integration tests: build-and-run the dart command against a fixture
// file, checking both human and JSON output modes end to end.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dart/internal/progs"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart")
	cmd.Args = append(cmd.Args, args...)
	cmd.Args = append(cmd.Args, src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("go run: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	return stdout.String(), code
}

func TestCLIFindsBug(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "BUG [abort]") || !strings.Contains(out, "d0.x:10") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLIJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode string `json:"mode"`
		Runs int    `json:"runs"`
		Bugs []struct {
			Kind   string           `json:"kind"`
			Inputs map[string]int64 `json:"inputs"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "directed" || len(rep.Bugs) != 1 || rep.Bugs[0].Kind != "abort" {
		t.Errorf("report: %+v", rep)
	}
	if rep.Bugs[0].Inputs["d0.x"] != 10 {
		t.Errorf("solved input missing: %+v", rep.Bugs[0].Inputs)
	}
}

func TestCLIListAndIface(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-list")
	if code != 0 || !strings.Contains(out, "h") || !strings.Contains(out, "f") {
		t.Errorf("list output (code %d):\n%s", code, out)
	}
	out, code = runCLI(t, "-top", "h", "-iface")
	if code != 0 || !strings.Contains(out, "toplevel h") {
		t.Errorf("iface output (code %d):\n%s", code, out)
	}
}

func TestCLIJSONStopReason(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		StopReason     string `json:"stop_reason"`
		SolverComplete bool   `json:"solver_complete"`
		SolverCalls    int    `json:"solver_calls"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.StopReason != "first-bug" {
		t.Errorf("stop_reason = %q, want %q\n%s", rep.StopReason, "first-bug", out)
	}
	if !rep.SolverComplete {
		t.Errorf("solver_complete = false, want true\n%s", out)
	}
	if rep.SolverCalls == 0 {
		t.Errorf("solver_calls = 0, want > 0 (the bug needs a solve)\n%s", out)
	}
}

func TestCLIAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "4", "-timeout", "2s", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d (the fixture has a buggy function), output:\n%s", code, out)
	}
	if !strings.Contains(out, "audit:") || !strings.Contains(out, "with bugs") {
		t.Errorf("missing batch summary:\n%s", out)
	}
	// Every candidate toplevel gets its own status line.
	for _, fn := range []string{"h", "f"} {
		if !strings.Contains(out, fn) {
			t.Errorf("function %s missing from audit output:\n%s", fn, out)
		}
	}
}

func TestCLIAuditJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode      string `json:"mode"`
		Functions int    `json:"functions"`
		Entries   []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "audit" || rep.Functions == 0 || len(rep.Entries) != rep.Functions {
		t.Errorf("report: %+v", rep)
	}
	statuses := map[string]string{}
	for _, e := range rep.Entries {
		statuses[e.Function] = e.Status
	}
	if statuses["h"] != "bugs" {
		t.Errorf("h: status %q, want %q\n%s", statuses["h"], "bugs", out)
	}
}

func TestCLINoBugExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "ok.mc")
	if err := os.WriteFile(src, []byte(progs.Section24), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart", "-top", "f", src)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("expected success: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all feasible execution paths explored") {
		t.Errorf("output:\n%s", out)
	}
}
