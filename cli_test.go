package dart

// CLI integration tests: build-and-run the dart command against a fixture
// file, checking both human and JSON output modes end to end.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dart/internal/progs"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart")
	cmd.Args = append(cmd.Args, args...)
	cmd.Args = append(cmd.Args, src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("go run: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	return stdout.String(), code
}

func TestCLIFindsBug(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "BUG [abort]") || !strings.Contains(out, "d0.x:10") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLIJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode string `json:"mode"`
		Runs int    `json:"runs"`
		Bugs []struct {
			Kind   string           `json:"kind"`
			Inputs map[string]int64 `json:"inputs"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "directed" || len(rep.Bugs) != 1 || rep.Bugs[0].Kind != "abort" {
		t.Errorf("report: %+v", rep)
	}
	if rep.Bugs[0].Inputs["d0.x"] != 10 {
		t.Errorf("solved input missing: %+v", rep.Bugs[0].Inputs)
	}
}

// TestCLIWorkers: -workers 4 runs the parallel frontier, still finds
// the Section 2.1 bug with its solved input, announces the pool in the
// human mode line, and surfaces the new JSON accounting fields.
func TestCLIWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-workers", "4")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "BUG [abort]") || !strings.Contains(out, "d0.x:10") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "(4 workers)") {
		t.Errorf("human output does not announce the worker pool:\n%s", out)
	}

	jout, code := runCLI(t, "-top", "h", "-seed", "1", "-workers", "4", "-json")
	if code != 1 {
		t.Fatalf("json exit code %d, output:\n%s", code, jout)
	}
	var rep struct {
		Workers         int               `json:"workers"`
		FrontierDropped *int              `json:"frontier_dropped"`
		Steals          *int              `json:"frontier_steals"`
		Mispredicts     *int              `json:"mispredicts"`
		Bugs            []json.RawMessage `json:"bugs"`
	}
	if err := json.Unmarshal([]byte(jout), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jout)
	}
	if rep.Workers != 4 {
		t.Errorf("workers = %d, want 4", rep.Workers)
	}
	if rep.FrontierDropped == nil || rep.Steals == nil || rep.Mispredicts == nil {
		t.Errorf("accounting fields missing from JSON report:\n%s", jout)
	}
	if len(rep.Bugs) != 1 {
		t.Errorf("%d bugs in JSON report, want 1", len(rep.Bugs))
	}
}

func TestCLIListAndIface(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-list")
	if code != 0 || !strings.Contains(out, "h") || !strings.Contains(out, "f") {
		t.Errorf("list output (code %d):\n%s", code, out)
	}
	out, code = runCLI(t, "-top", "h", "-iface")
	if code != 0 || !strings.Contains(out, "toplevel h") {
		t.Errorf("iface output (code %d):\n%s", code, out)
	}
}

func TestCLIJSONStopReason(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		StopReason     string `json:"stop_reason"`
		SolverComplete bool   `json:"solver_complete"`
		SolverCalls    int    `json:"solver_calls"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.StopReason != "first-bug" {
		t.Errorf("stop_reason = %q, want %q\n%s", rep.StopReason, "first-bug", out)
	}
	if !rep.SolverComplete {
		t.Errorf("solver_complete = false, want true\n%s", out)
	}
	if rep.SolverCalls == 0 {
		t.Errorf("solver_calls = 0, want > 0 (the bug needs a solve)\n%s", out)
	}
}

func TestCLIAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "4", "-timeout", "2s", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d (the fixture has a buggy function), output:\n%s", code, out)
	}
	if !strings.Contains(out, "audit:") || !strings.Contains(out, "with bugs") {
		t.Errorf("missing batch summary:\n%s", out)
	}
	// Every candidate toplevel gets its own status line.
	for _, fn := range []string{"h", "f"} {
		if !strings.Contains(out, fn) {
			t.Errorf("function %s missing from audit output:\n%s", fn, out)
		}
	}
}

func TestCLIAuditJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode      string `json:"mode"`
		Functions int    `json:"functions"`
		Entries   []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "audit" || rep.Functions == 0 || len(rep.Entries) != rep.Functions {
		t.Errorf("report: %+v", rep)
	}
	statuses := map[string]string{}
	for _, e := range rep.Entries {
		statuses[e.Function] = e.Status
	}
	if statuses["h"] != "bugs" {
		t.Errorf("h: status %q, want %q\n%s", statuses["h"], "bugs", out)
	}
}

func TestCLINoBugExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "ok.mc")
	if err := os.WriteFile(src, []byte(progs.Section24), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart", "-top", "f", src)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("expected success: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all feasible execution paths explored") {
		t.Errorf("output:\n%s", out)
	}
}

// ------------------------------------------------- observability flags

func TestCLITraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	t1 := filepath.Join(dir, "a.ndjson")
	t2 := filepath.Join(dir, "b.ndjson")
	runCLI(t, "-top", "h", "-seed", "1", "-trace", t1)
	runCLI(t, "-top", "h", "-seed", "1", "-trace", t2)
	a, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || string(a) != string(b) {
		t.Errorf("-trace must be byte-identical across same-seed runs\nfirst:\n%s\nsecond:\n%s", a, b)
	}
	// Every line is one JSON event with a monotonically increasing seq.
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	for i, line := range lines {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) || ev.Kind == "" {
			t.Errorf("line %d: seq=%d kind=%q", i, ev.Seq, ev.Kind)
		}
	}
}

func TestCLITreeDumps(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "tree.json")
	dotPath := filepath.Join(dir, "tree.dot")
	runCLI(t, "-top", "h", "-seed", "1", "-tree", jsonPath)
	runCLI(t, "-top", "h", "-seed", "1", "-tree", dotPath)
	jb, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Nodes int `json:"nodes"`
		Tree  []struct {
			Path   string `json:"path"`
			Status string `json:"status"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(jb, &dump); err != nil {
		t.Fatalf("tree JSON: %v\n%s", err, jb)
	}
	if dump.Nodes == 0 || len(dump.Tree) != dump.Nodes {
		t.Errorf("tree dump: %+v", dump)
	}
	db, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(db), "digraph dart {") {
		t.Errorf("DOT dump:\n%s", db)
	}
}

func TestCLITreeRejectedWithAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart",
		"-audit", "-tree", filepath.Join(dir, "t.json"), src)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Error("-tree with -audit must be rejected")
	}
	if !strings.Contains(stderr.String(), "-tree") {
		t.Errorf("usage diagnostic missing:\n%s", stderr.String())
	}
}

func TestCLIMetricsAndTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, _ := runCLI(t, "-top", "h", "-seed", "1", "-metrics")
	for _, frag := range []string{"steps/s", "branch coverage", "%", "runs", "solver_sat"} {
		if !strings.Contains(out, frag) {
			t.Errorf("human summary missing %q:\n%s", frag, out)
		}
	}
	out, _ = runCLI(t, "-top", "h", "-seed", "1", "-json")
	var rep struct {
		Elapsed  float64 `json:"elapsed_seconds"`
		Rate     float64 `json:"steps_per_second"`
		Fraction float64 `json:"branch_coverage_fraction"`
		Metrics  *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Elapsed <= 0 || rep.Rate <= 0 {
		t.Errorf("elapsed=%v steps_per_second=%v, want > 0", rep.Elapsed, rep.Rate)
	}
	if rep.Fraction != 0.75 {
		t.Errorf("branch_coverage_fraction = %v, want 0.75", rep.Fraction)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["runs"] == 0 {
		t.Errorf("metrics missing from JSON report:\n%s", out)
	}
}

// ------------------------------------------------------ live ops flags

// slowSrc never exhausts: the nonlinear predicates defeat the linear
// solver, so the directed search keeps restarting with fresh randoms
// until its run budget — plenty of time to poll the ops server.
const slowSrc = `
int h(int x, int y) {
	if (x * x + y * y > 100) {
		if (x > 9) {
			return 1;
		}
		return 2;
	}
	if (y < 0) {
		return 3;
	}
	return 0;
}

int g(int a, int b) {
	if (a * a - b * b == 17) {
		return 1;
	}
	return 0;
}
`

// buildCLI compiles the dart binary once into dir (go run would make
// the served process a child we cannot address reliably).
func buildCLI(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "dartbin")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/dart").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestCLIServeEndpoints is the end-to-end acceptance check: a real
// dart process with -serve during a parallel audit answers on every
// ops endpoint while the search is still running.
func TestCLIServeEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	bin := buildCLI(t, dir)
	src := filepath.Join(dir, "slow.mc")
	if err := os.WriteFile(src, []byte(slowSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-audit", "-jobs", "4", "-runs", "50000000",
		"-serve", "127.0.0.1:0", src)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The serve announcement is the machine-readable contract for :0.
	var addr string
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "dart: serving ops on http://"); ok {
				lineCh <- rest
				break
			}
		}
		close(lineCh)
	}()
	select {
	case addr = <-lineCh:
	case <-deadline:
		t.Fatal("serve announcement never appeared on stderr")
	}
	if addr == "" {
		t.Fatal("serve announcement missing the address")
	}
	base := "http://" + addr

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz: %q", got)
	}
	// The announcement races the audit's first events; wait until the
	// batch is demonstrably mid-flight before asserting on live state.
	var st struct {
		Mode    string `json:"mode"`
		Done    bool   `json:"done"`
		Runs    int    `json:"runs"`
		Entries []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
		} `json:"entries"`
	}
	waitUntil := time.Now().Add(30 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get("/status")), &st); err != nil {
			t.Fatalf("/status: %v", err)
		}
		if st.Runs > 0 || time.Now().After(waitUntil) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Mode != "audit" || st.Done || len(st.Entries) != 2 || st.Runs == 0 {
		t.Errorf("/status mid-audit: %+v", st)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "# TYPE dart_runs_total counter") {
		t.Errorf("/metrics missing runs counter:\n%.400s", metrics)
	}
	if strings.Contains(metrics, "dart_runs_total 0\n") {
		t.Errorf("/metrics shows zero runs mid-audit:\n%.400s", metrics)
	}
	if !strings.Contains(get("/coverage"), "branch coverage") {
		t.Error("/coverage missing the summary header")
	}
	var exp struct {
		Directions int `json:"directions"`
	}
	if err := json.Unmarshal([]byte(get("/explain")), &exp); err != nil || exp.Directions == 0 {
		t.Errorf("/explain mid-audit: %v, %+v", err, exp)
	}
	if !strings.Contains(get("/explain?format=annot"), "coverage explanation:") {
		t.Error("/explain?format=annot missing the reason table")
	}
	if !strings.Contains(metrics, "# TYPE dart_build_info gauge") {
		t.Errorf("/metrics missing dart_build_info:\n%.400s", metrics)
	}
	events := get("/events")
	if !strings.Contains(events, `"ev":`) || !strings.Contains(events, "ops-eof") {
		t.Errorf("/events dump malformed:\n%.400s", events)
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index missing")
	}
}

// ------------------------------------------------------ job service mode

// startJobService launches `dart -serve` in service mode (no program
// file) and returns the started process plus the scraped base URL.
func startJobService(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-serve", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "dart: serving ops on http://"); ok {
				lineCh <- rest
				break
			}
		}
		// Keep draining so the child never blocks on a full stderr pipe.
		go io.Copy(io.Discard, stderr)
		close(lineCh)
	}()
	select {
	case addr := <-lineCh:
		if addr == "" {
			t.Fatal("serve announcement missing the address")
		}
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("serve announcement never appeared on stderr")
	}
	return nil, ""
}

// waitExit waits for the process and returns its exit code.
func waitExit(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("process never exited")
	}
	return -1
}

// TestCLIServeJobService is the end-to-end service-mode test: submit a
// job over HTTP, read its completed report, then SIGTERM and require a
// graceful drain with exit code 0.
func TestCLIServeJobService(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	bin := buildCLI(t, dir)
	cmd, base := startJobService(t, bin)

	resp, err := http.Post(base+"/jobs?runs=200", "text/plain", strings.NewReader(progs.Section21))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}

	var env struct {
		State  string `json:"state"`
		Report *struct {
			Buggy int `json:"buggy"`
		} `json:"report"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for env.State != "done" {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		r, err := http.Get(base + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("envelope: %v\n%s", err, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if env.Report == nil || env.Report.Buggy != 1 {
		t.Errorf("served report: %+v", env)
	}

	if r, err := http.Get(base + "/readyz"); err != nil || r.StatusCode != http.StatusOK {
		t.Errorf("/readyz: %v %v", err, r)
	} else {
		r.Body.Close()
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, cmd); code != 0 {
		t.Errorf("graceful drain exit code %d, want 0", code)
	}
}

// buildCLIRace compiles the dart binary with the race detector for the
// serve gate: the flooded job server runs race-instrumented, and a
// detected race turns into a nonzero exit the gate catches.
func buildCLIRace(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "dartbin_race")
	out, err := exec.Command("go", "build", "-race", "-o", bin, "./cmd/dart").CombinedOutput()
	if err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

// TestCLIServeGate is the scripts/check.sh serve gate: hammer POST
// /jobs past the queue depth of a race-instrumented server, require
// honest 429s counted in /metrics as dart_jobs_rejected_total, then
// SIGTERM and require a clean drain (exit 0) despite the still-running
// backlog.
func TestCLIServeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	bin := buildCLIRace(t, dir)
	cmd, base := startJobService(t, bin,
		"-queue-depth", "1", "-executors", "1", "-drain-timeout", "1s")

	// slowSrc's nonlinear predicates keep each audit restarting for its
	// whole run budget, so the one executor stays busy while we flood.
	rejected, accepted := 0, 0
	deadline := time.Now().Add(30 * time.Second)
	for seed := 1; rejected == 0; seed++ {
		if time.Now().After(deadline) {
			t.Fatal("queue never rejected despite the flood")
		}
		resp, err := http.Post(
			fmt.Sprintf("%s/jobs?runs=50000000&seed=%d", base, seed),
			"text/plain", strings.NewReader(slowSrc))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
		default:
			t.Fatalf("POST /jobs: unexpected status %d", resp.StatusCode)
		}
	}
	if accepted == 0 {
		t.Fatal("nothing was admitted before the first rejection")
	}

	// The shed is visible in the Prometheus exposition.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "dart_jobs_rejected_total") ||
		strings.Contains(string(metrics), "dart_jobs_rejected_total 0\n") {
		t.Errorf("dart_jobs_rejected_total missing or zero after %d rejections:\n%.600s", rejected, metrics)
	}

	// Saturated service: not ready, but alive.
	if r, err := http.Get(base + "/readyz"); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz while saturated: %d, want 503", r.StatusCode)
		}
	}

	// SIGTERM with jobs mid-flight: the drain deadline checkpoints them
	// and the process still exits 0 — shutdown is not an error.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, cmd); code != 0 {
		t.Errorf("drain exit code %d, want 0", code)
	}
}

// TestCLIServeBindError: a bind failure is a config error — exit 2,
// like every other usage problem, never a hung process.
func TestCLIServeBindError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	bin := buildCLI(t, dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cmd := exec.Command(bin, "-serve", ln.Addr().String())
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("bind conflict exit = %v, want code 2\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "address already in use") {
		t.Errorf("bind diagnostic missing:\n%s", stderr.String())
	}
}

// TestCLIServeBadConfig: nonsensical service flags are usage errors.
func TestCLIServeBadConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	bin := buildCLI(t, dir)
	for _, args := range [][]string{
		{"-serve", "127.0.0.1:0", "-queue-depth", "0"},
		{"-serve", "127.0.0.1:0", "-max-body", "0"},
	} {
		cmd := exec.Command(bin, args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: exit = %v, want code 2\n%s", args, err, stderr.String())
		}
	}
}

func TestCLICovReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	txt := filepath.Join(dir, "cov.txt")
	page := filepath.Join(dir, "cov.html")
	if out, err := exec.Command("go", "run", "./cmd/dart",
		"-top", "h", "-seed", "1", "-covreport", txt, src).CombinedOutput(); err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("run: %v\n%s", err, out)
		}
	}
	b, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture search covers 3 of 4 branch directions (75%).
	if !strings.Contains(string(b), "branch coverage 3/4 directions (75.0%)") {
		t.Errorf("text report summary wrong:\n%s", b)
	}
	if !strings.Contains(string(b), "|") || !strings.Contains(string(b), "MISSED") {
		t.Errorf("text report missing source/missed table:\n%s", b)
	}

	exec.Command("go", "run", "./cmd/dart",
		"-top", "h", "-seed", "1", "-covreport", page, src).Run()
	hb, err := os.ReadFile(page)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(hb), "<!DOCTYPE html>") {
		t.Errorf(".html covreport is not an HTML page:\n%.200s", hb)
	}
}

func TestCLIAuditAggregateCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, _ := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-runs", "200")
	if !strings.Contains(out, "aggregate branch coverage") {
		t.Errorf("human audit summary missing aggregate coverage:\n%s", out)
	}

	out, _ = runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-runs", "200", "-json")
	var rep struct {
		Covered  int     `json:"branch_directions_covered"`
		Total    int     `json:"branch_directions_total"`
		Fraction float64 `json:"branch_coverage_fraction"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Total == 0 || rep.Covered == 0 || rep.Fraction <= 0 {
		t.Errorf("aggregate coverage empty: %+v\n%s", rep, out)
	}
	if rep.Covered > rep.Total {
		t.Errorf("covered %d > total %d", rep.Covered, rep.Total)
	}
}

func TestCLITraceWriteFailureWarns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full unavailable")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart",
		"-top", "h", "-seed", "1", "-trace", "/dev/full", src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want 1 (a lost trace must not change the verdict)\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "warning") || !strings.Contains(stderr.String(), "trace") {
		t.Errorf("no trace warning on stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "BUG") {
		t.Errorf("report lost alongside the trace:\n%s", stdout.String())
	}
}

func TestCLIAuditProgressAndElapsed(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart",
		"-audit", "-jobs", "2", "-seed", "1", "-runs", "200", "-progress", src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	cmd.Run()
	if !strings.Contains(stderr.String(), "functions,") {
		t.Errorf("-progress wrote no progress line to stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "time=") {
		t.Errorf("audit lines missing per-function elapsed:\n%s", stdout.String())
	}

	out, _ := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-runs", "200", "-json")
	var rep struct {
		Entries []struct {
			Function string  `json:"function"`
			Elapsed  float64 `json:"elapsed_seconds"`
		} `json:"entries"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	for _, e := range rep.Entries {
		if e.Elapsed <= 0 {
			t.Errorf("%s: elapsed_seconds = %v, want > 0", e.Function, e.Elapsed)
		}
	}
	if rep.Metrics == nil || rep.Metrics.Counters["runs"] == 0 {
		t.Errorf("aggregated metrics missing from audit JSON:\n%s", out)
	}
}

// TestCLIProfile: -profile prints the human cost tables after the
// search, and -json gains a structured profile object whose phase and
// site entries carry real accounting; without -profile the JSON report
// stays profile-free.
func TestCLIProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, _ := runCLI(t, "-top", "h", "-seed", "1", "-profile")
	if !strings.Contains(out, "phase breakdown") || !strings.Contains(out, "branch sites by solve cost") {
		t.Errorf("-profile printed no cost tables:\n%s", out)
	}
	for _, phase := range []string{"exec", "solve"} {
		if !strings.Contains(out, phase) {
			t.Errorf("-profile table missing %s phase:\n%s", phase, out)
		}
	}

	jout, _ := runCLI(t, "-top", "h", "-seed", "1", "-profile", "-json")
	var rep struct {
		Profile *struct {
			Phases []struct {
				Phase string `json:"phase"`
				Count int64  `json:"count"`
				Nanos int64  `json:"nanos"`
			} `json:"phases"`
			Sites []struct {
				Site   int    `json:"site"`
				Pos    string `json:"pos"`
				Fn     string `json:"fn"`
				Solves int64  `json:"solves"`
			} `json:"sites"`
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(jout), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jout)
	}
	if rep.Profile == nil || len(rep.Profile.Phases) == 0 || len(rep.Profile.Sites) == 0 {
		t.Fatalf("-profile -json report lacks profile data:\n%s", jout)
	}
	phases := map[string]int64{}
	var nanos int64
	for _, ph := range rep.Profile.Phases {
		phases[ph.Phase] = ph.Count
		nanos += ph.Nanos
	}
	if phases["exec"] == 0 || phases["solve"] == 0 || nanos == 0 {
		t.Errorf("profile phases implausible: %+v", rep.Profile.Phases)
	}
	for _, s := range rep.Profile.Sites {
		if s.Fn != "h" || s.Pos == "" || s.Solves == 0 {
			t.Errorf("profile site implausible: %+v", s)
		}
	}

	// Off by default: no profile key in the plain JSON report.
	plain, _ := runCLI(t, "-top", "h", "-seed", "1", "-json")
	var probe map[string]json.RawMessage
	if err := json.Unmarshal([]byte(plain), &probe); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, plain)
	}
	if _, ok := probe["profile"]; ok {
		t.Errorf("JSON report carries a profile without -profile:\n%s", plain)
	}
}

func TestCLIExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, _ := runCLI(t, "-top", "h", "-seed", "1", "-explain")
	if !strings.Contains(out, "coverage explanation:") {
		t.Errorf("-explain printed no explanation:\n%s", out)
	}

	jout, _ := runCLI(t, "-top", "h", "-seed", "1", "-explain", "-json")
	var rep struct {
		Explain *struct {
			Directions int            `json:"directions"`
			Covered    int            `json:"covered"`
			Buckets    map[string]int `json:"buckets"`
			Sites      []struct {
				Site int    `json:"site"`
				Fn   string `json:"fn"`
				Pos  string `json:"pos"`
			} `json:"sites"`
		} `json:"explain"`
	}
	if err := json.Unmarshal([]byte(jout), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jout)
	}
	if rep.Explain == nil || rep.Explain.Directions == 0 || len(rep.Explain.Sites) == 0 {
		t.Fatalf("-explain -json report lacks explain data:\n%s", jout)
	}
	sum := rep.Explain.Covered
	for _, n := range rep.Explain.Buckets {
		sum += n
	}
	if sum != rep.Explain.Directions {
		t.Errorf("accounting leak: covered %d + buckets %v != %d directions",
			rep.Explain.Covered, rep.Explain.Buckets, rep.Explain.Directions)
	}
	for _, s := range rep.Explain.Sites {
		if s.Fn == "" || s.Pos == "" {
			t.Errorf("explain site lacks fn/pos: %+v", s)
		}
	}

	// Off by default: no explain key in the plain JSON report.
	plain, _ := runCLI(t, "-top", "h", "-seed", "1", "-json")
	var probe map[string]json.RawMessage
	if err := json.Unmarshal([]byte(plain), &probe); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, plain)
	}
	for _, key := range []string{"explain", "explain_timeline"} {
		if _, ok := probe[key]; ok {
			t.Errorf("JSON report carries %q without -explain:\n%s", key, plain)
		}
	}
}
