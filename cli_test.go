package dart

// CLI integration tests: build-and-run the dart command against a fixture
// file, checking both human and JSON output modes end to end.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dart/internal/progs"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart")
	cmd.Args = append(cmd.Args, args...)
	cmd.Args = append(cmd.Args, src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("go run: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	return stdout.String(), code
}

func TestCLIFindsBug(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "BUG [abort]") || !strings.Contains(out, "d0.x:10") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLIJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode string `json:"mode"`
		Runs int    `json:"runs"`
		Bugs []struct {
			Kind   string           `json:"kind"`
			Inputs map[string]int64 `json:"inputs"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "directed" || len(rep.Bugs) != 1 || rep.Bugs[0].Kind != "abort" {
		t.Errorf("report: %+v", rep)
	}
	if rep.Bugs[0].Inputs["d0.x"] != 10 {
		t.Errorf("solved input missing: %+v", rep.Bugs[0].Inputs)
	}
}

func TestCLIListAndIface(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-list")
	if code != 0 || !strings.Contains(out, "h") || !strings.Contains(out, "f") {
		t.Errorf("list output (code %d):\n%s", code, out)
	}
	out, code = runCLI(t, "-top", "h", "-iface")
	if code != 0 || !strings.Contains(out, "toplevel h") {
		t.Errorf("iface output (code %d):\n%s", code, out)
	}
}

func TestCLIJSONStopReason(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-top", "h", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		StopReason     string `json:"stop_reason"`
		SolverComplete bool   `json:"solver_complete"`
		SolverCalls    int    `json:"solver_calls"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.StopReason != "first-bug" {
		t.Errorf("stop_reason = %q, want %q\n%s", rep.StopReason, "first-bug", out)
	}
	if !rep.SolverComplete {
		t.Errorf("solver_complete = false, want true\n%s", out)
	}
	if rep.SolverCalls == 0 {
		t.Errorf("solver_calls = 0, want > 0 (the bug needs a solve)\n%s", out)
	}
}

func TestCLIAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "4", "-timeout", "2s", "-seed", "1")
	if code != 1 {
		t.Fatalf("exit code %d (the fixture has a buggy function), output:\n%s", code, out)
	}
	if !strings.Contains(out, "audit:") || !strings.Contains(out, "with bugs") {
		t.Errorf("missing batch summary:\n%s", out)
	}
	// Every candidate toplevel gets its own status line.
	for _, fn := range []string{"h", "f"} {
		if !strings.Contains(out, fn) {
			t.Errorf("function %s missing from audit output:\n%s", fn, out)
		}
	}
}

func TestCLIAuditJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, code := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	var rep struct {
		Mode      string `json:"mode"`
		Functions int    `json:"functions"`
		Entries   []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "audit" || rep.Functions == 0 || len(rep.Entries) != rep.Functions {
		t.Errorf("report: %+v", rep)
	}
	statuses := map[string]string{}
	for _, e := range rep.Entries {
		statuses[e.Function] = e.Status
	}
	if statuses["h"] != "bugs" {
		t.Errorf("h: status %q, want %q\n%s", statuses["h"], "bugs", out)
	}
}

func TestCLINoBugExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "ok.mc")
	if err := os.WriteFile(src, []byte(progs.Section24), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart", "-top", "f", src)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("expected success: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all feasible execution paths explored") {
		t.Errorf("output:\n%s", out)
	}
}

// ------------------------------------------------- observability flags

func TestCLITraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	t1 := filepath.Join(dir, "a.ndjson")
	t2 := filepath.Join(dir, "b.ndjson")
	runCLI(t, "-top", "h", "-seed", "1", "-trace", t1)
	runCLI(t, "-top", "h", "-seed", "1", "-trace", t2)
	a, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || string(a) != string(b) {
		t.Errorf("-trace must be byte-identical across same-seed runs\nfirst:\n%s\nsecond:\n%s", a, b)
	}
	// Every line is one JSON event with a monotonically increasing seq.
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	for i, line := range lines {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) || ev.Kind == "" {
			t.Errorf("line %d: seq=%d kind=%q", i, ev.Seq, ev.Kind)
		}
	}
}

func TestCLITreeDumps(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "tree.json")
	dotPath := filepath.Join(dir, "tree.dot")
	runCLI(t, "-top", "h", "-seed", "1", "-tree", jsonPath)
	runCLI(t, "-top", "h", "-seed", "1", "-tree", dotPath)
	jb, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Nodes int `json:"nodes"`
		Tree  []struct {
			Path   string `json:"path"`
			Status string `json:"status"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(jb, &dump); err != nil {
		t.Fatalf("tree JSON: %v\n%s", err, jb)
	}
	if dump.Nodes == 0 || len(dump.Tree) != dump.Nodes {
		t.Errorf("tree dump: %+v", dump)
	}
	db, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(db), "digraph dart {") {
		t.Errorf("DOT dump:\n%s", db)
	}
}

func TestCLITreeRejectedWithAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart",
		"-audit", "-tree", filepath.Join(dir, "t.json"), src)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Error("-tree with -audit must be rejected")
	}
	if !strings.Contains(stderr.String(), "-tree") {
		t.Errorf("usage diagnostic missing:\n%s", stderr.String())
	}
}

func TestCLIMetricsAndTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	out, _ := runCLI(t, "-top", "h", "-seed", "1", "-metrics")
	for _, frag := range []string{"steps/s", "branch coverage", "%", "runs", "solver_sat"} {
		if !strings.Contains(out, frag) {
			t.Errorf("human summary missing %q:\n%s", frag, out)
		}
	}
	out, _ = runCLI(t, "-top", "h", "-seed", "1", "-json")
	var rep struct {
		Elapsed  float64 `json:"elapsed_seconds"`
		Rate     float64 `json:"steps_per_second"`
		Fraction float64 `json:"branch_coverage_fraction"`
		Metrics  *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Elapsed <= 0 || rep.Rate <= 0 {
		t.Errorf("elapsed=%v steps_per_second=%v, want > 0", rep.Elapsed, rep.Rate)
	}
	if rep.Fraction != 0.75 {
		t.Errorf("branch_coverage_fraction = %v, want 0.75", rep.Fraction)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["runs"] == 0 {
		t.Errorf("metrics missing from JSON report:\n%s", out)
	}
}

func TestCLIAuditProgressAndElapsed(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(progs.Section21), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/dart",
		"-audit", "-jobs", "2", "-seed", "1", "-runs", "200", "-progress", src)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	cmd.Run()
	if !strings.Contains(stderr.String(), "functions,") {
		t.Errorf("-progress wrote no progress line to stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "time=") {
		t.Errorf("audit lines missing per-function elapsed:\n%s", stdout.String())
	}

	out, _ := runCLI(t, "-audit", "-jobs", "2", "-seed", "1", "-runs", "200", "-json")
	var rep struct {
		Entries []struct {
			Function string  `json:"function"`
			Elapsed  float64 `json:"elapsed_seconds"`
		} `json:"entries"`
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	for _, e := range rep.Entries {
		if e.Elapsed <= 0 {
			t.Errorf("%s: elapsed_seconds = %v, want > 0", e.Function, e.Elapsed)
		}
	}
	if rep.Metrics == nil || rep.Metrics.Counters["runs"] == 0 {
		t.Errorf("aggregated metrics missing from audit JSON:\n%s", out)
	}
}
