// Command dart-experiments regenerates every table and figure of the
// DART paper's evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	dart-experiments [-exp id] [-seed n]
//
// Experiment ids: e1 e2 e3 e4 e5 e6 e7 e7full e8 e9 e10 e11 a1 a2, or "all"
// (default) for everything except the multi-minute e7full and e8.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dart"
	"dart/internal/minisip"
	"dart/internal/progs"
	"dart/internal/protocols"
	"dart/internal/statesearch"
)

var seed = flag.Int64("seed", 1, "random seed for all experiments")

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e11, a1, a2, e7full, all)")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func()
		slow bool
	}{
		{"e1", "Sec. 2.1 introductory example", e1, false},
		{"e2", "Sec. 2.4 worked example (completeness)", e2, false},
		{"e3", "Sec. 2.5 pointer-cast example", e3, false},
		{"e4", "Sec. 2.5 foobar non-linear example", e4, false},
		{"e5", "Sec. 4.1 AC-controller", e5, false},
		{"e6", "Fig. 9 Needham-Schroeder, possibilistic intruder", e6, false},
		{"e7", "Fig. 10 Needham-Schroeder, Dolev-Yao intruder (depths 1-3)", e7, false},
		{"e7full", "Fig. 10 final row: full Lowe attack at depth 4 (paper: 18 min)", e7full, true},
		{"e8", "Sec. 4.2 Lowe's fix (buggy vs correct)", e8, true},
		{"e9", "Sec. 4.3 SIP library audit", e9, false},
		{"e10", "Sec. 4.3 parser security vulnerability", e10, false},
		{"e11", "Sec. 4.2 comparison: VeriSoft-style state-space search", e11, false},
		{"a1", "ablation: branch-selection strategies", a1, false},
		{"a2", "ablation: coverage, directed vs random", a2, false},
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		if *exp == "all" && e.slow {
			fmt.Printf("== %s: %s ==\n   (skipped by default; run with -exp %s)\n\n", e.id, e.name, e.id)
			matched = true
			continue
		}
		matched = true
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		start := time.Now()
		e.run()
		fmt.Printf("   [%.2fs]\n\n", time.Since(start).Seconds())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func compile(src string) *dart.Program {
	prog, err := dart.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(2)
	}
	return prog
}

func row(cols ...string) {
	fmt.Printf("   %-34s %-22s %s\n", cols[0], cols[1], cols[2])
}

// e1: the h/f example. Directed search finds the abort within a couple of
// runs; random testing has probability ~2^-32 per run.
func e1() {
	prog := compile(progs.Section21)
	rep, _ := dart.Run(prog, dart.Options{Toplevel: "h", MaxRuns: 100, Seed: *seed, StopAtFirstBug: true})
	rnd, _ := dart.RandomTest(prog, dart.Options{Toplevel: "h", MaxRuns: 100000, Seed: *seed})
	row("search", "result", "runs")
	row("directed", bugStr(rep), fmt.Sprint(rep.Runs))
	row("random (100000-run budget)", bugStr(rnd), fmt.Sprint(rnd.Runs))
	if b := rep.FirstBug(); b != nil {
		fmt.Printf("   solved input vector: x=%d y=%d (constraint 2x = x+10)\n",
			b.Inputs["d0.x"], b.Inputs["d0.y"])
	}
}

// e2: Sec. 2.4 — the abort is unreachable and DART proves it.
func e2() {
	prog := compile(progs.Section24)
	rep, _ := dart.Run(prog, dart.Options{Toplevel: "f", MaxRuns: 100, Seed: *seed})
	row("program", "verdict", "runs (paper: 2)")
	verdict := "INCOMPLETE"
	if rep.Complete {
		verdict = "all paths explored, no error"
	}
	row("Sec. 2.4 f", verdict, fmt.Sprint(rep.Runs))
}

// e3: the pointer-cast example; the abort is reachable through the
// char*-aliased write, which dynamic analysis handles precisely.
func e3() {
	prog := compile(progs.Section25Cast)
	rep, _ := dart.Run(prog, dart.Options{Toplevel: "bar", MaxRuns: 200, Seed: *seed})
	abortFound := "abort NOT reached"
	for _, b := range rep.Bugs {
		if b.Kind == dart.Aborted {
			abortFound = fmt.Sprintf("abort reached (a->c == 0 solved), run %d", b.Run)
		}
	}
	row("program", "result", "runs")
	row("Sec. 2.5 bar", abortFound, fmt.Sprint(rep.Runs))
}

// e4: foobar — non-linear branch, graceful degradation.
func e4() {
	row("variant", "reachable abort found", "completeness flag")
	for _, v := range []struct{ name, src string }{
		{"inline x*x*x", progs.Foobar},
		{"library cube(x)", progs.FoobarLib},
	} {
		prog := compile(v.src)
		found := "no"
		var rep *dart.Report
		for s := int64(1); s <= 8; s++ {
			rep, _ = dart.Run(prog, dart.Options{Toplevel: "foobar", MaxRuns: 60, Seed: *seed + s})
			for _, b := range rep.Bugs {
				if b.Kind == dart.Aborted && b.Inputs["d0.y"] == 10 {
					found = fmt.Sprintf("yes (x=%d, y=10)", b.Inputs["d0.x"])
				}
			}
			if found != "no" {
				break
			}
		}
		row(v.name, found, fmt.Sprintf("all_linear=%v (cleared as expected)", rep.AllLinear))
	}
}

// e5: AC-controller — Sec. 4.1's table.
func e5() {
	prog := compile(progs.ACController)
	row("depth", "directed search", "random search")
	for depth := 1; depth <= 2; depth++ {
		rep, _ := dart.Run(prog, dart.Options{Toplevel: "ac_controller", Depth: depth, MaxRuns: 2000, Seed: *seed, StopAtFirstBug: true})
		rnd, _ := dart.RandomTest(prog, dart.Options{Toplevel: "ac_controller", Depth: depth, MaxRuns: 100000, Seed: *seed})
		paper := map[int]string{1: "paper: 6 runs, no error", 2: "paper: 7 runs, error"}[depth]
		dir := fmt.Sprintf("%s in %d runs (%s)", bugStr(rep), rep.Runs, paper)
		row(fmt.Sprint(depth), dir, bugStr(rnd)+fmt.Sprintf(" in %d runs", rnd.Runs))
		if b := rep.FirstBug(); b != nil {
			fmt.Printf("   trigger: messages (%d, %d)\n", b.Inputs["d0.message"], b.Inputs["d1.message"])
		}
	}
}

// e6: Fig. 9 — NS with the possibilistic intruder.
func e6() {
	prog := compile(protocols.Source(protocols.Possibilistic, protocols.NoFix))
	row("depth", "error?", "iterations (paper)")
	for depth := 1; depth <= 2; depth++ {
		rep, _ := dart.Run(prog, dart.Options{
			Toplevel: protocols.Toplevel, Depth: depth, MaxRuns: 50000, Seed: *seed, StopAtFirstBug: true,
		})
		paper := map[int]string{1: "69", 2: "664"}[depth]
		row(fmt.Sprint(depth), bugStr(rep), fmt.Sprintf("%d (paper: %s)", rep.Runs, paper))
	}
	rnd, _ := dart.RandomTest(prog, dart.Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 200000, Seed: *seed})
	fmt.Printf("   random search at depth 2: %s after %d runs (paper: not found in hours)\n",
		bugStr(rnd), rnd.Runs)
}

// e7: Fig. 10, depths 1-3 — exhaustive no-error sweeps.
func e7() {
	prog := compile(protocols.Source(protocols.DolevYao, protocols.NoFix))
	row("depth", "error?", "iterations (paper)")
	paper := map[int]string{1: "5", 2: "85", 3: "6260"}
	for depth := 1; depth <= 3; depth++ {
		rep, _ := dart.Run(prog, dart.Options{
			Toplevel: protocols.Toplevel, Depth: depth, MaxRuns: 300000, Seed: *seed,
		})
		verdict := bugStr(rep)
		if rep.Complete {
			verdict += " (exhaustive)"
		}
		row(fmt.Sprint(depth), verdict, fmt.Sprintf("%d (paper: %s)", rep.Runs, paper[depth]))
	}
	fmt.Println("   depth 4 (the full Lowe attack) is experiment e7full")
}

// e7full: Fig. 10's final row.
func e7full() {
	prog := compile(protocols.Source(protocols.DolevYao, protocols.NoFix))
	rep, _ := dart.Run(prog, dart.Options{
		Toplevel: protocols.Toplevel, Depth: 4, MaxRuns: 3_000_000, Seed: *seed, StopAtFirstBug: true,
	})
	row("depth", "error?", "iterations (paper)")
	row("4", bugStr(rep), fmt.Sprintf("%d (paper: 328459, 18 minutes)", rep.Runs))
	if b := rep.FirstBug(); b != nil {
		fmt.Println("   attack trace (the full Lowe attack):")
		fmt.Printf("     1. schedule: A starts a session with I        (kind=%d, peer=%d)\n", b.Inputs["d0.kind"], b.Inputs["d0.n1"])
		fmt.Printf("     2. I(A) -> B: {Na, A}Kb                       (kind=%d, n1=%d, n2=%d)\n", b.Inputs["d1.kind"], b.Inputs["d1.n1"], b.Inputs["d1.n2"])
		fmt.Printf("     3. I -> A: replay {Na, Nb, B}Ka               (kind=%d, n1=%d, n2=%d)\n", b.Inputs["d2.kind"], b.Inputs["d2.n1"], b.Inputs["d2.n2"])
		fmt.Printf("     4. I(A) -> B: {Nb}Kb  => B commits, violation (kind=%d, n1=%d)\n", b.Inputs["d3.kind"], b.Inputs["d3.n1"])
	}
}

// e8: Lowe's fix — the buggy implementation is still attackable.
func e8() {
	row("variant", "attack found?", "iterations")
	for _, fx := range []protocols.Fix{protocols.BuggyFix, protocols.CorrectFix} {
		prog := compile(protocols.Source(protocols.DolevYao, fx))
		rep, _ := dart.Run(prog, dart.Options{
			Toplevel: protocols.Toplevel, Depth: 4, MaxRuns: 3_000_000, Seed: *seed, StopAtFirstBug: true,
		})
		row(fx.String(), bugStr(rep), fmt.Sprint(rep.Runs))
	}
}

// e9: the SIP library audit (the oSIP experiment).
func e9() {
	prog, sem, err := minisip.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, _ := minisip.Audit(prog, sem, *seed, 1000, false)
	rnd, _ := minisip.Audit(prog, sem, *seed, 1000, true)
	fmt.Printf("   directed: %d/%d functions crashed (%.0f%%) — paper: 65%% of ~600 oSIP functions\n",
		res.CrashedFunctions, res.TotalFunctions, 100*res.Fraction())
	fmt.Printf("   random:   %d/%d functions crashed (%.0f%%)\n",
		rnd.CrashedFunctions, rnd.TotalFunctions, 100*rnd.Fraction())
	var crashed, safe []string
	for _, e := range res.Entries {
		if e.Crashed {
			crashed = append(crashed, fmt.Sprintf("%s(run %d)", e.Function, e.FirstCrashRun))
		} else {
			safe = append(safe, e.Function)
		}
	}
	sort.Strings(safe)
	fmt.Printf("   crashed: %s\n", strings.Join(crashed, " "))
	fmt.Printf("   safe:    %s\n", strings.Join(safe, " "))
}

// e10: the parser vulnerability.
func e10() {
	prog, _, err := minisip.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := &dart.Program{IR: prog}
	rep, _ := dart.Run(p, dart.Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: *seed})
	rnd, _ := dart.RandomTest(p, dart.Options{Toplevel: "parse_packet", MaxRuns: 2000, Seed: *seed})
	fixed, _ := dart.Run(p, dart.Options{Toplevel: "parse_packet_fixed", MaxRuns: 2000, Seed: *seed})
	row("parser", "directed", "random")
	row("parse_packet (oSIP 2.0.9)", bugStr(rep), bugStr(rnd))
	row("parse_packet_fixed (oSIP 2.2.0)", bugStr(fixed), "-")
	for _, b := range rep.Bugs {
		if b.Kind == dart.Crashed {
			fmt.Printf("   attack packet: magic=0x%x first=%d len=%d (> alloca limit 65536)\n",
				b.Inputs["d0.magic"], b.Inputs["d0.first"], b.Inputs["d0.len"])
		}
	}
}

// e11: the Sec. 4.2 comparison — a VeriSoft-style bounded state-space
// search over the same protocol, with and without analyst knowledge.
func e11() {
	prog, err := dart.Compile(protocols.Source(protocols.DolevYao, protocols.NoFix))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	curated := [][]int64{
		{0, 0, 3, 0, 0}, {0, 0, 2, 0, 0},
		{1, 2, 101, 1, 0}, {1, 2, 303, 3, 0},
		{2, 1, 101, 202, 2}, {2, 1, 303, 202, 2},
		{3, 2, 202, 0, 0}, {3, 2, 303, 0, 0},
	}
	var generic [][]int64
	for kind := int64(0); kind <= 3; kind++ {
		for key := int64(1); key <= 3; key++ {
			generic = append(generic, []int64{kind, key, 1, 2, 3})
		}
	}
	row("environment model", "attack found?", "runs / states")
	for _, v := range []struct {
		name     string
		alphabet [][]int64
	}{{"curated alphabet (analyst knows nonces)", curated}, {"generic alphabet (no secrets)", generic}} {
		res, err := statesearch.Search(prog.IR, statesearch.Options{
			Toplevel: protocols.Toplevel, Alphabet: v.alphabet, MaxDepth: 4, MaxRuns: 200000,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		verdict := "no"
		if res.Bug != nil {
			verdict = "yes: " + fmt.Sprint(res.Bug.Sequence)
		}
		row(v.name, verdict, fmt.Sprintf("%d / %d", res.Runs, res.StatesSeen))
	}
	fmt.Println("   (DART derives the curated values from path constraints — no analyst needed;")
	fmt.Println("    see -exp e7full for the corresponding directed search)")
}

// a1: strategies ablation on the AC-controller at depth 2.
func a1() {
	prog := compile(progs.ACController)
	row("strategy", "runs to violation", "")
	for _, s := range []dart.Strategy{dart.DFS, dart.BFS, dart.RandomBranch} {
		rep, _ := dart.Run(prog, dart.Options{
			Toplevel: "ac_controller", Depth: 2, MaxRuns: 5000, Seed: *seed,
			Strategy: s, StopAtFirstBug: true,
		})
		result := fmt.Sprint(rep.Runs)
		if rep.FirstBug() == nil {
			result = "not found in " + fmt.Sprint(rep.Runs)
		}
		row(fmt.Sprint(s), result, "")
	}
}

// a2: branch-coverage curve, directed vs random, on the filter program.
func a2() {
	prog := compile(progs.Filter)
	row("budget (runs)", "directed coverage", "random coverage")
	for _, budget := range []int{1, 2, 5, 10, 20, 50} {
		rep, _ := dart.Run(prog, dart.Options{Toplevel: "entry", MaxRuns: budget, Seed: *seed})
		rnd, _ := dart.RandomTest(prog, dart.Options{Toplevel: "entry", MaxRuns: budget, Seed: *seed})
		row(fmt.Sprint(budget),
			fmt.Sprintf("%d/%d", rep.Coverage.Covered(), rep.Coverage.Total()),
			fmt.Sprintf("%d/%d", rnd.Coverage.Covered(), rnd.Coverage.Total()))
	}
}

func bugStr(rep *dart.Report) string {
	if b := rep.FirstBug(); b != nil {
		return string(b.Kind.String()) + ": " + b.Msg
	}
	if rep.Complete {
		return "no error"
	}
	return "no error found"
}
