// Command dart tests a MiniC program with directed automated random
// testing, exactly as the paper's tool does for C: point it at a source
// file and a toplevel function, and it automatically extracts the
// interface, generates the random test driver, and runs the directed
// search.
//
// Usage:
//
//	dart [flags] program.mc
//
//	-top name      toplevel function under test (required unless -list/-audit)
//	-depth n       calls to the toplevel function per run (default 1)
//	-runs n        maximum number of executions (default 10000)
//	-seed n        random seed (default 1)
//	-strategy s    branch selection: dfs, bfs, random (default dfs)
//	-random        pure random testing instead of the directed search
//	-all-bugs      keep searching after the first bug
//	-hangs         report step-budget exhaustion (non-termination)
//	-timeout d     wall-clock budget (whole search, or per function with -audit)
//	-audit         audit every function of the program as toplevel in turn
//	-corpus dir    incremental re-audit corpus: with -audit, functions
//	               whose IR content hash is unchanged replay their
//	               distilled suite (and bug fixtures) instead of
//	               re-searching, and solver results persist on disk
//	               under the in-memory cache; with the job server,
//	               cached reports survive restarts.  Corrupt corpus
//	               files degrade to a full re-search, never a wrong
//	               verdict
//	-jobs n        audit worker-pool size (default all CPUs / -workers)
//	-workers n     parallel flip-workers per directed search (default 1);
//	               with -audit, -jobs defaults to CPUs/workers so
//	               -jobs × -workers respects one total CPU budget
//	-trace file    write an NDJSON trace of search events to file
//	-metrics       print the search metrics registry after the run
//	-explain       explain coverage: account every branch direction as
//	               covered or exactly one "why not" reason (solver-unsat,
//	               never-reached, fallbacks, ...) and print the table
//	               after the run; with -json the resolved explanation and
//	               the search timeline ride the report
//	-stall-window n  coverage-stall detector window in runs (0 = default
//	               256, negative disables); needs -explain
//	-progress      live progress line on stderr while -audit runs
//	-serve addr    serve live ops endpoints (/metrics /status /events
//	               /coverage /healthz /readyz /debug/pprof) on addr during
//	               the run; with NO program file, run the persistent
//	               audit-as-a-service job server instead: POST /jobs
//	               accepts MiniC sources (or ?lib=minisip), a bounded
//	               queue feeds the executor pool, SIGTERM drains
//	-queue-depth n   job-service queue bound (default 64; full = 429)
//	-executors n     job-service executor pool (default all CPUs)
//	-job-timeout d   per-job wall-clock deadline (default 60s)
//	-max-body n      POST /jobs body cap in bytes (default 1 MiB; 413 past it)
//	-drain-timeout d shutdown drain deadline (default 10s)
//	-covreport f   write an annotated source coverage report (.html = HTML)
//	-tree file     dump the explored execution tree (.dot = Graphviz, else JSON)
//	-list          list the functions that can serve as toplevel
//	-iface         print the extracted interface and exit
//	-dump-ir       print the compiled RAM-machine code and exit
//	-json          emit the report as JSON
//
// Exit status: 0 when no bugs were found, 1 on bugs (or, with -audit,
// internal faults), 2 on usage or compile errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dart"
	"dart/internal/ir"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		top      = flag.String("top", "", "toplevel function under test")
		depth    = flag.Int("depth", 1, "calls to the toplevel function per run")
		runs     = flag.Int("runs", 10000, "maximum number of executions")
		seed     = flag.Int64("seed", 1, "random seed")
		strategy = flag.String("strategy", "dfs", "branch selection: dfs, bfs, random")
		random   = flag.Bool("random", false, "pure random testing (baseline)")
		allBugs  = flag.Bool("all-bugs", false, "keep searching after the first bug")
		hangs    = flag.Bool("hangs", false, "report potential non-termination")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (whole search, or per function with -audit)")
		cacheF   = flag.Int("solve-cache", dart.DefaultSolveCacheCap, "per-search solve-cache capacity (0 disables the solver fast-path cache)")
		corpusF  = flag.String("corpus", "", "incremental re-audit corpus `dir`: unchanged functions replay their distilled suites instead of re-searching, solver results persist across processes, and the job server's cached reports survive restarts")
		auditF   = flag.Bool("audit", false, "audit every function of the program as toplevel in turn")
		jobs     = flag.Int("jobs", 0, "audit worker-pool size (default all CPUs / -workers)")
		workersF = flag.Int("workers", 1, "parallel flip-workers per directed search")
		traceF   = flag.String("trace", "", "write an NDJSON trace of search events to `file`")
		metricsF = flag.Bool("metrics", false, "print the search metrics registry after the run")
		explainF = flag.Bool("explain", false, "explain coverage: per-site \"why not covered\" ledger and search timeline, printed after the run (attached to -json output)")
		stallF   = flag.Int64("stall-window", 0, "coverage-stall detector window in `runs` (0 = default, negative disables); needs -explain")
		profileF = flag.Bool("profile", false, "collect a search cost profile (per-phase wall breakdown, per-site solver time/work) and print it after the run")
		progress = flag.Bool("progress", false, "live progress line on stderr while -audit runs")
		serveF   = flag.String("serve", "", "serve live ops HTTP endpoints on `addr` during the run (e.g. 127.0.0.1:8080, :0 picks a port); with no program file, run the persistent job server")
		queueF   = flag.Int("queue-depth", dart.DefaultJobQueueDepth, "job-service queue bound (full = HTTP 429)")
		execF    = flag.Int("executors", 0, "job-service executor pool size (default all CPUs)")
		jobTmoF  = flag.Duration("job-timeout", dart.DefaultJobTimeout, "per-job wall-clock deadline (0 disables)")
		maxBodyF = flag.Int64("max-body", dart.DefaultJobMaxBody, "POST /jobs body cap in `bytes` (HTTP 413 past it)")
		drainF   = flag.Duration("drain-timeout", dart.DefaultDrainTimeout, "shutdown drain deadline before in-flight jobs are cancelled")
		covrepF  = flag.String("covreport", "", "write an annotated source coverage report to `file` (.html = HTML, else text)")
		treeF    = flag.String("tree", "", "dump the explored execution tree to `file` (.dot = Graphviz, else JSON)")
		list     = flag.Bool("list", false, "list candidate toplevel functions")
		ifaceF   = flag.Bool("iface", false, "print the extracted interface")
		dumpIR   = flag.Bool("dump-ir", false, "print compiled RAM-machine code")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		interpF  = flag.Bool("interp", false, "execute on the reference interpreter instead of the compiled engine")
		xcheckF  = flag.Bool("xcheck", false, "differential gate: run the search under both engines and fail on any report divergence (disables the solve cache)")
	)
	flag.Parse()

	// -serve with no program file is service mode: a persistent
	// audit-as-a-service job server instead of a one-shot search.
	if *serveF != "" && flag.NArg() == 0 {
		return runJobService(serviceConfig{
			addr:         *serveF,
			queueDepth:   *queueF,
			executors:    *execF,
			jobTimeout:   *jobTmoF,
			maxBody:      *maxBodyF,
			drainTimeout: *drainF,
			corpusDir:    *corpusF,
		})
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dart [flags] program.mc   (or: dart -serve addr  with no file for the job server)")
		flag.PrintDefaults()
		return 2
	}
	if *treeF != "" && *auditF {
		fmt.Fprintln(os.Stderr, "dart: -tree needs a single search; it cannot be combined with -audit")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	prog, err := dart.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}

	if *list {
		for _, fn := range dart.Functions(prog) {
			fmt.Println(fn)
		}
		return 0
	}
	if *dumpIR {
		fmt.Print(ir.DisasmProg(prog.IR))
		return 0
	}

	// The trace sink is shared by both modes: one NDJSON stream, whether
	// it carries a single search or a whole interleaved audit.
	var trace *traceWriter
	if *traceF != "" {
		trace, err = newTraceWriter(*traceF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}

	if *xcheckF && (*auditF || *random) {
		fmt.Fprintln(os.Stderr, "dart: -xcheck applies to a single directed search (drop -audit/-random)")
		return 2
	}

	// The incremental corpus, shared by every mode that can use it.
	var corp *dart.Corpus
	if *corpusF != "" {
		corp, err = dart.OpenCorpus(*corpusF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}

	if *auditF {
		srv, ok := startOps(*serveF, "audit", string(src), prog, dart.Functions(prog))
		if !ok {
			return 2
		}
		code := runAudit(prog, auditConfig{
			seed:        *seed,
			maxRuns:     *runs,
			timeout:     *timeout,
			jobs:        *jobs,
			workers:     *workersF,
			cacheCap:    solveCacheCap(*cacheF),
			random:      *random,
			json:        *jsonOut,
			metrics:     *metricsF,
			explain:     *explainF,
			stallWindow: *stallF,
			profile:     *profileF,
			progress:    *progress,
			interp:      *interpF,
			trace:       trace,
			serve:       srv,
			covreport:   *covrepF,
			source:      string(src),
			corpus:      corp,
		})
		if srv != nil {
			srv.Done()
			srv.Close()
		}
		warnTrace(trace)
		return code
	}
	if *top == "" {
		fmt.Fprintln(os.Stderr, "dart: -top is required (use -list to see candidates)")
		return 2
	}
	if *ifaceF {
		in, err := dart.ExtractInterface(prog, *top)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
		fmt.Print(in.String())
		return 0
	}

	var strat dart.Strategy
	switch *strategy {
	case "dfs":
		strat = dart.DFS
	case "bfs":
		strat = dart.BFS
	case "random":
		strat = dart.RandomBranch
	default:
		fmt.Fprintf(os.Stderr, "dart: unknown strategy %q\n", *strategy)
		return 2
	}

	mode := "directed"
	if *random {
		mode = "random"
	}
	srv, ok := startOps(*serveF, mode, string(src), prog, []string{*top})
	if !ok {
		return 2
	}

	var tree *dart.PathTree
	if *treeF != "" {
		tree = dart.NewPathTree(0)
	}
	var observer dart.TraceSink
	if trace != nil || tree != nil || srv != nil {
		var sinks []dart.TraceSink
		if trace != nil {
			sinks = append(sinks, trace.sink)
		}
		if tree != nil {
			sinks = append(sinks, tree)
		}
		if srv != nil {
			sinks = append(sinks, srv.Sink())
		}
		observer = dart.TeeSinks(sinks...)
	}

	opts := dart.Options{
		Toplevel:        *top,
		Depth:           *depth,
		MaxRuns:         *runs,
		Seed:            *seed,
		Strategy:        strat,
		StopAtFirstBug:  !*allBugs,
		ReportStepLimit: *hangs,
		Timeout:         *timeout,
		SolveCacheCap:   solveCacheCap(*cacheF),
		Workers:         *workersF,
		Observer:        observer,
		CollectMetrics:  true,
		CollectProfile:  *profileF,
		// A live ops server explains regardless of -explain, so /explain
		// answers during any served search.
		CollectExplain: *explainF || srv != nil,
		StallWindow:    *stallF,
		Interpreter:    *interpF,
	}
	if *xcheckF {
		// No persistent cache here: the second engine would see disk
		// hits the first one seeded, skewing the compared counters.
		return runXcheck(prog, opts)
	}
	if corp != nil {
		// A single search gets the persistent solve cache (repeated
		// constraint systems answered from disk); the distilled-suite
		// fast path is audit-only.
		opts.Persistent = corp
	}
	var rep *dart.Report
	if *random {
		rep, err = dart.RandomTest(prog, opts)
	} else {
		rep, err = dart.Run(prog, opts)
	}
	if corp != nil {
		if ferr := corp.FlushSolves(); ferr != nil {
			fmt.Fprintln(os.Stderr, "dart: warning:", ferr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if srv != nil {
		srv.ReportCoverage(rep.Coverage)
		srv.ReportProfile(rep.Profile)
		srv.ReportExplain(rep.Explain)
		srv.Done()
		defer srv.Close()
	}
	warnTrace(trace)
	if tree != nil {
		if err := writeTree(tree, *treeF); err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}
	if *covrepF != "" {
		if err := writeCovReport(*covrepF, string(src), prog, rep.Coverage); err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}

	// The resolved coverage explanation: pure ledger over the program's
	// whole site universe, byte-identical across worker counts — what
	// -explain prints and what the "explain" key of -json carries.
	var explain *dart.ExplainReport
	if rep.Explain != nil {
		explain = dart.ResolveExplain(prog, rep.Explain, rep.Coverage)
	}

	if *jsonOut {
		return emitJSON(rep, *random, explain)
	}
	if rep.Workers > 1 {
		mode = fmt.Sprintf("%s (%d workers)", mode, rep.Workers)
	}
	fmt.Printf("%s search: %d runs, %d instructions in %s (%s steps/s), branch coverage %d/%d (%.1f%%)\n",
		mode, rep.Runs, rep.Steps, fmtElapsed(rep.Elapsed), fmtRate(stepsPerSecond(rep)),
		rep.Coverage.Covered(), rep.Coverage.Total(), 100*rep.Coverage.Fraction())
	if rep.Complete {
		fmt.Println("all feasible execution paths explored; no errors are reachable")
	} else if !*random {
		fmt.Printf("search incomplete (all_linear=%v all_locs_definite=%v restarts=%d mispredicts=%d)\n",
			rep.AllLinear, rep.AllLocsDefinite, rep.Restarts, rep.Mispredicts)
	}
	if rep.Stopped == dart.StopDeadline || rep.Stopped == dart.StopCancelled {
		fmt.Printf("search stopped early: %s (partial report)\n", rep.Stopped)
	}
	if *metricsF && rep.Metrics != nil {
		fmt.Print(rep.Metrics.Table())
	}
	if *profileF && rep.Profile != nil {
		fmt.Print(rep.Profile.Table(profileTopSites))
	}
	if *explainF && explain != nil {
		fmt.Print(explain.Table(explainTopRows))
	}
	for _, ie := range rep.InternalErrors {
		fmt.Printf("INTERNAL %v\n", ie)
	}
	for _, b := range rep.Bugs {
		fmt.Printf("BUG %v\n", b)
		fmt.Printf("    inputs: %v\n", b.Inputs)
	}
	if len(rep.Bugs) > 0 {
		return 1
	}
	return 0
}

// runXcheck is the CLI face of the differential gate: the same
// directed search is run twice — once on the compiled closure-threaded
// engine, once on the reference interpreter — and the deterministic
// report signature planes (bugs, coverage, completeness flags, explain
// ledger, per-site solver counters; exact run/step/solver tallies at
// one worker) must match byte for byte.  The solve cache is disabled
// because its per-site hit/miss counters are engine-independent only
// without the cross-run fast path.
func runXcheck(prog *dart.Program, opts dart.Options) int {
	opts.Observer = nil
	opts.CollectProfile = true
	opts.CollectExplain = true
	opts.SolveCacheCap = -1
	var sigs [2]string
	for i, interp := range []bool{false, true} {
		opts.Interpreter = interp
		rep, err := dart.Run(prog, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
		sigs[i] = rep.EngineSignature(prog.IR)
	}
	if sigs[0] != sigs[1] {
		fmt.Println("xcheck: ENGINES DIVERGED")
		fmt.Println("--- compiled engine")
		fmt.Print(sigs[0])
		fmt.Println("--- reference interpreter")
		fmt.Print(sigs[1])
		return 1
	}
	fmt.Println("xcheck: compiled engine and reference interpreter agree")
	fmt.Print(sigs[0])
	return 0
}

// ----------------------------------------------------------- job service

// serviceConfig carries the flag values relevant to service mode.
type serviceConfig struct {
	addr         string
	queueDepth   int
	executors    int
	jobTimeout   time.Duration
	maxBody      int64
	drainTimeout time.Duration
	corpusDir    string
}

// runJobService runs `dart -serve addr` with no program file: the
// persistent audit-as-a-service job server.  It binds the ops HTTP
// surface with the job endpoints mounted, then blocks until SIGTERM or
// SIGINT, drains the queue within the drain deadline, and exits 0 — a
// graceful shutdown is a success, not an error.  Bind and configuration
// failures exit 2 like every other usage error.
func runJobService(cfg serviceConfig) int {
	if cfg.queueDepth < 1 {
		fmt.Fprintln(os.Stderr, "dart: -queue-depth must be at least 1")
		return 2
	}
	if cfg.maxBody < 1 {
		fmt.Fprintln(os.Stderr, "dart: -max-body must be at least 1")
		return 2
	}

	var corp *dart.Corpus
	if cfg.corpusDir != "" {
		var err error
		corp, err = dart.OpenCorpus(cfg.corpusDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}

	srv := dart.NewOpsServer(dart.OpsConfig{Addr: cfg.addr, Mode: "serve"})
	jobTimeout := cfg.jobTimeout
	if jobTimeout == 0 {
		jobTimeout = -1 // flag 0 = no deadline; the library's 0 = default
	}
	svc := dart.NewJobService(dart.JobsConfig{
		QueueDepth:   cfg.queueDepth,
		Executors:    cfg.executors,
		JobTimeout:   jobTimeout,
		DrainTimeout: cfg.drainTimeout,
		MaxBody:      cfg.maxBody,
		Libraries:    dart.BuiltinLibraries(),
		Sink:         srv.Sink(),
		Corpus:       corp,
	})
	svc.RegisterOn(srv)
	if err := srv.Listen(); err != nil {
		svc.Drain(0)
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	// Same machine-parseable announcement as the ride-along ops mode, so
	// scripts can scrape the bound port when -serve :0 is used.
	fmt.Fprintf(os.Stderr, "dart: serving ops on http://%s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	signal.Stop(sig)
	fmt.Fprintf(os.Stderr, "dart: %s: draining job queue (deadline %s)\n", got, cfg.drainTimeout)
	svc.Drain(cfg.drainTimeout)
	srv.Done()
	srv.Close()
	fmt.Fprintln(os.Stderr, "dart: drained; exiting")
	return 0
}

// ------------------------------------------------------------- trace file

// traceWriter pairs an NDJSON sink with the file it writes to.
type traceWriter struct {
	f    *os.File
	sink *dart.NDJSONSink
}

func newTraceWriter(path string) (*traceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &traceWriter{f: f, sink: dart.NewNDJSONSink(f)}, nil
}

// closeTrace flushes and closes the trace file, surfacing the first
// write or encoding error.  closeTrace(nil) is a no-op.
func closeTrace(t *traceWriter) error {
	if t == nil {
		return nil
	}
	if err := t.sink.Err(); err != nil {
		t.f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// warnTrace downgrades a trace-file failure to a stderr warning: the
// search finished and its report stands; losing the ride-along trace
// must not change the exit code, but it must not be silent either.
func warnTrace(t *traceWriter) {
	if err := closeTrace(t); err != nil {
		fmt.Fprintln(os.Stderr, "dart: warning:", err)
	}
}

// ------------------------------------------------------------- live ops

// startOps starts the live operations server when -serve is set and
// announces the bound address on stderr (machine-parseable, so :0 is
// usable from scripts).
func startOps(addr, mode, src string, prog *dart.Program, fns []string) (*dart.OpsServer, bool) {
	if addr == "" {
		return nil, true
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      addr,
		Mode:      mode,
		Source:    src,
		Sites:     dart.BranchSites(prog),
		NumSites:  prog.IR.NumSites,
		Functions: fns,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return nil, false
	}
	fmt.Fprintf(os.Stderr, "dart: serving ops on http://%s\n", srv.Addr())
	return srv, true
}

// writeCovReport renders the annotated source coverage report to path
// (.html = standalone HTML page, anything else = terminal text).
func writeCovReport(path, src string, prog *dart.Program, set *dart.CoverageSet) error {
	rep := dart.AnnotateCoverage(src, dart.BranchSites(prog), set)
	var out []byte
	if strings.HasSuffix(path, ".html") {
		out = rep.HTML()
	} else {
		out = []byte(rep.Text())
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("covreport: %w", err)
	}
	return nil
}

// writeTree renders the explored execution tree: Graphviz DOT when the
// file name ends in .dot, JSON otherwise.
func writeTree(tree *dart.PathTree, path string) error {
	var out []byte
	if strings.HasSuffix(path, ".dot") {
		out = []byte(tree.DOT())
	} else {
		b, err := tree.JSON()
		if err != nil {
			return fmt.Errorf("tree: %w", err)
		}
		out = b
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	return nil
}

// ------------------------------------------------------------ human bits

// fmtElapsed rounds a duration for the human summary.
func fmtElapsed(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.String()
}

// stepsPerSecond is the whole-search execution rate; zero when the
// elapsed time is too small to divide by meaningfully.
func stepsPerSecond(rep *dart.Report) float64 {
	if rep.Elapsed <= 0 {
		return 0
	}
	return float64(rep.Steps) / rep.Elapsed.Seconds()
}

// fmtRate renders an events-per-second figure compactly.
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}

// -------------------------------------------------------------- progress

// progressSink renders a live one-line audit progress display on w,
// redrawn in place with carriage returns.  It is an obs sink fed by the
// same event stream as every other observer, so it needs no hooks of
// its own into the audit pool; being write-only and mutex-guarded it is
// safe under any -jobs value.
type progressSink struct {
	mu         sync.Mutex
	w          io.Writer
	total      int
	done       int
	bugs       int
	restarts   int
	solverFail int
	last       time.Time
	width      int
}

func newProgressSink(w io.Writer, total int) *progressSink {
	return &progressSink{w: w, total: total}
}

// Event implements dart.TraceSink.
func (p *progressSink) Event(ev dart.TraceEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fnEdge := false
	switch ev.Kind {
	case dart.EvAuditFnStart:
		fnEdge = true
	case dart.EvAuditFnEnd:
		p.done++
		fnEdge = true
	case dart.EvBugFound:
		p.bugs++
	case dart.EvRestart:
		p.restarts++
	case dart.EvSolverVerdict:
		if ev.Verdict != "sat" {
			p.solverFail++
		}
	}
	// Function boundaries always redraw; the high-frequency per-run
	// events are throttled so the terminal is not flooded.
	now := time.Now()
	if !fnEdge && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	p.redraw()
}

// finish draws the final state and moves off the progress line.
func (p *progressSink) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.redraw()
	fmt.Fprintln(p.w)
}

func (p *progressSink) redraw() {
	line := fmt.Sprintf("audit: %d/%d functions, %d bugs, %d restarts, %d solver failures",
		p.done, p.total, p.bugs, p.restarts, p.solverFail)
	if pad := p.width - len(line); pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	p.width = len(line)
	fmt.Fprint(p.w, "\r"+line)
}

// ----------------------------------------------------------------- audit

// solveCacheCap maps the -solve-cache flag onto Options.SolveCacheCap:
// the flag's 0 means "off" (the library encodes that as negative, with 0
// reserved for "default capacity").
func solveCacheCap(flagVal int) int {
	if flagVal <= 0 {
		return -1
	}
	return flagVal
}

// profileTopSites is how many branch sites the -profile table ranks.
const profileTopSites = 10

// explainTopRows is how many uncovered directions the -explain table
// lists before eliding the rest (the bucket summary always covers 100%).
const explainTopRows = 25

// auditConfig carries the flag values relevant to -audit mode.
type auditConfig struct {
	seed        int64
	maxRuns     int
	timeout     time.Duration
	jobs        int
	workers     int
	cacheCap    int
	random      bool
	json        bool
	metrics     bool
	explain     bool
	stallWindow int64
	profile     bool
	progress    bool
	interp      bool
	trace       *traceWriter
	serve       *dart.OpsServer
	covreport   string
	source      string
	corpus      *dart.Corpus
}

// runAudit tests every function of the program as toplevel in turn over
// a worker pool, each function under its own deadline and recover
// barrier, and prints one status line (or JSON entry) per function plus
// a batch summary.
func runAudit(prog *dart.Program, cfg auditConfig) int {
	fns := dart.Functions(prog)
	var pr *progressSink
	var sinks []dart.TraceSink
	if cfg.trace != nil {
		sinks = append(sinks, cfg.trace.sink)
	}
	if cfg.progress {
		pr = newProgressSink(os.Stderr, len(fns))
		sinks = append(sinks, pr)
	}
	opts := dart.AuditOptions{
		Toplevels:     fns,
		Seed:          cfg.seed,
		MaxRuns:       cfg.maxRuns,
		Timeout:       cfg.timeout,
		Jobs:          cfg.jobs,
		Workers:       cfg.workers,
		SolveCacheCap: cfg.cacheCap,
		UseRandom:     cfg.random,
		Interpreter:   cfg.interp,
		// A live ops server profiles regardless of -profile: /profile
		// should answer during any served audit, and audits are long
		// enough that the profiler's clock reads are noise.
		CollectProfile: cfg.profile || cfg.serve != nil,
		// Likewise /explain answers during any served audit.
		CollectExplain: cfg.explain || cfg.serve != nil,
		StallWindow:    cfg.stallWindow,
		Corpus:         cfg.corpus,
	}
	if srv := cfg.serve; srv != nil {
		sinks = append(sinks, srv.Sink())
		// Fold each function's coverage, cost profile, and explainer
		// ledger into /coverage, /profile, and /explain as it lands,
		// and tag workers so /debug/pprof attributes CPU per function.
		opts.OnEntry = func(e dart.AuditEntry) {
			if e.Report != nil {
				srv.ReportCoverage(e.Report.Coverage)
				srv.ReportProfile(e.Report.Profile)
				srv.ReportExplain(e.Report.Explain)
			}
		}
		opts.ProfileLabels = true
	}
	opts.Observer = dart.TeeSinks(sinks...)
	res := dart.Audit(prog, opts)
	if pr != nil {
		pr.finish()
	}
	// Corpus degradation notes (corrupt files, flush failures) are
	// warnings: the audit's verdicts stand either way.
	for _, n := range res.CorpusNotes {
		fmt.Fprintln(os.Stderr, "dart: warning:", n)
	}
	if cfg.covreport != "" {
		if err := writeCovReport(cfg.covreport, cfg.source, prog, res.Coverage); err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
	}
	// The whole-library coverage explanation: merged ledger resolved
	// against merged coverage over the program's full site universe.
	var explain *dart.ExplainReport
	if res.Explain != nil {
		explain = dart.ResolveExplain(prog, res.Explain, res.Coverage)
	}
	if cfg.json {
		return emitAuditJSON(res, explain)
	}
	for _, e := range res.Entries {
		if e.Report == nil {
			fmt.Printf("%-24s %-14s %s\n", e.Function, e.Status, e.Err)
			continue
		}
		extra := ""
		if len(e.Report.Bugs) > 0 {
			extra = fmt.Sprintf("  bugs=%d first_run=%d", len(e.Report.Bugs), e.Report.Bugs[0].Run)
		}
		if e.Retried {
			extra += "  retried"
		}
		if e.CachedByCorpus {
			extra += "  cached"
		}
		fmt.Printf("%-24s %-14s runs=%-6d time=%-10s%s\n",
			e.Function, e.Status, e.Report.Runs, fmtElapsed(e.Elapsed), extra)
	}
	fmt.Printf("audit: %d functions, %d runs: %d ok, %d with bugs, %d timed out, %d faulted, %d cancelled\n",
		res.Functions(), res.TotalRuns, res.OK, res.Buggy, res.TimedOut, res.Faulted, res.Cancelled)
	if cfg.corpus != nil {
		fmt.Printf("audit: corpus: %d functions replayed from corpus, %d entries stored, %d solves persisted\n",
			res.CorpusHits, res.CorpusStores, cfg.corpus.SolveCount())
	}
	fmt.Printf("audit: aggregate branch coverage %d/%d directions (%.1f%%), %d/%d sites touched\n",
		res.Coverage.Covered(), res.Coverage.Total(), 100*res.Coverage.Fraction(),
		res.Coverage.SitesTouched(), res.Coverage.Sites())
	if cfg.metrics && res.Metrics != nil {
		fmt.Print(res.Metrics.Table())
	}
	if cfg.profile && res.Profile != nil {
		fmt.Print(res.Profile.Table(profileTopSites))
	}
	if cfg.explain && explain != nil {
		fmt.Print(explain.Table(explainTopRows))
	}
	if res.Buggy > 0 || res.Faulted > 0 {
		return 1
	}
	return 0
}

// jsonAudit is the machine-readable audit batch shape.
type jsonAudit struct {
	Mode      string `json:"mode"`
	Functions int    `json:"functions"`
	TotalRuns int    `json:"total_runs"`
	OK        int    `json:"ok"`
	Buggy     int    `json:"buggy"`
	TimedOut  int    `json:"timed_out"`
	Faulted   int    `json:"faulted"`
	Cancelled int    `json:"cancelled"`
	// Incremental re-audit provenance (only with -corpus): how many
	// functions were answered by distilled-suite replay and how many
	// fresh entries this batch stored.
	CorpusHits   int `json:"corpus_hits,omitempty"`
	CorpusStores int `json:"corpus_stores,omitempty"`
	// Aggregate branch coverage over the whole library (union of every
	// per-function search; sites are program-global).
	CoverageCovered        int                   `json:"branch_directions_covered"`
	CoverageTotal          int                   `json:"branch_directions_total"`
	BranchCoverageFraction float64               `json:"branch_coverage_fraction"`
	Metrics                *dart.MetricsSnapshot `json:"metrics,omitempty"`
	Profile                *dart.ProfileSnapshot `json:"profile,omitempty"`
	// Explain is the whole-library coverage explanation: merged
	// per-function ledgers resolved against the merged coverage (pure
	// ledger, no timeline).
	Explain *dart.ExplainReport `json:"explain,omitempty"`
	Entries []jsonAuditEntry    `json:"entries"`
}

type jsonAuditEntry struct {
	Function       string    `json:"function"`
	Status         string    `json:"status"`
	Runs           int       `json:"runs"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Retried        bool      `json:"retried,omitempty"`
	CachedByCorpus bool      `json:"cached_by_corpus,omitempty"`
	Err            string    `json:"error,omitempty"`
	Bugs           []jsonBug `json:"bugs"`
}

func emitAuditJSON(res *dart.AuditResult, explain *dart.ExplainReport) int {
	out := jsonAudit{
		Mode:                   "audit",
		Functions:              res.Functions(),
		TotalRuns:              res.TotalRuns,
		OK:                     res.OK,
		Buggy:                  res.Buggy,
		TimedOut:               res.TimedOut,
		Faulted:                res.Faulted,
		Cancelled:              res.Cancelled,
		CorpusHits:             res.CorpusHits,
		CorpusStores:           res.CorpusStores,
		CoverageCovered:        res.Coverage.Covered(),
		CoverageTotal:          res.Coverage.Total(),
		BranchCoverageFraction: res.Coverage.Fraction(),
		Metrics:                res.Metrics,
		Profile:                res.Profile,
		Explain:                explain,
		Entries:                []jsonAuditEntry{},
	}
	for _, e := range res.Entries {
		je := jsonAuditEntry{
			Function:       e.Function,
			Status:         string(e.Status),
			ElapsedSeconds: e.Elapsed.Seconds(),
			Retried:        e.Retried,
			CachedByCorpus: e.CachedByCorpus,
			Err:            e.Err,
			Bugs:           []jsonBug{},
		}
		if e.Report != nil {
			je.Runs = e.Report.Runs
			for _, b := range e.Report.Bugs {
				je.Bugs = append(je.Bugs, jsonBug{
					Kind:   b.Kind.String(),
					Msg:    b.Msg,
					Pos:    b.Pos.String(),
					Run:    b.Run,
					Inputs: b.Inputs,
				})
			}
		}
		out.Entries = append(out.Entries, je)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if out.Buggy > 0 || out.Faulted > 0 {
		return 1
	}
	return 0
}

// jsonReport is the machine-readable report shape.
type jsonReport struct {
	Mode                   string                `json:"mode"`
	Runs                   int                   `json:"runs"`
	Steps                  int64                 `json:"instructions"`
	ElapsedSeconds         float64               `json:"elapsed_seconds"`
	StepsPerSecond         float64               `json:"steps_per_second"`
	Complete               bool                  `json:"complete"`
	AllLinear              bool                  `json:"all_linear"`
	AllLocsDefinite        bool                  `json:"all_locs_definite"`
	CoverageCovered        int                   `json:"branch_directions_covered"`
	CoverageTotal          int                   `json:"branch_directions_total"`
	BranchCoverageFraction float64               `json:"branch_coverage_fraction"`
	Restarts               int                   `json:"restarts"`
	Mispredicts            int                   `json:"mispredicts"`
	SolverCalls            int                   `json:"solver_calls"`
	SolverFailures         int                   `json:"solver_failures"`
	SolveCacheHits         int                   `json:"solve_cache_hits"`
	SolveCacheMisses       int                   `json:"solve_cache_misses"`
	SolveCacheEvictions    int                   `json:"solve_cache_evictions"`
	SlicedPreds            int64                 `json:"solver_sliced_preds"`
	Workers                int                   `json:"workers"`
	FrontierDropped        int                   `json:"frontier_dropped"`
	Steals                 int64                 `json:"frontier_steals"`
	StopReason             string                `json:"stop_reason"`
	SolverComplete         bool                  `json:"solver_complete"`
	Metrics                *dart.MetricsSnapshot `json:"metrics,omitempty"`
	Profile                *dart.ProfileSnapshot `json:"profile,omitempty"`
	// Explain is the resolved coverage explanation: pure ledger over the
	// whole site universe, byte-identical across -workers values (the
	// check.sh explain gate diffs exactly this object).
	Explain *dart.ExplainReport `json:"explain,omitempty"`
	// ExplainTimeline is the search's run-indexed progress ring and
	// stall count — honest schedule texture, excluded from byte
	// comparisons, hence a sibling of the deterministic Explain.
	ExplainTimeline *jsonTimeline  `json:"explain_timeline,omitempty"`
	InternalErrors  []jsonInternal `json:"internal_errors,omitempty"`
	Bugs            []jsonBug      `json:"bugs"`
}

// jsonTimeline is the timeline half of an ExplainSnapshot on the JSON
// report.
type jsonTimeline struct {
	Timeline []dart.TimelineSample `json:"timeline,omitempty"`
	Stalls   int64                 `json:"stalls,omitempty"`
}

type jsonInternal struct {
	Phase  string           `json:"phase"`
	Msg    string           `json:"message"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs,omitempty"`
}

type jsonBug struct {
	Kind   string           `json:"kind"`
	Msg    string           `json:"message"`
	Pos    string           `json:"position"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs"`
}

func emitJSON(rep *dart.Report, random bool, explain *dart.ExplainReport) int {
	mode := "directed"
	if random {
		mode = "random"
	}
	out := jsonReport{
		Mode:                   mode,
		Runs:                   rep.Runs,
		Steps:                  rep.Steps,
		ElapsedSeconds:         rep.Elapsed.Seconds(),
		StepsPerSecond:         stepsPerSecond(rep),
		Complete:               rep.Complete,
		AllLinear:              rep.AllLinear,
		AllLocsDefinite:        rep.AllLocsDefinite,
		CoverageCovered:        rep.Coverage.Covered(),
		CoverageTotal:          rep.Coverage.Total(),
		BranchCoverageFraction: rep.Coverage.Fraction(),
		Restarts:               rep.Restarts,
		Mispredicts:            rep.Mispredicts,
		SolverCalls:            rep.SolverCalls,
		SolverFailures:         rep.SolverFailures,
		SolveCacheHits:         rep.SolveCacheHits,
		SolveCacheMisses:       rep.SolveCacheMisses,
		SolveCacheEvictions:    rep.SolveCacheEvictions,
		SlicedPreds:            rep.SlicedPreds,
		Workers:                rep.Workers,
		FrontierDropped:        rep.FrontierDropped,
		Steals:                 rep.Steals,
		StopReason:             string(rep.Stopped),
		SolverComplete:         rep.SolverComplete,
		Metrics:                rep.Metrics,
		Profile:                rep.Profile,
		Explain:                explain,
	}
	if snap := rep.Explain; snap != nil && (len(snap.Timeline) > 0 || snap.Stalls > 0) {
		out.ExplainTimeline = &jsonTimeline{Timeline: snap.Timeline, Stalls: snap.Stalls}
	}
	out.Bugs = []jsonBug{}
	for _, ie := range rep.InternalErrors {
		out.InternalErrors = append(out.InternalErrors, jsonInternal{
			Phase:  ie.Phase,
			Msg:    ie.Msg,
			Run:    ie.Run,
			Inputs: ie.Inputs,
		})
	}
	for _, b := range rep.Bugs {
		out.Bugs = append(out.Bugs, jsonBug{
			Kind:   b.Kind.String(),
			Msg:    b.Msg,
			Pos:    b.Pos.String(),
			Run:    b.Run,
			Inputs: b.Inputs,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if len(out.Bugs) > 0 {
		return 1
	}
	return 0
}
