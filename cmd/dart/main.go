// Command dart tests a MiniC program with directed automated random
// testing, exactly as the paper's tool does for C: point it at a source
// file and a toplevel function, and it automatically extracts the
// interface, generates the random test driver, and runs the directed
// search.
//
// Usage:
//
//	dart [flags] program.mc
//
//	-top name      toplevel function under test (required unless -list)
//	-depth n       calls to the toplevel function per run (default 1)
//	-runs n        maximum number of executions (default 10000)
//	-seed n        random seed (default 1)
//	-strategy s    branch selection: dfs, bfs, random (default dfs)
//	-random        pure random testing instead of the directed search
//	-all-bugs      keep searching after the first bug
//	-hangs         report step-budget exhaustion (non-termination)
//	-list          list the functions that can serve as toplevel
//	-iface         print the extracted interface and exit
//	-dump-ir       print the compiled RAM-machine code and exit
//	-json          emit the report as JSON
//
// Exit status: 0 when no bugs were found, 1 on bugs, 2 on usage or
// compile errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dart"
	"dart/internal/ir"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		top      = flag.String("top", "", "toplevel function under test")
		depth    = flag.Int("depth", 1, "calls to the toplevel function per run")
		runs     = flag.Int("runs", 10000, "maximum number of executions")
		seed     = flag.Int64("seed", 1, "random seed")
		strategy = flag.String("strategy", "dfs", "branch selection: dfs, bfs, random")
		random   = flag.Bool("random", false, "pure random testing (baseline)")
		allBugs  = flag.Bool("all-bugs", false, "keep searching after the first bug")
		hangs    = flag.Bool("hangs", false, "report potential non-termination")
		list     = flag.Bool("list", false, "list candidate toplevel functions")
		ifaceF   = flag.Bool("iface", false, "print the extracted interface")
		dumpIR   = flag.Bool("dump-ir", false, "print compiled RAM-machine code")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dart [flags] program.mc")
		flag.PrintDefaults()
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	prog, err := dart.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}

	if *list {
		for _, fn := range dart.Functions(prog) {
			fmt.Println(fn)
		}
		return 0
	}
	if *dumpIR {
		fmt.Print(ir.DisasmProg(prog.IR))
		return 0
	}
	if *top == "" {
		fmt.Fprintln(os.Stderr, "dart: -top is required (use -list to see candidates)")
		return 2
	}
	if *ifaceF {
		in, err := dart.ExtractInterface(prog, *top)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
		fmt.Print(in.String())
		return 0
	}

	var strat dart.Strategy
	switch *strategy {
	case "dfs":
		strat = dart.DFS
	case "bfs":
		strat = dart.BFS
	case "random":
		strat = dart.RandomBranch
	default:
		fmt.Fprintf(os.Stderr, "dart: unknown strategy %q\n", *strategy)
		return 2
	}

	opts := dart.Options{
		Toplevel:        *top,
		Depth:           *depth,
		MaxRuns:         *runs,
		Seed:            *seed,
		Strategy:        strat,
		StopAtFirstBug:  !*allBugs,
		ReportStepLimit: *hangs,
	}
	var rep *dart.Report
	if *random {
		rep, err = dart.RandomTest(prog, opts)
	} else {
		rep, err = dart.Run(prog, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}

	if *jsonOut {
		return emitJSON(rep, *random)
	}
	mode := "directed"
	if *random {
		mode = "random"
	}
	fmt.Printf("%s search: %d runs, %d instructions, branch coverage %d/%d\n",
		mode, rep.Runs, rep.Steps, rep.Coverage.Covered(), rep.Coverage.Total())
	if rep.Complete {
		fmt.Println("all feasible execution paths explored; no errors are reachable")
	} else if !*random {
		fmt.Printf("search incomplete (all_linear=%v all_locs_definite=%v restarts=%d)\n",
			rep.AllLinear, rep.AllLocsDefinite, rep.Restarts)
	}
	for _, b := range rep.Bugs {
		fmt.Printf("BUG %v\n", b)
		fmt.Printf("    inputs: %v\n", b.Inputs)
	}
	if len(rep.Bugs) > 0 {
		return 1
	}
	return 0
}

// jsonReport is the machine-readable report shape.
type jsonReport struct {
	Mode            string    `json:"mode"`
	Runs            int       `json:"runs"`
	Steps           int64     `json:"instructions"`
	Complete        bool      `json:"complete"`
	AllLinear       bool      `json:"all_linear"`
	AllLocsDefinite bool      `json:"all_locs_definite"`
	CoverageCovered int       `json:"branch_directions_covered"`
	CoverageTotal   int       `json:"branch_directions_total"`
	Bugs            []jsonBug `json:"bugs"`
}

type jsonBug struct {
	Kind   string           `json:"kind"`
	Msg    string           `json:"message"`
	Pos    string           `json:"position"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs"`
}

func emitJSON(rep *dart.Report, random bool) int {
	mode := "directed"
	if random {
		mode = "random"
	}
	out := jsonReport{
		Mode:            mode,
		Runs:            rep.Runs,
		Steps:           rep.Steps,
		Complete:        rep.Complete,
		AllLinear:       rep.AllLinear,
		AllLocsDefinite: rep.AllLocsDefinite,
		CoverageCovered: rep.Coverage.Covered(),
		CoverageTotal:   rep.Coverage.Total(),
		Bugs:            []jsonBug{},
	}
	for _, b := range rep.Bugs {
		out.Bugs = append(out.Bugs, jsonBug{
			Kind:   b.Kind.String(),
			Msg:    b.Msg,
			Pos:    b.Pos.String(),
			Run:    b.Run,
			Inputs: b.Inputs,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if len(out.Bugs) > 0 {
		return 1
	}
	return 0
}
