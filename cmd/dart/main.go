// Command dart tests a MiniC program with directed automated random
// testing, exactly as the paper's tool does for C: point it at a source
// file and a toplevel function, and it automatically extracts the
// interface, generates the random test driver, and runs the directed
// search.
//
// Usage:
//
//	dart [flags] program.mc
//
//	-top name      toplevel function under test (required unless -list/-audit)
//	-depth n       calls to the toplevel function per run (default 1)
//	-runs n        maximum number of executions (default 10000)
//	-seed n        random seed (default 1)
//	-strategy s    branch selection: dfs, bfs, random (default dfs)
//	-random        pure random testing instead of the directed search
//	-all-bugs      keep searching after the first bug
//	-hangs         report step-budget exhaustion (non-termination)
//	-timeout d     wall-clock budget (whole search, or per function with -audit)
//	-audit         audit every function of the program as toplevel in turn
//	-jobs n        audit worker-pool size (default all CPUs)
//	-list          list the functions that can serve as toplevel
//	-iface         print the extracted interface and exit
//	-dump-ir       print the compiled RAM-machine code and exit
//	-json          emit the report as JSON
//
// Exit status: 0 when no bugs were found, 1 on bugs (or, with -audit,
// internal faults), 2 on usage or compile errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dart"
	"dart/internal/ir"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		top      = flag.String("top", "", "toplevel function under test")
		depth    = flag.Int("depth", 1, "calls to the toplevel function per run")
		runs     = flag.Int("runs", 10000, "maximum number of executions")
		seed     = flag.Int64("seed", 1, "random seed")
		strategy = flag.String("strategy", "dfs", "branch selection: dfs, bfs, random")
		random   = flag.Bool("random", false, "pure random testing (baseline)")
		allBugs  = flag.Bool("all-bugs", false, "keep searching after the first bug")
		hangs    = flag.Bool("hangs", false, "report potential non-termination")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (whole search, or per function with -audit)")
		auditF   = flag.Bool("audit", false, "audit every function of the program as toplevel in turn")
		jobs     = flag.Int("jobs", 0, "audit worker-pool size (default all CPUs)")
		list     = flag.Bool("list", false, "list candidate toplevel functions")
		ifaceF   = flag.Bool("iface", false, "print the extracted interface")
		dumpIR   = flag.Bool("dump-ir", false, "print compiled RAM-machine code")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dart [flags] program.mc")
		flag.PrintDefaults()
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	prog, err := dart.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}

	if *list {
		for _, fn := range dart.Functions(prog) {
			fmt.Println(fn)
		}
		return 0
	}
	if *dumpIR {
		fmt.Print(ir.DisasmProg(prog.IR))
		return 0
	}
	if *auditF {
		return runAudit(prog, auditConfig{
			seed:    *seed,
			maxRuns: *runs,
			timeout: *timeout,
			jobs:    *jobs,
			random:  *random,
			json:    *jsonOut,
		})
	}
	if *top == "" {
		fmt.Fprintln(os.Stderr, "dart: -top is required (use -list to see candidates)")
		return 2
	}
	if *ifaceF {
		in, err := dart.ExtractInterface(prog, *top)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dart:", err)
			return 2
		}
		fmt.Print(in.String())
		return 0
	}

	var strat dart.Strategy
	switch *strategy {
	case "dfs":
		strat = dart.DFS
	case "bfs":
		strat = dart.BFS
	case "random":
		strat = dart.RandomBranch
	default:
		fmt.Fprintf(os.Stderr, "dart: unknown strategy %q\n", *strategy)
		return 2
	}

	opts := dart.Options{
		Toplevel:        *top,
		Depth:           *depth,
		MaxRuns:         *runs,
		Seed:            *seed,
		Strategy:        strat,
		StopAtFirstBug:  !*allBugs,
		ReportStepLimit: *hangs,
		Timeout:         *timeout,
	}
	var rep *dart.Report
	if *random {
		rep, err = dart.RandomTest(prog, opts)
	} else {
		rep, err = dart.Run(prog, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}

	if *jsonOut {
		return emitJSON(rep, *random)
	}
	mode := "directed"
	if *random {
		mode = "random"
	}
	fmt.Printf("%s search: %d runs, %d instructions, branch coverage %d/%d\n",
		mode, rep.Runs, rep.Steps, rep.Coverage.Covered(), rep.Coverage.Total())
	if rep.Complete {
		fmt.Println("all feasible execution paths explored; no errors are reachable")
	} else if !*random {
		fmt.Printf("search incomplete (all_linear=%v all_locs_definite=%v restarts=%d)\n",
			rep.AllLinear, rep.AllLocsDefinite, rep.Restarts)
	}
	if rep.Stopped == dart.StopDeadline || rep.Stopped == dart.StopCancelled {
		fmt.Printf("search stopped early: %s (partial report)\n", rep.Stopped)
	}
	for _, ie := range rep.InternalErrors {
		fmt.Printf("INTERNAL %v\n", ie)
	}
	for _, b := range rep.Bugs {
		fmt.Printf("BUG %v\n", b)
		fmt.Printf("    inputs: %v\n", b.Inputs)
	}
	if len(rep.Bugs) > 0 {
		return 1
	}
	return 0
}

// auditConfig carries the flag values relevant to -audit mode.
type auditConfig struct {
	seed    int64
	maxRuns int
	timeout time.Duration
	jobs    int
	random  bool
	json    bool
}

// runAudit tests every function of the program as toplevel in turn over
// a worker pool, each function under its own deadline and recover
// barrier, and prints one status line (or JSON entry) per function plus
// a batch summary.
func runAudit(prog *dart.Program, cfg auditConfig) int {
	res := dart.Audit(prog, dart.AuditOptions{
		Seed:      cfg.seed,
		MaxRuns:   cfg.maxRuns,
		Timeout:   cfg.timeout,
		Jobs:      cfg.jobs,
		UseRandom: cfg.random,
	})
	if cfg.json {
		return emitAuditJSON(res)
	}
	for _, e := range res.Entries {
		if e.Report == nil {
			fmt.Printf("%-24s %-14s %s\n", e.Function, e.Status, e.Err)
			continue
		}
		extra := ""
		if len(e.Report.Bugs) > 0 {
			extra = fmt.Sprintf("  bugs=%d first_run=%d", len(e.Report.Bugs), e.Report.Bugs[0].Run)
		}
		if e.Retried {
			extra += "  retried"
		}
		fmt.Printf("%-24s %-14s runs=%d%s\n", e.Function, e.Status, e.Report.Runs, extra)
	}
	fmt.Printf("audit: %d functions, %d runs: %d ok, %d with bugs, %d timed out, %d faulted, %d cancelled\n",
		res.Functions(), res.TotalRuns, res.OK, res.Buggy, res.TimedOut, res.Faulted, res.Cancelled)
	if res.Buggy > 0 || res.Faulted > 0 {
		return 1
	}
	return 0
}

// jsonAudit is the machine-readable audit batch shape.
type jsonAudit struct {
	Mode      string           `json:"mode"`
	Functions int              `json:"functions"`
	TotalRuns int              `json:"total_runs"`
	OK        int              `json:"ok"`
	Buggy     int              `json:"buggy"`
	TimedOut  int              `json:"timed_out"`
	Faulted   int              `json:"faulted"`
	Cancelled int              `json:"cancelled"`
	Entries   []jsonAuditEntry `json:"entries"`
}

type jsonAuditEntry struct {
	Function string    `json:"function"`
	Status   string    `json:"status"`
	Runs     int       `json:"runs"`
	Retried  bool      `json:"retried,omitempty"`
	Err      string    `json:"error,omitempty"`
	Bugs     []jsonBug `json:"bugs"`
}

func emitAuditJSON(res *dart.AuditResult) int {
	out := jsonAudit{
		Mode:      "audit",
		Functions: res.Functions(),
		TotalRuns: res.TotalRuns,
		OK:        res.OK,
		Buggy:     res.Buggy,
		TimedOut:  res.TimedOut,
		Faulted:   res.Faulted,
		Cancelled: res.Cancelled,
		Entries:   []jsonAuditEntry{},
	}
	for _, e := range res.Entries {
		je := jsonAuditEntry{
			Function: e.Function,
			Status:   string(e.Status),
			Retried:  e.Retried,
			Err:      e.Err,
			Bugs:     []jsonBug{},
		}
		if e.Report != nil {
			je.Runs = e.Report.Runs
			for _, b := range e.Report.Bugs {
				je.Bugs = append(je.Bugs, jsonBug{
					Kind:   b.Kind.String(),
					Msg:    b.Msg,
					Pos:    b.Pos.String(),
					Run:    b.Run,
					Inputs: b.Inputs,
				})
			}
		}
		out.Entries = append(out.Entries, je)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if out.Buggy > 0 || out.Faulted > 0 {
		return 1
	}
	return 0
}

// jsonReport is the machine-readable report shape.
type jsonReport struct {
	Mode            string         `json:"mode"`
	Runs            int            `json:"runs"`
	Steps           int64          `json:"instructions"`
	Complete        bool           `json:"complete"`
	AllLinear       bool           `json:"all_linear"`
	AllLocsDefinite bool           `json:"all_locs_definite"`
	CoverageCovered int            `json:"branch_directions_covered"`
	CoverageTotal   int            `json:"branch_directions_total"`
	Restarts        int            `json:"restarts"`
	SolverCalls     int            `json:"solver_calls"`
	SolverFailures  int            `json:"solver_failures"`
	StopReason      string         `json:"stop_reason"`
	SolverComplete  bool           `json:"solver_complete"`
	InternalErrors  []jsonInternal `json:"internal_errors,omitempty"`
	Bugs            []jsonBug      `json:"bugs"`
}

type jsonInternal struct {
	Phase  string           `json:"phase"`
	Msg    string           `json:"message"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs,omitempty"`
}

type jsonBug struct {
	Kind   string           `json:"kind"`
	Msg    string           `json:"message"`
	Pos    string           `json:"position"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs"`
}

func emitJSON(rep *dart.Report, random bool) int {
	mode := "directed"
	if random {
		mode = "random"
	}
	out := jsonReport{
		Mode:            mode,
		Runs:            rep.Runs,
		Steps:           rep.Steps,
		Complete:        rep.Complete,
		AllLinear:       rep.AllLinear,
		AllLocsDefinite: rep.AllLocsDefinite,
		CoverageCovered: rep.Coverage.Covered(),
		CoverageTotal:   rep.Coverage.Total(),
		Restarts:        rep.Restarts,
		SolverCalls:     rep.SolverCalls,
		SolverFailures:  rep.SolverFailures,
		StopReason:      string(rep.Stopped),
		SolverComplete:  rep.SolverComplete,
		Bugs:            []jsonBug{},
	}
	for _, ie := range rep.InternalErrors {
		out.InternalErrors = append(out.InternalErrors, jsonInternal{
			Phase:  ie.Phase,
			Msg:    ie.Msg,
			Run:    ie.Run,
			Inputs: ie.Inputs,
		})
	}
	for _, b := range rep.Bugs {
		out.Bugs = append(out.Bugs, jsonBug{
			Kind:   b.Kind.String(),
			Msg:    b.Msg,
			Pos:    b.Pos.String(),
			Run:    b.Run,
			Inputs: b.Inputs,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dart:", err)
		return 2
	}
	if len(out.Bugs) > 0 {
		return 1
	}
	return 0
}
