package dart

import (
	"os"
	"strings"
	"testing"

	"dart/internal/protocols"
)

// slowTests reports whether the multi-minute protocol searches should
// run; they reproduce the paper's 18-minute depth-4 result and are gated
// behind DART_SLOW=1 (the dart-experiments binary runs them too).
func slowTests() bool { return os.Getenv("DART_SLOW") == "1" }

// TestNSPossibilistic mirrors Fig. 9: with the most general environment,
// depth 1 has no attack and the search proves it; at depth 2 DART finds
// the projection of Lowe's attack from B's point of view (steps 2 and 6),
// guessing the nonce via the path constraint.
func TestNSPossibilistic(t *testing.T) {
	prog := compileT(t, protocols.Source(protocols.Possibilistic, protocols.NoFix))

	rep1, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 1, MaxRuns: 5000, Seed: 1})
	if err != nil {
		t.Fatalf("Run depth 1: %v", err)
	}
	if len(rep1.Bugs) != 0 {
		t.Fatalf("depth 1: unexpected bugs %v", rep1.Bugs)
	}
	if !rep1.Complete {
		t.Fatalf("depth 1 should terminate complete (runs=%d)", rep1.Runs)
	}
	t.Logf("depth 1: no error, complete after %d runs (paper: 69)", rep1.Runs)

	rep2, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 20000, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run depth 2: %v", err)
	}
	bug := rep2.FirstBug()
	if bug == nil {
		t.Fatalf("depth 2: attack not found in %d runs", rep2.Runs)
	}
	if !strings.Contains(bug.Msg, "Lowe attack") {
		t.Fatalf("unexpected bug: %v", bug)
	}
	// The projection of the attack: msg1 {*, A}Kb then msg3 {Nb}Kb.
	if bug.Inputs["d0.kind"] != 1 || bug.Inputs["d0.key"] != 2 || bug.Inputs["d0.n2"] != 1 {
		t.Errorf("first message should be msg1 {*, A}Kb, inputs %v", bug.Inputs)
	}
	if bug.Inputs["d1.kind"] != 3 || bug.Inputs["d1.n1"] != 202 {
		t.Errorf("second message should be msg3 {Nb}Kb with the guessed nonce, inputs %v", bug.Inputs)
	}
	t.Logf("depth 2: attack found after %d runs (paper: 664)", rep2.Runs)
}

// TestNSDolevYaoShallow mirrors the first rows of Fig. 10: under the
// Dolev-Yao intruder there is no attack of length 1 or 2 and the directed
// search proves it by exhausting the trees.
func TestNSDolevYaoShallow(t *testing.T) {
	prog := compileT(t, protocols.Source(protocols.DolevYao, protocols.NoFix))
	paper := map[int]string{1: "5", 2: "85"}
	for depth := 1; depth <= 2; depth++ {
		rep, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: depth, MaxRuns: 50000, Seed: 1})
		if err != nil {
			t.Fatalf("Run depth %d: %v", depth, err)
		}
		if len(rep.Bugs) != 0 {
			t.Fatalf("depth %d: unexpected bugs %v", depth, rep.Bugs)
		}
		if !rep.Complete {
			t.Fatalf("depth %d should terminate complete (runs=%d)", depth, rep.Runs)
		}
		t.Logf("depth %d: no error, complete after %d runs (paper: %s)", depth, rep.Runs, paper[depth])
	}
}

// TestNSDolevYaoDepth3 is the third row of Fig. 10 (paper: 6260 runs,
// 22 seconds): still no attack, proven by exhaustion.
func TestNSDolevYaoDepth3(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive depth-3 sweep (~15s)")
	}
	prog := compileT(t, protocols.Source(protocols.DolevYao, protocols.NoFix))
	rep, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 3, MaxRuns: 200000, Seed: 1})
	if err != nil {
		t.Fatalf("Run depth 3: %v", err)
	}
	if len(rep.Bugs) != 0 {
		t.Fatalf("depth 3: unexpected bugs %v", rep.Bugs)
	}
	if !rep.Complete {
		t.Fatalf("depth 3 should terminate complete (runs=%d)", rep.Runs)
	}
	t.Logf("depth 3: no error, complete after %d runs (paper: 6260)", rep.Runs)
}

// TestNSDolevYaoFullAttack is the last row of Fig. 10: the shortest
// violating sequence under the Dolev-Yao intruder has length 4 and is the
// full Lowe attack.  The paper's search took 328459 runs and 18 minutes;
// this one is the same order of magnitude, so it only runs with
// DART_SLOW=1 (see also cmd/dart-experiments -exp e7full).
func TestNSDolevYaoFullAttack(t *testing.T) {
	if !slowTests() {
		t.Skip("multi-minute search; set DART_SLOW=1 to run (paper: 18 minutes)")
	}
	prog := compileT(t, protocols.Source(protocols.DolevYao, protocols.NoFix))
	rep4, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 4, MaxRuns: 3_000_000, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run depth 4: %v", err)
	}
	bug := rep4.FirstBug()
	if bug == nil {
		t.Fatalf("depth 4: full Lowe attack not found in %d runs", rep4.Runs)
	}
	// Verify the trace is the full attack: A starts with I, I forwards to
	// B as msg1, replays B's challenge to A as msg2, completes with msg3.
	in := bug.Inputs
	if in["d0.kind"] != 0 || in["d0.n1"] != 3 {
		t.Errorf("step 1 should schedule A to start with the intruder, inputs %v", in)
	}
	if in["d1.kind"] != 1 || in["d1.key"] != 2 || in["d1.n1"] != 101 || in["d1.n2"] != 1 {
		t.Errorf("step 2 should be msg1 {Na, A}Kb, inputs %v", in)
	}
	if in["d2.kind"] != 2 || in["d2.key"] != 1 || in["d2.n1"] != 101 || in["d2.n2"] != 202 {
		t.Errorf("step 3 should replay msg2 {Na, Nb, B}Ka, inputs %v", in)
	}
	if in["d3.kind"] != 3 || in["d3.key"] != 2 || in["d3.n1"] != 202 {
		t.Errorf("step 4 should be msg3 {Nb}Kb, inputs %v", in)
	}
	t.Logf("depth 4: full Lowe attack found after %d runs (paper: 328459)", rep4.Runs)
}

// TestLoweFix mirrors the paper's finding around Lowe's fix: the variant
// whose fix is implemented incompletely is still attackable, while the
// correctly fixed protocol survives the same search.
func TestLoweFix(t *testing.T) {
	if !slowTests() {
		t.Skip("multi-minute search; set DART_SLOW=1 to run")
	}
	buggy := compileT(t, protocols.Source(protocols.DolevYao, protocols.BuggyFix))
	rep, err := Run(buggy, Options{Toplevel: protocols.Toplevel, Depth: 4, MaxRuns: 3_000_000, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatalf("Run buggy fix: %v", err)
	}
	if rep.FirstBug() == nil {
		t.Fatalf("buggy fix: attack not found in %d runs", rep.Runs)
	}
	t.Logf("buggy fix: still attackable, found after %d runs", rep.Runs)

	fixed := compileT(t, protocols.Source(protocols.DolevYao, protocols.CorrectFix))
	repF, err := Run(fixed, Options{Toplevel: protocols.Toplevel, Depth: 4, MaxRuns: rep.Runs + 100_000, Seed: 1})
	if err != nil {
		t.Fatalf("Run correct fix: %v", err)
	}
	if len(repF.Bugs) != 0 {
		t.Fatalf("correct fix: unexpected attack %v", repF.Bugs)
	}
	t.Logf("correct fix: no attack within the same budget (complete=%v after %d runs)", repF.Complete, repF.Runs)
}

// TestLoweFixShallow verifies the fix variants compile and behave
// identically on shallow searches (the fix only matters at depth >= 3).
func TestLoweFixShallow(t *testing.T) {
	for _, fix := range []protocols.Fix{protocols.NoFix, protocols.BuggyFix, protocols.CorrectFix} {
		prog := compileT(t, protocols.Source(protocols.DolevYao, fix))
		rep, err := Run(prog, Options{Toplevel: protocols.Toplevel, Depth: 2, MaxRuns: 50000, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", fix, err)
		}
		if len(rep.Bugs) != 0 || !rep.Complete {
			t.Errorf("%v: depth 2 should be clean and complete (bugs=%v complete=%v)", fix, rep.Bugs, rep.Complete)
		}
	}
}
