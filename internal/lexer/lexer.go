// Package lexer tokenizes MiniC source code.
package lexer

import (
	"fmt"
	"strconv"

	"dart/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpaceAndComments consumes whitespace, // line comments, /* block
// comments, and # preprocessor-style lines (which MiniC treats as comments
// so that C sources with #include lines still lex).
func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '#' && l.col == 1:
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := token.Keywords[word]; ok {
			return token.Token{Kind: kw, Lit: word, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: word, Pos: pos}

	case isDigit(c):
		start := l.off - 1
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			for l.off < len(l.src) && isHex(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		lit := l.src[start:l.off]
		if _, err := strconv.ParseInt(lit, 0, 64); err != nil {
			l.errorf(pos, "invalid integer literal %q", lit)
			return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.INT, Lit: lit, Pos: pos}

	case c == '\'':
		return l.charLiteral(pos)

	case c == '"':
		return l.stringLiteral(pos)
	}

	two := func(next byte, withKind, withoutKind token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: withoutKind, Pos: pos}
	}

	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return two('=', token.STAREQ, token.STAR)
	case '/':
		return two('=', token.SLASHEQ, token.SLASH)
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '^':
		return token.Token{Kind: token.CARET, Pos: pos}
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GT)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// charLiteral scans a character constant; the opening quote is consumed.
// The token carries the numeric value of the character as its literal.
func (l *Lexer) charLiteral(pos token.Pos) token.Token {
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	var v int64
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated character literal")
			return token.Token{Kind: token.ILLEGAL, Pos: pos}
		}
		e := l.advance()
		switch e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		case '"':
			v = '"'
		default:
			l.errorf(pos, "unknown escape \\%c", e)
		}
	} else {
		v = int64(c)
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: strconv.FormatInt(v, 10), Pos: pos}
}

// stringLiteral scans a double-quoted string; the opening quote is consumed.
func (l *Lexer) stringLiteral(pos token.Pos) token.Token {
	var buf []byte
	for {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Pos: pos}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '\\', '"', '\'':
				c = e
			case '0':
				c = 0
			default:
				l.errorf(pos, "unknown escape \\%c in string", e)
				c = e
			}
		}
		buf = append(buf, c)
	}
	return token.Token{Kind: token.STRING, Lit: string(buf), Pos: pos}
}

// All scans the entire source and returns every token including the
// trailing EOF. It is primarily a testing convenience.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
