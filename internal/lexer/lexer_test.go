package lexer

import (
	"testing"

	"dart/internal/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			return out
		}
		out = append(out, t.Kind)
	}
}

func TestOperators(t *testing.T) {
	cases := map[string][]token.Kind{
		"+ - * / %":    {token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT},
		"== != < <= >": {token.EQ, token.NEQ, token.LT, token.LEQ, token.GT},
		">= && || !":   {token.GEQ, token.LAND, token.LOR, token.NOT},
		"& | ^ ~":      {token.AMP, token.PIPE, token.CARET, token.TILDE},
		"<< >>":        {token.SHL, token.SHR},
		"-> . ++ --":   {token.ARROW, token.DOT, token.INC, token.DEC},
		"+= -= *= /=":  {token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ},
		"= ?:":         {token.ASSIGN, token.QUESTION, token.COLON},
		"(){}[],;":     {token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMICOLON},
	}
	for src, want := range cases {
		got := kinds(src)
		if len(got) != len(want) {
			t.Fatalf("%q: got %v, want %v", src, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q token %d: got %v, want %v", src, i, got[i], want[i])
			}
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("int x while whiley structfoo struct NULL nullish")
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.KwInt, "int"},
		{token.IDENT, "x"},
		{token.KwWhile, "while"},
		{token.IDENT, "whiley"},
		{token.IDENT, "structfoo"},
		{token.KwStruct, "struct"},
		{token.KwNull, "NULL"},
		{token.IDENT, "nullish"},
	}
	for i, w := range want {
		got := l.Next()
		if got.Kind != w.kind || got.Lit != w.lit {
			t.Errorf("token %d: got %v %q, want %v %q", i, got.Kind, got.Lit, w.kind, w.lit)
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	cases := map[string]string{
		"0":      "0",
		"12345":  "12345",
		"0x1f":   "0x1f",
		"0X00FF": "0X00FF",
	}
	for src, lit := range cases {
		l := New(src)
		tok := l.Next()
		if tok.Kind != token.INT || tok.Lit != lit {
			t.Errorf("%q: got %v %q", src, tok.Kind, tok.Lit)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: unexpected errors %v", src, l.Errors())
		}
	}
}

func TestCharLiterals(t *testing.T) {
	cases := map[string]string{
		"'a'":   "97",
		"'0'":   "48",
		"'\\n'": "10",
		"'\\t'": "9",
		"'\\0'": "0",
		"'\\''": "39",
		"'|'":   "124",
	}
	for src, want := range cases {
		l := New(src)
		tok := l.Next()
		if tok.Kind != token.INT || tok.Lit != want {
			t.Errorf("%q: got %v %q, want INT %q", src, tok.Kind, tok.Lit, want)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	l := New(`"hello\nworld"`)
	tok := l.Next()
	if tok.Kind != token.STRING || tok.Lit != "hello\nworld" {
		t.Errorf("got %v %q", tok.Kind, tok.Lit)
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
#include <stdio.h>
int /* block
spanning lines */ x;
`
	got := kinds(src)
	want := []token.Kind{token.KwInt, token.IDENT, token.SEMICOLON}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	l := New("int\n  foo")
	a := l.Next()
	b := l.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("int at %v", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("foo at %v, want 2:3", b.Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{"@", "'ab'", "'", `"unterminated`, "/* unterminated"}
	for _, src := range cases {
		l := New(src)
		l.All()
		if len(l.Errors()) == 0 {
			t.Errorf("%q: expected a lexical error", src)
		}
	}
}

func TestAllIncludesEOF(t *testing.T) {
	toks := New("x").All()
	if len(toks) != 2 || toks[1].Kind != token.EOF {
		t.Fatalf("got %v", toks)
	}
}

func TestEOFStable(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v", i, tok)
		}
	}
}
