// Package rng provides the deterministic pseudo-random source used by the
// generated test drivers.  Experiments must be reproducible byte-for-byte
// across Go releases, so the generator is a self-contained splitmix64
// rather than math/rand.
package rng

// R is a deterministic random source.
type R struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed int64) *R {
	return &R{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// next is splitmix64.
func (r *R) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns a uniform 64-bit value.
func (r *R) Uint64() uint64 { return r.next() }

// Bits returns n random bits as a sign-extended integer, mirroring the
// paper's random_bits(sizeof(type)): a 32-bit input takes any of the 2^32
// int values, a char any of 256.
func (r *R) Bits(n int) int64 {
	if n <= 0 || n > 64 {
		n = 64
	}
	v := r.next() >> (64 - uint(n))
	// Sign-extend from bit n-1.
	shift := uint(64 - n)
	return int64(v<<shift) >> shift
}

// Int31 returns a non-negative 31-bit value.
func (r *R) Int31() int64 { return int64(r.next() >> 33) }

// Intn returns a uniform value in [0, n).
func (r *R) Intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// Coin returns true with probability 1/2 (the paper's "fair coin toss"
// for pointer initialization).
func (r *R) Coin() bool { return r.next()&1 == 1 }

// Fork derives an independent generator, used so that unrelated input
// streams (e.g. different runs) do not perturb each other.
func (r *R) Fork() *R { return &R{state: r.next()} }
