package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestBitsRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Bits(8); v < -128 || v > 127 {
			t.Fatalf("Bits(8) = %d out of int8 range", v)
		}
		if v := r.Bits(32); v < -(1<<31) || v > (1<<31)-1 {
			t.Fatalf("Bits(32) = %d out of int32 range", v)
		}
	}
	// Degenerate widths fall back to 64 bits rather than panicking.
	r.Bits(0)
	r.Bits(65)
}

func TestBitsCoversNegatives(t *testing.T) {
	r := New(3)
	neg, pos := 0, 0
	for i := 0; i < 1000; i++ {
		if r.Bits(32) < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg < 300 || pos < 300 {
		t.Errorf("sign split %d/%d too skewed for random bits", neg, pos)
	}
}

func TestCoinRoughlyFair(t *testing.T) {
	r := New(11)
	heads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Coin() {
			heads++
		}
	}
	if heads < n*45/100 || heads > n*55/100 {
		t.Errorf("heads = %d of %d", heads, n)
	}
}

func TestIntn(t *testing.T) {
	r := New(5)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 values seen", len(seen))
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn of non-positive bound should be 0")
	}
}

func TestInt31NonNegative(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Int31(); v < 0 {
			t.Fatalf("Int31() = %d", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(1)
	fork := a.Fork()
	// The fork must be deterministic given the parent state...
	b := New(1)
	bf := b.Fork()
	for i := 0; i < 100; i++ {
		if fork.Uint64() != bf.Uint64() {
			t.Fatal("forks of identical parents diverge")
		}
	}
	// ...and distinct from the parent stream.
	if a.Uint64() == fork.Uint64() {
		t.Log("single collision parent/fork (possible but unlikely)")
	}
}
