// Package progen generates random, well-typed, terminating MiniC
// programs.  The generator is used to property-test the whole DART
// pipeline against itself: every generated program compiles, every run
// of it terminates within the step budget, and every bug the directed
// search reports must replay concretely (Theorem 1(a) as an executable
// property).
package progen

import (
	"fmt"
	"strings"

	"dart/internal/rng"
)

// Config tunes generation.
type Config struct {
	// Funcs is the number of helper functions besides the toplevel.
	Funcs int
	// MaxStmts bounds the statements per block.
	MaxStmts int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// Params is the number of int parameters of the toplevel function.
	Params int
	// AbortProb is the per-leaf chance (in percent) of planting an
	// abort under the innermost condition.
	AbortProb int
	// AllowDivision permits division/modulus (potential crash sites).
	AllowDivision bool
	// AllowNonlinear permits multiplications of two variables.
	AllowNonlinear bool
	// PointerParams gives the toplevel function a linked-node pointer
	// parameter and generates guarded and unguarded dereferences of it,
	// exercising the pointer-shape machinery.
	PointerParams bool
}

// Default is a reasonable fuzzing configuration.
var Default = Config{
	Funcs:          2,
	MaxStmts:       4,
	MaxDepth:       3,
	Params:         3,
	AbortProb:      30,
	AllowDivision:  true,
	AllowNonlinear: true,
}

// Toplevel is the generated entry function's name.
const Toplevel = "top"

// Program generates one random MiniC program.
func Program(r *rng.R, cfg Config) string {
	g := &gen{r: r, cfg: cfg}
	return g.program()
}

// nodeStruct is the input shape used when PointerParams is set.
const nodeStruct = `struct gnode {
    int val;
    int aux;
    struct gnode *next;
};

`

type gen struct {
	r   *rng.R
	cfg Config
	b   strings.Builder
	// vars in scope of the function being generated.
	vars []string
	// ptrs are node-pointer variables in scope.
	ptrs []string
	// helpers records generated helper functions and their arities.
	helpers []helperSig
	tmp     int
}

type helperSig struct {
	name  string
	arity int
}

func (g *gen) pick(names []string) string {
	return names[g.r.Intn(int64(len(names)))]
}

func (g *gen) program() string {
	if g.cfg.PointerParams {
		g.b.WriteString(nodeStruct)
	}
	// Helpers first: pure int->int functions over their parameters,
	// callable from later functions (acyclic call graph).
	for i := 0; i < g.cfg.Funcs; i++ {
		name := fmt.Sprintf("helper%d", i)
		arity := 1 + int(g.r.Intn(2))
		g.fn(name, arity)
		g.helpers = append(g.helpers, helperSig{name: name, arity: arity})
	}
	g.fn(Toplevel, g.cfg.Params)
	return g.b.String()
}

// fn emits one function with n int parameters (plus, for the toplevel
// under PointerParams, a node-pointer parameter).
func (g *gen) fn(name string, n int) {
	g.vars = g.vars[:0]
	g.ptrs = g.ptrs[:0]
	params := make([]string, n)
	for i := range params {
		p := fmt.Sprintf("p%d", i)
		params[i] = "int " + p
		g.vars = append(g.vars, p)
	}
	if g.cfg.PointerParams && name == Toplevel {
		params = append(params, "struct gnode *list")
		g.ptrs = append(g.ptrs, "list")
	}
	fmt.Fprintf(&g.b, "int %s(%s) {\n", name, strings.Join(params, ", "))
	g.block(1, g.cfg.MaxDepth)
	fmt.Fprintf(&g.b, "    return %s;\n}\n\n", g.expr(2))
}

func indent(depth int) string { return strings.Repeat("    ", depth) }

func (g *gen) block(depth, budget int) {
	n := 1 + int(g.r.Intn(int64(g.cfg.MaxStmts)))
	for i := 0; i < n; i++ {
		g.stmt(depth, budget)
	}
}

func (g *gen) stmt(depth, budget int) {
	ind := indent(depth)
	choice := g.r.Intn(10)
	switch {
	case choice < 3: // new local
		v := fmt.Sprintf("v%d", g.tmp)
		g.tmp++
		fmt.Fprintf(&g.b, "%sint %s = %s;\n", ind, v, g.expr(2))
		g.vars = append(g.vars, v)
	case choice < 5 && len(g.ptrs) > 0 && g.r.Intn(3) == 0: // pointer use
		p := g.pick(g.ptrs)
		switch g.r.Intn(4) {
		case 0: // guarded field read
			fmt.Fprintf(&g.b, "%sif (%s != NULL) { %s = %s->val; }\n",
				ind, p, g.pick(g.vars), p)
		case 1: // unguarded field read: a real (findable, replayable) bug
			fmt.Fprintf(&g.b, "%s%s = %s->aux;\n", ind, g.pick(g.vars), p)
		case 2: // guarded advance down the chain
			np := fmt.Sprintf("q%d", g.tmp)
			g.tmp++
			fmt.Fprintf(&g.b, "%sstruct gnode *%s = NULL;\n", ind, np)
			fmt.Fprintf(&g.b, "%sif (%s != NULL) { %s = %s->next; }\n", ind, p, np, p)
			g.ptrs = append(g.ptrs, np)
		default: // guarded field write
			fmt.Fprintf(&g.b, "%sif (%s != NULL) { %s->val = %s; }\n",
				ind, p, p, g.expr(1))
		}
	case choice < 5: // assignment
		fmt.Fprintf(&g.b, "%s%s = %s;\n", ind, g.pick(g.vars), g.expr(2))
	case choice < 8 && budget > 0: // conditional
		fmt.Fprintf(&g.b, "%sif (%s) {\n", ind, g.cond())
		mark := len(g.vars)
		pmark := len(g.ptrs)
		if budget == 1 && int(g.r.Intn(100)) < g.cfg.AbortProb {
			fmt.Fprintf(&g.b, "%s    abort();\n", ind)
		} else {
			g.block(depth+1, budget-1)
		}
		g.vars, g.ptrs = g.vars[:mark], g.ptrs[:pmark] // block scope ends
		if g.r.Coin() {
			fmt.Fprintf(&g.b, "%s} else {\n", ind)
			g.block(depth+1, budget-1)
			g.vars, g.ptrs = g.vars[:mark], g.ptrs[:pmark]
		}
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case choice == 8 && budget > 0 && g.r.Coin(): // switch dispatch
		tag := g.pick(g.vars)
		fmt.Fprintf(&g.b, "%sswitch (%s) {\n", ind, tag)
		nCases := 2 + int(g.r.Intn(3))
		used := map[int64]bool{}
		for i := 0; i < nCases; i++ {
			label := g.r.Intn(50) - 25
			for used[label] {
				label++
			}
			used[label] = true
			fmt.Fprintf(&g.b, "%scase %d:\n", ind, label)
			mark, pmark := len(g.vars), len(g.ptrs)
			g.block(depth+1, budget-1)
			g.vars, g.ptrs = g.vars[:mark], g.ptrs[:pmark]
			if g.r.Coin() {
				fmt.Fprintf(&g.b, "%s    break;\n", ind)
			}
		}
		if g.r.Coin() {
			fmt.Fprintf(&g.b, "%sdefault:\n", ind)
			mark, pmark := len(g.vars), len(g.ptrs)
			g.block(depth+1, budget-1)
			g.vars, g.ptrs = g.vars[:mark], g.ptrs[:pmark]
		}
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case choice < 9 && budget > 0: // bounded loop (always terminates)
		v := fmt.Sprintf("i%d", g.tmp)
		g.tmp++
		bound := 1 + g.r.Intn(5)
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", ind, v, v, bound, v)
		mark, pmark := len(g.vars), len(g.ptrs)
		g.vars = append(g.vars, v)
		g.block(depth+1, budget-1)
		// The loop variable and all body locals go out of scope.
		g.vars, g.ptrs = g.vars[:mark], g.ptrs[:pmark]
		fmt.Fprintf(&g.b, "%s}\n", ind)
	default: // call a helper for effect-free value mixing
		if len(g.helpers) > 0 {
			target := g.helpers[g.r.Intn(int64(len(g.helpers)))]
			args := make([]string, target.arity)
			for i := range args {
				args[i] = g.expr(1)
			}
			fmt.Fprintf(&g.b, "%s%s = %s(%s);\n", ind, g.pick(g.vars), target.name, strings.Join(args, ", "))
		} else {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", ind, g.pick(g.vars), g.expr(2))
		}
	}
}

// cond generates a branch condition: usually affine comparisons, the
// bread and butter of the directed search.
func (g *gen) cond() string {
	rel := g.pick([]string{"==", "!=", "<", "<=", ">", ">="})
	lhs := g.expr(2)
	rhs := g.expr(1)
	c := fmt.Sprintf("%s %s %s", lhs, rel, rhs)
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.expr(1), g.pick([]string{"<", ">"}), g.expr(1))
	case 1:
		return fmt.Sprintf("%s || %s == %s", c, g.expr(1), g.expr(1))
	}
	return c
}

// expr generates an integer expression of bounded size.
func (g *gen) expr(size int) string {
	if size <= 0 || g.r.Intn(3) == 0 {
		if len(g.vars) > 0 && g.r.Coin() {
			return g.pick(g.vars)
		}
		return fmt.Sprintf("%d", g.r.Intn(201)-100)
	}
	a := g.expr(size - 1)
	b := g.expr(size - 1)
	ops := []string{"+", "-"}
	if g.cfg.AllowNonlinear {
		ops = append(ops, "*")
	} else if g.r.Intn(4) == 0 {
		// Linear scaling: constant * expr.
		return fmt.Sprintf("%d * (%s)", g.r.Intn(9)-4, a)
	}
	if g.cfg.AllowDivision && g.r.Intn(8) == 0 {
		ops = append(ops, "/", "%")
	}
	op := g.pick(ops)
	return fmt.Sprintf("(%s %s %s)", a, op, b)
}
