package progen

import (
	"strings"
	"testing"

	"dart/internal/rng"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Program(rng.New(seed), Default)
		b := Program(rng.New(seed), Default)
		if a != b {
			t.Fatalf("seed %d: generation is nondeterministic", seed)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	if Program(rng.New(1), Default) == Program(rng.New(2), Default) {
		t.Error("different seeds produced identical programs")
	}
}

func TestContainsToplevel(t *testing.T) {
	src := Program(rng.New(3), Default)
	if !strings.Contains(src, "int "+Toplevel+"(") {
		t.Errorf("no toplevel function:\n%s", src)
	}
}

func TestConfigRespected(t *testing.T) {
	cfg := Default
	cfg.AllowDivision = false
	cfg.AllowNonlinear = false
	for seed := int64(0); seed < 50; seed++ {
		src := Program(rng.New(seed), cfg)
		// Integer division/modulus never appears (the only slashes would
		// be comments, which the generator does not emit).
		if strings.Contains(src, "/") || strings.Contains(src, "%") {
			t.Fatalf("seed %d: division generated despite AllowDivision=false:\n%s", seed, src)
		}
	}
}

func TestHelperCountRespected(t *testing.T) {
	cfg := Default
	cfg.Funcs = 4
	src := Program(rng.New(9), cfg)
	for i := 0; i < 4; i++ {
		if !strings.Contains(src, "int helper"+string(rune('0'+i))+"(") {
			t.Errorf("helper%d missing", i)
		}
	}
}
