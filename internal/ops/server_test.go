package ops_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dart"
)

// auditSrc has one clean function and one buggy one, with enough
// branch structure that a bounded search keeps producing events.
const auditSrc = `
int h(int x, int y) {
	if (x * x + y * y > 100) {
		if (x > 9) {
			return 1;
		}
		return 2;
	}
	if (y < 0) {
		return 3;
	}
	return 0;
}

int g(int a) {
	if (a == 42) {
		abort();
	}
	return a;
}
`

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// promCounters parses the dart_<name>_total counter samples of a
// Prometheus text exposition.
func promCounters(t *testing.T, page string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	re := regexp.MustCompile(`^dart_([a-z_]+)_total (\d+)$`)
	for _, line := range strings.Split(page, "\n") {
		if m := re.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatalf("counter line %q: %v", line, err)
			}
			out[m[1]] = v
		}
	}
	return out
}

// The acceptance test: run a parallel audit with the ops server
// attached, hammer every endpoint from concurrent pollers while it
// runs (this is the -race workout), then check the live /metrics
// counters against the audit's own final merged report.
func TestServerLiveAudit(t *testing.T) {
	prog, err := dart.Compile(auditSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      "127.0.0.1:0",
		Mode:      "audit",
		Source:    auditSrc,
		Sites:     dart.BranchSites(prog),
		NumSites:  prog.IR.NumSites,
		Functions: dart.Functions(prog),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan struct{})
	var pollers sync.WaitGroup
	for _, path := range []string{"/healthz", "/metrics", "/status", "/events", "/coverage", "/debug/pprof/"} {
		pollers.Add(1)
		go func(path string) {
			defer pollers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}

	res := dart.Audit(prog, dart.AuditOptions{
		Seed:          1,
		MaxRuns:       2000,
		Jobs:          4,
		Observer:      srv.Sink(),
		ProfileLabels: true,
		OnEntry: func(e dart.AuditEntry) {
			if e.Report != nil {
				srv.ReportCoverage(e.Report.Coverage)
			}
		},
	})
	srv.Done()
	close(done)
	pollers.Wait()

	// Live counters converge to exactly the final merged report's (no
	// deadlines here, so no retry divergence).
	_, page := get(t, base+"/metrics")
	live := promCounters(t, page)
	for name, want := range res.Metrics.Counters {
		if live[name] != want {
			t.Errorf("live counter %s = %d, report says %d", name, live[name], want)
		}
	}
	if len(res.Metrics.Counters) == 0 || live["runs"] == 0 {
		t.Fatalf("no counters to compare: report=%v live=%v", res.Metrics.Counters, live)
	}

	// Histogram samples must be cumulative and end in +Inf with the
	// total count.
	if !strings.Contains(page, "# TYPE dart_steps_per_run histogram") {
		t.Errorf("steps_per_run histogram missing:\n%s", page)
	}
	var prev int64 = -1
	bucketRe := regexp.MustCompile(`^dart_steps_per_run_bucket\{le="([^"]+)"\} (\d+)$`)
	var infCount, count int64 = -1, -1
	for _, line := range strings.Split(page, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseInt(m[2], 10, 64)
			if v < prev {
				t.Errorf("histogram buckets not cumulative at %q", line)
			}
			prev = v
			if m[1] == "+Inf" {
				infCount = v
			}
		}
		if rest, ok := strings.CutPrefix(line, "dart_steps_per_run_count "); ok {
			count, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	if infCount != count || count <= 0 {
		t.Errorf("+Inf bucket %d != count %d", infCount, count)
	}
	if count != res.Metrics.Counters["runs"] {
		t.Errorf("steps_per_run count %d != runs %d", count, res.Metrics.Counters["runs"])
	}

	// /status reflects the finished batch.
	_, body := get(t, base+"/status")
	var st struct {
		Mode          string `json:"mode"`
		Done          bool   `json:"done"`
		Functions     int    `json:"functions"`
		FunctionsDone int    `json:"functions_done"`
		Runs          int    `json:"runs"`
		Bugs          int    `json:"bugs"`
		Covered       int    `json:"branch_directions_covered"`
		Total         int    `json:"branch_directions_total"`
		Entries       []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
			Runs     int    `json:"runs"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if !st.Done || st.Mode != "audit" {
		t.Errorf("/status done=%v mode=%q", st.Done, st.Mode)
	}
	if st.Functions != res.Functions() || st.FunctionsDone != res.Functions() {
		t.Errorf("/status functions %d/%d, audit had %d", st.FunctionsDone, st.Functions, res.Functions())
	}
	if st.Runs != res.TotalRuns {
		t.Errorf("/status runs %d, audit spent %d", st.Runs, res.TotalRuns)
	}
	byFn := map[string]dart.AuditEntry{}
	for _, e := range res.Entries {
		byFn[e.Function] = e
	}
	for _, se := range st.Entries {
		e, ok := byFn[se.Function]
		if !ok {
			t.Errorf("/status lists unknown function %q", se.Function)
			continue
		}
		if se.Status != string(e.Status) {
			t.Errorf("/status %s status %q, audit says %q", se.Function, se.Status, e.Status)
		}
		if e.Report != nil && se.Runs != e.Report.Runs {
			t.Errorf("/status %s runs %d, audit says %d", se.Function, se.Runs, e.Report.Runs)
		}
	}
	if st.Covered != res.Coverage.Covered() || st.Total != res.Coverage.Total() {
		t.Errorf("/status coverage %d/%d, audit measured %d/%d",
			st.Covered, st.Total, res.Coverage.Covered(), res.Coverage.Total())
	}

	// /coverage annotates the real source with the audit's aggregate.
	_, cov := get(t, base+"/coverage")
	wantHeader := fmt.Sprintf("branch coverage %d/%d directions", res.Coverage.Covered(), res.Coverage.Total())
	if !strings.Contains(cov, wantHeader) {
		t.Errorf("/coverage header missing %q:\n%s", wantHeader, cov)
	}
	if !strings.Contains(cov, "int h(int x, int y) {") {
		t.Errorf("/coverage does not show the source:\n%s", cov)
	}

	// And as HTML on request.
	_, covHTML := get(t, base+"/coverage?format=html")
	if !strings.Contains(covHTML, "<!DOCTYPE html>") {
		t.Errorf("/coverage?format=html not a page:\n%.200s", covHTML)
	}

	// /events replays the retained tail and closes with an accounting
	// line; every data line is a well-formed event.
	_, events := get(t, base+"/events")
	lines := strings.Split(strings.TrimSpace(events), "\n")
	if len(lines) < 2 {
		t.Fatalf("/events returned %d lines", len(lines))
	}
	sawEOF := false
	for _, line := range lines {
		var ev struct {
			Ev      string  `json:"ev"`
			Dropped *uint64 `json:"dropped"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("/events line not JSON: %v\n%s", err, line)
		}
		if ev.Ev == "" {
			t.Fatalf("/events line without kind: %s", line)
		}
		if ev.Ev == "ops-eof" {
			sawEOF = true
			if ev.Dropped == nil {
				t.Errorf("ops-eof without dropped count: %s", line)
			} else if *ev.Dropped != 0 {
				// A quiescent dump replays retained history only; this
				// subscriber can never be lapped.
				t.Errorf("quiescent /events dropped %d, want 0", *ev.Dropped)
			}
		}
	}
	if !sawEOF {
		t.Error("/events dump did not end with ops-eof")
	}
}

// /events?follow=1 streams live: a subscriber attached before the
// search sees events arrive and its connection survives until closed.
func TestServerEventsFollow(t *testing.T) {
	prog, err := dart.Compile(auditSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:     "127.0.0.1:0",
		Mode:     "directed",
		Source:   auditSrc,
		Sites:    dart.BranchSites(prog),
		NumSites: prog.IR.NumSites,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if _, err := dart.Run(prog, dart.Options{
		Toplevel: "h",
		MaxRuns:  50,
		Observer: srv.Sink(),
	}); err != nil {
		t.Fatal(err)
	}

	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		if sc.Scan() {
			ch <- lineOrErr{line: sc.Text()}
		} else {
			ch <- lineOrErr{err: sc.Err()}
		}
	}()
	select {
	case got := <-ch:
		if got.err != nil {
			t.Fatalf("follow stream: %v", got.err)
		}
		var ev struct {
			Ev string `json:"ev"`
			Fn string `json:"fn"`
		}
		if err := json.Unmarshal([]byte(got.line), &ev); err != nil {
			t.Fatalf("follow line not JSON: %v\n%s", err, got.line)
		}
		if ev.Fn != "h" {
			t.Errorf("follow event fn = %q, want h: %s", ev.Fn, got.line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream delivered nothing")
	}
}

// A single (non-audit) search still populates /status via run events.
func TestServerStatusSingleSearch(t *testing.T) {
	prog, err := dart.Compile(auditSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      "127.0.0.1:0",
		Mode:      "directed",
		Source:    auditSrc,
		Sites:     dart.BranchSites(prog),
		NumSites:  prog.IR.NumSites,
		Functions: []string{"h"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep, err := dart.Run(prog, dart.Options{Toplevel: "h", MaxRuns: 200, Observer: srv.Sink()})
	if err != nil {
		t.Fatal(err)
	}
	srv.ReportCoverage(rep.Coverage)
	srv.Done()

	_, body := get(t, "http://"+srv.Addr()+"/status")
	var st struct {
		Done    bool `json:"done"`
		Runs    int  `json:"runs"`
		Covered int  `json:"branch_directions_covered"`
		Entries []struct {
			Function string `json:"function"`
			Status   string `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if !st.Done || st.Runs != rep.Runs {
		t.Errorf("/status done=%v runs=%d, search ran %d", st.Done, st.Runs, rep.Runs)
	}
	if len(st.Entries) != 1 || st.Entries[0].Function != "h" || st.Entries[0].Status != "running" {
		t.Errorf("/status entries = %+v", st.Entries)
	}
	if st.Covered != rep.Coverage.Covered() {
		t.Errorf("/status coverage %d, search measured %d", st.Covered, rep.Coverage.Covered())
	}
}
