// The event ring: a bounded, lock-free broadcast buffer between the
// search engine (producers: audit workers) and the /events streaming
// handlers (consumers: HTTP subscribers).  The engine must never block
// on observation — a slow or stalled curl cannot be allowed to stall
// the search — so producers always win: a publish claims the next slot
// with one atomic add and overwrites whatever is there.  Subscribers
// keep their own cursors; one that falls more than a ring behind skips
// forward and counts the overwritten events as drops instead of ever
// back-pressuring the producer.
package ops

import (
	"sync/atomic"

	"dart/internal/obs"
)

// ringSlot holds one published event.  The event is stored behind an
// atomic pointer (immutable once stored) and published by setting seq
// to ticket+1, so readers never touch a half-written Event.
type ringSlot struct {
	seq atomic.Uint64
	ev  atomic.Pointer[obs.Event]
}

// ring is the broadcast buffer.  size must be a power of two.
type ring struct {
	slots []ringSlot
	mask  uint64
	head  atomic.Uint64 // next ticket to publish
	// dropped aggregates every subscriber's overwrite losses — the
	// ring-wide drop counter behind dart_events_dropped_total.
	dropped atomic.Uint64
}

// defaultRingSize retains the last 4096 events for late subscribers.
const defaultRingSize = 1 << 12

func newRing(size int) *ring {
	if size <= 0 {
		size = defaultRingSize
	}
	// Round up to a power of two.
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{slots: make([]ringSlot, n), mask: uint64(n - 1)}
}

// publish stores ev and never blocks; the oldest retained event is
// overwritten once the ring is full.
func (r *ring) publish(ev obs.Event) {
	t := r.head.Add(1) - 1
	s := &r.slots[t&r.mask]
	e := ev // one heap copy; readers share the immutable value
	// Stamp the ticket as the event's sequence number: /events readers
	// see a gap in seq exactly where the ring overwrote events.
	e.Seq = t
	s.ev.Store(&e)
	s.seq.Store(t + 1)
}

// published returns the total number of events ever published.
func (r *ring) published() uint64 { return r.head.Load() }

// droppedTotal returns the events lost to overwrites summed across all
// subscribers (0 with no subscribers: an unread ring drops nothing).
func (r *ring) droppedTotal() uint64 { return r.dropped.Load() }

// subscriber is one consumer's cursor into the ring.
type subscriber struct {
	r       *ring
	cursor  uint64 // next ticket to read
	dropped uint64 // events overwritten before this subscriber read them
}

// subscribe starts a consumer at the oldest still-retained event, so a
// late subscriber first replays the buffered history.
func (r *ring) subscribe() *subscriber {
	head := r.head.Load()
	start := uint64(0)
	if head > uint64(len(r.slots)) {
		start = head - uint64(len(r.slots))
	}
	return &subscriber{r: r, cursor: start}
}

// next returns the next event if one is available.  ok is false when
// the subscriber is caught up (or a publish is in flight); call again.
// Falling behind the producers advances the cursor and accounts the
// skipped events in Dropped.
func (s *subscriber) next() (ev obs.Event, ok bool) {
	for {
		head := s.r.head.Load()
		if s.cursor >= head {
			return obs.Event{}, false // caught up
		}
		if lag := head - s.cursor; lag > uint64(len(s.r.slots)) {
			// Producers lapped us: everything up to head-size is gone.
			skip := lag - uint64(len(s.r.slots))
			s.dropped += skip
			s.r.dropped.Add(skip)
			s.cursor += skip
		}
		slot := &s.r.slots[s.cursor&s.r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == s.cursor+1:
			p := slot.ev.Load()
			if slot.seq.Load() != s.cursor+1 {
				// Overwritten between the check and the load; the event
				// for this ticket is unrecoverable.
				s.dropped++
				s.r.dropped.Add(1)
				s.cursor++
				continue
			}
			s.cursor++
			return *p, true
		case seq > s.cursor+1:
			// The slot was already lapped; this ticket's event is gone.
			s.dropped++
			s.r.dropped.Add(1)
			s.cursor++
		default:
			// The publish for this ticket is still in flight.
			return obs.Event{}, false
		}
	}
}

// Dropped reports how many events this subscriber lost to overwrites.
func (s *subscriber) Dropped() uint64 { return s.dropped }
