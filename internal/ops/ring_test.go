package ops

import (
	"sync"
	"sync/atomic"
	"testing"

	"dart/internal/obs"
)

func TestRingInOrder(t *testing.T) {
	r := newRing(16)
	for i := 0; i < 10; i++ {
		r.publish(obs.Event{Kind: obs.RunStart, Run: i})
	}
	sub := r.subscribe()
	for i := 0; i < 10; i++ {
		ev, ok := sub.next()
		if !ok {
			t.Fatalf("event %d unavailable", i)
		}
		if ev.Run != i {
			t.Fatalf("event %d out of order: run=%d", i, ev.Run)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d: seq=%d, want ticket %d", i, ev.Seq, i)
		}
	}
	if _, ok := sub.next(); ok {
		t.Fatal("read past the published events")
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d with no overwrites", sub.Dropped())
	}
}

func TestRingLateSubscriberReplaysRetained(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 100; i++ {
		r.publish(obs.Event{Kind: obs.RunStart, Run: i})
	}
	sub := r.subscribe()
	got := 0
	first := -1
	for {
		ev, ok := sub.next()
		if !ok {
			break
		}
		if first < 0 {
			first = ev.Run
		}
		got++
	}
	if got != 8 {
		t.Fatalf("late subscriber read %d events, ring retains 8", got)
	}
	if first != 92 {
		t.Fatalf("replay starts at run %d, want 92 (the oldest retained)", first)
	}
	// Starting at the oldest retained event is not a drop: the
	// subscriber never owned the overwritten history.
	if sub.Dropped() != 0 {
		t.Fatalf("late subscription counted %d drops", sub.Dropped())
	}
}

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	if n := len(newRing(100).slots); n != 128 {
		t.Errorf("size 100 rounds to %d, want 128", n)
	}
	if n := len(newRing(0).slots); n != defaultRingSize {
		t.Errorf("size 0 defaults to %d, want %d", n, defaultRingSize)
	}
}

// The accounting invariant under fire: with concurrent producers
// racing a consumer around a tiny ring, every published event is either
// received or counted as dropped — none vanish, none duplicate.
func TestRingConcurrentAccounting(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	r := newRing(64)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.publish(obs.Event{Kind: obs.RunStart, Run: i})
			}
		}()
	}
	received := uint64(0)
	var lastSeq int64 = -1
	done := make(chan struct{})
	sub := r.subscribe()
	go func() {
		defer close(done)
		for {
			ev, ok := sub.next()
			if !ok {
				if !stop.Load() {
					continue
				}
				// Producers are finished and their publishes are
				// visible; a final empty read means fully drained.
				if ev, ok = sub.next(); !ok {
					return
				}
			}
			received++
			if int64(ev.Seq) <= lastSeq {
				t.Errorf("seq went backwards: %d after %d", ev.Seq, lastSeq)
				return
			}
			lastSeq = int64(ev.Seq)
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-done
	total := uint64(producers * perProducer)
	if r.published() != total {
		t.Fatalf("published %d, want %d", r.published(), total)
	}
	if received+sub.Dropped() != total {
		t.Fatalf("received %d + dropped %d != published %d",
			received, sub.Dropped(), total)
	}
	if received == 0 {
		t.Fatal("consumer received nothing")
	}
}
