// Prometheus text-exposition bridge: renders an obs.Snapshot (plus a
// few server-side gauges) in the text format version 0.0.4 that
// Prometheus and its ecosystem scrape.  Counters become
// dart_<name>_total, histograms become native Prometheus histograms
// with cumulative le buckets; map iteration is sorted so consecutive
// scrapes of an idle server are byte-identical.
package ops

import (
	"fmt"
	"io"
	"sort"

	"dart/internal/obs"
)

// writeProm renders the snapshot and the gauge map.
func writeProm(w io.Writer, snap *obs.Snapshot, gauges map[string]float64) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE dart_%s_total counter\n", name)
		fmt.Fprintf(w, "dart_%s_total %d\n", name, snap.Counters[name])
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hv := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE dart_%s histogram\n", name)
		cum := int64(0)
		for i, c := range hv.Counts {
			cum += c
			if i < len(hv.Bounds) {
				fmt.Fprintf(w, "dart_%s_bucket{le=\"%d\"} %d\n", name, hv.Bounds[i], cum)
			} else {
				fmt.Fprintf(w, "dart_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			}
		}
		fmt.Fprintf(w, "dart_%s_sum %d\n", name, hv.Sum)
		fmt.Fprintf(w, "dart_%s_count %d\n", name, hv.Count)
	}

	gnames := make([]string, 0, len(gauges))
	for name := range gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Fprintf(w, "# TYPE dart_%s gauge\n", name)
		fmt.Fprintf(w, "dart_%s %g\n", name, gauges[name])
	}
}
