// Prometheus text-exposition bridge: renders an obs.Snapshot (plus a
// few server-side gauges) in the text format version 0.0.4 that
// Prometheus and its ecosystem scrape.  Counters become
// dart_<name>_total, histograms become native Prometheus histograms
// with cumulative le buckets; map iteration is sorted so consecutive
// scrapes of an idle server are byte-identical.  Uncovered-direction
// reason counters (the obs.UncoveredPrefix family) fold into one
// labeled dart_uncovered_total{reason="..."} series, and every scrape
// carries a dart_build_info gauge identifying the binary.
package ops

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"dart/internal/obs"
)

// writeProm renders the snapshot and the gauge map.
func writeProm(w io.Writer, snap *obs.Snapshot, gauges map[string]float64) {
	names := make([]string, 0, len(snap.Counters))
	var reasons []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, obs.UncoveredPrefix) {
			reasons = append(reasons, strings.TrimPrefix(name, obs.UncoveredPrefix))
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE dart_%s_total counter\n", name)
		fmt.Fprintf(w, "dart_%s_total %d\n", name, snap.Counters[name])
	}
	if len(reasons) > 0 {
		sort.Strings(reasons)
		fmt.Fprintf(w, "# TYPE dart_uncovered_total counter\n")
		for _, reason := range reasons {
			fmt.Fprintf(w, "dart_uncovered_total{reason=%q} %d\n", reason, snap.Counters[obs.UncoveredPrefix+reason])
		}
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hv := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE dart_%s histogram\n", name)
		cum := int64(0)
		for i, c := range hv.Counts {
			cum += c
			if i < len(hv.Bounds) {
				fmt.Fprintf(w, "dart_%s_bucket{le=\"%d\"} %d\n", name, hv.Bounds[i], cum)
			} else {
				fmt.Fprintf(w, "dart_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			}
		}
		fmt.Fprintf(w, "dart_%s_sum %d\n", name, hv.Sum)
		fmt.Fprintf(w, "dart_%s_count %d\n", name, hv.Count)
	}

	gnames := make([]string, 0, len(gauges))
	for name := range gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Fprintf(w, "# TYPE dart_%s gauge\n", name)
		fmt.Fprintf(w, "dart_%s %g\n", name, gauges[name])
	}

	writeBuildInfo(w)
}

// writeBuildInfo emits the dart_build_info identity gauge: Go version,
// GOMAXPROCS, and the module version when the binary carries one (test
// binaries and devel builds report "(devel)" or "unknown").
func writeBuildInfo(w io.Writer) {
	goVersion := runtime.Version()
	modVersion := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		if bi.Main.Version != "" {
			modVersion = bi.Main.Version
		}
	}
	fmt.Fprintf(w, "# TYPE dart_build_info gauge\n")
	fmt.Fprintf(w, "dart_build_info{go_version=%q,gomaxprocs=\"%d\",module_version=%q} 1\n",
		goVersion, runtime.GOMAXPROCS(0), modVersion)
}
