package ops_test

// GET /profile tests: the JSON cost document (engine-side snapshot
// merged via ReportProfile plus the live event-derived attribution) and
// the ?format=flame rendering, against a real profiled search.  Also
// strengthens the Prometheus histogram checks with the _sum series.

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"dart"
)

func TestServerProfileEndpoint(t *testing.T) {
	prog, err := dart.Compile(auditSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      "127.0.0.1:0",
		Mode:      "directed",
		Source:    auditSrc,
		Sites:     dart.BranchSites(prog),
		NumSites:  prog.IR.NumSites,
		Functions: []string{"h"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before any search: the endpoint answers with empty arrays, never
	// null, and the flame view says so in words.
	_, body := get(t, base+"/profile")
	if !strings.Contains(body, `"phases": []`) && !strings.Contains(body, `"phases":[]`) {
		t.Errorf("idle /profile phases not an empty array:\n%s", body)
	}
	_, flame := get(t, base+"/profile?format=flame")
	if !strings.Contains(flame, "no solver work recorded") {
		t.Errorf("idle flame view:\n%s", flame)
	}

	rep, err := dart.Run(prog, dart.Options{
		Toplevel:       "h",
		MaxRuns:        500,
		Seed:           3,
		Observer:       srv.Sink(),
		CollectProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile == nil {
		t.Fatal("search collected no profile")
	}
	srv.ReportProfile(rep.Profile)
	srv.Done()

	var doc struct {
		Phases []dart.PhaseProfile `json:"phases"`
		Sites  []dart.SiteProfile  `json:"sites"`
		Live   struct {
			Sites []dart.SiteProfile `json:"sites"`
		} `json:"live"`
	}
	_, body = get(t, base+"/profile")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/profile not JSON: %v\n%s", err, body)
	}
	phases := map[string]dart.PhaseProfile{}
	for _, ph := range doc.Phases {
		phases[ph.Phase] = ph
	}
	if phases["exec"].Count == 0 || phases["solve"].Count == 0 {
		t.Errorf("/profile phases missing exec/solve: %+v", doc.Phases)
	}
	if len(doc.Sites) == 0 {
		t.Fatalf("/profile has no site attribution:\n%s", body)
	}

	// The live (event-derived) attribution carries the same exact work
	// counters as the engine-side profile — timing excluded by design.
	liveBySite := map[int]dart.SiteProfile{}
	for _, s := range doc.Live.Sites {
		if s.Fn == "h" {
			liveBySite[s.Site] = s
		}
	}
	for _, s := range doc.Sites {
		l, ok := liveBySite[s.Site]
		if !ok {
			t.Errorf("engine site %d absent from live attribution", s.Site)
			continue
		}
		if l.Solves != s.Solves || l.Work != s.Work || l.Flips != s.Flips {
			t.Errorf("site %d: live (solves=%d work=%d flips=%d) != engine (%d %d %d)",
				s.Site, l.Solves, l.Work, l.Flips, s.Solves, s.Work, s.Flips)
		}
		if l.SolveNanos != 0 {
			t.Errorf("live site %d has wall-clock %d; events must stay timing-free", s.Site, l.SolveNanos)
		}
		if s.Pos == "" {
			t.Errorf("engine site %d has no source position", s.Site)
		}
	}

	// The flame view now shows cost-weighted branch prefixes.
	_, flame = get(t, base+"/profile?format=flame")
	if !strings.Contains(flame, "solver work flamegraph:") || !strings.Contains(flame, "(root)") {
		t.Errorf("flame view after search:\n%s", flame)
	}
	if !strings.Contains(flame, "#") {
		t.Errorf("flame view has no bars:\n%s", flame)
	}

	// Prometheus histograms on /metrics include the _sum series (the
	// _bucket/_count invariants are covered by TestServerLiveAudit).
	_, page := get(t, base+"/metrics")
	sumRe := regexp.MustCompile(`(?m)^dart_steps_per_run_sum (\d+)$`)
	m := sumRe.FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("/metrics missing dart_steps_per_run_sum:\n%s", page)
	}
	if m[1] == "0" {
		t.Error("dart_steps_per_run_sum is zero after a search")
	}
}
