package ops_test

// Readiness, attachment, and listener-hardening tests for the ops
// server extension points the job service builds on.

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"dart/internal/ops"
)

// startOps builds, configures, and binds a server on a free port.
func startOps(t *testing.T, cfg ops.Config, configure func(*ops.Server)) *ops.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := ops.NewServer(cfg)
	if configure != nil {
		configure(s)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReadyzDefault: without a readiness hook, /readyz mirrors
// /healthz — a plain searching process is always ready.
func TestReadyzDefault(t *testing.T) {
	s := startOps(t, ops.Config{Mode: "directed"}, nil)
	if code, body := get(t, "http://"+s.Addr()+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz: %d %q", code, body)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: %d", code)
	}
}

// TestReadyzHook: the hook separates liveness from readiness — the
// process stays live while /readyz sheds with 503 and the reason.
func TestReadyzHook(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	s := startOps(t, ops.Config{Mode: "serve"}, func(s *ops.Server) {
		s.SetReady(func() (bool, string) {
			if ready.Load() {
				return true, ""
			}
			return false, "queue saturated"
		})
	})
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("ready /readyz: %d", code)
	}
	ready.Store(false)
	code, body := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue saturated") {
		t.Errorf("unready /readyz: %d %q", code, body)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz must stay 200 while unready: %d", code)
	}
}

// TestAttachAndGauges: attached handlers serve on the ops mux and
// extra gauges land in the Prometheus exposition.
func TestAttachAndGauges(t *testing.T) {
	s := startOps(t, ops.Config{Mode: "serve"}, func(s *ops.Server) {
		s.Attach("/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTeapot)
		}))
		s.SetGauges(func() map[string]float64 {
			return map[string]float64{"jobs_queue_depth": 3}
		})
	})
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/jobs"); code != http.StatusTeapot {
		t.Errorf("attached handler not served: %d", code)
	}
	_, metrics := get(t, base+"/metrics")
	if !strings.Contains(metrics, "# TYPE dart_jobs_queue_depth gauge") ||
		!strings.Contains(metrics, "dart_jobs_queue_depth 3") {
		t.Errorf("extra gauge missing from /metrics:\n%.600s", metrics)
	}
}

// TestHeaderCap: MaxHeaderBytes is enforced — an abusive header is
// refused instead of buffered without bound.
func TestHeaderCap(t *testing.T) {
	s := startOps(t, ops.Config{Mode: "serve", MaxHeaderBytes: 1 << 10}, nil)
	req, err := http.NewRequest(http.MethodGet, "http://"+s.Addr()+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Flood", strings.Repeat("a", 1<<16))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		// The server may simply hang up on the oversized header; either
		// refusal is a pass — what must not happen is a 200.
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("oversized header accepted: %d", resp.StatusCode)
	}
}
