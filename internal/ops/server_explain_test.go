package ops_test

// GET /explain tests: the resolved coverage-explanation document (the
// merged explainer ledger against the merged live coverage and the
// configured site universe), the ?format=annot rendering, the
// dart_uncovered_total{reason} and dart_build_info /metrics families,
// and the /events?follow=1 keep-alive heartbeat.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"dart"
)

type explainDoc struct {
	Directions     int            `json:"directions"`
	Covered        int            `json:"covered"`
	CoveredPercent float64        `json:"covered_percent"`
	Buckets        map[string]int `json:"buckets"`
	Functions      []struct {
		Function string             `json:"function"`
		Sites    []dart.SiteOutcome `json:"sites"`
	} `json:"functions"`
}

func TestServerExplainEndpoint(t *testing.T) {
	prog, err := dart.Compile(auditSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      "127.0.0.1:0",
		Mode:      "directed",
		Source:    auditSrc,
		Sites:     dart.BranchSites(prog),
		NumSites:  prog.IR.NumSites,
		Functions: []string{"h"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	decode := func(body string) explainDoc {
		t.Helper()
		var doc explainDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/explain not JSON: %v\n%s", err, body)
		}
		return doc
	}

	// Before any search: the full site universe resolves honestly —
	// nothing covered, every direction never-reached, totals closed.
	_, body := get(t, base+"/explain")
	idle := decode(body)
	if idle.Directions == 0 || idle.Covered != 0 {
		t.Fatalf("idle /explain: %+v", idle)
	}
	if idle.Buckets["never-reached"] != idle.Directions {
		t.Errorf("idle buckets = %v, want all %d never-reached", idle.Buckets, idle.Directions)
	}

	rep, err := dart.Run(prog, dart.Options{
		Toplevel:       "h",
		MaxRuns:        500,
		Seed:           3,
		Observer:       srv.Sink(),
		CollectExplain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil {
		t.Fatal("search collected no explain ledger")
	}
	srv.ReportCoverage(rep.Coverage)
	srv.ReportExplain(rep.Explain)
	srv.Done()

	_, body = get(t, base+"/explain")
	doc := decode(body)
	if doc.Directions != idle.Directions {
		t.Errorf("direction universe moved: %d -> %d", idle.Directions, doc.Directions)
	}
	if doc.Covered == 0 {
		t.Fatalf("search covered nothing according to /explain:\n%s", body)
	}
	sum := doc.Covered
	for _, n := range doc.Buckets {
		sum += n
	}
	if sum != doc.Directions {
		t.Errorf("accounting leak: covered %d + buckets = %d, want %d (buckets %v)",
			doc.Covered, sum, doc.Directions, doc.Buckets)
	}
	// g was never run: all of its directions are never-reached, and the
	// per-function grouping carries both functions.
	fns := map[string]int{}
	for _, fn := range doc.Functions {
		fns[fn.Function] = len(fn.Sites)
	}
	if fns["h"] == 0 || fns["g"] == 0 {
		t.Errorf("per-function grouping = %v, want h and g", fns)
	}
	if doc.Buckets["never-reached"] == 0 {
		t.Errorf("unreached g produced no never-reached bucket: %v", doc.Buckets)
	}

	// ?format=annot: the annotated-source coverage view plus the reason
	// table, as text.
	code, annot := get(t, base+"/explain?format=annot")
	if code != http.StatusOK {
		t.Fatalf("/explain?format=annot: %d", code)
	}
	for _, want := range []string{"coverage explanation:", "never-reached"} {
		if !strings.Contains(annot, want) {
			t.Errorf("annot view missing %q:\n%s", want, annot)
		}
	}

	// /metrics: the reason buckets as one labeled counter family, plus
	// the build-info identity gauge on every scrape.
	_, page := get(t, base+"/metrics")
	reasonRe := regexp.MustCompile(`(?m)^dart_uncovered_total\{reason="([a-z-]+)"\} (\d+)$`)
	found := map[string]string{}
	for _, m := range reasonRe.FindAllStringSubmatch(page, -1) {
		found[m[1]] = m[2]
	}
	if len(found) == 0 {
		t.Errorf("/metrics has no dart_uncovered_total{reason} family:\n%s", page)
	}
	if !regexp.MustCompile(`(?m)^dart_build_info\{go_version="go[^"]+",gomaxprocs="\d+",module_version="[^"]+"\} 1$`).MatchString(page) {
		t.Errorf("/metrics missing dart_build_info gauge:\n%s", page)
	}
}

// TestServerEventsFollowHeartbeat: an idle follow stream still writes —
// ops-heartbeat meta lines at the configured cadence — so proxies and
// slow consumers do not reap a healthy connection.
func TestServerEventsFollowHeartbeat(t *testing.T) {
	srv, err := dart.ServeOps(dart.OpsConfig{
		Addr:      "127.0.0.1:0",
		Mode:      "directed",
		Heartbeat: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 8)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			ch <- lineOrErr{line: sc.Text()}
		}
		ch <- lineOrErr{err: sc.Err()}
	}()

	beats := 0
	deadline := time.After(10 * time.Second)
	for beats < 2 {
		select {
		case got := <-ch:
			if got.err != nil {
				t.Fatalf("follow stream: %v", got.err)
			}
			var ev struct {
				Ev string `json:"ev"`
			}
			if err := json.Unmarshal([]byte(got.line), &ev); err != nil {
				t.Fatalf("follow line not JSON: %v\n%s", err, got.line)
			}
			if ev.Ev == "ops-heartbeat" {
				beats++
			}
		case <-deadline:
			t.Fatalf("saw %d heartbeats within 10s, want >= 2", beats)
		}
	}
}
