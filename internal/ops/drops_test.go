package ops

// Drop-visibility tests: the seq-gap contract of /events (every event
// lost to ring overwrites shows up as a numbered hole plus an ops-drop
// record, even when the loss lands at the tail of a burst) and the
// ring-wide aggregate behind dart_events_dropped_total.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dart/internal/obs"
)

// TestRingSeqGapsMatchDrops: under concurrent publishers lapping a slow
// consumer, the holes in the received seq sequence account for exactly
// the events the subscriber reports dropped — a reader can trust seq
// arithmetic to quantify its losses.
func TestRingSeqGapsMatchDrops(t *testing.T) {
	const producers = 4
	const perProducer = 3000
	r := newRing(32)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.publish(obs.Event{Kind: obs.RunStart, Run: i})
			}
		}()
	}
	sub := r.subscribe()
	var received, gaps uint64
	var lastSeq int64 = -1
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ev, ok := sub.next()
			if !ok {
				if r.published() != uint64(producers*perProducer) {
					continue
				}
				// All publishes visible; a final empty read means drained.
				if ev, ok = sub.next(); !ok {
					return
				}
			}
			received++
			gaps += uint64(int64(ev.Seq) - lastSeq - 1)
			lastSeq = int64(ev.Seq)
		}
	}()
	wg.Wait()
	<-done

	total := uint64(producers * perProducer)
	if received+sub.Dropped() != total {
		t.Fatalf("received %d + dropped %d != published %d", received, sub.Dropped(), total)
	}
	if gaps != sub.Dropped() {
		t.Errorf("seq gaps %d != reported drops %d", gaps, sub.Dropped())
	}
	if r.droppedTotal() != sub.Dropped() {
		t.Errorf("ring-wide dropped %d != sole subscriber's %d", r.droppedTotal(), sub.Dropped())
	}
	if sub.Dropped() == 0 {
		t.Log("no drops this run (consumer kept up); invariants held vacuously")
	}
}

// TestEventsFollowTrailingDrops: a burst that laps a follow-mode
// subscriber while it sleeps is announced as an ops-drop record as soon
// as the stream catches up — not deferred until the next delivered
// event — and the loss is visible both as a seq gap and in the
// dart_events_dropped_total counter.
func TestEventsFollowTrailingDrops(t *testing.T) {
	const ringSize = 8
	const burst = 100
	s := NewServer(Config{RingSize: ringSize})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sink := s.Sink()

	resp, err := http.Get(ts.URL + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type rec struct {
		Ev      string  `json:"ev"`
		Seq     *uint64 `json:"seq"`
		Dropped uint64  `json:"dropped"`
	}
	lines := make(chan rec, burst+16)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var v rec
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				t.Errorf("follow line not JSON: %v\n%s", err, sc.Text())
				return
			}
			lines <- v
		}
	}()
	read := func(what string) rec {
		t.Helper()
		select {
		case v, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended before %s", what)
			}
			return v
		case <-time.After(10 * time.Second):
			t.Fatalf("no %s within 10s", what)
		}
		panic("unreachable")
	}

	// One probe event, received back: the handler has subscribed and is
	// caught up, so the burst below laps it from a known cursor.
	sink.Event(obs.Event{Kind: obs.RunStart, Run: 0})
	first := read("probe event")
	if first.Ev != "run-start" || first.Seq == nil || *first.Seq != 0 {
		t.Fatalf("probe = %+v", first)
	}

	// The burst outruns the sleeping subscriber: ring retains the last
	// 8, so 92 of these are gone before the handler wakes.
	for i := 1; i <= burst; i++ {
		sink.Event(obs.Event{Kind: obs.RunStart, Run: i})
	}
	wantDropped := uint64(burst - ringSize)

	drop := read("ops-drop record")
	if drop.Ev != "ops-drop" || drop.Dropped != wantDropped {
		t.Fatalf("drop record = %+v, want ops-drop dropped=%d", drop, wantDropped)
	}
	// The survivors follow, seq-contiguous from the first retained slot;
	// the gap after the probe equals the announced drop count.
	prev := *first.Seq
	var gap uint64
	for i := 0; i < ringSize; i++ {
		ev := read("surviving event")
		if ev.Ev != "run-start" || ev.Seq == nil {
			t.Fatalf("survivor %d = %+v", i, ev)
		}
		gap += *ev.Seq - prev - 1
		prev = *ev.Seq
	}
	if gap != wantDropped {
		t.Errorf("seq gaps %d != announced drops %d", gap, wantDropped)
	}

	// The loss is on /metrics as a counter, and the counter exists (at
	// zero) even on a server that never dropped anything.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := readAll(mresp)
	if !strings.Contains(page, "# TYPE dart_events_dropped_total counter") {
		t.Errorf("/metrics missing events_dropped type line:\n%s", page)
	}
	want := "dart_events_dropped_total 92"
	if !strings.Contains(page, want) {
		t.Errorf("/metrics missing %q:\n%s", want, page)
	}

	fresh := NewServer(Config{})
	fts := httptest.NewServer(fresh.Handler())
	defer fts.Close()
	fresp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fpage, _ := readAll(fresp)
	if !strings.Contains(fpage, "dart_events_dropped_total 0") {
		t.Errorf("fresh /metrics lacks zero-valued drop counter:\n%s", fpage)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}
