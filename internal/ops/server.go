// Package ops is the live operations surface: an HTTP server exposing
// a running search — or a whole parallel library audit — to the outside
// world while it executes.  DART's pitch is coverage, and its
// industrial descendants treat structural-coverage reporting and live
// dashboards as the product surface; ops is that layer for this repo.
//
// Endpoints:
//
//	/healthz        liveness probe (the process is up; always 200)
//	/readyz         readiness probe: 503 while the service cannot take
//	                more work (job queue saturated, drain in progress),
//	                so a load balancer stops routing before clients see
//	                429s; without a readiness hook it mirrors /healthz
//	/metrics        Prometheus text exposition of the cumulative search
//	                metrics (the obs event→metrics bridge, merged across
//	                all audit workers) plus server gauges
//	/status         JSON: per-function audit state, runs, bugs,
//	                restarts, elapsed, plus batch totals and coverage
//	/events         NDJSON stream of trace events from a bounded
//	                lock-free ring (add ?follow=1 to tail live; slow
//	                readers drop events, never block the engine)
//	/coverage       annotated source branch-coverage report
//	                (?format=html for the HTML page)
//	/explain        resolved coverage explanation: every branch direction
//	                of the program covered or carrying exactly one "why
//	                not" reason, grouped per function (?format=annot for
//	                the source-annotated text view)
//	/profile        JSON search-cost profile: per-phase wall breakdown
//	                and per-branch-site solver time/work from reported
//	                snapshots, plus live event-derived site attribution
//	                (?format=flame for a solver-work-weighted text
//	                flamegraph of the execution tree)
//	/debug/pprof/   net/http/pprof; audit workers are tagged with a
//	                dart_fn profile label per function under test
//
// The server is fed exclusively through its Sink() — the same obs event
// stream every other observer consumes — plus ReportCoverage calls as
// per-function reports complete, so attaching it costs the engine one
// extra sink in a Tee and nothing else.  With no server configured the
// engine's observer stays nil and the whole layer is never allocated.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"dart/internal/coverage"
	"dart/internal/obs"
)

// Config describes the program under test to the server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Mode labels the run ("directed", "random", "audit").
	Mode string
	// Source is the program text /coverage annotates.
	Source string
	// Sites is the branch-site index of the compiled program.
	Sites []coverage.SiteInfo
	// NumSites is the program's total conditional branch-site count.
	NumSites int
	// Functions are the functions under test, in audit order.
	Functions []string
	// RingSize bounds the /events buffer (default 4096 events).
	RingSize int
	// Heartbeat is the keep-alive interval for /events?follow=1
	// (default 15s; negative disables): after every interval of
	// idleness the stream carries an ops-heartbeat meta line, so
	// proxies and slow consumers do not reap a healthy tail.
	Heartbeat time.Duration
	// ReadHeaderTimeout, ReadTimeout, IdleTimeout, and MaxHeaderBytes
	// harden the listener against slow or abusive clients: without them
	// one client trickling a request header pins a connection (and its
	// goroutine) forever.  Zero selects the defaults (5s, 30s, 120s,
	// 64 KiB); the write side stays unbounded because /events?follow=1
	// is a legitimate long-lived streaming response.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
}

// Hardened-listener defaults (Config zero values).
const (
	defaultReadHeaderTimeout = 5 * time.Second
	defaultReadTimeout       = 30 * time.Second
	defaultIdleTimeout       = 120 * time.Second
	defaultMaxHeaderBytes    = 64 << 10
	defaultHeartbeat         = 15 * time.Second
)

// liveTreeMaxNodes bounds the /profile flamegraph's execution-tree
// model — far below obs.DefaultMaxTreeNodes because it lives for the
// whole server lifetime and backs a capped rendering anyway.
const liveTreeMaxNodes = 1 << 16

// maxTrackedFns bounds the per-function status table.  A long-running
// job service sees an unbounded stream of submitted programs; /status
// keeps the first maxTrackedFns distinct function names and drops the
// rest rather than growing without limit.
const maxTrackedFns = 4096

// fnState is the live audit state of one function.
type fnState struct {
	status   string
	runs     int
	bugs     int
	restarts int
	started  time.Time
	elapsed  time.Duration // frozen at audit-fn-end
	ended    bool
}

// Server is the live ops surface.  All of its state is fed from the
// event sink and ReportCoverage; every handler reads under the same
// mutex, so it is safe to hammer while an audit runs.
type Server struct {
	cfg   Config
	start time.Time
	ring  *ring
	live  *obs.LiveMetrics
	// liveProf and tree fold the event stream into per-site solver
	// attribution and a work-weighted execution tree for /profile (the
	// tree is capped well below the offline default: it backs a live
	// flamegraph, not an exhaustive dump).
	liveProf *obs.LiveProfile
	tree     *obs.Tree

	mu    sync.Mutex
	fns   map[string]*fnState
	order []string
	cov   *coverage.Set
	done  bool
	// prof merges the engine-side profile snapshots handed to
	// ReportProfile — the timing-bearing half of /profile.
	prof *obs.ProfileSnapshot
	// exp merges the engine-side explainer ledgers handed to
	// ReportExplain; /explain resolves the merged ledger against the
	// merged coverage and the configured site universe on demand.
	exp *obs.ExplainSnapshot

	// ready is the readiness hook (nil = always ready); extra provides
	// additional /metrics gauges; attached are extra endpoint handlers
	// (the serve layer's /jobs surface).  All are set before Handler()/
	// Start and read-only afterwards.
	ready    func() (bool, string)
	extra    func() map[string]float64
	attached map[string]http.Handler

	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server without binding a socket; use Handler()
// with httptest or wire it into an existing mux.  Start is the
// listening variant.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		ring:     newRing(cfg.RingSize),
		live:     obs.NewLiveMetrics(),
		liveProf: obs.NewLiveProfile(),
		tree:     obs.NewTree(liveTreeMaxNodes),
		fns:      map[string]*fnState{},
		cov:      coverage.New(cfg.NumSites),
	}
	for _, fn := range cfg.Functions {
		s.fns[fn] = &fnState{status: "pending"}
		s.order = append(s.order, fn)
	}
	return s
}

// Start builds the server and begins serving on cfg.Addr.
func Start(cfg Config) (*Server, error) {
	s := NewServer(cfg)
	if err := s.Listen(); err != nil {
		return nil, err
	}
	return s, nil
}

// Listen binds cfg.Addr and begins serving.  Use it after NewServer
// when endpoints, readiness, or gauges must be attached first (the job
// service does); Start is the one-call variant.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("ops: %w", err)
	}
	s.ln = ln
	s.srv = s.httpServer()
	go s.srv.Serve(ln)
	return nil
}

// httpServer builds the hardened http.Server around Handler(): header
// and request-read deadlines plus a header size cap, so one slow or
// abusive client can never pin a connection forever.  WriteTimeout is
// deliberately zero — /events?follow=1 streams until the client leaves.
func (s *Server) httpServer() *http.Server {
	cfg := s.cfg
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = defaultReadHeaderTimeout
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = defaultReadTimeout
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	if cfg.MaxHeaderBytes <= 0 {
		cfg.MaxHeaderBytes = defaultMaxHeaderBytes
	}
	return &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		IdleTimeout:       cfg.IdleTimeout,
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
}

// SetReady installs the readiness hook behind /readyz: fn reports
// whether the service can take more work and, when it cannot, why.
// Install before Start/Handler.
func (s *Server) SetReady(fn func() (bool, string)) { s.ready = fn }

// SetGauges installs a provider of additional /metrics gauges (queue
// depth, running executors, store occupancy).  Install before
// Start/Handler.
func (s *Server) SetGauges(fn func() map[string]float64) { s.extra = fn }

// Attach registers an extra handler on the ops mux (the serve layer's
// /jobs surface).  Attach before Start/Handler; attaching a pattern the
// ops surface already owns panics at mux-build time, loudly, instead of
// silently shadowing an endpoint.
func (s *Server) Attach(pattern string, h http.Handler) {
	if s.attached == nil {
		s.attached = map[string]http.Handler{}
	}
	s.attached[pattern] = h
}

// Addr returns the bound listen address (empty without Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and tears down in-flight streams.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Sink returns the observer feeding the server.  It never blocks: the
// ring overwrites, the metrics bridge and status table update under a
// short mutex.
func (s *Server) Sink() obs.Sink {
	return obs.SinkFunc(func(ev obs.Event) {
		s.ring.publish(ev)
		s.live.Event(ev)
		s.liveProf.Event(ev)
		s.tree.Event(ev)
		s.track(ev)
	})
}

// track folds one event into the per-function status table.
func (s *Server) track(ev obs.Event) {
	if ev.Fn == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.fns[ev.Fn]
	if !ok {
		if len(s.fns) >= maxTrackedFns {
			// A long-running job service sees unboundedly many distinct
			// function names; /status tracks the first maxTrackedFns and
			// stays bounded rather than growing with traffic.
			return
		}
		st = &fnState{status: "pending"}
		s.fns[ev.Fn] = st
		s.order = append(s.order, ev.Fn)
	}
	switch ev.Kind {
	case obs.AuditFnStart:
		st.status = "running"
		st.started = time.Now()
		st.ended = false
	case obs.AuditFnEnd:
		st.status = ev.Status
		st.runs = ev.Runs
		st.bugs = ev.Bugs
		st.ended = true
		if !st.started.IsZero() {
			st.elapsed = time.Since(st.started)
		}
	case obs.RunEnd:
		if !st.ended {
			if st.status == "pending" {
				// A single search has no audit brackets; the first run
				// marks the function live.
				st.status = "running"
				st.started = time.Now()
			}
			st.runs++
		}
	case obs.BugFound:
		if !st.ended {
			st.bugs++
		}
	case obs.Restart:
		if !st.ended {
			st.restarts++
		}
	}
}

// ReportCoverage merges a finished search's coverage into the
// whole-batch set behind /coverage.  Safe from any audit worker.
func (s *Server) ReportCoverage(set *coverage.Set) {
	if set == nil {
		return
	}
	s.mu.Lock()
	s.cov.Merge(set)
	s.mu.Unlock()
}

// ReportProfile merges a finished search's cost profile into the
// timing-bearing half of /profile.  Safe from any audit worker; nil
// snapshots (profiling off) are ignored.
func (s *Server) ReportProfile(snap *obs.ProfileSnapshot) {
	if snap == nil {
		return
	}
	s.mu.Lock()
	if s.prof == nil {
		s.prof = &obs.ProfileSnapshot{}
	}
	s.prof.Merge(snap)
	s.mu.Unlock()
}

// ReportExplain merges a finished search's coverage-explainer ledger
// into the merged ledger behind /explain.  Safe from any audit worker;
// nil snapshots (explainer off) are ignored.
func (s *Server) ReportExplain(snap *obs.ExplainSnapshot) {
	if snap == nil {
		return
	}
	s.mu.Lock()
	if s.exp == nil {
		s.exp = &obs.ExplainSnapshot{}
	}
	s.exp.Merge(snap)
	s.mu.Unlock()
}

// Done marks the batch finished on /status.
func (s *Server) Done() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
}

// Handler returns the ops mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/coverage", s.handleCoverage)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range s.attached {
		mux.Handle(pattern, h)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: liveness says the process is up,
// readiness says it can take more work.  While the job queue is
// saturated or a drain is in progress it answers 503, so a load
// balancer stops routing new submissions before they would be refused
// with 429s.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.ready != nil {
		if ok, reason := s.ready(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, reason)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.live.Snapshot()
	if snap.Counters == nil {
		snap.Counters = map[string]int64{}
	}
	// The ring's aggregate overwrite losses, always exposed (zero
	// included) so dart_events_dropped_total exists before the first
	// drop and alerting rules can rely on it.
	snap.Counters["events_dropped"] = int64(s.ring.droppedTotal())
	s.mu.Lock()
	doneCount := 0
	for _, st := range s.fns {
		if st.ended {
			doneCount++
		}
	}
	gauges := map[string]float64{
		"uptime_seconds":            time.Since(s.start).Seconds(),
		"functions":                 float64(len(s.fns)),
		"functions_done":            float64(doneCount),
		"events_published":          float64(s.ring.published()),
		"coverage_directions":       float64(s.cov.Covered()),
		"coverage_directions_total": float64(s.cov.Total()),
		"coverage_sites_touched":    float64(s.cov.SitesTouched()),
	}
	s.mu.Unlock()
	if s.extra != nil {
		for name, v := range s.extra() {
			gauges[name] = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, snap, gauges)
}

// statusFn is the /status entry for one function.
type statusFn struct {
	Function       string  `json:"function"`
	Status         string  `json:"status"`
	Runs           int     `json:"runs"`
	Bugs           int     `json:"bugs"`
	Restarts       int     `json:"restarts"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// statusResp is the /status document.
type statusResp struct {
	Mode             string     `json:"mode"`
	Done             bool       `json:"done"`
	UptimeSeconds    float64    `json:"uptime_seconds"`
	Functions        int        `json:"functions"`
	FunctionsDone    int        `json:"functions_done"`
	Runs             int        `json:"runs"`
	Bugs             int        `json:"bugs"`
	Restarts         int        `json:"restarts"`
	EventsPublished  uint64     `json:"events_published"`
	CoverageCovered  int        `json:"branch_directions_covered"`
	CoverageTotal    int        `json:"branch_directions_total"`
	CoverageFraction float64    `json:"branch_coverage_fraction"`
	Entries          []statusFn `json:"entries"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statusResp{
		Mode:            s.cfg.Mode,
		Done:            s.done,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Functions:       len(s.order),
		EventsPublished: s.ring.published(),
		CoverageCovered: s.cov.Covered(),
		CoverageTotal:   s.cov.Total(),
		Entries:         []statusFn{},
	}
	if resp.CoverageTotal > 0 {
		resp.CoverageFraction = float64(resp.CoverageCovered) / float64(resp.CoverageTotal)
	}
	for _, fn := range s.order {
		st := s.fns[fn]
		elapsed := st.elapsed
		if !st.ended && !st.started.IsZero() {
			elapsed = time.Since(st.started)
		}
		if st.ended {
			resp.FunctionsDone++
		}
		resp.Runs += st.runs
		resp.Bugs += st.bugs
		resp.Restarts += st.restarts
		resp.Entries = append(resp.Entries, statusFn{
			Function:       fn,
			Status:         st.status,
			Runs:           st.runs,
			Bugs:           st.bugs,
			Restarts:       st.restarts,
			ElapsedSeconds: elapsed.Seconds(),
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleEvents streams the ring as NDJSON.  Without ?follow=1 it drains
// the retained buffer and returns, ending with one ops-eof meta line
// carrying this subscriber's drop count; with ?follow=1 it tails the
// stream until the client disconnects, interleaving ops-drop meta lines
// whenever the subscriber loses events to the producers.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sub := s.ring.subscribe()
	enc := json.NewEncoder(w)
	reported := uint64(0)
	emitDrops := func() {
		if d := sub.Dropped(); d > reported {
			reported = d
			enc.Encode(map[string]any{"ev": "ops-drop", "dropped": d})
		}
	}
	heartbeat := s.cfg.Heartbeat
	if heartbeat == 0 {
		heartbeat = defaultHeartbeat
	}
	lastWrite := time.Now()
	for {
		ev, ok := sub.next()
		if !ok {
			if !follow {
				enc.Encode(map[string]any{"ev": "ops-eof", "dropped": sub.Dropped()})
				return
			}
			// Caught up: announce any drops now, before going quiet —
			// otherwise losses at the tail of a burst stay invisible
			// until the next delivered event (which may never come).
			emitDrops()
			// An idle tail gets a keep-alive meta line per heartbeat
			// interval, so proxies and slow consumers see a live stream
			// even when the search is quiet.
			if heartbeat > 0 && time.Since(lastWrite) >= heartbeat {
				lastWrite = time.Now()
				if err := enc.Encode(map[string]any{"ev": "ops-heartbeat"}); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(25 * time.Millisecond):
			}
			continue
		}
		emitDrops()
		lastWrite = time.Now()
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// profileResp is the /profile JSON document: the merged engine-side
// snapshots (wall timings included) plus the live event-derived site
// attribution (work counters only — events carry no timing).
type profileResp struct {
	Phases []obs.PhaseProfile `json:"phases"`
	Sites  []obs.SiteProfile  `json:"sites"`
	Live   struct {
		Sites []obs.SiteProfile `json:"sites"`
	} `json:"live"`
}

// handleProfile serves the search-cost profile.  Default: JSON.
// ?format=flame renders the solver-work-weighted execution tree as a
// text flamegraph instead.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "flame" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(s.tree.Flame())
		return
	}
	resp := profileResp{Phases: []obs.PhaseProfile{}, Sites: []obs.SiteProfile{}}
	s.mu.Lock()
	if s.prof != nil {
		resp.Phases = append(resp.Phases, s.prof.Phases...)
		resp.Sites = append(resp.Sites, s.prof.Sites...)
	}
	s.mu.Unlock()
	live := s.liveProf.Snapshot()
	resp.Live.Sites = live.Sites
	if resp.Live.Sites == nil {
		resp.Live.Sites = []obs.SiteProfile{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// explainFn is the /explain entry for one function: its branch sites'
// resolved outcomes, in site order.
type explainFn struct {
	Function string            `json:"function"`
	Sites    []obs.SiteOutcome `json:"sites"`
}

// explainResp is the /explain JSON document: the whole-batch resolution
// of the merged explainer ledger against the merged coverage, grouped
// per function.
type explainResp struct {
	Directions     int            `json:"directions"`
	Covered        int            `json:"covered"`
	CoveredPercent float64        `json:"covered_percent"`
	Buckets        map[string]int `json:"buckets,omitempty"`
	Stalls         int64          `json:"stalls,omitempty"`
	Functions      []explainFn    `json:"functions"`
}

// handleExplain serves the resolved coverage explanation.  Default:
// per-function JSON.  ?format=annot renders the annotated source
// coverage view followed by the per-direction reason table instead.
// In job-service mode there is no single program (cfg.Sites is empty),
// so the document is empty there — per-job explanations live on the
// job envelopes, and the reason buckets on /metrics.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	refs := make([]obs.ExplainSiteRef, len(s.cfg.Sites))
	for i, si := range s.cfg.Sites {
		refs[i] = obs.ExplainSiteRef{Site: si.Site, Fn: si.Fn, Pos: si.Pos.String()}
	}
	s.mu.Lock()
	set := s.cov.Clone()
	snap := s.exp
	var stalls int64
	if snap != nil {
		stalls = snap.Stalls
	}
	rep := snap.Resolve(refs, func(site int, taken bool) bool {
		tk, ntk := set.Site(site)
		if taken {
			return tk
		}
		return ntk
	})
	s.mu.Unlock()

	if r.URL.Query().Get("format") == "annot" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cov := coverage.Annotate(s.cfg.Source, s.cfg.Sites, set)
		w.Write([]byte(cov.Text()))
		w.Write([]byte("\n"))
		w.Write([]byte(rep.Table(0)))
		return
	}

	resp := explainResp{
		Directions:     rep.Directions,
		Covered:        rep.Covered,
		CoveredPercent: rep.CoveredPercent(),
		Buckets:        rep.Buckets,
		Stalls:         stalls,
		Functions:      []explainFn{},
	}
	// Group resolved sites per containing function, preserving site
	// order within and first-appearance order across functions.
	byFn := map[string]int{}
	for _, so := range rep.Sites {
		i, ok := byFn[so.Fn]
		if !ok {
			i = len(resp.Functions)
			byFn[so.Fn] = i
			resp.Functions = append(resp.Functions, explainFn{Function: so.Fn})
		}
		resp.Functions[i].Sites = append(resp.Functions[i].Sites, so)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	set := s.cov.Clone()
	s.mu.Unlock()
	rep := coverage.Annotate(s.cfg.Source, s.cfg.Sites, set)
	if r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && acceptsHTML(r)) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(rep.HTML())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(rep.Text()))
}

// acceptsHTML reports whether the client asked for HTML (a browser);
// curl and test clients default to the text report.
func acceptsHTML(r *http.Request) bool {
	for _, part := range r.Header["Accept"] {
		if strings.Contains(part, "text/html") {
			return true
		}
	}
	return false
}
