package corpus

// Robustness tests for the disk layer.  The contract under test: a
// corpus can be made arbitrarily corrupt — flipped bytes, truncation,
// wrong version tokens, junk lines — and every load degrades to a miss
// (with a diagnostic note), never to a wrong or missing verdict.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dart/internal/concolic"
	"dart/internal/machine"
	"dart/internal/solver"
)

func testEntry() *Entry {
	return &Entry{
		Function:   "h",
		IRHash:     "f:abc123",
		OptionsSig: "audit-sig-v1 seed=2",
		Suite:      []map[string]int64{{"d0.x": 10, "d0.y": 3}, {"d0.x": 0, "d0.y": 0}},
		Bugs: []concolic.Bug{{
			Kind:   machine.Aborted,
			Msg:    "abort() reached",
			Run:    2,
			Inputs: map[string]int64{"d0.x": 10, "d0.y": 3},
		}},
		Cover: []SiteDir{
			{Fn: "h", Ord: 0, Taken: false},
			{Fn: "h", Ord: 0, Taken: true},
			{Fn: "h", Ord: 1, Taken: true},
		},
		Flags: Flags{Complete: true, AllLinear: true, AllLocsDefinite: true, SolverComplete: true},
		Runs:  7,
	}
}

func TestEntryRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry()
	if err := c.StoreEntry(want); err != nil {
		t.Fatal(err)
	}
	got, reason := c.LoadEntry("h")
	if got == nil {
		t.Fatalf("LoadEntry miss: %s", reason)
	}
	if got.Function != "h" || got.IRHash != want.IRHash || got.OptionsSig != want.OptionsSig ||
		got.Runs != 7 || len(got.Suite) != 2 || len(got.Bugs) != 1 || len(got.Cover) != 3 ||
		got.Flags != want.Flags {
		t.Errorf("round trip mangled the entry: %+v", got)
	}
	if got.Suite[0]["d0.x"] != 10 || got.Bugs[0].Kind != machine.Aborted {
		t.Errorf("payload detail lost: %+v", got)
	}
	if _, reason := c.LoadEntry("nothere"); reason != "absent" {
		t.Errorf("missing entry reason %q, want absent", reason)
	}
}

// TestEntryByteFlipFaultInjection flips every byte of a stored entry
// file in turn; each flip must either keep the file verifiable (never
// happens for sha256, but the property is what matters) or read as a
// clean miss.  A wrong verdict — a load that "succeeds" with altered
// content — fails the test.
func TestEntryByteFlipFaultInjection(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreEntry(testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fn", "h.json")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := c.LoadEntry("h")
	if baseline == nil {
		t.Fatal("pristine entry does not load")
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, reason := c.LoadEntry("h")
		if got != nil {
			// The only acceptable "success" is byte-identical content —
			// i.e. the flip landed somewhere JSON-insignificant AND the
			// checksum still passed, which sha256 makes impossible.
			t.Fatalf("byte %d flipped: load succeeded on corrupt file", i)
		}
		if reason != "invalid" {
			t.Fatalf("byte %d flipped: reason %q, want invalid", i, reason)
		}
	}
	c.Notes() // drain; corruption must be noted, not fatal
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.LoadEntry("h"); got == nil {
		t.Error("restored entry no longer loads")
	}
}

func TestEntryTruncationAndVersionGate(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreEntry(testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fn", "h.json")
	orig, _ := os.ReadFile(path)

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"header-only-no-newline", []byte("dartcorpus1 abcdef")},
		{"truncated-payload", orig[:len(orig)-5]},
		{"future-version", append([]byte("dartcorpus999 "), orig[12:]...)},
		{"junk", []byte("not a corpus file at all\nreally not")},
	} {
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, reason := c.LoadEntry("h"); got != nil || reason != "invalid" {
			t.Errorf("%s: got entry=%v reason=%q, want nil/invalid", tc.name, got, reason)
		}
	}
	if len(c.Notes()) == 0 {
		t.Error("corruption left no diagnostic notes")
	}

	// A stored entry whose payload names a different function must not
	// serve under this name (a rename/copy attack on the file level).
	other := testEntry()
	other.Function = "g"
	if err := c.StoreEntry(other); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "fn", "g.json"))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, reason := c.LoadEntry("h"); got != nil || reason != "invalid" {
		t.Errorf("cross-named entry served: %v %q", got, reason)
	}
}

func TestSolveLogPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutPortable("key-a", solver.Sat, map[string]int64{"d0.x": 10})
	c.PutPortable("key-b", solver.Unsat, nil)
	if err := c.FlushSolves(); err != nil {
		t.Fatal(err)
	}
	// Flushing twice must not duplicate lines.
	if err := c.FlushSolves(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.SolveCount(); n != 2 {
		t.Fatalf("reloaded SolveCount = %d, want 2", n)
	}
	r, ok := c2.GetPortable("key-a")
	if !ok || r.Verdict != solver.Sat || r.Model["d0.x"] != 10 {
		t.Errorf("key-a = %+v ok=%v", r, ok)
	}
	r, ok = c2.GetPortable("key-b")
	if !ok || r.Verdict != solver.Unsat || r.Model != nil {
		t.Errorf("key-b = %+v ok=%v", r, ok)
	}
}

// TestSolveLogByteFlipFaultInjection flips each byte of a two-line log
// in turn: every variant must load without error, never invent a
// record that was not written, and never mutate a surviving record.
func TestSolveLogByteFlipFaultInjection(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutPortable("key-a", solver.Sat, map[string]int64{"d0.x": 10})
	c.PutPortable("key-b", solver.Unsat, nil)
	if err := c.FlushSolves(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "solve.log")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		cc, err := Open(dir)
		if err != nil {
			t.Fatalf("byte %d flipped: Open failed: %v", i, err)
		}
		if n := cc.SolveCount(); n > 2 {
			t.Fatalf("byte %d flipped: %d records from a 2-record log", i, n)
		}
		// Any key that still resolves must resolve to the original value.
		if r, ok := cc.GetPortable("key-a"); ok &&
			(r.Verdict != solver.Sat || r.Model["d0.x"] != 10) {
			t.Fatalf("byte %d flipped: key-a mutated to %+v", i, r)
		}
		if r, ok := cc.GetPortable("key-b"); ok && (r.Verdict != solver.Unsat || len(r.Model) != 0) {
			t.Fatalf("byte %d flipped: key-b mutated to %+v", i, r)
		}
	}
}

// TestSolveLogTruncatedTail emulates a crash mid-append: the final line
// is cut short, the earlier lines must survive.
func TestSolveLogTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutPortable("key-a", solver.Sat, map[string]int64{"d0.x": 10})
	c.PutPortable("key-b", solver.Unsat, nil)
	if err := c.FlushSolves(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "solve.log")
	orig, _ := os.ReadFile(path)
	if err := os.WriteFile(path, orig[:len(orig)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetPortable("key-a"); !ok {
		t.Error("first record lost to a truncated tail")
	}
	if _, ok := c2.GetPortable("key-b"); ok {
		t.Error("truncated final record was trusted")
	}
	notes := strings.Join(c2.Notes(), "\n")
	if !strings.Contains(notes, "discarded") {
		t.Errorf("no discard note for the truncated tail: %q", notes)
	}
}

func TestReportSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"functions":2,"buggy":1}`)
	if err := c.StoreReport("some-cache-key", body); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadReport("some-cache-key")
	if !ok || string(got) != string(body) {
		t.Fatalf("LoadReport = %q ok=%v", got, ok)
	}
	if _, ok := c.LoadReport("other-key"); ok {
		t.Error("unknown key served a report")
	}
	// Corrupt the spill file: the load must miss, not serve bad bytes.
	matches, _ := filepath.Glob(filepath.Join(dir, "reports", "*.json"))
	if len(matches) != 1 {
		t.Fatalf("spill files: %v", matches)
	}
	raw, _ := os.ReadFile(matches[0])
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadReport("some-cache-key"); ok {
		t.Error("corrupt spill file served")
	}
}

func TestEntryPathEscaping(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Hostile names must neither collide nor escape the fn/ directory.
	weird := &Entry{Function: "../evil"}
	if err := c.StoreEntry(weird); err != nil {
		t.Fatal(err)
	}
	got, _ := c.LoadEntry("../evil")
	if got == nil || got.Function != "../evil" {
		t.Errorf("escaped name round trip: %+v", got)
	}
	p := c.entryPath("../evil")
	if rel, err := filepath.Rel(filepath.Join(c.Dir(), "fn"), p); err != nil || strings.HasPrefix(rel, "..") {
		t.Errorf("entry path %q escapes fn/", p)
	}
	if c.entryPath("a") == c.entryPath("x61") {
		// "a" is identifier-safe; "x61" is too — distinct names must map
		// to distinct files even though hex("a") == "61".
		t.Error("escape scheme collides distinct names")
	}
}
