// Package corpus is the disk layer of the incremental re-audit
// pipeline: a versioned on-disk directory holding, per audited
// function, its IR content hash, a distilled replayable suite, its bug
// fixtures, its branch coverage, and its completeness flags — plus a
// persistent solve-cache log (solvelog.go) and a spill area for the
// serve layer's result store (reports.go).
//
// The trust model is deliberately asymmetric.  A corpus can make an
// audit *faster* (an unchanged function replays its suite instead of
// re-searching; a previously solved constraint is answered from disk)
// but must never make it *wrong*: every file carries a format-version
// token and a content checksum, every load re-verifies both, and any
// truncated, corrupted, or mis-versioned artifact is discarded — the
// audit then falls back to the full search, which is always sound.
// Entry validation goes further than checksums: before an entry is
// trusted, its suite is actually replayed and must reproduce the stored
// coverage, and each bug fixture must reproduce its stored failure
// (Theorem 1(a), re-established on every warm start).
package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"dart/internal/concolic"
	"dart/internal/solver"
)

// entryVersion prefixes every checksummed corpus file; bumped whenever
// the payload encoding changes meaning, so files written by older
// binaries can never alias newer ones.
const entryVersion = "dartcorpus1"

// Corpus is an open corpus directory.  All methods are safe for
// concurrent use — audit workers load and store entries from the pool's
// goroutines, and every search worker shares the solve cache.
type Corpus struct {
	dir string

	mu sync.Mutex
	// solves is the in-memory image of the persistent solve log; pending
	// holds records appended since the last Flush.
	solves  map[string]solver.PortableResult
	pending []solveRecord
	// notes collects load-time corruption diagnostics (logged, never
	// fatal: corruption degrades to a miss).
	notes []string
}

// Open opens (creating if needed) the corpus rooted at dir and loads
// the persistent solve log.  Corrupt artifacts found during the load
// are discarded and reported via Notes, never as an error.
func Open(dir string) (*Corpus, error) {
	for _, d := range []string{dir, filepath.Join(dir, "fn"), filepath.Join(dir, "reports")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
	}
	c := &Corpus{dir: dir, solves: map[string]solver.PortableResult{}}
	c.loadSolveLog()
	return c, nil
}

// Dir returns the corpus root.
func (c *Corpus) Dir() string { return c.dir }

// Notes returns (and clears) accumulated corruption diagnostics.
func (c *Corpus) Notes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.notes
	c.notes = nil
	return n
}

func (c *Corpus) note(format string, args ...any) {
	c.mu.Lock()
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// SiteDir is one branch direction in portable form: the function owning
// the site, the site's function-local ordinal (its index in
// ir.FuncSites), and the executed outcome.  Global site numbers shift
// whenever any upstream function gains or loses a conditional; the
// (function, ordinal) pair does not.
type SiteDir struct {
	Fn    string `json:"fn"`
	Ord   int    `json:"ord"`
	Taken bool   `json:"taken"`
}

// Flags preserves the cold search's verdict-relevant termination state,
// restored verbatim onto the synthesized warm report.
type Flags struct {
	Complete        bool   `json:"complete"`
	AllLinear       bool   `json:"all_linear"`
	AllLocsDefinite bool   `json:"all_locs_definite"`
	SolverComplete  bool   `json:"solver_complete"`
	Stopped         string `json:"stopped,omitempty"`
}

// Entry is one function's stored audit outcome.
type Entry struct {
	Function string `json:"function"`
	// IRHash is the function's ir.FuncHashes digest at store time; a
	// changed hash invalidates the entry (the paper's fixed-program
	// assumption, enforced per function).
	IRHash string `json:"ir_hash"`
	// OptionsSig binds the entry to the search configuration that
	// produced it; any change to a result-determining option re-searches.
	OptionsSig string `json:"options_sig"`
	// Suite is the distilled replayable suite (internal/distill), in
	// pick order.
	Suite []map[string]int64 `json:"suite"`
	// Bugs are the cold search's bug fixtures, verbatim; each must
	// replay to its recorded failure before the entry is trusted.
	Bugs []concolic.Bug `json:"bugs,omitempty"`
	// Cover is the cold search's exact branch coverage in portable
	// (function, ordinal, direction) form.
	Cover []SiteDir `json:"cover"`
	Flags Flags     `json:"flags"`
	// Runs records the cold search's execution count, for reporting.
	Runs int `json:"runs"`
}

// entryPath maps a function name to its entry file.  MiniC identifiers
// are [A-Za-z0-9_]+, safe as file names; anything else (defensive) is
// hex-escaped so distinct names never collide.
func (c *Corpus) entryPath(fn string) string {
	safe := true
	for i := 0; i < len(fn); i++ {
		b := fn[i]
		if !(b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9') {
			safe = false
			break
		}
	}
	if !safe || fn == "" {
		fn = "x" + hex.EncodeToString([]byte(fn))
	}
	return filepath.Join(c.dir, "fn", fn+".json")
}

// LoadEntry returns the stored entry for fn, or nil with a machine-
// readable miss reason: "absent" (no file) or "invalid" (failed the
// version or checksum gate — the file is discarded).
func (c *Corpus) LoadEntry(fn string) (*Entry, string) {
	payload, reason := c.readChecksummed(c.entryPath(fn))
	if payload == nil {
		return nil, reason
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil || e.Function != fn {
		c.note("corpus: entry %s: malformed payload, discarding", fn)
		return nil, "invalid"
	}
	return &e, ""
}

// StoreEntry writes (or atomically replaces) fn's entry.
func (c *Corpus) StoreEntry(e *Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("corpus: encode entry %s: %w", e.Function, err)
	}
	return c.writeChecksummed(c.entryPath(e.Function), payload)
}

// readChecksummed loads a "dartcorpus1 <hex-sha256>\n<payload>" file,
// returning the payload only when both the version token and checksum
// verify; any failure returns (nil, reason) and notes the corruption.
func (c *Corpus) readChecksummed(path string) ([]byte, string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.note("corpus: %s: %v", path, err)
			return nil, "invalid"
		}
		return nil, "absent"
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		c.note("corpus: %s: truncated header, discarding", path)
		return nil, "invalid"
	}
	header := string(raw[:nl])
	payload := raw[nl+1:]
	fields := strings.Fields(header)
	if len(fields) != 2 || fields[0] != entryVersion {
		c.note("corpus: %s: unrecognized version %q, discarding", path, header)
		return nil, "invalid"
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		c.note("corpus: %s: checksum mismatch, discarding", path)
		return nil, "invalid"
	}
	return payload, ""
}

// writeChecksummed writes header+payload to a temp file in the target's
// directory and renames it into place, so readers never observe a
// partial write and a crash leaves either the old file or the new one.
func (c *Corpus) writeChecksummed(path string, payload []byte) error {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s\n", entryVersion, hex.EncodeToString(sum[:]))
	buf.Write(payload)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}
