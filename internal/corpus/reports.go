// The serve-layer spill area: finished job reports, content-addressed
// by the serve store's cache key, persisted under reports/ with the
// same version+checksum envelope as function entries.  A restarted
// server re-populates its in-memory LRU lazily from here and serves the
// byte-identical report a pre-restart submission received; a corrupt
// spill file is discarded and the job simply re-executes.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"path/filepath"
)

// reportPath hashes the store key into a fixed-length file name (the
// key is itself a digest, but the corpus does not trust its format).
func (c *Corpus) reportPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, "reports", hex.EncodeToString(sum[:])+".json")
}

// StoreReport persists one finished job report under key.
func (c *Corpus) StoreReport(key string, report []byte) error {
	return c.writeChecksummed(c.reportPath(key), report)
}

// LoadReport returns the spilled report for key, or false when absent
// or when the file fails the version/checksum gate (it is then noted
// and ignored — the job re-runs).
func (c *Corpus) LoadReport(key string) ([]byte, bool) {
	payload, _ := c.readChecksummed(c.reportPath(key))
	return payload, payload != nil
}
