// The persistent solve cache: an append-only, checksummed log of
// portable solver results layered under the engines' in-memory LRU.
// Each line is "s1 <crc32-hex> <json>\n"; the whole log is loaded at
// Open (bad lines — truncated tails from a crash, flipped bytes,
// records from an unknown format version — are skipped and noted, never
// trusted), served from memory during the audit, and new solves are
// appended on Flush.  Append-only keeps the flush path crash-tolerant:
// an interrupted append corrupts at most the final line, which the next
// load discards.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"dart/internal/solver"
)

// solveLineVersion prefixes every solve-log line.
const solveLineVersion = "s1"

// maxSolveLine bounds one log line; portable keys grow with path-
// constraint length, so allow generous room.
const maxSolveLine = 16 << 20

type solveRecord struct {
	K string           `json:"k"`
	V int              `json:"v"`
	M map[string]int64 `json:"m,omitempty"`
}

func (c *Corpus) solveLogPath() string { return filepath.Join(c.dir, "solve.log") }

// loadSolveLog populates the in-memory image from disk (called once by
// Open, before the Corpus is shared).
func (c *Corpus) loadSolveLog() {
	f, err := os.Open(c.solveLogPath())
	if err != nil {
		if !os.IsNotExist(err) {
			c.note("corpus: solve log: %v", err)
		}
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxSolveLine)
	dropped := 0
	for sc.Scan() {
		rec, ok := parseSolveLine(sc.Text())
		if !ok {
			dropped++
			continue
		}
		// First-wins on duplicate keys: the solver is deterministic, so
		// later duplicates are identical anyway.
		if _, exists := c.solves[rec.K]; !exists {
			c.solves[rec.K] = solver.PortableResult{Verdict: solver.Verdict(rec.V), Model: rec.M}
		}
	}
	if err := sc.Err(); err != nil {
		dropped++
	}
	if dropped > 0 {
		c.note("corpus: solve log: discarded %d corrupt line(s)", dropped)
	}
}

// parseSolveLine validates one "s1 <crc32-hex> <json>" line.
func parseSolveLine(line string) (solveRecord, bool) {
	var rec solveRecord
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || parts[0] != solveLineVersion {
		return rec, false
	}
	if fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(parts[2]))) != parts[1] {
		return rec, false
	}
	if err := json.Unmarshal([]byte(parts[2]), &rec); err != nil {
		return rec, false
	}
	if rec.K == "" || rec.V < 0 || rec.V > int(solver.BudgetExhausted) {
		return rec, false
	}
	return rec, true
}

// GetPortable implements solver.PersistentCache.
func (c *Corpus) GetPortable(key string) (solver.PortableResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.solves[key]
	return r, ok
}

// PutPortable implements solver.PersistentCache.  New results are kept
// in memory and queued for the next FlushSolves; re-puts of a known key
// are dropped (equal by solver determinism).
func (c *Corpus) PutPortable(key string, verdict solver.Verdict, model map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.solves[key]; exists {
		return
	}
	c.solves[key] = solver.PortableResult{Verdict: verdict, Model: model}
	c.pending = append(c.pending, solveRecord{K: key, V: int(verdict), M: model})
}

// SolveCount returns how many distinct solves the cache holds.
func (c *Corpus) SolveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.solves)
}

// FlushSolves appends every queued solve to the log.  Called once when
// an audit (or search) completes; a failure leaves the queue intact for
// a retry and the in-memory image stays authoritative either way.
func (c *Corpus) FlushSolves() error {
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	f, err := os.OpenFile(c.solveLogPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.requeue(pending)
		return fmt.Errorf("corpus: solve log: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range pending {
		payload, merr := json.Marshal(rec)
		if merr != nil {
			continue
		}
		fmt.Fprintf(w, "%s %08x %s\n", solveLineVersion, crc32.ChecksumIEEE(payload), payload)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		c.requeue(pending)
		return fmt.Errorf("corpus: solve log: %w", err)
	}
	if err := f.Close(); err != nil {
		c.requeue(pending)
		return fmt.Errorf("corpus: solve log: %w", err)
	}
	return nil
}

func (c *Corpus) requeue(pending []solveRecord) {
	c.mu.Lock()
	c.pending = append(pending, c.pending...)
	c.mu.Unlock()
}
