package symbolic

import (
	"math"
	"testing"
)

func TestEvalCheckedAgreesInRange(t *testing.T) {
	l := &Lin{Const: 3, Coeffs: map[Var]int64{1: 2, 2: -4}}
	assign := map[Var]int64{1: 4, 2: 10}
	got, ok := l.EvalChecked(assign)
	if !ok || got != l.Eval(assign) {
		t.Errorf("EvalChecked = %d/%v, want %d/true", got, ok, l.Eval(assign))
	}
}

func TestEvalCheckedRejectsOverflow(t *testing.T) {
	cases := []struct {
		name   string
		l      *Lin
		assign map[Var]int64
	}{
		{"mul", &Lin{Coeffs: map[Var]int64{1: 2}}, map[Var]int64{1: math.MaxInt64}},
		{"mul-min-neg1", &Lin{Coeffs: map[Var]int64{1: -1}}, map[Var]int64{1: math.MinInt64}},
		{"add", &Lin{Const: math.MaxInt64, Coeffs: map[Var]int64{1: 1}}, map[Var]int64{1: 1}},
		{"sum-of-terms", &Lin{Coeffs: map[Var]int64{1: 1, 2: 1}},
			map[Var]int64{1: math.MaxInt64, 2: math.MaxInt64}},
	}
	for _, c := range cases {
		if _, ok := c.l.EvalChecked(c.assign); ok {
			t.Errorf("%s: wrapping evaluation reported ok", c.name)
		}
	}
}
