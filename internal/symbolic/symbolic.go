// Package symbolic implements the symbolic expressions of DART's
// dynamic analysis (Fig. 1 of the paper).
//
// DART's default theory is linear integer arithmetic, so a symbolic value
// is an affine form  Σ cᵢ·xᵢ + k  over input variables xᵢ.  Anything
// outside the theory (a product of two non-constant forms, a division by
// a non-constant, a value produced by a library black box) has no
// representation here: evaluation falls back to the concrete value and a
// completeness flag is cleared, exactly as in the paper.
//
// Branch conditions become predicates  L ⋈ 0  with ⋈ ∈ {=, ≠, <, ≤, >, ≥};
// an executed path is summarized by a path constraint, the conjunction of
// the branch predicates observed in order.
package symbolic

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a symbolic input variable.  In the paper a symbolic
// variable is named by the memory address of the input; the engine keeps
// the address-to-Var registry so that Vars stay stable across runs even
// when malloc returns different addresses.
type Var int

// VarKind distinguishes arithmetic inputs from pointer inputs, which are
// solved over the {NULL, fresh allocation} domain that random_init can
// realize.
type VarKind int

// Variable kinds.
const (
	ScalarVar VarKind = iota
	PointerVar
)

// Lin is an affine form Σ Coeffs[v]·v + Const.  A nil *Lin is "not in the
// theory"; callers must treat it as concrete-only.
type Lin struct {
	Coeffs map[Var]int64
	Const  int64
}

// Shared constant forms for the small values the shadow evaluator
// produces constantly (untainted leaves, literals, comparison results).
// Every Lin is immutable once published — all mutating operations work
// on clones — so interning is safe, and it removes an allocation from
// the machine's per-instruction shadow path.
const (
	internLo = -256
	internHi = 1024
)

var internedConsts [internHi - internLo + 1]Lin

func init() {
	for i := range internedConsts {
		internedConsts[i].Const = int64(i) + internLo
	}
}

// NewConst returns the constant form k.
func NewConst(k int64) *Lin {
	if k >= internLo && k <= internHi {
		return &internedConsts[k-internLo]
	}
	return &Lin{Const: k}
}

// NewVar returns the form 1·v + 0.
func NewVar(v Var) *Lin {
	return &Lin{Coeffs: map[Var]int64{v: 1}}
}

// Arena batch-allocates Lin headers for the machine's shadow and
// branch-predicate paths.  Published Lins are immutable and escape into
// BranchRec snapshots that outlive the run, so chunks are handed out
// once and never recycled — the arena amortizes allocation (one chunk
// allocation per arenaChunk forms), it does not reclaim memory; a chunk
// is collected when the last form in it dies.  The zero Arena is ready
// to use.  A nil *Arena falls back to individual heap allocation, which
// is how the package-level Add/Sub/Scale share the arithmetic below.
// Not safe for concurrent use; each machine owns one.
type Arena struct {
	chunk []Lin
}

const arenaChunk = 512

// alloc returns a Lin header housing (coeffs, k).  The map is shared,
// not copied — callers pass either a map they own or one borrowed from
// an immutable published form.
func (ar *Arena) alloc(coeffs map[Var]int64, k int64) *Lin {
	if ar == nil {
		return &Lin{Coeffs: coeffs, Const: k}
	}
	if len(ar.chunk) == 0 {
		ar.chunk = make([]Lin, arenaChunk)
	}
	l := &ar.chunk[0]
	ar.chunk = ar.chunk[1:]
	l.Coeffs = coeffs
	l.Const = k
	return l
}

// NewConst is NewConst through the arena; interned forms still shared.
func (ar *Arena) NewConst(k int64) *Lin {
	if k >= internLo && k <= internHi {
		return &internedConsts[k-internLo]
	}
	return ar.alloc(nil, k)
}

// NewVar is NewVar through the arena (the header; the coefficient map
// is still an individual allocation).
func (ar *Arena) NewVar(v Var) *Lin {
	return ar.alloc(map[Var]int64{v: 1}, 0)
}

// IsConst reports whether the form has no variables.
func (l *Lin) IsConst() bool { return len(l.Coeffs) == 0 }

// ConstVal returns the constant term; meaningful when IsConst.
func (l *Lin) ConstVal() int64 { return l.Const }

// Clone returns a deep copy.
func (l *Lin) Clone() *Lin {
	c := &Lin{Const: l.Const, Coeffs: make(map[Var]int64, len(l.Coeffs))}
	for v, k := range l.Coeffs {
		c.Coeffs[v] = k
	}
	return c
}

// Vars returns the variables of the form in ascending order.
func (l *Lin) Vars() []Var {
	vs := make([]Var, 0, len(l.Coeffs))
	for v := range l.Coeffs {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Coeff returns the coefficient of v (0 when absent).
func (l *Lin) Coeff(v Var) int64 { return l.Coeffs[v] }

func (l *Lin) set(v Var, k int64) {
	if k == 0 {
		delete(l.Coeffs, v)
		return
	}
	if l.Coeffs == nil {
		l.Coeffs = map[Var]int64{}
	}
	l.Coeffs[v] = k
}

// Add returns a+b, or nil on coefficient overflow.
func Add(a, b *Lin) *Lin { return (*Arena)(nil).Add(a, b) }

// Add is the arena form of the package-level Add.
func (ar *Arena) Add(a, b *Lin) *Lin {
	// Constant operands share the other side's coefficient map (Lins
	// are immutable once published; see Sub).
	if len(b.Coeffs) == 0 {
		k, ok := addOverflow(a.Const, b.Const)
		if !ok {
			return nil
		}
		return ar.alloc(a.Coeffs, k)
	}
	if len(a.Coeffs) == 0 {
		k, ok := addOverflow(a.Const, b.Const)
		if !ok {
			return nil
		}
		return ar.alloc(b.Coeffs, k)
	}
	kc, ok := addOverflow(a.Const, b.Const)
	if !ok {
		return nil
	}
	coeffs := make(map[Var]int64, len(a.Coeffs)+len(b.Coeffs))
	for v, k := range a.Coeffs {
		coeffs[v] = k
	}
	for v, k := range b.Coeffs {
		nk, ok := addOverflow(coeffs[v], k)
		if !ok {
			return nil
		}
		if nk == 0 {
			delete(coeffs, v)
		} else {
			coeffs[v] = nk
		}
	}
	return ar.alloc(coeffs, kc)
}

// Sub returns a-b, or nil on overflow.  This sits on the machine's
// branch-predicate path (every tainted conditional computes lhs-rhs),
// so it builds the result in one allocation instead of going through
// Scale + Add's clone — and when b is constant (comparisons against
// literals, the overwhelmingly common branch shape) it shares a's
// coefficient map outright: published Lins are immutable, so two forms
// may alias one map.
func Sub(a, b *Lin) *Lin { return (*Arena)(nil).Sub(a, b) }

// Sub is the arena form of the package-level Sub.
func (ar *Arena) Sub(a, b *Lin) *Lin {
	if len(b.Coeffs) == 0 {
		k, ok := subOverflow(a.Const, b.Const)
		if !ok {
			return nil
		}
		return ar.alloc(a.Coeffs, k)
	}
	kc, ok := subOverflow(a.Const, b.Const)
	if !ok {
		return nil
	}
	coeffs := make(map[Var]int64, len(a.Coeffs)+len(b.Coeffs))
	for v, k := range a.Coeffs {
		coeffs[v] = k
	}
	for v, k := range b.Coeffs {
		nk, ok := subOverflow(coeffs[v], k)
		if !ok {
			return nil
		}
		if nk == 0 {
			delete(coeffs, v)
		} else {
			coeffs[v] = nk
		}
	}
	return ar.alloc(coeffs, kc)
}

// Scale returns k·a, or nil on overflow.
func Scale(a *Lin, k int64) *Lin { return (*Arena)(nil).Scale(a, k) }

// Scale is the arena form of the package-level Scale.
func (ar *Arena) Scale(a *Lin, k int64) *Lin {
	if k == 1 {
		return a
	}
	kc, ok := mulOverflow(a.Const, k)
	if !ok {
		return nil
	}
	coeffs := make(map[Var]int64, len(a.Coeffs))
	for v, cv := range a.Coeffs {
		nk, ok := mulOverflow(cv, k)
		if !ok {
			return nil
		}
		if nk != 0 {
			coeffs[v] = nk
		}
	}
	return ar.alloc(coeffs, kc)
}

// Eval evaluates the form under the assignment.
func (l *Lin) Eval(assign map[Var]int64) int64 {
	total := l.Const
	for v, k := range l.Coeffs {
		total += k * assign[v]
	}
	return total
}

// EvalChecked evaluates the form under the assignment with overflow
// detection: ok is false when any coefficient product or partial sum
// leaves int64.  Raw Eval wraps silently in that case, which can make a
// mathematically false predicate look satisfied; soundness-critical
// checks (the solver's candidate verification) must use this form.
func (l *Lin) EvalChecked(assign map[Var]int64) (total int64, ok bool) {
	total = l.Const
	for v, k := range l.Coeffs {
		p, ok := checkedMul(k, assign[v])
		if !ok {
			return 0, false
		}
		total, ok = checkedAdd(total, p)
		if !ok {
			return 0, false
		}
	}
	return total, true
}

// Equal reports structural equality of two forms.
func (l *Lin) Equal(o *Lin) bool {
	if l.Const != o.Const || len(l.Coeffs) != len(o.Coeffs) {
		return false
	}
	for v, k := range l.Coeffs {
		if o.Coeffs[v] != k {
			return false
		}
	}
	return true
}

func (l *Lin) String() string {
	if l == nil {
		return "<fallback>"
	}
	var b strings.Builder
	first := true
	for _, v := range l.Vars() {
		k := l.Coeffs[v]
		switch {
		case first && k == 1:
			fmt.Fprintf(&b, "x%d", v)
		case first:
			fmt.Fprintf(&b, "%d*x%d", k, v)
		case k == 1:
			fmt.Fprintf(&b, " + x%d", v)
		case k == -1:
			fmt.Fprintf(&b, " - x%d", v)
		case k > 0:
			fmt.Fprintf(&b, " + %d*x%d", k, v)
		default:
			fmt.Fprintf(&b, " - %d*x%d", -k, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", l.Const)
	case l.Const > 0:
		fmt.Fprintf(&b, " + %d", l.Const)
	case l.Const < 0:
		fmt.Fprintf(&b, " - %d", -l.Const)
	}
	return b.String()
}

func subOverflow(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func addOverflow(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOverflow(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// checkedAdd and checkedMul are exact overflow-detecting int64 ops for
// EvalChecked.  Unlike mulOverflow they also reject MinInt64 * -1 (whose
// quotient check passes by two's-complement wraparound).
func checkedAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func checkedMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == -1 && b == minInt64) || (b == -1 && a == minInt64) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

const minInt64 = -1 << 63

// ---------------------------------------------------------------- preds

// Rel is a predicate relation against zero.
type Rel int

// Relations; the predicate is L Rel 0.
const (
	EQ Rel = iota
	NE
	LT
	LE
	GT
	GE
)

var relNames = [...]string{EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="}

func (r Rel) String() string { return relNames[r] }

// Negate returns the complementary relation.
func (r Rel) Negate() Rel {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	panic("symbolic: bad relation")
}

// Pred is the atomic branch predicate L Rel 0.
type Pred struct {
	L   *Lin
	Rel Rel
}

// Negate returns the logical negation of the predicate.
func (p Pred) Negate() Pred { return Pred{L: p.L, Rel: p.Rel.Negate()} }

// Holds evaluates the predicate under an assignment.
func (p Pred) Holds(assign map[Var]int64) bool {
	v := p.L.Eval(assign)
	switch p.Rel {
	case EQ:
		return v == 0
	case NE:
		return v != 0
	case LT:
		return v < 0
	case LE:
		return v <= 0
	case GT:
		return v > 0
	case GE:
		return v >= 0
	}
	return false
}

func (p Pred) String() string { return fmt.Sprintf("%s %s 0", p.L, p.Rel) }

// StringNamed renders the form with name supplying each variable's
// display name (nil falls back to the x%d default).  Var numbering is
// first-use order and races across parallel workers, so any rendering
// that must be schedule-independent — the coverage explainer's unsat
// slices — names variables by their stable input keys instead.
func (l *Lin) StringNamed(name func(Var) string) string {
	if l == nil {
		return "<fallback>"
	}
	if name == nil {
		return l.String()
	}
	var b strings.Builder
	first := true
	for _, v := range l.Vars() {
		k := l.Coeffs[v]
		n := name(v)
		switch {
		case first && k == 1:
			b.WriteString(n)
		case first:
			fmt.Fprintf(&b, "%d*%s", k, n)
		case k == 1:
			fmt.Fprintf(&b, " + %s", n)
		case k == -1:
			fmt.Fprintf(&b, " - %s", n)
		case k > 0:
			fmt.Fprintf(&b, " + %d*%s", k, n)
		default:
			fmt.Fprintf(&b, " - %d*%s", -k, n)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", l.Const)
	case l.Const > 0:
		fmt.Fprintf(&b, " + %d", l.Const)
	case l.Const < 0:
		fmt.Fprintf(&b, " - %d", -l.Const)
	}
	return b.String()
}

// StringNamed renders the predicate with named variables.
func (p Pred) StringNamed(name func(Var) string) string {
	return fmt.Sprintf("%s %s 0", p.L.StringNamed(name), p.Rel)
}

// StringNamed renders the conjunction with named variables.
func (pc PathConstraint) StringNamed(name func(Var) string) string {
	parts := make([]string, len(pc))
	for i, p := range pc {
		parts[i] = p.StringNamed(name)
	}
	return "(" + strings.Join(parts, ") ∧ (") + ")"
}

// PathConstraint is the ordered conjunction of branch predicates observed
// along one execution.
type PathConstraint []Pred

func (pc PathConstraint) String() string {
	parts := make([]string, len(pc))
	for i, p := range pc {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ") ∧ (") + ")"
}
