package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lin(consts int64, pairs ...int64) *Lin {
	l := &Lin{Const: consts, Coeffs: map[Var]int64{}}
	for i := 0; i+1 < len(pairs); i += 2 {
		l.Coeffs[Var(pairs[i])] = pairs[i+1]
	}
	return l
}

func TestAddSub(t *testing.T) {
	a := lin(3, 0, 2, 1, -1) // 2x0 - x1 + 3
	b := lin(4, 0, -2, 2, 5) // -2x0 + 5x2 + 4
	sum := Add(a, b)
	if sum.Const != 7 || sum.Coeff(0) != 0 || sum.Coeff(1) != -1 || sum.Coeff(2) != 5 {
		t.Fatalf("sum = %v", sum)
	}
	if _, present := sum.Coeffs[0]; present {
		t.Error("zero coefficient should be dropped")
	}
	diff := Sub(a, a)
	if !diff.IsConst() || diff.Const != 0 {
		t.Fatalf("a - a = %v", diff)
	}
}

func TestScale(t *testing.T) {
	a := lin(5, 0, 3)
	s := Scale(a, -2)
	if s.Const != -10 || s.Coeff(0) != -6 {
		t.Fatalf("scaled = %v", s)
	}
	z := Scale(a, 0)
	if !z.IsConst() || z.Const != 0 {
		t.Fatalf("0*a = %v", z)
	}
}

func TestOverflowDetection(t *testing.T) {
	big := lin(1<<62, 0, 1<<62)
	if Add(big, big) != nil {
		t.Error("Add overflow not detected")
	}
	if Scale(big, 4) != nil {
		t.Error("Scale overflow not detected")
	}
	if Sub(lin(-(1<<62)-10), lin(1<<62)) != nil {
		t.Error("Sub overflow not detected")
	}
}

func TestEvalMatchesStructure(t *testing.T) {
	// Property: Eval is a ring homomorphism for Add/Sub/Scale.
	gen := func(r *rand.Rand) (*Lin, map[Var]int64) {
		l := &Lin{Const: r.Int63n(1000) - 500, Coeffs: map[Var]int64{}}
		env := map[Var]int64{}
		for v := Var(0); v < 4; v++ {
			if r.Intn(2) == 0 {
				l.Coeffs[v] = r.Int63n(20) - 10
			}
			env[v] = r.Int63n(100) - 50
		}
		return l, env
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, env := gen(r)
		b, _ := gen(r)
		k := r.Int63n(7) - 3
		if got, want := Add(a, b).Eval(env), a.Eval(env)+b.Eval(env); got != want {
			t.Fatalf("Add eval: %d != %d", got, want)
		}
		if got, want := Sub(a, b).Eval(env), a.Eval(env)-b.Eval(env); got != want {
			t.Fatalf("Sub eval: %d != %d", got, want)
		}
		if got, want := Scale(a, k).Eval(env), k*a.Eval(env); got != want {
			t.Fatalf("Scale eval: %d != %d", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := lin(1, 0, 2)
	c := a.Clone()
	c.Coeffs[0] = 99
	c.Const = 99
	if a.Coeff(0) != 2 || a.Const != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestEqual(t *testing.T) {
	if !lin(1, 0, 2).Equal(lin(1, 0, 2)) {
		t.Error("equal forms not equal")
	}
	if lin(1, 0, 2).Equal(lin(2, 0, 2)) || lin(1, 0, 2).Equal(lin(1, 0, 3)) ||
		lin(1, 0, 2).Equal(lin(1, 1, 2)) {
		t.Error("different forms compare equal")
	}
}

func TestVarsSorted(t *testing.T) {
	l := lin(0, 5, 1, 1, 1, 3, 1)
	vs := l.Vars()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 5 {
		t.Fatalf("Vars() = %v", vs)
	}
}

func TestRelNegate(t *testing.T) {
	pairs := map[Rel]Rel{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for r, want := range pairs {
		if r.Negate() != want {
			t.Errorf("%v.Negate() = %v, want %v", r, r.Negate(), want)
		}
		if r.Negate().Negate() != r {
			t.Errorf("double negation of %v", r)
		}
	}
}

func TestPredNegationExcludesMiddle(t *testing.T) {
	// Property: for any form and assignment, exactly one of p and ¬p holds.
	f := func(c int64, coeff int64, x int64) bool {
		l := lin(c%1000, 0, coeff%10)
		env := map[Var]int64{0: x % 1000}
		for _, rel := range []Rel{EQ, NE, LT, LE, GT, GE} {
			p := Pred{L: l, Rel: rel}
			if p.Holds(env) == p.Negate().Holds(env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredHolds(t *testing.T) {
	l := lin(-5, 0, 1) // x0 - 5
	env := map[Var]int64{0: 5}
	if !(Pred{L: l, Rel: EQ}).Holds(env) {
		t.Error("x0-5 == 0 should hold at x0=5")
	}
	env[0] = 6
	if !(Pred{L: l, Rel: GT}).Holds(env) || (Pred{L: l, Rel: LE}).Holds(env) {
		t.Error("ordering predicates wrong at x0=6")
	}
}

func TestStringForms(t *testing.T) {
	cases := map[string]*Lin{
		"7":             lin(7),
		"x0":            lin(0, 0, 1),
		"2*x0 + 1":      lin(1, 0, 2),
		"x0 - x1":       lin(0, 0, 1, 1, -1),
		"-3*x2 - 4":     lin(-4, 2, -3),
		"x0 + 5*x1 - 2": lin(-2, 0, 1, 1, 5),
	}
	for want, l := range cases {
		if got := l.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	var nilLin *Lin
	if nilLin.String() != "<fallback>" {
		t.Error("nil form should print as <fallback>")
	}
}

func TestPathConstraintString(t *testing.T) {
	pc := PathConstraint{
		{L: lin(0, 0, 1), Rel: NE},
		{L: lin(-10, 0, 1), Rel: EQ},
	}
	if got := pc.String(); got != "(x0 != 0) ∧ (x0 - 10 == 0)" {
		t.Errorf("pc = %q", got)
	}
}
