package progs

import (
	"testing"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/sema"
)

// TestAllProgramsCompile ensures every paper example parses, checks, and
// lowers cleanly.
func TestAllProgramsCompile(t *testing.T) {
	all := map[string]string{
		"Section21":    Section21,
		"Section24":    Section24,
		"Section25":    Section25Cast,
		"Foobar":       Foobar,
		"FoobarLib":    FoobarLib,
		"ACController": ACController,
		"ExternalEnv":  ExternalEnv,
		"ListSum":      ListSum,
		"DivByZero":    DivByZero,
		"NullChain":    NullChain,
		"Filter":       Filter,
		"StraightLine": StraightLineDeref,
		"Clusters":     Clusters,
		"SolverGate":   SolverGate,
	}
	for name, src := range all {
		t.Run(name, func(t *testing.T) {
			f, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			sem, err := sema.Check(f, machine.StdLibSigs())
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			prog, err := ir.Compile(sem)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(prog.FuncOrder) == 0 {
				t.Fatal("no functions compiled")
			}
		})
	}
}
