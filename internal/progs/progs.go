// Package progs collects the MiniC programs that appear in the DART
// paper, used by the examples, tests, and the experiment harness.
package progs

// Section21 is the introductory example of Sec. 2.1: h aborts iff
// f(x) == x+10, i.e. x == 10, with x != y.  Random testing essentially
// never finds it; the directed search finds it in two runs.
const Section21 = `
int f(int x) { return 2 * x; }
int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort(); /* error */
    return 0;
}
`

// Section24 is the worked example of Sec. 2.4: the inner abort is
// unreachable (x == z and y == x+10 with z = y is unsatisfiable), and the
// directed search proves it by exhausting both paths.
const Section24 = `
int f(int x, int y) {
    int z;
    z = y;
    if (x == z)
        if (y == x + 10)
            abort();
    return 0;
}
`

// Section25Cast is the pointer-cast example of Sec. 2.5: the message
// buffer is written through a char* alias of the struct, so a->c is
// overwritten and the abort is reachable — but only a precise dynamic
// analysis sees it.  DART reaches it by solving a->c == 0.
const Section25Cast = `
struct foo { int i; char c; };

int bar(struct foo *a) {
    if (a->c == 0) {
        *((char *)a + sizeof(int)) = 1;
        if (a->c != 0)
            abort();
    }
    return 0;
}
`

// Foobar is the non-linear example of Sec. 2.5: x*x*x is outside the
// linear theory, so no constraint is generated at line 2's branch, yet
// the concrete execution still picks a side.  The abort under the then
// branch (x > 0 && y == 10) is reachable; the abort under the else
// branch (x > 0 && y == 20) is not, because x*x*x > 0 iff x > 0.
const Foobar = `
int foobar(int x, int y) {
    if (x*x*x > 0) {
        if (x > 0 && y == 10)
            abort();
    } else {
        if (x > 0 && y == 20)
            abort();
    }
    return 0;
}
`

// FoobarLib is the same program with the non-linear test hidden behind a
// library call, the variation the paper discusses ("if the test
// (x*x*x > 0) is replaced by a library call").
const FoobarLib = `
int foobar(int x, int y) {
    if (cube(x) > 0) {
        if (x > 0 && y == 10)
            abort();
    } else {
        if (x > 0 && y == 20)
            abort();
    }
    return 0;
}
`

// ACController is Fig. 6: the air-conditioning controller.  With depth 1
// there is no failure; with depth 2 the message sequence (3, 0) drives
// is_room_hot high while the door stays closed with the AC off, so the
// assertion fires.
const ACController = `
/* initially, */
int is_room_hot = 0;   /* room is not hot */
int is_door_closed = 0; /* and door is open */
int ac = 0;            /* so, ac is off */

void ac_controller(int message) {
    if (message == 0) is_room_hot = 1;
    if (message == 1) is_room_hot = 0;
    if (message == 2) { is_door_closed = 0; ac = 0; }
    if (message == 3) {
        is_door_closed = 1;
        if (is_room_hot) ac = 1;
    }
    /* check correctness */
    if (is_room_hot && is_door_closed && !ac)
        abort();
}
`

// ExternalEnv exercises external functions and variables: getmsg is an
// environment-controlled function, so every call site returns a fresh
// input; threshold is an environment-controlled variable.
const ExternalEnv = `
extern int getmsg();
extern int threshold;

int watch() {
    int a = getmsg();
    int b = getmsg();
    if (a == threshold)
        if (b == threshold + 25)
            abort();
    return 0;
}
`

// ListSum exercises unbounded dynamic input data (Sec. 3.2): the input is
// a linked list built by random_init; the bug needs a list of length >= 2
// whose first two values sum to 42.
const ListSum = `
struct node { int value; struct node *next; };

int sum2(struct node *l) {
    if (l != NULL) {
        if (l->next != NULL) {
            if (l->value + l->next->value == 42)
                abort();
        }
    }
    return 0;
}
`

// DivByZero crashes on a division by zero guarded by an input filter: the
// crash needs d == 7, found by flipping the filter branch.
const DivByZero = `
int quotient(int n, int d) {
    if (d > 6) {
        if (d < 8) {
            return n / (d - 7);
        }
    }
    return 0;
}
`

// NullChain is a three-deep pointer chain: directed search must decide
// three pointer inputs to reach the abort.
const NullChain = `
struct c { int tag; };
struct b { struct c *c; };
struct a { struct b *b; };

int walk(struct a *p) {
    if (p != NULL) {
        if (p->b != NULL) {
            if (p->b->c != NULL) {
                if (p->b->c->tag == 77)
                    abort();
            }
        }
    }
    return 0;
}
`

// StraightLineDeref dereferences its pointer argument without any NULL
// check or branch — the oSIP crash pattern in its purest form.  Because
// no conditional ever tests p, the paper's search has no predicate to
// flip and discovers the NULL crash only if the initial coin toss lands
// on NULL; the systematic shape search forces both shapes.
const StraightLineDeref = `
struct s { int v; };

int poke(struct s *p) {
    p->v = 1;
    return p->v;
}
`

// Clusters has three independent variable clusters — {a}, {b}, and
// {c, d} — chained as nested guards.  Flipping the innermost branch
// (a < 5) only constrains a, so independence slicing prunes the b and
// c+d predicates from the solve; the parent run's concrete b, c, d
// already satisfy them.
const Clusters = `
int clusters(int a, int b, int c, int d) {
    if (a > 0) {
        if (b > 0) {
            if (c + d > 10) {
                if (a < 5)
                    abort();
            }
        }
    }
    return 0;
}
`

// SolverGate is a solver-heavy gauntlet of sequential (non-nested)
// conditionals over two variable pairs.  Every executed path enqueues a
// flip per conditional, and after slicing the flips reduce to a handful
// of distinct (slice, hint) keys — the workload the solve cache is for.
const SolverGate = `
int gate(int a, int b, int c, int d) {
    int hits = 0;
    if (a + b > 10) hits = hits + 1;
    if (a - b < -25) hits = hits + 1;
    if (c + d == 9) hits = hits + 1;
    if (c - d == 31) hits = hits + 1;
    if (b + c > 100) hits = hits + 1;
    if (hits >= 4)
        abort();
    return 0;
}
`

// Filter is the "input-filtering code" pattern the AC-controller
// discussion describes: only a narrow input range reaches the core,
// where the bug hides behind an arithmetic relation.
const Filter = `
int core(int a, int b) {
    if (3 * a - 2 * b == 17)
        abort();
    return 0;
}

int entry(int a, int b) {
    if (a < 0) return -1;
    if (a > 1000) return -1;
    if (b < 0) return -1;
    if (b > 1000) return -1;
    return core(a, b);
}
`
