// Package statesearch is a VeriSoft-style explicit-state model checker
// over MiniC programs: the baseline the paper compares DART against in
// Sec. 4.2 (Godefroid's VeriSoft exploring the product of the protocol
// implementation with a nondeterministic intruder process).
//
// Where DART treats the program as a white box and derives inputs from
// path constraints, a state-space search treats it as a black box: the
// environment blindly enumerates input sequences drawn from a *finite
// alphabet* that the analyst must supply, and the search prunes
// sequences that revisit an already-seen global state.  The comparison
// the paper draws is reproduced directly: with a well-chosen alphabet
// the enumeration is effective, but choosing that alphabet requires the
// human insight (the attacker's nonces, the agent names) that DART
// derives automatically — and with a generic alphabet the state space
// explodes or the attack lies outside it entirely.
package statesearch

import (
	"fmt"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/symbolic"
	"dart/internal/token"
	"dart/internal/types"
)

// Options configures a bounded search.
type Options struct {
	// Toplevel is the step function; one call consumes one input tuple.
	Toplevel string
	// Alphabet is the finite set of input tuples the environment may
	// send; each tuple assigns one value per toplevel parameter.
	Alphabet [][]int64
	// MaxDepth bounds the input-sequence length.
	MaxDepth int
	// MaxRuns bounds the total number of program executions.
	MaxRuns int
	// MaxSteps bounds each execution.
	MaxSteps int64
	// LibImpls supplies library black boxes.
	LibImpls map[string]machine.LibImpl
}

// Result summarizes a search.
type Result struct {
	// Bug is the first error found, if any.
	Bug *Bug
	// Runs is the number of program executions performed.
	Runs int
	// StatesSeen counts distinct global-state snapshots.
	StatesSeen int
	// Exhausted is true when the bounded space was fully explored.
	Exhausted bool
}

// Bug is an error with its triggering input sequence.
type Bug struct {
	Kind     machine.Outcome
	Msg      string
	Pos      token.Pos
	Sequence [][]int64
}

func (b *Bug) String() string {
	return fmt.Sprintf("[%v] %s at %v via %v", b.Kind, b.Msg, b.Pos, b.Sequence)
}

// fixedInputs feeds scripted argument tuples; anything else (extern
// globals, extern functions) reads as zero, keeping the model
// deterministic as VeriSoft's closed product requires.
type fixedInputs struct{}

func (fixedInputs) ScalarInput(string, *types.Basic) int64 { return 0 }
func (fixedInputs) PointerInput(string) bool               { return false }
func (fixedInputs) VarOf(string, symbolic.VarKind, *types.Basic) (symbolic.Var, bool) {
	return 0, false
}
func (fixedInputs) IsPointerVar(symbolic.Var) bool { return false }

// Search explores input sequences breadth-first with global-state
// pruning.
func Search(prog *ir.Prog, opts Options) (*Result, error) {
	fn, ok := prog.Lookup(opts.Toplevel)
	if !ok {
		return nil, fmt.Errorf("statesearch: no function %q", opts.Toplevel)
	}
	if len(opts.Alphabet) == 0 {
		return nil, fmt.Errorf("statesearch: empty alphabet")
	}
	for _, tuple := range opts.Alphabet {
		if len(tuple) != len(fn.Params) {
			return nil, fmt.Errorf("statesearch: alphabet tuple %v does not match %d parameters",
				tuple, len(fn.Params))
		}
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 4
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 1_000_000
	}

	res := &Result{Exhausted: true}
	seen := map[uint64]bool{}

	// Frontier of input sequences whose end states are distinct.
	type node struct {
		seq   [][]int64
		depth int
	}
	frontier := []node{{seq: nil, depth: 0}}

	// Record the initial state.
	if h, _, err := execute(prog, opts, nil); err == nil {
		seen[h] = true
		res.StatesSeen++
		res.Runs++
	}

	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		if n.depth >= opts.MaxDepth {
			continue
		}
		for _, tuple := range opts.Alphabet {
			if res.Runs >= opts.MaxRuns {
				res.Exhausted = false
				return res, nil
			}
			seq := append(append([][]int64{}, n.seq...), tuple)
			res.Runs++
			h, rerr, err := execute(prog, opts, seq)
			if err != nil {
				return nil, err
			}
			if rerr != nil && rerr.Outcome != machine.HaltOK {
				res.Bug = &Bug{Kind: rerr.Outcome, Msg: rerr.Msg, Pos: rerr.Pos, Sequence: seq}
				res.Exhausted = false
				return res, nil
			}
			if seen[h] {
				continue // state already explored: prune the subtree
			}
			seen[h] = true
			res.StatesSeen++
			frontier = append(frontier, node{seq: seq, depth: n.depth + 1})
		}
	}
	return res, nil
}

// execute replays one input sequence from scratch (the model checker has
// no incremental state capture) and returns the fnv-1a hash of the
// global memory afterwards.
func execute(prog *ir.Prog, opts Options, seq [][]int64) (uint64, *machine.RunError, error) {
	libs := opts.LibImpls
	if libs == nil {
		libs = machine.StdLibImpls()
	}
	m, err := machine.New(machine.Config{
		Prog:     prog,
		Inputs:   fixedInputs{},
		LibImpls: libs,
		MaxSteps: opts.MaxSteps,
	})
	if err != nil {
		return 0, nil, err
	}
	for _, tuple := range seq {
		args := make([]machine.Value, len(tuple))
		for i, v := range tuple {
			args[i] = machine.Value{V: v}
		}
		if _, rerr := m.RunCall(opts.Toplevel, args); rerr != nil {
			return 0, rerr, nil
		}
	}
	return hashGlobals(m, prog.GlobalSize), nil, nil
}

// hashGlobals is fnv-1a over the global region.
func hashGlobals(m *machine.Machine, size int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	base := m.GlobalAddr(0)
	for i := int64(0); i < size; i++ {
		v, err := m.Mem().Load(base + i)
		if err != nil {
			v = 0
		}
		for shift := 0; shift < 64; shift += 8 {
			h ^= uint64(v>>shift) & 0xff
			h *= prime64
		}
	}
	return h
}
