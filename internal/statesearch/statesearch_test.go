package statesearch

import (
	"testing"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/protocols"
	"dart/internal/sema"
)

func compile(t *testing.T, src string) *ir.Prog {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sem, err := sema.Check(f, machine.StdLibSigs())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestFindsSequencedBug(t *testing.T) {
	prog := compile(t, `
int state = 0;
void step(int m) {
    if (state == 0 && m == 1) { state = 1; return; }
    if (state == 1 && m == 2) { state = 2; return; }
    if (state == 2 && m == 3) abort();
    state = 0;
}
`)
	res, err := Search(prog, Options{
		Toplevel: "step",
		Alphabet: [][]int64{{1}, {2}, {3}},
		MaxDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Fatalf("bug not found (%d runs, %d states)", res.Runs, res.StatesSeen)
	}
	want := [][]int64{{1}, {2}, {3}}
	if len(res.Bug.Sequence) != len(want) {
		t.Fatalf("sequence %v", res.Bug.Sequence)
	}
	for i := range want {
		if res.Bug.Sequence[i][0] != want[i][0] {
			t.Fatalf("sequence %v, want %v", res.Bug.Sequence, want)
		}
	}
}

func TestStatePruning(t *testing.T) {
	// A program whose state space is tiny: pruning must keep the search
	// far below the b^d sequence count.
	prog := compile(t, `
int mode = 0;
void step(int m) {
    if (m == 1) mode = 1;
    if (m == 2) mode = 0;
}
`)
	res, err := Search(prog, Options{
		Toplevel: "step",
		Alphabet: [][]int64{{1}, {2}, {3}},
		MaxDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Fatalf("unexpected bug %v", res.Bug)
	}
	if !res.Exhausted {
		t.Fatal("tiny state space not exhausted")
	}
	if res.StatesSeen != 2 {
		t.Errorf("states seen = %d, want 2", res.StatesSeen)
	}
	// Without pruning this would be 3^8 = 6561 sequences; with it, once
	// both states are known only the frontier×alphabet runs remain.
	if res.Runs > 20 {
		t.Errorf("pruning ineffective: %d runs", res.Runs)
	}
}

func TestRespectsMaxRuns(t *testing.T) {
	prog := compile(t, `
int c = 0;
void step(int m) { c = c + m; }
`)
	res, err := Search(prog, Options{
		Toplevel: "step",
		Alphabet: [][]int64{{1}, {2}, {3}, {5}},
		MaxDepth: 12,
		MaxRuns:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs > 100 {
		t.Errorf("runs = %d", res.Runs)
	}
	if res.Exhausted {
		t.Error("cannot be exhausted at this budget")
	}
}

func TestAlphabetValidation(t *testing.T) {
	prog := compile(t, `void step(int a, int b) { }`)
	if _, err := Search(prog, Options{Toplevel: "step", Alphabet: [][]int64{{1}}}); err == nil {
		t.Error("tuple arity mismatch not rejected")
	}
	if _, err := Search(prog, Options{Toplevel: "step"}); err == nil {
		t.Error("empty alphabet not rejected")
	}
	if _, err := Search(prog, Options{Toplevel: "nosuch", Alphabet: [][]int64{{1, 2}}}); err == nil {
		t.Error("missing toplevel not rejected")
	}
}

// TestNeedhamSchroederCuratedAlphabet reproduces the Sec. 4.2 comparison:
// given a hand-curated alphabet that already contains the attack
// messages (the analyst must know the nonces and agent names — exactly
// the insight DART derives automatically), the VeriSoft-style search
// finds Lowe's attack quickly.
func TestNeedhamSchroederCuratedAlphabet(t *testing.T) {
	prog := compile(t, protocols.Source(protocols.DolevYao, protocols.NoFix))
	// (kind, key, n1, n2, n3) tuples a knowledgeable analyst would pick.
	alphabet := [][]int64{
		{0, 0, 3, 0, 0},     // schedule A to start with I
		{0, 0, 2, 0, 0},     // schedule A to start with B
		{1, 2, 101, 1, 0},   // {Na, A}Kb
		{1, 2, 303, 3, 0},   // {Ni, I}Kb
		{2, 1, 101, 202, 2}, // {Na, Nb, B}Ka (the replay)
		{2, 1, 303, 202, 2}, // {Ni, Nb, B}Ka
		{3, 2, 202, 0, 0},   // {Nb}Kb
		{3, 2, 303, 0, 0},   // {Ni}Kb
	}
	res, err := Search(prog, Options{
		Toplevel: protocols.Toplevel,
		Alphabet: alphabet,
		MaxDepth: 4,
		MaxRuns:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Fatalf("attack not found with the curated alphabet (%d runs, %d states)", res.Runs, res.StatesSeen)
	}
	t.Logf("curated alphabet: attack in %d runs, %d states: %v", res.Runs, res.StatesSeen, res.Bug.Sequence)
}

// TestNeedhamSchroederGenericAlphabetMisses: with a generic alphabet
// that lacks the protocol's secrets, the attack is simply outside the
// searched space — the flip side of the comparison, and the reason the
// paper calls the directed search "more white-box".
func TestNeedhamSchroederGenericAlphabet(t *testing.T) {
	prog := compile(t, protocols.Source(protocols.DolevYao, protocols.NoFix))
	var alphabet [][]int64
	for kind := int64(0); kind <= 3; kind++ {
		for key := int64(1); key <= 3; key++ {
			// Generic small values only; no protocol nonces.
			alphabet = append(alphabet, []int64{kind, key, 1, 2, 3})
		}
	}
	res, err := Search(prog, Options{
		Toplevel: protocols.Toplevel,
		Alphabet: alphabet,
		MaxDepth: 4,
		MaxRuns:  200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Fatalf("generic alphabet cannot contain the attack, found %v", res.Bug)
	}
	t.Logf("generic alphabet: no attack (%d runs, %d states, exhausted=%v)", res.Runs, res.StatesSeen, res.Exhausted)
}
