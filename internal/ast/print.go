package ast

import (
	"fmt"
	"strings"

	"dart/internal/token"
	"dart/internal/types"
)

// Print renders the file back to MiniC-like source, normalizing layout.
// It is used by golden tests and the dart CLI's -dump-ast mode.
func Print(f *File) string {
	var p printer
	for i, d := range f.Decls {
		if i > 0 {
			p.buf.WriteString("\n")
		}
		p.decl(d)
	}
	return p.buf.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.buf.String()
}

// PrintStmt renders a single statement at indent 0.
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) line(s string) {
	p.buf.WriteString(strings.Repeat("    ", p.indent))
	p.buf.WriteString(s)
	p.buf.WriteString("\n")
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *StructDecl:
		p.line(fmt.Sprintf("struct %s {", d.Name))
		p.indent++
		for _, f := range d.Fields {
			p.line(declString(f.Spec, f.Name) + ";")
		}
		p.indent--
		p.line("};")
	case *VarDecl:
		s := declString(d.Spec, d.Name)
		if d.Extern {
			s = "extern " + s
		}
		if d.Init != nil {
			s += " = " + PrintExpr(d.Init)
		}
		p.line(s + ";")
	case *FuncDecl:
		var params []string
		for _, prm := range d.Params {
			params = append(params, declString(prm.Spec, prm.Name))
		}
		sig := fmt.Sprintf("%s(%s)", declString(d.Result, d.Name), strings.Join(params, ", "))
		if d.Extern {
			p.line("extern " + sig + ";")
			return
		}
		if d.Body == nil {
			p.line(sig + ";")
			return
		}
		p.line(sig + " {")
		p.indent++
		for _, s := range d.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	}
}

// declString renders a declaration of name with the given type spec using
// C-ish syntax (arrays as suffix).
func declString(spec TypeSpec, name string) string {
	base, suffix := splitSpec(spec)
	if name == "" {
		return base + suffix
	}
	return base + " " + name + suffix
}

func splitSpec(spec TypeSpec) (base, suffix string) {
	switch s := spec.(type) {
	case *BasicSpec:
		return basicName(s.Kind), ""
	case *StructSpec:
		return "struct " + s.Name, ""
	case *PointerSpec:
		b, suf := splitSpec(s.Elem)
		return b + "*", suf
	case *ArraySpec:
		b, suf := splitSpec(s.Elem)
		return b, fmt.Sprintf("[%s]%s", PrintExpr(s.Len), suf)
	}
	return "?", ""
}

func basicName(k types.BasicKind) string {
	switch k {
	case types.Void:
		return "void"
	case types.Int:
		return "int"
	case types.Char:
		return "char"
	case types.Long:
		return "long"
	case types.UInt:
		return "unsigned"
	}
	return "?"
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, inner := range s.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		str := declString(s.Spec, s.Name)
		if s.Init != nil {
			str += " = " + PrintExpr(s.Init)
		}
		p.line(str + ";")
	case *ExprStmt:
		p.line(PrintExpr(s.X) + ";")
	case *If:
		p.line("if (" + PrintExpr(s.Cond) + ")")
		p.indent++
		p.stmt(s.Then)
		p.indent--
		if s.Else != nil {
			p.line("else")
			p.indent++
			p.stmt(s.Else)
			p.indent--
		}
	case *While:
		p.line("while (" + PrintExpr(s.Cond) + ")")
		p.indent++
		p.stmt(s.Body)
		p.indent--
	case *DoWhile:
		p.line("do")
		p.indent++
		p.stmt(s.Body)
		p.indent--
		p.line("while (" + PrintExpr(s.Cond) + ");")
	case *For:
		init, cond, post := "", "", ""
		switch is := s.Init.(type) {
		case *DeclStmt:
			init = declString(is.Spec, is.Name)
			if is.Init != nil {
				init += " = " + PrintExpr(is.Init)
			}
		case *ExprStmt:
			init = PrintExpr(is.X)
		}
		if s.Cond != nil {
			cond = PrintExpr(s.Cond)
		}
		if s.Post != nil {
			post = PrintExpr(s.Post)
		}
		p.line(fmt.Sprintf("for (%s; %s; %s)", init, cond, post))
		p.indent++
		p.stmt(s.Body)
		p.indent--
	case *Switch:
		p.line("switch (" + PrintExpr(s.Tag) + ") {")
		for _, cs := range s.Cases {
			if cs.Value == nil {
				p.line("default:")
			} else {
				p.line("case " + PrintExpr(cs.Value) + ":")
			}
			p.indent++
			for _, inner := range cs.Body {
				p.stmt(inner)
			}
			p.indent--
		}
		p.line("}")
	case *Return:
		if s.X == nil {
			p.line("return;")
		} else {
			p.line("return " + PrintExpr(s.X) + ";")
		}
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *Empty:
		p.line(";")
	}
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *Ident:
		p.buf.WriteString(e.Name)
	case *IntLit:
		fmt.Fprintf(&p.buf, "%d", e.Value)
	case *StringLit:
		fmt.Fprintf(&p.buf, "%q", e.Value)
	case *NullLit:
		p.buf.WriteString("NULL")
	case *Unary:
		p.buf.WriteString(unaryName(e.Op))
		p.paren(e.X)
	case *Postfix:
		p.paren(e.X)
		p.buf.WriteString(e.Op.String())
	case *Binary:
		p.paren(e.X)
		p.buf.WriteString(" " + e.Op.String() + " ")
		p.paren(e.Y)
	case *Assign:
		p.expr(e.Lhs)
		p.buf.WriteString(" " + e.Op.String() + " ")
		p.expr(e.Rhs)
	case *Cond:
		p.paren(e.C)
		p.buf.WriteString(" ? ")
		p.paren(e.Then)
		p.buf.WriteString(" : ")
		p.paren(e.Else)
	case *Call:
		p.buf.WriteString(e.Fun + "(")
		for i, a := range e.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a)
		}
		p.buf.WriteString(")")
	case *Index:
		p.paren(e.X)
		p.buf.WriteString("[")
		p.expr(e.I)
		p.buf.WriteString("]")
	case *Field:
		p.paren(e.X)
		if e.Arrow {
			p.buf.WriteString("->")
		} else {
			p.buf.WriteString(".")
		}
		p.buf.WriteString(e.Name)
	case *Cast:
		p.buf.WriteString("(" + declString(e.To, "") + ")")
		p.paren(e.X)
	case *SizeofType:
		p.buf.WriteString("sizeof(" + declString(e.Of, "") + ")")
	case *SizeofExpr:
		p.buf.WriteString("sizeof(")
		p.expr(e.X)
		p.buf.WriteString(")")
	}
}

// paren prints sub-expressions with parentheses when they are compound,
// keeping the output unambiguous without tracking precedence.
func (p *printer) paren(e Expr) {
	switch e.(type) {
	case *Ident, *IntLit, *StringLit, *NullLit, *Call, *Index, *Field, *SizeofType, *SizeofExpr:
		p.expr(e)
	default:
		p.buf.WriteString("(")
		p.expr(e)
		p.buf.WriteString(")")
	}
}

func unaryName(op token.Kind) string {
	switch op {
	case token.INC:
		return "++"
	case token.DEC:
		return "--"
	}
	return op.String()
}
