// Package ast defines the abstract syntax tree for MiniC programs.
//
// Expression nodes carry a T field that the sema package fills in with the
// resolved type; the parser leaves it nil.
package ast

import (
	"dart/internal/token"
	"dart/internal/types"
)

// Node is the common interface of all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- types

// TypeSpec is the syntactic form of a type.
type TypeSpec interface {
	Node
	typeSpec()
}

// BasicSpec names a built-in type (int, char, long, unsigned, void).
type BasicSpec struct {
	Kind   types.BasicKind
	TokPos token.Pos
}

// PointerSpec is "T*".
type PointerSpec struct {
	Elem   TypeSpec
	TokPos token.Pos
}

// StructSpec is "struct Name".
type StructSpec struct {
	Name   string
	TokPos token.Pos
}

// ArraySpec is "T[N]"; Len is a constant expression.
type ArraySpec struct {
	Elem   TypeSpec
	Len    Expr
	TokPos token.Pos
}

func (s *BasicSpec) Pos() token.Pos   { return s.TokPos }
func (s *PointerSpec) Pos() token.Pos { return s.TokPos }
func (s *StructSpec) Pos() token.Pos  { return s.TokPos }
func (s *ArraySpec) Pos() token.Pos   { return s.TokPos }

func (*BasicSpec) typeSpec()   {}
func (*PointerSpec) typeSpec() {}
func (*StructSpec) typeSpec()  {}
func (*ArraySpec) typeSpec()   {}

// ---------------------------------------------------------------- exprs

// Expr is an expression node.
type Expr interface {
	Node
	Type() types.Type
	expr()
}

// typed is embedded in every expression to hold its resolved type.
type typed struct {
	T types.Type
}

// Type returns the resolved type (nil before sema has run).
func (t *typed) Type() types.Type { return t.T }

// SetType records the resolved type; used by sema.
func (t *typed) SetType(ty types.Type) { t.T = ty }

// Typed is satisfied by all expression nodes; sema uses it to annotate.
type Typed interface{ SetType(types.Type) }

// Ident is a reference to a named variable or function.
type Ident struct {
	typed
	Name   string
	TokPos token.Pos
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	typed
	Value  int64
	TokPos token.Pos
}

// StringLit is a string literal; MiniC only allows it as the message
// argument of assert/abort-style calls.
type StringLit struct {
	typed
	Value  string
	TokPos token.Pos
}

// NullLit is the NULL constant.
type NullLit struct {
	typed
	TokPos token.Pos
}

// Unary is a prefix operator: - ! ~ * & ++ --.
type Unary struct {
	typed
	Op     token.Kind
	X      Expr
	TokPos token.Pos
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	typed
	Op     token.Kind
	X      Expr
	TokPos token.Pos
}

// Binary is an infix binary operation (arithmetic, comparison, logical,
// bitwise).
type Binary struct {
	typed
	Op     token.Kind
	X, Y   Expr
	TokPos token.Pos
}

// Assign is an assignment expression: lhs = rhs, lhs += rhs, etc.
type Assign struct {
	typed
	Op     token.Kind // ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ
	Lhs    Expr
	Rhs    Expr
	TokPos token.Pos
}

// Cond is the ternary conditional e ? a : b.
type Cond struct {
	typed
	C, Then, Else Expr
	TokPos        token.Pos
}

// Call is a function call.
type Call struct {
	typed
	Fun    string
	Args   []Expr
	TokPos token.Pos
}

// Index is array/pointer subscripting a[i].
type Index struct {
	typed
	X, I   Expr
	TokPos token.Pos
}

// Field selects a struct member: X.Name or X->Name (Arrow).
type Field struct {
	typed
	X      Expr
	Name   string
	Arrow  bool
	TokPos token.Pos
}

// Cast is an explicit type conversion (T)x.
type Cast struct {
	typed
	To     TypeSpec
	X      Expr
	TokPos token.Pos
}

// SizeofType is sizeof(T).  Resolved is filled in by sema with the
// operand type so later phases can compute the size.
type SizeofType struct {
	typed
	Of       TypeSpec
	Resolved types.Type
	TokPos   token.Pos
}

// SizeofExpr is sizeof(expr).
type SizeofExpr struct {
	typed
	X      Expr
	TokPos token.Pos
}

func (e *Ident) Pos() token.Pos      { return e.TokPos }
func (e *IntLit) Pos() token.Pos     { return e.TokPos }
func (e *StringLit) Pos() token.Pos  { return e.TokPos }
func (e *NullLit) Pos() token.Pos    { return e.TokPos }
func (e *Unary) Pos() token.Pos      { return e.TokPos }
func (e *Postfix) Pos() token.Pos    { return e.TokPos }
func (e *Binary) Pos() token.Pos     { return e.TokPos }
func (e *Assign) Pos() token.Pos     { return e.TokPos }
func (e *Cond) Pos() token.Pos       { return e.TokPos }
func (e *Call) Pos() token.Pos       { return e.TokPos }
func (e *Index) Pos() token.Pos      { return e.TokPos }
func (e *Field) Pos() token.Pos      { return e.TokPos }
func (e *Cast) Pos() token.Pos       { return e.TokPos }
func (e *SizeofType) Pos() token.Pos { return e.TokPos }
func (e *SizeofExpr) Pos() token.Pos { return e.TokPos }

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*StringLit) expr()  {}
func (*NullLit) expr()    {}
func (*Unary) expr()      {}
func (*Postfix) expr()    {}
func (*Binary) expr()     {}
func (*Assign) expr()     {}
func (*Cond) expr()       {}
func (*Call) expr()       {}
func (*Index) expr()      {}
func (*Field) expr()      {}
func (*Cast) expr()       {}
func (*SizeofType) expr() {}
func (*SizeofExpr) expr() {}

// ---------------------------------------------------------------- stmts

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Block is { ... }.
type Block struct {
	Stmts  []Stmt
	TokPos token.Pos
}

// DeclStmt declares one local variable, optionally initialized.
type DeclStmt struct {
	Name   string
	Spec   TypeSpec
	Init   Expr // may be nil
	TokPos token.Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X      Expr
	TokPos token.Pos
}

// If is if (Cond) Then [else Else].
type If struct {
	Cond   Expr
	Then   Stmt
	Else   Stmt // may be nil
	TokPos token.Pos
}

// While is while (Cond) Body.
type While struct {
	Cond   Expr
	Body   Stmt
	TokPos token.Pos
}

// DoWhile is do Body while (Cond);.
type DoWhile struct {
	Body   Stmt
	Cond   Expr
	TokPos token.Pos
}

// For is for (Init; Cond; Post) Body; any part may be nil.
type For struct {
	Init   Stmt // DeclStmt or ExprStmt
	Cond   Expr
	Post   Expr
	Body   Stmt
	TokPos token.Pos
}

// Switch is a C switch statement.  Cases execute with C fallthrough
// semantics; break leaves the switch.
type Switch struct {
	Tag    Expr
	Cases  []*Case
	TokPos token.Pos
}

// Case is one "case K:" or "default:" arm with its statements.
type Case struct {
	// Value is the constant case label; nil for default.
	Value  Expr
	Body   []Stmt
	TokPos token.Pos
}

// Return is return [expr];.
type Return struct {
	X      Expr // may be nil
	TokPos token.Pos
}

// Break is break;.
type Break struct{ TokPos token.Pos }

// Continue is continue;.
type Continue struct{ TokPos token.Pos }

// Empty is a bare semicolon.
type Empty struct{ TokPos token.Pos }

func (s *Block) Pos() token.Pos    { return s.TokPos }
func (s *DeclStmt) Pos() token.Pos { return s.TokPos }
func (s *ExprStmt) Pos() token.Pos { return s.TokPos }
func (s *If) Pos() token.Pos       { return s.TokPos }
func (s *While) Pos() token.Pos    { return s.TokPos }
func (s *DoWhile) Pos() token.Pos  { return s.TokPos }
func (s *For) Pos() token.Pos      { return s.TokPos }
func (s *Switch) Pos() token.Pos   { return s.TokPos }
func (s *Return) Pos() token.Pos   { return s.TokPos }
func (s *Break) Pos() token.Pos    { return s.TokPos }
func (s *Continue) Pos() token.Pos { return s.TokPos }
func (s *Empty) Pos() token.Pos    { return s.TokPos }

func (*Block) stmt()    {}
func (*DeclStmt) stmt() {}
func (*ExprStmt) stmt() {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*DoWhile) stmt()  {}
func (*For) stmt()      {}
func (*Switch) stmt()   {}
func (*Return) stmt()   {}
func (*Break) stmt()    {}
func (*Continue) stmt() {}
func (*Empty) stmt()    {}

// ---------------------------------------------------------------- decls

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
}

// StructDecl defines struct Name { fields... }.
type StructDecl struct {
	Name   string
	Fields []Param
	TokPos token.Pos
}

// Param is a named, typed slot: a function parameter or a struct field.
type Param struct {
	Name string
	Spec TypeSpec
}

// VarDecl declares a global variable.  Extern globals (or globals without
// an initializer when treated loosely) form part of the program's external
// interface per Sec. 3.1.
type VarDecl struct {
	Name   string
	Spec   TypeSpec
	Init   Expr // may be nil
	Extern bool
	TokPos token.Pos
}

// FuncDecl declares or defines a function.  A nil Body with Extern set is
// an external function (environment-controlled, Sec. 3.1); a nil Body
// without Extern is a prototype for a function defined later in the file.
type FuncDecl struct {
	Name   string
	Params []Param
	Result TypeSpec
	Body   *Block
	Extern bool
	TokPos token.Pos
}

func (d *StructDecl) Pos() token.Pos { return d.TokPos }
func (d *VarDecl) Pos() token.Pos    { return d.TokPos }
func (d *FuncDecl) Pos() token.Pos   { return d.TokPos }

func (*StructDecl) decl() {}
func (*VarDecl) decl()    {}
func (*FuncDecl) decl()   {}

// File is a parsed MiniC translation unit.
type File struct {
	Decls []Decl
}
