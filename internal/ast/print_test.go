package ast

import (
	"strings"
	"testing"

	"dart/internal/token"
	"dart/internal/types"
)

func TestPrintDecls(t *testing.T) {
	f := &File{Decls: []Decl{
		&StructDecl{Name: "pair", Fields: []Param{
			{Name: "a", Spec: &BasicSpec{Kind: types.Int}},
			{Name: "b", Spec: &PointerSpec{Elem: &BasicSpec{Kind: types.Char}}},
		}},
		&VarDecl{Name: "g", Spec: &BasicSpec{Kind: types.Int}, Init: &IntLit{Value: 3}},
		&VarDecl{Name: "env", Spec: &BasicSpec{Kind: types.Int}, Extern: true},
		&VarDecl{Name: "buf", Spec: &ArraySpec{
			Elem: &BasicSpec{Kind: types.Char},
			Len:  &IntLit{Value: 16},
		}},
		&FuncDecl{Name: "get", Result: &BasicSpec{Kind: types.Int}, Extern: true},
	}}
	out := Print(f)
	for _, want := range []string{
		"struct pair {",
		"int a;",
		"char* b;",
		"int g = 3;",
		"extern int env;",
		"char buf[16];",
		"extern int get();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestPrintStmts(t *testing.T) {
	pos := token.Pos{}
	_ = pos
	body := &Block{Stmts: []Stmt{
		&DeclStmt{Name: "x", Spec: &BasicSpec{Kind: types.Int}, Init: &IntLit{Value: 0}},
		&While{
			Cond: &Binary{Op: token.LT, X: &Ident{Name: "x"}, Y: &IntLit{Value: 5}},
			Body: &ExprStmt{X: &Unary{Op: token.INC, X: &Ident{Name: "x"}}},
		},
		&DoWhile{
			Body: &Empty{},
			Cond: &IntLit{Value: 0},
		},
		&Return{X: &Ident{Name: "x"}},
		&Break{},
		&Continue{},
	}}
	f := &File{Decls: []Decl{
		&FuncDecl{Name: "fn", Result: &BasicSpec{Kind: types.Int}, Body: body},
	}}
	out := Print(f)
	for _, want := range []string{
		"int fn() {",
		"int x = 0;",
		"while (x < 5)",
		"++x;",
		"do",
		"while (0);",
		"return x;",
		"break;",
		"continue;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestPrintExprForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&NullLit{}, "NULL"},
		{&StringLit{Value: "hi"}, `"hi"`},
		{&Cond{C: &Ident{Name: "a"}, Then: &IntLit{Value: 1}, Else: &IntLit{Value: 2}}, "a ? 1 : 2"},
		{&Index{X: &Ident{Name: "a"}, I: &IntLit{Value: 0}}, "a[0]"},
		{&Field{X: &Ident{Name: "p"}, Name: "f", Arrow: true}, "p->f"},
		{&Field{X: &Ident{Name: "s"}, Name: "f"}, "s.f"},
		{&Cast{To: &PointerSpec{Elem: &BasicSpec{Kind: types.Char}}, X: &Ident{Name: "p"}}, "(char*)p"},
		{&SizeofExpr{X: &Ident{Name: "x"}}, "sizeof(x)"},
		{&Call{Fun: "g", Args: []Expr{&IntLit{Value: 1}, &IntLit{Value: 2}}}, "g(1, 2)"},
		{&Assign{Op: token.PLUSEQ, Lhs: &Ident{Name: "x"}, Rhs: &IntLit{Value: 2}}, "x += 2"},
		{&Postfix{Op: token.DEC, X: &Ident{Name: "x"}}, "x--"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.e); got != c.want {
			t.Errorf("PrintExpr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintForHeader(t *testing.T) {
	loop := &For{
		Init: &DeclStmt{Name: "i", Spec: &BasicSpec{Kind: types.Int}, Init: &IntLit{Value: 0}},
		Cond: &Binary{Op: token.LT, X: &Ident{Name: "i"}, Y: &IntLit{Value: 3}},
		Post: &Unary{Op: token.INC, X: &Ident{Name: "i"}},
		Body: &Block{},
	}
	out := PrintStmt(loop)
	if !strings.Contains(out, "for (int i = 0; i < 3; ++i)") {
		t.Errorf("for header: %s", out)
	}
}
