package iface

import (
	"strings"
	"testing"

	"dart/internal/parser"
	"dart/internal/sema"
	"dart/internal/types"
)

func checked(t *testing.T, src string) *sema.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sema.Check(f, nil)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

const demo = `
struct node { int v; struct node *next; };
extern int env_mode;
extern int read_msg();
extern char *fetch();
int helper(int x) { return x; }
int top(int a, struct node *list) { return helper(a); }
`

func TestExtract(t *testing.T) {
	p := checked(t, demo)
	i, err := Extract(p, "top")
	if err != nil {
		t.Fatal(err)
	}
	if i.Toplevel != "top" {
		t.Errorf("toplevel %q", i.Toplevel)
	}
	if len(i.Params) != 2 || i.Params[0].Name != "a" || i.Params[1].Name != "list" {
		t.Errorf("params: %+v", i.Params)
	}
	if len(i.ExternVars) != 1 || i.ExternVars[0].Name != "env_mode" {
		t.Errorf("extern vars: %+v", i.ExternVars)
	}
	if len(i.ExternFuncs) != 2 {
		t.Errorf("extern funcs: %+v", i.ExternFuncs)
	}
	if len(i.Candidates) != 2 { // helper, top
		t.Errorf("candidates: %v", i.Candidates)
	}
}

func TestRecursiveShape(t *testing.T) {
	p := checked(t, demo)
	i, _ := Extract(p, "top")
	shape := i.Params[1].Shape
	if !strings.Contains(shape, "ptr(NULL | new struct node") {
		t.Errorf("shape %q should describe the pointer alternatives", shape)
	}
	if !strings.Contains(shape, "{...}") {
		t.Errorf("shape %q should cut the recursive back-edge", shape)
	}
}

func TestExtractErrors(t *testing.T) {
	p := checked(t, demo)
	if _, err := Extract(p, "nosuch"); err == nil {
		t.Error("extracting a missing toplevel should fail")
	}
	if _, err := Extract(p, "read_msg"); err == nil {
		t.Error("an external function cannot be the toplevel")
	}
}

func TestCandidatesSorted(t *testing.T) {
	p := checked(t, `
int zebra() { return 0; }
int alpha() { return 0; }
extern int env();
int middle() { return 0; }
`)
	got := Candidates(p)
	want := []string{"alpha", "middle", "zebra"}
	if len(got) != len(want) {
		t.Fatalf("candidates: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("candidates[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStringReport(t *testing.T) {
	p := checked(t, demo)
	i, _ := Extract(p, "top")
	report := i.String()
	for _, frag := range []string{"toplevel top", "param", "extvar env_mode", "extfun read_msg"} {
		if !strings.Contains(report, frag) {
			t.Errorf("report lacks %q:\n%s", frag, report)
		}
	}
}

func TestVoidPointerShape(t *testing.T) {
	p := checked(t, "int f(void *h) { return 0; }")
	i, _ := Extract(p, "f")
	if i.Params[0].Shape != "void*" {
		t.Errorf("void* shape: %q", i.Params[0].Shape)
	}
	_ = types.VoidType
}
