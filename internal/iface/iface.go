// Package iface implements DART's first technique (Sec. 3.1): automated
// extraction of a program's external interface by static inspection of
// the parsed source.
//
// The external interface of a MiniC program consists of its external
// (extern) variables, its external (extern, undefined) functions, and the
// arguments of a user-chosen toplevel function.  Inputs are the memory
// locations initialized through this interface at runtime, which handles
// dynamic data (lists, trees) uniformly: a pointer input of recursive
// type describes an unbounded family of concrete input shapes.
package iface

import (
	"fmt"
	"sort"
	"strings"

	"dart/internal/sema"
	"dart/internal/types"
)

// Input describes one interface entry point.
type Input struct {
	// Name is the variable or parameter name.
	Name string
	// Type is the declared type.
	Type types.Type
	// Shape is a human-readable sketch of the input tree this entry
	// generates (pointers show their pointee recursively, cut at
	// recursive back-edges).
	Shape string
}

// Interface is the extracted external interface for one toplevel choice.
type Interface struct {
	// Toplevel is the function under test.
	Toplevel string
	// Params are the toplevel function's arguments.
	Params []Input
	// ExternVars are environment-controlled global variables.
	ExternVars []Input
	// ExternFuncs are environment-controlled functions with their result
	// types; every call site yields a fresh input.
	ExternFuncs []Input
	// Candidates lists every defined function, i.e. every possible
	// toplevel choice (the oSIP experiment iterates over all of them).
	Candidates []string
}

// Extract computes the interface of prog for the given toplevel function.
func Extract(prog *sema.Program, toplevel string) (*Interface, error) {
	fn, ok := prog.Funcs[toplevel]
	if !ok {
		return nil, fmt.Errorf("iface: no function named %q", toplevel)
	}
	if fn.Extern {
		return nil, fmt.Errorf("iface: %q is an external function and cannot be the toplevel", toplevel)
	}

	out := &Interface{Toplevel: toplevel}
	for _, p := range fn.Params {
		out.Params = append(out.Params, Input{Name: p.Name, Type: p.Type, Shape: shape(p.Type, nil)})
	}
	for _, g := range prog.Globals {
		if g.Extern {
			out.ExternVars = append(out.ExternVars, Input{Name: g.Name, Type: g.Type, Shape: shape(g.Type, nil)})
		}
	}
	for _, name := range prog.FuncOrder {
		f := prog.Funcs[name]
		if f.Extern {
			out.ExternFuncs = append(out.ExternFuncs, Input{Name: name, Type: f.Sig.Result, Shape: shape(f.Sig.Result, nil)})
		}
	}
	for _, name := range prog.FuncOrder {
		if !prog.Funcs[name].Extern {
			out.Candidates = append(out.Candidates, name)
		}
	}
	sort.Strings(out.Candidates)
	return out, nil
}

// Candidates returns every defined (non-extern) function of the program,
// the set a whole-library audit iterates over.
func Candidates(prog *sema.Program) []string {
	var out []string
	for _, name := range prog.FuncOrder {
		if !prog.Funcs[name].Extern {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// shape renders the input tree of a type; visited guards recursion.
func shape(t types.Type, visited []*types.Struct) string {
	switch t := t.(type) {
	case *types.Basic:
		return t.String()
	case *types.Pointer:
		if types.IsVoid(t.Elem) {
			return "void*"
		}
		return "ptr(NULL | new " + shape(t.Elem, visited) + ")"
	case *types.Struct:
		for _, v := range visited {
			if v == t {
				return t.String() + "{...}" // recursive back-edge
			}
		}
		visited = append(visited, t)
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + ": " + shape(f.Type, visited)
		}
		return t.String() + "{" + strings.Join(parts, ", ") + "}"
	case *types.Array:
		return fmt.Sprintf("%s x %d", shape(t.Elem, visited), t.Len)
	}
	return t.String()
}

// String renders the interface report.
func (i *Interface) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "toplevel %s\n", i.Toplevel)
	for _, p := range i.Params {
		fmt.Fprintf(&b, "  param  %-12s %s\n", p.Name, p.Shape)
	}
	for _, v := range i.ExternVars {
		fmt.Fprintf(&b, "  extvar %-12s %s\n", v.Name, v.Shape)
	}
	for _, f := range i.ExternFuncs {
		fmt.Fprintf(&b, "  extfun %-12s returns %s\n", f.Name, f.Shape)
	}
	return b.String()
}
