// Package coverage accumulates branch coverage over test runs, for the
// directed-vs-random coverage comparison the paper motivates in Sec. 1
// (random testing "usually provides low code coverage").
package coverage

// Set tracks which (branch site, outcome) pairs have been exercised.
type Set struct {
	taken    map[int]bool
	notTaken map[int]bool
	sites    int
}

// New returns an empty set over a program with the given number of
// conditional branch sites.
func New(sites int) *Set {
	return &Set{taken: map[int]bool{}, notTaken: map[int]bool{}, sites: sites}
}

// Record notes that site executed with the given outcome.
func (s *Set) Record(site int, taken bool) {
	if taken {
		s.taken[site] = true
	} else {
		s.notTaken[site] = true
	}
}

// Covered returns the number of covered branch directions (each site has
// two: taken and not-taken).
func (s *Set) Covered() int { return len(s.taken) + len(s.notTaken) }

// Total returns the total number of branch directions in the program.
func (s *Set) Total() int { return 2 * s.sites }

// SitesTouched returns the number of sites executed in either direction.
func (s *Set) SitesTouched() int {
	u := map[int]bool{}
	for k := range s.taken {
		u[k] = true
	}
	for k := range s.notTaken {
		u[k] = true
	}
	return len(u)
}

// Fraction returns covered/total, or 0 for an empty program.
func (s *Set) Fraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Covered()) / float64(s.Total())
}
