// Package coverage accumulates branch coverage over test runs, for the
// directed-vs-random coverage comparison the paper motivates in Sec. 1
// (random testing "usually provides low code coverage").
package coverage

// Set tracks which (branch site, outcome) pairs have been exercised.
type Set struct {
	taken    map[int]bool
	notTaken map[int]bool
	sites    int
}

// New returns an empty set over a program with the given number of
// conditional branch sites.
func New(sites int) *Set {
	return &Set{taken: map[int]bool{}, notTaken: map[int]bool{}, sites: sites}
}

// Record notes that site executed with the given outcome, reporting
// whether the direction is newly covered (the coverage-explainer
// timeline ticks on exactly these transitions).  Negative sites (the
// machine's pointer-shape Decision records, which are not program
// branch sites) are ignored.
func (s *Set) Record(site int, taken bool) bool {
	if site < 0 {
		return false
	}
	m := s.notTaken
	if taken {
		m = s.taken
	}
	if m[site] {
		return false
	}
	m[site] = true
	return true
}

// Merge folds other's covered directions into s (set union).  The audit
// pool uses it to aggregate per-function coverage into a whole-library
// view; since every search of one program shares the program-global
// site numbering, the union is exact.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for k := range other.taken {
		s.taken[k] = true
	}
	for k := range other.notTaken {
		s.notTaken[k] = true
	}
	if other.sites > s.sites {
		s.sites = other.sites
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := New(s.sites)
	c.Merge(s)
	return c
}

// Site reports the covered directions of one branch site.
func (s *Set) Site(site int) (taken, notTaken bool) {
	return s.taken[site], s.notTaken[site]
}

// Sites returns the number of conditional branch sites in the program.
func (s *Set) Sites() int { return s.sites }

// Covered returns the number of covered branch directions (each site has
// two: taken and not-taken).
func (s *Set) Covered() int { return len(s.taken) + len(s.notTaken) }

// Total returns the total number of branch directions in the program.
func (s *Set) Total() int { return 2 * s.sites }

// SitesTouched returns the number of sites executed in either direction.
func (s *Set) SitesTouched() int {
	u := map[int]bool{}
	for k := range s.taken {
		u[k] = true
	}
	for k := range s.notTaken {
		u[k] = true
	}
	return len(u)
}

// Fraction returns covered/total, or 0 for an empty program.
func (s *Set) Fraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Covered()) / float64(s.Total())
}
