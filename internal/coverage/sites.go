// Branch-site indexing: mapping the program-global site numbers the
// machine records back to source positions, so coverage can be reported
// against the program text instead of as a bare fraction.
package coverage

import (
	"sort"

	"dart/internal/ir"
	"dart/internal/token"
)

// SiteInfo locates one conditional branch site in the source.
type SiteInfo struct {
	// Site is the program-global branch site number (ir.IfGoto.Site).
	Site int `json:"site"`
	// Fn is the function the site's conditional belongs to.
	Fn string `json:"fn"`
	// Pos is the source position of the conditional.
	Pos token.Pos `json:"pos"`
}

// ProgSites lists every conditional branch site of the compiled program
// with its source position, ordered by site number.  One source
// conditional can lower to several sites (short-circuit operators emit
// one IfGoto per operand), in which case multiple sites share a
// position.
func ProgSites(prog *ir.Prog) []SiteInfo {
	var out []SiteInfo
	seen := map[int]bool{}
	for _, name := range prog.FuncOrder {
		fn := prog.Funcs[name]
		for _, ins := range fn.Code {
			if br, ok := ins.(*ir.IfGoto); ok && br.Site >= 0 && !seen[br.Site] {
				seen[br.Site] = true
				out = append(out, SiteInfo{Site: br.Site, Fn: name, Pos: br.Pos})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
