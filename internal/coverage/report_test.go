package coverage_test

// Rendering regression tests for the annotated coverage report.

import (
	"strings"
	"testing"

	"dart"
	"dart/internal/coverage"
)

// TestAnnotateHTMLEscapes: source text flows verbatim into the HTML
// report's line spans and tooltips, so every metacharacter-bearing
// line — `a < b && b > c`, quotes, ampersands — must be escaped in the
// output; raw `<`, `>`, `&`, or `"` from the program would let a
// hostile source file inject markup into the coverage page.
func TestAnnotateHTMLEscapes(t *testing.T) {
	src := `
int esc(int a, int b) {
	if (a < b && b > 40) {
		return 1;
	}
	if (a > 0 && b < 9) {
		return 2;
	}
	return 0;
}
`
	prog, err := dart.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dart.Run(prog, dart.Options{Toplevel: "esc", MaxRuns: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	page := string(coverage.Annotate(src, coverage.ProgSites(prog.IR), rep.Coverage).HTML())

	for _, raw := range []string{"a < b", "b > 40", "&& b", "b < 9"} {
		if strings.Contains(page, raw) {
			t.Errorf("HTML report carries unescaped source %q", raw)
		}
	}
	for _, esc := range []string{"a &lt; b", "b &gt; 40", "&amp;&amp; b", "b &lt; 9"} {
		if !strings.Contains(page, esc) {
			t.Errorf("HTML report missing escaped form %q", esc)
		}
	}
	// Covered-line markup survives alongside the escaping: the guarded
	// lines are annotated, not dropped.
	if !strings.Contains(page, `class="full"`) && !strings.Contains(page, `class="partial"`) &&
		!strings.Contains(page, `class="none"`) {
		t.Errorf("HTML report has no annotated line spans:\n%s", page)
	}
}
