package coverage_test

import (
	"testing"

	"dart"
	"dart/internal/coverage"
)

// ProgSites must index every surviving conditional branch of a compiled
// program, deduplicated by site, in site order, with source positions.
func TestProgSites(t *testing.T) {
	prog, err := dart.Compile(`
int f(int x, int y) {
	if (x * x > 10) {
		if (y * y < 4) {
			return 1;
		}
	}
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sites := coverage.ProgSites(prog.IR)
	if len(sites) == 0 {
		t.Fatal("no sites indexed")
	}
	if len(sites) > prog.IR.NumSites {
		t.Fatalf("%d sites indexed, program has %d", len(sites), prog.IR.NumSites)
	}
	seen := map[int]bool{}
	last := -1
	for _, si := range sites {
		if seen[si.Site] {
			t.Errorf("site %d listed twice", si.Site)
		}
		seen[si.Site] = true
		if si.Site < last {
			t.Errorf("sites not in order: %d after %d", si.Site, last)
		}
		last = si.Site
		if si.Fn != "f" {
			t.Errorf("site %d attributed to %q, want f", si.Site, si.Fn)
		}
		if !si.Pos.IsValid() {
			t.Errorf("site %d has no source position", si.Site)
		}
	}
}

// A full search's coverage set must line up with the site index: every
// direction the complete search covered annotates as full lines.
func TestProgSitesMatchSearchCoverage(t *testing.T) {
	src := `
int f(int x) {
	if (x * x > 100) {
		return 1;
	}
	return 0;
}
`
	prog, err := dart.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dart.Run(prog, dart.Options{Toplevel: "f", MaxRuns: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage.Fraction() != 1.0 {
		t.Fatalf("search did not reach full coverage: %v", rep.Coverage.Fraction())
	}
	r := coverage.Annotate(src, coverage.ProgSites(prog.IR), rep.Coverage)
	for _, st := range r.Sites {
		if !st.Taken || !st.NotTaken {
			t.Errorf("site %d at %s not fully covered in annotation", st.Site, st.Pos)
		}
	}
	if r.LineClass(3) != coverage.ClassFull {
		t.Errorf("branch line class %q, want full", r.LineClass(3))
	}
}
