// Source-level coverage reporting: the per-line annotated view the
// industrial DART descendants ship as their product surface (CTGEN's
// per-function C1 branch reports, Coyote's coverage dashboards).  Given
// the program text, the site index, and an accumulated Set, Annotate
// classifies every branch site and renders the source with each line's
// branch status — as monospace text for terminals and as a standalone
// HTML page for the live /coverage endpoint and -covreport files.
package coverage

import (
	"fmt"
	"html"
	"sort"
	"strings"
)

// Line coverage classes, worst direction wins.
const (
	// ClassNone: the line has at least one site no direction of which
	// ever executed.
	ClassNone = "none"
	// ClassPartial: every site on the line executed, but some direction
	// was never taken.
	ClassPartial = "partial"
	// ClassFull: both directions of every site on the line executed.
	ClassFull = "full"
	// ClassPlain: the line has no branch site.
	ClassPlain = ""
)

// SiteStatus is the report entry for one branch site.
type SiteStatus struct {
	SiteInfo
	Taken    bool `json:"taken"`
	NotTaken bool `json:"not_taken"`
}

// Report is an annotated source-coverage view.
type Report struct {
	// Lines are the source lines, 0-indexed (line 1 is Lines[0]).
	Lines []string
	// ByLine maps a 1-based source line to its sites, in site order.
	ByLine map[int][]SiteStatus
	// Sites is every known site's status, in site order.
	Sites []SiteStatus
	// Covered/Total are the branch-direction tallies of the Set.
	Covered, Total int
	// SitesTouched/SiteCount tally sites hit in either direction.
	SitesTouched, SiteCount int
}

// Annotate builds the report for src under the accumulated set.
func Annotate(src string, sites []SiteInfo, set *Set) *Report {
	r := &Report{
		Lines:     strings.Split(strings.TrimRight(src, "\n"), "\n"),
		ByLine:    map[int][]SiteStatus{},
		Covered:   set.Covered(),
		Total:     set.Total(),
		SiteCount: set.Sites(),
	}
	r.SitesTouched = set.SitesTouched()
	for _, si := range sites {
		taken, notTaken := set.Site(si.Site)
		st := SiteStatus{SiteInfo: si, Taken: taken, NotTaken: notTaken}
		r.Sites = append(r.Sites, st)
		r.ByLine[si.Pos.Line] = append(r.ByLine[si.Pos.Line], st)
	}
	return r
}

// Fraction is covered/total, or 0 for a branch-free program.
func (r *Report) Fraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Total)
}

// LineClass classifies a 1-based source line.
func (r *Report) LineClass(line int) string {
	sites, ok := r.ByLine[line]
	if !ok {
		return ClassPlain
	}
	class := ClassFull
	for _, s := range sites {
		switch {
		case !s.Taken && !s.NotTaken:
			return ClassNone
		case !s.Taken || !s.NotTaken:
			class = ClassPartial
		}
	}
	return class
}

// mark is the two-column text gutter for a line: one character per
// aggregate direction (taken, not-taken), '+' covered / '-' missed.
func lineMark(sites []SiteStatus) string {
	if len(sites) == 0 {
		return "  "
	}
	taken, notTaken := true, true
	for _, s := range sites {
		taken = taken && s.Taken
		notTaken = notTaken && s.NotTaken
	}
	m := func(ok bool) byte {
		if ok {
			return '+'
		}
		return '-'
	}
	return string([]byte{m(taken), m(notTaken)})
}

// Text renders the annotated source for a terminal: a summary header,
// the numbered source with a taken/not-taken gutter, and a per-site
// table of the missed directions.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "branch coverage %d/%d directions (%.1f%%), %d/%d sites touched\n",
		r.Covered, r.Total, 100*r.Fraction(), r.SitesTouched, r.SiteCount)
	b.WriteString("gutter: taken/not-taken over the line's sites ('+' covered, '-' missed)\n\n")
	for i, line := range r.Lines {
		fmt.Fprintf(&b, "%s %4d | %s\n", lineMark(r.ByLine[i+1]), i+1, line)
	}
	var missed []SiteStatus
	for _, s := range r.Sites {
		if !s.Taken || !s.NotTaken {
			missed = append(missed, s)
		}
	}
	if len(missed) > 0 {
		fmt.Fprintf(&b, "\nuncovered directions (%d sites):\n", len(missed))
		sort.Slice(missed, func(i, j int) bool { return missed[i].Site < missed[j].Site })
		for _, s := range missed {
			fmt.Fprintf(&b, "  site %-4d %s at %s: taken=%s not-taken=%s\n",
				s.Site, s.Fn, s.Pos, mark(s.Taken), mark(s.NotTaken))
		}
	}
	return b.String()
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "MISSED"
}

// HTML renders the annotated source as a standalone page: lines tinted
// by coverage class, per-line tooltips naming each site's directions.
func (r *Report) HTML() []byte {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>dart coverage</title><style>
body { font-family: monospace; background: #fff; color: #111; margin: 1.5em; }
pre { line-height: 1.35; }
.full { background: #d7f4d7; }
.partial { background: #fdf3c7; }
.none { background: #f9d4d4; }
.ln { color: #888; user-select: none; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>branch coverage %d/%d directions (%.1f%%)</h1>\n", r.Covered, r.Total, 100*r.Fraction())
	fmt.Fprintf(&b, "<p>%d/%d sites touched in either direction; green = both directions, yellow = one missed, red = never executed.</p>\n<pre>\n", r.SitesTouched, r.SiteCount)
	for i, line := range r.Lines {
		class := r.LineClass(i + 1)
		title := ""
		if sites := r.ByLine[i+1]; len(sites) > 0 {
			var parts []string
			for _, s := range sites {
				parts = append(parts, fmt.Sprintf("site %d (%s): taken=%v not-taken=%v", s.Site, s.Fn, s.Taken, s.NotTaken))
			}
			title = fmt.Sprintf(` title="%s"`, html.EscapeString(strings.Join(parts, "; ")))
		}
		if class == ClassPlain {
			fmt.Fprintf(&b, "<span class=\"ln\">%4d</span>  %s\n", i+1, html.EscapeString(line))
		} else {
			fmt.Fprintf(&b, "<span class=\"ln\">%4d</span>  <span class=\"%s\"%s>%s</span>\n",
				i+1, class, title, html.EscapeString(line))
		}
	}
	b.WriteString("</pre></body></html>\n")
	return []byte(b.String())
}
