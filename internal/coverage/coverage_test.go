package coverage

import "testing"

func TestEmpty(t *testing.T) {
	s := New(0)
	if s.Covered() != 0 || s.Total() != 0 || s.Fraction() != 0 {
		t.Fatalf("empty set: covered=%d total=%d frac=%f", s.Covered(), s.Total(), s.Fraction())
	}
}

func TestRecord(t *testing.T) {
	s := New(3)
	s.Record(0, true)
	s.Record(0, true) // duplicate: no double counting
	s.Record(1, false)
	if s.Covered() != 2 {
		t.Errorf("covered = %d, want 2", s.Covered())
	}
	if s.Total() != 6 {
		t.Errorf("total = %d, want 6", s.Total())
	}
	if s.SitesTouched() != 2 {
		t.Errorf("sites touched = %d, want 2", s.SitesTouched())
	}
	s.Record(0, false)
	if s.Covered() != 3 {
		t.Errorf("both directions of site 0 should count: %d", s.Covered())
	}
	if s.SitesTouched() != 2 {
		t.Errorf("sites touched = %d, want 2", s.SitesTouched())
	}
}

func TestFraction(t *testing.T) {
	s := New(2)
	s.Record(0, true)
	s.Record(0, false)
	if f := s.Fraction(); f != 0.5 {
		t.Errorf("fraction = %f, want 0.5", f)
	}
	s.Record(1, true)
	s.Record(1, false)
	if f := s.Fraction(); f != 1.0 {
		t.Errorf("fraction = %f, want 1.0", f)
	}
}
