package coverage

import (
	"strings"
	"testing"

	"dart/internal/token"
)

func TestEmpty(t *testing.T) {
	s := New(0)
	if s.Covered() != 0 || s.Total() != 0 || s.Fraction() != 0 {
		t.Fatalf("empty set: covered=%d total=%d frac=%f", s.Covered(), s.Total(), s.Fraction())
	}
}

func TestRecord(t *testing.T) {
	s := New(3)
	s.Record(0, true)
	s.Record(0, true) // duplicate: no double counting
	s.Record(1, false)
	if s.Covered() != 2 {
		t.Errorf("covered = %d, want 2", s.Covered())
	}
	if s.Total() != 6 {
		t.Errorf("total = %d, want 6", s.Total())
	}
	if s.SitesTouched() != 2 {
		t.Errorf("sites touched = %d, want 2", s.SitesTouched())
	}
	s.Record(0, false)
	if s.Covered() != 3 {
		t.Errorf("both directions of site 0 should count: %d", s.Covered())
	}
	if s.SitesTouched() != 2 {
		t.Errorf("sites touched = %d, want 2", s.SitesTouched())
	}
}

func TestFraction(t *testing.T) {
	s := New(2)
	s.Record(0, true)
	s.Record(0, false)
	if f := s.Fraction(); f != 0.5 {
		t.Errorf("fraction = %f, want 0.5", f)
	}
	s.Record(1, true)
	s.Record(1, false)
	if f := s.Fraction(); f != 1.0 {
		t.Errorf("fraction = %f, want 1.0", f)
	}
}

func TestRecordNegativeSiteIgnored(t *testing.T) {
	s := New(2)
	// Decision records (e.g. the random tester's driver choices) carry
	// Site == -1; they must not pollute branch coverage.
	s.Record(-1, true)
	s.Record(-1, false)
	if s.Covered() != 0 || s.SitesTouched() != 0 {
		t.Errorf("negative site recorded: covered=%d touched=%d", s.Covered(), s.SitesTouched())
	}
}

func TestMerge(t *testing.T) {
	a := New(3)
	a.Record(0, true)
	a.Record(1, false)
	b := New(3)
	b.Record(0, true) // overlap: no double counting
	b.Record(0, false)
	b.Record(2, true)
	a.Merge(b)
	if a.Covered() != 4 {
		t.Errorf("merged covered = %d, want 4", a.Covered())
	}
	if a.SitesTouched() != 3 {
		t.Errorf("merged sites touched = %d, want 3", a.SitesTouched())
	}
	if b.Covered() != 3 {
		t.Errorf("merge mutated the source set: %d", b.Covered())
	}
	a.Merge(nil) // no-op
	if a.Covered() != 4 {
		t.Errorf("nil merge changed the set: %d", a.Covered())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2)
	a.Record(0, true)
	c := a.Clone()
	c.Record(1, true)
	if a.Covered() != 1 {
		t.Errorf("clone wrote through to the original: %d", a.Covered())
	}
	if c.Covered() != 2 {
		t.Errorf("clone covered = %d, want 2", c.Covered())
	}
}

func TestSiteDirections(t *testing.T) {
	s := New(2)
	s.Record(0, true)
	if taken, notTaken := s.Site(0); !taken || notTaken {
		t.Errorf("site 0 = (%v,%v), want (true,false)", taken, notTaken)
	}
	if taken, notTaken := s.Site(1); taken || notTaken {
		t.Errorf("site 1 = (%v,%v), want (false,false)", taken, notTaken)
	}
}

// testSites lays two sites on lines 2 and 3 of a three-line program.
func testSites() []SiteInfo {
	return []SiteInfo{
		{Site: 0, Fn: "f", Pos: token.Pos{Line: 2, Col: 5}},
		{Site: 1, Fn: "f", Pos: token.Pos{Line: 3, Col: 5}},
	}
}

func TestAnnotateClasses(t *testing.T) {
	src := "int f(int x) {\nif (x) {\nif (x > 1) { }\n}\n}\n"
	set := New(2)
	set.Record(0, true)
	set.Record(0, false)
	set.Record(1, true)
	rep := Annotate(src, testSites(), set)
	if rep.Covered != 3 || rep.Total != 4 {
		t.Fatalf("covered=%d total=%d, want 3/4", rep.Covered, rep.Total)
	}
	if got := rep.LineClass(1); got != ClassPlain {
		t.Errorf("line 1 class %q, want plain", got)
	}
	if got := rep.LineClass(2); got != ClassFull {
		t.Errorf("line 2 class %q, want full", got)
	}
	if got := rep.LineClass(3); got != ClassPartial {
		t.Errorf("line 3 class %q, want partial", got)
	}
	empty := Annotate(src, testSites(), New(2))
	if got := empty.LineClass(2); got != ClassNone {
		t.Errorf("uncovered line class %q, want none", got)
	}
}

func TestReportText(t *testing.T) {
	src := "int f(int x) {\nif (x) {\nif (x > 1) { }\n}\n}\n"
	set := New(2)
	set.Record(0, true)
	set.Record(0, false)
	set.Record(1, true)
	text := Annotate(src, testSites(), set).Text()
	if !strings.Contains(text, "branch coverage 3/4 directions (75.0%)") {
		t.Errorf("missing summary header:\n%s", text)
	}
	if !strings.Contains(text, "++    2 |") {
		t.Errorf("line 2 gutter not ++:\n%s", text)
	}
	if !strings.Contains(text, "+-    3 |") {
		t.Errorf("line 3 gutter not +-:\n%s", text)
	}
	if !strings.Contains(text, "uncovered directions (1 sites)") ||
		!strings.Contains(text, "not-taken=MISSED") {
		t.Errorf("missed-directions table wrong:\n%s", text)
	}
}

func TestReportHTML(t *testing.T) {
	src := "int f(int x) {\nif (x < 1) { }\n}\n"
	sites := []SiteInfo{{Site: 0, Fn: "f", Pos: token.Pos{Line: 2, Col: 5}}}
	set := New(1)
	set.Record(0, true)
	page := string(Annotate(src, sites, set).HTML())
	if !strings.Contains(page, "<!DOCTYPE html>") {
		t.Errorf("not a standalone page:\n%s", page)
	}
	if !strings.Contains(page, `class="partial"`) {
		t.Errorf("line 2 not marked partial:\n%s", page)
	}
	if strings.Contains(page, "x < 1") || !strings.Contains(page, "x &lt; 1") {
		t.Errorf("source not HTML-escaped:\n%s", page)
	}
}
