package ir

import "testing"

// hashes compiles src and returns its per-function content hashes.
func hashes(t *testing.T, src string) map[string]string {
	t.Helper()
	return FuncHashes(compile(t, src))
}

const hashBase = `
int helper(int x) {
    if (x > 10) return x - 1;
    return x + 1;
}
int target(int a, int b) {
    if (a == 7) {
        if (b < 0) abort();
    }
    return helper(a);
}
int bystander(int n) {
    if (n == 3) return 99;
    return 0;
}
`

func TestFuncHashIgnoresTrivia(t *testing.T) {
	a := hashes(t, hashBase)
	// Same program, different positions for everything: leading blank
	// lines, comments, and re-indentation.
	b := hashes(t, `

// a comment shifting every token position

int helper(int x) {
        if (x > 10) return x - 1;
        return x + 1;
}

int target(int a, int b) {
    if (a == 7) { if (b < 0) abort(); }
    return helper(a);
}
int bystander(int n) { if (n == 3) return 99; return 0; }
`)
	for fn, h := range a {
		if b[fn] != h {
			t.Errorf("%s: hash changed on trivia-only edit:\n  %s\n  %s", fn, h, b[fn])
		}
	}
}

func TestFuncHashLocalSiteNormalization(t *testing.T) {
	a := hashes(t, hashBase)
	// Adding a conditional to helper shifts the program-wide site numbers
	// of every function compiled after it; target and bystander must not
	// notice through the site field (target still changes via callee
	// folding; bystander calls nothing and must be byte-stable).
	b := hashes(t, `
int helper(int x) {
    if (x > 100) return 0;
    if (x > 10) return x - 1;
    return x + 1;
}
int target(int a, int b) {
    if (a == 7) {
        if (b < 0) abort();
    }
    return helper(a);
}
int bystander(int n) {
    if (n == 3) return 99;
    return 0;
}
`)
	if a["helper"] == b["helper"] {
		t.Error("helper: hash unchanged after adding a conditional")
	}
	if a["bystander"] != b["bystander"] {
		t.Error("bystander: hash changed by an edit to an unrelated earlier function")
	}
}

func TestFuncHashFoldsCallees(t *testing.T) {
	a := hashes(t, hashBase)
	// Change only helper's body: target must change (it calls helper),
	// bystander must not.
	b := hashes(t, `
int helper(int x) {
    if (x > 10) return x - 2;
    return x + 1;
}
int target(int a, int b) {
    if (a == 7) {
        if (b < 0) abort();
    }
    return helper(a);
}
int bystander(int n) {
    if (n == 3) return 99;
    return 0;
}
`)
	if a["helper"] == b["helper"] {
		t.Error("helper: hash unchanged after body edit")
	}
	if a["target"] == b["target"] {
		t.Error("target: hash unchanged although its callee changed")
	}
	if a["bystander"] != b["bystander"] {
		t.Error("bystander: hash changed although nothing it reaches changed")
	}
}

func TestFuncHashEnvDigest(t *testing.T) {
	a := hashes(t, "int g = 1;\nint f(int x) { return x + g; }")
	b := hashes(t, "int g = 2;\nint f(int x) { return x + g; }")
	if a["f"] == b["f"] {
		t.Error("f: hash unchanged although a global initializer changed")
	}
}

func TestFuncHashRecursion(t *testing.T) {
	even := `
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
`
	a := hashes(t, even)
	// Editing one member of the cycle must change both (each folds the
	// other), and hashing must terminate despite the cycle.
	b := hashes(t, `
int isEven(int n) { if (n == 0) return 2; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
`)
	if a["isEven"] == b["isEven"] {
		t.Error("isEven: hash unchanged after its own edit")
	}
	if a["isOdd"] == b["isOdd"] {
		t.Error("isOdd: hash unchanged although its mutually recursive callee changed")
	}
	// Determinism: hashing the same program twice is byte-identical.
	c := hashes(t, even)
	for fn, h := range a {
		if c[fn] != h {
			t.Errorf("%s: hash not deterministic", fn)
		}
	}
}
