package ir

import (
	"strings"
	"testing"
)

func optimized(t *testing.T, src, fn string) *Func {
	t.Helper()
	prog := compile(t, src)
	Optimize(prog)
	f, ok := prog.Lookup(fn)
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	return f
}

func TestConstantFolding(t *testing.T) {
	f := optimized(t, `int f(int x) { return x + (2 * 3 + 4 - 1); }`, "f")
	out := Disasm(f)
	if !strings.Contains(out, "+ 9") {
		t.Errorf("constant expression not folded:\n%s", out)
	}
}

func TestIdentityFolding(t *testing.T) {
	cases := []struct{ src, wantAbsent string }{
		{`int f(int x) { return x + 0; }`, "+ 0"},
		{`int f(int x) { return x * 1; }`, "* 1"},
		{`int f(int x) { return 1 * x; }`, "1 *"},
		{`int f(int x) { return x - 0; }`, "- 0"},
	}
	for _, c := range cases {
		f := optimized(t, c.src, "f")
		if out := Disasm(f); strings.Contains(out, c.wantAbsent) {
			t.Errorf("%q: identity not folded:\n%s", c.src, out)
		}
	}
}

func TestMulZeroFolds(t *testing.T) {
	f := optimized(t, `int f(int x) { return x * 0; }`, "f")
	if out := Disasm(f); !strings.Contains(out, "ret 0") {
		t.Errorf("x*0 not folded to 0:\n%s", out)
	}
}

func TestDivByZeroPreserved(t *testing.T) {
	// 1/0 must NOT fold away: the runtime fault is observable behaviour.
	f := optimized(t, `int f() { return 1 / 0; }`, "f")
	if out := Disasm(f); !strings.Contains(out, "/") {
		t.Errorf("division by constant zero was folded away:\n%s", out)
	}
}

func TestConstantBranchElimination(t *testing.T) {
	f := optimized(t, `
int f(int x) {
    if (1) return x;
    return -1;
}
`, "f")
	for _, ins := range f.Code {
		if _, ok := ins.(*IfGoto); ok {
			t.Fatalf("constant conditional survived:\n%s", Disasm(f))
		}
	}
	// The dead return -1 must be gone.
	if out := Disasm(f); strings.Contains(out, "ret -1") {
		t.Errorf("unreachable code survived:\n%s", out)
	}
}

func TestFalseBranchElimination(t *testing.T) {
	f := optimized(t, `
int f(int x) {
    if (2 > 5) return -1;
    return x;
}
`, "f")
	for _, ins := range f.Code {
		if _, ok := ins.(*IfGoto); ok {
			t.Fatalf("constant conditional survived:\n%s", Disasm(f))
		}
	}
}

func TestSiteRenumbering(t *testing.T) {
	// Of the four source conditionals: if(0) folds away, x>2 survives,
	// if(1) folds to an unconditional return making x<-2 unreachable —
	// so exactly two sites remain, renumbered densely.
	prog := compile(t, `
int f(int x) {
    if (0) return 1;
    if (x > 2) return 2;
    if (x == 7) return 3;
    if (1) return 9;
    if (x < -2) return 4;
    return 0;
}
`)
	Optimize(prog)
	if prog.NumSites != 2 {
		t.Errorf("NumSites = %d, want 2 after folding", prog.NumSites)
	}
	sites := map[int]bool{}
	for _, ins := range prog.Funcs["f"].Code {
		if br, ok := ins.(*IfGoto); ok {
			sites[br.Site] = true
		}
	}
	if !sites[0] || !sites[1] || len(sites) != 2 {
		t.Errorf("sites not dense: %v", sites)
	}
}

func TestJumpTargetsValidAfterOpt(t *testing.T) {
	prog := compile(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 2) continue;
        if (1) s += i;
        if (0) s -= 100;
        s += 0;
    }
    while (0) { s = 9; }
    do { s += 1 * 1; } while (0 > 1);
    return s;
}
`)
	Optimize(prog)
	f := prog.Funcs["f"]
	for pc, ins := range f.Code {
		var target int
		switch ins := ins.(type) {
		case *Goto:
			target = ins.Target
		case *IfGoto:
			target = ins.Target
		default:
			continue
		}
		if target < 0 || target >= len(f.Code) {
			t.Fatalf("instruction %d jumps to %d (len %d):\n%s", pc, target, len(f.Code), Disasm(f))
		}
	}
}

func TestOptimizedCodeShrinks(t *testing.T) {
	src := `
int f(int x) {
    int a = 3 + 4;
    int b = a;
    if (1 == 1) {
        b = b + 0;
    } else {
        b = -999;
    }
    while (2 < 1) { b = 5; }
    return b * 1;
}
`
	prog := compile(t, src)
	before := len(prog.Funcs["f"].Code)
	Optimize(prog)
	after := len(prog.Funcs["f"].Code)
	if after >= before {
		t.Errorf("no shrinkage: %d -> %d\n%s", before, after, Disasm(prog.Funcs["f"]))
	}
}

func TestGotoChainThreaded(t *testing.T) {
	// Nested loops with breaks produce goto chains; after optimization
	// no goto may point at another goto.
	prog := compile(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (j > 3) break;
            s++;
        }
        if (s > 50) break;
    }
    return s;
}
`)
	Optimize(prog)
	f := prog.Funcs["f"]
	for pc, ins := range f.Code {
		if g, ok := ins.(*Goto); ok {
			if _, isGoto := f.Code[g.Target].(*Goto); isGoto {
				t.Errorf("instruction %d: goto-to-goto survived:\n%s", pc, Disasm(f))
			}
		}
	}
}
