// Content hashing of compiled functions: the identity layer of the
// incremental re-audit pipeline.
//
// A corpus entry must be keyed by what actually executes, not by where
// it happens to sit in a source file.  FuncHashes therefore renders each
// function into a canonical byte stream that excludes source positions
// entirely and normalizes the one piece of program-global state a
// function's instructions embed — the branch-site numbering, which is
// assigned program-wide in compilation order and therefore shifts for
// every function downstream of an edit — to function-local ordinals.
// Editing one function (or only its comments and whitespace) changes
// only that function's hash; every other entry in the corpus stays
// valid.
//
// Because a function's behavior also depends on what it calls and on
// the program environment (global layout and initializers, struct
// layouts, extern signatures, library signatures), the hash folds both
// in: an environment digest seeds every function's round-0 hash, and
// callee hashes are folded in by fixpoint iteration — len(funcs) rounds
// of h'(f) = H(h(f), h(callees...)) — which handles recursion and
// call-graph cycles the way partition refinement does.  Two functions
// get equal hashes only if their whole reachable behavior renders
// equally; a spurious "changed" verdict merely costs a re-search, while
// a spurious "unchanged" verdict would need a SHA-256 collision.
package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strconv"

	"dart/internal/types"
)

// hashFormatVersion is bumped whenever the rendering below changes
// meaning, so corpora written by older binaries can never alias.
const hashFormatVersion = "dart-ir-hash-v1"

// FuncHashes returns the content hash of every function in p, keyed by
// function name, as lowercase hex SHA-256 strings.
func FuncHashes(p *Prog) map[string]string {
	env := envDigest(p)

	// Round 0: each function's own structural rendering, seeded with the
	// format version and the environment digest.  Callee names are part
	// of the structural rendering (a retargeted call changes the caller
	// even before callee folding), and the callee list is collected for
	// the folding rounds.
	type fnState struct {
		sum     [sha256.Size]byte
		callees []string
	}
	states := make(map[string]*fnState, len(p.Funcs))
	for name, f := range p.Funcs {
		h := sha256.New()
		h.Write([]byte(hashFormatVersion))
		h.Write(env[:])
		r := renderer{h: h}
		r.fn(f)
		st := &fnState{callees: r.callees}
		h.Sum(st.sum[:0])
		states[name] = st
	}

	// Folding rounds: after k rounds a hash covers every call chain of
	// length <= k, so len(funcs) rounds cover every acyclic chain and
	// give every member of a call cycle a digest of the whole cycle.
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for round := 0; round < len(names); round++ {
		next := make(map[string][sha256.Size]byte, len(states))
		changed := false
		for _, name := range names {
			st := states[name]
			if len(st.callees) == 0 {
				next[name] = st.sum
				continue
			}
			h := sha256.New()
			h.Write(st.sum[:])
			for _, callee := range st.callees {
				if cs, ok := states[callee]; ok {
					h.Write(cs.sum[:])
				} else {
					// An undefined callee (lib/extern calls carry their
					// identity in the structural rendering already, and a
					// truly missing function is a frontend error): mix the
					// name so the state is still total.
					h.Write([]byte(callee))
				}
			}
			var sum [sha256.Size]byte
			h.Sum(sum[:0])
			if sum != st.sum {
				changed = true
			}
			next[name] = sum
		}
		for name, sum := range next {
			states[name].sum = sum
		}
		if !changed {
			break
		}
	}

	out := make(map[string]string, len(states))
	for name, st := range states {
		out[name] = hex.EncodeToString(st.sum[:])
	}
	return out
}

// envDigest hashes the program-level environment every function
// executes under: globals (layout, externness, initializers), struct
// layouts, extern-function signatures, and library signatures.  It
// deliberately excludes NumSites and FuncOrder — pure bookkeeping that
// shifts with unrelated edits.
func envDigest(p *Prog) [sha256.Size]byte {
	h := sha256.New()
	r := renderer{h: h}
	r.str("globals")
	r.num(int64(p.GlobalSize))
	for _, g := range p.Globals {
		r.str(g.Name)
		r.typ(g.Type)
		r.num(g.Off)
		r.bool(g.Extern)
		r.bool(g.HasInit)
		r.num(g.Init)
	}
	r.str("structs")
	for _, name := range sortedKeys(p.Structs) {
		s := p.Structs[name]
		r.str(name)
		r.bool(s.Complete)
		for _, f := range s.Fields {
			r.str(f.Name)
			r.typ(f.Type)
			r.num(f.Offset)
		}
	}
	r.str("externs")
	for _, name := range sortedKeys(p.Externs) {
		r.str(name)
		r.typ(p.Externs[name].Result)
	}
	r.str("lib")
	for _, name := range sortedKeys(p.Lib) {
		r.str(name)
		r.typ(p.Lib[name])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// renderer feeds a canonical, unambiguous byte rendering of IR into a
// hash.  Every string is length-prefixed and every number fixed-width,
// so distinct structures can never render to the same stream.
type renderer struct {
	h hash.Hash
	// callees collects program-function call targets in code order.
	callees []string
	// siteOrd maps this function's global branch-site numbers to local
	// ordinals (first appearance in code order).
	siteOrd map[int]int
	buf     [10]byte
}

func (r *renderer) str(s string) {
	binary.LittleEndian.PutUint32(r.buf[:4], uint32(len(s)))
	r.h.Write(r.buf[:4])
	r.h.Write([]byte(s))
}

func (r *renderer) num(v int64) {
	binary.LittleEndian.PutUint64(r.buf[:8], uint64(v))
	r.h.Write(r.buf[:8])
}

func (r *renderer) bool(b bool) {
	if b {
		r.h.Write([]byte{1})
	} else {
		r.h.Write([]byte{0})
	}
}

// typ renders a type.  Basic, pointer, and array types render
// structurally; named structs render by name (their layout lives in the
// environment digest, so a changed layout changes every function's
// hash through the seed instead).
func (r *renderer) typ(t types.Type) {
	if t == nil {
		r.str("<nil>")
		return
	}
	switch tt := t.(type) {
	case *types.Basic:
		if tt == nil {
			r.str("<nil>")
			return
		}
		r.str("b" + strconv.Itoa(int(tt.Kind)))
	case *types.Pointer:
		if tt == nil {
			r.str("<nil>")
			return
		}
		r.str("ptr")
		r.typ(tt.Elem)
	case *types.Struct:
		if tt == nil {
			r.str("<nil>")
			return
		}
		r.str("struct " + tt.Name)
	case *types.Array:
		if tt == nil {
			r.str("<nil>")
			return
		}
		r.str("arr" + strconv.FormatInt(tt.Len, 10))
		r.typ(tt.Elem)
	case *types.Func:
		if tt == nil {
			r.str("<nil>")
			return
		}
		r.str("fn")
		r.typ(tt.Result)
		r.num(int64(len(tt.Params)))
		for _, p := range tt.Params {
			r.typ(p)
		}
	default:
		// No further Type implementations exist; render the formatted
		// value so an unexpected one still hashes deterministically.
		r.str(fmt.Sprintf("%v", t))
	}
}

func (r *renderer) fn(f *Func) {
	r.str("func")
	r.str(f.Name)
	r.num(int64(len(f.Params)))
	for _, p := range f.Params {
		r.str(p.Name)
		r.typ(p.Type)
		r.num(p.Slot)
	}
	r.typ(f.Result)
	r.num(f.FrameSize)
	r.num(int64(len(f.Code)))
	for _, ins := range f.Code {
		r.instr(ins)
	}
}

// localSite maps a global branch-site number to this function's local
// ordinal: sites are numbered program-wide in compilation order, so the
// global number of every site in f shifts when an earlier function
// gains or loses a conditional — behavior-neutral for f itself.
func (r *renderer) localSite(site int) int {
	if site < 0 {
		return site
	}
	if r.siteOrd == nil {
		r.siteOrd = map[int]int{}
	}
	ord, ok := r.siteOrd[site]
	if !ok {
		ord = len(r.siteOrd)
		r.siteOrd[site] = ord
	}
	return ord
}

func (r *renderer) instr(ins Instr) {
	switch i := ins.(type) {
	case *Assign:
		r.str("assign")
		r.expr(i.Dst)
		r.expr(i.Src)
		r.typ(i.StoreTy)
	case *IfGoto:
		r.str("if")
		r.expr(i.Cond)
		r.num(int64(i.Target))
		r.num(int64(r.localSite(i.Site)))
	case *Goto:
		r.str("goto")
		r.num(int64(i.Target))
	case *Call:
		r.str("call")
		r.str(i.Fn)
		r.callees = append(r.callees, i.Fn)
		r.num(int64(len(i.Args)))
		for _, a := range i.Args {
			r.expr(a)
		}
		r.expr(i.Dst)
	case *CallExt:
		r.str("callext")
		r.str(i.Fn)
		r.typ(i.Result)
		r.expr(i.Dst)
	case *CallLib:
		r.str("calllib")
		r.str(i.Fn)
		r.num(int64(len(i.Args)))
		for _, a := range i.Args {
			r.expr(a)
		}
		r.expr(i.Dst)
	case *Ret:
		r.str("ret")
		r.expr(i.Val)
	case *Alloc:
		r.str("alloc")
		r.expr(i.Dst)
		r.expr(i.Size)
	case *Free:
		r.str("free")
		r.expr(i.Ptr)
	case *Abort:
		r.str("abort")
		r.str(i.Msg)
	case *Halt:
		r.str("halt")
	default:
		r.str(fmt.Sprintf("%T", ins))
	}
}

func (r *renderer) expr(e Expr) {
	if e == nil {
		r.str("<nil>")
		return
	}
	switch x := e.(type) {
	case *Const:
		r.str("c")
		r.num(x.V)
	case *FrameAddr:
		r.str("fa")
		r.num(x.Slot)
	case *GlobalAddr:
		r.str("ga")
		r.num(x.Off)
	case *Load:
		r.str("ld")
		r.expr(x.Addr)
	case *Bin:
		r.str("bin" + strconv.Itoa(int(x.Op)))
		r.expr(x.A)
		r.expr(x.B)
		r.typ(x.Ty)
	case *Un:
		r.str("un" + strconv.Itoa(int(x.Op)))
		r.expr(x.A)
		r.typ(x.Ty)
	default:
		r.str(fmt.Sprintf("%T", e))
	}
}
