package ir

import (
	"strings"
	"testing"

	"dart/internal/parser"
	"dart/internal/sema"
	"dart/internal/types"
)

func compile(t *testing.T, src string) *Prog {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lib := map[string]*types.Func{
		"mix": {Params: []types.Type{types.IntType, types.IntType}, Result: types.IntType},
	}
	sem, err := sema.Check(f, lib)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := Compile(sem)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func disasm(t *testing.T, src, fn string) string {
	t.Helper()
	prog := compile(t, src)
	f, ok := prog.Lookup(fn)
	if !ok {
		t.Fatalf("function %s not compiled", fn)
	}
	return Disasm(f)
}

func countInstr[T Instr](f *Func) int {
	n := 0
	for _, ins := range f.Code {
		if _, ok := ins.(T); ok {
			n++
		}
	}
	return n
}

func TestShortCircuitLowering(t *testing.T) {
	// Each atomic condition of && / || must become its own IfGoto so the
	// directed search records one stack entry per condition (Sec. 2.5).
	prog := compile(t, `
int f(int a, int b, int c) {
    if (a > 0 && b == 10) return 1;
    if (a < 0 || c != 2) return 2;
    return 3;
}
`)
	f, _ := prog.Lookup("f")
	if got := countInstr[*IfGoto](f); got != 4 {
		t.Errorf("IfGoto count = %d, want 4 (one per atomic condition)\n%s", got, Disasm(f))
	}
}

func TestLogicalValueLowering(t *testing.T) {
	// && in value position still branches (no bitwise evaluation).
	prog := compile(t, `int f(int a, int b) { int x = a && b; return x; }`)
	f, _ := prog.Lookup("f")
	if got := countInstr[*IfGoto](f); got != 2 {
		t.Errorf("IfGoto count = %d, want 2\n%s", got, Disasm(f))
	}
}

func TestBranchSitesUnique(t *testing.T) {
	prog := compile(t, `
int f(int a) { if (a) return 1; if (a > 2) return 2; return 0; }
int g(int b) { while (b > 0) b--; return b; }
`)
	seen := map[int]bool{}
	total := 0
	for _, name := range prog.FuncOrder {
		for _, ins := range prog.Funcs[name].Code {
			if br, ok := ins.(*IfGoto); ok {
				if seen[br.Site] {
					t.Errorf("site %d reused", br.Site)
				}
				seen[br.Site] = true
				total++
			}
		}
	}
	if total != prog.NumSites {
		t.Errorf("NumSites = %d, emitted %d", prog.NumSites, total)
	}
}

func TestPointerArithmeticScaling(t *testing.T) {
	// p + i over a struct of size 3 must scale i by 3.
	out := disasm(t, `
struct s { int a; int b; int c; };
struct s *f(struct s *p, int i) { return p + i; }
`, "f")
	if !strings.Contains(out, "* 3") {
		t.Errorf("no scaling by element size:\n%s", out)
	}
}

func TestPointerDifferenceDividesBySize(t *testing.T) {
	out := disasm(t, `
struct s { int a; int b; };
int f(struct s *p, struct s *q) { return p - q; }
`, "f")
	if !strings.Contains(out, "/ 2") {
		t.Errorf("pointer difference not divided by element size:\n%s", out)
	}
}

func TestFieldOffsets(t *testing.T) {
	// a->c at offset 1 compiles to an address +1 (the Sec. 2.5 layout).
	out := disasm(t, `
struct foo { int i; char c; };
int f(struct foo *a) { return a->c; }
`, "f")
	if !strings.Contains(out, "+ 1") {
		t.Errorf("field offset not applied:\n%s", out)
	}
}

func TestGlobalLayout(t *testing.T) {
	prog := compile(t, `
int a = 7;
int arr[3];
extern int e;
char c;
`)
	if prog.GlobalSize != 1+3+1+1 {
		t.Errorf("global size = %d", prog.GlobalSize)
	}
	offs := map[string]int64{}
	for _, g := range prog.Globals {
		offs[g.Name] = g.Off
	}
	if offs["a"] != 0 || offs["arr"] != 1 || offs["e"] != 4 || offs["c"] != 5 {
		t.Errorf("offsets: %v", offs)
	}
	if !prog.Globals[0].HasInit || prog.Globals[0].Init != 7 {
		t.Error("initializer lost")
	}
	if !prog.Globals[2].Extern {
		t.Error("extern flag lost")
	}
}

func TestCallKinds(t *testing.T) {
	prog := compile(t, `
extern int env();
int helper(int x) { return x; }
int f() { return helper(env()) + mix(1, 2); }
`)
	f, _ := prog.Lookup("f")
	if countInstr[*Call](f) != 1 {
		t.Errorf("program call count wrong\n%s", Disasm(f))
	}
	if countInstr[*CallExt](f) != 1 {
		t.Errorf("external call count wrong\n%s", Disasm(f))
	}
	if countInstr[*CallLib](f) != 1 {
		t.Errorf("library call count wrong\n%s", Disasm(f))
	}
	if _, ok := prog.Externs["env"]; !ok {
		t.Error("extern function not registered")
	}
}

func TestBuiltins(t *testing.T) {
	prog := compile(t, `
int f(int n) {
    char *p = malloc(n);
    if (p == NULL) abort();
    free(p);
    assert(n > 0, "positive");
    halt();
    return 0;
}
`)
	f, _ := prog.Lookup("f")
	if countInstr[*Alloc](f) != 1 || countInstr[*Free](f) != 1 ||
		countInstr[*Halt](f) != 1 {
		t.Errorf("builtin lowering wrong:\n%s", Disasm(f))
	}
	// abort() plus the assert failure arm.
	if countInstr[*Abort](f) != 2 {
		t.Errorf("abort count:\n%s", Disasm(f))
	}
}

func TestStructCopy(t *testing.T) {
	prog := compile(t, `
struct pair { int a; int b; };
int f(struct pair *p, struct pair *q) {
    *p = *q;
    return p->a;
}
`)
	f, _ := prog.Lookup("f")
	if got := countInstr[*Assign](f); got < 2 {
		t.Errorf("struct copy should expand to per-cell stores, got %d assigns\n%s", got, Disasm(f))
	}
}

func TestCharStoreTruncates(t *testing.T) {
	out := disasm(t, `int f(char *p) { *p = 300; return 0; }`, "f")
	if !strings.Contains(out, "store.char") {
		t.Errorf("char store lacks truncation:\n%s", out)
	}
}

func TestLabelsResolved(t *testing.T) {
	prog := compile(t, `
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    do { s--; } while (s > 100);
    return s;
}
`)
	f, _ := prog.Lookup("f")
	for pc, ins := range f.Code {
		var target int
		switch ins := ins.(type) {
		case *Goto:
			target = ins.Target
		case *IfGoto:
			target = ins.Target
		default:
			continue
		}
		if target < 0 || target >= len(f.Code) {
			t.Errorf("instruction %d jumps out of range to %d", pc, target)
		}
	}
}

func TestTernaryLowering(t *testing.T) {
	prog := compile(t, `int f(int a) { return a > 0 ? a : -a; }`)
	f, _ := prog.Lookup("f")
	if countInstr[*IfGoto](f) != 1 {
		t.Errorf("ternary should branch once:\n%s", Disasm(f))
	}
}

func TestFrameIncludesTemps(t *testing.T) {
	prog := compile(t, `
int g(int x) { return x; }
int f(int a) { return g(a) + g(a + 1); }
`)
	f, _ := prog.Lookup("f")
	// One param slot plus at least two call-result temporaries.
	if f.FrameSize < 3 {
		t.Errorf("frame size = %d, want >= 3", f.FrameSize)
	}
}

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{Eq: Ne, Ne: Eq, Lt: Ge, Le: Gt, Gt: Le, Ge: Lt}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("%v.Negate() = %v", op, op.Negate())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Negate of non-comparison should panic")
		}
	}()
	Add.Negate()
}
