package ir

import (
	"fmt"

	"dart/internal/ast"
	"dart/internal/sema"
	"dart/internal/token"
	"dart/internal/types"
)

// CompileError is an internal lowering failure. Programs that pass sema
// should never trigger one; it exists to fail loudly instead of producing
// wrong code.
type CompileError struct {
	Pos token.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Compile lowers a checked program to RAM-machine code.
func Compile(p *sema.Program) (*Prog, error) {
	out := &Prog{
		Funcs:   map[string]*Func{},
		Externs: map[string]*ExternFunc{},
		Structs: p.Structs,
		Lib:     p.Lib,
	}
	off := int64(0)
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, Global{
			Name:    g.Name,
			Type:    g.Type,
			Off:     off,
			Extern:  g.Extern,
			Init:    g.InitVal,
			HasInit: g.HasInit,
		})
		off += g.Type.Size()
	}
	out.GlobalSize = off

	var err error
	for _, name := range p.FuncOrder {
		fn := p.Funcs[name]
		if fn.Extern {
			out.Externs[name] = &ExternFunc{Name: name, Result: fn.Sig.Result}
			continue
		}
		c := &fnCompiler{prog: p, out: out, fn: fn, tempNext: fn.FrameSize}
		f, cerr := c.compile()
		if cerr != nil && err == nil {
			err = cerr
		}
		out.Funcs[name] = f
		out.FuncOrder = append(out.FuncOrder, name)
	}
	return out, err
}

type fnCompiler struct {
	prog *sema.Program
	out  *Prog
	fn   *sema.Function

	code     []Instr
	labels   []int // label id -> instr index (-1 while unbound)
	tempNext int64
	err      error

	// Loop context stacks for break/continue.
	breakLbl    []int
	continueLbl []int
}

func (c *fnCompiler) fail(pos token.Pos, format string, args ...any) {
	if c.err == nil {
		c.err = &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (c *fnCompiler) emit(i Instr) { c.code = append(c.code, i) }

func (c *fnCompiler) newLabel() int {
	c.labels = append(c.labels, -1)
	return len(c.labels) - 1
}

func (c *fnCompiler) bind(l int) { c.labels[l] = len(c.code) }

func (c *fnCompiler) temp() int64 {
	t := c.tempNext
	c.tempNext++
	return t
}

// newSite allocates a program-unique branch site id.
func (c *fnCompiler) newSite() int {
	s := c.out.NumSites
	c.out.NumSites++
	return s
}

func (c *fnCompiler) compile() (*Func, error) {
	var params []Param
	for _, p := range c.fn.Params {
		params = append(params, Param{Name: p.Name, Type: p.Type, Slot: p.Index})
	}
	c.stmt(c.fn.Decl.Body)
	// Implicit return at the end of the body.
	if types.IsVoid(c.fn.Sig.Result) {
		c.emit(&Ret{})
	} else {
		// C permits falling off the end; the value is unspecified — use 0.
		c.emit(&Ret{Val: &Const{V: 0}})
	}
	// Resolve label ids to instruction indices.
	for i, ins := range c.code {
		switch ins := ins.(type) {
		case *IfGoto:
			c.code[i] = &IfGoto{Cond: ins.Cond, Target: c.labels[ins.Target], Site: ins.Site, Pos: ins.Pos}
		case *Goto:
			c.code[i] = &Goto{Target: c.labels[ins.Target]}
		}
	}
	f := &Func{
		Name:      c.fn.Name,
		Params:    params,
		Result:    c.fn.Sig.Result,
		FrameSize: c.tempNext,
		Code:      c.code,
	}
	return f, c.err
}

// ---------------------------------------------------------------- stmts

func (c *fnCompiler) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, inner := range s.Stmts {
			c.stmt(inner)
		}
	case *ast.DeclStmt:
		if s.Init == nil {
			return
		}
		obj := c.prog.DeclObjs[s]
		c.assignTo(&FrameAddr{Slot: obj.Index}, obj.Type, s.Init, s.TokPos)
	case *ast.ExprStmt:
		c.exprForEffect(s.X)
	case *ast.If:
		thenL, elseL, endL := c.newLabel(), c.newLabel(), c.newLabel()
		c.cond(s.Cond, thenL, elseL)
		c.bind(thenL)
		c.stmt(s.Then)
		c.emit(&Goto{Target: endL})
		c.bind(elseL)
		if s.Else != nil {
			c.stmt(s.Else)
		}
		c.bind(endL)
	case *ast.While:
		loopL, bodyL, endL := c.newLabel(), c.newLabel(), c.newLabel()
		c.bind(loopL)
		c.cond(s.Cond, bodyL, endL)
		c.bind(bodyL)
		c.pushLoop(endL, loopL)
		c.stmt(s.Body)
		c.popLoop()
		c.emit(&Goto{Target: loopL})
		c.bind(endL)
	case *ast.DoWhile:
		bodyL, condL, endL := c.newLabel(), c.newLabel(), c.newLabel()
		c.bind(bodyL)
		c.pushLoop(endL, condL)
		c.stmt(s.Body)
		c.popLoop()
		c.bind(condL)
		c.cond(s.Cond, bodyL, endL)
		c.bind(endL)
	case *ast.For:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		loopL, bodyL, postL, endL := c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel()
		c.bind(loopL)
		if s.Cond != nil {
			c.cond(s.Cond, bodyL, endL)
		}
		c.bind(bodyL)
		c.pushLoop(endL, postL)
		c.stmt(s.Body)
		c.popLoop()
		c.bind(postL)
		if s.Post != nil {
			c.exprForEffect(s.Post)
		}
		c.emit(&Goto{Target: loopL})
		c.bind(endL)
	case *ast.Switch:
		c.switchStmt(s)
	case *ast.Return:
		if s.X == nil {
			c.emit(&Ret{Pos: s.TokPos})
			return
		}
		v := c.expr(s.X)
		c.emit(&Ret{Val: v, Pos: s.TokPos})
	case *ast.Break:
		c.emit(&Goto{Target: c.breakLbl[len(c.breakLbl)-1]})
	case *ast.Continue:
		c.emit(&Goto{Target: c.continueLbl[len(c.continueLbl)-1]})
	case *ast.Empty:
	default:
		c.fail(s.Pos(), "cannot compile statement %T", s)
	}
}

// switchStmt lowers a C switch: the tag is evaluated once into a
// temporary, each case label becomes one equality conditional (its own
// branch site, so the directed search solves tag == K per case), bodies
// run with fallthrough, and break jumps past the switch.
func (c *fnCompiler) switchStmt(s *ast.Switch) {
	tagTmp := &FrameAddr{Slot: c.temp()}
	c.emit(&Assign{Dst: tagTmp, Src: c.expr(s.Tag), Pos: s.TokPos})
	tag := &Load{Addr: tagTmp}

	endL := c.newLabel()
	bodyL := make([]int, len(s.Cases))
	defaultIdx := -1
	for i, cs := range s.Cases {
		bodyL[i] = c.newLabel()
		if cs.Value == nil {
			defaultIdx = i
		}
	}
	// Dispatch chain.
	for i, cs := range s.Cases {
		if cs.Value == nil {
			continue
		}
		cond := &Bin{Op: Eq, A: tag, B: c.expr(cs.Value)}
		c.emit(&IfGoto{Cond: cond, Target: bodyL[i], Site: c.newSite(), Pos: cs.TokPos})
	}
	if defaultIdx >= 0 {
		c.emit(&Goto{Target: bodyL[defaultIdx]})
	} else {
		c.emit(&Goto{Target: endL})
	}
	// Bodies, in source order, with C fallthrough; break leaves the
	// switch but continue still binds to the enclosing loop.
	c.breakLbl = append(c.breakLbl, endL)
	for i, cs := range s.Cases {
		c.bind(bodyL[i])
		for _, inner := range cs.Body {
			c.stmt(inner)
		}
	}
	c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
	c.bind(endL)
}

func (c *fnCompiler) pushLoop(brk, cont int) {
	c.breakLbl = append(c.breakLbl, brk)
	c.continueLbl = append(c.continueLbl, cont)
}

func (c *fnCompiler) popLoop() {
	c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
	c.continueLbl = c.continueLbl[:len(c.continueLbl)-1]
}

// assignTo stores the value of src through the address expression dst,
// handling whole-struct copies cell by cell.
func (c *fnCompiler) assignTo(dst Expr, dstTy types.Type, src ast.Expr, pos token.Pos) {
	if st, ok := dstTy.(*types.Struct); ok {
		srcAddr := c.addr(src)
		for i := int64(0); i < st.Size(); i++ {
			c.emit(&Assign{
				Dst: addOff(dst, i),
				Src: &Load{Addr: addOff(srcAddr, i)},
				Pos: pos,
			})
		}
		return
	}
	v := c.expr(src)
	c.emit(&Assign{Dst: dst, Src: v, StoreTy: storeTy(dstTy), Pos: pos})
}

// storeTy returns the truncation type for stores into a location of type
// t: char and int cells wrap, pointers and longs do not.
func storeTy(t types.Type) *types.Basic {
	if b, ok := t.(*types.Basic); ok {
		return b
	}
	return nil
}

// addOff builds addr + k, folding constants.
func addOff(addr Expr, k int64) Expr {
	if k == 0 {
		return addr
	}
	switch a := addr.(type) {
	case *Const:
		return &Const{V: a.V + k}
	case *FrameAddr:
		return &FrameAddr{Slot: a.Slot + k}
	case *GlobalAddr:
		return &GlobalAddr{Off: a.Off + k}
	}
	return &Bin{Op: Add, A: addr, B: &Const{V: k}}
}

// ---------------------------------------------------------------- conds

// cond compiles e as a branching condition: control transfers to thenL
// when e is true and elseL otherwise.  Short-circuit operators become
// separate conditionals, so each source-level atomic condition is exactly
// one DART branch site.
func (c *fnCompiler) cond(e ast.Expr, thenL, elseL int) {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case token.LAND:
			midL := c.newLabel()
			c.cond(x.X, midL, elseL)
			c.bind(midL)
			c.cond(x.Y, thenL, elseL)
			return
		case token.LOR:
			midL := c.newLabel()
			c.cond(x.X, thenL, midL)
			c.bind(midL)
			c.cond(x.Y, thenL, elseL)
			return
		}
	case *ast.Unary:
		if x.Op == token.NOT {
			c.cond(x.X, elseL, thenL)
			return
		}
	}
	v := c.expr(e)
	c.emit(&IfGoto{Cond: v, Target: thenL, Site: c.newSite(), Pos: e.Pos()})
	c.emit(&Goto{Target: elseL})
}

// ---------------------------------------------------------------- exprs

// exprForEffect compiles e, discarding its value.
func (c *fnCompiler) exprForEffect(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Call:
		c.call(x, false)
		return
	case *ast.Assign, *ast.Postfix:
		c.expr(e)
		return
	case *ast.Unary:
		if x.Op == token.INC || x.Op == token.DEC {
			c.expr(e)
			return
		}
	}
	// Pure expression in statement position: evaluate anyway so that
	// faults (NULL dereference, division by zero) still occur, matching C.
	v := c.expr(e)
	if _, isConst := v.(*Const); !isConst {
		t := c.temp()
		c.emit(&Assign{Dst: &FrameAddr{Slot: t}, Src: v, Pos: e.Pos()})
	}
}

// expr compiles e to a side-effect-free value expression, emitting
// instructions for any embedded side effects.
func (c *fnCompiler) expr(e ast.Expr) Expr {
	switch x := e.(type) {
	case *ast.IntLit:
		return &Const{V: x.Value}
	case *ast.NullLit:
		return &Const{V: 0}
	case *ast.StringLit:
		// Only reachable for assert messages, which the call lowering
		// consumes; anything else was rejected by sema.
		return &Const{V: 0}
	case *ast.Ident:
		obj := c.prog.Uses[x]
		if obj == nil {
			c.fail(x.TokPos, "unresolved identifier %s", x.Name)
			return &Const{V: 0}
		}
		a := c.objAddr(obj)
		if _, isArr := obj.Type.(*types.Array); isArr {
			return a // arrays decay to their address
		}
		return &Load{Addr: a}
	case *ast.Unary:
		return c.unary(x)
	case *ast.Postfix:
		a := c.addr(x.X)
		t := c.temp()
		old := &FrameAddr{Slot: t}
		c.emit(&Assign{Dst: old, Src: &Load{Addr: a}, Pos: x.TokPos})
		c.emit(&Assign{
			Dst:     a,
			Src:     c.incDec(x.Op, &Load{Addr: old}, x.X.Type(), x.TokPos),
			StoreTy: storeTy(decayed(x.X.Type())),
			Pos:     x.TokPos,
		})
		return &Load{Addr: old}
	case *ast.Binary:
		return c.binary(x)
	case *ast.Assign:
		return c.assignExpr(x)
	case *ast.Cond:
		t := c.temp()
		dst := &FrameAddr{Slot: t}
		thenL, elseL, endL := c.newLabel(), c.newLabel(), c.newLabel()
		c.cond(x.C, thenL, elseL)
		c.bind(thenL)
		c.emit(&Assign{Dst: dst, Src: c.expr(x.Then), Pos: x.TokPos})
		c.emit(&Goto{Target: endL})
		c.bind(elseL)
		c.emit(&Assign{Dst: dst, Src: c.expr(x.Else), Pos: x.TokPos})
		c.bind(endL)
		return &Load{Addr: dst}
	case *ast.Call:
		return c.call(x, true)
	case *ast.Index, *ast.Field:
		a := c.addr(e)
		if _, isArr := e.Type().(*types.Array); isArr {
			return a
		}
		if _, isStruct := e.Type().(*types.Struct); isStruct {
			return a // struct rvalues are handled by assignTo via addr
		}
		return &Load{Addr: a}
	case *ast.Cast:
		v := c.expr(x.X)
		if b, ok := x.Type().(*types.Basic); ok && b.Kind != types.Void {
			return &Un{Op: Conv, A: v, Ty: b}
		}
		return v
	case *ast.SizeofType:
		return &Const{V: x.Resolved.Size()}
	case *ast.SizeofExpr:
		return &Const{V: x.X.Type().Size()}
	}
	c.fail(e.Pos(), "cannot compile expression %T", e)
	return &Const{V: 0}
}

func decayed(t types.Type) types.Type {
	if a, ok := t.(*types.Array); ok {
		return &types.Pointer{Elem: a.Elem}
	}
	return t
}

// incDec builds v+1 or v-1 with pointer scaling.
func (c *fnCompiler) incDec(op token.Kind, v Expr, t types.Type, pos token.Pos) Expr {
	step := int64(1)
	if p, ok := decayed(t).(*types.Pointer); ok {
		step = p.Elem.Size()
	}
	o := Add
	if op == token.DEC {
		o = Sub
	}
	var ty *types.Basic
	if b, ok := decayed(t).(*types.Basic); ok {
		ty = b
	}
	return &Bin{Op: o, A: v, B: &Const{V: step}, Ty: ty}
}

func (c *fnCompiler) unary(x *ast.Unary) Expr {
	switch x.Op {
	case token.MINUS:
		return &Un{Op: Neg, A: c.expr(x.X), Ty: basicOf(x.Type())}
	case token.TILDE:
		return &Un{Op: Compl, A: c.expr(x.X), Ty: basicOf(x.Type())}
	case token.NOT:
		return &Un{Op: Not, A: c.expr(x.X)}
	case token.STAR:
		return &Load{Addr: c.expr(x.X)}
	case token.AMP:
		return c.addr(x.X)
	case token.INC, token.DEC:
		a := c.addr(x.X)
		c.emit(&Assign{
			Dst:     a,
			Src:     c.incDec(x.Op, &Load{Addr: a}, x.X.Type(), x.TokPos),
			StoreTy: storeTy(decayed(x.X.Type())),
			Pos:     x.TokPos,
		})
		return &Load{Addr: a}
	}
	c.fail(x.TokPos, "cannot compile unary %s", x.Op)
	return &Const{V: 0}
}

func basicOf(t types.Type) *types.Basic {
	b, _ := t.(*types.Basic)
	return b
}

var binOps = map[token.Kind]Op{
	token.PLUS: Add, token.MINUS: Sub, token.STAR: Mul,
	token.SLASH: Div, token.PERCENT: Mod,
	token.AMP: And, token.PIPE: Or, token.CARET: Xor,
	token.SHL: Shl, token.SHR: Shr,
	token.EQ: Eq, token.NEQ: Ne, token.LT: Lt, token.GT: Gt,
	token.LEQ: Le, token.GEQ: Ge,
}

func (c *fnCompiler) binary(x *ast.Binary) Expr {
	switch x.Op {
	case token.LAND, token.LOR:
		// Value context: materialize 0/1 through branches, preserving
		// one branch site per atomic condition.
		t := c.temp()
		dst := &FrameAddr{Slot: t}
		thenL, elseL, endL := c.newLabel(), c.newLabel(), c.newLabel()
		c.cond(x, thenL, elseL)
		c.bind(thenL)
		c.emit(&Assign{Dst: dst, Src: &Const{V: 1}, Pos: x.TokPos})
		c.emit(&Goto{Target: endL})
		c.bind(elseL)
		c.emit(&Assign{Dst: dst, Src: &Const{V: 0}, Pos: x.TokPos})
		c.bind(endL)
		return &Load{Addr: dst}
	}
	op, ok := binOps[x.Op]
	if !ok {
		c.fail(x.TokPos, "cannot compile binary %s", x.Op)
		return &Const{V: 0}
	}
	a := c.expr(x.X)
	b := c.expr(x.Y)
	xt, yt := decayed(x.X.Type()), decayed(x.Y.Type())
	// Pointer arithmetic scales the integer operand by the element size.
	if op == Add || op == Sub {
		if p, isP := xt.(*types.Pointer); isP && types.IsInteger(yt) {
			return &Bin{Op: op, A: a, B: scale(b, p.Elem.Size())}
		}
		if p, isP := yt.(*types.Pointer); isP && types.IsInteger(xt) && op == Add {
			return &Bin{Op: op, A: scale(a, p.Elem.Size()), B: b}
		}
		if px, isPX := xt.(*types.Pointer); isPX && types.IsPointer(yt) && op == Sub {
			diff := &Bin{Op: Sub, A: a, B: b}
			if sz := px.Elem.Size(); sz > 1 {
				return &Bin{Op: Div, A: diff, B: &Const{V: sz}}
			}
			return diff
		}
	}
	return &Bin{Op: op, A: a, B: b, Ty: basicOf(x.Type())}
}

func scale(e Expr, size int64) Expr {
	if size == 1 {
		return e
	}
	if k, ok := e.(*Const); ok {
		return &Const{V: k.V * size}
	}
	return &Bin{Op: Mul, A: e, B: &Const{V: size}}
}

func (c *fnCompiler) assignExpr(x *ast.Assign) Expr {
	dst := c.addr(x.Lhs)
	lt := decayed(x.Lhs.Type())
	if x.Op == token.ASSIGN {
		if _, isStruct := x.Lhs.Type().(*types.Struct); isStruct {
			c.assignTo(dst, x.Lhs.Type(), x.Rhs, x.TokPos)
			return dst
		}
		v := c.expr(x.Rhs)
		c.emit(&Assign{Dst: dst, Src: v, StoreTy: storeTy(lt), Pos: x.TokPos})
		return &Load{Addr: dst}
	}
	// Compound assignment: lhs = lhs op rhs, with pointer scaling on +=/-=.
	var op Op
	switch x.Op {
	case token.PLUSEQ:
		op = Add
	case token.MINUSEQ:
		op = Sub
	case token.STAREQ:
		op = Mul
	case token.SLASHEQ:
		op = Div
	default:
		c.fail(x.TokPos, "cannot compile assignment %s", x.Op)
		return &Const{V: 0}
	}
	rhs := c.expr(x.Rhs)
	if p, isP := lt.(*types.Pointer); isP && (op == Add || op == Sub) {
		rhs = scale(rhs, p.Elem.Size())
	}
	c.emit(&Assign{
		Dst:     dst,
		Src:     &Bin{Op: op, A: &Load{Addr: dst}, B: rhs, Ty: basicOf(lt)},
		StoreTy: storeTy(lt),
		Pos:     x.TokPos,
	})
	return &Load{Addr: dst}
}

// ---------------------------------------------------------------- calls

// call compiles a function call.  When wantValue is true the result is a
// Load of the temporary that received the return value.
func (c *fnCompiler) call(x *ast.Call, wantValue bool) Expr {
	switch x.Fun {
	case "abort":
		c.emit(&Abort{Msg: "abort() called", Pos: x.TokPos})
		return &Const{V: 0}
	case "halt":
		c.emit(&Halt{})
		return &Const{V: 0}
	case "assert":
		msg := "assertion violated"
		if len(x.Args) == 2 {
			if s, ok := x.Args[1].(*ast.StringLit); ok {
				msg = "assertion violated: " + s.Value
			}
		}
		okL, failL := c.newLabel(), c.newLabel()
		c.cond(x.Args[0], okL, failL)
		c.bind(failL)
		c.emit(&Abort{Msg: msg, Pos: x.TokPos})
		c.bind(okL)
		return &Const{V: 0}
	case "malloc":
		size := c.expr(x.Args[0])
		t := c.temp()
		dst := &FrameAddr{Slot: t}
		c.emit(&Alloc{Dst: dst, Size: size, Pos: x.TokPos})
		return &Load{Addr: dst}
	case "free":
		p := c.expr(x.Args[0])
		c.emit(&Free{Ptr: p, Pos: x.TokPos})
		return &Const{V: 0}
	}

	var args []Expr
	for _, a := range x.Args {
		args = append(args, c.expr(a))
	}
	var dst Expr
	needsDst := wantValue && !types.IsVoid(x.Type())
	if needsDst {
		dst = &FrameAddr{Slot: c.temp()}
	}
	if fn, ok := c.prog.Funcs[x.Fun]; ok {
		if fn.Extern {
			c.emit(&CallExt{Fn: x.Fun, Result: fn.Sig.Result, Dst: dst, Pos: x.TokPos})
		} else {
			c.emit(&Call{Fn: x.Fun, Args: args, Dst: dst, Pos: x.TokPos})
		}
	} else if _, ok := c.prog.Lib[x.Fun]; ok {
		c.emit(&CallLib{Fn: x.Fun, Args: args, Dst: dst, Pos: x.TokPos})
	} else {
		c.fail(x.TokPos, "call to unknown function %s", x.Fun)
	}
	if needsDst {
		return &Load{Addr: dst}
	}
	return &Const{V: 0}
}

// ---------------------------------------------------------------- addrs

// objAddr returns the address expression of a resolved object.
func (c *fnCompiler) objAddr(obj *sema.Object) Expr {
	if obj.Kind == sema.GlobalObj {
		g := c.out.Globals[obj.Index]
		return &GlobalAddr{Off: g.Off}
	}
	return &FrameAddr{Slot: obj.Index}
}

// addr compiles an lvalue (or array/struct expression) to its address.
func (c *fnCompiler) addr(e ast.Expr) Expr {
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.prog.Uses[x]
		if obj == nil {
			c.fail(x.TokPos, "unresolved identifier %s", x.Name)
			return &Const{V: 0}
		}
		return c.objAddr(obj)
	case *ast.Unary:
		if x.Op == token.STAR {
			return c.expr(x.X)
		}
	case *ast.Index:
		var base Expr
		if _, isArr := x.X.Type().(*types.Array); isArr {
			base = c.addr(x.X)
		} else {
			base = c.expr(x.X)
		}
		elemSize := decayed(x.X.Type()).(*types.Pointer).Elem.Size()
		idx := c.expr(x.I)
		return &Bin{Op: Add, A: base, B: scale(idx, elemSize)}
	case *ast.Field:
		var base Expr
		var st *types.Struct
		if x.Arrow {
			base = c.expr(x.X)
			st = decayed(x.X.Type()).(*types.Pointer).Elem.(*types.Struct)
		} else {
			base = c.addr(x.X)
			st = x.X.Type().(*types.Struct)
		}
		f, _ := st.FieldByName(x.Name)
		return addOff(base, f.Offset)
	case *ast.Cast:
		// Address of a cast lvalue: not an lvalue in C, but the address
		// path is also used for struct rvalues; fall through to error.
	}
	c.fail(e.Pos(), "expression %T is not addressable", e)
	return &Const{V: 0}
}
