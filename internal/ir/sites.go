package ir

// FuncSites returns, for every function, the global numbers of its
// conditional branch sites in first-appearance code order.  A site's
// index in the slice is its function-local ordinal — the same ordinal
// FuncHashes renders — so (function, ordinal) identifies a branch site
// stably across recompilations that shift the program-global numbering
// (the corpus stores coverage in exactly that form).
func FuncSites(p *Prog) map[string][]int {
	out := make(map[string][]int, len(p.Funcs))
	for name, f := range p.Funcs {
		var sites []int
		var seen map[int]bool
		for _, ins := range f.Code {
			br, ok := ins.(*IfGoto)
			if !ok || br.Site < 0 {
				continue
			}
			if seen == nil {
				seen = map[int]bool{}
			}
			if seen[br.Site] {
				continue
			}
			seen[br.Site] = true
			sites = append(sites, br.Site)
		}
		out[name] = sites
	}
	return out
}
