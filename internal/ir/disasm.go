package ir

import (
	"fmt"
	"strings"
)

// Disasm renders a function's code as readable assembly-like text.
func Disasm(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (frame=%d)\n", f.Name, f.FrameSize)
	for i, ins := range f.Code {
		fmt.Fprintf(&b, "%4d: %s\n", i, InstrString(ins))
	}
	return b.String()
}

// DisasmProg renders every function in the program.
func DisasmProg(p *Prog) string {
	var b strings.Builder
	for _, name := range p.FuncOrder {
		b.WriteString(Disasm(p.Funcs[name]))
	}
	return b.String()
}

// InstrString renders one instruction.
func InstrString(ins Instr) string {
	switch ins := ins.(type) {
	case *Assign:
		suffix := ""
		if ins.StoreTy != nil {
			suffix = "." + ins.StoreTy.String()
		}
		return fmt.Sprintf("store%s [%s] <- %s", suffix, ExprString(ins.Dst), ExprString(ins.Src))
	case *IfGoto:
		return fmt.Sprintf("if %s goto %d  ; site %d", ExprString(ins.Cond), ins.Target, ins.Site)
	case *Goto:
		return fmt.Sprintf("goto %d", ins.Target)
	case *Call:
		return fmt.Sprintf("call %s(%s) -> %s", ins.Fn, exprList(ins.Args), dstString(ins.Dst))
	case *CallExt:
		return fmt.Sprintf("callext %s() -> %s", ins.Fn, dstString(ins.Dst))
	case *CallLib:
		return fmt.Sprintf("calllib %s(%s) -> %s", ins.Fn, exprList(ins.Args), dstString(ins.Dst))
	case *Ret:
		if ins.Val == nil {
			return "ret"
		}
		return "ret " + ExprString(ins.Val)
	case *Alloc:
		return fmt.Sprintf("alloc [%s] <- new(%s)", ExprString(ins.Dst), ExprString(ins.Size))
	case *Free:
		return "free " + ExprString(ins.Ptr)
	case *Abort:
		return fmt.Sprintf("abort %q", ins.Msg)
	case *Halt:
		return "halt"
	}
	return fmt.Sprintf("?%T", ins)
}

func dstString(e Expr) string {
	if e == nil {
		return "_"
	}
	return "[" + ExprString(e) + "]"
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders one IR expression.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Const:
		return fmt.Sprintf("%d", e.V)
	case *FrameAddr:
		return fmt.Sprintf("fp+%d", e.Slot)
	case *GlobalAddr:
		return fmt.Sprintf("gp+%d", e.Off)
	case *Load:
		return "M[" + ExprString(e.Addr) + "]"
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.A), e.Op, ExprString(e.B))
	case *Un:
		if e.Op == Conv {
			return fmt.Sprintf("(%s)%s", e.Ty, ExprString(e.A))
		}
		return fmt.Sprintf("%s(%s)", e.Op, ExprString(e.A))
	}
	return fmt.Sprintf("?%T", e)
}
