// Package ir defines the RAM-machine intermediate representation of
// Sec. 2.2 of the DART paper and the compiler from checked MiniC to it.
//
// A compiled function is a flat list of labeled statements.  Following the
// paper, the only statement forms that matter to the concolic engine are
// assignments (m <- e) and conditionals (if (e) then goto l'); the
// remaining forms (calls, returns, allocation, abort, halt) are the
// machine plumbing the paper leaves implicit.  Expressions are
// side-effect-free trees; the frontend flattens side effects and lowers
// short-circuit operators to control flow, so every source-level
// condition becomes exactly one IfGoto whose outcome DART records on its
// branch stack.
package ir

import (
	"dart/internal/token"
	"dart/internal/types"
)

// Op enumerates IR operators.
type Op int

// Binary and unary operators.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	Neg   // arithmetic negation
	Not   // logical negation (x == 0)
	Compl // bitwise complement
	Conv  // value conversion to Ty's width (explicit casts)
)

var opNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Neg: "neg", Not: "!", Compl: "~", Conv: "conv",
}

func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a 0/1 truth value.
func (o Op) IsComparison() bool { return o >= Eq && o <= Ge }

// Negate returns the complementary comparison.
func (o Op) Negate() Op {
	switch o {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic("ir: Negate of non-comparison " + o.String())
}

// ---------------------------------------------------------------- exprs

// Expr is a side-effect-free IR expression.
type Expr interface{ expr() }

// Const is an integer constant (also used for absolute addresses).
type Const struct{ V int64 }

// FrameAddr evaluates to the address of the current frame's slot:
// frameBase + Slot.  It is an address value, not a load.
type FrameAddr struct{ Slot int64 }

// GlobalAddr evaluates to the address of a global cell: globalBase + Off.
type GlobalAddr struct{ Off int64 }

// Load reads the memory cell at Addr.
type Load struct{ Addr Expr }

// Bin applies a binary operator.  Ty, when non-nil, gives the basic type
// whose width the result is wrapped to (C modular arithmetic); a nil Ty
// means full 64-bit evaluation (address arithmetic).
type Bin struct {
	Op   Op
	A, B Expr
	Ty   *types.Basic
}

// Un applies a unary operator, with the same wrapping convention.
type Un struct {
	Op Op
	A  Expr
	Ty *types.Basic
}

func (*Const) expr()      {}
func (*FrameAddr) expr()  {}
func (*GlobalAddr) expr() {}
func (*Load) expr()       {}
func (*Bin) expr()        {}
func (*Un) expr()         {}

// ---------------------------------------------------------------- instrs

// Instr is a RAM-machine statement.
type Instr interface{ instr() }

// Assign stores Src into the cell addressed by Dst, truncating the stored
// value to StoreTy's width when StoreTy is non-nil (char/int stores).
type Assign struct {
	Dst     Expr
	Src     Expr
	StoreTy *types.Basic
	Pos     token.Pos
}

// IfGoto jumps to Target when Cond is non-zero; execution otherwise falls
// through.  Site is the program-unique branch site identifier used by the
// branch-coverage accounting and the directed search's stack records.
type IfGoto struct {
	Cond   Expr
	Target int
	Site   int
	Pos    token.Pos
}

// Goto is an unconditional jump.
type Goto struct{ Target int }

// Call invokes a program function.  Args are evaluated in the caller's
// frame; the scalar result, if the callee returns one and Dst is non-nil,
// is stored through Dst (always a FrameAddr temporary).
type Call struct {
	Fn   string
	Args []Expr
	Dst  Expr // nil for void calls or discarded results
	Pos  token.Pos
}

// CallExt invokes an external (environment-controlled) function: the
// machine produces a fresh program input of the result type (Sec. 3.2's
// simulated external functions).
type CallExt struct {
	Fn     string
	Result types.Type
	Dst    Expr // nil when the result is discarded
	Pos    token.Pos
}

// CallLib invokes a host-implemented library function: a deterministic
// black box executed concretely (Sec. 3.1, "library functions").
type CallLib struct {
	Fn   string
	Args []Expr
	Dst  Expr
	Pos  token.Pos
}

// Ret returns from the current function with an optional value.
type Ret struct {
	Val Expr // nil for void returns
	Pos token.Pos
}

// Alloc implements malloc: a fresh heap region of Size cells; its address
// is stored through Dst.
type Alloc struct {
	Dst  Expr
	Size Expr
	Pos  token.Pos
}

// Free releases a heap region (advisory; the machine checks double-free).
type Free struct {
	Ptr Expr
	Pos token.Pos
}

// Abort terminates execution with a program error (the paper's abort).
type Abort struct {
	Msg string
	Pos token.Pos
}

// Halt terminates execution normally.
type Halt struct{}

func (*Assign) instr()  {}
func (*IfGoto) instr()  {}
func (*Goto) instr()    {}
func (*Call) instr()    {}
func (*CallExt) instr() {}
func (*CallLib) instr() {}
func (*Ret) instr()     {}
func (*Alloc) instr()   {}
func (*Free) instr()    {}
func (*Abort) instr()   {}
func (*Halt) instr()    {}

// ---------------------------------------------------------------- prog

// Param describes one function parameter's frame slot.
type Param struct {
	Name string
	Type types.Type
	Slot int64
}

// Func is a compiled function.
type Func struct {
	Name   string
	Params []Param
	Result types.Type
	// FrameSize is the number of frame cells including compiler temps.
	FrameSize int64
	Code      []Instr
}

// ExternFunc describes an external (environment) function interface.
type ExternFunc struct {
	Name   string
	Result types.Type
}

// Global describes one global variable's storage.
type Global struct {
	Name   string
	Type   types.Type
	Off    int64 // cell offset within the global region
	Extern bool  // environment-controlled (program input)
	Init   int64 // constant initial value for scalar globals
	// HasInit distinguishes "= 0" from "uninitialized".
	HasInit bool
}

// Prog is a compiled MiniC program.
type Prog struct {
	Funcs      map[string]*Func
	FuncOrder  []string
	Externs    map[string]*ExternFunc
	Globals    []Global
	GlobalSize int64
	// NumSites is the total number of conditional branch sites.
	NumSites int
	// Structs preserves layout info for the random initializer.
	Structs map[string]*types.Struct
	// Lib records the library functions the program references.
	Lib map[string]*types.Func
}

// Lookup returns the named function.
func (p *Prog) Lookup(name string) (*Func, bool) {
	f, ok := p.Funcs[name]
	return f, ok
}
