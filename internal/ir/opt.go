package ir

import "dart/internal/types"

// Optimize performs conservative RAM-machine optimizations on every
// function: constant folding (with C's wrapping semantics, so folding
// cannot change observable behaviour), algebraic identities, folding of
// constant conditionals, jump threading, and unreachable-code removal.
// Branch sites are renumbered densely afterwards so coverage totals
// reflect the branches that still exist.
//
// Optimization helps the directed search twice over: constant branches
// disappear instead of wasting stack entries the search can never flip,
// and shorter straight-line code cuts per-run interpretation cost.
func Optimize(p *Prog) {
	for _, name := range p.FuncOrder {
		f := p.Funcs[name]
		optimizeFunc(f)
	}
	renumberSites(p)
}

func optimizeFunc(f *Func) {
	for _, ins := range f.Code {
		foldInstr(ins)
	}
	foldBranches(f)
	threadJumps(f)
	removeUnreachable(f)
}

// ---------------------------------------------------------------- fold

// foldInstr folds the expressions of one instruction in place.
func foldInstr(ins Instr) {
	switch ins := ins.(type) {
	case *Assign:
		ins.Dst = foldExpr(ins.Dst)
		ins.Src = foldExpr(ins.Src)
	case *IfGoto:
		ins.Cond = foldExpr(ins.Cond)
	case *Call:
		for i := range ins.Args {
			ins.Args[i] = foldExpr(ins.Args[i])
		}
		if ins.Dst != nil {
			ins.Dst = foldExpr(ins.Dst)
		}
	case *CallLib:
		for i := range ins.Args {
			ins.Args[i] = foldExpr(ins.Args[i])
		}
		if ins.Dst != nil {
			ins.Dst = foldExpr(ins.Dst)
		}
	case *CallExt:
		if ins.Dst != nil {
			ins.Dst = foldExpr(ins.Dst)
		}
	case *Ret:
		if ins.Val != nil {
			ins.Val = foldExpr(ins.Val)
		}
	case *Alloc:
		ins.Dst = foldExpr(ins.Dst)
		ins.Size = foldExpr(ins.Size)
	case *Free:
		ins.Ptr = foldExpr(ins.Ptr)
	}
}

// foldExpr folds constants bottom-up.  Division and modulus by a
// constant zero are left unfolded so the runtime fault still occurs.
func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Load:
		e.Addr = foldExpr(e.Addr)
		return e
	case *Un:
		e.A = foldExpr(e.A)
		a, ok := e.A.(*Const)
		if !ok {
			return e
		}
		var v int64
		switch e.Op {
		case Neg:
			v = -a.V
		case Not:
			if a.V == 0 {
				v = 1
			}
		case Compl:
			v = ^a.V
		case Conv:
			v = a.V
		default:
			return e
		}
		return &Const{V: wrap(v, e.Ty)}
	case *Bin:
		e.A = foldExpr(e.A)
		e.B = foldExpr(e.B)
		a, aok := e.A.(*Const)
		b, bok := e.B.(*Const)
		if aok && bok {
			if (e.Op == Div || e.Op == Mod) && b.V == 0 {
				return e // preserve the runtime fault
			}
			v, err := applyConstBin(e.Op, a.V, b.V)
			if err != nil {
				return e
			}
			if !e.Op.IsComparison() {
				v = wrap(v, e.Ty)
			}
			return &Const{V: v}
		}
		return foldIdentity(e, a, aok, b, bok)
	}
	return e
}

// foldIdentity applies x+0, 0+x, x-0, x*1, 1*x, x*0, 0*x, x<<0, x|0,
// x&0 style identities.  Multiplication by zero is safe because IR
// expressions are side-effect-free.
func foldIdentity(e *Bin, a *Const, aok bool, b *Const, bok bool) Expr {
	switch e.Op {
	case Add:
		if bok && b.V == 0 {
			return e.A
		}
		if aok && a.V == 0 {
			return e.B
		}
	case Sub:
		if bok && b.V == 0 {
			return e.A
		}
	case Mul:
		if bok && b.V == 1 {
			return e.A
		}
		if aok && a.V == 1 {
			return e.B
		}
		if (bok && b.V == 0) || (aok && a.V == 0) {
			return &Const{V: 0}
		}
	case Shl, Shr:
		if bok && b.V == 0 {
			return e.A
		}
	case Or, Xor:
		if bok && b.V == 0 {
			return e.A
		}
		if aok && a.V == 0 {
			return e.B
		}
	case And:
		if (bok && b.V == 0) || (aok && a.V == 0) {
			return &Const{V: 0}
		}
	case Div:
		if bok && b.V == 1 {
			return e.A
		}
	}
	return e
}

// applyConstBin mirrors the machine's concrete binary semantics.
func applyConstBin(op Op, a, b int64) (int64, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		return a / b, nil
	case Mod:
		return a % b, nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Shl:
		return a << (uint64(b) & 63), nil
	case Shr:
		return a >> (uint64(b) & 63), nil
	case Eq:
		return cb(a == b), nil
	case Ne:
		return cb(a != b), nil
	case Lt:
		return cb(a < b), nil
	case Le:
		return cb(a <= b), nil
	case Gt:
		return cb(a > b), nil
	case Ge:
		return cb(a >= b), nil
	}
	return 0, errBadOp
}

var errBadOp = &CompileError{Msg: "bad operator"}

func cb(x bool) int64 {
	if x {
		return 1
	}
	return 0
}

func wrap(v int64, ty *types.Basic) int64 {
	if ty == nil {
		return v
	}
	return types.Truncate(ty, v)
}

// ---------------------------------------------------------------- CFG

// foldBranches turns IfGoto with a constant condition into Goto or
// fallthrough.
func foldBranches(f *Func) {
	for i, ins := range f.Code {
		br, ok := ins.(*IfGoto)
		if !ok {
			continue
		}
		c, ok := br.Cond.(*Const)
		if !ok {
			continue
		}
		if c.V != 0 {
			f.Code[i] = &Goto{Target: br.Target}
		} else {
			f.Code[i] = &Goto{Target: i + 1}
		}
	}
}

// threadJumps redirects jumps whose target is another unconditional
// jump, and replaces self-fallthrough gotos.
func threadJumps(f *Func) {
	final := func(t int) int {
		seen := map[int]bool{}
		for {
			if t < 0 || t >= len(f.Code) || seen[t] {
				return t
			}
			seen[t] = true
			g, ok := f.Code[t].(*Goto)
			if !ok {
				return t
			}
			t = g.Target
		}
	}
	for _, ins := range f.Code {
		switch ins := ins.(type) {
		case *Goto:
			ins.Target = final(ins.Target)
		case *IfGoto:
			ins.Target = final(ins.Target)
		}
	}
}

// removeUnreachable drops instructions no control path reaches and
// remaps jump targets.  Goto-to-next instructions become removable by
// marking them as pure fallthrough during compaction.
func removeUnreachable(f *Func) {
	n := len(f.Code)
	if n == 0 {
		return
	}
	reach := make([]bool, n)
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= n || reach[pc] {
			continue
		}
		reach[pc] = true
		switch ins := f.Code[pc].(type) {
		case *Goto:
			work = append(work, ins.Target)
		case *IfGoto:
			work = append(work, ins.Target, pc+1)
		case *Ret, *Abort, *Halt:
			// no successor
		default:
			work = append(work, pc+1)
		}
	}

	// Compact: drop unreachable instructions and goto-to-next.
	newIdx := make([]int, n+1)
	kept := 0
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		newIdx[i] = kept
		if !reach[i] {
			continue
		}
		if g, ok := f.Code[i].(*Goto); ok {
			// A goto to the next *kept* instruction is pure fallthrough;
			// conservatively only drop gotos to i+1.
			if g.Target == i+1 {
				continue
			}
		}
		keep[i] = true
		kept++
	}
	newIdx[n] = kept

	// Dropping a goto-to-next whose successor is itself dropped would be
	// wrong; verify that every dropped goto's target maps to the next
	// kept index, else keep it.  (Handled implicitly: goto i+1 falls
	// through to whatever newIdx[i+1] is, which is exactly where the
	// goto would have landed.)

	out := make([]Instr, 0, kept)
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		switch ins := f.Code[i].(type) {
		case *Goto:
			out = append(out, &Goto{Target: newIdx[ins.Target]})
		case *IfGoto:
			out = append(out, &IfGoto{
				Cond: ins.Cond, Target: newIdx[ins.Target],
				Site: ins.Site, Pos: ins.Pos,
			})
		default:
			out = append(out, ins)
		}
	}
	f.Code = out
}

// renumberSites reassigns dense branch-site ids across the program.
func renumberSites(p *Prog) {
	next := 0
	for _, name := range p.FuncOrder {
		for _, ins := range p.Funcs[name].Code {
			if br, ok := ins.(*IfGoto); ok {
				br.Site = next
				next++
			}
		}
	}
	p.NumSites = next
}
