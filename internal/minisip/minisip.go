// Package minisip is a synthetic SIP-message library written in MiniC,
// standing in for the oSIP 2.0.9 library of the paper's Sec. 4.3
// experiment (the original is 30k lines of C; this reproduction keeps
// its *defect structure* at library scale).
//
// Like oSIP, the library exposes many small accessor/constructor/parser
// functions over heap data structures, and its NULL-argument discipline
// is inconsistent: some functions check their pointer arguments on every
// path, some on no path, and some only on some paths — the exact pattern
// behind the paper's finding that DART crashed 65% of oSIP's externally
// visible functions within 1000 runs each.  The message parser also
// reproduces the paper's security vulnerability: it copies the packet
// into stack space obtained with alloca() and uses the result without
// checking for allocation failure, so an oversized message that passes
// the syntactic filters crashes the parser (fixed in parse_packet_fixed,
// mirroring oSIP 2.2.0).
package minisip

// Toplevel candidates are all defined functions; the audit harness runs
// DART on each of them, as the paper's scripts did for oSIP.

// Source is the MiniC source of the library.
const Source = `
/* ---------------------------------------------------------------------
 * miniSIP: URI, header, message, and list utilities plus a packet parser.
 * Comment tags describe the intended NULL-argument discipline:
 *   [guarded]   checks pointer arguments on every path
 *   [unguarded] never checks
 *   [partial]   checks on some paths only
 * --------------------------------------------------------------------- */

struct uri {
    int scheme;           /* 1 = sip, 2 = sips */
    char *user;
    char *host;
    int port;
};

struct header {
    char *name;
    char *value;
    struct header *next;
};

struct msg {
    int kind;             /* 1 = request, 2 = response */
    int status;
    struct uri *from;
    struct uri *to;
    struct header *hdrs;
    char *body;
    int body_len;
};

struct lnode {
    int item;
    struct lnode *next;
};

struct list {
    struct lnode *head;
    int len;
};

/* ------------------------------- URIs ------------------------------- */

/* [unguarded] */
int uri_init(struct uri *u) {
    u->scheme = 1;
    u->user = NULL;
    u->host = NULL;
    u->port = 5060;
    return 0;
}

/* [unguarded] */
int uri_get_scheme(struct uri *u) {
    return u->scheme;
}

/* [guarded] */
int uri_set_scheme(struct uri *u, int s) {
    if (u == NULL) return -1;
    if (s != 1 && s != 2) return -2;
    u->scheme = s;
    return 0;
}

/* [unguarded] */
int uri_get_port(struct uri *u) {
    return u->port;
}

/* [partial] validates the port range but checks the pointer too late */
int uri_set_port(struct uri *u, int p) {
    if (p < 1 || p > 65535) return -2;
    u->port = p;
    return 0;
}

/* [unguarded] */
int uri_is_secure(struct uri *u) {
    if (u->scheme == 2) return 1;
    return 0;
}

/* [guarded] */
int uri_default_port(struct uri *u) {
    if (u == NULL) return 5060;
    if (u->scheme == 2) return 5061;
    return 5060;
}

/* [unguarded twice]: dereferences u and u->user */
int uri_user_first(struct uri *u) {
    return *(u->user);
}

/* [partial] checks a but never b */
int uri_equal(struct uri *a, struct uri *b) {
    if (a == NULL) return 0;
    if (a->scheme != b->scheme) return 0;
    if (a->port != b->port) return 0;
    return 1;
}

/* [guarded] */
int uri_clear(struct uri *u) {
    if (u == NULL) return -1;
    u->user = NULL;
    u->host = NULL;
    return 0;
}

/* [unguarded] clones through the source pointer */
struct uri *uri_clone(struct uri *u) {
    struct uri *c;
    c = (struct uri *)malloc(sizeof(struct uri));
    c->scheme = u->scheme;
    c->user = u->user;
    c->host = u->host;
    c->port = u->port;
    return c;
}

/* [guarded] */
int uri_scheme_name_len(struct uri *u) {
    if (u == NULL) return 0;
    if (u->scheme == 2) return 4;  /* "sips" */
    return 3;                      /* "sip" */
}

/* ----------------------------- headers ------------------------------ */

/* [unguarded] */
int header_init(struct header *h) {
    h->name = NULL;
    h->value = NULL;
    h->next = NULL;
    return 0;
}

/* [unguarded] */
char *header_get_name(struct header *h) {
    return h->name;
}

/* [guarded] */
int header_set(struct header *h, char *name, char *value) {
    if (h == NULL) return -1;
    h->name = name;
    h->value = value;
    return 0;
}

/* [guarded] the loop condition guards every dereference */
int header_chain_len(struct header *h) {
    int n = 0;
    while (h != NULL) {
        n = n + 1;
        h = h->next;
    }
    return n;
}

/* [partial] guards the chain but not each name */
int header_find(struct header *h, int initial) {
    int idx = 0;
    while (h != NULL) {
        if (*(h->name) == initial) return idx;
        idx = idx + 1;
        h = h->next;
    }
    return -1;
}

/* [unguarded] walks to the tail through the head pointer */
int header_append(struct header *h, struct header *tail) {
    while (h->next != NULL) {
        h = h->next;
    }
    h->next = tail;
    return 0;
}

/* [guarded] */
struct header *header_last(struct header *h) {
    if (h == NULL) return NULL;
    while (h->next != NULL) {
        h = h->next;
    }
    return h;
}

/* [unguarded] */
int header_is_empty(struct header *h) {
    if (h->name == NULL && h->value == NULL) return 1;
    return 0;
}

/* ----------------------------- messages ----------------------------- */

/* [unguarded] */
int msg_init(struct msg *m) {
    m->kind = 0;
    m->status = 0;
    m->from = NULL;
    m->to = NULL;
    m->hdrs = NULL;
    m->body = NULL;
    m->body_len = 0;
    return 0;
}

/* [guarded] */
int msg_kind(struct msg *m) {
    if (m == NULL) return 0;
    return m->kind;
}

/* [unguarded] */
int msg_status(struct msg *m) {
    return m->status;
}

/* [unguarded] */
int msg_is_request(struct msg *m) {
    if (m->kind == 1) return 1;
    return 0;
}

/* [partial] checks the message but not its from-URI */
int msg_from_port(struct msg *m) {
    if (m == NULL) return -1;
    return m->from->port;
}

/* [unguarded, two levels] */
int msg_to_scheme(struct msg *m) {
    return m->to->scheme;
}

/* [guarded on every level] */
int msg_from_port_safe(struct msg *m) {
    if (m == NULL) return -1;
    if (m->from == NULL) return -1;
    return m->from->port;
}

/* [partial] body may be NULL even when body_len > 0 */
int msg_body_first(struct msg *m) {
    if (m == NULL) return -1;
    if (m->body_len > 0) {
        return *(m->body);
    }
    return -1;
}

/* [guarded] */
int msg_set_status(struct msg *m, int code) {
    if (m == NULL) return -1;
    if (code < 100 || code > 699) return -2;
    m->status = code;
    m->kind = 2;
    return 0;
}

/* [unguarded] */
int msg_header_count(struct msg *m) {
    return header_chain_len(m->hdrs);
}

/* [guarded] a fully defensive validator: never crashes */
int msg_validate(struct msg *m) {
    if (m == NULL) return 0;
    if (m->kind != 1 && m->kind != 2) return 0;
    if (m->kind == 2) {
        if (m->status < 100 || m->status > 699) return 0;
    }
    if (m->body == NULL && m->body_len != 0) return 0;
    return 1;
}

/* [unguarded] swaps the endpoints through both pointers */
int msg_swap_endpoints(struct msg *m) {
    struct uri *tmp;
    tmp = m->from;
    m->from = m->to;
    m->to = tmp;
    return 0;
}

/* ------------------------------ lists ------------------------------- */

/* [unguarded] */
int list_init(struct list *l) {
    l->head = NULL;
    l->len = 0;
    return 0;
}

/* [guarded] */
int list_size(struct list *l) {
    if (l == NULL) return 0;
    return l->len;
}

/* [unguarded] */
int list_push(struct list *l, int v) {
    struct lnode *n;
    n = (struct lnode *)malloc(sizeof(struct lnode));
    n->item = v;
    n->next = l->head;
    l->head = n;
    l->len = l->len + 1;
    return 0;
}

/* [partial] guards the list but trusts len to match the chain */
int list_get(struct list *l, int i) {
    struct lnode *n;
    if (l == NULL) return -1;
    if (i < 0 || i >= l->len) return -1;
    n = l->head;
    while (i > 0) {
        n = n->next;
        i = i - 1;
    }
    return n->item;
}

/* [guarded] iterates by the chain itself */
int list_sum(struct list *l) {
    struct lnode *n;
    int total = 0;
    if (l == NULL) return 0;
    n = l->head;
    while (n != NULL) {
        total = total + n->item;
        n = n->next;
    }
    return total;
}

/* [unguarded] */
int list_pop(struct list *l) {
    struct lnode *n;
    int v;
    n = l->head;
    v = n->item;
    l->head = n->next;
    l->len = l->len - 1;
    return v;
}

/* ------------------------------ parsing ----------------------------- */

/* [partial] digit parser: guards nothing about s */
int parse_digits(char *s, int n) {
    int i = 0;
    int v = 0;
    while (i < n) {
        int c = s[i];
        if (c < '0' || c > '9') return -1;
        v = v * 10 + (c - '0');
        i = i + 1;
    }
    return v;
}

/* [guarded] classifies a method byte */
int parse_method_byte(int c) {
    if (c == 'I') return 1;   /* INVITE */
    if (c == 'A') return 2;   /* ACK */
    if (c == 'B') return 3;   /* BYE */
    if (c == 'R') return 4;   /* REGISTER */
    return 0;
}

/* parse_packet reproduces the oSIP parser vulnerability (Sec. 4.3): a
 * packet that passes the syntactic filters is copied into stack space
 * obtained with alloca(), and the result is used without checking for
 * allocation failure. A message longer than the stack limit therefore
 * crashes the parser with a NULL write. */
int parse_packet(int magic, int first, int len) {
    char *work;
    if (magic != 0x53495032) return -1;   /* "SIP2" framing */
    if (first == 0) return -2;            /* no NUL in the packet */
    if (first == '|') return -2;          /* no pipe either */
    if (len < 64) return -3;              /* truncated packet */
    work = alloca(len + 1);
    work[0] = first;                      /* CRASH: work may be NULL */
    work[len] = 0;
    return parse_method_byte(first);
}

/* parse_packet_fixed is the repaired parser (as of oSIP 2.2.0): the
 * alloca result is checked before use. */
int parse_packet_fixed(int magic, int first, int len) {
    char *work;
    if (magic != 0x53495032) return -1;
    if (first == 0) return -2;
    if (first == '|') return -2;
    if (len < 64) return -3;
    work = alloca(len + 1);
    if (work == NULL) return -4;          /* allocation failure handled */
    work[0] = first;
    work[len] = 0;
    return parse_method_byte(first);
}

/* [partial] frames a body slice inside a packet; the offset arithmetic
 * can walk past the allocated buffer */
int parse_body_offset(char *buf, int len, int off) {
    if (buf == NULL) return -1;
    if (len <= 0) return -1;
    if (off < 0) return -1;
    if (off >= len) return -1;
    return buf[off];
}

/* [guarded] a defensive wrapper around the list utilities */
int checksum_items(struct list *l, int seed) {
    int s;
    if (l == NULL) return seed;
    s = list_sum(l);
    return mix(s, seed);
}
`
