package minisip

import (
	"testing"

	"dart/internal/concolic"
)

func TestCompiles(t *testing.T) {
	prog, sem, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.FuncOrder) < 60 {
		t.Errorf("library has only %d functions", len(prog.FuncOrder))
	}
	if len(sem.Structs) != 7 {
		t.Errorf("structs: %d", len(sem.Structs))
	}
}

func TestGuardedFunctionsSurviveDirectedSearch(t *testing.T) {
	prog, _, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"msg_validate", "uri_default_port", "header_chain_len", "list_sum"} {
		rep, err := concolic.Run(prog, concolic.Options{Toplevel: fn, MaxRuns: 300, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("%s: unexpected bugs %v", fn, rep.Bugs)
		}
	}
}

func TestAuditSmall(t *testing.T) {
	prog, sem, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Audit(prog, sem, 1, 60, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFunctions < 40 {
		t.Errorf("functions audited: %d", res.TotalFunctions)
	}
	if res.Fraction() < 0.4 {
		t.Errorf("crash fraction %.2f suspiciously low even at small budget", res.Fraction())
	}
	for _, e := range res.Entries {
		if e.Crashed && e.FirstCrashRun == 0 {
			t.Errorf("%s: crashed but no first-crash run recorded", e.Function)
		}
		if !e.Crashed && e.DistinctCrashes != 0 {
			t.Errorf("%s: inconsistent crash accounting", e.Function)
		}
	}
}

func TestRandomAuditWeaker(t *testing.T) {
	prog, sem, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	directed, err := Audit(prog, sem, 3, 150, false)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Audit(prog, sem, 3, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if random.CrashedFunctions > directed.CrashedFunctions {
		t.Errorf("random audit (%d) beat directed (%d)", random.CrashedFunctions, directed.CrashedFunctions)
	}
	// Random testing cannot pass the parser's magic filter.
	for _, e := range random.Entries {
		if e.Function == "parse_packet" && e.Crashed {
			t.Error("random audit crashed parse_packet through the 2^-32 filter")
		}
	}
}
