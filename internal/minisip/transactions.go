package minisip

// transactionSource extends the library with SIP transaction and dialog
// management — the stateful layer above message parsing in oSIP — with
// the same deliberately inconsistent NULL-argument discipline as the
// base layer.
const transactionSource = `
/* ---------------------------------------------------------------------
 * Transactions and dialogs.
 * --------------------------------------------------------------------- */

struct txn {
    int id;
    int state;            /* 0 idle, 1 proceeding, 2 completed, 3 terminated */
    int retransmits;
    struct msg *request;
    struct msg *response;
    struct txn *next;
};

struct dialog {
    int call_id;
    int local_seq;
    int remote_seq;
    struct uri *local;
    struct uri *remote;
    int secure;
};

/* [unguarded] */
int txn_init(struct txn *t, int id) {
    t->id = id;
    t->state = 0;
    t->retransmits = 0;
    t->request = NULL;
    t->response = NULL;
    t->next = NULL;
    return 0;
}

/* [guarded] */
int txn_state(struct txn *t) {
    if (t == NULL) return -1;
    return t->state;
}

/* [partial] validates the transition table but trusts the pointer */
int txn_advance(struct txn *t, int event) {
    if (event < 0 || event > 3) return -2;
    if (t->state == 3) return -3;          /* terminated is final */
    if (event == 0 && t->state == 0) { t->state = 1; return 0; }
    if (event == 1 && t->state == 1) { t->state = 2; return 0; }
    if (event == 2 && t->state == 2) { t->state = 3; return 0; }
    if (event == 3) { t->state = 3; return 0; }    /* abort event */
    return -4;
}

/* [guarded] full transition check, never crashes */
int txn_advance_safe(struct txn *t, int event) {
    if (t == NULL) return -1;
    if (event < 0 || event > 3) return -2;
    return txn_advance(t, event);
}

/* [unguarded, two levels] reads the buried request kind */
int txn_request_kind(struct txn *t) {
    return t->request->kind;
}

/* [partial] checks the transaction, not the response */
int txn_response_status(struct txn *t) {
    if (t == NULL) return 0;
    return t->response->status;
}

/* [guarded] chain walk with the loop condition as the guard */
struct txn *txn_find(struct txn *list, int id) {
    while (list != NULL) {
        if (list->id == id) return list;
        list = list->next;
    }
    return NULL;
}

/* [unguarded] walks via the head without checking it */
int txn_chain_retransmits(struct txn *list) {
    int total = list->retransmits;
    list = list->next;
    while (list != NULL) {
        total = total + list->retransmits;
        list = list->next;
    }
    return total;
}

/* [guarded] */
int txn_is_final(struct txn *t) {
    if (t == NULL) return 1;
    if (t->state == 3) return 1;
    return 0;
}

/* [unguarded] resets timers on a retransmit */
int txn_note_retransmit(struct txn *t) {
    t->retransmits = t->retransmits + 1;
    if (t->retransmits > 7) {
        t->state = 3;   /* too many retransmits: kill the transaction */
    }
    return t->retransmits;
}

/* ------------------------------ dialogs ----------------------------- */

/* [unguarded] */
int dialog_init(struct dialog *d, int call_id) {
    d->call_id = call_id;
    d->local_seq = 1;
    d->remote_seq = 0;
    d->local = NULL;
    d->remote = NULL;
    d->secure = 0;
    return 0;
}

/* [guarded] */
int dialog_call_id(struct dialog *d) {
    if (d == NULL) return -1;
    return d->call_id;
}

/* [partial] sequence-number check is right, the pointer check is missing */
int dialog_accept_seq(struct dialog *d, int seq) {
    if (seq <= 0) return -2;
    if (seq <= d->remote_seq) return -3;   /* replay or reordering */
    d->remote_seq = seq;
    return 0;
}

/* [unguarded] bumps and returns the next local sequence number */
int dialog_next_seq(struct dialog *d) {
    d->local_seq = d->local_seq + 1;
    return d->local_seq;
}

/* [unguarded, two levels] */
int dialog_remote_port(struct dialog *d) {
    return d->remote->port;
}

/* [guarded on every level] */
int dialog_remote_port_safe(struct dialog *d) {
    if (d == NULL) return -1;
    if (d->remote == NULL) return -1;
    return d->remote->port;
}

/* [partial] marks a dialog secure only when both URIs agree; checks d
 * but dereferences the URIs blindly */
int dialog_mark_secure(struct dialog *d) {
    if (d == NULL) return -1;
    if (d->local->scheme == 2 && d->remote->scheme == 2) {
        d->secure = 1;
        return 1;
    }
    d->secure = 0;
    return 0;
}

/* [guarded] */
int dialog_is_secure(struct dialog *d) {
    if (d == NULL) return 0;
    return d->secure;
}

/* [unguarded] swaps direction when acting as a proxy */
int dialog_reverse(struct dialog *d) {
    struct uri *tmp;
    tmp = d->local;
    d->local = d->remote;
    d->remote = tmp;
    return 0;
}

/* [guarded] matches a dialog against a message, defensively */
int dialog_matches(struct dialog *d, struct msg *m) {
    if (d == NULL) return 0;
    if (m == NULL) return 0;
    if (m->from == NULL) return 0;
    if (d->remote == NULL) return 0;
    if (m->from->port != d->remote->port) return 0;
    if (m->from->scheme != d->remote->scheme) return 0;
    return 1;
}

/* [partial] counts in-dialog retransmissions; trusts t after checking d */
int dialog_txn_pressure(struct dialog *d, struct txn *t) {
    if (d == NULL) return -1;
    int load = t->retransmits * 2;
    if (d->secure) load = load + 1;
    return load;
}
`
