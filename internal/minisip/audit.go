package minisip

import (
	"fmt"
	"sort"
	"time"

	"dart/internal/audit"
	"dart/internal/iface"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/sema"
)

// SourceText returns the complete MiniC source of the library (core +
// transaction layer): what Compile compiles, exposed so the job service
// can register "minisip" as a named library.
func SourceText() string { return Source + transactionSource }

// Compile builds the miniSIP library.
func Compile() (*ir.Prog, *sema.Program, error) {
	file, err := parser.Parse(Source + transactionSource)
	if err != nil {
		return nil, nil, fmt.Errorf("minisip parse: %w", err)
	}
	sem, err := sema.Check(file, machine.StdLibSigs())
	if err != nil {
		return nil, nil, fmt.Errorf("minisip check: %w", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		return nil, nil, fmt.Errorf("minisip compile: %w", err)
	}
	return prog, sem, nil
}

// Entry is the audit result for one externally visible function.
type Entry struct {
	Function string
	// Crashed reports whether any run crashed (segfault / div-by-zero).
	Crashed bool
	// Runs is the number of executions spent on this function.
	Runs int
	// FirstCrashRun is the 1-based run that first crashed (0 if none).
	FirstCrashRun int
	// DistinctCrashes counts distinct crash sites found.
	DistinctCrashes int
	// Status is the supervision outcome (ok / bugs / timeout /
	// internal-fault / cancelled).
	Status audit.Status
}

// Result summarizes a whole-library audit.
type Result struct {
	Entries []Entry
	// CrashedFunctions / TotalFunctions reproduce the paper's headline
	// ratio ("DART found a way to crash 65% of the oSIP functions").
	CrashedFunctions int
	TotalFunctions   int
	TotalRuns        int
}

// Fraction returns the crashed-function ratio.
func (r *Result) Fraction() float64 {
	if r.TotalFunctions == 0 {
		return 0
	}
	return float64(r.CrashedFunctions) / float64(r.TotalFunctions)
}

// Audit replays the paper's oSIP experiment: every externally visible
// function becomes the toplevel in turn, with a budget of maxRuns
// executions (the paper used 1000); crashes are counted per function.
// When useRandom is true the runs use pure random testing instead of the
// directed search, providing the baseline comparison.
func Audit(prog *ir.Prog, sem *sema.Program, seed int64, maxRuns int, useRandom bool) (*Result, error) {
	return AuditSupervised(prog, sem, seed, maxRuns, useRandom, 0, 0)
}

// AuditSupervised is Audit with a per-function wall-clock deadline and
// an explicit worker-pool size (0 = GOMAXPROCS).  Function i always runs
// with seed+i, so — as long as no deadline trips — the results are
// byte-identical for any jobs value; the pool only changes wall-clock
// time.
func AuditSupervised(prog *ir.Prog, sem *sema.Program, seed int64, maxRuns int, useRandom bool, timeout time.Duration, jobs int) (*Result, error) {
	fns := iface.Candidates(sem)
	sort.Strings(fns)

	batch := audit.Run(prog, audit.Options{
		Toplevels: fns,
		Seed:      seed,
		MaxRuns:   maxRuns,
		UseRandom: useRandom,
		Timeout:   timeout,
		Jobs:      jobs,
	})

	res := &Result{TotalFunctions: len(fns), TotalRuns: batch.TotalRuns}
	for _, e := range batch.Entries {
		if e.Report == nil {
			return nil, fmt.Errorf("minisip audit of %s: %s", e.Function, e.Err)
		}
		entry := Entry{Function: e.Function, Runs: e.Report.Runs, Status: e.Status}
		for _, b := range e.Report.Bugs {
			if b.Kind == machine.Crashed {
				entry.DistinctCrashes++
				if !entry.Crashed {
					entry.Crashed = true
					entry.FirstCrashRun = b.Run
				}
			}
		}
		if entry.Crashed {
			res.CrashedFunctions++
		}
		res.Entries = append(res.Entries, entry)
	}
	return res, nil
}
