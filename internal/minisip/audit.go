package minisip

import (
	"fmt"
	"sort"

	"dart/internal/concolic"
	"dart/internal/iface"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/sema"
)

// Compile builds the miniSIP library.
func Compile() (*ir.Prog, *sema.Program, error) {
	file, err := parser.Parse(Source + transactionSource)
	if err != nil {
		return nil, nil, fmt.Errorf("minisip parse: %w", err)
	}
	sem, err := sema.Check(file, machine.StdLibSigs())
	if err != nil {
		return nil, nil, fmt.Errorf("minisip check: %w", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		return nil, nil, fmt.Errorf("minisip compile: %w", err)
	}
	return prog, sem, nil
}

// Entry is the audit result for one externally visible function.
type Entry struct {
	Function string
	// Crashed reports whether any run crashed (segfault / div-by-zero).
	Crashed bool
	// Runs is the number of executions spent on this function.
	Runs int
	// FirstCrashRun is the 1-based run that first crashed (0 if none).
	FirstCrashRun int
	// DistinctCrashes counts distinct crash sites found.
	DistinctCrashes int
}

// Result summarizes a whole-library audit.
type Result struct {
	Entries []Entry
	// CrashedFunctions / TotalFunctions reproduce the paper's headline
	// ratio ("DART found a way to crash 65% of the oSIP functions").
	CrashedFunctions int
	TotalFunctions   int
	TotalRuns        int
}

// Fraction returns the crashed-function ratio.
func (r *Result) Fraction() float64 {
	if r.TotalFunctions == 0 {
		return 0
	}
	return float64(r.CrashedFunctions) / float64(r.TotalFunctions)
}

// Audit replays the paper's oSIP experiment: every externally visible
// function becomes the toplevel in turn, with a budget of maxRuns
// executions (the paper used 1000); crashes are counted per function.
// When useRandom is true the runs use pure random testing instead of the
// directed search, providing the baseline comparison.
func Audit(prog *ir.Prog, sem *sema.Program, seed int64, maxRuns int, useRandom bool) (*Result, error) {
	fns := iface.Candidates(sem)
	sort.Strings(fns)

	res := &Result{TotalFunctions: len(fns)}
	for i, fn := range fns {
		opts := concolic.Options{
			Toplevel: fn,
			MaxRuns:  maxRuns,
			Seed:     seed + int64(i), // independent budget per function
			Depth:    1,
		}
		var rep *concolic.Report
		var err error
		if useRandom {
			rep, err = concolic.RandomTest(prog, opts)
		} else {
			rep, err = concolic.Run(prog, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("minisip audit of %s: %w", fn, err)
		}
		entry := Entry{Function: fn, Runs: rep.Runs}
		for _, b := range rep.Bugs {
			if b.Kind == machine.Crashed {
				entry.DistinctCrashes++
				if !entry.Crashed {
					entry.Crashed = true
					entry.FirstCrashRun = b.Run
				}
			}
		}
		if entry.Crashed {
			res.CrashedFunctions++
		}
		res.TotalRuns += rep.Runs
		res.Entries = append(res.Entries, entry)
	}
	return res, nil
}
