package sema

import (
	"strings"
	"testing"

	"dart/internal/parser"
	"dart/internal/types"
)

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lib := map[string]*types.Func{
		"mix": {Params: []types.Type{types.IntType, types.IntType}, Result: types.IntType},
	}
	return Check(f, lib)
}

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestGlobalsAndOffsets(t *testing.T) {
	p := checkOK(t, `
int a = 5;
extern int env;
int arr[3];
`)
	if len(p.Globals) != 3 {
		t.Fatalf("globals: %d", len(p.Globals))
	}
	if !p.Globals[0].HasInit || p.Globals[0].InitVal != 5 {
		t.Errorf("a init: %+v", p.Globals[0])
	}
	if !p.Globals[1].Extern {
		t.Error("env should be extern")
	}
	if _, ok := p.Globals[2].Type.(*types.Array); !ok {
		t.Errorf("arr type: %s", p.Globals[2].Type)
	}
}

func TestFunctionClassification(t *testing.T) {
	p := checkOK(t, `
extern int input();
int helper(int x) { return x + 1; }
int top(int x) { return helper(input()) + mix(x, 1); }
`)
	if !p.Funcs["input"].Extern {
		t.Error("input should be external")
	}
	if p.Funcs["helper"].Extern {
		t.Error("helper should be a program function")
	}
	if _, ok := p.Lib["mix"]; !ok {
		t.Error("mix should be a library function")
	}
}

func TestFrameLayout(t *testing.T) {
	p := checkOK(t, `
int f(int a, int b) {
    int x;
    if (a) {
        int y;
        y = b;
        x = y;
    }
    int z = x;
    return z;
}
`)
	fn := p.Funcs["f"]
	// a, b, x, y, z — each gets a distinct slot, no reuse across blocks.
	if fn.FrameSize != 5 {
		t.Errorf("frame size = %d, want 5", fn.FrameSize)
	}
	slots := map[int64]string{}
	for _, o := range fn.Locals {
		if prev, dup := slots[o.Index]; dup {
			t.Errorf("slot %d shared by %s and %s", o.Index, prev, o.Name)
		}
		slots[o.Index] = o.Name
	}
}

func TestShadowing(t *testing.T) {
	p := checkOK(t, `
int g = 1;
int f(int g) {
    int h = g;
    {
        int g = 3;
        h = g;
    }
    return h;
}
`)
	fn := p.Funcs["f"]
	if len(fn.Locals) != 3 {
		t.Fatalf("locals: %d", len(fn.Locals))
	}
}

func TestRecursiveStruct(t *testing.T) {
	p := checkOK(t, `
struct node { int v; struct node *next; };
int len(struct node *n) {
    int k = 0;
    while (n != NULL) { k++; n = n->next; }
    return k;
}
`)
	st := p.Structs["node"]
	if st.Size() != 2 {
		t.Errorf("node size = %d", st.Size())
	}
	next, _ := st.FieldByName("next")
	if ptr, ok := next.Type.(*types.Pointer); !ok || ptr.Elem != st {
		t.Error("recursive pointer does not share the struct identity")
	}
}

func TestTypeRules(t *testing.T) {
	checkOK(t, `
struct s { int x; };
int f(struct s *p, char c, unsigned u, long l) {
    int i = c;          /* integer widening */
    char d = i;         /* narrowing, C-style */
    long big = i + l;   /* mixed arithmetic */
    u = u + 1;
    if (p == NULL) return 0;
    if (p != 0) { }     /* 0 as null pointer constant */
    return p->x + d + (int)big;
}
`)
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"int f() { return x; }", "undefined: x"},
		{"int f() { y = 1; return 0; }", "undefined: y"},
		{"int f(int a) { return a(); }", "undefined function"},
		{"int f() { int a; int a; return 0; }", "redeclared"},
		{"int g; int g;", "redeclared"},
		{"struct s { int a; int a; };", "duplicate field"},
		{"struct s { int a; }; int f(struct s *p) { return p->b; }", "no field b"},
		{"int f(int *p) { return p + p; }", "invalid operands"},
		{"int f() { 1 = 2; return 0; }", "not assignable"},
		{"int f(int *p) { return *p * p; }", "invalid operands"},
		{"void f() { return 1; }", "return with value"},
		{"int f() { return; }", "return without value"},
		{"int f() { break; return 0; }", "break outside loop"},
		{"int f() { continue; return 0; }", "continue outside loop"},
		{"int f(int x) { return x; } int f(int x) { return x; }", "redefined"},
		{"int f(int x); ", "never defined"},
		{"void v; ", "void type"},
		{"int f(struct s x) { return 0; }", "undefined struct"},
		{"struct s { int a; }; int f(struct s x) { return 0; }", "scalar and pointer parameters"},
		{"struct s { int a; }; struct s f() { }", "must return a scalar"},
		{"int f(int *p) { int x = p; return x; }", "without a cast"},
		{"int f(int x) { int *p = x; return 0; }", "without a cast"},
		{"int x = 1; extern int x;", "redeclared"},
		{"int g = f(); int f() { return 1; }", "must be a constant"},
		{"int f() { int s = \"str\"; return s; }", "string literals"},
		{"int abort() { return 1; }", "builtin"},
		{"int mix(int a, int b) { return a; }", "shadows a library function"},
		{"int f(); int f(int x) { return x; }", "conflicting declarations"},
	}
	for _, c := range cases {
		wantError(t, c.src, c.frag)
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	p := checkOK(t, `
int even(int n);
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
`)
	if p.Funcs["even"].Decl.Body == nil {
		t.Error("definition did not replace the prototype")
	}
}

func TestUsesAnnotated(t *testing.T) {
	p := checkOK(t, `
int g;
int f(int a) { return g + a; }
`)
	found := 0
	for ident, obj := range p.Uses {
		switch ident.Name {
		case "g":
			if obj.Kind != GlobalObj {
				t.Error("g resolved to non-global")
			}
			found++
		case "a":
			if obj.Kind != ParamObj {
				t.Error("a resolved to non-param")
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("resolved %d of 2 identifiers", found)
	}
}

func TestConstFolding(t *testing.T) {
	p := checkOK(t, `
struct pair { int a; int b; };
int size = sizeof(struct pair) * 4 + (1 << 3) - -2;
int arr[2 * 3];
`)
	g := p.GlobalsByName["size"]
	if !g.HasInit || g.InitVal != 2*4+8+2 {
		t.Errorf("folded init = %d", g.InitVal)
	}
	arr := p.GlobalsByName["arr"].Type.(*types.Array)
	if arr.Len != 6 {
		t.Errorf("array len = %d", arr.Len)
	}
}

func TestAssertForms(t *testing.T) {
	checkOK(t, `
int f(int x) {
    assert(x > 0);
    assert(x < 10, "x too big");
    return x;
}
`)
	wantError(t, `int f(int x) { assert(x, x); return x; }`, "message must be a string")
}

func TestExternFuncResultRestriction(t *testing.T) {
	checkOK(t, "extern int e(); extern char *p(); int f() { return e(); }")
	wantError(t, "struct s { int a; }; extern struct s e();", "must return a scalar")
}

func TestSwitchChecks(t *testing.T) {
	checkOK(t, `
int f(int x) {
    switch (x) {
    case 1: break;
    case 2 + 3: return 1;
    default: return 2;
    }
    return 0;
}
`)
	wantError(t, "int f(int x) { switch (x) { case x: break; } return 0; }", "constant")
	wantError(t, "int f(int x) { switch (x) { case 1: break; case 1: break; } return 0; }", "duplicate case")
	wantError(t, "int f(int *p) { switch (p) { case 1: break; } return 0; }", "integer")
	wantError(t, "int f(int x) { switch (x) { case 1: continue; } return 0; }", "continue outside loop")
}
