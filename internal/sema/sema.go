// Package sema resolves names and type-checks MiniC programs.
//
// The result of checking is a Program: struct layouts, ordered globals,
// and functions with resolved parameter/local objects.  Sema also
// classifies functions the way Sec. 3.1 of the paper does: program
// functions (defined in the file), external functions (extern, controlled
// by the environment, simulated with random values), and library
// functions (known to the tool, executed as deterministic black boxes).
package sema

import (
	"fmt"

	"dart/internal/ast"
	"dart/internal/token"
	"dart/internal/types"
)

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// ObjKind classifies a resolved object.
type ObjKind int

// Object kinds.
const (
	GlobalObj ObjKind = iota
	LocalObj
	ParamObj
)

// Object is a resolved variable.
type Object struct {
	Name string
	Kind ObjKind
	Type types.Type
	// Index is the object's slot: position in Program.Globals for
	// globals, or the frame slot offset (in cells) for params/locals.
	Index int64
	// Extern marks environment-controlled globals (program inputs).
	Extern bool
	// Init is the global initializer expression, if any.
	Init ast.Expr
	// InitVal is the evaluated constant initializer; valid when HasInit.
	InitVal int64
	HasInit bool
}

// Function is a checked function.
type Function struct {
	Name   string
	Sig    *types.Func
	Params []*Object
	Locals []*Object // declaration order; params first, then locals
	Decl   *ast.FuncDecl
	Extern bool
	// FrameSize is the total frame size in cells (params + locals).
	FrameSize int64
}

// Program is the checked representation consumed by the IR compiler, the
// interface extractor, and the random-driver generator.
type Program struct {
	Structs map[string]*types.Struct
	Globals []*Object
	// GlobalsByName indexes Globals.
	GlobalsByName map[string]*Object
	// Funcs holds program and external functions by name.
	Funcs map[string]*Function
	// FuncOrder is the source order of function declarations.
	FuncOrder []string
	// Lib is the set of library (black-box) function signatures that the
	// program may call; supplied by the caller of Check.
	Lib map[string]*types.Func
	// Uses maps identifier nodes to their resolved objects.
	Uses map[*ast.Ident]*Object
	// DeclObjs maps local declaration statements to their objects.
	DeclObjs map[*ast.DeclStmt]*Object
	File     *ast.File
}

// Builtin signatures always available to MiniC programs.  abort and
// assert are the error-reporting primitives of the paper; malloc models
// heap allocation (Sec. 3.2).
func builtinSigs() map[string]*types.Func {
	return map[string]*types.Func{
		"abort": {Params: nil, Result: types.VoidType},
		"halt":  {Params: nil, Result: types.VoidType},
		"assert": {
			Params: []types.Type{types.IntType},
			Result: types.VoidType,
		},
		"malloc": {
			Params: []types.Type{types.IntType},
			Result: &types.Pointer{Elem: types.CharType},
		},
		"free": {
			Params: []types.Type{&types.Pointer{Elem: types.CharType}},
			Result: types.VoidType,
		},
	}
}

// Check resolves and type-checks the file.  lib supplies signatures for
// library functions implemented by the host (deterministic black boxes);
// it may be nil.
func Check(file *ast.File, lib map[string]*types.Func) (*Program, error) {
	c := &checker{
		prog: &Program{
			Structs:       map[string]*types.Struct{},
			GlobalsByName: map[string]*Object{},
			Funcs:         map[string]*Function{},
			Lib:           map[string]*types.Func{},
			Uses:          map[*ast.Ident]*Object{},
			DeclObjs:      map[*ast.DeclStmt]*Object{},
			File:          file,
		},
		builtins: builtinSigs(),
	}
	for name, sig := range lib {
		c.prog.Lib[name] = sig
	}
	c.collectStructs(file)
	c.collectGlobalsAndFuncs(file)
	c.checkBodies(file)
	if len(c.errs) > 0 {
		return c.prog, c.errs
	}
	return c.prog, nil
}

type checker struct {
	prog     *Program
	builtins map[string]*types.Func
	errs     ErrorList

	// Per-function state.
	fn     *Function
	scopes []map[string]*Object
	loops  int
	// switches tracks switch nesting: break binds to the nearest loop or
	// switch, continue only to loops.
	switches int
	// frameNext is the next free frame slot while checking the current
	// function; block-scoped locals each get a distinct slot (no reuse),
	// which keeps symbolic addresses stable across paths.
	frameNext int64
}

const maxErrors = 25

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < maxErrors {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// ------------------------------------------------------------ collection

// collectStructs creates (possibly incomplete) struct identities first so
// that pointer-to-struct fields may refer forward, then completes them.
func (c *checker) collectStructs(file *ast.File) {
	for _, d := range file.Decls {
		if sd, ok := d.(*ast.StructDecl); ok {
			if _, dup := c.prog.Structs[sd.Name]; dup {
				c.errorf(sd.TokPos, "struct %s redeclared", sd.Name)
				continue
			}
			c.prog.Structs[sd.Name] = &types.Struct{Name: sd.Name}
		}
	}
	for _, d := range file.Decls {
		sd, ok := d.(*ast.StructDecl)
		if !ok {
			continue
		}
		st := c.prog.Structs[sd.Name]
		if st.Complete {
			continue
		}
		var fields []types.Field
		seen := map[string]bool{}
		for _, f := range sd.Fields {
			if seen[f.Name] {
				c.errorf(sd.TokPos, "duplicate field %s in struct %s", f.Name, sd.Name)
				continue
			}
			seen[f.Name] = true
			ft := c.resolveType(f.Spec)
			if s, ok := ft.(*types.Struct); ok && !s.Complete {
				c.errorf(f.Spec.Pos(), "field %s has incomplete type %s (use a pointer)", f.Name, s)
				ft = types.IntType
			}
			fields = append(fields, types.Field{Name: f.Name, Type: ft})
		}
		st.SetFields(fields)
	}
}

func (c *checker) collectGlobalsAndFuncs(file *ast.File) {
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			if c.lookupTop(d.Name) != nil || c.prog.Funcs[d.Name] != nil {
				c.errorf(d.TokPos, "%s redeclared", d.Name)
				continue
			}
			t := c.resolveType(d.Spec)
			if types.IsVoid(t) {
				c.errorf(d.TokPos, "variable %s has void type", d.Name)
				t = types.IntType
			}
			obj := &Object{
				Name:   d.Name,
				Kind:   GlobalObj,
				Type:   t,
				Index:  int64(len(c.prog.Globals)),
				Extern: d.Extern,
				Init:   d.Init,
			}
			c.prog.Globals = append(c.prog.Globals, obj)
			c.prog.GlobalsByName[d.Name] = obj
		case *ast.FuncDecl:
			c.collectFunc(d)
		}
	}
}

func (c *checker) lookupTop(name string) *Object { return c.prog.GlobalsByName[name] }

func (c *checker) collectFunc(d *ast.FuncDecl) {
	if c.prog.GlobalsByName[d.Name] != nil {
		c.errorf(d.TokPos, "%s redeclared as function", d.Name)
		return
	}
	if _, isBuiltin := c.builtins[d.Name]; isBuiltin {
		c.errorf(d.TokPos, "%s is a builtin and cannot be redefined", d.Name)
		return
	}
	sig := &types.Func{Result: c.resolveType(d.Result)}
	if !types.IsScalar(sig.Result) && !types.IsVoid(sig.Result) {
		c.errorf(d.TokPos, "function %s must return a scalar, pointer, or void (return structs by pointer)", d.Name)
		sig.Result = types.IntType
	}
	var params []*Object
	slot := int64(0)
	for i, prm := range d.Params {
		pt := c.resolveType(prm.Spec)
		pt = decay(pt)
		if !types.IsScalar(pt) {
			c.errorf(d.TokPos, "parameter %d of %s: only scalar and pointer parameters are supported (pass structs by pointer)", i+1, d.Name)
			pt = types.IntType
		}
		sig.Params = append(sig.Params, pt)
		name := prm.Name
		if name == "" {
			name = fmt.Sprintf("$arg%d", i)
		}
		params = append(params, &Object{Name: name, Kind: ParamObj, Type: pt, Index: slot})
		slot += pt.Size()
	}
	if prev, ok := c.prog.Funcs[d.Name]; ok {
		// A prototype may precede the definition; signatures must match
		// and at most one body may exist.
		if !types.Identical(prev.Sig, sig) {
			c.errorf(d.TokPos, "conflicting declarations of %s: %s vs %s", d.Name, prev.Sig, sig)
			return
		}
		if prev.Decl.Body != nil && d.Body != nil {
			c.errorf(d.TokPos, "function %s redefined", d.Name)
			return
		}
		if d.Body != nil || d.Extern {
			prev.Decl = d
			prev.Extern = d.Extern
			prev.Params = params
		}
		return
	}
	if _, isLib := c.prog.Lib[d.Name]; isLib && d.Body != nil {
		c.errorf(d.TokPos, "function %s shadows a library function", d.Name)
		return
	}
	fn := &Function{Name: d.Name, Sig: sig, Params: params, Decl: d, Extern: d.Extern}
	c.prog.Funcs[d.Name] = fn
	c.prog.FuncOrder = append(c.prog.FuncOrder, d.Name)
}

// ------------------------------------------------------------ types

func decay(t types.Type) types.Type {
	if a, ok := t.(*types.Array); ok {
		return &types.Pointer{Elem: a.Elem}
	}
	return t
}

func (c *checker) resolveType(spec ast.TypeSpec) types.Type {
	switch s := spec.(type) {
	case *ast.BasicSpec:
		switch s.Kind {
		case types.Void:
			return types.VoidType
		case types.Int:
			return types.IntType
		case types.Char:
			return types.CharType
		case types.Long:
			return types.LongType
		case types.UInt:
			return types.UIntType
		}
	case *ast.PointerSpec:
		return &types.Pointer{Elem: c.resolveType(s.Elem)}
	case *ast.StructSpec:
		if st, ok := c.prog.Structs[s.Name]; ok {
			return st
		}
		c.errorf(s.TokPos, "undefined struct %s", s.Name)
		st := &types.Struct{Name: s.Name}
		st.SetFields(nil)
		c.prog.Structs[s.Name] = st
		return st
	case *ast.ArraySpec:
		elem := c.resolveType(s.Elem)
		n, ok := c.constValue(s.Len)
		if !ok || n <= 0 {
			c.errorf(s.TokPos, "array length must be a positive constant")
			n = 1
		}
		return &types.Array{Elem: elem, Len: n}
	}
	return types.IntType
}

// constValue evaluates a constant integer expression (literals, sizeof,
// unary minus, and arithmetic over constants).
func (c *checker) constValue(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.SizeofType:
		return c.resolveType(e.Of).Size(), true
	case *ast.Unary:
		if v, ok := c.constValue(e.X); ok {
			switch e.Op {
			case token.MINUS:
				return -v, true
			case token.TILDE:
				return ^v, true
			case token.NOT:
				if v == 0 {
					return 1, true
				}
				return 0, true
			}
		}
	case *ast.Binary:
		x, okx := c.constValue(e.X)
		y, oky := c.constValue(e.Y)
		if okx && oky {
			switch e.Op {
			case token.PLUS:
				return x + y, true
			case token.MINUS:
				return x - y, true
			case token.STAR:
				return x * y, true
			case token.SLASH:
				if y != 0 {
					return x / y, true
				}
			case token.PERCENT:
				if y != 0 {
					return x % y, true
				}
			case token.SHL:
				if y >= 0 && y < 64 {
					return x << uint(y), true
				}
			case token.SHR:
				if y >= 0 && y < 64 {
					return x >> uint(y), true
				}
			}
		}
	}
	return 0, false
}

// ------------------------------------------------------------ bodies

func (c *checker) checkBodies(file *ast.File) {
	// Check global initializers are constant.
	for _, g := range c.prog.Globals {
		if g.Init != nil {
			if g.Extern {
				c.errorf(g.Init.Pos(), "extern variable %s cannot have an initializer", g.Name)
			}
			c.pushScope()
			c.checkExpr(g.Init)
			c.popScope()
			if v, ok := c.constValue(g.Init); ok {
				if !types.IsScalar(g.Type) {
					c.errorf(g.Init.Pos(), "only scalar globals may have initializers")
				}
				g.InitVal = v
				g.HasInit = true
			} else {
				c.errorf(g.Init.Pos(), "global initializer for %s must be a constant expression", g.Name)
			}
		}
	}
	for _, name := range c.prog.FuncOrder {
		fn := c.prog.Funcs[name]
		if fn.Extern {
			if !types.IsScalar(fn.Sig.Result) && !types.IsVoid(fn.Sig.Result) {
				c.errorf(fn.Decl.TokPos, "external function %s must return a scalar, pointer, or void", name)
			}
			continue
		}
		if fn.Decl.Body == nil {
			c.errorf(fn.Decl.TokPos, "function %s declared but never defined (mark it extern to treat it as an environment input)", name)
			continue
		}
		c.checkFunc(fn)
	}
}

func (c *checker) checkFunc(fn *Function) {
	c.fn = fn
	c.scopes = nil
	c.loops = 0
	c.switches = 0
	c.pushScope()
	slot := int64(0)
	for _, p := range fn.Params {
		c.declare(p, fn.Decl.TokPos)
		fn.Locals = append(fn.Locals, p)
		slot += p.Type.Size()
	}
	c.frameNext = slot
	c.checkBlock(fn.Decl.Body)
	c.popScope()
	fn.FrameSize = c.frameNext
	c.fn = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Object{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(obj *Object, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[obj.Name]; dup {
		c.errorf(pos, "%s redeclared in this block", obj.Name)
		return
	}
	top[obj.Name] = obj
}

func (c *checker) lookup(name string) *Object {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	return c.prog.GlobalsByName[name]
}

func (c *checker) checkBlock(b *ast.Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
	case *ast.DeclStmt:
		t := c.resolveType(s.Spec)
		if types.IsVoid(t) {
			c.errorf(s.TokPos, "variable %s has void type", s.Name)
			t = types.IntType
		}
		obj := &Object{Name: s.Name, Kind: LocalObj, Type: t, Index: c.frameNext}
		c.frameNext += t.Size()
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			c.checkAssignable(it, decay(t), s.Init)
		}
		c.declare(obj, s.TokPos)
		c.fn.Locals = append(c.fn.Locals, obj)
		c.prog.DeclObjs[s] = obj
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.If:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.While:
		c.checkCond(s.Cond)
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
	case *ast.DoWhile:
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		c.checkCond(s.Cond)
	case *ast.For:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		c.popScope()
	case *ast.Switch:
		t := c.checkExpr(s.Tag)
		if !types.IsInteger(decay(t)) {
			c.errorf(s.TokPos, "switch tag must be an integer, found %s", t)
		}
		seen := map[int64]bool{}
		for _, cs := range s.Cases {
			if cs.Value != nil {
				v, ok := c.constValue(cs.Value)
				if !ok {
					c.errorf(cs.TokPos, "case label must be a constant expression")
				} else if seen[v] {
					c.errorf(cs.TokPos, "duplicate case label %d", v)
				} else {
					seen[v] = true
				}
				c.pushScope()
				c.checkExpr(cs.Value)
				c.popScope()
			}
			// break inside a switch leaves the switch.
			c.switches++
			c.pushScope()
			for _, inner := range cs.Body {
				c.checkStmt(inner)
			}
			c.popScope()
			c.switches--
		}
	case *ast.Return:
		res := c.fn.Sig.Result
		if s.X == nil {
			if !types.IsVoid(res) {
				c.errorf(s.TokPos, "return without value in function returning %s", res)
			}
			return
		}
		if types.IsVoid(res) {
			c.errorf(s.TokPos, "return with value in void function %s", c.fn.Name)
			c.checkExpr(s.X)
			return
		}
		t := c.checkExpr(s.X)
		c.checkAssignable(t, res, s.X)
	case *ast.Break:
		if c.loops == 0 && c.switches == 0 {
			c.errorf(s.TokPos, "break outside loop or switch")
		}
	case *ast.Continue:
		if c.loops == 0 {
			c.errorf(s.TokPos, "continue outside loop")
		}
	case *ast.Empty:
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if !types.IsScalar(decay(t)) {
		c.errorf(e.Pos(), "condition must be scalar, found %s", t)
	}
}

// checkAssignable reports an error when src cannot initialize dst.
// The integer constant 0 and NULL convert to any pointer type.
func (c *checker) checkAssignable(src, dst types.Type, at ast.Expr) {
	src = decay(src)
	if types.AssignableTo(src, dst) {
		return
	}
	if types.IsPointer(dst) {
		if _, isNull := at.(*ast.NullLit); isNull {
			return
		}
		if lit, isLit := at.(*ast.IntLit); isLit && lit.Value == 0 {
			return
		}
		if types.IsInteger(src) {
			c.errorf(at.Pos(), "cannot assign %s to %s without a cast", src, dst)
			return
		}
	}
	if types.IsInteger(dst) && types.IsPointer(src) {
		c.errorf(at.Pos(), "cannot assign %s to %s without a cast", src, dst)
		return
	}
	c.errorf(at.Pos(), "cannot assign %s to %s", src, dst)
}

// setType annotates an expression node and returns the type.
func setType(e ast.Expr, t types.Type) types.Type {
	e.(ast.Typed).SetType(t)
	return t
}

func (c *checker) checkExpr(e ast.Expr) types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return setType(e, types.IntType)
	case *ast.StringLit:
		// The call checker handles assert messages without visiting them;
		// any string reaching here is in an unsupported position.
		c.errorf(e.TokPos, "string literals are only supported as assert messages")
		return setType(e, &types.Pointer{Elem: types.CharType})
	case *ast.NullLit:
		return setType(e, &types.Pointer{Elem: types.VoidType})
	case *ast.Ident:
		obj := c.lookup(e.Name)
		if obj == nil {
			c.errorf(e.TokPos, "undefined: %s", e.Name)
			return setType(e, types.IntType)
		}
		c.prog.Uses[e] = obj
		return setType(e, obj.Type)
	case *ast.Unary:
		return c.checkUnary(e)
	case *ast.Postfix:
		t := c.checkExpr(e.X)
		c.requireLvalue(e.X)
		if !types.IsScalar(decay(t)) {
			c.errorf(e.TokPos, "%s requires a scalar operand, found %s", e.Op, t)
		}
		return setType(e, decay(t))
	case *ast.Binary:
		return c.checkBinary(e)
	case *ast.Assign:
		lt := c.checkExpr(e.Lhs)
		c.requireLvalue(e.Lhs)
		rt := c.checkExpr(e.Rhs)
		if e.Op == token.ASSIGN {
			c.checkAssignable(rt, decay(lt), e.Rhs)
		} else {
			// Compound assignment: arithmetic rules apply.
			if !types.IsScalar(decay(lt)) || !types.IsScalar(decay(rt)) {
				c.errorf(e.TokPos, "invalid operands for %s: %s and %s", e.Op, lt, rt)
			}
		}
		return setType(e, decay(lt))
	case *ast.Cond:
		c.checkCond(e.C)
		a := decay(c.checkExpr(e.Then))
		b := decay(c.checkExpr(e.Else))
		switch {
		case types.Identical(a, b):
			return setType(e, a)
		case types.IsInteger(a) && types.IsInteger(b):
			return setType(e, types.IntType)
		case types.IsPointer(a) && types.IsPointer(b):
			return setType(e, a)
		case types.IsPointer(a) && types.IsInteger(b), types.IsInteger(a) && types.IsPointer(b):
			// NULL-ish mixing; permit, prefer pointer type.
			if types.IsPointer(a) {
				return setType(e, a)
			}
			return setType(e, b)
		default:
			c.errorf(e.TokPos, "mismatched ?: branches: %s vs %s", a, b)
			return setType(e, a)
		}
	case *ast.Call:
		return c.checkCall(e)
	case *ast.Index:
		xt := decay(c.checkExpr(e.X))
		it := c.checkExpr(e.I)
		p, ok := xt.(*types.Pointer)
		if !ok {
			c.errorf(e.TokPos, "cannot index %s", xt)
			return setType(e, types.IntType)
		}
		if !types.IsInteger(decay(it)) {
			c.errorf(e.I.Pos(), "array index must be an integer, found %s", it)
		}
		return setType(e, p.Elem)
	case *ast.Field:
		xt := c.checkExpr(e.X)
		var st *types.Struct
		if e.Arrow {
			p, ok := decay(xt).(*types.Pointer)
			if ok {
				st, _ = p.Elem.(*types.Struct)
			}
		} else {
			st, _ = xt.(*types.Struct)
		}
		if st == nil {
			c.errorf(e.TokPos, "%s is not a struct%s", xt, map[bool]string{true: " pointer", false: ""}[e.Arrow])
			return setType(e, types.IntType)
		}
		f, ok := st.FieldByName(e.Name)
		if !ok {
			c.errorf(e.TokPos, "struct %s has no field %s", st.Name, e.Name)
			return setType(e, types.IntType)
		}
		return setType(e, f.Type)
	case *ast.Cast:
		to := c.resolveType(e.To)
		from := decay(c.checkExpr(e.X))
		if !types.IsScalar(to) && !types.IsVoid(to) {
			c.errorf(e.TokPos, "cannot cast to %s (only scalar casts are supported)", to)
		}
		if !types.IsScalar(from) {
			c.errorf(e.TokPos, "cannot cast from %s", from)
		}
		return setType(e, to)
	case *ast.SizeofType:
		e.Resolved = c.resolveType(e.Of)
		return setType(e, types.IntType)
	case *ast.SizeofExpr:
		c.checkExpr(e.X)
		return setType(e, types.IntType)
	}
	panic(fmt.Sprintf("sema: unknown expression %T", e))
}

func (c *checker) checkUnary(e *ast.Unary) types.Type {
	switch e.Op {
	case token.MINUS, token.TILDE:
		t := decay(c.checkExpr(e.X))
		if !types.IsInteger(t) {
			c.errorf(e.TokPos, "operator %s requires an integer, found %s", e.Op, t)
			t = types.IntType
		}
		return setType(e, t)
	case token.NOT:
		t := decay(c.checkExpr(e.X))
		if !types.IsScalar(t) {
			c.errorf(e.TokPos, "operator ! requires a scalar, found %s", t)
		}
		return setType(e, types.IntType)
	case token.STAR:
		t := decay(c.checkExpr(e.X))
		p, ok := t.(*types.Pointer)
		if !ok {
			c.errorf(e.TokPos, "cannot dereference %s", t)
			return setType(e, types.IntType)
		}
		if types.IsVoid(p.Elem) {
			c.errorf(e.TokPos, "cannot dereference void*")
			return setType(e, types.IntType)
		}
		return setType(e, p.Elem)
	case token.AMP:
		t := c.checkExpr(e.X)
		c.requireLvalue(e.X)
		return setType(e, &types.Pointer{Elem: t})
	case token.INC, token.DEC:
		t := c.checkExpr(e.X)
		c.requireLvalue(e.X)
		if !types.IsScalar(decay(t)) {
			c.errorf(e.TokPos, "%s requires a scalar operand, found %s", e.Op, t)
		}
		return setType(e, decay(t))
	}
	panic("sema: unknown unary op " + e.Op.String())
}

func (c *checker) checkBinary(e *ast.Binary) types.Type {
	xt := decay(c.checkExpr(e.X))
	yt := decay(c.checkExpr(e.Y))
	switch e.Op {
	case token.LAND, token.LOR:
		if !types.IsScalar(xt) || !types.IsScalar(yt) {
			c.errorf(e.TokPos, "invalid operands for %s: %s and %s", e.Op, xt, yt)
		}
		return setType(e, types.IntType)
	case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ:
		okPair := (types.IsInteger(xt) && types.IsInteger(yt)) ||
			(types.IsPointer(xt) && types.IsPointer(yt)) ||
			(types.IsPointer(xt) && isZeroish(e.Y)) ||
			(types.IsPointer(yt) && isZeroish(e.X))
		if !okPair {
			c.errorf(e.TokPos, "invalid comparison: %s %s %s", xt, e.Op, yt)
		}
		return setType(e, types.IntType)
	case token.PLUS:
		switch {
		case types.IsInteger(xt) && types.IsInteger(yt):
			return setType(e, arith(xt, yt))
		case types.IsPointer(xt) && types.IsInteger(yt):
			return setType(e, xt)
		case types.IsInteger(xt) && types.IsPointer(yt):
			return setType(e, yt)
		}
		c.errorf(e.TokPos, "invalid operands for +: %s and %s", xt, yt)
		return setType(e, types.IntType)
	case token.MINUS:
		switch {
		case types.IsInteger(xt) && types.IsInteger(yt):
			return setType(e, arith(xt, yt))
		case types.IsPointer(xt) && types.IsInteger(yt):
			return setType(e, xt)
		case types.IsPointer(xt) && types.IsPointer(yt):
			return setType(e, types.IntType)
		}
		c.errorf(e.TokPos, "invalid operands for -: %s and %s", xt, yt)
		return setType(e, types.IntType)
	default: // * / % & | ^ << >>
		if !types.IsInteger(xt) || !types.IsInteger(yt) {
			c.errorf(e.TokPos, "invalid operands for %s: %s and %s", e.Op, xt, yt)
			return setType(e, types.IntType)
		}
		return setType(e, arith(xt, yt))
	}
}

// arith is the usual arithmetic conversion: long dominates, otherwise int.
func arith(a, b types.Type) types.Type {
	if ab, ok := a.(*types.Basic); ok && ab.Kind == types.Long {
		return types.LongType
	}
	if bb, ok := b.(*types.Basic); ok && bb.Kind == types.Long {
		return types.LongType
	}
	if ab, ok := a.(*types.Basic); ok && ab.Kind == types.UInt {
		return types.UIntType
	}
	if bb, ok := b.(*types.Basic); ok && bb.Kind == types.UInt {
		return types.UIntType
	}
	return types.IntType
}

func isZeroish(e ast.Expr) bool {
	if _, ok := e.(*ast.NullLit); ok {
		return true
	}
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value == 0
}

func (c *checker) checkCall(e *ast.Call) types.Type {
	var sig *types.Func
	switch {
	case c.builtins[e.Fun] != nil:
		sig = c.builtins[e.Fun]
	case c.prog.Funcs[e.Fun] != nil:
		sig = c.prog.Funcs[e.Fun].Sig
	case c.prog.Lib[e.Fun] != nil:
		sig = c.prog.Lib[e.Fun]
	default:
		c.errorf(e.TokPos, "call to undefined function %s (declare it extern to treat it as an environment input)", e.Fun)
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return setType(e, types.IntType)
	}
	// assert accepts an optional string message as a second argument.
	if e.Fun == "assert" && len(e.Args) == 2 {
		t := c.checkExpr(e.Args[0])
		if !types.IsScalar(decay(t)) {
			c.errorf(e.Args[0].Pos(), "assert requires a scalar condition")
		}
		if msg, ok := e.Args[1].(*ast.StringLit); !ok {
			c.errorf(e.Args[1].Pos(), "assert message must be a string literal")
		} else {
			setType(msg, &types.Pointer{Elem: types.CharType})
		}
		return setType(e, types.VoidType)
	}
	if len(e.Args) != len(sig.Params) {
		c.errorf(e.TokPos, "%s expects %d arguments, got %d", e.Fun, len(sig.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(sig.Params) {
			c.checkAssignable(at, sig.Params[i], a)
		}
	}
	return setType(e, sig.Result)
}

// requireLvalue reports an error unless e designates a memory location.
func (c *checker) requireLvalue(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		return
	case *ast.Index:
		return
	case *ast.Field:
		if !e.Arrow {
			c.requireLvalue(e.X)
		}
		return
	case *ast.Unary:
		if e.Op == token.STAR {
			return
		}
	}
	c.errorf(e.Pos(), "expression is not assignable")
}
