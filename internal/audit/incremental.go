// Incremental re-audit: the corpus-aware fast path of the audit pool.
//
// The paper's algorithm assumes a fixed program; run_DART's guarantees
// are per-program-version.  Between audits of a real library, though,
// most functions have not changed — so the corpus keys each function's
// finished result by its IR content hash (ir.FuncHashes: position-
// independent, callee-folding) and the batch's options signature, and
// an unchanged function re-validates by replaying its distilled suite
// and bug fixtures instead of re-searching.  Validation is effectful,
// not declarative: the suite must reproduce every stored covered branch
// direction and every bug fixture must reproduce its recorded failure on
// the *current* program, so a trusted entry carries the same evidence a
// fresh search would have produced (Theorem 1(a) re-established at
// load; completeness flags restored only under a verified-identical
// function).  Any mismatch, at any layer, falls back to the full
// search.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"dart/internal/concolic"
	"dart/internal/corpus"
	"dart/internal/coverage"
	"dart/internal/distill"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
)

// corpusCtx is the per-batch incremental state: the open corpus plus
// the program's hash and site-translation tables, computed once and
// shared read-only by every audit worker.
type corpusCtx struct {
	c *corpus.Corpus
	// hashes is ir.FuncHashes(prog): function name -> content hash.
	hashes map[string]string
	// fnSites is ir.FuncSites(prog): function name -> global site
	// numbers by local ordinal; owner is its inverse (Taken unused).
	fnSites map[string][]int
	owner   map[int]corpus.SiteDir
	// stores counts entries written this batch.
	stores atomic.Int64
}

func newCorpusCtx(prog *ir.Prog, c *corpus.Corpus) *corpusCtx {
	if c == nil {
		return nil
	}
	fnSites := ir.FuncSites(prog)
	owner := map[int]corpus.SiteDir{}
	for fn, sites := range fnSites {
		for ord, site := range sites {
			owner[site] = corpus.SiteDir{Fn: fn, Ord: ord}
		}
	}
	return &corpusCtx{c: c, hashes: ir.FuncHashes(prog), fnSites: fnSites, owner: owner}
}

// optionsSig renders every result-determining audit option for function
// i.  An entry is replayed only under a byte-equal signature; anything
// else re-searches (miss reason "options-changed").
func optionsSig(o Options, i int) string {
	libs := make([]string, 0, len(o.LibImpls))
	for name := range o.LibImpls {
		libs = append(libs, name)
	}
	sort.Strings(libs)
	return fmt.Sprintf(
		"audit-sig-v1 seed=%d runs=%d retry=%d steps=%d depth=%d strategy=%d stepbug=%t budget=%d cachecap=%d workers=%d random=%t interp=%t lib=%s",
		o.Seed+int64(i), o.MaxRuns, o.RetryRuns, o.MaxSteps, o.Depth,
		int(o.Strategy), o.ReportStepLimit, o.SolverBudget, o.SolveCacheCap,
		o.Workers, o.UseRandom, o.Interpreter, strings.Join(libs, ","))
}

// replayOpts is the concrete-execution slice of the batch options:
// exactly what ReplaySuite and Replay need to reproduce the machines
// the cold search ran.
func replayOpts(o Options, i int) concolic.Options {
	return concolic.Options{
		Toplevel:    o.Toplevels[i],
		Depth:       o.Depth,
		MaxSteps:    o.MaxSteps,
		LibImpls:    o.LibImpls,
		Timeout:     o.Timeout,
		Cancel:      o.Cancel,
		Interpreter: o.Interpreter,
	}
}

// tryWarm attempts to answer function i from the corpus.  It returns
// (report, true) only when the stored entry passed every gate; any
// failure emits a CorpusMiss event with a machine-readable reason and
// sends the caller to the full search.
func (x *corpusCtx) tryWarm(prog *ir.Prog, o Options, i int, lifecycle obs.Sink) (*concolic.Report, bool) {
	fn := o.Toplevels[i]
	miss := func(reason string) (*concolic.Report, bool) {
		if lifecycle != nil {
			lifecycle.Event(obs.Event{Kind: obs.CorpusMiss, Fn: fn, Reason: reason})
		}
		return nil, false
	}
	ent, reason := x.c.LoadEntry(fn)
	if ent == nil {
		return miss(reason)
	}
	if ent.IRHash != x.hashes[fn] {
		return miss("hash-changed")
	}
	if ent.OptionsSig != optionsSig(o, i) {
		return miss("options-changed")
	}

	// Translate the stored portable coverage into current global site
	// numbers; an unknown function or out-of-range ordinal means the
	// entry does not describe this program.
	want := make(map[concolic.CovDir]bool, len(ent.Cover))
	for _, sd := range ent.Cover {
		sites, ok := x.fnSites[sd.Fn]
		if !ok || sd.Ord < 0 || sd.Ord >= len(sites) {
			return miss("invalid")
		}
		want[concolic.CovDir{Site: sites[sd.Ord], Taken: sd.Taken}] = true
	}

	// Replay the distilled suite; it must reproduce every stored
	// direction.  Extra directions are legitimate: a mispredicted run is
	// aborted mid-execution, so its recorded coverage (and therefore the
	// search's) is a prefix of what its inputs reach when replayed freely.
	// The warm report restores the stored set verbatim either way, so it
	// stays byte-identical to the cold one.
	copts := replayOpts(o, i)
	results, err := concolic.ReplaySuite(prog, copts, ent.Suite)
	if err != nil {
		return miss("replay-mismatch")
	}
	got := map[concolic.CovDir]bool{}
	for _, res := range results {
		if len(res.Missing) > 0 || (res.Err != nil && res.Err.Outcome == machine.Interrupted) {
			return miss("replay-mismatch")
		}
		for _, d := range res.Cover {
			got[d] = true
		}
	}
	for d := range want {
		if !got[d] {
			return miss("replay-mismatch")
		}
	}

	// Every bug fixture must still reproduce its recorded failure.
	for _, b := range ent.Bugs {
		rerr, rpErr := concolic.Replay(prog, copts, b.Inputs)
		if rpErr != nil || rerr == nil || rerr.Outcome != b.Kind || rerr.Msg != b.Msg {
			return miss("replay-mismatch")
		}
	}

	cov := coverage.New(prog.NumSites)
	for d := range want {
		cov.Record(d.Site, d.Taken)
	}
	m := obs.NewMetrics()
	m.Add(obs.CCorpusHits, 1)
	m.Add(obs.CCorpusReplays, int64(len(ent.Suite)+len(ent.Bugs)))
	rep := &concolic.Report{
		Runs:            ent.Runs,
		Bugs:            ent.Bugs,
		Complete:        ent.Flags.Complete,
		AllLinear:       ent.Flags.AllLinear,
		AllLocsDefinite: ent.Flags.AllLocsDefinite,
		SolverComplete:  ent.Flags.SolverComplete,
		Stopped:         concolic.StopReason(ent.Flags.Stopped),
		Coverage:        cov,
		Workers:         o.Workers,
		Metrics:         m.Snapshot(),
	}
	if lifecycle != nil {
		lifecycle.Event(obs.Event{Kind: obs.CorpusHit, Fn: fn,
			Count: len(ent.Suite) + len(ent.Bugs)})
	}
	return rep, true
}

// store distills a finished cold search into a fresh corpus entry.
// Only deterministic terminal outcomes are stored: a timed-out,
// cancelled, faulted, or retried search reflects wall-clock accidents,
// not the program, and must not be replayed as its verdict.
func (x *corpusCtx) store(prog *ir.Prog, o Options, i int, rep *concolic.Report, status Status, retried bool, lifecycle obs.Sink) {
	if rep == nil || retried || (status != OK && status != Buggy) {
		return
	}
	fn := o.Toplevels[i]
	d := distill.Distill(rep.RunLog, rep.Coverage)
	if len(d.Missing) > 0 {
		// The log cannot reconstruct the search's coverage (it should,
		// by the recorder's union invariant); storing would validate-fail
		// on every warm start, so skip.
		return
	}
	cover, ok := x.portableCover(rep.Coverage)
	if !ok {
		return
	}
	ent := &corpus.Entry{
		Function:   fn,
		IRHash:     x.hashes[fn],
		OptionsSig: optionsSig(o, i),
		Suite:      d.Suite,
		Bugs:       rep.Bugs,
		Cover:      cover,
		Flags: corpus.Flags{
			Complete:        rep.Complete,
			AllLinear:       rep.AllLinear,
			AllLocsDefinite: rep.AllLocsDefinite,
			SolverComplete:  rep.SolverComplete,
			Stopped:         string(rep.Stopped),
		},
		Runs: rep.Runs,
	}
	if err := x.c.StoreEntry(ent); err != nil {
		return
	}
	x.stores.Add(1)
	if lifecycle != nil {
		lifecycle.Event(obs.Event{Kind: obs.CorpusStore, Fn: fn, Count: len(d.Suite)})
	}
}

// portableCover renders a global coverage set as (function, ordinal,
// direction) triples; false when some covered site belongs to no
// function (nothing in the current IR produces that — defensive).
func (x *corpusCtx) portableCover(cov *coverage.Set) ([]corpus.SiteDir, bool) {
	var out []corpus.SiteDir
	for site := 0; site < cov.Sites(); site++ {
		taken, notTaken := cov.Site(site)
		if !taken && !notTaken {
			continue
		}
		ref, ok := x.owner[site]
		if !ok {
			return nil, false
		}
		if notTaken {
			out = append(out, corpus.SiteDir{Fn: ref.Fn, Ord: ref.Ord, Taken: false})
		}
		if taken {
			out = append(out, corpus.SiteDir{Fn: ref.Fn, Ord: ref.Ord, Taken: true})
		}
	}
	return out, true
}
