package audit

// Incremental re-audit correctness gates.  The property under test is
// Theorem 1(a) preserved across processes: a warm audit (answered from
// distilled-suite replay) must reproduce the cold audit's bug set,
// branch coverage, and completeness flags exactly — for every program
// in the corpus and every worker count — and any staleness or
// corruption must degrade to a full re-search, never a wrong verdict.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"dart/internal/concolic"
	"dart/internal/corpus"
	"dart/internal/obs"
	"dart/internal/progs"
)

// auditSig is the deterministic verdict plane of a batch: per-function
// status, bug set, completeness flags, run counts, and the aggregate
// coverage — exactly what a warm start must reproduce byte for byte.
func auditSig(r *Result) string {
	var out string
	for _, e := range r.Entries {
		out += fmt.Sprintf("%s status=%s retried=%v", e.Function, e.Status, e.Retried)
		if rep := e.Report; rep != nil {
			out += fmt.Sprintf(" runs=%d complete=%v linear=%v locs=%v solver=%v stopped=%q",
				rep.Runs, rep.Complete, rep.AllLinear, rep.AllLocsDefinite,
				rep.SolverComplete, rep.Stopped)
			var bugs []string
			for _, b := range rep.Bugs {
				bugs = append(bugs, fmt.Sprintf("%s|%s|run%d|%v", b.Kind, b.Msg, b.Run, b.Inputs))
			}
			sort.Strings(bugs)
			out += fmt.Sprintf(" bugs=%v", bugs)
		}
		out += "\n"
	}
	out += fmt.Sprintf("coverage %d/%d touched=%d\n",
		r.Coverage.Covered(), r.Coverage.Total(), r.Coverage.SitesTouched())
	return out
}

// warmable counts entries a corpus may answer: deterministic terminal
// outcomes that were not retried.
func warmable(r *Result) int {
	n := 0
	for _, e := range r.Entries {
		if !e.Retried && (e.Status == OK || e.Status == Buggy) {
			n++
		}
	}
	return n
}

// TestAuditWarmMatchesCold is the tentpole gate over the progs corpus
// at every supported worker count: the cold search populates the
// corpus, the warm one replays from it, and the verdict planes must
// match exactly while every eligible function is a corpus hit.  (The
// minisip half of this gate lives at the repo root —
// TestIncrementalSIPWarmMatchesCold — to avoid an import cycle.)
func TestAuditWarmMatchesCold(t *testing.T) {
	sources := []struct {
		name, src string
		runs      int
	}{
		{"section21", progs.Section21, 200},
		{"foobarlib", progs.FoobarLib, 200},
		{"clusters", progs.Clusters, 200},
		{"divbyzero", progs.DivByZero, 200},
		{"nullchain", progs.NullChain, 200},
	}
	for _, s := range sources {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", s.name, workers), func(t *testing.T) {
				prog := compile(t, s.src)
				c, err := corpus.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{
					Seed:    11,
					MaxRuns: s.runs,
					Workers: workers,
					Corpus:  c,
				}
				opts.Toplevels = append(opts.Toplevels, prog.FuncOrder...)
				cold := Run(prog, opts)
				if cold.CorpusHits != 0 {
					t.Fatalf("cold run claims %d corpus hits", cold.CorpusHits)
				}
				if int(cold.CorpusStores) != warmable(cold) {
					t.Errorf("stored %d entries, %d warmable", cold.CorpusStores, warmable(cold))
				}
				warm := Run(prog, opts)
				if got, want := auditSig(warm), auditSig(cold); got != want {
					t.Errorf("warm verdicts diverge from cold:\ncold:\n%swarm:\n%s", want, got)
				}
				if warm.CorpusHits != warmable(cold) {
					t.Errorf("warm hits = %d, want %d (every stored entry)",
						warm.CorpusHits, warmable(cold))
				}
				if !reflect.DeepEqual(warm.Coverage, cold.Coverage) {
					t.Error("warm coverage set differs from cold")
				}
			})
		}
	}
}

// TestAuditStaleHashResearchesOnlyChanged mutates one function between
// audits: only it (and functions whose hash folds it as a callee) may
// re-search; the rest must stay corpus hits even though the edit
// shifted every global site number after it.
func TestAuditStaleHashResearchesOnlyChanged(t *testing.T) {
	before := `
int alpha(int x) {
    if (x > 5) return 1;
    return 0;
}

int beta(int x) {
    if (x == 9) return 2;
    return 0;
}

int gamma(int x, int y) {
    if (x < y) return 3;
    return 0;
}
`
	// beta gains a conditional: its hash changes and every later global
	// site number shifts; alpha and gamma are untouched.
	after := `
int alpha(int x) {
    if (x > 5) return 1;
    return 0;
}

int beta(int x) {
    if (x == 9) return 2;
    if (x == 4) return 4;
    return 0;
}

int gamma(int x, int y) {
    if (x < y) return 3;
    return 0;
}
`
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Toplevels: []string{"alpha", "beta", "gamma"},
		Seed:      3,
		MaxRuns:   100,
		Corpus:    c,
	}
	cold := Run(compile(t, before), opts)
	if cold.CorpusStores != 3 {
		t.Fatalf("cold stored %d entries, want 3", cold.CorpusStores)
	}

	var reasons []string
	opts.Observer = obs.SinkFunc(func(ev obs.Event) {
		if ev.Kind == obs.CorpusMiss {
			reasons = append(reasons, ev.Fn+":"+ev.Reason)
		}
	})
	warm := Run(compile(t, after), opts)
	if warm.CorpusHits != 2 {
		t.Errorf("warm hits = %d, want 2 (alpha, gamma)", warm.CorpusHits)
	}
	if len(reasons) != 1 || reasons[0] != "beta:hash-changed" {
		t.Errorf("miss reasons = %v, want [beta:hash-changed]", reasons)
	}
	for _, e := range warm.Entries {
		wantCached := e.Function != "beta"
		if e.CachedByCorpus != wantCached {
			t.Errorf("%s: cached=%v, want %v", e.Function, e.CachedByCorpus, wantCached)
		}
	}
}

// TestAuditCorruptEntryDegrades flips a byte in one stored entry: the
// function must silently fall back to the full search and produce the
// same verdict the cold run did.
func TestAuditCorruptEntryDegrades(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := compile(t, progs.Section21)
	opts := Options{
		Toplevels: []string{"f", "h"},
		Seed:      1,
		MaxRuns:   200,
		Corpus:    c,
	}
	cold := Run(prog, opts)

	path := filepath.Join(dir, "fn", "h.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Corpus = c2
	warm := Run(prog, opts)
	if got, want := auditSig(warm), auditSig(cold); got != want {
		t.Errorf("corrupt entry changed verdicts:\ncold:\n%swarm:\n%s", want, got)
	}
	if warm.CorpusHits != 1 {
		t.Errorf("warm hits = %d, want 1 (f only; h's entry is corrupt)", warm.CorpusHits)
	}
	// The full re-search re-stores h's entry, healing the corpus.
	if warm.CorpusStores != 1 {
		t.Errorf("warm stores = %d, want 1 (the healed entry)", warm.CorpusStores)
	}
	healed := Run(prog, Options{Toplevels: []string{"f", "h"}, Seed: 1, MaxRuns: 200, Corpus: c2})
	if healed.CorpusHits != 2 {
		t.Errorf("healed hits = %d, want 2", healed.CorpusHits)
	}
}

// TestAuditOptionsSigGatesReplay: a changed result-determining option
// must invalidate entries even when the program is identical.
func TestAuditOptionsSigGatesReplay(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := compile(t, progs.Section21)
	opts := Options{Toplevels: []string{"f", "h"}, Seed: 1, MaxRuns: 200, Corpus: c}
	Run(prog, opts)

	opts.Seed = 2 // per-function seeds move; stored verdicts no longer apply
	var reasons []string
	opts.Observer = obs.SinkFunc(func(ev obs.Event) {
		if ev.Kind == obs.CorpusMiss {
			reasons = append(reasons, ev.Reason)
		}
	})
	warm := Run(prog, opts)
	if warm.CorpusHits != 0 {
		t.Errorf("hits = %d under a different seed, want 0", warm.CorpusHits)
	}
	for _, r := range reasons {
		if r != "options-changed" {
			t.Errorf("miss reason %q, want options-changed", r)
		}
	}
}

// TestPersistentSolveCacheAcrossProcesses: the second search of the
// same function in a fresh engine (simulating a new process) must
// answer repeated constraint systems from the disk log, with the
// in-memory LRU miss counters staying honest (a disk hit is not an LRU
// miss-then-solve).
func TestPersistentSolveCacheAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	prog := compile(t, progs.Section21)
	run := func() *concolic.Report {
		c, err := corpus.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := concolic.Run(prog, concolic.Options{
			Toplevel:       "h",
			MaxRuns:        200,
			Seed:           1,
			Persistent:     c,
			CollectMetrics: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.FlushSolves(); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run()
	if first.SolveCacheDiskHits != 0 {
		t.Fatalf("first run claims %d disk hits", first.SolveCacheDiskHits)
	}
	second := run()
	if second.SolveCacheDiskHits == 0 {
		t.Fatal("second run never hit the persistent solve cache")
	}
	// SolverCalls counts consultations (incremented before any cache
	// lookup), so it is identical across runs; what the disk log saves is
	// the miss-then-solve work behind them.
	if second.SolveCacheMisses >= first.SolveCacheMisses {
		t.Errorf("cache misses did not drop: first=%d second=%d",
			first.SolveCacheMisses, second.SolveCacheMisses)
	}
	// Verdict plane unchanged: same bugs, same coverage.
	if len(first.Bugs) != len(second.Bugs) ||
		first.Coverage.Covered() != second.Coverage.Covered() {
		t.Errorf("persistent cache changed the outcome: bugs %d/%d cover %d/%d",
			len(first.Bugs), len(second.Bugs),
			first.Coverage.Covered(), second.Coverage.Covered())
	}
	if second.Metrics == nil || second.Metrics.Counters[obs.CSolveCacheDisk] !=
		int64(second.SolveCacheDiskHits) {
		t.Error("CSolveCacheDisk counter disagrees with the report")
	}
}
