// Package audit runs a fault-tolerant whole-library audit: the paper's
// oSIP experiment (Sec. 4.3) at industrial scale.  Every candidate
// toplevel function is searched independently — its own seed, its own
// run budget, its own wall-clock deadline, its own recover barrier —
// and the candidates are fanned out over a worker pool.  A hung,
// diverging, or internally-faulting function degrades to a partial
// per-function result (ok / bugs / timeout / internal-fault) and never
// takes down the batch.
//
// Determinism: function i always runs with seed Seed+i regardless of
// which worker picks it up or in which order, so as long as no deadline
// trips, a batch produces byte-identical results for any Jobs value.
package audit

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"dart/internal/concolic"
	"dart/internal/corpus"
	"dart/internal/coverage"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
)

// Status classifies one function's audit outcome.
type Status string

// Statuses.
const (
	// OK: the search finished within its budgets and found nothing.
	OK Status = "ok"
	// Buggy: the search found at least one bug (the entry's report
	// carries the bugs and their replayable input vectors).
	Buggy Status = "bugs"
	// TimedOut: the per-function deadline tripped (even after the
	// reduced-budget retry); the report is partial.
	TimedOut Status = "timeout"
	// Faulted: the engine failed internally on this function; the batch
	// carries the diagnostic and continues.
	Faulted Status = "internal-fault"
	// Cancelled: the batch-wide Cancel channel was closed before this
	// function finished.
	Cancelled Status = "cancelled"
)

// Options configures a library audit.
type Options struct {
	// Toplevels are the functions to audit; entry order follows it.
	Toplevels []string
	// Seed drives the batch: function i runs with Seed+i, making results
	// independent of worker scheduling.
	Seed int64
	// MaxRuns is the per-function execution budget (default 1000, the
	// paper's oSIP budget).
	MaxRuns int
	// MaxSteps bounds each execution (0 = machine default).
	MaxSteps int64
	// Timeout is the per-function wall-clock deadline (0 = none).
	Timeout time.Duration
	// RetryRuns is the run budget for the single retry of a timed-out
	// function: a smaller search may fit the same deadline, salvaging a
	// complete-if-shallower result.  Default MaxRuns/10 (min 1); set
	// negative to disable the retry.
	RetryRuns int
	// Jobs is the worker-pool size: how many functions are audited
	// concurrently.  Default GOMAXPROCS / Workers (min 1), so the batch
	// respects one total CPU budget — raising Workers narrows Jobs
	// instead of oversubscribing.  Set both explicitly to oversubscribe
	// on purpose.
	Jobs int
	// Workers is the per-function search parallelism, passed through to
	// concolic.Options.Workers (default 1: the sequential engines).
	// Jobs spreads the CPU across many small functions; Workers
	// concentrates it inside few large ones.
	Workers int
	// UseRandom selects the pure random-testing baseline.
	UseRandom bool
	// Interpreter runs every per-function search on the reference
	// tree-walking interpreter instead of the compiled engine (the
	// -xcheck differential gate's other half).
	Interpreter bool
	// Depth, Strategy, ReportStepLimit, SolverBudget, SolveCacheCap, and
	// LibImpls pass through to every per-function search.  Each function
	// gets its own solve cache (like its own metrics registry), so the
	// cache keeps audit results independent of Jobs.
	Depth           int
	Strategy        concolic.Strategy
	ReportStepLimit bool
	SolverBudget    int64
	SolveCacheCap   int
	LibImpls        map[string]machine.LibImpl
	// Cancel aborts the whole batch when closed; finished entries keep
	// their results, the rest report Cancelled.
	Cancel <-chan struct{}
	// Observer receives the trace events of every per-function search,
	// plus AuditFnStart/AuditFnEnd lifecycle brackets.  It must be safe
	// for concurrent use when Jobs > 1 or Workers > 1 (the bundled obs
	// sinks are).  Events carry no audit-job identity, so the
	// per-function event multiset is the same for any Jobs value; with
	// Workers > 1 each event additionally names its search worker.
	Observer obs.Sink
	// OnEntry, when non-nil, is called with each function's finished
	// Entry as it completes (from the worker goroutine that ran it, so
	// it must be safe for concurrent use when Jobs > 1).  The live ops
	// server uses it to fold per-function coverage in as it lands.
	OnEntry func(Entry)
	// ProfileLabels tags each worker's goroutine with a dart_fn pprof
	// label naming the function under test, so CPU profiles scraped
	// from /debug/pprof attribute samples per audited function.  Off by
	// default: label maintenance costs a little on every search.
	ProfileLabels bool
	// CollectProfile asks every per-function search for a cost profile
	// (concolic.Options.CollectProfile); the per-function profiles land
	// on each Entry's report and merge into Result.Profile.
	CollectProfile bool
	// CollectExplain asks every per-function search for a coverage
	// explainer ledger (concolic.Options.CollectExplain); the
	// per-function ledgers land on each Entry's report and merge into
	// Result.Explain, where concolic.ResolveExplain against the merged
	// Coverage yields the whole-library "why not covered" verdicts.
	CollectExplain bool
	// StallWindow passes through to concolic.Options.StallWindow.
	StallWindow int64
	// Corpus, when non-nil, enables incremental re-audit.  Before each
	// function is searched its stored entry is consulted: if the
	// function's IR content hash and the batch's options signature both
	// match, the entry's distilled suite and bug fixtures are replayed
	// (pure concrete execution, no solver) and — only if they reproduce
	// the stored coverage and failures exactly — substituted for the
	// search.  Functions that do search record their runs, distill them
	// into a suite, and store a fresh entry; every search also layers
	// the corpus's persistent solve cache under its in-memory LRU.  A
	// corrupt or stale corpus degrades to the full search, never to a
	// wrong verdict.
	Corpus *corpus.Corpus
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxRuns <= 0 {
		out.MaxRuns = 1000
	}
	if out.Depth <= 0 {
		out.Depth = 1
	}
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.Jobs <= 0 {
		out.Jobs = runtime.GOMAXPROCS(0) / out.Workers
		if out.Jobs < 1 {
			out.Jobs = 1
		}
	}
	if out.RetryRuns == 0 {
		out.RetryRuns = out.MaxRuns / 10
		if out.RetryRuns < 1 {
			out.RetryRuns = 1
		}
	}
	return out
}

// Entry is the audit result for one function.
type Entry struct {
	Function string
	Status   Status
	// Report is the (possibly partial) search report.  It is nil only
	// when the search could not run at all (Status Faulted, see Err).
	Report *concolic.Report
	// Err holds the internal-fault description when Status is Faulted
	// and the fault prevented any report.
	Err string
	// Retried reports that the function first timed out and was re-run
	// once with the reduced RetryRuns budget.
	Retried bool
	// CachedByCorpus reports that this entry was answered by replaying
	// the function's corpus suite instead of searching (its Report is
	// the validated stored result).
	CachedByCorpus bool
	// Elapsed is the wall-clock time this function's audit took
	// (including the retry, when one happened).
	Elapsed time.Duration
}

// Result is the batch outcome.
type Result struct {
	// Entries holds one result per requested function, in input order,
	// always fully populated regardless of timeouts or faults.
	Entries []Entry
	// Per-status counts.
	OK, Buggy, TimedOut, Faulted, Cancelled int
	// CorpusHits counts entries answered by corpus replay; CorpusStores
	// counts entries written or refreshed (both zero without a corpus).
	CorpusHits, CorpusStores int
	// CorpusNotes carries corpus-layer diagnostics (corrupt artifacts
	// discarded, flush failures) — informational, never verdicts.
	CorpusNotes []string
	// TotalRuns sums the executions spent across the batch.
	TotalRuns int
	// Metrics aggregates every per-function search's metrics snapshot.
	Metrics *obs.Snapshot
	// Profile aggregates every per-function search's cost profile (nil
	// unless Options.CollectProfile); sites stay distinguishable after
	// the merge because each carries its function name.
	Profile *obs.ProfileSnapshot
	// Coverage merges every per-function report's branch coverage into
	// one whole-library set (sites are program-global, so the union is
	// well-defined across functions).
	Coverage *coverage.Set
	// Explain merges every per-function report's coverage-explainer
	// ledger (nil unless Options.CollectExplain); sites are
	// program-global, so cause tallies sum exactly like Coverage unions.
	// Per-search timelines are per-function texture and do not merge;
	// the summed stall count survives.
	Explain *obs.ExplainSnapshot
}

// Functions returns how many functions were audited.
func (r *Result) Functions() int { return len(r.Entries) }

// Run audits every function in opts.Toplevels over prog.
func Run(prog *ir.Prog, opts Options) *Result {
	o := opts.withDefaults()
	entries := make([]Entry, len(o.Toplevels))

	// The audit's own lifecycle events have no per-function report to
	// attach a diagnostic to, so a panicking user sink is contained by
	// Guarded instead of the engine's recover barriers.
	lifecycle := obs.Guarded(o.Observer)

	cctx := newCorpusCtx(prog, o.Corpus)

	jobs := o.Jobs
	if jobs > len(o.Toplevels) && len(o.Toplevels) > 0 {
		jobs = len(o.Toplevels)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				entries[i] = auditOne(prog, o, i, lifecycle, cctx)
				if o.OnEntry != nil {
					notifyEntry(o.OnEntry, entries[i])
				}
			}
		}()
	}
	for i := range o.Toplevels {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &Result{
		Entries:  entries,
		Metrics:  &obs.Snapshot{Counters: map[string]int64{}, Histograms: map[string]obs.HistView{}},
		Coverage: coverage.New(prog.NumSites),
	}
	for i := range entries {
		switch entries[i].Status {
		case OK:
			res.OK++
		case Buggy:
			res.Buggy++
		case TimedOut:
			res.TimedOut++
		case Faulted:
			res.Faulted++
		case Cancelled:
			res.Cancelled++
		}
		if entries[i].CachedByCorpus {
			res.CorpusHits++
		}
		if entries[i].Report != nil {
			res.TotalRuns += entries[i].Report.Runs
			res.Metrics.Merge(entries[i].Report.Metrics)
			res.Coverage.Merge(entries[i].Report.Coverage)
			if p := entries[i].Report.Profile; p != nil {
				if res.Profile == nil {
					// Start from an empty snapshot and merge in, so the
					// result never shares slice backing with an entry.
					res.Profile = &obs.ProfileSnapshot{}
				}
				res.Profile.Merge(p)
			}
			if x := entries[i].Report.Explain; x != nil {
				if res.Explain == nil {
					// Same no-shared-backing discipline as Profile.
					res.Explain = &obs.ExplainSnapshot{}
				}
				res.Explain.Merge(x)
			}
		}
	}
	if cctx != nil {
		res.CorpusStores = int(cctx.stores.Load())
		if err := cctx.c.FlushSolves(); err != nil {
			res.CorpusNotes = append(res.CorpusNotes, err.Error())
		}
		res.CorpusNotes = append(res.CorpusNotes, cctx.c.Notes()...)
	}
	return res
}

// notifyEntry invokes the OnEntry callback behind a recover barrier:
// like a panicking observer, a panicking callback must not take down an
// audit worker.
func notifyEntry(fn func(Entry), e Entry) {
	defer func() { recover() }()
	fn(e)
}

// auditOne searches one function under its own deadline and recover
// barrier.  The engine already isolates per-run and per-solve panics;
// this barrier is the last line of defense for anything that escapes it,
// so a worker goroutine can never die and wedge the pool.
func auditOne(prog *ir.Prog, o Options, i int, lifecycle obs.Sink, cctx *corpusCtx) (entry Entry) {
	entry = Entry{Function: o.Toplevels[i]}
	start := time.Now()
	if lifecycle != nil {
		lifecycle.Event(obs.Event{Kind: obs.AuditFnStart, Fn: entry.Function})
	}
	defer func() {
		if r := recover(); r != nil {
			entry.Status = Faulted
			entry.Err = fmt.Sprintf("panic: %v", r)
		}
		entry.Elapsed = time.Since(start)
		if lifecycle != nil {
			ev := obs.Event{Kind: obs.AuditFnEnd, Fn: entry.Function, Status: string(entry.Status)}
			if entry.Report != nil {
				ev.Runs = entry.Report.Runs
				ev.Bugs = len(entry.Report.Bugs)
			}
			lifecycle.Event(ev)
		}
	}()

	search := func() {
		if cctx != nil {
			if rep, ok := cctx.tryWarm(prog, o, i, lifecycle); ok {
				entry.Report = rep
				entry.Status = statusOf(rep)
				entry.CachedByCorpus = true
				return
			}
		}
		rep, err := searchOne(prog, o, i, o.MaxRuns, cctx)
		if err != nil {
			entry.Status, entry.Err = Faulted, err.Error()
			return
		}
		if rep.Stopped == concolic.StopDeadline && o.RetryRuns > 0 {
			// One retry with a reduced run budget: the deadline is unchanged,
			// but a smaller search may finish inside it, upgrading a timeout
			// into a (shallower) complete result.
			entry.Retried = true
			if rep2, err2 := searchOne(prog, o, i, o.RetryRuns, cctx); err2 == nil {
				rep = rep2
			}
		}
		entry.Report = rep
		entry.Status = statusOf(rep)
		if cctx != nil {
			cctx.store(prog, o, i, rep, entry.Status, entry.Retried, lifecycle)
		}
	}
	if o.ProfileLabels {
		// Tag every sample this worker produces while searching this
		// function, so /debug/pprof/profile breaks CPU down by dart_fn.
		pprof.Do(context.Background(), pprof.Labels("dart_fn", entry.Function), func(context.Context) {
			search()
		})
	} else {
		search()
	}
	return entry
}

// searchOne runs the directed (or random) search for function i with the
// batch-derived seed and the per-function supervision budgets.
func searchOne(prog *ir.Prog, o Options, i, maxRuns int, cctx *corpusCtx) (*concolic.Report, error) {
	copts := concolic.Options{
		Toplevel:        o.Toplevels[i],
		Depth:           o.Depth,
		MaxRuns:         maxRuns,
		MaxSteps:        o.MaxSteps,
		Seed:            o.Seed + int64(i),
		Strategy:        o.Strategy,
		ReportStepLimit: o.ReportStepLimit,
		SolverBudget:    o.SolverBudget,
		SolveCacheCap:   o.SolveCacheCap,
		Workers:         o.Workers,
		LibImpls:        o.LibImpls,
		Timeout:         o.Timeout,
		Cancel:          o.Cancel,
		Observer:        o.Observer,
		// Per-function searches are long enough that the registry is
		// noise, and Result.Metrics should not depend on an observer.
		CollectMetrics: true,
		CollectProfile: o.CollectProfile,
		CollectExplain: o.CollectExplain,
		StallWindow:    o.StallWindow,
		Interpreter:    o.Interpreter,
	}
	if cctx != nil {
		// Record runs for suite distillation and layer the corpus's
		// persistent solve cache under the search's in-memory LRU.
		copts.RecordRuns = true
		copts.Persistent = cctx.c
	}
	if o.UseRandom {
		return concolic.RandomTest(prog, copts)
	}
	return concolic.Run(prog, copts)
}

// statusOf classifies a finished per-function report.  A deadline trip
// outranks found bugs (the bugs are still on the report); internal
// faults outrank a clean finish.
func statusOf(rep *concolic.Report) Status {
	switch {
	case rep.Stopped == concolic.StopCancelled:
		return Cancelled
	case rep.Stopped == concolic.StopDeadline:
		return TimedOut
	case len(rep.Bugs) > 0:
		return Buggy
	case len(rep.InternalErrors) > 0 || rep.Stopped == concolic.StopInternal:
		return Faulted
	default:
		return OK
	}
}
