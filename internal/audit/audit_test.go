package audit

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"dart/internal/concolic"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/parser"
	"dart/internal/progs"
	"dart/internal/sema"
)

// stripTimings zeroes the only nondeterministic audit outputs — elapsed
// wall-clock times and the solver-latency histogram — so batches can be
// compared with reflect.DeepEqual.  Everything else must reproduce.
func stripTimings(r *Result) {
	for i := range r.Entries {
		r.Entries[i].Elapsed = 0
		if rep := r.Entries[i].Report; rep != nil {
			rep.Elapsed = 0
			if rep.Metrics != nil {
				delete(rep.Metrics.Histograms, obs.HSolverLatencyUS)
			}
		}
	}
	if r.Metrics != nil {
		delete(r.Metrics.Histograms, obs.HSolverLatencyUS)
	}
}

func compile(t *testing.T, src string) *ir.Prog {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sem, err := sema.Check(f, machine.StdLibSigs())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// library mixes a clean function, a crashing one, and one that diverges
// once entered — the audit must classify each without letting the hang
// take down the batch.
const library = `
int fine(int x) {
    if (x > 0) return 1;
    return 0;
}

int crashy(int x, int *p) {
    if (x == 3) { return *p; }
    return 0;
}

int hang(int x) {
    if (x < 0) return -1;
    while (1) { }
    return 0;
}
`

func TestAuditSurvivesHangingFunction(t *testing.T) {
	prog := compile(t, library)
	start := time.Now()
	res := Run(prog, Options{
		Toplevels: []string{"fine", "crashy", "hang"},
		Seed:      1,
		MaxRuns:   50,
		MaxSteps:  1 << 62,
		Timeout:   200 * time.Millisecond,
		Jobs:      4,
		RetryRuns: -1,
	})
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Errorf("audit took %v; a hanging function must not stall the batch", elapsed)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (every function reported)", len(res.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range res.Entries {
		byName[e.Function] = e
	}
	if got := byName["fine"].Status; got != OK {
		t.Errorf("fine: status %q, want %q", got, OK)
	}
	if got := byName["crashy"].Status; got != Buggy {
		t.Errorf("crashy: status %q, want %q", got, Buggy)
	}
	if got := byName["hang"].Status; got != TimedOut {
		t.Errorf("hang: status %q, want %q", got, TimedOut)
	}
	if byName["hang"].Report == nil {
		t.Error("a timed-out function must still carry its partial report")
	}
	if res.OK != 1 || res.Buggy != 1 || res.TimedOut != 1 {
		t.Errorf("summary ok=%d buggy=%d timed_out=%d, want 1/1/1", res.OK, res.Buggy, res.TimedOut)
	}
}

func TestAuditRetriesTimedOutFunction(t *testing.T) {
	prog := compile(t, library)
	res := Run(prog, Options{
		Toplevels: []string{"hang"},
		Seed:      1,
		MaxRuns:   50,
		MaxSteps:  1 << 62,
		Timeout:   100 * time.Millisecond,
		Jobs:      1,
	})
	e := res.Entries[0]
	if !e.Retried {
		t.Error("a timed-out function should be retried once with a reduced budget")
	}
	if e.Status != TimedOut {
		t.Errorf("status %q, want %q (the hang cannot be salvaged)", e.Status, TimedOut)
	}
}

func TestAuditDeterministicAcrossJobs(t *testing.T) {
	prog := compile(t, library)
	opts := Options{
		// No timeout: nothing trips, so results must be independent of the
		// worker-pool size.  hang is excluded — without a deadline it would
		// only be stopped by the step budget, which stays deterministic,
		// but would dominate the test's runtime.
		Toplevels: []string{"fine", "crashy", "fine", "crashy"},
		Seed:      7,
		MaxRuns:   100,
	}
	o1 := opts
	o1.Jobs = 1
	oN := opts
	oN.Jobs = 4
	r1 := Run(prog, o1)
	rN := Run(prog, oN)
	stripTimings(r1)
	stripTimings(rN)
	if !reflect.DeepEqual(r1, rN) {
		t.Errorf("audit results differ between -jobs 1 and -jobs 4:\n%+v\n%+v", r1, rN)
	}
}

// TestAuditJobsDefaultRespectsWorkers: -jobs and -workers share one CPU
// budget by default — Jobs defaults to GOMAXPROCS/Workers (min 1), so
// raising per-function parallelism narrows the function-level pool
// instead of oversubscribing.
func TestAuditJobsDefaultRespectsWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		workers, wantJobs int
	}{
		{1, procs},
		{procs, 1},
		{2 * procs, 1},
	} {
		o := (&Options{Workers: tc.workers}).withDefaults()
		if o.Jobs != tc.wantJobs {
			t.Errorf("Workers=%d: default Jobs = %d, want %d (GOMAXPROCS=%d)",
				tc.workers, o.Jobs, tc.wantJobs, procs)
		}
	}
	// Explicit values pass through untouched: oversubscribing is allowed,
	// just never the default.
	o := (&Options{Workers: 4, Jobs: 6}).withDefaults()
	if o.Jobs != 6 || o.Workers != 4 {
		t.Errorf("explicit Jobs/Workers rewritten to %d/%d", o.Jobs, o.Workers)
	}
}

// TestAuditParallelWorkersFindSameBugs: an audit at Workers=2 classifies
// every function the same as at Workers=1 and reports the same bug
// positions — the per-function parallel frontier changes the schedule,
// never the verdicts.
func TestAuditParallelWorkersFindSameBugs(t *testing.T) {
	prog := compile(t, library)
	opts := Options{
		Toplevels: []string{"fine", "crashy", "fine", "crashy"},
		Seed:      7,
		MaxRuns:   100,
	}
	o1 := opts
	o1.Workers = 1
	o2 := opts
	o2.Workers = 2
	r1 := Run(prog, o1)
	r2 := Run(prog, o2)
	for i := range r1.Entries {
		e1, e2 := r1.Entries[i], r2.Entries[i]
		if e1.Status != e2.Status {
			t.Errorf("%s: status %s at workers=1, %s at workers=2", e1.Function, e1.Status, e2.Status)
			continue
		}
		if e1.Report == nil || e2.Report == nil {
			continue
		}
		sig := func(rep *concolic.Report) []string {
			var out []string
			for _, b := range rep.Bugs {
				out = append(out, fmt.Sprintf("%s|%s|%s", b.Kind, b.Msg, b.Pos))
			}
			sort.Strings(out)
			return out
		}
		if s1, s2 := sig(e1.Report), sig(e2.Report); !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: bug set %v at workers=1, %v at workers=2", e1.Function, s1, s2)
		}
		if e2.Report.Workers != 2 {
			t.Errorf("%s: Report.Workers = %d, want 2", e2.Function, e2.Report.Workers)
		}
	}
}

// TestAuditCacheDeterministicAcrossJobs: each function owns its solve
// cache (like its own metrics registry), so a cache-heavy audit must
// still reproduce byte-identically for any worker-pool size.
func TestAuditCacheDeterministicAcrossJobs(t *testing.T) {
	prog := compile(t, progs.SolverGate)
	opts := Options{
		Toplevels: []string{"gate", "gate"},
		Seed:      5,
		MaxRuns:   200,
	}
	o1 := opts
	o1.Jobs = 1
	oN := opts
	oN.Jobs = 4
	r1 := Run(prog, o1)
	rN := Run(prog, oN)
	if r1.Metrics.Counters[obs.CSolveCacheHits] == 0 {
		t.Error("expected cache hits on the gate program (is the default cache on?)")
	}
	stripTimings(r1)
	stripTimings(rN)
	if !reflect.DeepEqual(r1, rN) {
		t.Errorf("cache-on audit differs between -jobs 1 and -jobs 4:\n%+v\n%+v", r1, rN)
	}
}

func TestAuditSeedPerFunction(t *testing.T) {
	// The same function listed twice at different indices runs with
	// different seeds; listed at the same index across batches, the same
	// seed.  Spot-check via run counts on the crashing function.
	prog := compile(t, library)
	a := Run(prog, Options{Toplevels: []string{"crashy"}, Seed: 1, MaxRuns: 100})
	b := Run(prog, Options{Toplevels: []string{"crashy"}, Seed: 1, MaxRuns: 100})
	stripTimings(a)
	stripTimings(b)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and toplevels must reproduce the same batch")
	}
}

// TestAuditObserverMultisetAcrossJobs: a shared sink fed from a parallel
// audit must be race-free, and because function i always runs with seed
// Seed+i, the per-function event multiset is identical for any Jobs
// value (only the interleaving differs).  Run under -race this is the
// tier-2 gate for the observability layer's concurrency.
func TestAuditObserverMultisetAcrossJobs(t *testing.T) {
	prog := compile(t, library)
	collect := func(jobs int) (multiset map[string]int, starts, ends int) {
		var c obs.Collector
		Run(prog, Options{
			Toplevels: []string{"fine", "crashy", "fine", "crashy"},
			Seed:      7,
			MaxRuns:   100,
			Jobs:      jobs,
			Observer:  &c,
		})
		// Two searches can share a function name (and thus an Fn tag) and
		// run concurrently, so only the event *multiset* is comparable
		// across Jobs values, not any ordering.
		multiset = map[string]int{}
		for _, ev := range c.Events() {
			multiset[fmt.Sprintf("%+v", ev)]++
			switch ev.Kind {
			case obs.AuditFnStart:
				starts++
			case obs.AuditFnEnd:
				ends++
			}
		}
		return multiset, starts, ends
	}
	one, starts, ends := collect(1)
	four, _, _ := collect(4)
	if len(one) == 0 {
		t.Fatal("no events observed")
	}
	if !reflect.DeepEqual(one, four) {
		t.Errorf("per-function event multisets differ between -jobs 1 and -jobs 4")
	}
	if starts != 4 || ends != 4 {
		t.Errorf("lifecycle brackets %d/%d, want 4 each", starts, ends)
	}
}

// TestAuditObserverPanicIsolated: a panicking user-supplied sink cannot
// take down the batch — every function still gets a result, the crashy
// function still reports its bug, and each engine records the fault as
// an "observer"-phase InternalError.
func TestAuditObserverPanicIsolated(t *testing.T) {
	prog := compile(t, library)
	res := Run(prog, Options{
		Toplevels: []string{"fine", "crashy"},
		Seed:      1,
		MaxRuns:   100,
		Jobs:      2,
		Observer:  obs.SinkFunc(func(obs.Event) { panic("observer bug") }),
	})
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(res.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range res.Entries {
		byName[e.Function] = e
	}
	crashy := byName["crashy"]
	if crashy.Report == nil || len(crashy.Report.Bugs) == 0 {
		t.Errorf("crashy must still report its bug: %+v", crashy)
	}
	fine := byName["fine"]
	if fine.Report == nil || len(fine.Report.InternalErrors) != 1 ||
		fine.Report.InternalErrors[0].Phase != "observer" {
		t.Errorf("fine must carry one observer-phase InternalError: %+v", fine.Report)
	}
}

func TestAuditEntryElapsed(t *testing.T) {
	prog := compile(t, library)
	res := Run(prog, Options{Toplevels: []string{"fine"}, Seed: 1, MaxRuns: 10})
	if res.Entries[0].Elapsed <= 0 {
		t.Errorf("entry elapsed = %v, want > 0", res.Entries[0].Elapsed)
	}
	if res.Metrics == nil || res.Metrics.Counters[obs.CRuns] == 0 {
		t.Errorf("batch metrics not aggregated: %+v", res.Metrics)
	}
}

func TestAuditCancellation(t *testing.T) {
	prog := compile(t, library)
	cancel := make(chan struct{})
	close(cancel)
	res := Run(prog, Options{
		Toplevels: []string{"fine", "crashy"},
		Seed:      1,
		MaxRuns:   100,
		Cancel:    cancel,
	})
	if res.Cancelled != 2 {
		t.Errorf("cancelled = %d, want 2 (batch-wide cancel)", res.Cancelled)
	}
	for _, e := range res.Entries {
		if e.Status != Cancelled {
			t.Errorf("%s: status %q, want %q", e.Function, e.Status, Cancelled)
		}
	}
}

func TestAuditFaultedFunction(t *testing.T) {
	// A panicking library implementation reached through the solver: the
	// per-function engine isolates it, and the audit reports the function
	// as faulted while the rest of the batch stays clean.
	prog := compile(t, `
int uses_abs(int x) {
    if (x == 7) { return abs(x); }
    return 0;
}

int fine(int x) {
    if (x > 0) return 1;
    return 0;
}
`)
	impls := machine.StdLibImpls()
	impls["abs"] = func(_ *machine.Machine, _ []int64) (int64, error) {
		panic("injected library fault")
	}
	res := Run(prog, Options{
		Toplevels: []string{"uses_abs", "fine"},
		Seed:      1,
		MaxRuns:   50,
		LibImpls:  impls,
	})
	byName := map[string]Entry{}
	for _, e := range res.Entries {
		byName[e.Function] = e
	}
	if got := byName["uses_abs"].Status; got != Faulted {
		t.Errorf("uses_abs: status %q, want %q", got, Faulted)
	}
	if got := byName["fine"].Status; got != OK {
		t.Errorf("fine: status %q, want %q", got, OK)
	}
}

func TestStatusOf(t *testing.T) {
	cases := []struct {
		rep  concolic.Report
		want Status
	}{
		{concolic.Report{Stopped: concolic.StopExhausted}, OK},
		{concolic.Report{Stopped: concolic.StopDeadline}, TimedOut},
		{concolic.Report{Stopped: concolic.StopCancelled}, Cancelled},
		{concolic.Report{Stopped: concolic.StopFirstBug, Bugs: []concolic.Bug{{}}}, Buggy},
		{concolic.Report{Stopped: concolic.StopInternal}, Faulted},
		{concolic.Report{Stopped: concolic.StopMaxRuns, InternalErrors: []concolic.InternalError{{}}}, Faulted},
	}
	for i, c := range cases {
		if got := statusOf(&c.rep); got != c.want {
			t.Errorf("case %d: statusOf = %q, want %q", i, got, c.want)
		}
	}
}
