// Package protocols contains the MiniC implementation of the
// Needham–Schroeder public-key authentication protocol used by the
// paper's Sec. 4.2 experiments.
//
// The program simulates the initiator A and responder B of the protocol
// as one sequential process driven by input messages, like the C
// implementation the paper tested.  Agents and keys are small integers
// (A=1, B=2, intruder I=3; key k belongs to agent k), nonces are the
// constants Na=101, Nb=202, Ni=303, and an encrypted message
// {f1, f2, f3}Kx is the tuple (kind, key=x, f1, f2, f3).  An assertion
// fires when B commits a session it believes is with A although A never
// opened a session with B — exactly Lowe's man-in-the-middle attack.
//
// Two environment models are provided, as in the paper:
//
//   - Possibilistic: the toplevel receives arbitrary message tuples, so
//     the "intruder" can guess any value — including secrets — and DART
//     finds the projection of Lowe's attack (steps 2 and 6) at depth 2.
//   - DolevYao: an input filter only admits messages the intruder could
//     construct — replaying ciphertexts it has observed, decrypting only
//     what is encrypted under its own key, and composing messages from
//     nonces it knows.  The full six-step Lowe attack then appears as the
//     shortest violating input sequence, at depth 4.
//
// Three variants of Lowe's fix are provided: NoFix (the original,
// attackable protocol), BuggyFix (the fix's identity check is present but
// a missing early return makes it ineffective — standing in for the
// incomplete fix implementation DART exposed in the paper), and
// CorrectFix (the repaired protocol, which DART can no longer break).
package protocols

import "strings"

// Model selects the environment/intruder model.
type Model int

// Environment models.
const (
	Possibilistic Model = iota
	DolevYao
)

func (m Model) String() string {
	if m == DolevYao {
		return "dolev-yao"
	}
	return "possibilistic"
}

// Fix selects the Lowe-fix variant compiled into the protocol.
type Fix int

// Fix variants.
const (
	NoFix Fix = iota
	BuggyFix
	CorrectFix
)

func (f Fix) String() string {
	switch f {
	case BuggyFix:
		return "buggy-fix"
	case CorrectFix:
		return "correct-fix"
	}
	return "no-fix"
}

// Toplevel is the function DART drives; one call delivers one message.
const Toplevel = "ns_step"

// Source returns the MiniC source of the protocol under the given
// environment model and fix variant.
func Source(m Model, f Fix) string {
	src := nsTemplate
	switch m {
	case DolevYao:
		src = strings.Replace(src, "%FILTER%", dolevYaoFilter, 1)
	default:
		src = strings.Replace(src, "%FILTER%", "", 1)
	}
	switch f {
	case BuggyFix:
		// The identity check exists but does not stop the handler: the
		// incomplete-fix bug class the paper discovered in the original
		// C implementation.
		src = strings.Replace(src, "%FIX%",
			"if (n3 != a_peer) { fix_alarms = fix_alarms + 1; }", 1)
	case CorrectFix:
		src = strings.Replace(src, "%FIX%",
			"if (n3 != a_peer) { fix_alarms = fix_alarms + 1; return; }", 1)
	default:
		src = strings.Replace(src, "%FIX%", "", 1)
	}
	return src
}

// dolevYaoFilter is spliced into ns_step: discard any message the
// intruder could not have produced.
const dolevYaoFilter = `
    if (!is_replay(kind, key, n1, n2, n3)) {
        if (!constructible(kind, n1, n2)) {
            return;
        }
    }`

const nsTemplate = `
/* Needham-Schroeder public-key protocol.
 * Agents: A=1 (initiator), B=2 (responder), I=3 (intruder).
 * Key of agent x is x; nonces: Na=101, Nb=202, Ni=303.
 *
 * Message kinds (an encrypted tuple {..}Kkey):
 *   0: scheduling event "A, start a session with agent n1"
 *   1: {n1 = nonce, n2 = claimed sender}Kkey       (protocol msg 1)
 *   2: {n1, n2 = nonces, n3 = responder id}Kkey    (protocol msg 2)
 *   3: {n1 = nonce}Kkey                            (protocol msg 3)
 */

/* initiator A */
int a_state = 0;   /* 0 idle, 1 awaiting msg2, 2 finished */
int a_peer = 0;
int a_na = 0;

/* responder B */
int b_state = 0;   /* 0 idle, 1 awaiting msg3, 2 committed */
int b_peer = 0;
int b_na = 0;
int b_nb = 0;

/* Lowe-fix bookkeeping */
int fix_alarms = 0;

/* intruder knowledge: which protocol nonces it has learned */
int i_knows_na = 0;
int i_knows_nb = 0;

/* ciphertext log: everything sent on the wire is observable and
 * replayable by the intruder */
int log_kind[8];
int log_key[8];
int log_n1[8];
int log_n2[8];
int log_n3[8];
int log_len = 0;

void learn(int n) {
    if (n == 101) i_knows_na = 1;
    if (n == 202) i_knows_nb = 1;
}

/* observe: a message appears on the network. The intruder records it and
 * decrypts it when it is encrypted with the intruder's own key. */
void observe(int kind, int key, int n1, int n2, int n3) {
    if (key == 3) {
        if (kind == 1) { learn(n1); }
        if (kind == 2) { learn(n1); learn(n2); }
        if (kind == 3) { learn(n1); }
    }
    if (log_len < 8) {
        log_kind[log_len] = kind;
        log_key[log_len] = key;
        log_n1[log_len] = n1;
        log_n2[log_len] = n2;
        log_n3[log_len] = n3;
        log_len = log_len + 1;
    }
}

int known_nonce(int n) {
    if (n == 303) return 1;                 /* the intruder's own nonce */
    if (n == 101 && i_knows_na) return 1;
    if (n == 202 && i_knows_nb) return 1;
    if (n != 101 && n != 202) return 1;     /* arbitrary non-secret data */
    return 0;
}

int is_replay(int kind, int key, int n1, int n2, int n3) {
    int i;
    for (i = 0; i < log_len; i++) {
        if (log_kind[i] == kind && log_key[i] == key &&
            log_n1[i] == n1 && log_n2[i] == n2 && log_n3[i] == n3)
            return 1;
    }
    return 0;
}

/* constructible: can the intruder compose this message from parts it
 * knows?  Public keys and agent names are public; protocol nonces must
 * have been learned. */
int constructible(int kind, int n1, int n2) {
    if (kind == 0) return 1;        /* scheduling A is environment-free */
    if (kind == 1) return known_nonce(n1);
    if (kind == 2) { if (known_nonce(n1) && known_nonce(n2)) return 1; return 0; }
    if (kind == 3) return known_nonce(n1);
    return 0;
}

/* the correctness condition: B has committed a session it believes is
 * with A, but A never opened a session with B */
void check_attack() {
    if (b_state == 2 && b_peer == 1) {
        if (!(a_state > 0 && a_peer == 2)) {
            assert(0, "Lowe attack: B committed to a session with A that A never started");
        }
    }
}

/* A starts a session with agent x by sending {Na, A}Kx */
void handle_start(int x) {
    if (a_state == 0) {
        if (x == 2 || x == 3) {
            a_state = 1;
            a_peer = x;
            a_na = 101;
            observe(1, x, 101, 1, 0);
        }
    }
}

/* B receives {n1, n2=sender}Kb and replies {n1, Nb, B}K_sender */
void handle_msg1(int key, int n1, int n2) {
    if (key != 2) return;
    if (b_state != 0) return;
    if (n2 == 1 || n2 == 3) {
        b_state = 1;
        b_peer = n2;
        b_na = n1;
        b_nb = 202;
        observe(2, n2, n1, 202, 2);
    }
}

/* A receives {n1, n2, n3=responder}Ka and replies {n2}K_peer */
void handle_msg2(int key, int n1, int n2, int n3) {
    if (key != 1) return;
    if (a_state != 1) return;
    if (n1 == a_na) {
        %FIX%
        a_state = 2;
        observe(3, a_peer, n2, 0, 0);
    }
}

/* B receives {n1}Kb and commits when the nonce matches */
void handle_msg3(int key, int n1) {
    if (key != 2) return;
    if (b_state != 1) return;
    if (n1 == b_nb) {
        b_state = 2;
        check_attack();
    }
}

/* one protocol step: deliver one message from the environment */
void ns_step(int kind, int key, int n1, int n2, int n3) {
    %FILTER%
    if (kind == 0) handle_start(n1);
    if (kind == 1) handle_msg1(key, n1, n2);
    if (kind == 2) handle_msg2(key, n1, n2, n3);
    if (kind == 3) handle_msg3(key, n1);
}
`
