package protocols

import (
	"strings"
	"testing"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/sema"
)

// TestAllVariantsCompile checks every (model, fix) combination.
func TestAllVariantsCompile(t *testing.T) {
	for _, m := range []Model{Possibilistic, DolevYao} {
		for _, fx := range []Fix{NoFix, BuggyFix, CorrectFix} {
			t.Run(m.String()+"/"+fx.String(), func(t *testing.T) {
				src := Source(m, fx)
				f, err := parser.Parse(src)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				sem, err := sema.Check(f, machine.StdLibSigs())
				if err != nil {
					t.Fatalf("check: %v", err)
				}
				if _, err := ir.Compile(sem); err != nil {
					t.Fatalf("compile: %v", err)
				}
			})
		}
	}
}

func TestPlaceholdersSubstituted(t *testing.T) {
	for _, m := range []Model{Possibilistic, DolevYao} {
		for _, fx := range []Fix{NoFix, BuggyFix, CorrectFix} {
			src := Source(m, fx)
			if strings.Contains(src, "%FILTER%") || strings.Contains(src, "%FIX%") {
				t.Errorf("%v/%v: template placeholder left in source", m, fx)
			}
		}
	}
}

func TestModelDiffersInFilter(t *testing.T) {
	poss := Source(Possibilistic, NoFix)
	dy := Source(DolevYao, NoFix)
	if strings.Contains(poss, "is_replay(kind") {
		t.Error("possibilistic model should not filter inputs")
	}
	if !strings.Contains(dy, "is_replay(kind") {
		t.Error("Dolev-Yao model must filter inputs")
	}
}

func TestFixVariants(t *testing.T) {
	none := Source(DolevYao, NoFix)
	buggy := Source(DolevYao, BuggyFix)
	correct := Source(DolevYao, CorrectFix)
	if strings.Contains(none, "fix_alarms = fix_alarms + 1; return;") {
		t.Error("NoFix should not check the responder identity")
	}
	if !strings.Contains(buggy, "fix_alarms = fix_alarms + 1; }") ||
		strings.Contains(buggy, "return; }") {
		t.Error("BuggyFix must check but not return")
	}
	if !strings.Contains(correct, "return; }") {
		t.Error("CorrectFix must reject the message")
	}
}

func TestStringers(t *testing.T) {
	if Possibilistic.String() != "possibilistic" || DolevYao.String() != "dolev-yao" {
		t.Error("model names")
	}
	if NoFix.String() != "no-fix" || BuggyFix.String() != "buggy-fix" || CorrectFix.String() != "correct-fix" {
		t.Error("fix names")
	}
}
