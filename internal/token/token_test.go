package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		PLUS: "+", EQ: "==", ARROW: "->", KwInt: "int", KwStruct: "struct",
		EOF: "EOF", IDENT: "IDENT", SHL: "<<",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds should still render")
	}
}

func TestKeywordsTable(t *testing.T) {
	for spelling, kind := range Keywords {
		if kind.String() != spelling {
			t.Errorf("keyword %q maps to kind %v", spelling, kind)
		}
	}
	if len(Keywords) < 15 {
		t.Errorf("keyword table suspiciously small: %d", len(Keywords))
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" || !p.IsValid() {
		t.Errorf("pos: %v valid=%v", p, p.IsValid())
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos should be invalid")
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: IDENT, Lit: "foo"}
	if id.String() != `IDENT("foo")` {
		t.Errorf("token string %q", id.String())
	}
	plus := Token{Kind: PLUS}
	if plus.String() != "+" {
		t.Errorf("token string %q", plus.String())
	}
}

func TestPredicates(t *testing.T) {
	for _, k := range []Kind{ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment op", k)
		}
	}
	if PLUS.IsAssignOp() || EQ.IsAssignOp() {
		t.Error("non-assignment ops misclassified")
	}
	for _, k := range []Kind{EQ, NEQ, LT, GT, LEQ, GEQ} {
		if !k.IsComparison() {
			t.Errorf("%v should be a comparison", k)
		}
	}
	if ASSIGN.IsComparison() {
		t.Error("= is not a comparison")
	}
}
