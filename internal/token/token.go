// Package token defines the lexical tokens of MiniC, the C subset that
// DART programs under test are written in, together with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of MiniC token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // ac_controller
	INT    // 12345, 0x1f, 'a'
	STRING // "msg" (only as abort/assert annotation)

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	AMP     // &
	PIPE    // |
	CARET   // ^
	SHL     // <<
	SHR     // >>
	TILDE   // ~
	LAND    // &&
	LOR     // ||
	NOT     // !
	ASSIGN  // =
	EQ      // ==
	NEQ     // !=
	LT      // <
	GT      // >
	LEQ     // <=
	GEQ     // >=
	ARROW   // ->
	DOT     // .
	INC     // ++
	DEC     // --
	PLUSEQ  // +=
	MINUSEQ // -=
	STAREQ  // *=
	SLASHEQ // /=

	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	QUESTION  // ?
	COLON     // :

	// Keywords.
	KwInt
	KwChar
	KwLong
	KwUnsigned
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwExtern
	KwSizeof
	KwSwitch
	KwCase
	KwDefault
	KwGoto // reserved, rejected by the parser with a clear error
	KwNull // NULL
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>", TILDE: "~",
	LAND: "&&", LOR: "||", NOT: "!", ASSIGN: "=", EQ: "==", NEQ: "!=",
	LT: "<", GT: ">", LEQ: "<=", GEQ: ">=", ARROW: "->", DOT: ".",
	INC: "++", DEC: "--", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";",
	QUESTION: "?", COLON: ":",
	KwInt: "int", KwChar: "char", KwLong: "long", KwUnsigned: "unsigned",
	KwVoid: "void", KwStruct: "struct", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwDo: "do", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwExtern: "extern",
	KwSizeof: "sizeof", KwGoto: "goto", KwNull: "NULL",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
}

// String returns the human-readable spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps MiniC keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "long": KwLong, "unsigned": KwUnsigned,
	"void": KwVoid, "struct": KwStruct, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "do": KwDo, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "extern": KwExtern,
	"sizeof": KwSizeof, "goto": KwGoto, "NULL": KwNull,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, STRING
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is one of the assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		return true
	}
	return false
}

// IsComparison reports whether the kind is a relational operator.
func (k Kind) IsComparison() bool {
	switch k {
	case EQ, NEQ, LT, GT, LEQ, GEQ:
		return true
	}
	return false
}
