// Package types defines the MiniC type system.
//
// MiniC follows the paper's RAM-machine model (Sec. 2.2): memory is a map
// from addresses to word-sized values.  Every scalar (int, char, pointer)
// occupies exactly one memory cell, so Size is measured in cells, pointer
// arithmetic advances cell-by-cell, and sizeof(int) == 1.  The paper's
// pointer-cast example in Sec. 2.5 relies only on relative layout
// (a->c sits at offset sizeof(int) from a), which this model preserves.
package types

import (
	"fmt"
	"strings"
)

// Type is a MiniC type.
type Type interface {
	// Size is the number of memory cells a value of the type occupies.
	Size() int64
	String() string
}

// BasicKind enumerates the built-in scalar types.
type BasicKind int

// The basic kinds.
const (
	Void BasicKind = iota
	Int            // 32-bit signed integer semantics
	Char           // 8-bit signed integer semantics
	Long           // 64-bit signed integer semantics
	UInt           // 32-bit unsigned integer semantics
)

// Basic is a built-in scalar type.
type Basic struct{ Kind BasicKind }

// Size implements Type. All scalars occupy one cell; void has no size.
func (b *Basic) Size() int64 {
	if b.Kind == Void {
		return 0
	}
	return 1
}

func (b *Basic) String() string {
	switch b.Kind {
	case Void:
		return "void"
	case Int:
		return "int"
	case Char:
		return "char"
	case Long:
		return "long"
	case UInt:
		return "unsigned"
	}
	return fmt.Sprintf("basic(%d)", int(b.Kind))
}

// Bits returns the semantic width of the basic type in bits.
func (b *Basic) Bits() int {
	switch b.Kind {
	case Char:
		return 8
	case Long:
		return 64
	default:
		return 32
	}
}

// Signed reports whether arithmetic on the type is signed.
func (b *Basic) Signed() bool { return b.Kind != UInt }

// Singleton basic types, shared by the checker.
var (
	VoidType = &Basic{Kind: Void}
	IntType  = &Basic{Kind: Int}
	CharType = &Basic{Kind: Char}
	LongType = &Basic{Kind: Long}
	UIntType = &Basic{Kind: UInt}
)

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

// Size implements Type.
func (p *Pointer) Size() int64    { return 1 }
func (p *Pointer) String() string { return p.Elem.String() + "*" }

// Field is a single struct member with its computed cell offset.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// Struct is a struct type.  A struct with nil Fields and a name is an
// incomplete (forward-declared) type; it is completed in place by sema so
// that recursive types (linked lists, trees) share one identity.
type Struct struct {
	Name     string
	Fields   []Field
	Complete bool
	size     int64
}

// Size implements Type.
func (s *Struct) Size() int64 { return s.size }

func (s *Struct) String() string { return "struct " + s.Name }

// SetFields completes the struct, assigning member offsets.
func (s *Struct) SetFields(fields []Field) {
	off := int64(0)
	for i := range fields {
		fields[i].Offset = off
		off += fields[i].Type.Size()
	}
	s.Fields = fields
	s.size = off
	s.Complete = true
}

// FieldByName returns the named field, if present.
func (s *Struct) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Array is a fixed-length array type.
type Array struct {
	Elem Type
	Len  int64
}

// Size implements Type.
func (a *Array) Size() int64 { return a.Elem.Size() * a.Len }

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// Func is a function type.
type Func struct {
	Params []Type
	Result Type
}

// Size implements Type. Function types are not first-class values.
func (f *Func) Size() int64 { return 0 }

func (f *Func) String() string {
	var b strings.Builder
	b.WriteString(f.Result.String())
	b.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")")
	return b.String()
}

// IsVoid reports whether t is the void type.
func IsVoid(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Void
}

// IsInteger reports whether t is a scalar integer type.
func IsInteger(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind != Void
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(*Pointer)
	return ok
}

// IsScalar reports whether t occupies one cell (integer or pointer).
func IsScalar(t Type) bool { return IsInteger(t) || IsPointer(t) }

// Identical reports structural type identity. Named structs are identical
// only to themselves.
func Identical(a, b Type) bool {
	switch at := a.(type) {
	case *Basic:
		bt, ok := b.(*Basic)
		return ok && at.Kind == bt.Kind
	case *Pointer:
		bt, ok := b.(*Pointer)
		return ok && Identical(at.Elem, bt.Elem)
	case *Struct:
		return a == b
	case *Array:
		bt, ok := b.(*Array)
		return ok && at.Len == bt.Len && Identical(at.Elem, bt.Elem)
	case *Func:
		bt, ok := b.(*Func)
		if !ok || len(at.Params) != len(bt.Params) || !Identical(at.Result, bt.Result) {
			return false
		}
		for i := range at.Params {
			if !Identical(at.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// AssignableTo reports whether a value of type src may be assigned to a
// location of type dst under MiniC's (C-like, permissive) rules: integer
// types interconvert; pointers convert to and from any pointer type
// (MiniC permits the cast-free reinterpretation the paper's Sec. 2.5
// example performs with an explicit cast); the integer literal 0 / NULL
// conversion is handled by the checker before calling this.
func AssignableTo(src, dst Type) bool {
	if Identical(src, dst) {
		return true
	}
	if IsInteger(src) && IsInteger(dst) {
		return true
	}
	if IsPointer(src) && IsPointer(dst) {
		return true
	}
	return false
}

// Truncate narrows v to the semantic width of basic type b, matching the
// RAM machine's "32-bit word" storage model from the paper (extended with
// char and long widths).
func Truncate(b *Basic, v int64) int64 {
	switch b.Kind {
	case Char:
		return int64(int8(v))
	case Int:
		return int64(int32(v))
	case UInt:
		return int64(uint32(v))
	case Long:
		return v
	}
	return v
}
