package types

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	if VoidType.Size() != 0 {
		t.Errorf("void size = %d", VoidType.Size())
	}
	for _, b := range []*Basic{IntType, CharType, LongType, UIntType} {
		if b.Size() != 1 {
			t.Errorf("%s size = %d, want 1 (one RAM cell)", b, b.Size())
		}
	}
}

func TestStructLayout(t *testing.T) {
	// The paper's Sec. 2.5 struct: { int i; char c; } — c must sit at
	// offset sizeof(int) == 1.
	s := &Struct{Name: "foo"}
	s.SetFields([]Field{
		{Name: "i", Type: IntType},
		{Name: "c", Type: CharType},
	})
	if s.Size() != 2 {
		t.Errorf("size = %d, want 2", s.Size())
	}
	c, ok := s.FieldByName("c")
	if !ok || c.Offset != 1 {
		t.Errorf("offset of c = %d, want 1", c.Offset)
	}
	if _, ok := s.FieldByName("missing"); ok {
		t.Error("found nonexistent field")
	}
}

func TestNestedLayout(t *testing.T) {
	inner := &Struct{Name: "inner"}
	inner.SetFields([]Field{
		{Name: "a", Type: IntType},
		{Name: "b", Type: IntType},
	})
	outer := &Struct{Name: "outer"}
	outer.SetFields([]Field{
		{Name: "x", Type: CharType},
		{Name: "in", Type: inner},
		{Name: "arr", Type: &Array{Elem: IntType, Len: 3}},
		{Name: "p", Type: &Pointer{Elem: outer}},
	})
	if outer.Size() != 1+2+3+1 {
		t.Errorf("outer size = %d, want 7", outer.Size())
	}
	f, _ := outer.FieldByName("arr")
	if f.Offset != 3 {
		t.Errorf("arr offset = %d, want 3", f.Offset)
	}
	p, _ := outer.FieldByName("p")
	if p.Offset != 6 {
		t.Errorf("p offset = %d, want 6", p.Offset)
	}
}

func TestIdentical(t *testing.T) {
	s1 := &Struct{Name: "s"}
	s1.SetFields(nil)
	s2 := &Struct{Name: "s"}
	s2.SetFields(nil)
	cases := []struct {
		a, b Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, CharType, false},
		{&Pointer{Elem: IntType}, &Pointer{Elem: IntType}, true},
		{&Pointer{Elem: IntType}, &Pointer{Elem: CharType}, false},
		{s1, s1, true},
		{s1, s2, false}, // nominal identity
		{&Array{Elem: IntType, Len: 2}, &Array{Elem: IntType, Len: 2}, true},
		{&Array{Elem: IntType, Len: 2}, &Array{Elem: IntType, Len: 3}, false},
		{&Func{Result: IntType}, &Func{Result: IntType}, true},
		{&Func{Result: IntType}, &Func{Result: VoidType}, false},
		{
			&Func{Params: []Type{IntType}, Result: IntType},
			&Func{Params: []Type{CharType}, Result: IntType},
			false,
		},
	}
	for i, c := range cases {
		if got := Identical(c.a, c.b); got != c.want {
			t.Errorf("case %d: Identical(%s, %s) = %v", i, c.a, c.b, got)
		}
	}
}

func TestAssignable(t *testing.T) {
	pi := &Pointer{Elem: IntType}
	pc := &Pointer{Elem: CharType}
	if !AssignableTo(IntType, CharType) || !AssignableTo(CharType, LongType) {
		t.Error("integer interconversion should be allowed")
	}
	if !AssignableTo(pi, pc) {
		t.Error("pointer reinterpretation should be allowed")
	}
	if AssignableTo(IntType, pi) || AssignableTo(pi, IntType) {
		t.Error("int<->pointer requires a cast")
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct {
		b    *Basic
		in   int64
		want int64
	}{
		{CharType, 300, 44},
		{CharType, -1, -1},
		{CharType, 128, -128},
		{IntType, 1 << 40, 0},
		{IntType, int64(1)<<31 + 5, -(1 << 31) + 5},
		{UIntType, -1, 4294967295},
		{LongType, -1 << 62, -1 << 62},
	}
	for i, c := range cases {
		if got := Truncate(c.b, c.in); got != c.want {
			t.Errorf("case %d: Truncate(%s, %d) = %d, want %d", i, c.b, c.in, got, c.want)
		}
	}
}

func TestTruncateIdempotent(t *testing.T) {
	f := func(v int64) bool {
		for _, b := range []*Basic{IntType, CharType, UIntType, LongType} {
			once := Truncate(b, v)
			if Truncate(b, once) != once {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateHelpers(t *testing.T) {
	if !IsInteger(IntType) || IsInteger(VoidType) || IsInteger(&Pointer{Elem: IntType}) {
		t.Error("IsInteger misclassifies")
	}
	if !IsPointer(&Pointer{Elem: IntType}) || IsPointer(IntType) {
		t.Error("IsPointer misclassifies")
	}
	if !IsScalar(IntType) || !IsScalar(&Pointer{Elem: IntType}) || IsScalar(&Array{Elem: IntType, Len: 1}) {
		t.Error("IsScalar misclassifies")
	}
	if !IsVoid(VoidType) || IsVoid(IntType) {
		t.Error("IsVoid misclassifies")
	}
}

func TestStringForms(t *testing.T) {
	s := &Struct{Name: "msg"}
	s.SetFields(nil)
	cases := map[Type]string{
		IntType:                       "int",
		&Pointer{Elem: CharType}:      "char*",
		&Array{Elem: IntType, Len: 4}: "int[4]",
		s:                             "struct msg",
		&Func{Params: []Type{IntType}, Result: VoidType}: "void(int)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
