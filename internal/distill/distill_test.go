package distill

// Set-cover distillation tests: minimality on a known instance,
// deterministic tie-breaking, and honest Missing reporting when the
// log cannot reconstruct the target.

import (
	"reflect"
	"testing"

	"dart/internal/concolic"
	"dart/internal/coverage"
)

func dir(site int, taken bool) concolic.CovDir {
	return concolic.CovDir{Site: site, Taken: taken}
}

func target(sites int, dirs ...concolic.CovDir) *coverage.Set {
	s := coverage.New(sites)
	for _, d := range dirs {
		s.Record(d.Site, d.Taken)
	}
	return s
}

func TestDistillGreedyCover(t *testing.T) {
	// Run 1 covers {0F}, run 2 covers {0F,0T,1F}, run 3 covers {1T}.
	// Greedy picks run 2 first (gain 3), then run 3; run 1 is redundant.
	log := []concolic.RunRecord{
		{Inputs: map[string]int64{"x": 1}, Cover: []concolic.CovDir{dir(0, false)}},
		{Inputs: map[string]int64{"x": 2}, Cover: []concolic.CovDir{dir(0, false), dir(0, true), dir(1, false)}},
		{Inputs: map[string]int64{"x": 3}, Cover: []concolic.CovDir{dir(1, true)}},
	}
	res := Distill(log, target(2, dir(0, false), dir(0, true), dir(1, false), dir(1, true)))
	if len(res.Missing) != 0 {
		t.Fatalf("Missing = %v, want none", res.Missing)
	}
	want := []map[string]int64{{"x": 2}, {"x": 3}}
	if !reflect.DeepEqual(res.Suite, want) {
		t.Errorf("Suite = %v, want %v", res.Suite, want)
	}
	if res.LogRuns != 3 || res.Picked != 2 {
		t.Errorf("LogRuns=%d Picked=%d, want 3/2", res.LogRuns, res.Picked)
	}
}

func TestDistillTieBreaksEarliest(t *testing.T) {
	// Two runs with equal gain: the earlier one must win, every time.
	log := []concolic.RunRecord{
		{Inputs: map[string]int64{"a": 1}, Cover: []concolic.CovDir{dir(0, true)}},
		{Inputs: map[string]int64{"a": 2}, Cover: []concolic.CovDir{dir(0, true)}},
	}
	for i := 0; i < 50; i++ {
		res := Distill(log, target(1, dir(0, true)))
		if len(res.Suite) != 1 || res.Suite[0]["a"] != 1 {
			t.Fatalf("iteration %d: suite %v, want the earliest run", i, res.Suite)
		}
	}
}

func TestDistillReportsMissing(t *testing.T) {
	log := []concolic.RunRecord{
		{Inputs: map[string]int64{"x": 1}, Cover: []concolic.CovDir{dir(0, true)}},
	}
	res := Distill(log, target(2, dir(0, true), dir(1, false), dir(1, true)))
	want := []concolic.CovDir{dir(1, false), dir(1, true)}
	if !reflect.DeepEqual(res.Missing, want) {
		t.Errorf("Missing = %v, want %v (sorted)", res.Missing, want)
	}
	if len(res.Suite) != 1 {
		t.Errorf("Suite = %v, want the one useful run", res.Suite)
	}
}

func TestDistillEmptyLog(t *testing.T) {
	res := Distill(nil, target(1, dir(0, true)))
	if len(res.Suite) != 0 || len(res.Missing) != 1 {
		t.Errorf("empty log: suite=%v missing=%v", res.Suite, res.Missing)
	}
	// An empty target distills to an empty suite regardless of the log.
	res = Distill([]concolic.RunRecord{{Inputs: map[string]int64{"x": 1}, Cover: []concolic.CovDir{dir(0, true)}}}, coverage.New(1))
	if len(res.Suite) != 0 || len(res.Missing) != 0 {
		t.Errorf("empty target: suite=%v missing=%v", res.Suite, res.Missing)
	}
}
