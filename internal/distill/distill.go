// Package distill minimizes a search's recorded run log into a small
// replayable suite — the incremental re-audit analogue of CTGEN-style
// tools that emit their generated tests as artifacts.
//
// A directed search may execute thousands of runs; the recorder
// (internal/concolic) already filters them online down to at most one
// run per newly covered branch direction.  Distillation finishes the
// job with greedy set-cover: pick the run covering the most directions
// still uncovered, repeat until the target coverage is reconstructed.
// Greedy set-cover is the classical ln(n)-approximation — optimal suite
// minimization is NP-hard — and in practice collapses the log to a
// handful of vectors.  The result is deterministic: ties break toward
// the earliest recorded run, so the same log always distills to the
// same suite.
package distill

import (
	"dart/internal/concolic"
	"dart/internal/coverage"
)

// Result is a distilled suite plus its provenance.
type Result struct {
	// Suite is the minimized input-vector sequence, in pick order.
	// Replaying every vector reproduces exactly the covered directions
	// of the target set (when Missing is empty).
	Suite []map[string]int64
	// Missing lists target directions no recorded run covered.  The
	// recorder's union invariant makes this empty for a log and target
	// taken from the same search; a non-empty Missing means the log
	// cannot substitute for the search and must not be stored.
	Missing []concolic.CovDir
	// LogRuns and Picked count the distillation's input and output
	// sizes, for telemetry.
	LogRuns, Picked int
}

// Distill set-covers log against the covered directions of target.
func Distill(log []concolic.RunRecord, target *coverage.Set) Result {
	res := Result{LogRuns: len(log)}
	// The universe: every direction the target set covers.
	want := map[concolic.CovDir]bool{}
	for site := 0; site < target.Sites(); site++ {
		taken, notTaken := target.Site(site)
		if taken {
			want[concolic.CovDir{Site: site, Taken: true}] = true
		}
		if notTaken {
			want[concolic.CovDir{Site: site, Taken: false}] = true
		}
	}
	picked := make([]bool, len(log))
	for len(want) > 0 {
		best, gain := -1, 0
		for i, rec := range log {
			if picked[i] {
				continue
			}
			g := 0
			for _, d := range rec.Cover {
				if want[d] {
					g++
				}
			}
			// Strict > breaks ties toward the earliest run: determinism.
			if g > gain {
				best, gain = i, g
			}
		}
		if best < 0 {
			break // no remaining run helps; leftovers are Missing
		}
		picked[best] = true
		for _, d := range log[best].Cover {
			delete(want, d)
		}
		res.Suite = append(res.Suite, log[best].Inputs)
		res.Picked++
	}
	for d := range want {
		res.Missing = append(res.Missing, d)
	}
	sortDirs(res.Missing)
	return res
}

// sortDirs orders directions (site, then not-taken before taken) so
// Missing is deterministic despite map iteration.
func sortDirs(dirs []concolic.CovDir) {
	for i := 1; i < len(dirs); i++ {
		for j := i; j > 0 && dirLess(dirs[j], dirs[j-1]); j-- {
			dirs[j], dirs[j-1] = dirs[j-1], dirs[j]
		}
	}
}

func dirLess(a, b concolic.CovDir) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	return !a.Taken && b.Taken
}
