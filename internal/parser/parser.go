// Package parser implements a recursive-descent parser for MiniC.
package parser

import (
	"fmt"
	"strconv"

	"dart/internal/ast"
	"dart/internal/lexer"
	"dart/internal/token"
	"dart/internal/types"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*ast.File, error) {
	lex := lexer.New(src)
	p := &parser{}
	p.toks = lex.All()
	for _, le := range lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	f := p.file()
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

// ParseExpr parses a single expression, for tests and tools.
func ParseExpr(src string) (ast.Expr, error) {
	lex := lexer.New(src)
	p := &parser{toks: lex.All()}
	e := p.expr()
	p.expect(token.EOF)
	if len(p.errs) > 0 {
		return e, p.errs
	}
	return e, nil
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

const maxErrors = 25

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a plausible statement/declaration boundary,
// bounding error cascades.
func (p *parser) sync() {
	for !p.at(token.EOF) {
		if p.accept(token.SEMICOLON) {
			return
		}
		if p.at(token.RBRACE) {
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------- decls

func (p *parser) file() *ast.File {
	f := &ast.File{}
	for !p.at(token.EOF) {
		before := p.pos
		d := p.decl()
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == before {
			// Guarantee progress on malformed input.
			p.errorf(p.cur().Pos, "unexpected %s at top level", p.cur())
			p.next()
		}
	}
	return f
}

func (p *parser) decl() ast.Decl {
	switch {
	case p.at(token.KwStruct) && p.peek().Kind == token.IDENT && p.peekAfterStructName() == token.LBRACE:
		return p.structDecl()
	case p.at(token.KwExtern):
		return p.externDecl()
	case p.atTypeStart():
		return p.varOrFuncDecl(false)
	case p.at(token.SEMICOLON):
		p.next()
		return nil
	default:
		p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
		p.sync()
		return nil
	}
}

// peekAfterStructName reports the token kind after "struct IDENT".
func (p *parser) peekAfterStructName() token.Kind {
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].Kind
	}
	return token.EOF
}

func (p *parser) atTypeStart() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwChar, token.KwLong, token.KwUnsigned, token.KwVoid, token.KwStruct:
		return true
	}
	return false
}

func (p *parser) structDecl() ast.Decl {
	pos := p.expect(token.KwStruct).Pos
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	var fields []ast.Param
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		spec := p.typeSpec()
		fname := p.expect(token.IDENT).Lit
		spec = p.arraySuffix(spec)
		fields = append(fields, ast.Param{Name: fname, Spec: spec})
		p.expect(token.SEMICOLON)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMICOLON)
	return &ast.StructDecl{Name: name, Fields: fields, TokPos: pos}
}

func (p *parser) externDecl() ast.Decl {
	pos := p.expect(token.KwExtern).Pos
	spec := p.typeSpec()
	name := p.expect(token.IDENT).Lit
	if p.at(token.LPAREN) {
		params := p.paramList()
		p.expect(token.SEMICOLON)
		return &ast.FuncDecl{Name: name, Params: params, Result: spec, Extern: true, TokPos: pos}
	}
	spec = p.arraySuffix(spec)
	p.expect(token.SEMICOLON)
	return &ast.VarDecl{Name: name, Spec: spec, Extern: true, TokPos: pos}
}

func (p *parser) varOrFuncDecl(extern bool) ast.Decl {
	pos := p.cur().Pos
	spec := p.typeSpec()
	name := p.expect(token.IDENT).Lit
	if p.at(token.LPAREN) {
		params := p.paramList()
		fd := &ast.FuncDecl{Name: name, Params: params, Result: spec, Extern: extern, TokPos: pos}
		if p.at(token.LBRACE) {
			fd.Body = p.block()
		} else {
			p.expect(token.SEMICOLON)
		}
		return fd
	}
	spec = p.arraySuffix(spec)
	vd := &ast.VarDecl{Name: name, Spec: spec, Extern: extern, TokPos: pos}
	if p.accept(token.ASSIGN) {
		vd.Init = p.assignExpr()
	}
	p.expect(token.SEMICOLON)
	return vd
}

func (p *parser) paramList() []ast.Param {
	p.expect(token.LPAREN)
	var params []ast.Param
	if p.accept(token.RPAREN) {
		return params
	}
	// Allow a lone "void" parameter list, C style.
	if p.at(token.KwVoid) && p.peek().Kind == token.RPAREN {
		p.next()
		p.expect(token.RPAREN)
		return params
	}
	for {
		spec := p.typeSpec()
		name := ""
		if p.at(token.IDENT) {
			name = p.next().Lit
		}
		spec = p.arraySuffix(spec)
		params = append(params, ast.Param{Name: name, Spec: spec})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

// ---------------------------------------------------------------- types

// typeSpec parses a base type followed by pointer stars.
func (p *parser) typeSpec() ast.TypeSpec {
	pos := p.cur().Pos
	var spec ast.TypeSpec
	switch p.cur().Kind {
	case token.KwInt:
		p.next()
		spec = &ast.BasicSpec{Kind: types.Int, TokPos: pos}
	case token.KwChar:
		p.next()
		spec = &ast.BasicSpec{Kind: types.Char, TokPos: pos}
	case token.KwLong:
		p.next()
		// Accept "long int" and "long long".
		p.accept(token.KwInt)
		if p.accept(token.KwLong) {
			p.accept(token.KwInt)
		}
		spec = &ast.BasicSpec{Kind: types.Long, TokPos: pos}
	case token.KwUnsigned:
		p.next()
		p.accept(token.KwInt)
		spec = &ast.BasicSpec{Kind: types.UInt, TokPos: pos}
	case token.KwVoid:
		p.next()
		spec = &ast.BasicSpec{Kind: types.Void, TokPos: pos}
	case token.KwStruct:
		p.next()
		name := p.expect(token.IDENT).Lit
		spec = &ast.StructSpec{Name: name, TokPos: pos}
	default:
		p.errorf(pos, "expected type, found %s", p.cur())
		spec = &ast.BasicSpec{Kind: types.Int, TokPos: pos}
	}
	for p.at(token.STAR) {
		starPos := p.next().Pos
		spec = &ast.PointerSpec{Elem: spec, TokPos: starPos}
	}
	return spec
}

// arraySuffix parses zero or more [N] suffixes after a declarator name.
// C's a[2][3] declares an array of 2 arrays of 3, so suffixes nest
// outermost-first.
func (p *parser) arraySuffix(spec ast.TypeSpec) ast.TypeSpec {
	if !p.at(token.LBRACKET) {
		return spec
	}
	pos := p.next().Pos
	length := p.expr()
	p.expect(token.RBRACKET)
	inner := p.arraySuffix(spec)
	return &ast.ArraySpec{Elem: inner, Len: length, TokPos: pos}
}

// ---------------------------------------------------------------- stmts

func (p *parser) block() *ast.Block {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.Block{TokPos: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		b.Stmts = append(b.Stmts, p.stmt())
		if p.pos == before {
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) stmt() ast.Stmt {
	pos := p.cur().Pos
	switch {
	case p.at(token.LBRACE):
		return p.block()
	case p.atTypeStart():
		return p.declStmt()
	case p.accept(token.KwIf):
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		then := p.stmt()
		var els ast.Stmt
		if p.accept(token.KwElse) {
			els = p.stmt()
		}
		return &ast.If{Cond: cond, Then: then, Else: els, TokPos: pos}
	case p.accept(token.KwWhile):
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		body := p.stmt()
		return &ast.While{Cond: cond, Body: body, TokPos: pos}
	case p.accept(token.KwDo):
		body := p.stmt()
		p.expect(token.KwWhile)
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
		return &ast.DoWhile{Body: body, Cond: cond, TokPos: pos}
	case p.accept(token.KwFor):
		return p.forStmt(pos)
	case p.accept(token.KwSwitch):
		return p.switchStmt(pos)
	case p.accept(token.KwReturn):
		r := &ast.Return{TokPos: pos}
		if !p.at(token.SEMICOLON) {
			r.X = p.expr()
		}
		p.expect(token.SEMICOLON)
		return r
	case p.accept(token.KwBreak):
		p.expect(token.SEMICOLON)
		return &ast.Break{TokPos: pos}
	case p.accept(token.KwContinue):
		p.expect(token.SEMICOLON)
		return &ast.Continue{TokPos: pos}
	case p.accept(token.SEMICOLON):
		return &ast.Empty{TokPos: pos}
	case p.at(token.KwGoto):
		p.errorf(pos, "goto is not supported in MiniC; use structured control flow")
		p.sync()
		return &ast.Empty{TokPos: pos}
	default:
		x := p.expr()
		p.expect(token.SEMICOLON)
		return &ast.ExprStmt{X: x, TokPos: pos}
	}
}

func (p *parser) declStmt() ast.Stmt {
	pos := p.cur().Pos
	spec := p.typeSpec()
	name := p.expect(token.IDENT).Lit
	spec = p.arraySuffix(spec)
	d := &ast.DeclStmt{Name: name, Spec: spec, TokPos: pos}
	if p.accept(token.ASSIGN) {
		d.Init = p.assignExpr()
	}
	p.expect(token.SEMICOLON)
	return d
}

// switchStmt parses switch (tag) { case K: ... default: ... } with C's
// fallthrough semantics.  Statements before the first label are
// rejected, as in C.
func (p *parser) switchStmt(pos token.Pos) ast.Stmt {
	p.expect(token.LPAREN)
	tag := p.expr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	sw := &ast.Switch{Tag: tag, TokPos: pos}
	sawDefault := false
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		casePos := p.cur().Pos
		var c *ast.Case
		switch {
		case p.accept(token.KwCase):
			v := p.condExpr()
			p.expect(token.COLON)
			c = &ast.Case{Value: v, TokPos: casePos}
		case p.accept(token.KwDefault):
			p.expect(token.COLON)
			if sawDefault {
				p.errorf(casePos, "multiple default cases in switch")
			}
			sawDefault = true
			c = &ast.Case{TokPos: casePos}
		default:
			p.errorf(casePos, "expected case or default in switch, found %s", p.cur())
			p.sync()
			continue
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) &&
			!p.at(token.RBRACE) && !p.at(token.EOF) {
			before := p.pos
			c.Body = append(c.Body, p.stmt())
			if p.pos == before {
				p.next()
			}
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.expect(token.RBRACE)
	return sw
}

func (p *parser) forStmt(pos token.Pos) ast.Stmt {
	p.expect(token.LPAREN)
	f := &ast.For{TokPos: pos}
	if !p.at(token.SEMICOLON) {
		if p.atTypeStart() {
			// Declaration initializer; declStmt consumes the semicolon.
			f.Init = p.declStmt()
		} else {
			x := p.expr()
			f.Init = &ast.ExprStmt{X: x, TokPos: x.Pos()}
			p.expect(token.SEMICOLON)
		}
	} else {
		p.expect(token.SEMICOLON)
	}
	if !p.at(token.SEMICOLON) {
		f.Cond = p.expr()
	}
	p.expect(token.SEMICOLON)
	if !p.at(token.RPAREN) {
		f.Post = p.expr()
	}
	p.expect(token.RPAREN)
	f.Body = p.stmt()
	return f
}

// ---------------------------------------------------------------- exprs

func (p *parser) expr() ast.Expr { return p.assignExpr() }

func (p *parser) assignExpr() ast.Expr {
	lhs := p.condExpr()
	if p.cur().Kind.IsAssignOp() {
		op := p.next()
		rhs := p.assignExpr()
		return &ast.Assign{Op: op.Kind, Lhs: lhs, Rhs: rhs, TokPos: op.Pos}
	}
	return lhs
}

func (p *parser) condExpr() ast.Expr {
	c := p.binaryExpr(0)
	if p.at(token.QUESTION) {
		pos := p.next().Pos
		then := p.expr()
		p.expect(token.COLON)
		els := p.condExpr()
		return &ast.Cond{C: c, Then: then, Else: els, TokPos: pos}
	}
	return c
}

// binPrec returns the binding power of an infix operator, or -1.
func binPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.PIPE:
		return 3
	case token.CARET:
		return 4
	case token.AMP:
		return 5
	case token.EQ, token.NEQ:
		return 6
	case token.LT, token.GT, token.LEQ, token.GEQ:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	}
	return -1
}

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	lhs := p.unaryExpr()
	for {
		prec := binPrec(p.cur().Kind)
		if prec < 0 || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.binaryExpr(prec + 1)
		lhs = &ast.Binary{Op: op.Kind, X: lhs, Y: rhs, TokPos: op.Pos}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.MINUS, token.NOT, token.TILDE, token.STAR, token.AMP, token.PLUS:
		op := p.next().Kind
		x := p.unaryExpr()
		if op == token.PLUS {
			return x
		}
		return &ast.Unary{Op: op, X: x, TokPos: pos}
	case token.INC, token.DEC:
		op := p.next().Kind
		x := p.unaryExpr()
		return &ast.Unary{Op: op, X: x, TokPos: pos}
	case token.KwSizeof:
		p.next()
		p.expect(token.LPAREN)
		if p.atTypeStart() {
			spec := p.typeSpec()
			p.expect(token.RPAREN)
			return &ast.SizeofType{Of: spec, TokPos: pos}
		}
		x := p.expr()
		p.expect(token.RPAREN)
		return &ast.SizeofExpr{X: x, TokPos: pos}
	case token.LPAREN:
		// Disambiguate cast from parenthesized expression: a cast's
		// parenthesis is immediately followed by a type keyword.
		if isTypeKeyword(p.peek().Kind) {
			p.next() // (
			spec := p.typeSpec()
			p.expect(token.RPAREN)
			x := p.unaryExpr()
			return &ast.Cast{To: spec, X: x, TokPos: pos}
		}
	}
	return p.postfixExpr()
}

func isTypeKeyword(k token.Kind) bool {
	switch k {
	case token.KwInt, token.KwChar, token.KwLong, token.KwUnsigned, token.KwVoid, token.KwStruct:
		return true
	}
	return false
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.primaryExpr()
	for {
		pos := p.cur().Pos
		switch {
		case p.accept(token.LBRACKET):
			idx := p.expr()
			p.expect(token.RBRACKET)
			x = &ast.Index{X: x, I: idx, TokPos: pos}
		case p.accept(token.DOT):
			name := p.expect(token.IDENT).Lit
			x = &ast.Field{X: x, Name: name, TokPos: pos}
		case p.accept(token.ARROW):
			name := p.expect(token.IDENT).Lit
			x = &ast.Field{X: x, Name: name, Arrow: true, TokPos: pos}
		case p.at(token.INC) || p.at(token.DEC):
			op := p.next().Kind
			x = &ast.Postfix{Op: op, X: x, TokPos: pos}
		default:
			return x
		}
	}
}

func (p *parser) primaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		if p.at(token.LPAREN) {
			return p.callExpr(t)
		}
		return &ast.Ident{Name: t.Lit, TokPos: t.Pos}
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{Value: v, TokPos: t.Pos}
	case token.STRING:
		p.next()
		return &ast.StringLit{Value: t.Lit, TokPos: t.Pos}
	case token.KwNull:
		p.next()
		return &ast.NullLit{TokPos: t.Pos}
	case token.LPAREN:
		p.next()
		x := p.expr()
		p.expect(token.RPAREN)
		return x
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		return &ast.IntLit{Value: 0, TokPos: t.Pos}
	}
}

func (p *parser) callExpr(fn token.Token) ast.Expr {
	p.expect(token.LPAREN)
	call := &ast.Call{Fun: fn.Lit, TokPos: fn.Pos}
	if !p.accept(token.RPAREN) {
		for {
			call.Args = append(call.Args, p.assignExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	return call
}
