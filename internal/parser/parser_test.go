package parser

import (
	"strings"
	"testing"

	"dart/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func exprString(t *testing.T, src string) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return ast.PrintExpr(e)
}

func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":         "1 + (2 * 3)",
		"(1 + 2) * 3":       "(1 + 2) * 3",
		"a == b && c != d":  "(a == b) && (c != d)",
		"a || b && c":       "a || (b && c)",
		"a & b | c ^ d":     "(a & b) | (c ^ d)",
		"x << 2 + 1":        "x << (2 + 1)",
		"-x * y":            "(-x) * y",
		"!a && b":           "(!a) && b",
		"a < b == c":        "(a < b) == c",
		"a ? b : c ? d : e": "a ? b : (c ? d : e)",
	}
	for src, want := range cases {
		if got := exprString(t, src); got != want {
			t.Errorf("%q parsed as %q, want %q", src, got, want)
		}
	}
}

func TestAssignRightAssociative(t *testing.T) {
	e, err := ParseExpr("x = y = z")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := e.(*ast.Assign)
	if !ok {
		t.Fatalf("parsed as %T", e)
	}
	if _, ok := outer.Rhs.(*ast.Assign); !ok {
		t.Fatalf("rhs is %T, want nested assignment", outer.Rhs)
	}
}

func TestPostfixChains(t *testing.T) {
	cases := map[string]string{
		"a->b->c":        "a->b->c",
		"a.b.c":          "a.b.c",
		"a[1][2]":        "a[1][2]",
		"f(x)[3].g":      "f(x)[3].g",
		"*p++":           "*(p++)",
		"(*p)++":         "(*p)++",
		"&a[0]":          "&a[0]",
		"p->next->value": "p->next->value",
		"sizeof(int)":    "sizeof(int)",
		"sizeof(x + 1)":  "sizeof(x + 1)",
	}
	for src, want := range cases {
		if got := exprString(t, src); got != want {
			t.Errorf("%q parsed as %q, want %q", src, got, want)
		}
	}
}

func TestCastVsParen(t *testing.T) {
	if got := exprString(t, "(char *)a + 1"); got != "((char*)a) + 1" {
		t.Errorf("cast parse: %q", got)
	}
	if got := exprString(t, "(a) + 1"); got != "a + 1" {
		t.Errorf("paren parse: %q", got)
	}
	if got := exprString(t, "(struct foo *)p"); got != "(struct foo*)p" {
		t.Errorf("struct cast parse: %q", got)
	}
}

func TestDeclarations(t *testing.T) {
	f := parseOK(t, `
struct node { int v; struct node *next; };
extern int env;
extern int getmsg();
int g = 42;
int table[4][2];
int fn(int a, char *b);
int fn(int a, char *b) { return a; }
void nop(void) { }
`)
	if len(f.Decls) != 8 {
		t.Fatalf("got %d decls", len(f.Decls))
	}
	sd, ok := f.Decls[0].(*ast.StructDecl)
	if !ok || sd.Name != "node" || len(sd.Fields) != 2 {
		t.Fatalf("struct decl: %+v", f.Decls[0])
	}
	ev, ok := f.Decls[1].(*ast.VarDecl)
	if !ok || !ev.Extern {
		t.Fatalf("extern var: %+v", f.Decls[1])
	}
	ef, ok := f.Decls[2].(*ast.FuncDecl)
	if !ok || !ef.Extern || ef.Body != nil {
		t.Fatalf("extern func: %+v", f.Decls[2])
	}
	tbl, ok := f.Decls[4].(*ast.VarDecl)
	if !ok {
		t.Fatalf("array global: %+v", f.Decls[4])
	}
	outer, ok := tbl.Spec.(*ast.ArraySpec)
	if !ok {
		t.Fatalf("array spec: %T", tbl.Spec)
	}
	if _, ok := outer.Elem.(*ast.ArraySpec); !ok {
		t.Fatalf("inner array spec: %T", outer.Elem)
	}
	proto, ok := f.Decls[5].(*ast.FuncDecl)
	if !ok || proto.Body != nil || proto.Extern {
		t.Fatalf("prototype: %+v", f.Decls[5])
	}
	def, ok := f.Decls[6].(*ast.FuncDecl)
	if !ok || def.Body == nil {
		t.Fatalf("definition: %+v", f.Decls[6])
	}
	void, ok := f.Decls[7].(*ast.FuncDecl)
	if !ok || len(void.Params) != 0 {
		t.Fatalf("void param list: %+v", f.Decls[7])
	}
}

func TestStatements(t *testing.T) {
	f := parseOK(t, `
int fn(int n) {
    int i;
    int total = 0;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        total += i;
    }
    while (total > 100) total /= 2;
    do { total--; } while (total > 50);
    for (;;) break;
    ;
    return total;
}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	if len(fd.Body.Stmts) != 8 {
		t.Fatalf("got %d statements:\n%s", len(fd.Body.Stmts), ast.Print(f))
	}
	if _, ok := fd.Body.Stmts[2].(*ast.For); !ok {
		t.Errorf("statement 2 is %T, want For", fd.Body.Stmts[2])
	}
	if _, ok := fd.Body.Stmts[4].(*ast.DoWhile); !ok {
		t.Errorf("statement 4 is %T, want DoWhile", fd.Body.Stmts[4])
	}
	inf := fd.Body.Stmts[5].(*ast.For)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Error("for(;;) should have empty clauses")
	}
}

func TestDanglingElse(t *testing.T) {
	f := parseOK(t, `
int fn(int a, int b) {
    if (a)
        if (b) return 1;
        else return 2;
    return 3;
}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	outer := fd.Body.Stmts[0].(*ast.If)
	if outer.Else != nil {
		t.Fatal("else bound to the outer if")
	}
	inner := outer.Then.(*ast.If)
	if inner.Else == nil {
		t.Fatal("else not bound to the inner if")
	}
}

func TestForDeclInit(t *testing.T) {
	f := parseOK(t, `int fn() { for (int i = 0; i < 3; i++) { } return 0; }`)
	fd := f.Decls[0].(*ast.FuncDecl)
	loop := fd.Body.Stmts[0].(*ast.For)
	if _, ok := loop.Init.(*ast.DeclStmt); !ok {
		t.Fatalf("for init is %T, want DeclStmt", loop.Init)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return 1 }",
		"int f() { if x) return 1; }",
		"struct s { int };",
		"int f() { goto end; }",
		"int 3x;",
		"}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected a parse error", src)
		}
	}
}

func TestErrorsDoNotCascade(t *testing.T) {
	_, err := Parse("int f() { $$$ $$$ $$$ }")
	if err == nil {
		t.Fatal("expected errors")
	}
	if list, ok := err.(ErrorList); ok && len(list) > maxErrors {
		t.Errorf("error list grew past the cap: %d", len(list))
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
struct pair { int a; int b; };
int sum(struct pair *p) {
    if (p == NULL) return 0;
    return p->a + p->b;
}
`
	f1 := parseOK(t, src)
	printed := ast.Print(f1)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed source failed: %v\n%s", err, printed)
	}
	if ast.Print(f2) != printed {
		t.Errorf("print not stable:\n%s\nvs\n%s", printed, ast.Print(f2))
	}
}

func TestLongTypeSpellings(t *testing.T) {
	parseOK(t, "long a; long int b; long long c; unsigned d; unsigned int e;")
}

func TestStringArg(t *testing.T) {
	f := parseOK(t, `int f(int x) { assert(x > 0, "must be positive"); return x; }`)
	fd := f.Decls[0].(*ast.FuncDecl)
	call := fd.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Call)
	if len(call.Args) != 2 {
		t.Fatalf("assert args: %d", len(call.Args))
	}
	if s, ok := call.Args[1].(*ast.StringLit); !ok || !strings.Contains(s.Value, "positive") {
		t.Fatalf("message arg: %+v", call.Args[1])
	}
}

func TestSwitchParses(t *testing.T) {
	f := parseOK(t, `
int f(int x) {
    switch (x + 1) {
    case 1:
        return 10;
    case 'a':
        x++;
        break;
    default:
        return -1;
    }
    return x;
}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	sw, ok := fd.Body.Stmts[0].(*ast.Switch)
	if !ok {
		t.Fatalf("statement is %T", fd.Body.Stmts[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("cases: %d", len(sw.Cases))
	}
	if sw.Cases[2].Value != nil {
		t.Error("default case should have nil value")
	}
	if len(sw.Cases[1].Body) != 2 {
		t.Errorf("case 'a' body: %d statements", len(sw.Cases[1].Body))
	}
	// Printer round-trip.
	printed := ast.Print(f)
	if _, err := Parse(printed); err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
}

func TestSwitchErrors(t *testing.T) {
	for _, src := range []string{
		"int f(int x) { switch (x) { x = 1; } return 0; }",                // stmt before label
		"int f(int x) { switch (x) { default: ; default: ; } return 0; }", // two defaults
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected a parse error", src)
		}
	}
}
