package solver

import (
	"math"
	"math/rand"
	"testing"

	"dart/internal/symbolic"
)

func lin(k int64, pairs ...int64) *symbolic.Lin {
	l := &symbolic.Lin{Const: k, Coeffs: map[symbolic.Var]int64{}}
	for i := 0; i+1 < len(pairs); i += 2 {
		l.Coeffs[symbolic.Var(pairs[i])] = pairs[i+1]
	}
	return l
}

func pred(rel symbolic.Rel, k int64, pairs ...int64) symbolic.Pred {
	return symbolic.Pred{L: lin(k, pairs...), Rel: rel}
}

// intMeta treats every variable as a 32-bit integer.
func intMeta(symbolic.Var) VarMeta {
	return VarMeta{Kind: symbolic.ScalarVar, Lo: math.MinInt32, Hi: math.MaxInt32}
}

// mixedMeta makes even variables integers and odd variables pointers.
func mixedMeta(v symbolic.Var) VarMeta {
	if v%2 == 1 {
		return VarMeta{Kind: symbolic.PointerVar}
	}
	return VarMeta{Kind: symbolic.ScalarVar, Lo: math.MinInt32, Hi: math.MaxInt32}
}

func mustSolve(t *testing.T, pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64) map[symbolic.Var]int64 {
	t.Helper()
	sol, ok := Solve(pc, meta, hint)
	if !ok {
		t.Fatalf("no solution for %v", symbolic.PathConstraint(pc))
	}
	for _, p := range pc {
		if meta(firstVar(p)).Kind == symbolic.PointerVar {
			continue // pointer predicates checked by their own semantics
		}
		if !p.Holds(sol) {
			t.Fatalf("solution %v violates %v", sol, p)
		}
	}
	return sol
}

func firstVar(p symbolic.Pred) symbolic.Var {
	for v := range p.L.Coeffs {
		return v
	}
	return 0
}

func TestSimpleEquality(t *testing.T) {
	// The paper's intro constraint: 2x == x + 10, i.e. x - 10 == 0.
	sol := mustSolve(t, []symbolic.Pred{pred(symbolic.EQ, -10, 0, 1)}, intMeta, nil)
	if sol[0] != 10 {
		t.Errorf("x = %d, want 10", sol[0])
	}
}

func TestTwoVarEquality(t *testing.T) {
	// x == y ∧ y == x + 10 is UNSAT (Sec. 2.4).
	pc := []symbolic.Pred{
		pred(symbolic.EQ, 0, 0, 1, 1, -1),   // x - y == 0
		pred(symbolic.EQ, -10, 1, 1, 0, -1), // y - x - 10 == 0
	}
	if _, ok := Solve(pc, intMeta, nil); ok {
		t.Fatal("unsatisfiable system solved")
	}
}

func TestInequalityChain(t *testing.T) {
	// 5 < x < 8 ∧ x != 7  ⇒  x == 6.
	pc := []symbolic.Pred{
		pred(symbolic.GT, -5, 0, 1), // x - 5 > 0
		pred(symbolic.LT, -8, 0, 1), // x - 8 < 0
		pred(symbolic.NE, -7, 0, 1), // x - 7 != 0
	}
	sol := mustSolve(t, pc, intMeta, nil)
	if sol[0] != 6 {
		t.Errorf("x = %d, want 6", sol[0])
	}
}

func TestDiophantineRepair(t *testing.T) {
	// 3a - 2b == 17 needs integer alignment between a and b.
	sol := mustSolve(t, []symbolic.Pred{pred(symbolic.EQ, -17, 0, 3, 1, -2)}, intMeta, nil)
	if 3*sol[0]-2*sol[1] != 17 {
		t.Errorf("3*%d - 2*%d != 17", sol[0], sol[1])
	}
}

func TestGCDInfeasible(t *testing.T) {
	// 2x + 4y == 5 has no integer solution.
	pc := []symbolic.Pred{pred(symbolic.EQ, -5, 0, 2, 1, 4)}
	if _, ok := Solve(pc, intMeta, nil); ok {
		t.Fatal("gcd-infeasible equality solved")
	}
}

func TestDomainBounds(t *testing.T) {
	charMeta := func(symbolic.Var) VarMeta {
		return VarMeta{Kind: symbolic.ScalarVar, Lo: -128, Hi: 127}
	}
	// x > 127 is outside a char's domain.
	if _, ok := Solve([]symbolic.Pred{pred(symbolic.GT, -127, 0, 1)}, charMeta, nil); ok {
		t.Fatal("solved outside the char domain")
	}
	// x > 100 within it.
	sol := mustSolve(t, []symbolic.Pred{pred(symbolic.GT, -100, 0, 1)}, charMeta, nil)
	if sol[0] <= 100 || sol[0] > 127 {
		t.Errorf("x = %d", sol[0])
	}
}

func TestHintPreserved(t *testing.T) {
	// x + y == 50 with hint y = 30: y keeps its value, x adapts.
	pc := []symbolic.Pred{pred(symbolic.EQ, -50, 0, 1, 1, 1)}
	sol := mustSolve(t, pc, intMeta, map[symbolic.Var]int64{1: 30})
	if sol[0]+sol[1] != 50 {
		t.Fatalf("solution %v", sol)
	}
	if sol[1] != 30 {
		t.Errorf("hint for y not preserved: %v", sol)
	}
}

func TestManyDisequalities(t *testing.T) {
	// x != 0..9 ∧ 0 <= x <= 10  ⇒  x == 10.
	var pc []symbolic.Pred
	for k := int64(0); k < 10; k++ {
		pc = append(pc, pred(symbolic.NE, -k, 0, 1))
	}
	pc = append(pc, pred(symbolic.GE, 0, 0, 1))
	pc = append(pc, pred(symbolic.LE, -10, 0, 1))
	sol := mustSolve(t, pc, intMeta, nil)
	if sol[0] != 10 {
		t.Errorf("x = %d, want 10", sol[0])
	}
}

func TestPointerNullAndAlloc(t *testing.T) {
	ptrMeta := func(symbolic.Var) VarMeta { return VarMeta{Kind: symbolic.PointerVar} }
	sol, ok := Solve([]symbolic.Pred{pred(symbolic.EQ, 0, 0, 1)}, ptrMeta, nil)
	if !ok || sol[0] != PtrNull {
		t.Fatalf("p == 0: %v ok=%v", sol, ok)
	}
	sol, ok = Solve([]symbolic.Pred{pred(symbolic.NE, 0, 0, 1)}, ptrMeta, nil)
	if !ok || sol[0] != PtrAlloc {
		t.Fatalf("p != 0: %v ok=%v", sol, ok)
	}
}

func TestPointerAliasing(t *testing.T) {
	ptrMeta := func(symbolic.Var) VarMeta { return VarMeta{Kind: symbolic.PointerVar} }
	// p == q is only realizable with both NULL.
	sol, ok := Solve([]symbolic.Pred{pred(symbolic.EQ, 0, 0, 1, 1, -1)}, ptrMeta, nil)
	if !ok || sol[0] != PtrNull || sol[1] != PtrNull {
		t.Fatalf("p == q: %v ok=%v", sol, ok)
	}
	// p == q ∧ p != 0 cannot be realized by fresh allocations.
	pc := []symbolic.Pred{
		pred(symbolic.EQ, 0, 0, 1, 1, -1),
		pred(symbolic.NE, 0, 0, 1),
	}
	if _, ok := Solve(pc, ptrMeta, nil); ok {
		t.Fatal("aliasing of two fresh allocations should be unsolvable")
	}
	// p != q is realizable (two distinct allocations).
	if _, ok := Solve([]symbolic.Pred{pred(symbolic.NE, 0, 0, 1, 1, -1)}, ptrMeta, nil); !ok {
		t.Fatal("p != q should be solvable")
	}
}

func TestPointerAgainstConstant(t *testing.T) {
	ptrMeta := func(symbolic.Var) VarMeta { return VarMeta{Kind: symbolic.PointerVar} }
	// p == 1234 cannot be targeted by random_init.
	if _, ok := Solve([]symbolic.Pred{pred(symbolic.EQ, -1234, 0, 1)}, ptrMeta, nil); ok {
		t.Fatal("pointer equality with a literal address should fail")
	}
	// p > 0 is satisfied by an allocation (addresses are positive).
	sol, ok := Solve([]symbolic.Pred{pred(symbolic.GT, 0, 0, 1)}, ptrMeta, nil)
	if !ok || sol[0] != PtrAlloc {
		t.Fatalf("p > 0: %v ok=%v", sol, ok)
	}
}

func TestMixedPointerScalarRejected(t *testing.T) {
	// var0 scalar + var1 pointer in one predicate: conservatively fail.
	pc := []symbolic.Pred{pred(symbolic.EQ, 0, 0, 1, 1, 1)}
	if _, ok := Solve(pc, mixedMeta, nil); ok {
		t.Fatal("mixed pointer/scalar predicate should be rejected")
	}
}

func TestNilLinRejected(t *testing.T) {
	if _, ok := Solve([]symbolic.Pred{{L: nil, Rel: symbolic.EQ}}, intMeta, nil); ok {
		t.Fatal("nil form accepted")
	}
}

func TestEmptyConstraint(t *testing.T) {
	sol, ok := Solve(nil, intMeta, nil)
	if !ok || len(sol) != 0 {
		t.Fatalf("empty constraint: %v ok=%v", sol, ok)
	}
}

func TestContradictoryConstants(t *testing.T) {
	// A constant predicate that is false: 1 == 0.
	if _, ok := Solve([]symbolic.Pred{pred(symbolic.EQ, 1)}, intMeta, nil); ok {
		t.Fatal("1 == 0 solved")
	}
	// A true one is fine.
	if _, ok := Solve([]symbolic.Pred{pred(symbolic.LE, -1)}, intMeta, nil); !ok {
		t.Fatal("-1 <= 0 rejected")
	}
}

// TestRandomSystemsSoundness is the solver's core property test: on
// random constraint systems, whenever Solve returns an assignment it
// satisfies every predicate; and whenever the system was generated from a
// known witness, Solve finds some solution.
func TestRandomSystemsSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rels := []symbolic.Rel{symbolic.EQ, symbolic.NE, symbolic.LT, symbolic.LE, symbolic.GT, symbolic.GE}

	for trial := 0; trial < 400; trial++ {
		nVars := 1 + r.Intn(4)
		witness := map[symbolic.Var]int64{}
		for v := 0; v < nVars; v++ {
			witness[symbolic.Var(v)] = int64(r.Intn(200) - 100)
		}
		// Build predicates that the witness satisfies, so the system is
		// guaranteed satisfiable.
		var pc []symbolic.Pred
		nPreds := 1 + r.Intn(6)
		for i := 0; i < nPreds; i++ {
			l := &symbolic.Lin{Coeffs: map[symbolic.Var]int64{}}
			for v := 0; v < nVars; v++ {
				if r.Intn(2) == 0 {
					l.Coeffs[symbolic.Var(v)] = int64(r.Intn(9) - 4)
				}
			}
			val := l.Eval(witness)
			// Choose a relation satisfied at the witness by adjusting
			// the constant.
			rel := rels[r.Intn(len(rels))]
			switch rel {
			case symbolic.EQ:
				l.Const = -val
			case symbolic.NE:
				l.Const = -val + 1
			case symbolic.LT:
				l.Const = -val - 1 - int64(r.Intn(5))
			case symbolic.LE:
				l.Const = -val - int64(r.Intn(5))
			case symbolic.GT:
				l.Const = -val + 1 + int64(r.Intn(5))
			case symbolic.GE:
				l.Const = -val + int64(r.Intn(5))
			}
			l.Const += 0
			pc = append(pc, symbolic.Pred{L: l, Rel: rel})
		}
		sol, ok := Solve(pc, intMeta, nil)
		if !ok {
			t.Fatalf("trial %d: satisfiable system rejected: %v (witness %v)",
				trial, symbolic.PathConstraint(pc), witness)
		}
		for _, p := range pc {
			if !p.Holds(sol) {
				t.Fatalf("trial %d: solution %v violates %v", trial, sol, p)
			}
		}
	}
}

// TestRandomUnsatNeverLies: when Solve does return on arbitrary random
// systems (satisfiable or not), the assignment must verify.
func TestRandomUnsatNeverLies(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rels := []symbolic.Rel{symbolic.EQ, symbolic.NE, symbolic.LT, symbolic.LE, symbolic.GT, symbolic.GE}
	for trial := 0; trial < 400; trial++ {
		var pc []symbolic.Pred
		for i := 0; i < 1+r.Intn(5); i++ {
			l := &symbolic.Lin{Const: int64(r.Intn(40) - 20), Coeffs: map[symbolic.Var]int64{}}
			for v := 0; v < 3; v++ {
				if r.Intn(2) == 0 {
					l.Coeffs[symbolic.Var(v)] = int64(r.Intn(7) - 3)
				}
			}
			pc = append(pc, symbolic.Pred{L: l, Rel: rels[r.Intn(len(rels))]})
		}
		if sol, ok := Solve(pc, intMeta, nil); ok {
			for _, p := range pc {
				if !p.Holds(sol) {
					t.Fatalf("trial %d: lying solution %v for %v", trial, sol, p)
				}
			}
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {48, 36, 12},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d", c.a, c.b, got)
		}
	}
}
