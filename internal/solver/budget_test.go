package solver

import (
	"testing"

	"dart/internal/symbolic"
)

func TestSolveWorkDefaultBudgetSat(t *testing.T) {
	pc := []symbolic.Pred{pred(symbolic.EQ, -10, 0, 1)}
	sol, v := SolveWork(pc, intMeta, nil, 0)
	if v != Sat {
		t.Fatalf("verdict = %v, want Sat", v)
	}
	if sol[0] != 10 {
		t.Errorf("x = %d, want 10", sol[0])
	}
}

func TestSolveWorkTinyBudgetExhausts(t *testing.T) {
	// A chain of inequalities forces Fourier–Motzkin elimination work;
	// one unit of budget cannot pay for it.
	pc := []symbolic.Pred{
		pred(symbolic.LE, 0, 0, 1, 1, -1), // x - y <= 0
		pred(symbolic.LE, 0, 1, 1, 2, -1), // y - z <= 0
		pred(symbolic.LE, -5, 2, 1),       // z <= 5
		pred(symbolic.GE, 5, 0, 1),        // x >= -5
	}
	_, v := SolveWork(pc, intMeta, nil, 1)
	if v != BudgetExhausted {
		t.Fatalf("verdict = %v, want BudgetExhausted for a 1-unit budget", v)
	}

	// The same system solves under the default budget.
	sol, v := SolveWork(pc, intMeta, nil, DefaultWork)
	if v != Sat {
		t.Fatalf("verdict = %v, want Sat under the default budget", v)
	}
	for _, p := range pc {
		if !p.Holds(sol) {
			t.Errorf("solution %v violates %v", sol, p)
		}
	}
}

func TestSolveWorkUnsatStaysUnsat(t *testing.T) {
	// x == y ∧ y == x + 10: genuinely unsatisfiable, and the verdict must
	// say so rather than blaming the budget.
	pc := []symbolic.Pred{
		pred(symbolic.EQ, 0, 0, 1, 1, -1),
		pred(symbolic.EQ, 10, 0, 1, 1, -1),
	}
	if _, v := SolveWork(pc, intMeta, nil, DefaultWork); v != Unsat {
		t.Fatalf("verdict = %v, want Unsat", v)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{Sat: "sat", Unsat: "unsat", BudgetExhausted: "budget-exhausted"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}
