// Cross-process solve memoization: the portable rendering of a solve
// and the contract a disk-backed cache layer implements.
//
// CacheKey (directed.go) renders variables by their symbolic.Var
// numbers, which are assigned in first-use order *within one search* —
// perfectly sound for the per-search LRU, and meaningless outside it:
// the same bytes can denote different constraints in another search,
// another function, another process.  A persistent layer therefore
// needs a key that renders the solver's entire semantic input with no
// search-local state: every variable appears as its stable input key
// (the "d0.x" naming scheme shared by the engine, Replay, and recorded
// input vectors) together with its full domain, the predicate sequence
// keeps solve order exactly like CacheKey, the hint travels by name,
// and the work budget is part of the key (a BudgetExhausted verdict is
// only reusable under the same budget).  Key equality then means any
// solver anywhere would see the byte-identical input, so a persistent
// hit returns precisely what a fresh solve would — the same argument
// that makes the in-memory memo invisible to search results.
package solver

import (
	"sort"
	"strconv"
	"strings"

	"dart/internal/symbolic"
)

// PortableResult is a persisted solve outcome: the verdict plus, for
// Sat, the model keyed by stable input-key names.
type PortableResult struct {
	Verdict Verdict
	Model   map[string]int64
}

// PersistentCache is the contract of a disk-backed solve memo shared
// across searches and processes.  Implementations must be safe for
// concurrent use (parallel audit workers consult one cache) and must
// treat any unreadable or corrupt persisted record as absent — a
// degraded cache costs solver time, never a wrong verdict.
type PersistentCache interface {
	// GetPortable returns the persisted result for key, if any.
	GetPortable(key string) (PortableResult, bool)
	// PutPortable records one solve outcome.  The model map must not be
	// retained by reference after the call returns.
	PutPortable(key string, verdict Verdict, model map[string]int64)
}

// portableKeyVersion stamps every portable key so a future change to
// the rendering (or to solver semantics that the rendering cannot see)
// invalidates old entries wholesale instead of aliasing them.
const portableKeyVersion = "pk1"

// PortableKey renders one sliced solve with no search-local state:
// version, work budget, the predicate sequence in solve order (each
// variable as name + domain, coefficient pairs in name order), and the
// hint values by name.  name and meta resolve a variable to its stable
// input key and solver domain; both must be total over the slice's
// variables.
func PortableKey(slice []symbolic.Pred, hint map[symbolic.Var]int64, budget int64, name func(symbolic.Var) string, meta func(symbolic.Var) VarMeta) string {
	var b strings.Builder
	b.Grow(64 * (len(slice) + 1))
	b.WriteString(portableKeyVersion)
	b.WriteString("!b")
	b.WriteString(strconv.FormatInt(budget, 10))
	b.WriteByte('!')

	// Deduped slice variables, gathered while rendering predicates.
	seen := map[symbolic.Var]bool{}
	var vars []symbolic.Var
	type pair struct {
		n string
		v symbolic.Var
	}
	var pairs []pair
	for _, p := range slice {
		b.WriteByte('r')
		b.WriteString(strconv.Itoa(int(p.Rel)))
		if p.L == nil {
			b.WriteString("|<fallback>&")
			continue
		}
		b.WriteByte('|')
		b.WriteString(strconv.FormatInt(p.L.Const, 10))
		pairs = pairs[:0]
		for v, c := range p.L.Coeffs {
			if c != 0 {
				pairs = append(pairs, pair{name(v), v})
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].n < pairs[j].n })
		for _, pr := range pairs {
			b.WriteByte('|')
			writeName(&b, pr.n)
			m := meta(pr.v)
			b.WriteByte('{')
			b.WriteString(strconv.Itoa(int(m.Kind)))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(m.Lo, 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(m.Hi, 10))
			b.WriteString("}:")
			b.WriteString(strconv.FormatInt(p.L.Coeffs[pr.v], 10))
		}
		b.WriteByte('&')
	}

	// Hint section: the slice's variables in name order, each with its
	// hint value (or '?' when absent), exactly mirroring CacheKey.
	b.WriteByte('#')
	names := make([]string, len(vars))
	byName := make(map[string]symbolic.Var, len(vars))
	for i, v := range vars {
		names[i] = name(v)
		byName[names[i]] = v
	}
	sort.Strings(names)
	for _, n := range names {
		writeName(&b, n)
		b.WriteByte('=')
		if h, ok := hint[byName[n]]; ok {
			b.WriteString(strconv.FormatInt(h, 10))
		} else {
			b.WriteByte('?')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// writeName writes a length-prefixed name, so names can never collide
// with the key's own delimiters no matter what characters they contain.
func writeName(b *strings.Builder, n string) {
	b.WriteString(strconv.Itoa(len(n)))
	b.WriteByte(':')
	b.WriteString(n)
}
