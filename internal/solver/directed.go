// The directed-search fast path: constraint independence slicing,
// canonical keying, and full-conjunction verification.
//
// DART's inner loop (Fig. 5 / Sec. 3.3) solves the path-constraint
// prefix with only the final predicate negated, so successive solver
// calls see highly redundant conjunctions.  Two classic reductions make
// this cheap without changing any result:
//
//   - Independence slicing.  Partition the conjunction into connected
//     components under the "shares a variable" relation and hand the
//     solver only the component containing the negated predicate.  The
//     other components are satisfied for free: their predicates were
//     observed true on the parent run, and IM + IM' preserves the
//     concrete values of every variable the solver does not touch.
//   - Solve memoization.  Key each sliced solve on an exact rendering
//     of the solver's input — the slice's predicate sequence plus the
//     hint values it depends on — and reuse the verdict and model when
//     the identical solve recurs.  Because key equality implies the
//     solver would see the byte-identical input, a cache hit is
//     indistinguishable from re-running the solver: caching can change
//     how fast a search runs, never what it finds.
//
// The slice preserves the path constraint's own predicate order.  An
// earlier design sorted slices into an order-insensitive canonical form
// so permuted prefixes could share cache entries; measurements showed
// the reordering made the solver materially slower (its substitution
// and elimination order follows predicate order, which in a path
// constraint mirrors the program's own structure) while the directed
// loop re-solves identical prefixes in identical order anyway, so
// cross-order sharing bought nothing.
//
// Soundness is preserved by construction: the package-doc contract that
// every returned assignment is verified against the original predicates
// is re-established at the full-conjunction level by VerifyAssignment,
// which callers run against the *unsliced* constraint (overflow-checked)
// whenever slicing actually pruned predicates.  (When nothing was
// pruned, the solver's own final verification already covered the full
// conjunction.)
package solver

import (
	"strconv"
	"strings"

	"dart/internal/symbolic"
)

// CanonicalSlice returns the connected component of pc containing its
// final predicate (the negated branch of Fig. 5), preserving pc's
// predicate order, plus the number of predicates pruned away.
// Components are computed under the "shares a variable" relation (zero
// coefficients ignored); variable-free predicates belong to no component
// and are pruned unless they are the target itself.  When any predicate
// is outside the theory (nil form), pc is returned unchanged so the
// solver reports the failure on the full conjunction, exactly as
// without slicing.
//
// When nothing is pruned the returned slice is pc itself; callers must
// not mutate it.
func CanonicalSlice(pc []symbolic.Pred) (slice []symbolic.Pred, pruned int) {
	return CanonicalSliceScratch(pc, nil)
}

// CanonicalSliceScratch is CanonicalSlice with caller-provided union-find
// scratch: parent (if non-nil) is cleared and reused, so a search's many
// slicing calls share one map.  The scratch holds nothing after return.
func CanonicalSliceScratch(pc []symbolic.Pred, parent map[symbolic.Var]symbolic.Var) (slice []symbolic.Pred, pruned int) {
	if len(pc) <= 1 {
		return pc, 0
	}
	for _, p := range pc {
		if p.L == nil {
			return pc, 0
		}
	}

	if len(pc) == 2 {
		// Depth-one prefixes are the overwhelmingly common non-trivial
		// case; decide them with a direct scan instead of union-find.
		for v, c := range pc[1].L.Coeffs {
			if c != 0 && pc[0].L.Coeff(v) != 0 {
				return pc, 0
			}
		}
		// No shared variable (or a variable-free target): the prefix
		// predicate is outside the component and is pruned.
		return pc[1:], 1
	}

	// Union-find over variables; each predicate unions its variables.
	// (Iterative find: no closure allocations on the solve path.  Any
	// root choice yields the same partition, which is all the slice
	// depends on.)
	if parent == nil {
		parent = map[symbolic.Var]symbolic.Var{}
	} else {
		clear(parent)
	}
	find := func(v symbolic.Var) symbolic.Var {
		r, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		for r != parent[r] {
			parent[r] = parent[parent[r]]
			r = parent[r]
		}
		parent[v] = r
		return r
	}
	for _, p := range pc {
		var first symbolic.Var
		seen := false
		for v, c := range p.L.Coeffs {
			if c == 0 {
				continue
			}
			if !seen {
				first, seen = v, true
				find(v)
				continue
			}
			ra, rb := find(first), find(v)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}

	target := pc[len(pc)-1]
	var targetRoot symbolic.Var
	targetHasVars := false
	for v, c := range target.L.Coeffs {
		if c != 0 {
			targetRoot, targetHasVars = find(v), true
			break
		}
	}
	if !targetHasVars {
		// A constant target shares no variables with anything; solving it
		// alone decides the flip, and VerifyAssignment still re-checks the
		// pruned prefix.
		return pc[len(pc)-1:], len(pc) - 1
	}

	inComponent := func(p symbolic.Pred) bool {
		for v, c := range p.L.Coeffs {
			if c != 0 && find(v) == targetRoot {
				return true
			}
		}
		return false
	}
	kept := 0
	for _, p := range pc {
		if inComponent(p) {
			kept++
		}
	}
	if kept == len(pc) {
		return pc, 0
	}
	slice = make([]symbolic.Pred, 0, kept)
	for _, p := range pc {
		if inComponent(p) {
			slice = append(slice, p)
		}
	}
	return slice, len(pc) - len(slice)
}

// CacheKey is the identity of one sliced solve: the slice's predicates
// rendered in solve order, plus the hint values of every variable they
// mention.  The key deliberately encodes the predicate *sequence*, not
// just the set — key equality therefore means the solver would see the
// byte-identical input (same predicates, same order, same hint), so a
// cache hit returns exactly what a fresh solve would, and the
// determinism of cache-on versus cache-off searches reduces to the
// solver being a pure function of its input.  The hint belongs in the
// key because Solve seeds candidate enumeration and disequality splits
// from it; variables absent from the hint are recorded as such.
func CacheKey(slice []symbolic.Pred, hint map[symbolic.Var]int64) string {
	var b strings.Builder
	b.Grow(32 * (len(slice) + 1))
	vs := make([]symbolic.Var, 0, 16) // every slice variable, with repeats
	for _, p := range slice {
		vs = appendPredKey(&b, p, vs)
		b.WriteByte('&')
	}
	b.WriteByte('#')
	sortVars(vs)
	for i, v := range vs {
		if i > 0 && vs[i-1] == v {
			continue
		}
		b.WriteString(strconv.Itoa(int(v)))
		b.WriteByte('=')
		if h, ok := hint[v]; ok {
			b.WriteString(strconv.FormatInt(h, 10))
		} else {
			b.WriteByte('?')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// sortVars is an allocation-free insertion sort: key building sits on
// the solve path and the var lists are short, so reflection-based
// sort.Slice (closure + swapper allocations per call) costs more than
// the sort itself.
func sortVars(vs []symbolic.Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// appendPredKey appends p's canonical rendering to b — relation code,
// constant, then var:coeff pairs in ascending variable order (zero
// coefficients skipped) — and appends p's variables to vs, which it
// returns.  Structurally equal predicates, and only those, render
// identically.
func appendPredKey(b *strings.Builder, p symbolic.Pred, vs []symbolic.Var) []symbolic.Var {
	b.WriteByte('r')
	b.WriteString(strconv.Itoa(int(p.Rel)))
	if p.L == nil {
		b.WriteString("|<fallback>")
		return vs
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(p.L.Const, 10))
	start := len(vs)
	for v, c := range p.L.Coeffs {
		if c != 0 {
			vs = append(vs, v)
		}
	}
	own := vs[start:]
	sortVars(own)
	for _, v := range own {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(v)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(p.L.Coeffs[v], 10))
	}
	return vs
}

// predKey renders one predicate in its CacheKey form (test hook).
func predKey(p symbolic.Pred) string {
	var b strings.Builder
	appendPredKey(&b, p, nil)
	return b.String()
}

// VerifyAssignment reports whether sol, completed by hint for variables
// it does not assign, satisfies every predicate of the full conjunction
// pc.  Integer predicates are evaluated with overflow checking (a
// wrapping evaluation counts as unsatisfied); pointer predicates must be
// definitely true under three-valued evaluation; predicates outside the
// theory, or mixing pointer and scalar variables, fail conservatively —
// the same classes the solver itself refuses.  Callers of sliced solves
// run this against the unsliced constraint whenever predicates were
// pruned, re-establishing the package-doc soundness contract at the
// full-conjunction level.
func VerifyAssignment(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, sol, hint map[symbolic.Var]int64) bool {
	return VerifyAssignmentScratch(pc, meta, sol, hint, nil)
}

// VerifyAssignmentScratch is VerifyAssignment with a caller-provided
// scratch map for the completed assignment: assign (if non-nil) is
// cleared and reused, so a search's many verifications share one map.
// The scratch holds nothing the caller must preserve after return.
func VerifyAssignmentScratch(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, sol, hint, assign map[symbolic.Var]int64) bool {
	if assign != nil {
		clear(assign)
	}
	for _, p := range pc {
		if p.L == nil {
			return false
		}
		if assign == nil {
			assign = make(map[symbolic.Var]int64, len(sol)+8)
		}
		hasPtr, hasScalar := false, false
		for v, c := range p.L.Coeffs {
			if c == 0 {
				continue
			}
			if meta(v).Kind == symbolic.PointerVar {
				hasPtr = true
			} else {
				hasScalar = true
			}
			if _, ok := assign[v]; !ok {
				if x, ok := sol[v]; ok {
					assign[v] = x
				} else {
					assign[v] = hint[v]
				}
			}
		}
		switch {
		case hasPtr && hasScalar:
			return false
		case hasPtr:
			if evalPtrPred(symbolic.Pred{L: stripZeros(p.L), Rel: p.Rel}, assign) != triTrue {
				return false
			}
		default:
			if !holdsChecked(p, assign) {
				return false
			}
		}
	}
	return true
}
