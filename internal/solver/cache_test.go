package solver

import (
	"fmt"
	"sync"
	"testing"

	"dart/internal/symbolic"
)

func TestShardedCacheGetPut(t *testing.T) {
	c := NewShardedCache(64, 4)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on an empty cache")
	}
	model := map[symbolic.Var]int64{0: 42}
	c.Put("k1", Sat, model)
	res, ok := c.Get("k1")
	if !ok || res.Verdict != Sat || res.Model[0] != 42 {
		t.Fatalf("Get(k1) = %+v, %v", res, ok)
	}
	// The returned model is a copy: mutating it must not poison the entry.
	res.Model[0] = 7
	res2, _ := c.Get("k1")
	if res2.Model[0] != 42 {
		t.Fatalf("cached model mutated through a Get copy: %v", res2.Model)
	}
	// So is the stored model relative to the caller's map.
	model[0] = 9
	res3, _ := c.Get("k1")
	if res3.Model[0] != 42 {
		t.Fatalf("cached model aliases the caller's map: %v", res3.Model)
	}
	c.Put("k2", Unsat, nil)
	if res, ok := c.Get("k2"); !ok || res.Verdict != Unsat || res.Model != nil {
		t.Fatalf("Get(k2) = %+v, %v", res, ok)
	}
	if c.Hits() != 4 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 4/1", c.Hits(), c.Misses())
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestShardedCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		c := NewShardedCache(0, tc.ask)
		if got := len(c.shards); got != tc.want {
			t.Errorf("shards=%d: got %d shards, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestShardedCacheEviction(t *testing.T) {
	// Total capacity 4 over 2 shards: 2 entries per shard.  Inserting
	// many distinct keys must evict, count the evictions, and keep Len
	// bounded by the capacity.
	c := NewShardedCache(4, 2)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("key-%d", i), Unsat, nil)
	}
	if c.Evictions() == 0 {
		t.Error("no evictions after overfilling")
	}
	if c.Len() > 4 {
		t.Errorf("Len = %d exceeds total capacity 4", c.Len())
	}
	if c.Evictions() != 32-int64(c.Len()) {
		t.Errorf("evictions=%d + live=%d != 32 puts", c.Evictions(), c.Len())
	}
}

func TestShardedCacheOverwrite(t *testing.T) {
	c := NewShardedCache(8, 2)
	c.Put("k", Unsat, nil)
	if evicted := c.Put("k", Sat, map[symbolic.Var]int64{1: 5}); evicted {
		t.Error("overwriting a live key reported an eviction")
	}
	res, ok := c.Get("k")
	if !ok || res.Verdict != Sat || res.Model[1] != 5 {
		t.Fatalf("Get after overwrite = %+v, %v", res, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// TestShardedCacheConcurrent hammers one cache from many goroutines with
// overlapping key sets; run under -race this is the data-race gate for
// the shard locking and the atomic counters.
func TestShardedCacheConcurrent(t *testing.T) {
	c := NewShardedCache(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%64)
				if res, ok := c.Get(key); ok {
					if res.Verdict == Sat && res.Model[0] != int64(i%64) {
						t.Errorf("goroutine %d: key %s has model %v", g, key, res.Model)
					}
					continue
				}
				c.Put(key, Sat, map[symbolic.Var]int64{0: int64(i % 64)})
			}
		}(g)
	}
	wg.Wait()
	if got := c.Hits() + c.Misses(); got != 8*500 {
		t.Errorf("hits+misses = %d, want %d", got, 8*500)
	}
}
