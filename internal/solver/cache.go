package solver

import (
	"container/list"

	"dart/internal/symbolic"
)

// DefaultCacheCap is the solve-cache capacity used when a caller asks
// for a cache without choosing one.  Directed searches rarely see more
// than a few thousand distinct (slice, hint) keys before restarting, so
// this bounds memory without measurable hit-rate loss.
const DefaultCacheCap = 1024

// CachedSolve is one memoized slice-level solve result: the verdict and,
// for Sat, the model.  It is the *pre-verification* result — callers
// re-verify against their full conjunction on every use, so a cached
// entry never weakens the soundness contract.
type CachedSolve struct {
	Verdict Verdict
	// Model is the satisfying assignment (nil unless Verdict is Sat).
	Model map[symbolic.Var]int64
}

// Cache is a bounded LRU memo of sliced solves, keyed by CacheKey.  One
// search owns one cache (no locking), mirroring the per-search metrics
// registry, so a parallel audit's results stay independent of its
// worker count.  Because the key renders the exact solver input — the
// predicate sequence plus the hint values the solve depends on — a hit
// is identical to re-running the solver: caching can change how fast a
// search runs, never what it finds.
type Cache struct {
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	hits    int64
	misses  int64
	evicted int64
}

type cacheEntry struct {
	key string
	res CachedSolve
}

// NewCache returns a cache holding up to capacity entries (<= 0 selects
// DefaultCacheCap).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the memoized result for key.  The model is copied, so
// callers may complete or consume it freely.
func (c *Cache) Get(key string) (CachedSolve, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return CachedSolve{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	res.Model = copyModel(res.Model)
	return res, true
}

// Put memoizes the result for key, evicting the least recently used
// entry when full; it reports whether an eviction happened.  The model
// is copied at store time.
func (c *Cache) Put(key string, verdict Verdict, model map[symbolic.Var]int64) (evicted bool) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = CachedSolve{Verdict: verdict, Model: copyModel(model)}
		c.lru.MoveToFront(el)
		return false
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		if oldest != nil {
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.lru.Remove(oldest)
			c.evicted++
			evicted = true
		}
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{
		key: key,
		res: CachedSolve{Verdict: verdict, Model: copyModel(model)},
	})
	return evicted
}

// Hits, Misses, and Evictions report the cache's lifetime activity.
func (c *Cache) Hits() int64      { return c.hits }
func (c *Cache) Misses() int64    { return c.misses }
func (c *Cache) Evictions() int64 { return c.evicted }

// Len returns the number of live entries.
func (c *Cache) Len() int { return c.lru.Len() }

func copyModel(m map[symbolic.Var]int64) map[symbolic.Var]int64 {
	if m == nil {
		return nil
	}
	out := make(map[symbolic.Var]int64, len(m))
	for v, x := range m {
		out[v] = x
	}
	return out
}
