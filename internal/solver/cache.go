package solver

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dart/internal/symbolic"
)

// DefaultCacheCap is the solve-cache capacity used when a caller asks
// for a cache without choosing one.  Directed searches rarely see more
// than a few thousand distinct (slice, hint) keys before restarting, so
// this bounds memory without measurable hit-rate loss.
const DefaultCacheCap = 1024

// CachedSolve is one memoized slice-level solve result: the verdict and,
// for Sat, the model.  It is the *pre-verification* result — callers
// re-verify against their full conjunction on every use, so a cached
// entry never weakens the soundness contract.
type CachedSolve struct {
	Verdict Verdict
	// Model is the satisfying assignment (nil unless Verdict is Sat).
	Model map[symbolic.Var]int64
}

// SolveCache is the memoization contract of the solver fast path: Get
// returns a previously stored slice-level result, Put stores one and
// reports whether doing so evicted an older entry.  The single-owner
// Cache implements it lock-free for sequential searches; ShardedCache
// implements it with per-shard locking for the parallel frontier
// engine, whose workers share one memo.
type SolveCache interface {
	Get(key string) (CachedSolve, bool)
	Put(key string, verdict Verdict, model map[symbolic.Var]int64) (evicted bool)
}

// Cache is a bounded LRU memo of sliced solves, keyed by CacheKey.  One
// search owns one cache (no locking), mirroring the per-search metrics
// registry, so a parallel audit's results stay independent of its
// worker count.  Because the key renders the exact solver input — the
// predicate sequence plus the hint values the solve depends on — a hit
// is identical to re-running the solver: caching can change how fast a
// search runs, never what it finds.
type Cache struct {
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	hits    int64
	misses  int64
	evicted int64
}

type cacheEntry struct {
	key string
	res CachedSolve
}

// NewCache returns a cache holding up to capacity entries (<= 0 selects
// DefaultCacheCap).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the memoized result for key.  The model is copied, so
// callers may complete or consume it freely.
func (c *Cache) Get(key string) (CachedSolve, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return CachedSolve{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	res.Model = copyModel(res.Model)
	return res, true
}

// Put memoizes the result for key, evicting the least recently used
// entry when full; it reports whether an eviction happened.  The model
// is copied at store time.
func (c *Cache) Put(key string, verdict Verdict, model map[symbolic.Var]int64) (evicted bool) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = CachedSolve{Verdict: verdict, Model: copyModel(model)}
		c.lru.MoveToFront(el)
		return false
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		if oldest != nil {
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.lru.Remove(oldest)
			c.evicted++
			evicted = true
		}
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{
		key: key,
		res: CachedSolve{Verdict: verdict, Model: copyModel(model)},
	})
	return evicted
}

// Hits, Misses, and Evictions report the cache's lifetime activity.
func (c *Cache) Hits() int64      { return c.hits }
func (c *Cache) Misses() int64    { return c.misses }
func (c *Cache) Evictions() int64 { return c.evicted }

// Len returns the number of live entries.
func (c *Cache) Len() int { return c.lru.Len() }

// ShardedCache is the concurrency-safe solve cache shared by the
// workers of a parallel frontier search: the key space is split over
// power-of-two shards by FNV-1a hash, each shard a private LRU Cache
// behind its own mutex, so workers solving unrelated constraints never
// contend on one lock.  Hit/miss/eviction totals are atomics, readable
// while workers run.
//
// Sharing is sound for the same reason the per-search cache is: keys
// render the exact solver input against a variable numbering that is
// global to the search (the parallel engine shares one input registry
// across workers), so a hit — whoever stored it — returns precisely
// what a fresh solve would.
type ShardedCache struct {
	shards []cacheShard
	mask   uint32
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

type cacheShard struct {
	mu sync.Mutex
	c  *Cache
	// padding to keep neighbouring shard locks off one cache line.
	_ [48]byte
}

// NewShardedCache returns a sharded cache holding up to capacity entries
// in total (<= 0 selects DefaultCacheCap), spread over at least shards
// shards (rounded up to a power of two, minimum 2).
func NewShardedCache(capacity, shards int) *ShardedCache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	n := 2
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	s := &ShardedCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].c = NewCache(per)
	}
	return s
}

// shardOf hashes key with FNV-1a and masks into the shard table.
func (s *ShardedCache) shardOf(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h&s.mask]
}

// Get implements SolveCache.  The model is copied by the underlying
// shard, so callers may mutate it freely.
func (s *ShardedCache) Get(key string) (CachedSolve, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	res, ok := sh.c.Get(key)
	sh.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return res, ok
}

// Put implements SolveCache.
func (s *ShardedCache) Put(key string, verdict Verdict, model map[symbolic.Var]int64) (evicted bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	evicted = sh.c.Put(key, verdict, model)
	sh.mu.Unlock()
	if evicted {
		s.evicts.Add(1)
	}
	return evicted
}

// Hits, Misses, and Evictions report the cache's lifetime activity;
// safe to read while workers are still solving.
func (s *ShardedCache) Hits() int64      { return s.hits.Load() }
func (s *ShardedCache) Misses() int64    { return s.misses.Load() }
func (s *ShardedCache) Evictions() int64 { return s.evicts.Load() }

// Len returns the number of live entries across all shards.
func (s *ShardedCache) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

func copyModel(m map[symbolic.Var]int64) map[symbolic.Var]int64 {
	if m == nil {
		return nil
	}
	out := make(map[symbolic.Var]int64, len(m))
	for v, x := range m {
		out[v] = x
	}
	return out
}
