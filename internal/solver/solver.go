// Package solver decides conjunctions of DART path-constraint predicates
// over the integers, replacing the paper's use of lp_solve.
//
// The input is a conjunction of affine predicates  L ⋈ 0.  Scalar input
// variables range over their C type's value set (int32, int8, ...).
// Pointer input variables range over the two-point domain that the
// generated test driver's random_init can realize: NULL, or a fresh
// heap allocation (Sec. 3.2).  Two distinct fresh allocations are never
// equal, and no input can name a specific non-NULL address, so pointer
// reasoning reduces to a small case analysis.
//
// The integer fragment is decided by equality substitution followed by
// Fourier–Motzkin elimination with integer bound tightening and
// back-substitution; disequalities are handled by case splits.  Every
// candidate assignment is verified against the original predicates before
// being returned, so a returned solution always satisfies the path
// constraint (the property DART's Theorem 1(a) soundness rests on); the
// cost of the solver's incompleteness is only extra search, which DART
// already tolerates via its completeness flags.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"dart/internal/symbolic"
)

// stripZeros removes explicit zero coefficients so that downstream
// var-counting logic sees only genuine occurrences.
func stripZeros(l *symbolic.Lin) *symbolic.Lin {
	clean := true
	for _, c := range l.Coeffs {
		if c == 0 {
			clean = false
			break
		}
	}
	if clean {
		return l
	}
	out := l.Clone()
	for v, c := range out.Coeffs {
		if c == 0 {
			delete(out.Coeffs, v)
		}
	}
	return out
}

// VarMeta describes one variable's domain.
type VarMeta struct {
	Kind symbolic.VarKind
	// Lo and Hi bound scalar variables (inclusive). Ignored for pointers.
	Lo, Hi int64
}

// PtrNull and PtrAlloc are the two pointer solution values: keep the
// pointer NULL, or make random_init allocate a fresh object for it.
const (
	PtrNull  int64 = 0
	PtrAlloc int64 = 1
)

// Limits bound the search; exceeding them fails conservatively.
const (
	maxNESplits    = 1 << 9
	maxConstraints = 1 << 12
	maxCombos      = 1 << 17
	maxPtrEnum     = 1 << 16
)

// Verdict classifies a SolveWork result.
type Verdict int

// Verdicts.
const (
	// Unsat: no assignment was found — the conjunction is infeasible, or
	// it lies beyond the solver's (incomplete) decision procedure.
	Unsat Verdict = iota
	// Sat: the returned assignment satisfies every predicate.
	Sat
	// BudgetExhausted: the work budget ran out before the search could
	// decide; the caller must treat the constraint as undecided (and, for
	// DART, give up completeness rather than hang).
	BudgetExhausted
)

func (v Verdict) String() string {
	switch v {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	case BudgetExhausted:
		return "budget-exhausted"
	}
	return "unknown"
}

// DefaultWork is the work budget Solve grants each call: large enough
// that ordinary path constraints never trip it, small enough that an
// adversarial system stops grinding within tens of milliseconds.
const DefaultWork = 1 << 22

// budgetState meters solver work.  One unit is roughly one row
// combination, candidate probe, or enumeration step; every potentially
// super-linear loop spends from the shared pool.
type budgetState struct {
	work      int64
	exhausted bool
}

// spend debits n units and reports whether work may continue.
func (b *budgetState) spend(n int64) bool {
	if b.exhausted {
		return false
	}
	b.work -= n
	if b.work < 0 {
		b.exhausted = true
		return false
	}
	return true
}

// Solve searches for an assignment satisfying every predicate in pc.
// meta supplies variable domains; hint carries the previous run's input
// values, which seed don't-care choices (the paper preserves inputs not
// involved in the path constraint, and nearby solutions keep the
// execution prefix stable).  The returned map assigns every variable that
// occurs in pc (pointer variables to PtrNull/PtrAlloc); variables not
// occurring are absent and keep their old values.
func Solve(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64) (map[symbolic.Var]int64, bool) {
	sol, verdict := SolveWork(pc, meta, hint, DefaultWork)
	return sol, verdict == Sat
}

// SolveWork is Solve under an explicit work budget (<= 0 selects
// DefaultWork).  On exhaustion it returns the distinct BudgetExhausted
// verdict instead of conflating "too expensive" with "infeasible", so
// callers can degrade gracefully (clear completeness, keep searching)
// rather than either hanging or silently over-claiming.
func SolveWork(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64, work int64) (map[symbolic.Var]int64, Verdict) {
	sol, verdict, _ := SolveWorkStats(pc, meta, hint, work)
	return sol, verdict
}

// Stats reports the resources one solve consumed.
type Stats struct {
	// Work is the number of work units spent (deterministic: it depends
	// only on the constraint system, never on the wall clock), the unit
	// the engine's Fourier–Motzkin-work histogram is measured in.
	Work int64
}

// SolveWorkStats is SolveWork, additionally reporting how much of the
// budget the solve consumed so callers can meter solver effort.
func SolveWorkStats(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64, work int64) (map[symbolic.Var]int64, Verdict, Stats) {
	if work <= 0 {
		work = DefaultWork
	}
	budget := &budgetState{work: work}
	sol, ok := solve(pc, meta, hint, budget)
	spent := work - budget.work
	if spent > work {
		spent = work // the last spend may overdraw past zero
	}
	stats := Stats{Work: spent}
	switch {
	case ok:
		return sol, Sat, stats
	case budget.exhausted:
		return nil, BudgetExhausted, stats
	default:
		return nil, Unsat, stats
	}
}

func solve(pc []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64, budget *budgetState) (map[symbolic.Var]int64, bool) {
	var intPreds []symbolic.Pred
	var ptrPreds []symbolic.Pred
	ptrVars := map[symbolic.Var]bool{}

	for _, p := range pc {
		if p.L == nil {
			return nil, false
		}
		p = symbolic.Pred{L: stripZeros(p.L), Rel: p.Rel}
		hasPtr, hasScalar := false, false
		for v := range p.L.Coeffs {
			if meta(v).Kind == symbolic.PointerVar {
				hasPtr = true
				ptrVars[v] = true
			} else {
				hasScalar = true
			}
		}
		switch {
		case hasPtr && hasScalar:
			// A predicate mixing pointer and arithmetic inputs (e.g. a
			// pointer cast into an int and combined with another input)
			// is outside what random_init can steer; give up.
			return nil, false
		case hasPtr:
			ptrPreds = append(ptrPreds, p)
		default:
			intPreds = append(intPreds, p)
		}
	}

	ptrAssign, ok := solvePointers(ptrPreds, ptrVars, hint, budget)
	if !ok {
		return nil, false
	}
	intAssign, ok := solveIntegers(intPreds, meta, hint, budget)
	if !ok {
		return nil, false
	}

	solution := make(map[symbolic.Var]int64, len(ptrAssign)+len(intAssign))
	for v, x := range ptrAssign {
		solution[v] = x
	}
	for v, x := range intAssign {
		solution[v] = x
	}
	// Complete the solution with hint values for variables the solver
	// never had to constrain: that is the value they will actually have
	// at runtime (IM + IM' preserves uninvolved inputs), so verification
	// must use it.
	for _, p := range intPreds {
		for v := range p.L.Coeffs {
			if _, ok := solution[v]; !ok {
				solution[v] = hint[v]
			}
		}
	}
	// Verify integer predicates exactly, with overflow-checked
	// evaluation: a candidate whose affine forms wrap int64 is rejected
	// (conservative Unsat) rather than accepted on the strength of
	// arithmetic that wrapped the same way twice.  Pointer predicates
	// were decided by definite three-valued evaluation inside
	// solvePointers.
	for _, p := range intPreds {
		if !holdsChecked(p, solution) {
			return nil, false
		}
	}
	return solution, true
}

// holdsChecked is Pred.Holds with overflow-checked evaluation; an
// overflowing evaluation counts as not holding.
func holdsChecked(p symbolic.Pred, assign map[symbolic.Var]int64) bool {
	v, ok := p.L.EvalChecked(assign)
	return ok && cmpInt(v, p.Rel)
}

// ------------------------------------------------------------- pointers

// tri is a three-valued truth value.
type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

// solvePointers enumerates {NULL, Alloc} assignments over the pointer
// variables and returns the first under which every pointer predicate is
// definitely true.  Assignments agreeing with the hint are tried first so
// don't-care pointers keep their previous shape.
func solvePointers(preds []symbolic.Pred, vars map[symbolic.Var]bool, hint map[symbolic.Var]int64, budget *budgetState) (map[symbolic.Var]int64, bool) {
	if len(preds) == 0 {
		return map[symbolic.Var]int64{}, true
	}
	ordered := make([]symbolic.Var, 0, len(vars))
	for v := range vars {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	n := len(ordered)
	if n > 16 || (1<<uint(n)) > maxPtrEnum {
		return nil, false
	}

	// prefs[i] is the value to try first for ordered[i].
	prefs := make([]int64, n)
	for i, v := range ordered {
		if h, ok := hint[v]; ok && h != 0 {
			prefs[i] = PtrAlloc
		} else if ok {
			prefs[i] = PtrNull
		} else {
			prefs[i] = PtrAlloc
		}
	}

	assign := map[symbolic.Var]int64{}
	for mask := 0; mask < (1 << uint(n)); mask++ {
		if !budget.spend(int64(len(preds)) + 1) {
			return nil, false
		}
		for i, v := range ordered {
			val := prefs[i]
			if mask&(1<<uint(i)) != 0 {
				val = PtrAlloc + PtrNull - val // flip
			}
			assign[v] = val
		}
		ok := true
		for _, p := range preds {
			if evalPtrPred(p, assign) != triTrue {
				ok = false
				break
			}
		}
		if ok {
			out := make(map[symbolic.Var]int64, n)
			for v, x := range assign {
				out[v] = x
			}
			return out, true
		}
	}
	return nil, false
}

// evalPtrPred evaluates L ⋈ 0 when each pointer variable is NULL (0) or a
// fresh allocation (an unknown, pairwise-distinct, very large positive
// address).  Substituting NULLs leaves  Σ cᵢ·aᵢ + k  over alloc vars aᵢ:
//
//   - no alloc vars: definite integer comparison;
//   - alloc vars all of one sign: the value is ±∞, definite;
//   - the special anti-aliasing shape a - b (+0): nonzero but of unknown
//     sign, so == is false and != is true;
//   - anything else: unknown.
func evalPtrPred(p symbolic.Pred, assign map[symbolic.Var]int64) tri {
	k := p.L.Const
	pos, neg := 0, 0
	allocCoeffs := []int64{}
	for v := range p.L.Coeffs {
		if assign[v] == PtrNull {
			continue
		}
		c := p.L.Coeff(v)
		allocCoeffs = append(allocCoeffs, c)
		if c > 0 {
			pos++
		} else {
			neg++
		}
	}
	switch {
	case len(allocCoeffs) == 0:
		return defTruth(cmpInt(k, p.Rel))
	case pos > 0 && neg == 0:
		return defTruth(cmpInf(+1, p.Rel))
	case neg > 0 && pos == 0:
		return defTruth(cmpInf(-1, p.Rel))
	case len(allocCoeffs) == 2 && k == 0 &&
		((allocCoeffs[0] == 1 && allocCoeffs[1] == -1) ||
			(allocCoeffs[0] == -1 && allocCoeffs[1] == 1)):
		// a - b with distinct allocations: nonzero, unknown sign.
		switch p.Rel {
		case symbolic.EQ:
			return triFalse
		case symbolic.NE:
			return triTrue
		}
		return triUnknown
	default:
		return triUnknown
	}
}

func defTruth(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

func cmpInt(v int64, rel symbolic.Rel) bool {
	switch rel {
	case symbolic.EQ:
		return v == 0
	case symbolic.NE:
		return v != 0
	case symbolic.LT:
		return v < 0
	case symbolic.LE:
		return v <= 0
	case symbolic.GT:
		return v > 0
	case symbolic.GE:
		return v >= 0
	}
	return false
}

// cmpInf compares ±∞ against 0.
func cmpInf(sign int, rel symbolic.Rel) bool {
	if sign > 0 {
		return rel == symbolic.NE || rel == symbolic.GT || rel == symbolic.GE
	}
	return rel == symbolic.NE || rel == symbolic.LT || rel == symbolic.LE
}

// ------------------------------------------------------------- integers

// cons is the canonical constraint  L ≤ 0  or  L = 0.
type cons struct {
	l  *symbolic.Lin
	eq bool
}

// solveIntegers decides a conjunction of affine predicates over bounded
// integer variables.
func solveIntegers(preds []symbolic.Pred, meta func(symbolic.Var) VarMeta, hint map[symbolic.Var]int64, budget *budgetState) (map[symbolic.Var]int64, bool) {
	if len(preds) == 0 {
		return map[symbolic.Var]int64{}, true
	}
	base := make([]cons, 0, len(preds))
	var splits []*symbolic.Lin // NE constraints, split lazily

	for _, p := range preds {
		if p.Rel == symbolic.NE {
			splits = append(splits, p.L.Clone())
			continue
		}
		var c cons
		switch p.Rel {
		case symbolic.EQ:
			c = cons{l: p.L.Clone(), eq: true}
		case symbolic.LE:
			c = cons{l: p.L.Clone()}
		case symbolic.LT: // L < 0  ⇔  L + 1 ≤ 0 over ℤ
			c = cons{l: shiftConst(p.L, 1)}
		case symbolic.GE: // L ≥ 0  ⇔  -L ≤ 0
			c = cons{l: symbolic.Scale(p.L, -1)}
		case symbolic.GT: // L > 0  ⇔  -L + 1 ≤ 0
			c = cons{l: shiftConst(symbolic.Scale(p.L, -1), 1)}
		}
		if c.l == nil {
			return nil, false
		}
		base = append(base, c)
	}

	s := &intSolver{meta: meta, hint: hint, budget: maxNESplits, work: budget}
	return s.search(base, splits)
}

// violatedNE returns the index of the first disequality violated by the
// assignment (vars absent from the assignment read as their hint), or -1.
func violatedNE(splits []*symbolic.Lin, assign, hint map[symbolic.Var]int64) int {
	for i, l := range splits {
		total := l.Const
		for v, c := range l.Coeffs {
			val, ok := assign[v]
			if !ok {
				val = hint[v]
			}
			total += c * val
		}
		if total == 0 {
			return i
		}
	}
	return -1
}

func shiftConst(l *symbolic.Lin, d int64) *symbolic.Lin {
	if l == nil {
		return nil
	}
	c := l.Clone()
	c.Const += d
	return c
}

type intSolver struct {
	meta   func(symbolic.Var) VarMeta
	hint   map[symbolic.Var]int64
	budget int
	// nodes counts back-substitution search nodes across the whole
	// Solve call, bounding total work.
	nodes int
	// work is the caller's shared work budget; exhausting it makes the
	// whole solve fail with the BudgetExhausted verdict.
	work *budgetState
}

// search decides base ∧ splits with lazy disequality handling: the EQ/LE
// core is solved first (if it is UNSAT the disequalities cannot rescue
// it), and only disequalities actually violated by the core solution are
// split — each as L+1 ≤ 0 (L < 0) or -L+1 ≤ 0 (L > 0), hint branch
// first.  Generic solutions rarely land on excluded hyperplanes, so most
// solves never split at all.
func (s *intSolver) search(base []cons, splits []*symbolic.Lin) (map[symbolic.Var]int64, bool) {
	if s.budget <= 0 || !s.work.spend(int64(len(base)+len(splits))+1) {
		return nil, false
	}
	s.budget--
	sol, ok := s.solveCore(base)
	if !ok {
		return nil, false
	}
	i := violatedNE(splits, sol, s.hint)
	if i < 0 {
		return sol, true
	}
	l := splits[i]
	rest := make([]*symbolic.Lin, 0, len(splits)-1)
	rest = append(rest, splits[:i]...)
	rest = append(rest, splits[i+1:]...)
	negBranch := cons{l: shiftConst(l, 1)}                     // L < 0
	posBranch := cons{l: shiftConst(symbolic.Scale(l, -1), 1)} // L > 0
	first, second := negBranch, posBranch
	if l.Eval(s.hint) > 0 {
		first, second = posBranch, negBranch
	}
	if sol, ok := s.search(append(append([]cons{}, base...), first), rest); ok {
		return sol, true
	}
	return s.search(append(append([]cons{}, base...), second), rest)
}

// solveCore decides a conjunction of equalities and ≤-inequalities.
func (s *intSolver) solveCore(all []cons) (map[symbolic.Var]int64, bool) {
	// Phase 1: equality substitution.
	type substitution struct {
		v    symbolic.Var
		expr *symbolic.Lin // v = expr
	}
	var subs []substitution
	var ineqs []*symbolic.Lin
	eqs := []*symbolic.Lin{}
	for _, c := range all {
		if c.eq {
			eqs = append(eqs, c.l)
		} else {
			ineqs = append(ineqs, c.l)
		}
	}

	for len(eqs) > 0 {
		l := eqs[0]
		eqs = eqs[1:]
		if l.IsConst() {
			if l.Const != 0 {
				return nil, false
			}
			continue
		}
		// Find a ±1 coefficient to substitute on (smallest id for
		// determinism).
		var pivot symbolic.Var
		found := false
		for v, c := range l.Coeffs {
			if (c == 1 || c == -1) && (!found || v < pivot) {
				pivot, found = v, true
			}
		}
		if !found {
			// Check gcd feasibility, then relax into two inequalities.
			g := int64(0)
			for _, c := range l.Coeffs {
				g = gcd(g, abs64(c))
			}
			if g != 0 && l.Const%g != 0 {
				return nil, false
			}
			neg := symbolic.Scale(l, -1)
			if neg == nil {
				return nil, false
			}
			ineqs = append(ineqs, l, neg)
			continue
		}
		// pivot·c + rest = 0  ⇒  pivot = -rest/c  (c = ±1).
		c := l.Coeff(pivot)
		rest := l.Clone()
		delete(rest.Coeffs, pivot)
		expr := symbolic.Scale(rest, -c) // c = ±1 so -1/c == -c
		if expr == nil {
			return nil, false
		}
		// The pivot's own domain must still be honored after
		// substitution: Lo ≤ expr ≤ Hi.
		m := s.meta(pivot)
		up := shiftConst(expr, -m.Hi) // expr - Hi ≤ 0
		lo := symbolic.Scale(expr, -1)
		if up == nil || lo == nil {
			return nil, false
		}
		lo = shiftConst(lo, m.Lo) // Lo - expr ≤ 0
		ineqs = append(ineqs, up, lo)
		subs = append(subs, substitution{v: pivot, expr: expr})
		replace := func(t *symbolic.Lin) *symbolic.Lin {
			k := t.Coeff(pivot)
			if k == 0 {
				return t
			}
			t2 := t.Clone()
			delete(t2.Coeffs, pivot)
			scaled := symbolic.Scale(expr, k)
			if scaled == nil {
				return nil
			}
			return symbolic.Add(t2, scaled)
		}
		if !s.work.spend(int64(len(eqs) + len(ineqs))) {
			return nil, false
		}
		for i := range eqs {
			if eqs[i] = replace(eqs[i]); eqs[i] == nil {
				return nil, false
			}
		}
		for i := range ineqs {
			if ineqs[i] = replace(ineqs[i]); ineqs[i] == nil {
				return nil, false
			}
		}
	}

	// Phase 2: Fourier–Motzkin elimination over the inequalities.
	assign, ok := s.fourierMotzkin(ineqs)
	if !ok {
		return nil, false
	}

	// Phase 3: back-substitute eliminated equality variables (reverse
	// order so each expr only mentions already-assigned variables or
	// don't-cares, which default to their hints / zero).
	for i := len(subs) - 1; i >= 0; i-- {
		sub := subs[i]
		for v := range sub.expr.Coeffs {
			if _, have := assign[v]; !have {
				assign[v] = s.hint[v]
			}
		}
		assign[sub.v] = sub.expr.Eval(assign)
	}
	return assign, true
}

// varBounds is a variable's current integer interval.
type varBounds struct{ lo, hi int64 }

type fmStage struct {
	v    symbolic.Var
	rows []*symbolic.Lin // multi-var constraints mentioning v at elimination time
	// bnd is v's interval (domain + single-var rows) at elimination time.
	bnd varBounds
}

// fourierMotzkin decides a conjunction of ≤-rows over bounded integers.
//
// Single-variable rows are folded into per-variable intervals instead of
// participating in elimination — in DART path constraints the vast
// majority of predicates compare one input against constants, so this
// keeps the genuinely multi-variable system tiny.  Variables are then
// eliminated one at a time; each elimination pairs the variable's upper
// rows (plus its interval's upper bound) with its lower rows (plus the
// interval's lower bound), emits the gcd-normalized real-shadow
// combinations, and records the stage for back-substitution.
func (s *intSolver) fourierMotzkin(ineqs []*symbolic.Lin) (map[symbolic.Var]int64, bool) {
	bnd := map[symbolic.Var]varBounds{}
	getBnd := func(v symbolic.Var) varBounds {
		b, ok := bnd[v]
		if !ok {
			m := s.meta(v)
			b = varBounds{lo: m.Lo, hi: m.Hi}
			bnd[v] = b
		}
		return b
	}
	// tighten folds the single-var row c·v + k ≤ 0 into v's interval.
	tighten := func(l *symbolic.Lin) bool {
		var v symbolic.Var
		for w := range l.Coeffs {
			v = w
		}
		c := l.Coeff(v)
		b := getBnd(v)
		if c > 0 { // v ≤ ⌊-k/c⌋
			if u := floorDiv(-l.Const, c); u < b.hi {
				b.hi = u
			}
		} else { // v ≥ ⌈-k/c⌉
			if lo := ceilDiv(-l.Const, c); lo > b.lo {
				b.lo = lo
			}
		}
		bnd[v] = b
		return b.lo <= b.hi
	}

	var sys []*symbolic.Lin
	for _, l := range ineqs {
		switch len(l.Coeffs) {
		case 0:
			if l.Const > 0 {
				return nil, false
			}
		case 1:
			if !tighten(l) {
				return nil, false
			}
		default:
			sys = append(sys, l)
		}
	}
	sys = dedupe(sys)

	var stages []fmStage
	for {
		// Pick the variable occurring in the fewest rows (cheapest FM
		// step); ties break on the smaller id for determinism.
		occ := map[symbolic.Var]int{}
		for _, l := range sys {
			for v := range l.Coeffs {
				occ[v]++
			}
		}
		if len(occ) == 0 {
			break
		}
		var pick symbolic.Var
		best := int(^uint(0) >> 1)
		for v, n := range occ {
			if n < best || (n == best && v < pick) {
				best, pick = n, v
			}
		}

		var uppers, lowers, rest, mine []*symbolic.Lin
		for _, l := range sys {
			c := l.Coeff(pick)
			switch {
			case c > 0:
				uppers = append(uppers, l)
				mine = append(mine, l)
			case c < 0:
				lowers = append(lowers, l)
				mine = append(mine, l)
			default:
				rest = append(rest, l)
			}
		}
		pb := getBnd(pick)
		// The interval contributes one upper and one lower row.
		upBnd := symbolic.NewVar(pick)
		upBnd.Const = -pb.hi
		loBnd := symbolic.Scale(symbolic.NewVar(pick), -1)
		loBnd.Const = pb.lo
		uppers = append(uppers, upBnd)
		lowers = append(lowers, loBnd)
		stages = append(stages, fmStage{v: pick, rows: mine, bnd: pb})

		if len(uppers)*len(lowers) > maxCombos {
			return nil, false
		}
		// Each elimination step emits |uppers|·|lowers| row products; this
		// is the solver's super-linear core, so it is the main charge.
		if !s.work.spend(int64(len(uppers)) * int64(len(lowers))) {
			return nil, false
		}
		for _, u := range uppers {
			for _, lo := range lowers {
				a := u.Coeff(pick)   // a > 0
				b := -lo.Coeff(pick) // b > 0
				// b·u + a·lo ≤ 0 eliminates pick (real shadow).
				su := symbolic.Scale(u, b)
				sl := symbolic.Scale(lo, a)
				if su == nil || sl == nil {
					return nil, false
				}
				comb := symbolic.Add(su, sl)
				if comb == nil {
					return nil, false
				}
				delete(comb.Coeffs, pick)
				comb = normalizeRow(comb)
				switch len(comb.Coeffs) {
				case 0:
					if comb.Const > 0 {
						return nil, false
					}
				case 1:
					if !tighten(comb) {
						return nil, false
					}
				default:
					rest = append(rest, comb)
					if len(rest) > maxConstraints {
						return nil, false
					}
				}
			}
		}
		sys = dedupe(rest)
	}

	// Variables that were never eliminated — they appear in staged rows
	// or carry tightened intervals but dropped out of the multi-var
	// system — still need values, and those values interact with the
	// staged variables' intervals (the Diophantine alignment), so they
	// become rowless stages searched *before* the eliminated variables.
	staged := map[symbolic.Var]bool{}
	for _, st := range stages {
		staged[st.v] = true
	}
	var free []symbolic.Var
	for _, st := range stages {
		for _, row := range st.rows {
			for v := range row.Coeffs {
				if !staged[v] {
					staged[v] = true
					free = append(free, v)
				}
			}
		}
	}
	for v := range bnd {
		if !staged[v] {
			staged[v] = true
			free = append(free, v)
		}
	}
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	for _, v := range free {
		stages = append(stages, fmStage{v: v, bnd: getBnd(v)})
	}

	// Back-substitution, last-eliminated first.  Fourier–Motzkin's real
	// shadow is necessary but not sufficient over the integers (e.g.
	// 3a - 2b = 17 constrains a's interval to a single rational that may
	// not be integral for the chosen b), so the assignment is searched
	// with bounded backtracking: each variable tries several candidate
	// values inside its interval before the previous choice is revised.
	assign := map[symbolic.Var]int64{}
	if !s.backSubst(stages, len(stages)-1, assign) {
		return nil, false
	}
	return assign, true
}

// backSubst assigns stages[i], stages[i-1], ..., stages[0] (reverse
// elimination order), backtracking over candidate values when a later
// interval turns out integer-empty.  The node budget is shared across
// the whole Solve call.
func (s *intSolver) backSubst(stages []fmStage, i int, assign map[symbolic.Var]int64) bool {
	if i < 0 {
		return true
	}
	st := stages[i]
	lo, hi, ok := interval(st.v, st.bnd, st.rows, assign, s.hint)
	if !ok || lo > hi {
		return false
	}
	for _, cand := range candidates(lo, hi, s.hint, st.v) {
		s.nodes++
		if s.nodes > maxNodes || !s.work.spend(int64(len(st.rows))+1) {
			return false
		}
		assign[st.v] = cand
		if s.backSubst(stages, i-1, assign) {
			return true
		}
	}
	delete(assign, st.v)
	return false
}

// backtracking budget for integer repair during back-substitution.
const (
	maxCandidates = 12
	maxNodes      = 20000
)

// candidates enumerates up to maxCandidates values in [lo, hi], starting
// from the hint and zero, then scanning adjacent values so that
// divisibility constraints with small moduli are always repaired.
func candidates(lo, hi int64, hint map[symbolic.Var]int64, v symbolic.Var) []int64 {
	var out []int64
	seen := map[int64]bool{}
	add := func(x int64) {
		if x >= lo && x <= hi && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	if h, ok := hint[v]; ok {
		add(h)
	}
	add(0)
	// Scan outward from a base point inside the interval.
	base := lo
	if lo <= 0 && hi >= 0 {
		base = 0
	} else if hi < 0 {
		base = hi
	}
	for d := int64(0); len(out) < maxCandidates && d <= hi-lo; d++ {
		add(base + d)
		add(base - d)
	}
	return out
}

// interval computes the integer interval for v implied by its domain
// interval and rows, with all other variables read from assign (or hint
// for don't-cares).
func interval(v symbolic.Var, b varBounds, rows []*symbolic.Lin, assign, hint map[symbolic.Var]int64) (int64, int64, bool) {
	lo, hi := b.lo, b.hi
	for _, l := range rows {
		c := l.Coeff(v)
		restVal := l.Const
		for w, cw := range l.Coeffs {
			if w == v {
				continue
			}
			val, have := assign[w]
			if !have {
				val = hint[w]
				assign[w] = val
			}
			restVal += cw * val
		}
		// c·v + restVal ≤ 0.
		switch {
		case c > 0: // v ≤ floor(-restVal / c)
			if u := floorDiv(-restVal, c); u < hi {
				hi = u
			}
		case c < 0: // v ≥ ceil(-restVal / c)
			if l := ceilDiv(-restVal, c); l > lo {
				lo = l
			}
		default:
			if restVal > 0 {
				return 0, 0, false
			}
		}
	}
	return lo, hi, true
}

// normalizeRow divides a row Σc·x + k ≤ 0 by the gcd g of its
// coefficients, tightening the constant to the integer bound:
// Σ(c/g)·x ≤ ⌊-k/g⌋.  This is the classic integer strengthening that
// keeps Fourier–Motzkin coefficients small.
func normalizeRow(l *symbolic.Lin) *symbolic.Lin {
	g := int64(0)
	for _, c := range l.Coeffs {
		g = gcd(g, abs64(c))
	}
	if g <= 1 {
		return l
	}
	out := &symbolic.Lin{Coeffs: make(map[symbolic.Var]int64, len(l.Coeffs))}
	for v, c := range l.Coeffs {
		out.Coeffs[v] = c / g
	}
	out.Const = -floorDiv(-l.Const, g)
	return out
}

// dedupe collapses rows with identical coefficient vectors, keeping the
// tightest (largest) constant, via a hash key.
func dedupe(rows []*symbolic.Lin) []*symbolic.Lin {
	byKey := make(map[string]int, len(rows))
	out := rows[:0]
	var key strings.Builder
	for _, l := range rows {
		key.Reset()
		for _, v := range l.Vars() {
			fmt.Fprintf(&key, "%d:%d;", v, l.Coeffs[v])
		}
		k := key.String()
		if idx, ok := byKey[k]; ok {
			if l.Const > out[idx].Const {
				out[idx] = l
			}
			continue
		}
		byKey[k] = len(out)
		out = append(out, l)
	}
	return out
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
