package solver

import (
	"testing"

	"dart/internal/symbolic"
)

// portableEnv is a tiny variable universe for key tests: names and
// domains indexed by Var.
type portableEnv struct {
	names []string
	metas []VarMeta
}

func (e portableEnv) name(v symbolic.Var) string { return e.names[v] }
func (e portableEnv) meta(v symbolic.Var) VarMeta {
	return e.metas[v]
}

func intMetaFor(lo, hi int64) VarMeta {
	return VarMeta{Kind: symbolic.ScalarVar, Lo: lo, Hi: hi}
}

// pred builds c + sum(coeff*var) rel 0.
func portablePred(rel symbolic.Rel, c int64, terms map[symbolic.Var]int64) symbolic.Pred {
	l := &symbolic.Lin{Coeffs: terms, Const: c}
	return symbolic.Pred{L: l, Rel: rel}
}

// TestPortableKeyNumberingIndependent is the soundness property the
// persistent cache rests on: two searches that registered the same
// inputs in different first-use orders (different Var numbers, same
// names and domains) render the same solve to the same key.
func TestPortableKeyNumberingIndependent(t *testing.T) {
	// Search A: x = var 0, y = var 1.
	a := portableEnv{
		names: []string{"d0.x", "d0.y"},
		metas: []VarMeta{intMetaFor(-100, 100), intMetaFor(-100, 100)},
	}
	// Search B: y = var 0, x = var 1.
	b := portableEnv{
		names: []string{"d0.y", "d0.x"},
		metas: []VarMeta{intMetaFor(-100, 100), intMetaFor(-100, 100)},
	}
	// x + 2y - 7 == 0 in both numberings, with hint x=3, y=2.
	pcA := []symbolic.Pred{portablePred(symbolic.EQ, -7, map[symbolic.Var]int64{0: 1, 1: 2})}
	pcB := []symbolic.Pred{portablePred(symbolic.EQ, -7, map[symbolic.Var]int64{1: 1, 0: 2})}
	hintA := map[symbolic.Var]int64{0: 3, 1: 2}
	hintB := map[symbolic.Var]int64{1: 3, 0: 2}

	ka := PortableKey(pcA, hintA, DefaultWork, a.name, a.meta)
	kb := PortableKey(pcB, hintB, DefaultWork, b.name, b.meta)
	if ka != kb {
		t.Errorf("same semantic solve rendered to different portable keys:\n  %s\n  %s", ka, kb)
	}
}

func TestPortableKeyDiscriminates(t *testing.T) {
	env := portableEnv{
		names: []string{"d0.x"},
		metas: []VarMeta{intMetaFor(-100, 100)},
	}
	pc := []symbolic.Pred{portablePred(symbolic.EQ, -7, map[symbolic.Var]int64{0: 1})}
	hint := map[symbolic.Var]int64{0: 3}
	base := PortableKey(pc, hint, DefaultWork, env.name, env.meta)

	// A different domain for the same name must change the key: the
	// solver's answer depends on it.
	narrow := portableEnv{
		names: []string{"d0.x"},
		metas: []VarMeta{intMetaFor(0, 5)},
	}
	if k := PortableKey(pc, hint, DefaultWork, narrow.name, narrow.meta); k == base {
		t.Error("portable key ignored the variable domain")
	}
	// A different budget must change the key: BudgetExhausted verdicts
	// are budget-relative.
	if k := PortableKey(pc, hint, DefaultWork/2, env.name, env.meta); k == base {
		t.Error("portable key ignored the work budget")
	}
	// A different hint must change the key, like CacheKey.
	if k := PortableKey(pc, map[symbolic.Var]int64{0: 4}, DefaultWork, env.name, env.meta); k == base {
		t.Error("portable key ignored the hint")
	}
	// A different predicate must change the key.
	pc2 := []symbolic.Pred{portablePred(symbolic.EQ, -8, map[symbolic.Var]int64{0: 1})}
	if k := PortableKey(pc2, hint, DefaultWork, env.name, env.meta); k == base {
		t.Error("portable key ignored the predicate")
	}
}
