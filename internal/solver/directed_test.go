package solver

import (
	"math"
	"testing"

	"dart/internal/symbolic"
)

// clusterPC is a conjunction with two independent components — {v0} and
// {v2, v3} — plus a v1 predicate, targeting a second v0 predicate.
func clusterPC() []symbolic.Pred {
	return []symbolic.Pred{
		pred(symbolic.GT, 0, 0, 1),         // v0 > 0
		pred(symbolic.GT, 0, 1, 1),         // v1 > 0
		pred(symbolic.GT, -10, 2, 1, 3, 1), // v2 + v3 > 10
		pred(symbolic.LT, -5, 0, 1),        // v0 < 5  (the negated branch)
	}
}

func TestCanonicalSliceIndependentClusters(t *testing.T) {
	slice, pruned := CanonicalSlice(clusterPC())
	if pruned != 2 {
		t.Fatalf("pruned = %d, want 2 (the v1 and v2+v3 predicates)", pruned)
	}
	if len(slice) != 2 {
		t.Fatalf("slice length = %d, want 2", len(slice))
	}
	for _, p := range slice {
		if len(p.L.Coeffs) != 1 || p.L.Coeffs[0] == 0 {
			t.Errorf("slice predicate %v mentions variables outside the v0 component", p)
		}
	}
}

func TestCanonicalSlicePreservesOrder(t *testing.T) {
	// The slice must keep pc's own predicate order: the solver's
	// substitution and elimination order follows predicate order, so
	// reordering would change (and in practice slow) the solve.
	pc := clusterPC()
	slice, _ := CanonicalSlice(pc)
	want := []symbolic.Pred{pc[0], pc[3]} // the v0 component, in pc order
	if len(slice) != len(want) || predKey(slice[0]) != predKey(want[0]) || predKey(slice[1]) != predKey(want[1]) {
		t.Errorf("slice = %v, want the v0 predicates in pc order %v", slice, want)
	}
	// And the identical pc must slice to the identical key — the solves
	// the directed loop actually repeats.
	again, _ := CanonicalSlice(clusterPC())
	if CacheKey(slice, nil) != CacheKey(again, nil) {
		t.Error("identical conjunctions produced different cache keys")
	}
}

func TestCacheKeyOrderSensitive(t *testing.T) {
	// The key encodes the predicate *sequence*, not the set: key equality
	// must imply the solver sees the byte-identical input, which is what
	// makes a cache hit provably identical to a fresh solve.
	a := []symbolic.Pred{pred(symbolic.GT, 0, 0, 1), pred(symbolic.LT, -5, 0, 1)}
	b := []symbolic.Pred{a[1], a[0]}
	if CacheKey(a, nil) == CacheKey(b, nil) {
		t.Error("reordered slices must not share a cache key")
	}
}

func TestCanonicalSliceConstantTarget(t *testing.T) {
	pc := []symbolic.Pred{
		pred(symbolic.GT, 0, 0, 1),
		pred(symbolic.GE, -4), // constant: -4 >= 0, variable-free
	}
	slice, pruned := CanonicalSlice(pc)
	if pruned != 1 || len(slice) != 1 || len(slice[0].L.Coeffs) != 0 {
		t.Errorf("constant target: slice %v pruned %d, want just the constant", slice, pruned)
	}
}

func TestCanonicalSliceFallbackKeepsAll(t *testing.T) {
	// An out-of-theory predicate (nil form) disables slicing: the solver
	// must see the full conjunction and report the failure itself.
	pc := []symbolic.Pred{
		pred(symbolic.GT, 0, 0, 1),
		{L: nil, Rel: symbolic.EQ},
		pred(symbolic.LT, -5, 1, 1),
	}
	slice, pruned := CanonicalSlice(pc)
	if pruned != 0 || len(slice) != len(pc) {
		t.Errorf("fallback pred: slice %v pruned %d, want full conjunction", slice, pruned)
	}
}

func TestCacheKeyIncludesHintOfSliceVars(t *testing.T) {
	slice, _ := CanonicalSlice(clusterPC())
	k1 := CacheKey(slice, map[symbolic.Var]int64{0: 1})
	k2 := CacheKey(slice, map[symbolic.Var]int64{0: 2})
	if k1 == k2 {
		t.Error("different hints for a slice variable must produce different keys")
	}
	// Hints for variables outside the slice are irrelevant to the solve
	// and must not fragment the key space.
	k3 := CacheKey(slice, map[symbolic.Var]int64{0: 1, 2: 99, 3: -7})
	if k1 != k3 {
		t.Error("hints of non-slice variables must not change the key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("k1", Sat, map[symbolic.Var]int64{0: 1})
	if c.Put("k2", Unsat, nil) {
		t.Error("filling to capacity must not evict")
	}
	c.Get("k1") // k2 becomes least recently used
	if !c.Put("k3", Sat, nil) {
		t.Error("inserting past capacity must evict")
	}
	if _, ok := c.Get("k2"); ok {
		t.Error("the LRU entry (k2) should have been evicted")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently used k1 must survive")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Errorf("len=%d evictions=%d, want 2/1", c.Len(), c.Evictions())
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(1)
	c.Put("k", Sat, map[symbolic.Var]int64{0: 1})
	if c.Put("k", Unsat, nil) {
		t.Error("re-memoizing an existing key must not evict")
	}
	got, ok := c.Get("k")
	if !ok || got.Verdict != Unsat {
		t.Errorf("updated entry = %+v, want Unsat", got)
	}
}

func TestCacheModelIsCopied(t *testing.T) {
	c := NewCache(4)
	model := map[symbolic.Var]int64{0: 10}
	c.Put("k", Sat, model)
	model[0] = 99 // caller mutates after store
	got, _ := c.Get("k")
	if got.Model[0] != 10 {
		t.Error("stored model aliased the caller's map")
	}
	got.Model[0] = 55 // consumer mutates the returned copy
	again, _ := c.Get("k")
	if again.Model[0] != 10 {
		t.Error("returned model aliased the cached map")
	}
}

func TestVerifyAssignmentFullConjunction(t *testing.T) {
	pc := clusterPC()
	sol := map[symbolic.Var]int64{0: 3}
	hint := map[symbolic.Var]int64{1: 5, 2: 20, 3: 0}
	if !VerifyAssignment(pc, intMeta, sol, hint) {
		t.Error("a satisfying slice solution completed by a satisfying hint must verify")
	}
	// A pruned-component violation must fail verification even though the
	// solved slice is satisfied.
	bad := map[symbolic.Var]int64{1: -5, 2: 20, 3: 0}
	if VerifyAssignment(pc, intMeta, sol, bad) {
		t.Error("a violated pruned predicate must fail full-conjunction verification")
	}
}

func TestVerifyAssignmentRejectsOverflow(t *testing.T) {
	// 2*v0 > 0 under v0 = MaxInt64 wraps to -2: a wrapping evaluation
	// would accept the candidate, the checked one must reject it.
	pc := []symbolic.Pred{pred(symbolic.GT, 0, 0, 2)}
	if VerifyAssignment(pc, intMeta, map[symbolic.Var]int64{0: math.MaxInt64}, nil) {
		t.Error("overflowing multiplication accepted")
	}
	// -1 * MinInt64 is the one product the quotient check misses.
	pc = []symbolic.Pred{pred(symbolic.GT, 0, 0, -1)}
	if VerifyAssignment(pc, intMeta, map[symbolic.Var]int64{0: math.MinInt64}, nil) {
		t.Error("-1 * MinInt64 accepted")
	}
	// Sanity: the same shapes without overflow verify.
	pc = []symbolic.Pred{pred(symbolic.GT, 0, 0, 2)}
	if !VerifyAssignment(pc, intMeta, map[symbolic.Var]int64{0: 5}, nil) {
		t.Error("in-range candidate rejected")
	}
}

func TestSlicedSolveVerifiesAgainstFullPC(t *testing.T) {
	// End to end across the fast-path pieces: solve only the slice, then
	// check the full conjunction with the parent run's hint.
	pc := clusterPC()
	hint := map[symbolic.Var]int64{0: 7, 1: 5, 2: 20, 3: 0} // parent run: v0 >= 5 branch not yet flipped
	slice, _ := CanonicalSlice(pc)
	sol, verdict, _ := SolveWorkStats(slice, intMeta, hint, 0)
	if verdict != Sat {
		t.Fatalf("slice verdict = %v, want sat", verdict)
	}
	if !VerifyAssignment(pc, intMeta, sol, hint) {
		t.Errorf("sliced solution %v (hint %v) fails the full conjunction", sol, hint)
	}
}
