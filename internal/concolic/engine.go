package concolic

import (
	"fmt"
	"math"
	"strings"

	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/solver"
	"dart/internal/symbolic"
	"dart/internal/types"
)

// oneRun executes the generated test driver once: extern globals are
// initialized as inputs, then the toplevel function is called Depth times
// with fresh inputs per call (Fig. 7).  The returned machine carries the
// branch records and completeness flags of the run.  A non-nil error is
// an engine-internal failure (the machine could not even be built), not
// a program error; runIsolated converts it into an InternalError
// diagnostic.
func (e *engine) oneRun() (*machine.Machine, *machine.RunError, error) {
	e.k = 0
	e.mispredict = false
	e.forcingOK = true

	// The machine is pooled: built once per engine, Reset between runs
	// so the search's N runs reuse one allocation footprint (memory
	// arrays, branch records, scratch stacks).
	var m *machine.Machine
	if e.mach == nil {
		var err error
		m, err = machine.New(machine.Config{
			Prog:        e.prog,
			Inputs:      e,
			OnBranch:    e.onBranch,
			LibImpls:    e.opts.LibImpls,
			MaxSteps:    e.opts.MaxSteps,
			ShapeSearch: !e.opts.DisableShapeSearch,
			Deadline:    e.deadline,
			Cancel:      e.opts.Cancel,
			Observer:    e.machineSink(),
			Code:        e.code,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("machine construction: %w", err)
		}
		e.mach = m
	} else {
		m = e.mach
		if err := m.Reset(e); err != nil {
			return nil, nil, fmt.Errorf("machine reset: %w", err)
		}
	}

	fn, _ := e.prog.Lookup(e.opts.Toplevel)
	if e.argKeys == nil {
		// Input keys are a pure function of (depth, param): render them
		// once per engine instead of once per run.
		e.argKeys = make([][]string, e.opts.Depth)
		for d := range e.argKeys {
			e.argKeys[d] = make([]string, len(fn.Params))
			for i, p := range fn.Params {
				name := p.Name
				if name == "" {
					name = fmt.Sprintf("arg%d", i)
				}
				e.argKeys[d][i] = fmt.Sprintf("d%d.%s", d, name)
			}
		}
		e.argbuf = make([]machine.Value, len(fn.Params))
	}
	for d := 0; d < e.opts.Depth; d++ {
		args := e.argbuf
		for i, p := range fn.Params {
			key := e.argKeys[d][i]
			cell, aerr := m.Mem().Alloc(1)
			if aerr != nil {
				return m, &machine.RunError{Outcome: machine.Crashed, Msg: aerr.Error()}, nil
			}
			if ierr := m.RandomInit(cell, p.Type, key); ierr != nil {
				return m, &machine.RunError{Outcome: machine.Crashed, Msg: ierr.Error()}, nil
			}
			v, verr := m.ArgValue(cell)
			if verr != nil {
				return m, &machine.RunError{Outcome: machine.Crashed, Msg: verr.Error()}, nil
			}
			args[i] = v
		}
		if _, rerr := m.RunCall(e.opts.Toplevel, args); rerr != nil {
			return m, rerr, nil
		}
	}
	return m, nil, nil
}

// onBranch is compare_and_update_stack (Fig. 4).
func (e *engine) onBranch(rec machine.BranchRec) error {
	k := e.k
	e.k++
	if k < len(e.stack) {
		if e.stack[k].branch != rec.Taken {
			// The prediction was not fulfilled: clear forcing_ok and
			// raise, restarting with fresh random inputs.
			e.forcingOK = false
			e.mispredict = true
			return errMispredicted
		}
		if k == len(e.stack)-1 {
			// Both branches of the flipped conditional have now executed
			// with this history.
			e.stack[k].done = true
		}
		return nil
	}
	// New conditional beyond the predicted prefix: append (branch, 0);
	// conditions outside the theory can never be flipped, so their
	// entries are born done.  Decision records that would *grow* a
	// recursive input beyond the shape-depth cap are also born done —
	// the infinite input tree of a recursive type is searched only to
	// bounded depth.
	done := !rec.HasPred
	if rec.Decision && !done && !rec.Taken && e.decisionDepth(rec) >= e.opts.MaxShapeDepth {
		done = true
	}
	e.stack = append(e.stack, stackEntry{branch: rec.Taken, done: done})
	return nil
}

// decisionDepth counts the pointer indirections of the input behind a
// Decision record.
func (e *engine) decisionDepth(rec machine.BranchRec) int {
	vs := rec.Pred.L.Vars()
	if len(vs) != 1 {
		return 0
	}
	return strings.Count(e.regs.keyOf(vs[0]), ".*")
}

// solveNext is solve_path_constraint (Fig. 5): choose an unexplored
// branch, negate its predicate, and solve the path-constraint prefix.
// It returns false when the directed search is over.
func (e *engine) solveNext(branches []machine.BranchRec) bool {
	ktry := e.k
	if ktry > len(e.stack) {
		ktry = len(e.stack)
	}
	if ktry > len(branches) {
		ktry = len(branches)
	}

	for {
		j := e.pickBranch(branches, ktry)
		if j < 0 {
			return false
		}
		// Path constraint prefix: predicates of conditionals before j,
		// plus the negation of j's predicate.  Built in the engine's
		// scratch buffer — the solver does not retain the slice.
		pc := e.pcbuf[:0]
		for i := 0; i < j; i++ {
			if branches[i].HasPred {
				pc = append(pc, branches[i].Pred)
			}
		}
		pc = append(pc, branches[j].Pred.Negate())
		e.pcbuf = pc[:0]

		e.report.SolverCalls++
		e.metrics.Observe(obs.HPCLen, int64(len(pc)))
		e.metrics.Observe(obs.HFrontierDepth, int64(j))
		// Site/pos attribution for the profiler, the explainer, and the
		// event stream: events carry the 1-based site index
		// (deterministic), while the source position string is computed
		// only when a collector asks.
		site := branches[j].Site
		var posStr string
		if e.prof != nil || e.exp != nil {
			posStr = branches[j].Pos.String()
		}
		var target string
		if e.obs != nil {
			target = flipPath(branches, j)
			e.emit(obs.Event{Kind: obs.SolverCall, Run: e.report.Runs, Depth: j, PCLen: len(pc), Path: target, Site: site + 1})
		}
		sol, verdict, work := e.solveIsolated(pc, j)
		if e.obs != nil {
			ev := e.verdictEvent(j, verdict, work)
			ev.Site = site + 1
			e.emit(ev)
		}
		e.prof.RecordSolve(site, posStr, verdict.String(), work, e.lastSolve.solveNS, e.lastSolve.cache)
		if site >= 0 {
			// The flip targets the unexecuted direction of branches[j];
			// ledger the attempt (and, on unsat, the infeasibility proof).
			e.exp.RecordSolve(site, posStr, !branches[j].Taken, verdict.String(), e.lastSolve.unsatSlice)
		}
		if verdict != solver.Sat {
			// Infeasible, beyond the solver, or out of budget: this
			// branch cannot be flipped under its fixed prefix; mark it
			// done and keep looking, which is Fig. 5's recursive call
			// with a smaller ktry.  A budget exhaustion additionally
			// clears SolverComplete — the branch may have been feasible,
			// so the search degrades toward random testing instead of
			// grinding on an adversarial constraint system.
			if verdict == solver.BudgetExhausted {
				e.report.SolverComplete = false
			}
			e.report.SolverFailures++
			e.stack[j].done = true
			continue
		}

		// Truncate the stack to [0..j] and predict the flipped branch.
		e.metrics.Add(obs.CBranchFlips, 1)
		e.prof.RecordFlip(site, posStr)
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.BranchFlip, Run: e.report.Runs, Depth: j, Path: target, Site: site + 1})
		}
		e.stack = e.stack[:j+1]
		e.stack[j].branch = !branches[j].Taken
		// Remember the forced target: if the next run diverges from the
		// prediction, the explainer attributes the misprediction here.
		e.lastFlip = flipRef{ok: true, site: site, pos: posStr, taken: !branches[j].Taken}

		// IM + IM': inputs not involved keep their previous values.
		for v, val := range sol {
			e.im[e.regs.keyOf(v)] = val
		}
		return true
	}
}

// pickBranch selects the next not-done branch index below ktry according
// to the strategy.
func (e *engine) pickBranch(branches []machine.BranchRec, ktry int) int {
	candidates := e.candbuf[:0]
	for j := 0; j < ktry; j++ {
		if !e.stack[j].done && branches[j].HasPred {
			candidates = append(candidates, j)
		}
	}
	e.candbuf = candidates[:0]
	if len(candidates) == 0 {
		return -1
	}
	switch e.opts.Strategy {
	case BFS:
		return candidates[0]
	case RandomBranch:
		return candidates[e.rand.Intn(int64(len(candidates)))]
	default: // DFS: deepest first, the paper's exposition order
		return candidates[len(candidates)-1]
	}
}

// hint exposes the current input vector as a variable assignment, used to
// preserve don't-care inputs and to bias disequality splits.
func (e *engine) hint() map[symbolic.Var]int64 {
	vars := e.regs.snapshot()
	if e.hintbuf == nil {
		e.hintbuf = make(map[symbolic.Var]int64, len(vars))
	} else {
		clear(e.hintbuf)
	}
	h := e.hintbuf
	for i := range vars {
		if v, ok := e.im[vars[i].key]; ok {
			h[symbolic.Var(i)] = v
		}
	}
	return h
}

// meta returns the solver domain of a variable.
func (e *engine) meta(v symbolic.Var) solver.VarMeta {
	return e.regs.metaOf(v)
}

// varName names a variable by its stable input key for the explainer's
// unsat-slice renderings (Var numbering is first-use order and differs
// across worker counts; input keys do not).
func (e *engine) varName(v symbolic.Var) string {
	return e.regs.keyOf(v)
}

// ---------------------------------------------------------------- inputs
// engine implements machine.InputSource: the generated test driver's
// random initialization, overridden by the solved input vector IM.

// ScalarInput returns IM[key], drawing (and recording) random bits on
// first use, per Fig. 8's random_bits(sizeof(type)).
func (e *engine) ScalarInput(key string, b *types.Basic) int64 {
	if v, ok := e.im[key]; ok {
		return v
	}
	v := types.Truncate(b, e.rand.Bits(b.Bits()))
	e.im[key] = v
	return v
}

// PointerInput returns the NULL-vs-allocate decision for a pointer input,
// tossing (and recording) a fair coin on first use.
func (e *engine) PointerInput(key string) bool {
	if v, ok := e.im[key]; ok {
		return v != 0
	}
	var d int64
	if e.rand.Coin() {
		d = 1
	}
	e.im[key] = d
	return d != 0
}

// IsPointerVar reports whether v identifies a pointer input.
func (e *engine) IsPointerVar(v symbolic.Var) bool {
	return e.regs.isPointer(v)
}

// VarOf registers (or recalls) the symbolic variable for input key.
// Registration goes through the search-global registry, so under the
// parallel engine the same key maps to the same variable in every
// worker (the property that keeps shared solve-cache keys sound).
func (e *engine) VarOf(key string, kind symbolic.VarKind, b *types.Basic) (symbolic.Var, bool) {
	return e.regs.varOf(key, kind, b), true
}

// domainOf maps a C type to the solver's variable domain.  Long inputs
// are restricted to ±2^40 so Fourier–Motzkin coefficient products stay
// within int64; the restriction is only visible as solver incompleteness
// on constraints needing >2^40 magnitudes.
func domainOf(kind symbolic.VarKind, b *types.Basic) solver.VarMeta {
	m := solver.VarMeta{Kind: kind}
	if kind == symbolic.PointerVar {
		return m
	}
	switch {
	case b == nil:
		m.Lo, m.Hi = math.MinInt32, math.MaxInt32
	case b.Kind == types.Char:
		m.Lo, m.Hi = math.MinInt8, math.MaxInt8
	case b.Kind == types.UInt:
		m.Lo, m.Hi = 0, math.MaxUint32
	case b.Kind == types.Long:
		m.Lo, m.Hi = -(1 << 40), 1<<40
	default:
		m.Lo, m.Hi = math.MinInt32, math.MaxInt32
	}
	return m
}
