// Run recording for suite distillation: the (inputs → branch set)
// pairs a completed search leaves behind so internal/distill can
// set-cover them into a minimized replayable suite.
//
// Recording is an online filter, not a transcript: a run is kept only
// when it covers at least one branch direction no previously kept run
// covered, so the log is bounded by the program's direction count
// (every kept run adds ≥ 1 of ≤ 2·NumSites directions) no matter how
// many executions the search performs.  The kept union equals the
// search's final coverage exactly — runs are observed at the same
// points coverage is recorded — so greedy set-cover over the log can
// always reconstruct full coverage.  Under the parallel engine all
// workers share one locked recorder; which runs are kept then depends
// on schedule, but the union invariant (and with it the distilled
// suite's coverage) does not.
package concolic

import (
	"sync"

	"dart/internal/coverage"
	"dart/internal/machine"
)

// CovDir is one branch direction: a conditional site and the outcome
// that executed.
type CovDir struct {
	Site  int
	Taken bool
}

// RunRecord is one kept run: the complete input vector that drove it
// and every branch direction it covered (deduped, in first-execution
// order).
type RunRecord struct {
	Inputs map[string]int64
	Cover  []CovDir
}

// runRecorder is the engines' shared run log.  Sequential searches own
// one; the workers of a parallel search share one (the mutex is
// uncontended against whole program executions).
type runRecorder struct {
	mu      sync.Mutex
	union   *coverage.Set
	records []RunRecord
	// dirbuf dedups one run's directions; cleared per observe call.
	dirbuf map[CovDir]bool
}

func newRunRecorder(sites int) *runRecorder {
	return &runRecorder{union: coverage.New(sites), dirbuf: map[CovDir]bool{}}
}

// observe offers one completed run to the log.  im is the vector that
// drove the run (copied if kept); branches its branch records.
func (r *runRecorder) observe(im map[string]int64, branches []machine.BranchRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.dirbuf)
	var dirs []CovDir
	fresh := false
	for _, rec := range branches {
		if rec.Site < 0 {
			continue
		}
		d := CovDir{Site: rec.Site, Taken: rec.Taken}
		if r.dirbuf[d] {
			continue
		}
		r.dirbuf[d] = true
		dirs = append(dirs, d)
		if r.union.Record(d.Site, d.Taken) {
			fresh = true
		}
	}
	if !fresh {
		return
	}
	r.records = append(r.records, RunRecord{Inputs: copyIM(im), Cover: dirs})
}

// log returns the kept runs in keep order.
func (r *runRecorder) log() []RunRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}
