package concolic

import (
	"testing"
	"time"

	"dart/internal/machine"
)

// diverging loops forever once the guard is satisfied; with an
// effectively unbounded step budget, only the wall-clock supervision can
// stop a run that entered the loop.
const diverging = `
int spin(int x) {
    if (x < 0) return -1;
    while (1) { }
    return 0;
}
`

// hugeSteps disables the step watchdog so the deadline is the only
// budget that can trip.
const hugeSteps = int64(1) << 62

func TestTimeoutStopsDivergingSearch(t *testing.T) {
	prog := compile(t, diverging)
	start := time.Now()
	rep, err := Run(prog, Options{
		Toplevel: "spin",
		MaxRuns:  1000,
		MaxSteps: hugeSteps,
		Seed:     1,
		Timeout:  200 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline must yield a partial report, not an error: %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("search took %v, want well under 1s for a 200ms deadline", elapsed)
	}
	if rep.Stopped != StopDeadline {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopDeadline)
	}
	if rep.Complete {
		t.Error("a deadline-stopped search must not claim completeness")
	}
}

func TestTimeoutStopsDivergingRandomTest(t *testing.T) {
	prog := compile(t, diverging)
	start := time.Now()
	rep, err := RandomTest(prog, Options{
		Toplevel: "spin",
		MaxRuns:  1000,
		MaxSteps: hugeSteps,
		Seed:     1,
		Timeout:  200 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline must yield a partial report, not an error: %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("random testing took %v, want well under 1s for a 200ms deadline", elapsed)
	}
	if rep.Stopped != StopDeadline {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopDeadline)
	}
}

func TestCancelStopsSearch(t *testing.T) {
	prog := compile(t, diverging)
	cancel := make(chan struct{})
	close(cancel)
	rep, err := Run(prog, Options{
		Toplevel: "spin",
		MaxRuns:  1000,
		MaxSteps: hugeSteps,
		Seed:     1,
		Cancel:   cancel,
	})
	if err != nil {
		t.Fatalf("cancellation must yield a partial report, not an error: %v", err)
	}
	if rep.Stopped != StopCancelled {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopCancelled)
	}
	if rep.Complete {
		t.Error("a cancelled search must not claim completeness")
	}
}

// panicImpls is the standard library with abs replaced by a fault,
// simulating an engine bug that only a steered input reaches.
func panicImpls() map[string]machine.LibImpl {
	impls := machine.StdLibImpls()
	impls["abs"] = func(_ *machine.Machine, _ []int64) (int64, error) {
		panic("injected library fault")
	}
	return impls
}

func TestRunPanicIsolated(t *testing.T) {
	// Random inputs almost never hit x == 7; the directed search must
	// solve its way into the panic, record it, and keep going.
	prog := compile(t, `
int g(int x) {
    if (x == 7) { return abs(x); }
    return 0;
}
`)
	rep, err := Run(prog, Options{
		Toplevel: "g",
		MaxRuns:  100,
		Seed:     1,
		LibImpls: panicImpls(),
	})
	if err != nil {
		t.Fatalf("an isolated panic must not surface as an error: %v", err)
	}
	if len(rep.InternalErrors) == 0 {
		t.Fatal("expected at least one InternalError from the injected panic")
	}
	ie := rep.InternalErrors[0]
	if ie.Phase != "run" {
		t.Errorf("Phase = %q, want %q", ie.Phase, "run")
	}
	if ie.Inputs["d0.x"] != 7 {
		t.Errorf("fault inputs = %v, want the offending vector with d0.x=7", ie.Inputs)
	}
	if rep.Complete {
		t.Error("a search with internal faults must not claim completeness")
	}
	if rep.Runs < 2 {
		t.Errorf("Runs = %d: the search should have continued past the fault", rep.Runs)
	}
}

func TestPanicIsolationKeepsFindingBugs(t *testing.T) {
	// The panic is on one branch; a genuine abort is on a sibling.  The
	// search must survive the former and still report the latter.
	prog := compile(t, `
int g(int x) {
    if (x == 7) { return abs(x); }
    if (x == 9) { abort(); }
    return 0;
}
`)
	rep, err := Run(prog, Options{
		Toplevel: "g",
		MaxRuns:  100,
		Seed:     1,
		LibImpls: panicImpls(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.InternalErrors) == 0 {
		t.Error("expected the injected panic to be recorded")
	}
	if rep.FirstBug() == nil {
		t.Fatal("search died with the panic instead of finding the abort")
	}
	if got := rep.FirstBug().Inputs["d0.x"]; got != 9 {
		t.Errorf("bug inputs d0.x = %d, want 9", got)
	}
}

func TestStopReasonExhausted(t *testing.T) {
	prog := compile(t, `
int f(int x) {
    if (x == 5) { return 1; }
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("two-path program should be exhausted")
	}
	if rep.Stopped != StopExhausted {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopExhausted)
	}
	if !rep.SolverComplete {
		t.Error("no solver budget tripped; SolverComplete must hold")
	}
}

func TestStopReasonMaxRuns(t *testing.T) {
	prog := compile(t, maze)
	rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopMaxRuns {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopMaxRuns)
	}
}

func TestStopReasonFirstBug(t *testing.T) {
	prog := compile(t, maze)
	rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 20, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstBug() == nil {
		t.Fatal("maze bug not found")
	}
	if rep.Stopped != StopFirstBug {
		t.Errorf("Stopped = %q, want %q", rep.Stopped, StopFirstBug)
	}
}

func TestSolverBudgetDegradesGracefully(t *testing.T) {
	// A budget too small for any solve: every branch flip is abandoned,
	// SolverComplete is cleared, and the search still terminates with a
	// report instead of an error.
	prog := compile(t, maze)
	rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 20, Seed: 1, SolverBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolverComplete {
		t.Error("a 1-unit solver budget must exhaust and clear SolverComplete")
	}
	if rep.Complete {
		t.Error("budget-exhausted solves must block the completeness claim")
	}
	if rep.SolverFailures == 0 {
		t.Error("abandoned solves should count as SolverFailures")
	}
}
