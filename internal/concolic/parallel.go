// The parallel frontier engine: Options.Workers > 1 runs the
// generational frontier search of frontier.go on a pool of
// work-stealing workers.
//
// A pending flip is a complete, self-contained program run (recorded
// prefix, negated predicate, parent input vector), so the frontier
// worklist parallelizes without touching the algorithm: N workers pull
// items from per-worker deques, stealing from a sibling's oldest end
// when their own runs dry.  Each worker owns a full engine — its own
// machine constructions, symbolic evaluation, forked RNG stream, and
// report — while sharing exactly three things search-wide: the program
// IR (read-only), the input registry (so symbolic variable numbering,
// and with it predicate rendering and solve-cache keys, means the same
// input in every worker), and one sharded solve cache.
//
// Determinism modulo worker count: the generational rule attempts every
// feasible path exactly once regardless of pop order, so on searches
// that exhaust their execution tree the bug set, branch coverage, and
// completeness flags are identical for every Workers value.  What may
// legitimately differ is scheduling texture — per-worker run indices,
// which worker finds a bug first, cache hit rates, don't-care input
// padding.  The merge below is correspondingly canonical: counters sum,
// completeness flags AND (pessimistic: any worker's fallback clears the
// search's flag), coverage and metrics merge, and bugs sort by source
// position so the merged report is independent of worker finishing
// order.
package concolic

import (
	"sort"
	"sync"
	"time"

	"dart/internal/coverage"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/rng"
	"dart/internal/solver"
)

// sharedSearch coordinates the workers of one parallel search: bug
// dedup, the run budget, the shared fault budget, and the first stop
// reason.  It is the parallel counterpart of the sequential engine's
// private seenBugs map and loop-condition budget checks.
type sharedSearch struct {
	mu       sync.Mutex
	seenBugs map[string]bool
	faults   int
	stopped  StopReason
	runsLeft int64
	// cov is the coverage explainer's search-global coverage view (the
	// per-worker report sets overcount directions another worker covered
	// first); nil unless the explainer is on.
	cov *coverage.Set
}

func newSharedSearch(maxRuns int) *sharedSearch {
	return &sharedSearch{seenBugs: map[string]bool{}, runsLeft: int64(maxRuns)}
}

// claimBug reports whether sig is new search-wide, claiming it.
func (s *sharedSearch) claimBug(sig string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seenBugs[sig] {
		return false
	}
	s.seenBugs[sig] = true
	return true
}

// reserveRun consumes one slot of the shared MaxRuns budget, reporting
// false when the budget is spent.  Reservation happens just before a
// program execution — solver-only work (infeasible flips) consumes no
// budget, matching the sequential engines' accounting.
func (s *sharedSearch) reserveRun() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runsLeft <= 0 {
		return false
	}
	s.runsLeft--
	return true
}

// recordCov folds one run's branch records into the search-global
// coverage view, returning how many directions it newly covered — the
// timeline's dedup across workers.
func (s *sharedSearch) recordCov(branches []machine.BranchRec) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rec := range branches {
		if s.cov.Record(rec.Site, rec.Taken) {
			n++
		}
	}
	return n
}

// addFault counts one isolated internal fault against the search-wide
// budget and returns the new total.
func (s *sharedSearch) addFault() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults++
	return s.faults
}

// noteStop records the first stop reason a worker hit; later reasons
// (other workers winding down after the abort) are dropped.
func (s *sharedSearch) noteStop(r StopReason) {
	if r == "" {
		return
	}
	s.mu.Lock()
	if s.stopped == "" {
		s.stopped = r
	}
	s.mu.Unlock()
}

// stopReason returns the recorded stop reason ("" if none).
func (s *sharedSearch) stopReason() StopReason {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// sched is the work-stealing scheduler: one deque of pending flips per
// worker under a single mutex + condvar.  The coarse lock is deliberate
// — every item handed out is a whole program execution plus a constraint
// solve, so scheduler critical sections are nanoseconds against
// milliseconds of useful work, and one lock keeps the termination
// condition (all deques empty and nothing in flight) exact.
type sched struct {
	mu       sync.Mutex
	cond     *sync.Cond
	deques   [][]frontierItem
	strategy Strategy
	// size is the total queued across deques; max is the global
	// MaxFrontier cap.
	size int
	max  int
	// inflight counts items handed out but not yet finished; the search
	// is over when size == 0 && inflight == 0.
	inflight int
	done     bool
	// aborted distinguishes a stop (worker quit: bug, deadline, budget)
	// from natural exhaustion of the worklist.
	aborted bool
}

func newSched(workers, maxFrontier int, strategy Strategy) *sched {
	s := &sched{
		deques:   make([][]frontierItem, workers),
		strategy: strategy,
		max:      maxFrontier,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// seed scatters the root run's children round-robin across the deques
// so every worker starts with local work; it returns the items dropped
// to the MaxFrontier cap (for the caller to account) and the resulting
// backlog.
func (s *sched) seed(kids []frontierItem) (dropped []frontierItem, qlen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kids, dropped = s.capKids(kids)
	for i, it := range kids {
		w := i % len(s.deques)
		s.deques[w] = append(s.deques[w], it)
	}
	s.size += len(kids)
	return dropped, s.size
}

// capKids truncates kids to the global MaxFrontier cap (deepest pending
// flips dropped first, like the sequential enqueue), returning the kept
// prefix and the dropped tail.  Caller holds mu.
func (s *sched) capKids(kids []frontierItem) (kept, dropped []frontierItem) {
	over := s.size + len(kids) - s.max
	if over <= 0 {
		return kids, nil
	}
	if over >= len(kids) {
		return nil, kids
	}
	return kids[:len(kids)-over], kids[len(kids)-over:]
}

// qlen is the current total backlog across deques.
func (s *sched) qlen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// next hands worker w its next pending flip.  It prefers the worker's
// own deque (popped in strategy order: DFS newest-first, BFS local
// minimum depth, RandomBranch uniform from the worker's own RNG), then
// steals the oldest item from the first non-empty sibling — the
// classic opposite-end discipline, taking the shallowest, most
// divergent work and leaving the victim its hot deep subtree.  With no
// work anywhere it sleeps until work arrives or the search ends.
// stole and idled report what happened for the caller's observability;
// ok=false means the search is over (drained or aborted).
func (s *sched) next(w int, rnd *rng.R) (item frontierItem, ok, stole, idled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done {
			return frontierItem{}, false, false, idled
		}
		if q := s.deques[w]; len(q) > 0 {
			idx := len(q) - 1 // DFS: newest first
			switch s.strategy {
			case BFS:
				idx = 0
				for i := 1; i < len(q); i++ {
					if q[i].depth < q[idx].depth {
						idx = i
					}
				}
			case RandomBranch:
				idx = int(rnd.Intn(int64(len(q))))
			}
			item = q[idx]
			q[idx] = q[len(q)-1]
			s.deques[w] = q[:len(q)-1]
			s.size--
			s.inflight++
			return item, true, stole, idled
		}
		found := false
		for i := 1; i < len(s.deques); i++ {
			v := (w + i) % len(s.deques)
			if q := s.deques[v]; len(q) > 0 {
				item = q[0]
				s.deques[v] = q[1:]
				s.size--
				s.inflight++
				found = true
				break
			}
		}
		if found {
			return item, true, true, idled
		}
		if s.inflight == 0 {
			// Every deque is empty and no worker can produce more: the
			// frontier is exhausted.
			s.done = true
			s.cond.Broadcast()
			return frontierItem{}, false, false, idled
		}
		idled = true
		s.cond.Wait()
	}
}

// finish returns worker w's item to the scheduler with the children it
// produced, enforcing the global MaxFrontier cap; it returns the
// dropped items (for the worker to account) and the new backlog.
func (s *sched) finish(w int, kids []frontierItem) (dropped []frontierItem, qlen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if len(kids) > 0 && !s.done {
		kids, dropped = s.capKids(kids)
		s.deques[w] = append(s.deques[w], kids...)
		s.size += len(kids)
	}
	if s.size == 0 && s.inflight == 0 {
		s.done = true
	}
	s.cond.Broadcast()
	return dropped, s.size
}

// quit aborts the search: the calling worker is stopping for a reason
// (first bug, deadline, budget, persistent fault) that ends the whole
// search, so every sibling is woken to wind down.
func (s *sched) quit() {
	s.mu.Lock()
	s.inflight--
	s.done = true
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drained reports whether the search ended by exhausting the worklist
// (as opposed to a worker aborting it).
func (s *sched) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done && !s.aborted && s.size == 0
}

// runParallel is the Workers > 1 entry point: one root run seeds the
// deques, then a pool of workers drains them, and the per-worker
// reports merge canonically.  Always returns a report, never an error —
// supervision semantics (deadline, cancel, faults) match the sequential
// engines.  The Observer, when set, must be safe for concurrent use
// (the bundled sinks are); each event carries its worker's 1-based id.
func runParallel(prog *ir.Prog, o Options, start time.Time) *Report {
	nw := o.Workers
	regs := newVarRegistry()
	shared := newSharedSearch(o.MaxRuns)
	var cache solver.SolveCache
	if o.SolveCacheCap >= 0 {
		cache = solver.NewShardedCache(o.SolveCacheCap, nw)
	}
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = time.Now().Add(o.Timeout)
	}
	// Worker 1 owns the seed's pristine stream — the exact generator the
	// sequential engines use — so the root run draws byte-identical
	// padding to a Workers=1 search with the same seed (the determinism
	// contract's anchor).  Sibling workers fork their streams from it
	// only after the root run, below.
	base := rng.New(o.Seed)
	// One search-global timeline (internally locked) and one shared
	// coverage view dedup the workers' coverage ticks; each worker owns
	// its private cause ledger, merged canonically below.
	tl := newTimeline(o)
	if tl != nil {
		shared.cov = coverage.New(prog.NumSites)
	}
	// One compiled program image serves every worker: a Compiled is
	// immutable after Compile, so sharing is race-free (the machine-pool
	// race gate in scripts/check.sh holds it to that).
	code := compileFor(prog, o)
	// One run recorder (internally locked) spans the pool: the distilled
	// suite must cover the union coverage, which no per-worker log sees.
	var rec *runRecorder
	if o.RecordRuns {
		rec = newRunRecorder(prog.NumSites)
	}
	workers := make([]*engine, nw)
	for i := range workers {
		workers[i] = &engine{
			prog:     prog,
			code:     code,
			opts:     o,
			rand:     base,
			regs:     regs,
			im:       map[string]int64{},
			deadline: deadline,
			obs:      o.Observer,
			metrics:  newMetrics(o),
			prof:     newProfile(o, i+1),
			exp:      newExplain(o, i+1),
			timeline: tl,
			worker:   i + 1,
			shared:   shared,
			cache:    cache,
			persist:  o.Persistent,
			rec:      rec,
			report: &Report{
				AllLinear:       true,
				AllLocsDefinite: true,
				SolverComplete:  true,
				Workers:         nw,
				Coverage:        coverage.New(prog.NumSites),
			},
		}
	}

	sc := newSched(nw, o.MaxFrontier, o.Strategy)
	if tl != nil {
		for _, w := range workers {
			w.qlen = sc.qlen
		}
	}

	// Root run: worker 1 executes the fresh-random root; its children
	// seed every deque round-robin so the pool starts with spread work.
	root := workers[0]
	kids, cont := root.frontierRoot()
	// Now that the root has consumed its draws, give every sibling an
	// independent stream forked off worker 1's.  Forking advances the
	// parent state, so each worker's stream is distinct from the others'
	// and from worker 1's own later per-run forks.
	for i := 1; i < nw; i++ {
		workers[i].rand = base.Fork()
	}
	exhausted := false
	if cont {
		dropped, qlen := sc.seed(kids)
		root.noteDropped(dropped)
		if len(kids) > 0 {
			root.metrics.Observe(obs.HFrontierQueue, int64(qlen))
		}
		var wg sync.WaitGroup
		for i := range workers {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				workerLoop(workers[w], sc, shared, w)
			}(i)
		}
		wg.Wait()
		exhausted = sc.drained()
	} else {
		shared.noteStop(root.report.Stopped)
	}

	merged := mergeReports(prog, o, workers, shared, exhausted, start)
	merged.RunLog = rec.log()
	return merged
}

// workerLoop is one worker's life: pull a pending flip (stealing when
// starved), process it through the shared frontier pipeline, return the
// children, repeat until the worklist drains or the search aborts.
func workerLoop(e *engine, sc *sched, shared *sharedSearch, w int) {
	for {
		var t0 time.Time
		if e.prof != nil {
			t0 = time.Now()
		}
		item, ok, stole, idled := sc.next(w, e.rand)
		if e.prof != nil {
			// The parallelism tax: time this worker spent blocked on the
			// scheduler (stealing and idling included).
			e.prof.Span(obs.SpanFrontierWait, time.Since(t0))
		}
		if idled {
			e.metrics.Add(obs.CWorkerIdle, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.FrontierIdle, Run: e.report.Runs})
			}
		}
		if !ok {
			return
		}
		if stole {
			e.report.Steals++
			e.metrics.Add(obs.CSteals, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.FrontierSteal, Run: e.report.Runs, Depth: item.depth})
			}
		}
		kids, cont := e.processItem(item)
		if !cont {
			shared.noteStop(e.report.Stopped)
			sc.quit()
			return
		}
		dropped, qlen := sc.finish(w, kids)
		e.noteDropped(dropped)
		if len(kids) > 0 {
			e.metrics.Observe(obs.HFrontierQueue, int64(qlen))
		}
	}
}

// mergeReports folds the per-worker reports into the search's one
// report: counters sum, completeness flags AND (pessimistic — any
// worker's fallback is the search's fallback), coverage and metric
// snapshots merge, and bugs sort canonically by source position so the
// output is independent of worker finishing order.
func mergeReports(prog *ir.Prog, o Options, workers []*engine, shared *sharedSearch, exhausted bool, start time.Time) *Report {
	merged := &Report{
		AllLinear:       true,
		AllLocsDefinite: true,
		SolverComplete:  true,
		Workers:         len(workers),
		Coverage:        coverage.New(prog.NumSites),
	}
	var metrics *obs.Snapshot
	for _, w := range workers {
		r := w.report
		merged.Runs += r.Runs
		merged.Steps += r.Steps
		merged.Restarts += r.Restarts
		merged.Mispredicts += r.Mispredicts
		merged.SolverCalls += r.SolverCalls
		merged.SolverFailures += r.SolverFailures
		merged.SolveCacheHits += r.SolveCacheHits
		merged.SolveCacheMisses += r.SolveCacheMisses
		merged.SolveCacheEvictions += r.SolveCacheEvictions
		merged.SolveCacheDiskHits += r.SolveCacheDiskHits
		merged.SlicedPreds += r.SlicedPreds
		merged.FrontierDropped += r.FrontierDropped
		merged.Steals += r.Steals
		merged.AllLinear = merged.AllLinear && r.AllLinear
		merged.AllLocsDefinite = merged.AllLocsDefinite && r.AllLocsDefinite
		merged.SolverComplete = merged.SolverComplete && r.SolverComplete
		merged.Coverage.Merge(r.Coverage)
		merged.Bugs = append(merged.Bugs, r.Bugs...)
		merged.InternalErrors = append(merged.InternalErrors, r.InternalErrors...)
		if s := w.metrics.Snapshot(); s != nil {
			if metrics == nil {
				metrics = s
			} else {
				metrics.Merge(s)
			}
		}
		if s := w.prof.Snapshot(); s != nil {
			if merged.Profile == nil {
				merged.Profile = s
			} else {
				merged.Profile.Merge(s)
			}
		}
		if s := w.exp.Snapshot(); s != nil {
			if merged.Explain == nil {
				merged.Explain = s
			} else {
				merged.Explain.Merge(s)
			}
		}
	}
	sortBugs(merged.Bugs)
	merged.Metrics = metrics
	if merged.Explain != nil {
		// Stamp the search-global timeline, then resolve the merged
		// ledger and emit/mirror the reason buckets exactly like a
		// sequential search's finishExplain — into the merged snapshot,
		// which is already frozen.
		workers[0].timeline.Stamp(merged.Explain)
		rep := ResolveExplain(prog, merged.Explain, merged.Coverage)
		for _, reason := range obs.ReasonPrecedence {
			n := rep.Buckets[reason]
			if n == 0 {
				continue
			}
			if metrics != nil {
				metrics.Counters[obs.UncoveredPrefix+reason] += int64(n)
			}
			if o.Observer != nil {
				workers[0].emit(obs.Event{Kind: obs.UncoveredReason, Run: merged.Runs,
					Reason: reason, Count: n})
			}
		}
	}
	merged.Stopped = shared.stopReason()
	if merged.Stopped == "" {
		if exhausted {
			merged.Stopped = StopExhausted
			// Theorem 1(b) for the merged search: every worker kept every
			// completeness flag, nothing was dropped, no bug truncated a
			// path, no fault skipped work, and the run budget never bit.
			if merged.FrontierDropped == 0 && reportComplete(merged) && merged.Runs < o.MaxRuns {
				merged.Complete = true
			}
		} else {
			merged.Stopped = StopMaxRuns
		}
	}
	merged.Elapsed = time.Since(start)
	return merged
}

// sortBugs orders bugs canonically — source position, then kind, then
// message — the discovery-order-free order of merged parallel reports.
func sortBugs(bugs []Bug) {
	sort.Slice(bugs, func(i, j int) bool {
		if a, b := bugs[i].Pos.String(), bugs[j].Pos.String(); a != b {
			return a < b
		}
		if bugs[i].Kind != bugs[j].Kind {
			return bugs[i].Kind < bugs[j].Kind
		}
		return bugs[i].Msg < bugs[j].Msg
	})
}
