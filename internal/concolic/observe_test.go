package concolic

import (
	"reflect"
	"testing"

	"dart/internal/obs"
)

// TestObserverEventsDeterministic: the same program and seed must emit
// the identical event sequence on every replay — events carry only
// deterministic payloads (run indices, depths, path bit strings, solver
// work units), never wall-clock data.
func TestObserverEventsDeterministic(t *testing.T) {
	prog := compile(t, maze)
	collect := func() []obs.Event {
		var c obs.Collector
		_, err := Run(prog, Options{
			Toplevel: "explore", MaxRuns: 50, Seed: 1, Observer: &c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Events()
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no events observed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("event streams differ across replays:\n%v\n%v", a, b)
	}
}

// TestObserverLifecycle: the event stream must tell a coherent story —
// every run bracketed by RunStart/RunEnd, every SolverCall answered by
// a SolverVerdict, flips and bugs matching the report's accounting.
func TestObserverLifecycle(t *testing.T) {
	prog := compile(t, maze)
	var c obs.Collector
	rep, err := Run(prog, Options{
		Toplevel: "explore", MaxRuns: 50, Seed: 1, Observer: &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.Kind]int{}
	for _, ev := range c.Events() {
		counts[ev.Kind]++
		if ev.Fn != "explore" {
			t.Fatalf("event %v not tagged with the toplevel", ev)
		}
	}
	if counts[obs.RunStart] != rep.Runs || counts[obs.RunEnd] != rep.Runs {
		t.Errorf("run brackets %d/%d, want %d each", counts[obs.RunStart], counts[obs.RunEnd], rep.Runs)
	}
	if counts[obs.SolverCall] != rep.SolverCalls || counts[obs.SolverVerdict] != rep.SolverCalls {
		t.Errorf("solver events %d/%d, want %d each",
			counts[obs.SolverCall], counts[obs.SolverVerdict], rep.SolverCalls)
	}
	if counts[obs.BugFound] != len(rep.Bugs) {
		t.Errorf("bug events %d, want %d", counts[obs.BugFound], len(rep.Bugs))
	}
	if counts[obs.Restart] != rep.Restarts {
		t.Errorf("restart events %d, want %d", counts[obs.Restart], rep.Restarts)
	}
	// Metrics must agree with the report on the same totals.
	if rep.Metrics == nil {
		t.Fatal("Report.Metrics not populated")
	}
	if rep.Metrics.Counters[obs.CRuns] != int64(rep.Runs) {
		t.Errorf("metrics runs = %d, want %d", rep.Metrics.Counters[obs.CRuns], rep.Runs)
	}
	if rep.Metrics.Counters[obs.CBugs] != int64(len(rep.Bugs)) {
		t.Errorf("metrics bugs = %d, want %d", rep.Metrics.Counters[obs.CBugs], len(rep.Bugs))
	}
}

// TestObserverPanicIsolated: a panicking user-supplied sink is isolated
// exactly like any other internal fault — the search records one
// InternalError with phase "observer", disables observation, and still
// finds the bug.
func TestObserverPanicIsolated(t *testing.T) {
	prog := compile(t, maze)
	calls := 0
	rep, err := Run(prog, Options{
		Toplevel: "explore", MaxRuns: 50, Seed: 1, StopAtFirstBug: true,
		Observer: obs.SinkFunc(func(obs.Event) {
			calls++
			panic("observer bug")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times, want 1 (observation disabled after the panic)", calls)
	}
	if len(rep.InternalErrors) != 1 || rep.InternalErrors[0].Phase != "observer" {
		t.Fatalf("internal errors = %+v, want one with phase observer", rep.InternalErrors)
	}
	if rep.FirstBug() == nil {
		t.Errorf("the search must still find the bug; report: %+v", rep)
	}
	if rep.Complete {
		t.Error("an observer fault must clear completeness like any internal fault")
	}
}

// TestObserverNilIsFree: an unobserved search skips the metrics
// registry entirely (the <2% throughput guarantee), while
// CollectMetrics opts back in without attaching a sink.
func TestObserverNilIsFree(t *testing.T) {
	prog := compile(t, maze)
	rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Errorf("unobserved search must not pay for metrics: %+v", rep.Metrics)
	}
	if rep.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", rep.Elapsed)
	}

	rep, err = Run(prog, Options{Toplevel: "explore", MaxRuns: 50, Seed: 1, CollectMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil || rep.Metrics.Counters[obs.CRuns] != int64(rep.Runs) {
		t.Errorf("CollectMetrics must populate Report.Metrics: %+v", rep.Metrics)
	}
}

// TestObserverRandomMode: the random baseline emits the same run
// lifecycle (no solver events) and isolates panicking sinks too.
func TestObserverRandomMode(t *testing.T) {
	prog := compile(t, maze)
	var c obs.Collector
	rep, err := RandomTest(prog, Options{Toplevel: "explore", MaxRuns: 30, Seed: 1, Observer: &c})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.Kind]int{}
	for _, ev := range c.Events() {
		counts[ev.Kind]++
	}
	if counts[obs.RunStart] != rep.Runs || counts[obs.RunEnd] != rep.Runs {
		t.Errorf("run brackets %d/%d, want %d each", counts[obs.RunStart], counts[obs.RunEnd], rep.Runs)
	}
	if counts[obs.SolverCall] != 0 {
		t.Errorf("random testing must not call the solver, saw %d calls", counts[obs.SolverCall])
	}
	if rep.Metrics == nil || rep.Metrics.Counters[obs.CRuns] != int64(rep.Runs) {
		t.Errorf("random-mode metrics: %+v", rep.Metrics)
	}

	rep2, err := RandomTest(prog, Options{
		Toplevel: "explore", MaxRuns: 30, Seed: 1,
		Observer: obs.SinkFunc(func(obs.Event) { panic("observer bug") }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.InternalErrors) != 1 || rep2.InternalErrors[0].Phase != "observer" {
		t.Errorf("random-mode observer fault not isolated: %+v", rep2.InternalErrors)
	}
}

// TestFallbackConcreteEvent: leaving the linear theory emits one
// FallbackConcrete per run per flag, on the true-to-false transition.
func TestFallbackConcreteEvent(t *testing.T) {
	prog := compile(t, `
int nl(int x, int y) {
    if (x * y > 4) return 1;
    if (y * x > 9) return 2;
    return 0;
}
`)
	var c obs.Collector
	rep, err := Run(prog, Options{Toplevel: "nl", MaxRuns: 10, Seed: 1, Observer: &c})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllLinear {
		t.Fatal("x*y must leave the linear theory")
	}
	perRun := map[int]int{}
	for _, ev := range c.Events() {
		if ev.Kind == obs.FallbackConcrete && ev.Flag == "all_linear" {
			perRun[ev.Run]++
		}
	}
	if len(perRun) == 0 {
		t.Fatal("no FallbackConcrete events for all_linear")
	}
	for run, n := range perRun {
		if n != 1 {
			t.Errorf("run %d emitted %d all_linear fallbacks, want 1 (transition only)", run, n)
		}
	}
}
