package concolic

import (
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/solver"
	"dart/internal/symbolic"
)

// The frontier engine implements the alternative branch-selection orders
// of the paper's footnote 4 ("the next branch to be forced could be
// selected using a different strategy, e.g., randomly or in a
// breadth-first manner").
//
// The single-stack bookkeeping of Figs. 4-5 is only exhaustive when the
// *deepest* unexplored branch is flipped first: flipping a shallow entry
// truncates the stack and silently abandons the unexplored subtree of
// the original branch.  The frontier engine therefore keeps a work list
// of pending flips instead.  Each executed path enqueues one child per
// flippable conditional at index >= the path's own lower bound, and a
// child's bound is its flip index + 1 — the "generational search" rule
// (later popularized by SAGE) under which every feasible path is
// attempted exactly once regardless of pop order.  BFS pops the
// shallowest pending flip, RandomBranch a uniformly random one.

// frontierItem is one pending flip: re-execute the recorded prefix with
// the flip's predicate negated, then extend.
type frontierItem struct {
	// prefix is the expected branch outcome sequence up to and not
	// including the flipped conditional (shared backing across children
	// of one run).
	prefix []bool
	// preds are the prefix's path-constraint predicates (shared).
	preds []symbolic.Pred
	// flip is the negated predicate of the flipped conditional.
	flip symbolic.Pred
	// flipTaken is the branch outcome the flipped conditional must now
	// show (the negation of what was observed).
	flipTaken bool
	// bound is the child generation's lower flip index.
	bound int
	// im is the input vector that drove the parent run.
	im map[string]int64
	// depth is the flip index (for BFS ordering).
	depth int
}

// runFrontier drives the frontier search. It reuses the engine's input
// registry, machine construction, and report accounting.
func (e *engine) runFrontier() {
	seenBugs := map[string]bool{}
	var queue []frontierItem
	dropped := false

	// reportRun accounts one finished run and returns false when the
	// search must stop.
	reportRun := func(m *machine.Machine, rerr *machine.RunError) bool {
		e.report.Runs++
		e.report.Steps += m.Steps()
		e.metrics.Add(obs.CRuns, 1)
		e.metrics.Observe(obs.HStepsPerRun, m.Steps())
		if !m.AllLinear() {
			e.report.AllLinear = false
			e.metrics.Add(obs.CFallbackLinear, 1)
		}
		if !m.AllLocsDefinite() {
			e.report.AllLocsDefinite = false
			e.metrics.Add(obs.CFallbackLocs, 1)
		}
		for _, rec := range m.Branches {
			if rec.Site >= 0 {
				e.report.Coverage.Record(rec.Site, rec.Taken)
			}
		}
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.RunEnd, Run: e.report.Runs, Steps: m.Steps(),
				Outcome: runOutcome(rerr), Path: pathString(m.Branches)})
		}
		if e.mispredict {
			e.metrics.Add(obs.CMispredicts, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.Misprediction, Run: e.report.Runs, Depth: e.k - 1})
			}
		}
		if rerr != nil && rerr.Outcome == machine.Interrupted {
			e.report.Stopped = e.interruptReason()
			return false
		}
		if rerr != nil && rerr.Outcome != machine.HaltOK && !e.mispredict {
			isBug := rerr.Outcome == machine.Aborted || rerr.Outcome == machine.Crashed ||
				(rerr.Outcome == machine.StepLimit && e.opts.ReportStepLimit)
			if isBug {
				sig := bugSig(rerr)
				if !seenBugs[sig] {
					seenBugs[sig] = true
					e.report.Bugs = append(e.report.Bugs, Bug{
						Kind:   rerr.Outcome,
						Msg:    rerr.Msg,
						Pos:    rerr.Pos,
						Run:    e.report.Runs,
						Inputs: copyIM(e.im),
					})
					e.metrics.Add(obs.CBugs, 1)
					e.emit(obs.Event{Kind: obs.BugFound, Run: e.report.Runs,
						Outcome: rerr.Outcome.String(), Msg: rerr.Msg, Pos: rerr.Pos.String()})
				}
				if e.opts.StopAtFirstBug {
					e.report.Stopped = StopFirstBug
					return false
				}
			}
		}
		return true
	}

	// expand enqueues the children of a finished run.
	expand := func(branches []machine.BranchRec, bound int) {
		// Shared backing for all children of this run.
		outcomes := make([]bool, len(branches))
		var preds []symbolic.Pred
		// predsBefore[i] = number of predicates among branches[0..i).
		predsBefore := make([]int, len(branches)+1)
		for i, rec := range branches {
			outcomes[i] = rec.Taken
			predsBefore[i] = len(preds)
			if rec.HasPred {
				preds = append(preds, rec.Pred)
			}
		}
		predsBefore[len(branches)] = len(preds)
		im := copyIM(e.im)
		for j := bound; j < len(branches); j++ {
			rec := branches[j]
			if !rec.HasPred {
				continue
			}
			if rec.Decision && !rec.Taken && e.decisionDepth(rec) >= e.opts.MaxShapeDepth {
				continue // shape-depth cap
			}
			queue = append(queue, frontierItem{
				prefix:    outcomes[:j],
				preds:     preds[:predsBefore[j]:predsBefore[j]],
				flip:      rec.Pred.Negate(),
				flipTaken: !rec.Taken,
				bound:     j + 1,
				im:        im,
				depth:     j,
			})
		}
		if len(queue) > e.opts.MaxFrontier {
			// Drop the deepest pending flips; completeness is lost.
			dropped = true
			queue = queue[:e.opts.MaxFrontier]
		}
	}

	// Root run: fresh random inputs, no prediction.
	for e.report.Runs < e.opts.MaxRuns {
		if reason, stop := e.tripped(); stop {
			e.report.Stopped = reason
			return
		}
		e.stack = nil
		e.im = map[string]int64{}
		if e.report.Runs > 0 {
			e.report.Restarts++
			e.metrics.Add(obs.CRestarts, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.Restart, Run: e.report.Runs})
			}
		}
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.RunStart, Run: e.report.Runs + 1})
		}
		m, rerr, fault := e.runIsolated()
		if fault != nil {
			if !e.noteFault(fault) {
				return // persistent internal failure; Stopped is set
			}
			continue // retry the root with fresh randoms
		}
		if !reportRun(m, rerr) {
			return
		}
		if !e.mispredict {
			expand(m.Branches, 0)
			break
		}
		// A root run cannot mispredict (empty prediction); defensive.
	}

	for len(queue) > 0 && e.report.Runs < e.opts.MaxRuns {
		if reason, stop := e.tripped(); stop {
			e.report.Stopped = reason
			return
		}
		item := e.popItem(&queue)

		// Solve the item's path constraint lazily at pop time.
		pc := append(append([]symbolic.Pred{}, item.preds...), item.flip)
		e.report.SolverCalls++
		e.metrics.Observe(obs.HPCLen, int64(len(pc)))
		e.metrics.Observe(obs.HFrontierDepth, int64(item.depth))
		e.im = copyIM(item.im)
		var target string
		if e.obs != nil {
			target = itemPath(item)
			e.emit(obs.Event{Kind: obs.SolverCall, Run: e.report.Runs, Depth: item.depth, PCLen: len(pc), Path: target})
		}
		sol, verdict, work := e.solveIsolated(pc, item.depth)
		if e.obs != nil {
			e.emit(e.verdictEvent(item.depth, verdict, work))
		}
		if verdict != solver.Sat {
			if verdict == solver.BudgetExhausted {
				e.report.SolverComplete = false
			}
			e.report.SolverFailures++
			continue
		}
		e.metrics.Add(obs.CBranchFlips, 1)
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.BranchFlip, Run: e.report.Runs, Depth: item.depth, Path: target})
		}
		for v, val := range sol {
			e.im[e.vars[v].key] = val
		}

		// Predict the prefix plus the flipped branch.
		e.stack = make([]stackEntry, 0, len(item.prefix)+1)
		for _, b := range item.prefix {
			e.stack = append(e.stack, stackEntry{branch: b, done: true})
		}
		e.stack = append(e.stack, stackEntry{branch: item.flipTaken, done: true})

		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.RunStart, Run: e.report.Runs + 1})
		}
		m, rerr, fault := e.runIsolated()
		if fault != nil {
			if !e.noteFault(fault) {
				return // persistent internal failure; Stopped is set
			}
			continue // the faulting item is abandoned; keep draining
		}
		if !reportRun(m, rerr) {
			return
		}
		if e.mispredict {
			continue // an imprecise prefix; the item is abandoned
		}
		expand(m.Branches, item.bound)
	}

	if len(queue) == 0 {
		e.report.Stopped = StopExhausted
		if !dropped && e.searchComplete() && e.report.Runs < e.opts.MaxRuns {
			e.report.Complete = true
		}
	}
}

// itemPath is the forced target path of a frontier item: the recorded
// prefix outcomes followed by the flipped branch outcome, as a bit
// string aligned with RunEnd path encoding.
func itemPath(item frontierItem) string {
	b := make([]byte, len(item.prefix)+1)
	for i, taken := range item.prefix {
		b[i] = pathBit(taken)
	}
	b[len(item.prefix)] = pathBit(item.flipTaken)
	return string(b)
}

// popItem removes and returns the next item per the strategy.
func (e *engine) popItem(queue *[]frontierItem) frontierItem {
	q := *queue
	idx := 0
	switch e.opts.Strategy {
	case BFS:
		// Shallowest flip first.
		for i := 1; i < len(q); i++ {
			if q[i].depth < q[idx].depth {
				idx = i
			}
		}
	case RandomBranch:
		idx = int(e.rand.Intn(int64(len(q))))
	default:
		// LIFO (newest first): depth-first frontier order.
		idx = len(q) - 1
	}
	item := q[idx]
	q[idx] = q[len(q)-1]
	*queue = q[:len(q)-1]
	return item
}
