package concolic

import (
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/solver"
	"dart/internal/symbolic"
)

// The frontier engine implements the alternative branch-selection orders
// of the paper's footnote 4 ("the next branch to be forced could be
// selected using a different strategy, e.g., randomly or in a
// breadth-first manner").
//
// The single-stack bookkeeping of Figs. 4-5 is only exhaustive when the
// *deepest* unexplored branch is flipped first: flipping a shallow entry
// truncates the stack and silently abandons the unexplored subtree of
// the original branch.  The frontier engine therefore keeps a work list
// of pending flips instead.  Each executed path enqueues one child per
// flippable conditional at index >= the path's own lower bound, and a
// child's bound is its flip index + 1 — the "generational search" rule
// (later popularized by SAGE) under which every feasible path is
// attempted exactly once regardless of pop order.  BFS pops the
// shallowest pending flip, RandomBranch a uniformly random one.
//
// Because a pending flip is a complete, self-contained program run —
// recorded prefix, negated predicate, parent input vector — the frontier
// is also the unit of parallelism: the work-stealing engine of
// parallel.go hands the same frontierItems to multiple workers, each
// processing items through the exact methods below (processItem,
// solveItem, recordRun, childItems), so sequential and parallel searches
// share one code path for everything but scheduling.

// frontierItem is one pending flip: re-execute the recorded prefix with
// the flip's predicate negated, then extend.
type frontierItem struct {
	// prefix is the expected branch outcome sequence up to and not
	// including the flipped conditional (shared backing across children
	// of one run).
	prefix []bool
	// preds are the prefix's path-constraint predicates (shared).
	preds []symbolic.Pred
	// flip is the negated predicate of the flipped conditional.
	flip symbolic.Pred
	// flipTaken is the branch outcome the flipped conditional must now
	// show (the negation of what was observed).
	flipTaken bool
	// bound is the child generation's lower flip index.
	bound int
	// im is the input vector that drove the parent run.
	im map[string]int64
	// depth is the flip index (for BFS ordering).
	depth int
	// site is the flipped conditional's branch site (-1 for shape
	// decisions); pos its source position, filled only when the search
	// profiles (site attribution travels with the item because the
	// solving worker no longer holds the parent run's branch records).
	site int
	pos  string
}

// claimBug reports whether this engine is the first in the search to
// see the bug signature, recording the claim.  Sequential engines claim
// from their private map; parallel workers claim through the shared
// coordinator, so each distinct bug enters exactly one worker's report
// (and emits exactly one BugFound event) across the whole search —
// keeping live event-derived counters equal to the merged report.
func (e *engine) claimBug(sig string) bool {
	if e.shared != nil {
		return e.shared.claimBug(sig)
	}
	if e.seenBugs[sig] {
		return false
	}
	if e.seenBugs == nil {
		// Lazily allocated: bug-free searches (the common case for the
		// audit's ok-functions) never pay for the dedup map.
		e.seenBugs = make(map[string]bool, 1)
	}
	e.seenBugs[sig] = true
	return true
}

// recordRun accounts one finished run into the engine's report and
// returns false when the search must stop (Stopped is then set).
func (e *engine) recordRun(m *machine.Machine, rerr *machine.RunError) bool {
	e.report.Runs++
	e.report.Steps += m.Steps()
	e.metrics.Add(obs.CRuns, 1)
	e.metrics.Observe(obs.HStepsPerRun, m.Steps())
	if !m.AllLinear() {
		e.report.AllLinear = false
		e.metrics.Add(obs.CFallbackLinear, 1)
	}
	if !m.AllLocsDefinite() {
		e.report.AllLocsDefinite = false
		e.metrics.Add(obs.CFallbackLocs, 1)
	}
	newly := 0
	for _, rec := range m.Branches {
		if rec.Site >= 0 {
			if e.report.Coverage.Record(rec.Site, rec.Taken) {
				newly++
			}
			if e.exp != nil && !rec.HasPred {
				// The unexecuted direction of a predicate-less
				// conditional can never be forced: ledger why.
				e.exp.RecordFallback(rec.Site, rec.Pos.String(), !rec.Taken, rec.Fallback)
			}
		}
	}
	if e.shared != nil && e.timeline != nil {
		// Parallel: the per-worker set overcounts directions another
		// worker covered first; the shared view dedups search-wide.
		newly = e.shared.recordCov(m.Branches)
	}
	e.rec.observe(e.im, m.Branches)
	e.tickTimeline(newly)
	if e.obs != nil {
		e.emit(obs.Event{Kind: obs.RunEnd, Run: e.report.Runs, Steps: m.Steps(),
			Outcome: runOutcome(rerr), Path: pathString(m.Branches)})
	}
	if e.mispredict {
		e.report.Mispredicts++
		e.metrics.Add(obs.CMispredicts, 1)
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.Misprediction, Run: e.report.Runs, Depth: e.k - 1})
		}
	}
	if rerr != nil && rerr.Outcome == machine.Interrupted {
		e.report.Stopped = e.interruptReason()
		return false
	}
	if rerr != nil && rerr.Outcome != machine.HaltOK && !e.mispredict {
		isBug := rerr.Outcome == machine.Aborted || rerr.Outcome == machine.Crashed ||
			(rerr.Outcome == machine.StepLimit && e.opts.ReportStepLimit)
		if isBug {
			if e.claimBug(bugSig(rerr)) {
				e.report.Bugs = append(e.report.Bugs, Bug{
					Kind:   rerr.Outcome,
					Msg:    rerr.Msg,
					Pos:    rerr.Pos,
					Run:    e.report.Runs,
					Inputs: copyIM(e.im),
				})
				e.metrics.Add(obs.CBugs, 1)
				e.emit(obs.Event{Kind: obs.BugFound, Run: e.report.Runs,
					Outcome: rerr.Outcome.String(), Msg: rerr.Msg, Pos: rerr.Pos.String()})
			}
			if e.opts.StopAtFirstBug {
				e.report.Stopped = StopFirstBug
				return false
			}
		}
	}
	return true
}

// childItems builds the pending-flip children of a finished run: one
// item per flippable conditional at index >= bound (the generational
// expansion rule).  Prefix outcomes and predicates share one backing
// array across all children of the run.
func (e *engine) childItems(branches []machine.BranchRec, bound int) []frontierItem {
	outcomes := make([]bool, len(branches))
	var preds []symbolic.Pred
	// predsBefore[i] = number of predicates among branches[0..i).
	predsBefore := make([]int, len(branches)+1)
	for i, rec := range branches {
		outcomes[i] = rec.Taken
		predsBefore[i] = len(preds)
		if rec.HasPred {
			preds = append(preds, rec.Pred)
		}
	}
	predsBefore[len(branches)] = len(preds)
	im := copyIM(e.im)
	var kids []frontierItem
	for j := bound; j < len(branches); j++ {
		rec := branches[j]
		if !rec.HasPred {
			continue
		}
		if rec.Decision && !rec.Taken && e.decisionDepth(rec) >= e.opts.MaxShapeDepth {
			if rec.Site >= 0 {
				e.exp.RecordDepthLimit(rec.Site, rec.Pos.String(), !rec.Taken)
			}
			continue // shape-depth cap
		}
		var pos string
		if e.prof != nil || e.exp != nil {
			pos = rec.Pos.String()
		}
		kids = append(kids, frontierItem{
			prefix:    outcomes[:j],
			preds:     preds[:predsBefore[j]:predsBefore[j]],
			flip:      rec.Pred.Negate(),
			flipTaken: !rec.Taken,
			bound:     j + 1,
			im:        im,
			depth:     j,
			site:      rec.Site,
			pos:       pos,
		})
	}
	return kids
}

// noteDropped accounts pending flips discarded on MaxFrontier overflow:
// the count reaches the report, the metrics registry, the trace, and —
// per discarded item — the explainer's ledger (each dropped flip is an
// abandoned subtree at a known site).  A completeness loss is never
// silent.
func (e *engine) noteDropped(items []frontierItem) {
	n := len(items)
	if n <= 0 {
		return
	}
	e.report.FrontierDropped += n
	e.metrics.Add(obs.CFrontierDropped, int64(n))
	if e.exp != nil {
		for _, it := range items {
			if it.site >= 0 {
				e.exp.RecordDropped(it.site, it.pos, it.flipTaken)
			}
		}
	}
	if e.obs != nil {
		e.emit(obs.Event{Kind: obs.FrontierDrop, Run: e.report.Runs, Dropped: n})
	}
}

// solveItem solves one pending flip's path constraint.  On Sat it
// installs the solved values into the engine's input vector (IM + IM':
// untouched inputs keep the parent run's values) and predicts the
// prefix-plus-flip branch sequence on the stack, returning true: the
// item is ready to execute.  Any other verdict marks the item abandoned
// (false), accounting solver failures and completeness exactly like the
// classic engine.
func (e *engine) solveItem(item frontierItem) bool {
	pc := append(append([]symbolic.Pred{}, item.preds...), item.flip)
	e.report.SolverCalls++
	e.metrics.Observe(obs.HPCLen, int64(len(pc)))
	e.metrics.Observe(obs.HFrontierDepth, int64(item.depth))
	e.im = copyIM(item.im)
	var target string
	if e.obs != nil {
		target = itemPath(item)
		e.emit(obs.Event{Kind: obs.SolverCall, Run: e.report.Runs, Depth: item.depth, PCLen: len(pc), Path: target, Site: item.site + 1})
	}
	sol, verdict, work := e.solveIsolated(pc, item.depth)
	if e.obs != nil {
		ev := e.verdictEvent(item.depth, verdict, work)
		ev.Site = item.site + 1
		e.emit(ev)
	}
	e.prof.RecordSolve(item.site, item.pos, verdict.String(), work, e.lastSolve.solveNS, e.lastSolve.cache)
	if item.site >= 0 {
		e.exp.RecordSolve(item.site, item.pos, item.flipTaken, verdict.String(), e.lastSolve.unsatSlice)
	}
	if verdict != solver.Sat {
		if verdict == solver.BudgetExhausted {
			e.report.SolverComplete = false
		}
		e.report.SolverFailures++
		return false
	}
	e.metrics.Add(obs.CBranchFlips, 1)
	e.prof.RecordFlip(item.site, item.pos)
	if e.obs != nil {
		e.emit(obs.Event{Kind: obs.BranchFlip, Run: e.report.Runs, Depth: item.depth, Path: target, Site: item.site + 1})
	}
	for v, val := range sol {
		e.im[e.regs.keyOf(v)] = val
	}

	// Predict the prefix plus the flipped branch.
	e.stack = make([]stackEntry, 0, len(item.prefix)+1)
	for _, b := range item.prefix {
		e.stack = append(e.stack, stackEntry{branch: b, done: true})
	}
	e.stack = append(e.stack, stackEntry{branch: item.flipTaken, done: true})
	return true
}

// processItem solves and executes one pending flip, returning the
// children it spawned and whether the search may continue (false means
// stop: Stopped is set on the engine's report).  It is the whole
// per-item pipeline shared by the sequential drain loop and the
// parallel workers; a parallel engine additionally reserves one slot of
// the shared run budget before executing (solver-only items — infeasible
// flips — consume no budget, matching the sequential loop's accounting).
func (e *engine) processItem(item frontierItem) (kids []frontierItem, cont bool) {
	if reason, stop := e.tripped(); stop {
		e.report.Stopped = reason
		return nil, false
	}
	if !e.solveItem(item) {
		return nil, true
	}
	if e.shared != nil && !e.shared.reserveRun() {
		e.report.Stopped = StopMaxRuns
		return nil, false
	}
	if e.obs != nil {
		e.emit(obs.Event{Kind: obs.RunStart, Run: e.report.Runs + 1})
	}
	m, rerr, fault := e.runIsolated()
	if fault != nil {
		if !e.noteFault(fault) {
			return nil, false // persistent internal failure; Stopped is set
		}
		return nil, true // the faulting item is abandoned; keep draining
	}
	if !e.recordRun(m, rerr) {
		return nil, false
	}
	if e.mispredict {
		if e.exp != nil && item.site >= 0 {
			// The diverged run was forcing this item's flip; it is now
			// abandoned unexplored.
			e.exp.RecordMispredict(item.site, item.pos, item.flipTaken)
		}
		return nil, true // an imprecise prefix; the item is abandoned
	}
	return e.childItems(m.Branches, item.bound), true
}

// frontierRoot performs the fresh-random root executions of a frontier
// search until one completes without mispredicting, returning its
// children (cont=false when the search stopped instead; Stopped is set
// except on plain budget exhaustion, which Run's fallback labels
// StopMaxRuns).
func (e *engine) frontierRoot() (kids []frontierItem, cont bool) {
	for {
		if e.shared == nil && e.report.Runs >= e.opts.MaxRuns {
			return nil, false
		}
		if reason, stop := e.tripped(); stop {
			e.report.Stopped = reason
			return nil, false
		}
		if e.shared != nil && !e.shared.reserveRun() {
			e.report.Stopped = StopMaxRuns
			return nil, false
		}
		e.stack = nil
		e.im = map[string]int64{}
		if e.report.Runs > 0 {
			e.report.Restarts++
			e.metrics.Add(obs.CRestarts, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.Restart, Run: e.report.Runs})
			}
		}
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.RunStart, Run: e.report.Runs + 1})
		}
		m, rerr, fault := e.runIsolated()
		if fault != nil {
			if !e.noteFault(fault) {
				return nil, false // persistent internal failure; Stopped is set
			}
			continue // retry the root with fresh randoms
		}
		if !e.recordRun(m, rerr) {
			return nil, false
		}
		if !e.mispredict {
			return e.childItems(m.Branches, 0), true
		}
		// A root run cannot mispredict (empty prediction); defensive.
	}
}

// runFrontier drives the sequential frontier search. It reuses the
// engine's input registry, machine construction, and report accounting.
func (e *engine) runFrontier() {
	var queue []frontierItem
	if e.timeline != nil {
		// Timeline samples carry the pending-flip backlog.
		e.qlen = func() int { return len(queue) }
	}

	// Root run: fresh random inputs, no prediction.
	kids, cont := e.frontierRoot()
	if !cont {
		return
	}
	queue = e.enqueue(queue, kids)

	for len(queue) > 0 && e.report.Runs < e.opts.MaxRuns {
		item := e.popItem(&queue)
		kids, cont := e.processItem(item)
		if !cont {
			return
		}
		queue = e.enqueue(queue, kids)
	}

	if len(queue) == 0 {
		e.report.Stopped = StopExhausted
		if e.report.FrontierDropped == 0 && e.searchComplete() && e.report.Runs < e.opts.MaxRuns {
			e.report.Complete = true
		}
	}
}

// enqueue appends kids to the sequential work list, enforcing
// MaxFrontier by dropping the deepest pending flips (counted, never
// silent) and sampling the backlog histogram.
func (e *engine) enqueue(queue []frontierItem, kids []frontierItem) []frontierItem {
	if len(kids) == 0 {
		return queue
	}
	queue = append(queue, kids...)
	if len(queue) > e.opts.MaxFrontier {
		e.noteDropped(queue[e.opts.MaxFrontier:])
		queue = queue[:e.opts.MaxFrontier]
	}
	e.metrics.Observe(obs.HFrontierQueue, int64(len(queue)))
	return queue
}

// itemPath is the forced target path of a frontier item: the recorded
// prefix outcomes followed by the flipped branch outcome, as a bit
// string aligned with RunEnd path encoding.
func itemPath(item frontierItem) string {
	b := make([]byte, len(item.prefix)+1)
	for i, taken := range item.prefix {
		b[i] = pathBit(taken)
	}
	b[len(item.prefix)] = pathBit(item.flipTaken)
	return string(b)
}

// popItem removes and returns the next item per the strategy.
func (e *engine) popItem(queue *[]frontierItem) frontierItem {
	q := *queue
	idx := 0
	switch e.opts.Strategy {
	case BFS:
		// Shallowest flip first.
		for i := 1; i < len(q); i++ {
			if q[i].depth < q[idx].depth {
				idx = i
			}
		}
	case RandomBranch:
		idx = int(e.rand.Intn(int64(len(q))))
	default:
		// LIFO (newest first): depth-first frontier order.
		idx = len(q) - 1
	}
	item := q[idx]
	q[idx] = q[len(q)-1]
	*queue = q[:len(q)-1]
	return item
}
