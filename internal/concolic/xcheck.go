package concolic

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dart/internal/ir"
)

// EngineSignature renders the report planes that are deterministic
// functions of (program, options, seed) — independent of which
// execution engine ran and, at Workers > 1, of scheduling texture —
// so the differential gate (-xcheck / TestCompiledMatchesInterp) can
// require byte equality between the compiled engine and the reference
// interpreter.
//
// Included at every worker count: bugs (kind, message, position),
// branch coverage, completeness flags, the stop reason, and the
// resolved explain ledger.  At Workers == 1 the signature additionally
// pins the exact run/step/solver tallies, the profile's per-site solver
// counters (wall clock zeroed), and each bug's first-exposing run and
// input vector; at Workers > 1 those are schedule texture and are
// omitted — work stealing changes which parent input vector a flip
// inherits, so don't-care padding (and with it the number of solve
// attempts a site sees before exhaustion) varies run to run, while the
// generational rule still makes the bug set, coverage, and flags
// identical.  Always excluded: Elapsed, metrics latency histograms,
// profile nanos and phase rows (the interpreter legitimately performs
// more shadow evaluations), and the coverage timeline.
func (r *Report) EngineSignature(prog *ir.Prog) string {
	var b strings.Builder
	exact := r.Workers <= 1

	fmt.Fprintf(&b, "workers=%d stopped=%s\n", r.Workers, r.Stopped)
	fmt.Fprintf(&b, "flags all_linear=%t all_locs_definite=%t solver_complete=%t complete=%t\n",
		r.AllLinear, r.AllLocsDefinite, r.SolverComplete, r.Complete)
	if exact {
		fmt.Fprintf(&b, "runs=%d steps=%d restarts=%d mispredicts=%d\n",
			r.Runs, r.Steps, r.Restarts, r.Mispredicts)
		fmt.Fprintf(&b, "solver calls=%d failures=%d sliced=%d\n",
			r.SolverCalls, r.SolverFailures, r.SlicedPreds)
	}
	fmt.Fprintf(&b, "internal_errors=%d\n", len(r.InternalErrors))

	fmt.Fprintf(&b, "bugs=%d\n", len(r.Bugs))
	for _, bug := range r.Bugs {
		fmt.Fprintf(&b, "  [%s] %s at %s", bug.Kind, bug.Msg, bug.Pos)
		if exact {
			fmt.Fprintf(&b, " run=%d inputs=%s", bug.Run, fmtInputs(bug.Inputs))
		}
		b.WriteByte('\n')
	}

	if r.Coverage != nil {
		fmt.Fprintf(&b, "coverage %d/%d:", r.Coverage.Covered(), r.Coverage.Total())
		for site := 0; site < r.Coverage.Sites(); site++ {
			tk, ntk := r.Coverage.Site(site)
			if tk || ntk {
				fmt.Fprintf(&b, " %d=%c%c", site, mark(tk, 'T'), mark(ntk, 'N'))
			}
		}
		b.WriteByte('\n')
	}

	if r.Explain != nil {
		resolved := ResolveExplain(prog, r.Explain, r.Coverage)
		js, err := json.Marshal(resolved)
		if err != nil {
			js = []byte(fmt.Sprintf("explain marshal error: %v", err))
		}
		fmt.Fprintf(&b, "explain %s\n", js)
	}

	if r.Profile != nil && exact {
		sites := make([]string, 0, len(r.Profile.Sites))
		for _, s := range r.Profile.Sites {
			sites = append(sites, fmt.Sprintf(
				"site=%d fn=%s pos=%s solves=%d work=%d hits=%d misses=%d sat=%d unsat=%d budget=%d flips=%d",
				s.Site, s.Fn, s.Pos, s.Solves, s.Work, s.CacheHits, s.CacheMisses,
				s.Sat, s.Unsat, s.Budget, s.Flips))
		}
		sort.Strings(sites)
		fmt.Fprintf(&b, "profile sites=%d\n", len(sites))
		for _, s := range sites {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return b.String()
}

func mark(on bool, c byte) byte {
	if on {
		return c
	}
	return '-'
}

func fmtInputs(im map[string]int64) string {
	keys := make([]string, 0, len(im))
	for k := range im {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, im[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
