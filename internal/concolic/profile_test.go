package concolic

import (
	"fmt"
	"reflect"
	"testing"

	"dart/internal/obs"
	"dart/internal/progs"
)

// stripTimings zeroes the honest wall-clock fields of a profile,
// leaving only the deterministic counters the cross-worker contract
// covers: per-site solver work, verdicts, cache traffic, and flips.
// Phases are dropped entirely — their counts depend on scheduling
// (frontier waits, per-worker exec splits), and their nanos are clock.
func stripTimings(p *obs.ProfileSnapshot) []obs.SiteProfile {
	sites := make([]obs.SiteProfile, len(p.Sites))
	copy(sites, p.Sites)
	for i := range sites {
		sites[i].SolveNanos = 0
	}
	return sites
}

// TestProfileDeterministicAcrossWorkers: the per-site solver-work
// attribution is a function of the search seed alone.  With the solve
// cache disabled (cross-worker sharing changes who pays for a key),
// workers = 1, 2, 8 must produce byte-identical site rows once timing
// fields are zeroed — the profile analog of TestWorkersDeterminism,
// and the property that makes a profile trustworthy for optimization
// decisions.  Run under -race in CI.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name, src, top string
	}{
		{"clusters", progs.Clusters, "clusters"},
		{"solver-gate", progs.SolverGate, "gate"},
		{"multi-bug", multiBug, "multi"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			var base []obs.SiteProfile
			for _, workers := range []int{1, 2, 8} {
				rep, err := Run(prog, Options{
					Toplevel:       tc.top,
					MaxRuns:        2000,
					Seed:           3,
					Strategy:       BFS,
					Workers:        workers,
					SolveCacheCap:  -1,
					CollectProfile: true,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.Profile == nil {
					t.Fatalf("workers=%d: no profile collected", workers)
				}
				if rep.Profile.Workers != workers {
					t.Errorf("workers=%d: Profile.Workers = %d", workers, rep.Profile.Workers)
				}
				sites := stripTimings(rep.Profile)
				if len(sites) == 0 {
					t.Fatalf("workers=%d: no site attribution", workers)
				}
				var solves int64
				for _, s := range sites {
					solves += s.Solves
					if s.Fn != tc.top {
						t.Errorf("workers=%d: site %d attributed to %q, want %q", workers, s.Site, s.Fn, tc.top)
					}
				}
				if solves == 0 {
					t.Fatalf("workers=%d: zero solves attributed", workers)
				}
				if base == nil {
					base = sites
					continue
				}
				if !reflect.DeepEqual(sites, base) {
					t.Errorf("workers=%d: site attribution diverged (stopped=%q runs=%d dropped=%d mispredicts=%d faults=%d)\n got: %s\nwant: %s",
						workers, rep.Stopped, rep.Runs, rep.FrontierDropped,
						rep.Mispredicts, len(rep.InternalErrors), fmtSites(sites), fmtSites(base))
				}
			}
		})
	}
}

func fmtSites(sites []obs.SiteProfile) string {
	s := ""
	for _, st := range sites {
		s += fmt.Sprintf("\n  %+v", st)
	}
	return s
}

// TestProfileOffByDefault: without CollectProfile the report carries no
// profile and the engine never reads the clock for spans — the PR 2
// nil-observer discipline extended to the profiler.
func TestProfileOffByDefault(t *testing.T) {
	rep, err := Run(compile(t, progs.Clusters), Options{Toplevel: "clusters", MaxRuns: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile != nil {
		t.Fatalf("profile collected without CollectProfile: %+v", rep.Profile)
	}
	// An observer alone must not switch profiling on (events stay
	// wall-clock free; profiles are opt-in).
	var c obs.Collector
	rep, err = Run(compile(t, progs.Clusters), Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 3, Observer: &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile != nil {
		t.Fatal("Observer implied CollectProfile")
	}
}

// TestProfilePhases: a sequential profiled search accounts the core
// phases — execution, solving, verification — with plausible counts,
// and agrees with the report's own counters where they overlap.
func TestProfilePhases(t *testing.T) {
	rep, err := Run(compile(t, progs.Clusters), Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 3, CollectProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	phases := make(map[string]obs.PhaseProfile, len(p.Phases))
	for _, ph := range p.Phases {
		phases[ph.Phase] = ph
	}
	if got := phases[obs.SpanExec].Count; got != int64(rep.Runs) {
		t.Errorf("exec spans = %d, report ran %d executions", got, rep.Runs)
	}
	if phases[obs.SpanSolve].Count == 0 {
		t.Error("no solve spans in a search that solved constraints")
	}
	// Every solver call is attributed to exactly one site; cache hits
	// answer without entering the solver, so they are solves with no
	// solve span.
	var solves, hits int64
	for _, s := range p.Sites {
		solves += s.Solves
		hits += s.CacheHits
	}
	if solves != phases[obs.SpanSolve].Count+hits {
		t.Errorf("site solves sum %d != solve spans %d + cache hits %d",
			solves, phases[obs.SpanSolve].Count, hits)
	}
	// A cache-enabled run records cache lookups.
	if phases[obs.SpanCacheLookup].Count == 0 {
		t.Error("no cache_lookup spans with the solve cache enabled")
	}
	// Sequential search never waits on the frontier scheduler.
	if _, ok := phases[obs.SpanFrontierWait]; ok {
		t.Error("sequential search recorded frontier_wait")
	}
}

// TestProfileCacheAttribution: cache hits and misses land on the site
// that issued the solve, and hits cost zero solver work.
func TestProfileCacheAttribution(t *testing.T) {
	rep, err := Run(compile(t, progs.SolverGate), Options{
		Toplevel: "gate", MaxRuns: 2000, Seed: 7, CollectProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	var hits, misses int64
	for _, s := range p.Sites {
		hits += s.CacheHits
		misses += s.CacheMisses
	}
	if hits != int64(rep.SolveCacheHits) || misses != int64(rep.SolveCacheMisses) {
		t.Errorf("profile cache traffic %d/%d, report %d/%d",
			hits, misses, rep.SolveCacheHits, rep.SolveCacheMisses)
	}
}
