package concolic

import (
	"testing"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/parser"
	"dart/internal/sema"
)

func compile(t *testing.T, src string) *ir.Prog {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sem, err := sema.Check(f, machine.StdLibSigs())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

const maze = `
int explore(int a, int b, int c) {
    if (a == 11) {
        if (b == 22) {
            if (c == 33) {
                abort();
            }
        }
    }
    return 0;
}
`

func TestDirectedFindsNestedEqualities(t *testing.T) {
	prog := compile(t, maze)
	rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 20, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("not found in %d runs", rep.Runs)
	}
	if bug.Inputs["d0.a"] != 11 || bug.Inputs["d0.b"] != 22 || bug.Inputs["d0.c"] != 33 {
		t.Errorf("inputs %v", bug.Inputs)
	}
	// DFS reaches it in exactly 4 runs: initial + one flip per equality.
	if rep.Runs != 4 {
		t.Errorf("runs = %d, want 4 under DFS", rep.Runs)
	}
}

func TestRandomTestMissesNestedEqualities(t *testing.T) {
	prog := compile(t, maze)
	rep, err := RandomTest(prog, Options{Toplevel: "explore", MaxRuns: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("random testing found the 2^-96 bug?! %v", rep.Bugs)
	}
	if rep.Runs != 5000 {
		t.Errorf("runs = %d", rep.Runs)
	}
}

func TestAllStrategiesFindTheBug(t *testing.T) {
	prog := compile(t, maze)
	for _, s := range []Strategy{DFS, BFS, RandomBranch} {
		rep, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 200, Seed: 3, Strategy: s, StopAtFirstBug: true})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.FirstBug() == nil {
			t.Errorf("strategy %v missed the bug in %d runs", s, rep.Runs)
		}
	}
}

func TestDeterministicAcrossRepeats(t *testing.T) {
	prog := compile(t, maze)
	first, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(prog, Options{Toplevel: "explore", MaxRuns: 50, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if again.Runs != first.Runs || len(again.Bugs) != len(first.Bugs) ||
			again.SolverCalls != first.SolverCalls || again.Steps != first.Steps {
			t.Fatalf("repeat %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

func TestSeedsExploreDifferently(t *testing.T) {
	prog := compile(t, `
int f(int a) {
    if (a > 0) return 1;
    return 0;
}
`)
	// Different seeds start from different random inputs; both must
	// still complete the two-path tree.
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete || rep.Runs != 2 {
			t.Errorf("seed %d: runs=%d complete=%v", seed, rep.Runs, rep.Complete)
		}
		if rep.Coverage.Covered() != 2 {
			t.Errorf("seed %d: coverage %d/2", seed, rep.Coverage.Covered())
		}
	}
}

func TestCompletenessOnLoops(t *testing.T) {
	// A bounded loop over an input: the tree is finite and must be swept.
	prog := compile(t, `
int f(int n) {
    int i;
    int s = 0;
    if (n < 0) return -1;
    if (n > 4) return -2;
    for (i = 0; i < n; i++) s += i;
    return s;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("bounded loop tree not exhausted in %d runs", rep.Runs)
	}
	// Paths: n<0, n>4, and n = 0..4 — eight runs give full branch cover.
	if rep.Coverage.Fraction() != 1.0 {
		t.Errorf("coverage %.2f, want 1.0", rep.Coverage.Fraction())
	}
}

func TestIMPreservedAcrossFlips(t *testing.T) {
	// Flipping the b-branch must preserve the solved value of a
	// (IM + IM' semantics): otherwise the a == 1234 prefix breaks and
	// the run mispredicts.
	prog := compile(t, `
int f(int a, int b) {
    if (a == 1234) {
        if (b == 5678) {
            abort();
        }
    }
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 10, Seed: 9, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstBug() == nil {
		t.Fatalf("not found in %d runs", rep.Runs)
	}
	if rep.Restarts != 0 {
		t.Errorf("IM preservation failed: %d restarts (mispredictions)", rep.Restarts)
	}
}

func TestMaxRunsRespected(t *testing.T) {
	// An unsweepable tree (non-linear) must stop at MaxRuns.
	prog := compile(t, `
int f(int x, int y) {
    if (x * y == 1000000) abort();
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 37, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs > 37 {
		t.Errorf("runs = %d exceeds MaxRuns", rep.Runs)
	}
	if rep.Complete {
		t.Error("non-linear program claimed complete")
	}
}

func TestStepLimitReporting(t *testing.T) {
	prog := compile(t, `
int f(int n) {
    if (n == 7) {
        while (1) { }
    }
    return 0;
}
`)
	// Without ReportStepLimit, the hang is skipped but not reported.
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 30, Seed: 1, MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("unexpected bugs %v", rep.Bugs)
	}
	// With it, the non-termination is a finding (the paper's watchdog).
	rep2, err := Run(prog, Options{Toplevel: "f", MaxRuns: 30, Seed: 1, MaxSteps: 5000, ReportStepLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range rep2.Bugs {
		if b.Kind == machine.StepLimit {
			found = true
			if b.Inputs["d0.n"] != 7 {
				t.Errorf("hang requires n == 7, inputs %v", b.Inputs)
			}
		}
	}
	if !found {
		t.Errorf("non-termination not reported: %v", rep2.Bugs)
	}
}

func TestMultipleDistinctBugs(t *testing.T) {
	prog := compile(t, `
int f(int a) {
    if (a == 100) abort();
    if (a == 200) {
        int x = 1 / (a - 200);
        return x;
    }
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[machine.Outcome]int{}
	for _, b := range rep.Bugs {
		kinds[b.Kind]++
	}
	if kinds[machine.Aborted] != 1 || kinds[machine.Crashed] != 1 {
		t.Errorf("bugs: %v", rep.Bugs)
	}
}

func TestBugsDeduplicated(t *testing.T) {
	// Many inputs reach the same abort; it must be reported once.
	prog := compile(t, `
int f(int a) {
    if (a > 1000) abort();
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 1 {
		t.Errorf("bugs = %d, want 1 (deduplicated)", len(rep.Bugs))
	}
}

func TestUnknownToplevel(t *testing.T) {
	prog := compile(t, "int f() { return 0; }")
	if _, err := Run(prog, Options{Toplevel: "missing"}); err == nil {
		t.Error("Run accepted a missing toplevel")
	}
	if _, err := RandomTest(prog, Options{Toplevel: "missing"}); err == nil {
		t.Error("RandomTest accepted a missing toplevel")
	}
}

func TestShapeSearchAblation(t *testing.T) {
	// Straight-line pointer code: with shape search the NULL shape is
	// forced systematically; without it, discovery is coin-flip only.
	prog := compile(t, `
struct s { int v; };
int f(struct s *p) {
    p->v = 1;
    return 0;
}
`)
	with, err := Run(prog, Options{Toplevel: "f", MaxRuns: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Bugs) != 1 {
		t.Errorf("shape search should find the NULL crash: %v", with.Bugs)
	}

	// Without shape search, a seed whose first coin lands on "allocate"
	// terminates believing the single path is everything (the 2005
	// behaviour).  Across several seeds roughly half find the crash.
	found := 0
	for seed := int64(1); seed <= 10; seed++ {
		rep, err := Run(prog, Options{
			Toplevel: "f", MaxRuns: 1, Seed: seed, DisableShapeSearch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Bugs) > 0 {
			found++
		}
	}
	if found == 0 || found == 10 {
		t.Errorf("coin-flip discovery found %d/10; expected a mix", found)
	}
}

func TestShapeDepthCap(t *testing.T) {
	// An unbounded recursive shape: the cap keeps the directed search
	// finite. Walking the list branches on each node, so without the cap
	// the tree is infinite.
	prog := compile(t, `
struct node { int v; struct node *next; };
int walk(struct node *n) {
    int k = 0;
    while (n != NULL) {
        k++;
        n = n->next;
    }
    return k;
}
`)
	rep, err := Run(prog, Options{Toplevel: "walk", MaxRuns: 500, Seed: 1, MaxShapeDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs >= 500 {
		t.Errorf("shape-capped search did not converge (%d runs)", rep.Runs)
	}
}

func TestExternGlobalSolved(t *testing.T) {
	prog := compile(t, `
extern int mode;
int f() {
    if (mode == 4242) abort();
    return 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 10, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	bug := rep.FirstBug()
	if bug == nil || bug.Inputs["g:mode"] != 4242 {
		t.Errorf("bug %v", bug)
	}
}

func TestDepthInputsIndependent(t *testing.T) {
	// Each depth iteration gets fresh inputs; the bug needs different
	// values at each call.
	prog := compile(t, `
int state = 0;
void step(int m) {
    if (state == 0 && m == 10) { state = 1; return; }
    if (state == 1 && m == 20) abort();
    state = 0;
}
`)
	rep, err := Run(prog, Options{Toplevel: "step", Depth: 2, MaxRuns: 100, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("not found in %d runs", rep.Runs)
	}
	if bug.Inputs["d0.m"] != 10 || bug.Inputs["d1.m"] != 20 {
		t.Errorf("inputs %v", bug.Inputs)
	}
}

func TestCoverageMonotoneDirectedVsRandom(t *testing.T) {
	src := `
int f(int a, int b) {
    if (a == 77001) {
        if (b == 1002) return 1;
        return 2;
    }
    if (a < -2000000) return 3;
    return 0;
}
`
	prog := compile(t, src)
	directed, err := Run(prog, Options{Toplevel: "f", MaxRuns: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomTest(prog, Options{Toplevel: "f", MaxRuns: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if directed.Coverage.Covered() <= random.Coverage.Covered() {
		t.Errorf("directed coverage %d should beat random %d on equality-guarded code",
			directed.Coverage.Covered(), random.Coverage.Covered())
	}
	if !directed.Complete {
		t.Error("directed search should exhaust this tree")
	}
}

func TestFrontierCompleteness(t *testing.T) {
	// Every strategy must exhaust a finite linear tree and agree there
	// is no bug; the frontier engine's generational rule guarantees each
	// path is attempted exactly once for any pop order.
	prog := compile(t, `
int f(int a, int b) {
    if (a > 0) {
        if (b == 3) return 1;
        return 2;
    }
    if (b < -10) return 3;
    return 4;
}
`)
	for _, s := range []Strategy{DFS, BFS, RandomBranch} {
		rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 100, Seed: 4, Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !rep.Complete {
			t.Errorf("%v: finite tree not exhausted (%d runs)", s, rep.Runs)
		}
		if rep.Coverage.Fraction() != 1.0 {
			t.Errorf("%v: coverage %.2f", s, rep.Coverage.Fraction())
		}
	}
}

func TestFrontierDoesNotAbandonSubtrees(t *testing.T) {
	// Regression: the single-stack engine with shallow-first flipping
	// used to claim completeness while the abort under the *original*
	// first branch was never explored.  The frontier engine must find it
	// under every strategy.
	prog := compile(t, `
int state1 = 0;
void step(int m) {
    if (m == 0) { state1 = 0; return; }
    if (m == 3) {
        if (state1 == 1) abort();
        state1 = 1;
    }
}
`)
	for _, s := range []Strategy{DFS, BFS, RandomBranch} {
		rep, err := Run(prog, Options{
			Toplevel: "step", Depth: 2, MaxRuns: 2000, Seed: 1,
			Strategy: s, StopAtFirstBug: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.FirstBug() == nil {
			t.Errorf("%v: abort (m1=3, m2=3) not found in %d runs", s, rep.Runs)
		}
	}
}

func TestFrontierStopsAtMaxRuns(t *testing.T) {
	prog := compile(t, `
int f(int x, int y) {
    if (x * y == 123456789) abort();
    return 0;
}
`)
	for _, s := range []Strategy{BFS, RandomBranch} {
		rep, err := Run(prog, Options{Toplevel: "f", MaxRuns: 25, Seed: 1, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Runs > 25 {
			t.Errorf("%v: %d runs exceeds budget", s, rep.Runs)
		}
		if rep.Complete {
			t.Errorf("%v: non-linear program claimed complete", s)
		}
	}
}

func TestSwitchDispatchSolved(t *testing.T) {
	// Each case label is one equality branch site; the directed search
	// must reach the abort buried behind a two-level switch dispatch.
	prog := compile(t, `
int route(int cmd, int sub) {
    switch (cmd) {
    case 1001:
        switch (sub) {
        case 42:
            abort();
        case 43:
            return 2;
        }
        return 1;
    case 2002:
        return 3;
    default:
        return 0;
    }
    return -1;
}
`)
	rep, err := Run(prog, Options{Toplevel: "route", MaxRuns: 50, Seed: 1, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("switch-guarded abort not found in %d runs", rep.Runs)
	}
	if bug.Inputs["d0.cmd"] != 1001 || bug.Inputs["d0.sub"] != 42 {
		t.Errorf("inputs %v", bug.Inputs)
	}
	// And the whole dispatch tree is sweepable.
	full, err := Run(prog, Options{Toplevel: "route", MaxRuns: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Coverage.Fraction() != 1.0 {
		t.Errorf("switch coverage %.2f", full.Coverage.Fraction())
	}
}
