// Supervision of the directed search: wall-clock deadlines,
// cooperative cancellation, and panic isolation.
//
// The paper's headline workloads — auditing all 600+ exported oSIP
// functions, multi-day SGLIB searches — only work unattended if a hung,
// diverging, or internally-faulting search cannot take down the batch.
// Every entry point of this package is therefore time-bounded (the
// machine polls the deadline every few thousand instructions),
// cancellable, and panic-isolated: an internal fault becomes a
// structured InternalError diagnostic on the report, completeness is
// cleared, and the search continues with fresh randoms — or, when the
// fault is persistent, stops gracefully with StopInternal.  Found bugs
// stay sound either way (Theorem 1(a) is per-bug: each reported input
// vector still replays to its error).
package concolic

import (
	"fmt"
	"time"

	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/solver"
	"dart/internal/symbolic"
)

// maxInternalFaults bounds how many isolated panics a single search
// tolerates before giving up: a fault that recurs on every fresh random
// restart is persistent, and retrying forever would burn the whole run
// budget producing identical diagnostics.
const maxInternalFaults = 8

// tripped polls the engine's cancel channel and deadline.
func (e *engine) tripped() (StopReason, bool) {
	return tripped(e.deadline, e.opts.Cancel)
}

// tripped reports whether a supervised search must stop now, and why.
// Cancellation wins over the deadline when both have tripped.
func tripped(deadline time.Time, cancel <-chan struct{}) (StopReason, bool) {
	if cancel != nil {
		select {
		case <-cancel:
			return StopCancelled, true
		default:
		}
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return StopDeadline, true
	}
	return "", false
}

// interruptReason maps a machine-level Interrupted outcome back to the
// supervisor condition that caused it.
func (e *engine) interruptReason() StopReason {
	if reason, stop := e.tripped(); stop {
		return reason
	}
	// The deadline was observed inside the machine but the clock moved;
	// attribute to the deadline, the only other interrupt source.
	return StopDeadline
}

// runIsolated executes oneRun behind a recover barrier, converting
// machine-construction failures and internal panics into structured
// InternalError diagnostics instead of crashing the process.
func (e *engine) runIsolated() (m *machine.Machine, rerr *machine.RunError, fault *InternalError) {
	defer func() {
		if r := recover(); r != nil {
			fault = &InternalError{
				Phase:  "run",
				Msg:    fmt.Sprintf("panic: %v", r),
				Run:    e.report.Runs + 1,
				Inputs: copyIM(e.im),
			}
			m, rerr = nil, nil
		}
	}()
	var err error
	m, rerr, err = e.oneRun()
	if err != nil {
		fault = &InternalError{
			Phase:  "init",
			Msg:    err.Error(),
			Run:    e.report.Runs + 1,
			Inputs: copyIM(e.im),
		}
		m, rerr = nil, nil
	}
	return m, rerr, fault
}

// noteFault records an internal fault and reports whether the search may
// continue with fresh randoms.  Machine-construction failures are
// deterministic (they precede any input-dependent behavior), so they
// stop the search immediately, as does an accumulation of repeated
// faults; either way Stopped is set to StopInternal.
func (e *engine) noteFault(f *InternalError) bool {
	e.report.InternalErrors = append(e.report.InternalErrors, *f)
	if f.Phase == "run" {
		// The faulting execution consumed real work; count it against the
		// run budget so a persistent fault cannot loop unboundedly.
		e.report.Runs++
	}
	if f.Phase == "init" || len(e.report.InternalErrors) >= maxInternalFaults {
		e.report.Stopped = StopInternal
		return false
	}
	return true
}

// solveIsolated calls the constraint solver under the configured work
// budget and behind a recover barrier.  A solver panic is reported as an
// InternalError, clears SolverComplete (the branch's feasibility is now
// unknown), and is answered as Unsat so the caller marks the branch done
// and keeps searching.  It meters each solve into the search metrics:
// wall-clock latency, work units consumed, and the per-verdict counters.
func (e *engine) solveIsolated(pc []symbolic.Pred) (sol map[symbolic.Var]int64, verdict solver.Verdict, work int64) {
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			e.report.InternalErrors = append(e.report.InternalErrors, InternalError{
				Phase:  "solver",
				Msg:    fmt.Sprintf("panic: %v", r),
				Run:    e.report.Runs,
				Inputs: copyIM(e.im),
			})
			e.report.SolverComplete = false
			sol, verdict = nil, solver.Unsat
		}
		if e.metrics == nil {
			return
		}
		e.metrics.Observe(obs.HSolverLatencyUS, time.Since(start).Microseconds())
		e.metrics.Observe(obs.HSolverWork, work)
		switch verdict {
		case solver.Sat:
			e.metrics.Add(obs.CSolverSat, 1)
		case solver.BudgetExhausted:
			e.metrics.Add(obs.CSolverBudget, 1)
		default:
			e.metrics.Add(obs.CSolverUnsat, 1)
		}
	}()
	var stats solver.Stats
	sol, verdict, stats = solver.SolveWorkStats(pc, e.meta, e.hint(), e.opts.SolverBudget)
	work = stats.Work
	return sol, verdict, work
}

// searchComplete reports whether an exhausted execution tree proves
// Theorem 1(b).  Beyond the paper's all_linear/all_locs_definite flags,
// completeness also requires that no bug truncated a path, no solve was
// abandoned on budget exhaustion, and no internal fault skipped part of
// the space.
func (e *engine) searchComplete() bool {
	return e.report.AllLinear && e.report.AllLocsDefinite &&
		e.report.SolverComplete &&
		len(e.report.Bugs) == 0 && len(e.report.InternalErrors) == 0
}
