// Supervision of the directed search: wall-clock deadlines,
// cooperative cancellation, and panic isolation.
//
// The paper's headline workloads — auditing all 600+ exported oSIP
// functions, multi-day SGLIB searches — only work unattended if a hung,
// diverging, or internally-faulting search cannot take down the batch.
// Every entry point of this package is therefore time-bounded (the
// machine polls the deadline every few thousand instructions),
// cancellable, and panic-isolated: an internal fault becomes a
// structured InternalError diagnostic on the report, completeness is
// cleared, and the search continues with fresh randoms — or, when the
// fault is persistent, stops gracefully with StopInternal.  Found bugs
// stay sound either way (Theorem 1(a) is per-bug: each reported input
// vector still replays to its error).
package concolic

import (
	"fmt"
	"time"

	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/solver"
	"dart/internal/symbolic"
)

// maxInternalFaults bounds how many isolated panics a single search
// tolerates before giving up: a fault that recurs on every fresh random
// restart is persistent, and retrying forever would burn the whole run
// budget producing identical diagnostics.
const maxInternalFaults = 8

// tripped polls the engine's cancel channel and deadline.
func (e *engine) tripped() (StopReason, bool) {
	return tripped(e.deadline, e.opts.Cancel)
}

// tripped reports whether a supervised search must stop now, and why.
// Cancellation wins over the deadline when both have tripped.
func tripped(deadline time.Time, cancel <-chan struct{}) (StopReason, bool) {
	if cancel != nil {
		select {
		case <-cancel:
			return StopCancelled, true
		default:
		}
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return StopDeadline, true
	}
	return "", false
}

// interruptReason maps a machine-level Interrupted outcome back to the
// supervisor condition that caused it.
func (e *engine) interruptReason() StopReason {
	if reason, stop := e.tripped(); stop {
		return reason
	}
	// The deadline was observed inside the machine but the clock moved;
	// attribute to the deadline, the only other interrupt source.
	return StopDeadline
}

// runIsolated executes oneRun behind a recover barrier, converting
// machine-construction failures and internal panics into structured
// InternalError diagnostics instead of crashing the process.
func (e *engine) runIsolated() (m *machine.Machine, rerr *machine.RunError, fault *InternalError) {
	if e.prof != nil {
		// One fused span per run: the machine evaluates the concrete
		// execution and its symbolic shadow in the same instruction
		// loop, so splitting them would need per-instruction hooks.
		t0 := time.Now()
		defer func() { e.prof.Span(obs.SpanExec, time.Since(t0)) }()
	}
	defer func() {
		if r := recover(); r != nil {
			fault = &InternalError{
				Phase:  "run",
				Msg:    fmt.Sprintf("panic: %v", r),
				Run:    e.report.Runs + 1,
				Inputs: copyIM(e.im),
			}
			m, rerr = nil, nil
		}
	}()
	var err error
	m, rerr, err = e.oneRun()
	if err != nil {
		fault = &InternalError{
			Phase:  "init",
			Msg:    err.Error(),
			Run:    e.report.Runs + 1,
			Inputs: copyIM(e.im),
		}
		m, rerr = nil, nil
	}
	if m != nil {
		// Shadow-evaluation count: the taint bitmap's pay-as-you-go
		// measure (zero on fully concrete programs under the compiled
		// engine).
		e.prof.AddCount(obs.SpanShadow, m.ShadowEvals())
	}
	return m, rerr, fault
}

// noteFault records an internal fault and reports whether the search may
// continue with fresh randoms.  Machine-construction failures are
// deterministic (they precede any input-dependent behavior), so they
// stop the search immediately, as does an accumulation of repeated
// faults; either way Stopped is set to StopInternal.  Parallel workers
// count faults against one shared budget — a fault storm hitting every
// worker is the same persistent failure a sequential search would see.
func (e *engine) noteFault(f *InternalError) bool {
	e.report.InternalErrors = append(e.report.InternalErrors, *f)
	if f.Phase == "run" {
		// The faulting execution consumed real work; count it against the
		// run budget so a persistent fault cannot loop unboundedly.
		e.report.Runs++
	}
	faults := len(e.report.InternalErrors)
	if e.shared != nil {
		faults = e.shared.addFault()
	}
	if f.Phase == "init" || faults >= maxInternalFaults {
		e.report.Stopped = StopInternal
		return false
	}
	return true
}

// solveIsolated answers one path-constraint solve for the engines
// (classic stack and frontier) through the solver fast path, under the
// configured work budget and behind a recover barrier.  A solver panic
// is reported as an InternalError, clears SolverComplete (the branch's
// feasibility is now unknown), and is answered as Unsat so the caller
// marks the branch done and keeps searching.
//
// The fast path runs in three steps, identical whether the cache is on
// or off so a fixed seed produces the identical Report at any setting:
//
//  1. Slice: reduce pc to the connected component of its final
//     (negated) predicate, in pc's own order; the pruned predicates
//     depend only on variables the solve will not touch, whose concrete
//     parent-run values IM + IM' preserves.
//  2. Solve the slice — from the cache when an identical (slice, hint)
//     key was solved before this search, else the solver, memoizing the
//     slice-level result.  The key renders the exact solver input, so a
//     hit returns precisely what the fresh solve would.  The cache sits
//     out a search's first solveCacheWarmup solves (counted as misses),
//     keeping the fast path free for tiny searches.
//  3. When slicing pruned predicates, verify a Sat model against the
//     *full* original conjunction with overflow-checked evaluation
//     (downgrading to Unsat on failure), cached or fresh —
//     re-establishing the solver package's soundness contract at the
//     full-conjunction level.  An unpruned solve needs no second pass:
//     the solver's own final verification already covered the whole
//     conjunction.
//
// A cached BudgetExhausted verdict still clears SolverComplete at the
// call site, exactly like a fresh one.  Each actual solve is metered
// into the search metrics: wall-clock latency, work units consumed, and
// the per-verdict counters; cache hits report zero work and skip the
// latency/work histograms (they measure the solver, not the memo).
// solveCacheWarmup is the number of solver calls a search performs
// before its solve cache engages.  Searches this short re-solve nothing,
// so consulting and filling the memo would be pure overhead; longer
// searches lose at most this many potential hits (each warmup-era key is
// memoized on its second occurrence instead of its first).
const solveCacheWarmup = 8

func (e *engine) solveIsolated(pc []symbolic.Pred, depth int) (sol map[symbolic.Var]int64, verdict solver.Verdict, work int64) {
	e.lastSolve = solveInfo{}
	defer func() {
		if r := recover(); r != nil {
			e.report.InternalErrors = append(e.report.InternalErrors, InternalError{
				Phase:  "solver",
				Msg:    fmt.Sprintf("panic: %v", r),
				Run:    e.report.Runs,
				Inputs: copyIM(e.im),
			})
			e.report.SolverComplete = false
			sol, verdict, work = nil, solver.Unsat, 0
			e.countVerdict(verdict)
		}
	}()

	hint := e.hint()
	var t0 time.Time
	if e.prof != nil {
		t0 = time.Now()
	}
	if e.ufbuf == nil {
		e.ufbuf = map[symbolic.Var]symbolic.Var{}
	}
	slice, pruned := solver.CanonicalSliceScratch(pc, e.ufbuf)
	if e.prof != nil {
		e.prof.Span(obs.SpanSlice, time.Since(t0))
	}
	if pruned > 0 {
		e.report.SlicedPreds += int64(pruned)
		e.metrics.Add(obs.CSlicedPreds, int64(pruned))
		e.lastSolve.sliced = pruned
	}

	var key string
	useCache := e.cache != nil && e.report.SolverCalls > solveCacheWarmup
	if useCache {
		if e.prof != nil {
			t0 = time.Now()
		}
		key = solver.CacheKey(slice, hint)
		hit, ok := e.cache.Get(key)
		if e.prof != nil {
			e.prof.Span(obs.SpanCacheLookup, time.Since(t0))
		}
		if ok {
			e.report.SolveCacheHits++
			e.metrics.Add(obs.CSolveCacheHits, 1)
			e.lastSolve.cache = "hit"
			sol, verdict = hit.Model, hit.Verdict
			if verdict == solver.Unsat && e.exp != nil {
				e.lastSolve.unsatSlice = symbolic.PathConstraint(slice).StringNamed(e.varName)
			}
			if verdict == solver.Sat && pruned > 0 && !e.verifyTimed(pc, sol, hint) {
				sol, verdict = nil, solver.Unsat
				e.report.SolverComplete = false
			}
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.SolveCacheHit, Run: e.report.Runs,
					Depth: depth, PCLen: len(slice), Verdict: verdict.String()})
			}
			e.countVerdict(verdict)
			return sol, verdict, 0
		}
	}
	// The in-memory LRU came up cold (warmup era, disabled, or a genuine
	// miss): consult the persistent disk layer before paying for a fresh
	// solve.  Its key renders the exact solver input — predicates, domains,
	// hint, budget — under stable input names, so a hit returns precisely
	// what the fresh solve would, across searches and across processes.
	var pkey string
	if e.persist != nil {
		if e.prof != nil {
			t0 = time.Now()
		}
		pkey = solver.PortableKey(slice, hint, e.opts.SolverBudget, e.varName, e.meta)
		pr, ok := e.persist.GetPortable(pkey)
		var psol map[symbolic.Var]int64
		if ok {
			psol, ok = e.portableModel(pr.Model)
		}
		if e.prof != nil {
			e.prof.Span(obs.SpanCacheLookup, time.Since(t0))
		}
		if ok {
			e.report.SolveCacheDiskHits++
			e.metrics.Add(obs.CSolveCacheDisk, 1)
			e.lastSolve.cache = "disk"
			sol, verdict = psol, pr.Verdict
			if verdict == solver.Unsat && e.exp != nil {
				e.lastSolve.unsatSlice = symbolic.PathConstraint(slice).StringNamed(e.varName)
			}
			if useCache {
				// Promote the slice-level entry into the in-memory LRU so
				// repeats within this search stay off the disk path.
				if e.cache.Put(key, verdict, sol) {
					e.report.SolveCacheEvictions++
					e.metrics.Add(obs.CSolveCacheEvicts, 1)
					e.lastSolve.evicted = true
				}
			}
			if verdict == solver.Sat && pruned > 0 && !e.verifyTimed(pc, sol, hint) {
				sol, verdict = nil, solver.Unsat
				e.report.SolverComplete = false
			}
			e.countVerdict(verdict)
			return sol, verdict, 0
		}
	}
	if e.cache != nil {
		// Both memo layers missed (during warmup a hit was impossible —
		// that still counts: the accounting answers "how often did the
		// fast path spare a solver call", and here it did not).
		e.report.SolveCacheMisses++
		e.metrics.Add(obs.CSolveCacheMisses, 1)
		e.lastSolve.cache = "miss"
	}

	var start time.Time
	if e.metrics != nil || e.prof != nil {
		start = time.Now()
	}
	var stats solver.Stats
	sol, verdict, stats = solver.SolveWorkStats(slice, e.meta, hint, e.opts.SolverBudget)
	work = stats.Work
	if verdict == solver.Unsat && e.exp != nil {
		e.lastSolve.unsatSlice = symbolic.PathConstraint(slice).StringNamed(e.varName)
	}
	if e.prof != nil {
		d := time.Since(start)
		e.prof.Span(obs.SpanSolve, d)
		e.lastSolve.solveNS = int64(d)
	}
	if useCache {
		// Memoize the slice-level result (pre-verification: the pruned
		// predicates of *this* pc play no part in the entry, so the entry
		// is valid for any future pc producing the same slice and hint).
		if e.cache.Put(key, verdict, sol) {
			e.report.SolveCacheEvictions++
			e.metrics.Add(obs.CSolveCacheEvicts, 1)
			e.lastSolve.evicted = true
		}
	}
	if e.persist != nil {
		// Persist the same slice-level result under the portable key
		// (already rendered by the failed lookup above) so the next
		// process inherits this solve.
		e.persist.PutPortable(pkey, verdict, e.namedModel(sol))
	}
	if verdict == solver.Sat && pruned > 0 && !e.verifyTimed(pc, sol, hint) {
		// The slice's model fails the full conjunction under
		// overflow-checked evaluation: the parent run's concrete values
		// reached here through a wrap the solver's exact arithmetic
		// cannot express.  The branch's feasibility is unknown, not
		// refuted — answer Unsat so the search moves on, but clear
		// SolverComplete: Theorem 1(b) no longer holds.
		sol, verdict = nil, solver.Unsat
		e.report.SolverComplete = false
	}
	if e.metrics != nil {
		e.metrics.Observe(obs.HSolverLatencyUS, time.Since(start).Microseconds())
		e.metrics.Observe(obs.HSolverWork, work)
	}
	e.countVerdict(verdict)
	return sol, verdict, work
}

// portableModel translates a persistent-cache model (keyed by stable
// input names) into this search's Var numbering.  A name this search has
// not registered means the entry cannot be applied here (it should not
// happen — the portable key renders exactly the slice's variables — but
// a corrupt or adversarial store must degrade to a miss, never to a
// wrong model), so ok is false and the caller solves fresh.
func (e *engine) portableModel(m map[string]int64) (map[symbolic.Var]int64, bool) {
	if m == nil {
		return nil, true
	}
	out := make(map[symbolic.Var]int64, len(m))
	for name, val := range m {
		v, ok := e.regs.lookup(name)
		if !ok {
			return nil, false
		}
		out[v] = val
	}
	return out, true
}

// namedModel renders a solver model under stable input-key names, the
// form the persistent cache stores.
func (e *engine) namedModel(sol map[symbolic.Var]int64) map[string]int64 {
	if sol == nil {
		return nil
	}
	out := make(map[string]int64, len(sol))
	for v, val := range sol {
		out[e.regs.keyOf(v)] = val
	}
	return out
}

// verifyTimed is VerifyAssignment under the profiler's verify span (a
// plain passthrough when profiling is off).
func (e *engine) verifyTimed(pc []symbolic.Pred, sol, hint map[symbolic.Var]int64) bool {
	if e.verifybuf == nil {
		e.verifybuf = map[symbolic.Var]int64{}
	}
	if e.prof == nil {
		return solver.VerifyAssignmentScratch(pc, e.meta, sol, hint, e.verifybuf)
	}
	t0 := time.Now()
	ok := solver.VerifyAssignmentScratch(pc, e.meta, sol, hint, e.verifybuf)
	e.prof.Span(obs.SpanVerify, time.Since(t0))
	return ok
}

// solveInfo is the fast-path telemetry of the engine's most recent
// solveIsolated call, attached by the call sites to the SolverVerdict
// trace event so a live event-stream consumer (obs.LiveMetrics) can
// reconstruct the slicing and cache counters of the final report.
type solveInfo struct {
	// sliced is the number of predicates independence slicing pruned.
	sliced int
	// cache is the solve cache's disposition: "hit", "miss", or "" when
	// the cache is disabled.
	cache string
	// evicted reports that memoizing this solve evicted the LRU entry.
	evicted bool
	// solveNS is the wall time of the solver call proper (zero for
	// cache hits and when profiling is off) — profiler-only telemetry,
	// never emitted as an event.
	solveNS int64
	// unsatSlice is the genuine-unsat infeasibility proof for the
	// coverage explainer: the solved slice rendered with stable input-key
	// variable names (Var numbering is first-use order and races across
	// parallel workers; key names do not).  Empty unless the explainer
	// is on and the solver itself answered Unsat — verdicts downgraded
	// to Unsat by post-solve verification or panic recovery are not
	// proofs and leave it empty.
	unsatSlice string
}

// verdictEvent builds the SolverVerdict event for the engine's most
// recent solve, carrying its fast-path telemetry.
func (e *engine) verdictEvent(depth int, verdict solver.Verdict, work int64) obs.Event {
	return obs.Event{
		Kind: obs.SolverVerdict, Run: e.report.Runs, Depth: depth,
		Verdict: verdict.String(), Work: work,
		Sliced: e.lastSolve.sliced, Cache: e.lastSolve.cache,
		CacheEvict: e.lastSolve.evicted,
	}
}

// countVerdict meters one finished solve (fresh or cached) into the
// per-verdict counters.
func (e *engine) countVerdict(v solver.Verdict) {
	switch v {
	case solver.Sat:
		e.metrics.Add(obs.CSolverSat, 1)
	case solver.BudgetExhausted:
		e.metrics.Add(obs.CSolverBudget, 1)
	default:
		e.metrics.Add(obs.CSolverUnsat, 1)
	}
}

// searchComplete reports whether an exhausted execution tree proves
// Theorem 1(b).  Beyond the paper's all_linear/all_locs_definite flags,
// completeness also requires that no bug truncated a path, no solve was
// abandoned on budget exhaustion, and no internal fault skipped part of
// the space.
func (e *engine) searchComplete() bool {
	return reportComplete(e.report)
}

// reportComplete is searchComplete over an explicit report — the merged
// report of a parallel search uses it directly.
func reportComplete(r *Report) bool {
	return r.AllLinear && r.AllLocsDefinite &&
		r.SolverComplete && r.Mispredicts == 0 &&
		len(r.Bugs) == 0 && len(r.InternalErrors) == 0
}
