// Package concolic implements DART's directed search: the run_DART
// driver of Fig. 2, the stack bookkeeping of Fig. 4, and the
// solve_path_constraint procedure of Fig. 5.
//
// The engine repeatedly executes the program under test on the machine
// (concrete + symbolic), records the branch sequence, and after each run
// negates the deepest (or, per strategy, another) unexplored branch
// predicate, solving the path-constraint prefix for the next input
// vector.  Inputs not involved in the constraint keep their previous
// values (IM + IM').  Mispredicted executions clear forcing_ok and
// restart the search from a fresh random input vector; non-linear
// expressions and input-dependent dereferences clear the completeness
// flags, in which case exhausting the search space no longer proves full
// path coverage.
package concolic

import (
	"errors"
	"fmt"
	"time"

	"dart/internal/coverage"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/rng"
	"dart/internal/solver"
	"dart/internal/symbolic"
	"dart/internal/token"
)

// Strategy selects which unexplored branch to force next (the paper's
// footnote 4: depth-first by default, but the next branch "could be
// selected using a different strategy, e.g., randomly or in a
// breadth-first manner").
type Strategy int

// Strategies.
const (
	DFS Strategy = iota
	BFS
	RandomBranch
)

func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case RandomBranch:
		return "random-branch"
	}
	return "unknown"
}

// Options configures a directed search.
type Options struct {
	// Toplevel is the function under test (its arguments are inputs).
	Toplevel string
	// Depth is how many times the toplevel function is called per run
	// with fresh inputs (the paper's depth parameter). Default 1.
	Depth int
	// MaxRuns bounds the number of program executions. Default 10000.
	MaxRuns int
	// MaxSteps bounds each execution (non-termination watchdog).
	MaxSteps int64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Strategy picks the branch-selection order. Default DFS.
	Strategy Strategy
	// StopAtFirstBug ends the search at the first error, like the
	// paper's exit(); otherwise the search continues and collects every
	// distinct bug it can reach.
	StopAtFirstBug bool
	// ReportStepLimit treats step-budget exhaustion as a bug (the
	// paper's non-termination detection). Default false.
	ReportStepLimit bool
	// DisableShapeSearch turns off the systematic exploration of pointer
	// input shapes (Decision records); shapes are then chosen by random
	// coin toss only, exactly as in the paper's random_init.
	DisableShapeSearch bool
	// MaxShapeDepth caps how deep the shape search may grow recursive
	// inputs (counted in pointer indirections); deeper shapes still
	// occur randomly but are not forced. Default 6.
	MaxShapeDepth int
	// MaxFrontier bounds the pending-flip work list of the BFS and
	// RandomBranch strategies (the DFS strategy uses the paper's O(depth)
	// stack and ignores it). Default 32768.
	MaxFrontier int
	// LibImpls supplies library black boxes (defaults to machine.StdLibImpls).
	LibImpls map[string]machine.LibImpl
	// Timeout bounds the whole search in wall-clock time.  A tripped
	// deadline ends the search with a partial Report (Stopped =
	// StopDeadline), never an error; the check is amortized inside the
	// machine's step loop, so even a single diverging run is interrupted.
	// Zero means no deadline.
	Timeout time.Duration
	// Cancel, when non-nil, cancels the search as soon as it is closed
	// (Stopped = StopCancelled).  Like Timeout, cancellation yields a
	// partial Report, not an error.
	Cancel <-chan struct{}
	// SolverBudget bounds the work of each constraint solve (in solver
	// work units; see solver.SolveWork).  On exhaustion the branch is
	// abandoned and Report.SolverComplete is cleared, degrading the
	// search toward random testing instead of hanging.  Default
	// solver.DefaultWork.
	SolverBudget int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Depth <= 0 {
		out.Depth = 1
	}
	if out.MaxRuns <= 0 {
		out.MaxRuns = 10000
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = machine.DefaultMaxSteps
	}
	if out.LibImpls == nil {
		out.LibImpls = machine.StdLibImpls()
	}
	if out.MaxShapeDepth <= 0 {
		out.MaxShapeDepth = 6
	}
	if out.MaxFrontier <= 0 {
		out.MaxFrontier = 1 << 15
	}
	if out.SolverBudget <= 0 {
		out.SolverBudget = solver.DefaultWork
	}
	return out
}

// StopReason explains why a search ended.
type StopReason string

// Stop reasons.
const (
	// StopExhausted: the directed search ran out of branches to flip —
	// the execution tree is exhausted (if every completeness flag is
	// intact this is Theorem 1(b), reported as Report.Complete).
	StopExhausted StopReason = "exhausted"
	// StopMaxRuns: the MaxRuns execution budget was consumed.
	StopMaxRuns StopReason = "max-runs"
	// StopDeadline: Options.Timeout elapsed.
	StopDeadline StopReason = "deadline"
	// StopCancelled: Options.Cancel was closed.
	StopCancelled StopReason = "cancelled"
	// StopFirstBug: StopAtFirstBug ended the search at the first error.
	StopFirstBug StopReason = "first-bug"
	// StopInternal: the engine itself failed persistently (machine
	// construction error, or repeated internal panics).
	StopInternal StopReason = "internal-error"
)

// InternalError is a fault of the testing engine itself — an internal
// panic or a machine-construction failure — converted into a diagnostic
// instead of crashing the process.  It always clears Report.Complete:
// found bugs stay sound (each still replays, Theorem 1(a)), but the
// faulting portion of the search space was not covered.
type InternalError struct {
	// Phase locates the fault: "init" (machine construction), "run"
	// (panic while executing the program under test), or "solver" (panic
	// inside constraint solving).
	Phase string
	// Msg is the panic value or error text.
	Msg string
	// Run is the 1-based run index the fault occurred on (0 for faults
	// before the first run).
	Run int
	// Inputs is the input vector that was driving the faulting run or
	// solve, recorded for replay.
	Inputs map[string]int64
}

func (e InternalError) String() string {
	return fmt.Sprintf("internal error (%s, run %d): %s", e.Phase, e.Run, e.Msg)
}

// Bug is one distinct error found during the search.
type Bug struct {
	Kind machine.Outcome // Aborted, Crashed, or StepLimit
	Msg  string
	Pos  token.Pos
	// Run is the 1-based run index that first exposed the bug.
	Run int
	// Inputs is the input vector that triggers the bug: input key to
	// concrete value (pointer inputs: 0 = NULL, 1 = allocated).
	Inputs map[string]int64
}

func (b Bug) String() string {
	return fmt.Sprintf("[%s] %s at %s (run %d)", b.Kind, b.Msg, b.Pos, b.Run)
}

// Report summarizes a directed search.
type Report struct {
	// Runs is the number of program executions performed.
	Runs int
	// Bugs are the distinct errors found, in discovery order.
	Bugs []Bug
	// Complete is true when the search exhausted every feasible path
	// with all completeness flags intact: by Theorem 1(b), the program
	// has no reachable abort (modulo the checked error classes).
	Complete bool
	// AllLinear / AllLocsDefinite are the accumulated completeness flags.
	AllLinear       bool
	AllLocsDefinite bool
	// Restarts counts fresh random restarts forced by mispredictions.
	Restarts int
	// Steps is the total instruction count across runs.
	Steps int64
	// Coverage accumulates branch coverage over all runs.
	Coverage *coverage.Set
	// SolverCalls and SolverFailures count constraint-solving activity.
	SolverCalls    int
	SolverFailures int
	// Stopped records why the search ended; a tripped deadline or a
	// cancellation produces a partial report with the matching reason,
	// never an error.
	Stopped StopReason
	// SolverComplete is false when at least one constraint solve was
	// abandoned on budget exhaustion (or an internal solver fault): the
	// abandoned branch may have been feasible, so exhausting the tree no
	// longer proves full path coverage.
	SolverComplete bool
	// InternalErrors are faults of the engine itself, isolated per run
	// and per solve so the search could continue (or stop gracefully)
	// instead of crashing the process.
	InternalErrors []InternalError
}

// FirstBug returns the first bug or nil.
func (r *Report) FirstBug() *Bug {
	if len(r.Bugs) == 0 {
		return nil
	}
	return &r.Bugs[0]
}

// stackEntry is the paper's (branch, done) record.
type stackEntry struct {
	branch bool
	done   bool
}

// varInfo describes a registered input variable.
type varInfo struct {
	key  string
	meta solver.VarMeta
}

// engine is the state of one directed search.
type engine struct {
	prog *ir.Prog
	opts Options
	rand *rng.R

	// deadline is the absolute wall-clock bound (zero = none).
	deadline time.Time

	// Input registry: stable across runs.
	varByKey map[string]symbolic.Var
	vars     []varInfo

	// im is the current input vector (key -> value/decision).
	im map[string]int64

	// Per-run state.
	stack      []stackEntry
	k          int
	forcingOK  bool
	mispredict bool

	report *Report
}

var errMispredicted = errors.New("execution diverged from predicted branch")

// Run performs the directed search over prog.
func Run(prog *ir.Prog, opts Options) (*Report, error) {
	o := opts.withDefaults()
	if _, ok := prog.Lookup(o.Toplevel); !ok {
		return nil, fmt.Errorf("concolic: toplevel function %q is not defined in the program", o.Toplevel)
	}
	e := &engine{
		prog:     prog,
		opts:     o,
		rand:     rng.New(o.Seed),
		varByKey: map[string]symbolic.Var{},
		im:       map[string]int64{},
		report: &Report{
			AllLinear:       true,
			AllLocsDefinite: true,
			SolverComplete:  true,
			Coverage:        coverage.New(prog.NumSites),
		},
	}
	if o.Timeout > 0 {
		e.deadline = time.Now().Add(o.Timeout)
	}
	if o.Strategy == DFS {
		e.search()
	} else {
		// Non-depth-first flip orders are unsound with the single-stack
		// bookkeeping (flipping a shallow entry abandons the pending
		// subtree of the original branch), so they run on the
		// generational frontier engine instead; see frontier.go.
		e.runFrontier()
	}
	if e.report.Stopped == "" {
		e.report.Stopped = StopMaxRuns
	}
	return e.report, nil
}

// search is run_DART (Fig. 2).
func (e *engine) search() {
	seenBugs := map[string]bool{}

	for e.report.Runs < e.opts.MaxRuns {
		// Outer repeat: fresh random input vector, empty stack.
		e.stack = nil
		e.im = map[string]int64{}
		if e.report.Runs > 0 {
			e.report.Restarts++
		}

		directed, restart := true, false
		for directed && !restart && e.report.Runs < e.opts.MaxRuns {
			if reason, stop := e.tripped(); stop {
				e.report.Stopped = reason
				return
			}
			m, rerr, fault := e.runIsolated()
			if fault != nil {
				if !e.noteFault(fault) {
					return // persistent internal failure; Stopped is set
				}
				// The faulting subtree cannot be searched; restart with
				// fresh randoms and keep going.
				restart = true
				continue
			}
			e.report.Runs++
			e.report.Steps += m.Steps()
			if !m.AllLinear() {
				e.report.AllLinear = false
			}
			if !m.AllLocsDefinite() {
				e.report.AllLocsDefinite = false
			}
			for _, rec := range m.Branches {
				if rec.Site >= 0 {
					e.report.Coverage.Record(rec.Site, rec.Taken)
				}
			}

			if e.mispredict {
				// Fig. 4 raised: forcing_ok was cleared.  Restart the
				// outer loop with fresh random inputs.
				e.forcingOK = true
				restart = true
				continue
			}

			if rerr != nil && rerr.Outcome == machine.Interrupted {
				// Deadline or cancellation tripped mid-run: end the
				// search with what was gathered so far.
				e.report.Stopped = e.interruptReason()
				return
			}

			if rerr != nil && rerr.Outcome != machine.HaltOK {
				isBug := rerr.Outcome == machine.Aborted || rerr.Outcome == machine.Crashed ||
					(rerr.Outcome == machine.StepLimit && e.opts.ReportStepLimit)
				if isBug {
					sig := fmt.Sprintf("%s|%s|%s", rerr.Outcome, rerr.Msg, rerr.Pos)
					if !seenBugs[sig] {
						seenBugs[sig] = true
						e.report.Bugs = append(e.report.Bugs, Bug{
							Kind:   rerr.Outcome,
							Msg:    rerr.Msg,
							Pos:    rerr.Pos,
							Run:    e.report.Runs,
							Inputs: copyIM(e.im),
						})
					}
					if e.opts.StopAtFirstBug {
						e.report.Stopped = StopFirstBug
						return
					}
				}
				if rerr.Outcome == machine.StepLimit && !e.opts.ReportStepLimit {
					// A non-terminating path cannot be extended reliably;
					// restart from fresh randoms.
					restart = true
					continue
				}
			}

			// Fig. 5: pick the next branch to force and solve for inputs.
			directed = e.solveNext(m.Branches)
		}

		if restart {
			continue
		}
		if !directed {
			// Directed search exhausted the tree.  With all flags intact
			// and no abnormal run cutting a path short, this is Theorem
			// 1(b): every feasible path was exercised.  A crashed or
			// aborted run truncates its path before later conditionals,
			// so completeness cannot be claimed once a bug was found —
			// nor once a solve was abandoned on budget exhaustion or an
			// internal fault interrupted a run (see DESIGN.md,
			// "Supervision and graceful degradation").
			if e.searchComplete() {
				e.report.Complete = true
				e.report.Stopped = StopExhausted
				return
			}
			// Otherwise the paper's outer loop continues forever with
			// fresh randoms; MaxRuns bounds us.
			continue
		}
	}
}

func copyIM(im map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(im))
	for k, v := range im {
		out[k] = v
	}
	return out
}
