// Package concolic implements DART's directed search: the run_DART
// driver of Fig. 2, the stack bookkeeping of Fig. 4, and the
// solve_path_constraint procedure of Fig. 5.
//
// The engine repeatedly executes the program under test on the machine
// (concrete + symbolic), records the branch sequence, and after each run
// negates the deepest (or, per strategy, another) unexplored branch
// predicate, solving the path-constraint prefix for the next input
// vector.  Inputs not involved in the constraint keep their previous
// values (IM + IM').  Mispredicted executions clear forcing_ok and
// restart the search from a fresh random input vector; non-linear
// expressions and input-dependent dereferences clear the completeness
// flags, in which case exhausting the search space no longer proves full
// path coverage.
package concolic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dart/internal/coverage"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/rng"
	"dart/internal/solver"
	"dart/internal/symbolic"
	"dart/internal/token"
	"dart/internal/types"
)

// Strategy selects which unexplored branch to force next (the paper's
// footnote 4: depth-first by default, but the next branch "could be
// selected using a different strategy, e.g., randomly or in a
// breadth-first manner").
type Strategy int

// Strategies.
const (
	DFS Strategy = iota
	BFS
	RandomBranch
)

func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case RandomBranch:
		return "random-branch"
	}
	return "unknown"
}

// Options configures a directed search.
type Options struct {
	// Toplevel is the function under test (its arguments are inputs).
	Toplevel string
	// Depth is how many times the toplevel function is called per run
	// with fresh inputs (the paper's depth parameter). Default 1.
	Depth int
	// MaxRuns bounds the number of program executions. Default 10000.
	MaxRuns int
	// MaxSteps bounds each execution (non-termination watchdog).
	MaxSteps int64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Strategy picks the branch-selection order. Default DFS.
	Strategy Strategy
	// StopAtFirstBug ends the search at the first error, like the
	// paper's exit(); otherwise the search continues and collects every
	// distinct bug it can reach.
	StopAtFirstBug bool
	// ReportStepLimit treats step-budget exhaustion as a bug (the
	// paper's non-termination detection). Default false.
	ReportStepLimit bool
	// DisableShapeSearch turns off the systematic exploration of pointer
	// input shapes (Decision records); shapes are then chosen by random
	// coin toss only, exactly as in the paper's random_init.
	DisableShapeSearch bool
	// MaxShapeDepth caps how deep the shape search may grow recursive
	// inputs (counted in pointer indirections); deeper shapes still
	// occur randomly but are not forced. Default 6.
	MaxShapeDepth int
	// MaxFrontier bounds the pending-flip work list of the BFS and
	// RandomBranch strategies (the DFS strategy uses the paper's O(depth)
	// stack and ignores it; with Workers > 1 every strategy runs on the
	// frontier, so the bound always applies).  Overflow drops the deepest
	// pending flips, counted in Report.FrontierDropped and clearing
	// Complete. Default 32768.
	MaxFrontier int
	// Workers is the number of parallel flip-workers of the directed
	// search.  1 (the default) runs today's sequential engines unchanged.
	// N > 1 runs the work-stealing parallel frontier engine: N workers
	// pull pending flips from per-worker deques (stealing when starved),
	// each with its own machine, symbolic evaluator, and RNG stream, all
	// sharing one program, one input registry, and one sharded solve
	// cache.  Distinct pending flips are independent program runs (each
	// is re-executed from its own recorded input vector), so on searches
	// that exhaust their execution tree the bug set, branch coverage,
	// and completeness flags are identical for every Workers value; run
	// indices, input-vector padding, and cache hit rates may differ.
	// Under MaxRuns truncation different worker counts explore different
	// MaxRuns-sized subsets, exactly as different strategies do.
	Workers int
	// LibImpls supplies library black boxes (defaults to machine.StdLibImpls).
	LibImpls map[string]machine.LibImpl
	// Timeout bounds the whole search in wall-clock time.  A tripped
	// deadline ends the search with a partial Report (Stopped =
	// StopDeadline), never an error; the check is amortized inside the
	// machine's step loop, so even a single diverging run is interrupted.
	// Zero means no deadline.
	Timeout time.Duration
	// Cancel, when non-nil, cancels the search as soon as it is closed
	// (Stopped = StopCancelled).  Like Timeout, cancellation yields a
	// partial Report, not an error.
	Cancel <-chan struct{}
	// SolverBudget bounds the work of each constraint solve (in solver
	// work units; see solver.SolveWork).  On exhaustion the branch is
	// abandoned and Report.SolverComplete is cleared, degrading the
	// search toward random testing instead of hanging.  Default
	// solver.DefaultWork.
	SolverBudget int64
	// SolveCacheCap sizes the per-search solve cache of the solver fast
	// path: 0 selects solver.DefaultCacheCap, a positive value sets the
	// capacity, and a negative value disables the cache entirely (the
	// A/B baseline: every solve runs the solver).  The cache never
	// changes what a search finds — only how much solver work it spends —
	// so a fixed seed produces the identical Report at any setting.
	SolveCacheCap int
	// Observer, when non-nil, receives structured trace events (run
	// lifecycle, branch flips, solver calls, completeness fallbacks; see
	// package obs).  A nil observer costs one nil-check per event site —
	// none of which sit on the machine's per-instruction loop.  A
	// panicking observer is isolated like any other internal fault:
	// observation is disabled, an InternalError is recorded, and the
	// search continues.
	Observer obs.Sink
	// CollectMetrics populates Report.Metrics even without an Observer.
	// An attached Observer implies it.  Off by default: the registry's
	// per-search setup and snapshot, while small, are measurable on
	// sub-millisecond searches.
	CollectMetrics bool
	// CollectProfile populates Report.Profile: span-attributed wall
	// time per search phase and per-branch-site solver cost.  Unlike
	// CollectMetrics it is NOT implied by an Observer, because the
	// profile reads the clock around every run and solve; off by
	// default so the unobserved engine path stays timing-free.
	CollectProfile bool
	// CollectExplain populates Report.Explain: the coverage explainer's
	// per-branch-site cause ledger (why each uncovered direction stayed
	// dark) plus the run-indexed coverage timeline with plateau
	// detection.  Like CollectProfile it is not implied by an Observer;
	// off by default so the unobserved engine path records nothing.
	// The ledger is an exact function of the seed on tree-exhausting
	// searches — byte-identical at any Workers value — while the
	// timeline is honest schedule texture.
	CollectExplain bool
	// RecordRuns keeps a run log on the report — the (inputs → branch
	// set) pairs of every run that covered a direction no earlier kept
	// run covered (an online filter bounding the log by the program's
	// direction count).  The incremental re-audit pipeline distills the
	// log into a minimized replay suite; off by default because the kept
	// runs retain their input vectors.
	RecordRuns bool
	// Persistent, when non-nil, is the disk-backed solve memo consulted
	// on in-memory solve-cache misses and filled by fresh solves, keyed
	// portably (stable input names + domains + budget; see
	// solver.PortableKey) so entries are valid across functions,
	// searches, and processes.  Like the in-memory cache it can change
	// only how much solver work a search spends, never what it finds.
	Persistent solver.PersistentCache
	// Interpreter selects the reference tree-walking interpreter instead
	// of the default closure-threaded compiled engine.  Both produce
	// byte-identical reports (the -xcheck differential gate holds them
	// to that); the interpreter exists as the semantic reference and for
	// flushing out divergence bugs.
	Interpreter bool
	// StallWindow is the plateau window of the explainer's stall
	// detector, in completed runs: a CoverageStall event fires each time
	// coverage has not moved for a further full window.  Zero selects
	// obs.DefaultStallWindow; negative disables the detector.  Only
	// meaningful with CollectExplain.
	StallWindow int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Depth <= 0 {
		out.Depth = 1
	}
	if out.MaxRuns <= 0 {
		out.MaxRuns = 10000
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = machine.DefaultMaxSteps
	}
	if out.LibImpls == nil {
		out.LibImpls = machine.StdLibImpls()
	}
	if out.MaxShapeDepth <= 0 {
		out.MaxShapeDepth = 6
	}
	if out.MaxFrontier <= 0 {
		out.MaxFrontier = 1 << 15
	}
	if out.SolverBudget <= 0 {
		out.SolverBudget = solver.DefaultWork
	}
	if out.Workers <= 0 {
		out.Workers = 1
	}
	return out
}

// StopReason explains why a search ended.
type StopReason string

// Stop reasons.
const (
	// StopExhausted: the directed search ran out of branches to flip —
	// the execution tree is exhausted (if every completeness flag is
	// intact this is Theorem 1(b), reported as Report.Complete).
	StopExhausted StopReason = "exhausted"
	// StopMaxRuns: the MaxRuns execution budget was consumed.
	StopMaxRuns StopReason = "max-runs"
	// StopDeadline: Options.Timeout elapsed.
	StopDeadline StopReason = "deadline"
	// StopCancelled: Options.Cancel was closed.
	StopCancelled StopReason = "cancelled"
	// StopFirstBug: StopAtFirstBug ended the search at the first error.
	StopFirstBug StopReason = "first-bug"
	// StopInternal: the engine itself failed persistently (machine
	// construction error, or repeated internal panics).
	StopInternal StopReason = "internal-error"
)

// InternalError is a fault of the testing engine itself — an internal
// panic or a machine-construction failure — converted into a diagnostic
// instead of crashing the process.  It always clears Report.Complete:
// found bugs stay sound (each still replays, Theorem 1(a)), but the
// faulting portion of the search space was not covered.
type InternalError struct {
	// Phase locates the fault: "init" (machine construction), "run"
	// (panic while executing the program under test), "solver" (panic
	// inside constraint solving), or "observer" (panic inside a
	// user-supplied trace sink, after which observation is disabled).
	Phase string
	// Msg is the panic value or error text.
	Msg string
	// Run is the 1-based run index the fault occurred on (0 for faults
	// before the first run).
	Run int
	// Inputs is the input vector that was driving the faulting run or
	// solve, recorded for replay.
	Inputs map[string]int64
}

func (e InternalError) String() string {
	return fmt.Sprintf("internal error (%s, run %d): %s", e.Phase, e.Run, e.Msg)
}

// Bug is one distinct error found during the search.
type Bug struct {
	Kind machine.Outcome // Aborted, Crashed, or StepLimit
	Msg  string
	Pos  token.Pos
	// Run is the 1-based run index that first exposed the bug.
	Run int
	// Inputs is the input vector that triggers the bug: input key to
	// concrete value (pointer inputs: 0 = NULL, 1 = allocated).
	Inputs map[string]int64
}

func (b Bug) String() string {
	return fmt.Sprintf("[%s] %s at %s (run %d)", b.Kind, b.Msg, b.Pos, b.Run)
}

// Report summarizes a directed search.
type Report struct {
	// Runs is the number of program executions performed.
	Runs int
	// Bugs are the distinct errors found, in discovery order.
	Bugs []Bug
	// Complete is true when the search exhausted every feasible path
	// with all completeness flags intact: by Theorem 1(b), the program
	// has no reachable abort (modulo the checked error classes).
	Complete bool
	// AllLinear / AllLocsDefinite are the accumulated completeness flags.
	AllLinear       bool
	AllLocsDefinite bool
	// Restarts counts fresh random restarts forced by mispredictions.
	Restarts int
	// Mispredicts counts executions that diverged from the solver's
	// predicted branch (the machine wrapped where the solver's exact
	// arithmetic did not, or vice versa).  Each misprediction abandons
	// the predicted flip unexplored — the classic stack marks the branch
	// done and restarts, the frontier discards the item — so any
	// misprediction clears Complete: the execution tree was not provably
	// exhausted (Theorem 1(b)'s hypothesis failed).
	Mispredicts int
	// Steps is the total instruction count across runs.
	Steps int64
	// Coverage accumulates branch coverage over all runs.
	Coverage *coverage.Set
	// SolverCalls and SolverFailures count constraint-solving activity.
	SolverCalls    int
	SolverFailures int
	// SolveCacheHits, SolveCacheMisses, and SolveCacheEvictions count the
	// per-search solve cache's activity (all zero when the cache is
	// disabled).  SlicedPreds counts path-constraint predicates pruned by
	// independence slicing before solving.  These meter the fast path
	// only; they never influence what the search finds.
	SolveCacheHits      int
	SolveCacheMisses    int
	SolveCacheEvictions int
	SlicedPreds         int64
	// SolveCacheDiskHits counts solves answered by the persistent
	// (disk-backed) solve cache; zero unless Options.Persistent is set.
	SolveCacheDiskHits int
	// Workers is the worker-pool size the search actually ran with
	// (1 = the sequential engines).
	Workers int
	// FrontierDropped counts pending flips discarded because the
	// frontier worklist overflowed MaxFrontier.  Each dropped flip is an
	// abandoned unexplored subtree, so any drop clears Complete; the
	// count keeps the loss visible instead of silent.
	FrontierDropped int
	// Steals counts work-stealing transfers between parallel frontier
	// workers (zero for sequential searches).
	Steals int64
	// RunLog is the recorded (inputs → branch set) pairs for suite
	// distillation (nil unless Options.RecordRuns): every run that first
	// covered some branch direction, in keep order.  Never encoded to
	// JSON — it exists for internal/distill.
	RunLog []RunRecord `json:"-"`
	// Stopped records why the search ended; a tripped deadline or a
	// cancellation produces a partial report with the matching reason,
	// never an error.
	Stopped StopReason
	// SolverComplete is false when at least one constraint solve was
	// abandoned on budget exhaustion (or an internal solver fault): the
	// abandoned branch may have been feasible, so exhausting the tree no
	// longer proves full path coverage.
	SolverComplete bool
	// InternalErrors are faults of the engine itself, isolated per run
	// and per solve so the search could continue (or stop gracefully)
	// instead of crashing the process.
	InternalErrors []InternalError
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
	// Metrics is the frozen metrics registry of the search: counters and
	// fixed-bucket histograms (solver latency and Fourier–Motzkin work
	// per solve, steps per run, path-constraint length, frontier depth).
	Metrics *obs.Snapshot
	// Profile is the search's cost profile (nil unless CollectProfile):
	// per-phase wall breakdown plus per-branch-site solver time/work
	// attribution, merged across workers like the rest of the report.
	Profile *obs.ProfileSnapshot
	// Explain is the coverage explainer's raw output (nil unless
	// CollectExplain): the per-site cause ledger, merged across workers
	// like the rest of the report, plus the search's coverage timeline
	// and stall count.  Resolve it against the program's site universe
	// with ResolveExplain for the per-direction verdicts.
	Explain *obs.ExplainSnapshot
}

// FirstBug returns the first bug or nil.
func (r *Report) FirstBug() *Bug {
	if len(r.Bugs) == 0 {
		return nil
	}
	return &r.Bugs[0]
}

// stackEntry is the paper's (branch, done) record.
type stackEntry struct {
	branch bool
	done   bool
}

// flipRef locates the branch direction a solved flip targeted.
type flipRef struct {
	ok    bool
	site  int
	pos   string
	taken bool
}

// varInfo describes a registered input variable.
type varInfo struct {
	key  string
	meta solver.VarMeta
}

// engine is the state of one directed search — or, under the parallel
// frontier engine, of one worker (each worker owns an engine; they
// share the input registry, the solve cache, and the sharedSearch
// coordinator).
type engine struct {
	prog *ir.Prog
	opts Options
	rand *rng.R

	// deadline is the absolute wall-clock bound (zero = none).
	deadline time.Time

	// regs is the input registry: stable across runs, owned exclusively
	// by sequential searches and shared (internally locked) by the
	// workers of a parallel search, so symbolic variable numbering — and
	// with it solve-cache keys — is global to the search.
	regs *varRegistry

	// im is the current input vector (key -> value/decision).
	im map[string]int64

	// code is the program's closure-threaded compiled form, shared
	// read-only by all engines of a search (nil = interpreter).
	code *machine.Compiled
	// mach is this engine's pooled machine: created on the first run,
	// Reset between runs so a search's N runs reuse one allocation
	// footprint.  Never shared across engines.
	mach *machine.Machine
	// pcbuf is scratch for solveNext's path-constraint prefix.  The
	// solver consumes the slice within the call (retained artifacts —
	// cache entries, unsat-slice renderings — are copies or strings),
	// so one buffer serves every flip attempt of the search.
	pcbuf []symbolic.Pred
	// candbuf is pickBranch's candidate scratch (indices only, never
	// retained past the call).
	candbuf []int
	// hintbuf is hint's reusable assignment map: the solver reads it
	// during the solve and copies what it keeps into fresh models.
	hintbuf map[symbolic.Var]int64
	// argbuf is oneRun's reusable argument slice; RunCall copies the
	// values into the callee frame and does not retain the slice.
	argbuf []machine.Value
	// argKeys caches the per-(depth, param) input keys ("d0.x", …),
	// which are pure functions of the toplevel signature and Depth.
	argKeys [][]string
	// ufbuf and verifybuf are scratch for the solver's independence
	// slicing and full-conjunction verification (cleared on each use,
	// nothing retained across calls).
	ufbuf     map[symbolic.Var]symbolic.Var
	verifybuf map[symbolic.Var]int64

	// Per-run state.
	stack      []stackEntry
	k          int
	forcingOK  bool
	mispredict bool

	// seenBugs dedups bugs by signature within this engine; a parallel
	// search dedups across workers through shared instead.
	seenBugs map[string]bool

	// obs receives trace events (nil = no observation); metrics is the
	// always-on per-search registry snapshotted into Report.Metrics.
	obs     obs.Sink
	metrics *obs.Metrics
	// prof is the per-worker cost profiler (nil unless CollectProfile);
	// every Profile method no-ops on nil, so call sites guard only the
	// time.Now captures.
	prof *obs.Profile
	// exp is the per-worker coverage-explainer ledger (nil unless
	// CollectExplain); timeline is the search-global coverage timeline
	// the workers of one search share (internally locked, nil when the
	// explainer is off).
	exp      *obs.Explain
	timeline *obs.Timeline
	// lastFlip remembers the classic stack engine's most recent solved
	// flip target, so a misprediction on the very next run can be
	// attributed to the site whose forced path diverged (the frontier
	// engines carry the target on the item instead).
	lastFlip flipRef
	// lastTickSolves is the SolverCalls total at the previous timeline
	// tick (per-run solve deltas feed the timeline's cumulative count).
	lastTickSolves int
	// qlen reports the current pending-flip backlog for timeline
	// samples: set by the frontier engines (nil for the classic stack
	// engine, which derives its backlog from the stack).
	qlen func() int

	// worker is the 1-based parallel worker id stamped on every emitted
	// event; 0 (omitted from encodings) for sequential searches.
	worker int
	// shared coordinates the workers of a parallel search (bug dedup,
	// run budget, stop reasons); nil for sequential searches.
	shared *sharedSearch

	// cache memoizes sliced solves (nil when disabled by SolveCacheCap);
	// a *solver.Cache owned by this search, or the one *solver.ShardedCache
	// a parallel search's workers share.
	cache solver.SolveCache
	// persist is the cross-process solve memo (nil unless the search
	// runs under a corpus); consulted on in-memory misses.
	persist solver.PersistentCache
	// rec is the run log for suite distillation (nil unless RecordRuns);
	// shared, internally locked, across a parallel search's workers.
	rec *runRecorder
	// lastSolve carries fast-path telemetry from solveIsolated to the
	// SolverVerdict event its caller emits.
	lastSolve solveInfo

	report *Report
}

// varRegistry is the search-global input registry: input key to
// symbolic variable, plus each variable's solver domain.  Sequential
// searches own one outright; the parallel engine shares one across
// workers so variable numbering (and therefore predicate rendering and
// cache keys) means the same input everywhere.  Registration is
// write-rare — each distinct input key registers once per search — so a
// read-write mutex keeps the read paths (per-solve metadata, hints)
// cheap.
type varRegistry struct {
	mu    sync.RWMutex
	byKey map[string]symbolic.Var
	vars  []varInfo
}

func newVarRegistry() *varRegistry {
	// The key map is allocated on first registration, so input-less
	// searches never pay for it.
	return &varRegistry{}
}

// varOf returns (registering on first use) the variable for key.
func (r *varRegistry) varOf(key string, kind symbolic.VarKind, b *types.Basic) symbolic.Var {
	r.mu.RLock()
	v, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byKey[key]; ok {
		return v
	}
	if r.byKey == nil {
		r.byKey = map[string]symbolic.Var{}
	}
	v = symbolic.Var(len(r.vars))
	r.byKey[key] = v
	r.vars = append(r.vars, varInfo{key: key, meta: domainOf(kind, b)})
	return v
}

// snapshot returns the current registered-variable prefix.  Entries are
// immutable once appended and appends happen under the write lock, so
// the returned slice is safe to read without further locking.
func (r *varRegistry) snapshot() []varInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vars
}

// keyOf returns the input key of a registered variable.
func (r *varRegistry) keyOf(v symbolic.Var) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vars[v].key
}

// lookup resolves an input key back to its registered variable — the
// inverse of varOf, used to translate a persistent solve-cache model
// (keyed by stable input names) into this search's Var numbering.
func (r *varRegistry) lookup(key string) (symbolic.Var, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byKey[key]
	return v, ok
}

// metaOf returns the solver domain of a registered variable.
func (r *varRegistry) metaOf(v symbolic.Var) solver.VarMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vars[v].meta
}

// isPointer reports whether v identifies a pointer input.
func (r *varRegistry) isPointer(v symbolic.Var) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return int(v) < len(r.vars) && r.vars[v].meta.Kind == symbolic.PointerVar
}

var errMispredicted = errors.New("execution diverged from predicted branch")

// compileFor lowers prog once for a search's execution engines; nil
// selects the reference tree-walking interpreter.
func compileFor(prog *ir.Prog, o Options) *machine.Compiled {
	if o.Interpreter {
		return nil
	}
	return machine.Compile(prog)
}

// Run performs the directed search over prog.
func Run(prog *ir.Prog, opts Options) (*Report, error) {
	start := time.Now()
	o := opts.withDefaults()
	if _, ok := prog.Lookup(o.Toplevel); !ok {
		return nil, fmt.Errorf("concolic: toplevel function %q is not defined in the program", o.Toplevel)
	}
	if o.Workers > 1 {
		// The work-stealing parallel frontier engine; see parallel.go.
		return runParallel(prog, o, start), nil
	}
	e := &engine{
		prog:     prog,
		code:     compileFor(prog, o),
		opts:     o,
		rand:     rng.New(o.Seed),
		regs:     newVarRegistry(),
		im:       map[string]int64{},
		obs:      o.Observer,
		metrics:  newMetrics(o),
		prof:     newProfile(o, 0),
		exp:      newExplain(o, 0),
		timeline: newTimeline(o),
		report: &Report{
			AllLinear:       true,
			AllLocsDefinite: true,
			SolverComplete:  true,
			Workers:         1,
			Coverage:        coverage.New(prog.NumSites),
		},
	}
	if o.Timeout > 0 {
		e.deadline = time.Now().Add(o.Timeout)
	}
	if o.SolveCacheCap >= 0 {
		e.cache = solver.NewCache(o.SolveCacheCap)
	}
	e.persist = o.Persistent
	if o.RecordRuns {
		e.rec = newRunRecorder(prog.NumSites)
	}
	if o.Strategy == DFS {
		e.search()
	} else {
		// Non-depth-first flip orders are unsound with the single-stack
		// bookkeeping (flipping a shallow entry abandons the pending
		// subtree of the original branch), so they run on the
		// generational frontier engine instead; see frontier.go.
		e.runFrontier()
	}
	if e.report.Stopped == "" {
		e.report.Stopped = StopMaxRuns
	}
	e.finishExplain()
	e.report.RunLog = e.rec.log()
	e.report.Elapsed = time.Since(start)
	e.report.Metrics = e.metrics.Snapshot()
	e.report.Profile = e.prof.Snapshot()
	return e.report, nil
}

// finishExplain closes a sequential search's explainer: the ledger is
// frozen, the timeline stamped onto it, and the resolved reason buckets
// emitted as UncoveredReason events and mirrored into the metrics
// registry — before the registry is snapshotted, so live event-derived
// counters equal the report's.
func (e *engine) finishExplain() {
	if e.exp == nil {
		return
	}
	snap := e.exp.Snapshot()
	e.timeline.Stamp(snap)
	e.report.Explain = snap
	rep := ResolveExplain(e.prog, snap, e.report.Coverage)
	for _, reason := range obs.ReasonPrecedence {
		n := rep.Buckets[reason]
		if n == 0 {
			continue
		}
		e.metrics.Add(obs.UncoveredPrefix+reason, int64(n))
		if e.obs != nil {
			e.emit(obs.Event{Kind: obs.UncoveredReason, Run: e.report.Runs, Reason: reason, Count: n})
		}
	}
}

// ResolveExplain resolves a search's raw explain ledger against prog's
// full branch-site universe and the covered directions of cov, turning
// the cause tallies into one terminal reason per uncovered direction.
// The result is pure ledger — no timeline, no wall clock — so it is
// byte-identical across worker counts whenever the ledger is.
func ResolveExplain(prog *ir.Prog, snap *obs.ExplainSnapshot, cov *coverage.Set) *obs.ExplainReport {
	sites := coverage.ProgSites(prog)
	refs := make([]obs.ExplainSiteRef, len(sites))
	for i, s := range sites {
		refs[i] = obs.ExplainSiteRef{Site: s.Site, Fn: s.Fn, Pos: s.Pos.String()}
	}
	return snap.Resolve(refs, func(site int, taken bool) bool {
		tk, ntk := cov.Site(site)
		if taken {
			return tk
		}
		return ntk
	})
}

// search is run_DART (Fig. 2).
func (e *engine) search() {
	for e.report.Runs < e.opts.MaxRuns {
		// Outer repeat: fresh random input vector, empty stack.
		e.stack = nil
		e.im = map[string]int64{}
		e.lastFlip.ok = false
		if e.report.Runs > 0 {
			e.report.Restarts++
			e.metrics.Add(obs.CRestarts, 1)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.Restart, Run: e.report.Runs})
			}
		}

		directed, restart := true, false
		for directed && !restart && e.report.Runs < e.opts.MaxRuns {
			if reason, stop := e.tripped(); stop {
				e.report.Stopped = reason
				return
			}
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.RunStart, Run: e.report.Runs + 1})
			}
			m, rerr, fault := e.runIsolated()
			if fault != nil {
				if !e.noteFault(fault) {
					return // persistent internal failure; Stopped is set
				}
				// The faulting subtree cannot be searched; restart with
				// fresh randoms and keep going.
				restart = true
				continue
			}
			e.report.Runs++
			e.report.Steps += m.Steps()
			e.metrics.Add(obs.CRuns, 1)
			e.metrics.Observe(obs.HStepsPerRun, m.Steps())
			if !m.AllLinear() {
				e.report.AllLinear = false
				e.metrics.Add(obs.CFallbackLinear, 1)
			}
			if !m.AllLocsDefinite() {
				e.report.AllLocsDefinite = false
				e.metrics.Add(obs.CFallbackLocs, 1)
			}
			newly := 0
			for _, rec := range m.Branches {
				if rec.Site >= 0 {
					if e.report.Coverage.Record(rec.Site, rec.Taken) {
						newly++
					}
					if e.exp != nil && !rec.HasPred {
						// The unexecuted direction of a predicate-less
						// conditional can never be forced: ledger why.
						e.exp.RecordFallback(rec.Site, rec.Pos.String(), !rec.Taken, rec.Fallback)
					}
				}
			}
			e.rec.observe(e.im, m.Branches)
			e.tickTimeline(newly)
			if e.obs != nil {
				e.emit(obs.Event{Kind: obs.RunEnd, Run: e.report.Runs, Steps: m.Steps(),
					Outcome: runOutcome(rerr), Path: pathString(m.Branches)})
			}

			if e.mispredict {
				// Fig. 4 raised: forcing_ok was cleared.  Restart the
				// outer loop with fresh random inputs.
				e.report.Mispredicts++
				e.metrics.Add(obs.CMispredicts, 1)
				if e.exp != nil && e.lastFlip.ok && e.lastFlip.site >= 0 {
					// The diverged run was forcing lastFlip's direction;
					// that flip is now abandoned unexplored.
					e.exp.RecordMispredict(e.lastFlip.site, e.lastFlip.pos, e.lastFlip.taken)
				}
				if e.obs != nil {
					e.emit(obs.Event{Kind: obs.Misprediction, Run: e.report.Runs, Depth: e.k - 1})
				}
				e.forcingOK = true
				restart = true
				continue
			}

			if rerr != nil && rerr.Outcome == machine.Interrupted {
				// Deadline or cancellation tripped mid-run: end the
				// search with what was gathered so far.
				e.report.Stopped = e.interruptReason()
				return
			}

			if rerr != nil && rerr.Outcome != machine.HaltOK {
				isBug := rerr.Outcome == machine.Aborted || rerr.Outcome == machine.Crashed ||
					(rerr.Outcome == machine.StepLimit && e.opts.ReportStepLimit)
				if isBug {
					if e.claimBug(bugSig(rerr)) {
						e.report.Bugs = append(e.report.Bugs, Bug{
							Kind:   rerr.Outcome,
							Msg:    rerr.Msg,
							Pos:    rerr.Pos,
							Run:    e.report.Runs,
							Inputs: copyIM(e.im),
						})
						e.metrics.Add(obs.CBugs, 1)
						e.emit(obs.Event{Kind: obs.BugFound, Run: e.report.Runs,
							Outcome: rerr.Outcome.String(), Msg: rerr.Msg, Pos: rerr.Pos.String()})
					}
					if e.opts.StopAtFirstBug {
						e.report.Stopped = StopFirstBug
						return
					}
				}
				if rerr.Outcome == machine.StepLimit && !e.opts.ReportStepLimit {
					// A non-terminating path cannot be extended reliably;
					// restart from fresh randoms.
					restart = true
					continue
				}
			}

			// Fig. 5: pick the next branch to force and solve for inputs.
			directed = e.solveNext(m.Branches)
		}

		if restart {
			continue
		}
		if !directed {
			// Directed search exhausted the tree.  With all flags intact
			// and no abnormal run cutting a path short, this is Theorem
			// 1(b): every feasible path was exercised.  A crashed or
			// aborted run truncates its path before later conditionals,
			// so completeness cannot be claimed once a bug was found —
			// nor once a solve was abandoned on budget exhaustion or an
			// internal fault interrupted a run (see DESIGN.md,
			// "Supervision and graceful degradation").
			if e.searchComplete() {
				e.report.Complete = true
				e.report.Stopped = StopExhausted
				return
			}
			// Otherwise the paper's outer loop continues forever with
			// fresh randoms; MaxRuns bounds us.
			continue
		}
	}
}

// bugSig is the dedup identity of a program error: outcome, message, and
// source position.  Every engine (classic stack, frontier, random) must
// build it through this one helper so the formats can never drift and
// dedup behaves identically across modes.
func bugSig(rerr *machine.RunError) string {
	return rerr.Outcome.String() + "|" + rerr.Msg + "|" + rerr.Pos.String()
}

func copyIM(im map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(im))
	for k, v := range im {
		out[k] = v
	}
	return out
}

// ------------------------------------------------------------ observation

// newMetrics returns the search's metrics registry, or nil — every
// Metrics method no-ops on a nil receiver — when neither an observer
// nor CollectMetrics asks for one.  The gate keeps sub-millisecond
// unobserved searches free of the registry's setup and snapshot cost.
func newMetrics(o Options) *obs.Metrics {
	if o.Observer == nil && !o.CollectMetrics {
		return nil
	}
	return obs.NewMetrics()
}

// newProfile returns the search's cost profiler for one worker, or nil
// (every Profile method no-ops on nil) unless CollectProfile asks for
// one.  Deliberately NOT implied by an Observer: profiling reads the
// wall clock around every run and solve, and the event stream must
// stay free of timing for determinism.
func newProfile(o Options, worker int) *obs.Profile {
	if !o.CollectProfile {
		return nil
	}
	return obs.NewProfile(o.Toplevel, worker)
}

// newExplain returns one worker's coverage-explainer ledger, or nil
// (every Explain method no-ops on nil) unless CollectExplain asks for
// one.  Like the profiler it is NOT implied by an Observer: the ledger
// records per-branch occurrence tallies the unobserved engine path
// should not pay for.
func newExplain(o Options, worker int) *obs.Explain {
	if !o.CollectExplain {
		return nil
	}
	return obs.NewExplain(worker)
}

// newTimeline returns the search-global coverage timeline, or nil when
// the explainer is off.  StallWindow zero selects the default plateau
// window; negative disables the stall detector.
func newTimeline(o Options) *obs.Timeline {
	if !o.CollectExplain {
		return nil
	}
	w := o.StallWindow
	if w == 0 {
		w = obs.DefaultStallWindow
	} else if w < 0 {
		w = 0
	}
	return obs.NewTimeline(0, w, 0)
}

// tickTimeline records one completed run on the search's coverage
// timeline: the run's newly covered directions (search-global under a
// parallel engine: the shared coverage view dedups across workers), the
// pending-flip backlog, and the worker's solver-call delta.  A fired
// plateau is emitted and metered by the ticking worker, so per-worker
// registries stay race-free.  No-op when the explainer is off.
func (e *engine) tickTimeline(newly int) {
	if e.timeline == nil {
		return
	}
	delta := e.report.SolverCalls - e.lastTickSolves
	e.lastTickSolves = e.report.SolverCalls
	stall, fired := e.timeline.Tick(newly, e.pendingFlips(), int64(delta))
	if !fired {
		return
	}
	e.metrics.Add(obs.CStalls, 1)
	if e.obs != nil {
		e.emit(obs.Event{Kind: obs.CoverageStall, Run: int(stall.Run),
			Covered: stall.Covered, Window: stall.Window})
	}
}

// pendingFlips is the search's current pending-flip backlog for the
// timeline: the classic stack engine's not-done entries, a frontier
// engine's queue length (search-global under the parallel scheduler).
func (e *engine) pendingFlips() int {
	if e.qlen != nil {
		return e.qlen()
	}
	n := 0
	for _, s := range e.stack {
		if !s.done {
			n++
		}
	}
	return n
}

// emit forwards one trace event to the observer behind its own recover
// barrier: a panicking user-supplied sink is recorded as an internal
// fault and observation is disabled, so the search itself continues
// (the same isolation discipline as per-run and per-solve panics).
func (e *engine) emit(ev obs.Event) {
	if e.obs == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			e.obs = nil
			e.report.InternalErrors = append(e.report.InternalErrors, InternalError{
				Phase: "observer",
				Msg:   fmt.Sprintf("panic: %v", r),
				Run:   e.report.Runs,
			})
		}
	}()
	ev.Fn = e.opts.Toplevel
	if ev.Worker == 0 {
		ev.Worker = e.worker
	}
	e.obs.Event(ev)
}

// machineSink adapts the engine's observer for the machine: machine
// events (completeness fallbacks) are tagged with the in-flight run
// index and routed through the engine's guarded emit.
func (e *engine) machineSink() obs.Sink {
	if e.obs == nil {
		return nil
	}
	return obs.SinkFunc(func(ev obs.Event) {
		ev.Run = e.report.Runs + 1
		e.emit(ev)
	})
}

// runOutcome names how a run terminated for the RunEnd event.
func runOutcome(rerr *machine.RunError) string {
	if rerr == nil {
		return machine.HaltOK.String()
	}
	return rerr.Outcome.String()
}

func pathBit(taken bool) byte {
	if taken {
		return '1'
	}
	return '0'
}

// pathString encodes an executed branch sequence as a bit string ("1"
// taken, "0" not taken); only built when an observer is attached.
func pathString(branches []machine.BranchRec) string {
	b := make([]byte, len(branches))
	for i := range branches {
		b[i] = pathBit(branches[i].Taken)
	}
	return string(b)
}

// flipPath is the bit string of the path the search is about to force:
// the executed outcomes of branches[0..j) followed by the negation of
// branches[j].
func flipPath(branches []machine.BranchRec, j int) string {
	b := make([]byte, j+1)
	for i := 0; i < j; i++ {
		b[i] = pathBit(branches[i].Taken)
	}
	b[j] = pathBit(!branches[j].Taken)
	return string(b)
}
