package concolic

import (
	"reflect"
	"testing"

	"dart/internal/progs"
)

// normalizeFastPath strips the report fields the solve cache is allowed
// to change — its own activity counters and wall-clock/metrics noise.
// Everything else (bugs, runs, coverage, verdict accounting, stop
// reason, completeness flags) must be identical cache-on vs cache-off.
func normalizeFastPath(r *Report) *Report {
	c := *r
	c.Elapsed = 0
	c.Metrics = nil
	c.SolveCacheHits, c.SolveCacheMisses, c.SolveCacheEvictions = 0, 0, 0
	return &c
}

// TestSolveCacheOnOffIdenticalReports: the cache is a pure memo — for a
// fixed seed the report must be identical with it on, off, or starved
// down to a single entry, under both the classic stack engine (DFS) and
// the frontier engine (BFS).
func TestSolveCacheOnOffIdenticalReports(t *testing.T) {
	programs := []struct{ name, src, fn string }{
		{"SolverGate", progs.SolverGate, "gate"},
		{"Clusters", progs.Clusters, "clusters"},
	}
	for _, p := range programs {
		prog := compile(t, p.src)
		for _, s := range []Strategy{DFS, BFS} {
			base := Options{Toplevel: p.fn, MaxRuns: 300, Seed: 11, Strategy: s}
			on := base // SolveCacheCap 0: default capacity
			off := base
			off.SolveCacheCap = -1
			tiny := base
			tiny.SolveCacheCap = 1
			repOn, err := Run(prog, on)
			if err != nil {
				t.Fatal(err)
			}
			repOff, err := Run(prog, off)
			if err != nil {
				t.Fatal(err)
			}
			repTiny, err := Run(prog, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizeFastPath(repOn), normalizeFastPath(repOff)) {
				t.Errorf("%s/%v: cache on and off reports differ:\n on: %+v\noff: %+v",
					p.name, s, repOn, repOff)
			}
			if !reflect.DeepEqual(normalizeFastPath(repTiny), normalizeFastPath(repOff)) {
				t.Errorf("%s/%v: single-entry cache changed the report", p.name, s)
			}
			if repOff.SolveCacheHits != 0 || repOff.SolveCacheMisses != 0 {
				t.Errorf("%s/%v: disabled cache reported activity", p.name, s)
			}
		}
	}
}

// TestSolveCacheHitsOnGate: the gate program's sequential conditionals
// produce many flips whose slices repeat, so the cache must actually
// get hits there (otherwise the on/off equality test is vacuous).
func TestSolveCacheHitsOnGate(t *testing.T) {
	prog := compile(t, progs.SolverGate)
	rep, err := Run(prog, Options{Toplevel: "gate", MaxRuns: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolveCacheHits == 0 {
		t.Errorf("no cache hits on the gate program (misses=%d)", rep.SolveCacheMisses)
	}
	if rep.SolveCacheHits+rep.SolveCacheMisses != rep.SolverCalls {
		t.Errorf("hits(%d)+misses(%d) != solver calls(%d)",
			rep.SolveCacheHits, rep.SolveCacheMisses, rep.SolverCalls)
	}
}

// TestSolveCacheEvictionAtTinyCapacity: a single-entry cache on a
// program with more than one distinct slice must evict.
func TestSolveCacheEvictionAtTinyCapacity(t *testing.T) {
	prog := compile(t, progs.SolverGate)
	rep, err := Run(prog, Options{Toplevel: "gate", MaxRuns: 300, Seed: 11, SolveCacheCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolveCacheEvictions == 0 {
		t.Error("single-entry cache never evicted on the gate program")
	}
}

// TestSlicingOnClusters: the Clusters program's innermost flip only
// constrains a, so slicing must prune the independent b and c+d
// predicates — and the bug it leads to must still be found and replay.
func TestSlicingOnClusters(t *testing.T) {
	prog := compile(t, progs.Clusters)
	opts := Options{Toplevel: "clusters", MaxRuns: 100, Seed: 3}
	rep, err := Run(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlicedPreds == 0 {
		t.Error("no predicates sliced on a program with three independent variable clusters")
	}
	bug := rep.FirstBug()
	if bug == nil {
		t.Fatalf("bug not found in %d runs", rep.Runs)
	}
	rerr, err := Replay(prog, opts, bug.Inputs)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rerr == nil || rerr.Outcome != bug.Kind {
		t.Errorf("replay of sliced-search bug: got %v, want %v", rerr, bug.Kind)
	}
}

// TestRandomBugsReplay: bugs found by the pure random baseline must be
// just as replayable as directed-search bugs (Theorem 1(a) is a
// property of the report, not the engine).
func TestRandomBugsReplay(t *testing.T) {
	prog := compile(t, progs.StraightLineDeref)
	opts := Options{Toplevel: "poke", MaxRuns: 20, Seed: 5}
	rep, err := RandomTest(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Fatal("random testing missed the coin-flip NULL crash in 20 runs")
	}
	for _, bug := range rep.Bugs {
		if len(bug.Inputs) == 0 {
			t.Fatalf("random-mode bug recorded no inputs: %+v", bug)
		}
		rerr, err := Replay(prog, opts, bug.Inputs)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if rerr == nil || rerr.Outcome != bug.Kind || rerr.Msg != bug.Msg || rerr.Pos != bug.Pos {
			t.Errorf("random bug does not replay: recorded %v %q at %v, replayed %+v",
				bug.Kind, bug.Msg, bug.Pos, rerr)
		}
	}
}
