package concolic

import (
	"fmt"
	"time"

	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/symbolic"
	"dart/internal/types"
)

// replaySource replays a recorded input vector.  Inputs absent from the
// vector (which can only happen if the program is nondeterministic,
// which MiniC programs are not) read as zero and are flagged.
type replaySource struct {
	im      map[string]int64
	missing []string
}

func (r *replaySource) ScalarInput(key string, b *types.Basic) int64 {
	if v, ok := r.im[key]; ok {
		return v
	}
	r.missing = append(r.missing, key)
	return 0
}

func (r *replaySource) PointerInput(key string) bool {
	if v, ok := r.im[key]; ok {
		return v != 0
	}
	r.missing = append(r.missing, key)
	return false
}

func (r *replaySource) VarOf(string, symbolic.VarKind, *types.Basic) (symbolic.Var, bool) {
	return 0, false // concrete-only replay
}

func (r *replaySource) IsPointerVar(symbolic.Var) bool { return false }

// Replay executes the program once, concretely, on a recorded input
// vector (a Bug's Inputs).  It returns how the run ended: nil for normal
// termination, or the RunError that reproduces the bug.  Replay is the
// executable form of the paper's Theorem 1(a): every error DART reports
// comes with an input vector whose plain concrete execution exhibits it.
func Replay(prog *ir.Prog, opts Options, inputs map[string]int64) (*machine.RunError, error) {
	o := opts.withDefaults()
	fn, ok := prog.Lookup(o.Toplevel)
	if !ok {
		return nil, fmt.Errorf("concolic: toplevel function %q is not defined in the program", o.Toplevel)
	}
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = time.Now().Add(o.Timeout)
	}
	src := &replaySource{im: inputs}
	m, err := machine.New(machine.Config{
		Prog:     prog,
		Inputs:   src,
		LibImpls: o.LibImpls,
		MaxSteps: o.MaxSteps,
		Deadline: deadline,
		Cancel:   o.Cancel,
	})
	if err != nil {
		return nil, err
	}
	for d := 0; d < o.Depth; d++ {
		args := make([]machine.Value, len(fn.Params))
		for i, p := range fn.Params {
			name := p.Name
			if name == "" {
				name = fmt.Sprintf("arg%d", i)
			}
			key := fmt.Sprintf("d%d.%s", d, name)
			cell, aerr := m.Mem().Alloc(1)
			if aerr != nil {
				return nil, aerr
			}
			if ierr := m.RandomInit(cell, p.Type, key); ierr != nil {
				return nil, ierr
			}
			v, verr := m.ArgValue(cell)
			if verr != nil {
				return nil, verr
			}
			args[i] = v
		}
		_, rerr := m.RunCall(o.Toplevel, args)
		if len(src.missing) > 0 {
			return nil, fmt.Errorf("concolic: replay vector is missing inputs %v", src.missing)
		}
		if rerr != nil {
			if rerr.Outcome == machine.HaltOK {
				return nil, nil
			}
			return rerr, nil
		}
	}
	return nil, nil
}
