package concolic

import (
	"fmt"
	"time"

	"dart/internal/coverage"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/rng"
	"dart/internal/symbolic"
	"dart/internal/types"
)

// randomSource is a pure random input stream: the baseline DART is
// compared against.  It tracks no symbolic state, but it does record
// the drawn input vector: a bug found by random testing must be just as
// replayable as one found by the directed search (Theorem 1(a) is a
// property of the report, not of the engine that produced it).
type randomSource struct {
	rand *rng.R
	// im is the drawn input vector (key -> value/decision), keyed with
	// the same scheme the directed engine and Replay use.
	im map[string]int64
}

func (r *randomSource) ScalarInput(key string, b *types.Basic) int64 {
	if v, ok := r.im[key]; ok {
		return v
	}
	v := types.Truncate(b, r.rand.Bits(b.Bits()))
	r.im[key] = v
	return v
}

func (r *randomSource) PointerInput(key string) bool {
	if v, ok := r.im[key]; ok {
		return v != 0
	}
	var d int64
	if r.rand.Coin() {
		d = 1
	}
	r.im[key] = d
	return d != 0
}

func (r *randomSource) VarOf(string, symbolic.VarKind, *types.Basic) (symbolic.Var, bool) {
	return 0, false
}

func (r *randomSource) IsPointerVar(symbolic.Var) bool { return false }

// RandomTest performs pure random testing of the toplevel function: the
// same generated driver as the directed search, but every run draws fresh
// random inputs and no constraints are collected.  It is the "random
// search" column of the paper's tables.
func RandomTest(prog *ir.Prog, opts Options) (*Report, error) {
	start := time.Now()
	o := opts.withDefaults()
	fn, ok := prog.Lookup(o.Toplevel)
	if !ok {
		return nil, fmt.Errorf("concolic: toplevel function %q is not defined in the program", o.Toplevel)
	}
	rand := rng.New(o.Seed)
	report := &Report{
		AllLinear:       true,
		AllLocsDefinite: true,
		SolverComplete:  true,
		Workers:         1,
		Coverage:        coverage.New(prog.NumSites),
	}
	metrics := newMetrics(o)
	var rec *runRecorder
	if o.RecordRuns {
		rec = newRunRecorder(prog.NumSites)
	}
	// The random baseline attempts no flips, so its explainer output is
	// the timeline (coverage progress and stalls are just as meaningful
	// for random testing) over an empty cause ledger: reached-but-dark
	// directions honestly resolve to "not-attempted".
	tl := newTimeline(o)
	// emit forwards trace events behind the same observer isolation the
	// directed engine uses: a panicking sink becomes an InternalError
	// and observation is disabled for the rest of the campaign.
	sink := o.Observer
	emit := func(ev obs.Event) {
		if sink == nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				sink = nil
				report.InternalErrors = append(report.InternalErrors, InternalError{
					Phase: "observer",
					Msg:   fmt.Sprintf("panic: %v", r),
					Run:   report.Runs,
				})
			}
		}()
		ev.Fn = o.Toplevel
		sink.Event(ev)
	}
	defer func() {
		if tl != nil {
			snap := &obs.ExplainSnapshot{Workers: 1}
			tl.Stamp(snap)
			report.Explain = snap
			rep := ResolveExplain(prog, snap, report.Coverage)
			for _, reason := range obs.ReasonPrecedence {
				if n := rep.Buckets[reason]; n > 0 {
					metrics.Add(obs.UncoveredPrefix+reason, int64(n))
					emit(obs.Event{Kind: obs.UncoveredReason, Run: report.Runs, Reason: reason, Count: n})
				}
			}
		}
		report.RunLog = rec.log()
		report.Elapsed = time.Since(start)
		report.Metrics = metrics.Snapshot()
	}()
	seenBugs := map[string]bool{}
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = time.Now().Add(o.Timeout)
	}

	// lastInputs is the input vector of the most recent run, for bug
	// reports and fault diagnostics (both must be replayable).
	var lastInputs map[string]int64

	// The machine is pooled across the campaign: built on the first run,
	// Reset with a fresh random source for each subsequent one.  The
	// observer closure reads report.Runs at event time, so one sink
	// serves every run.
	var pooled *machine.Machine
	var msink obs.Sink
	if sink != nil {
		msink = obs.SinkFunc(func(ev obs.Event) {
			ev.Run = report.Runs
			emit(ev)
		})
	}
	code := compileFor(prog, o)

	// oneRandomRun executes one run behind a recover barrier so that a
	// faulty library black box cannot take down the whole campaign.
	oneRandomRun := func() (m *machine.Machine, rerr *machine.RunError, fault *InternalError) {
		src := &randomSource{rand: rand.Fork(), im: map[string]int64{}}
		lastInputs = src.im
		defer func() {
			if r := recover(); r != nil {
				fault = &InternalError{
					Phase:  "run",
					Msg:    fmt.Sprintf("panic: %v", r),
					Run:    report.Runs,
					Inputs: copyIM(src.im),
				}
				m, rerr = nil, nil
			}
		}()
		if pooled == nil {
			var err error
			pooled, err = machine.New(machine.Config{
				Prog:     prog,
				Inputs:   src,
				LibImpls: o.LibImpls,
				MaxSteps: o.MaxSteps,
				Deadline: deadline,
				Cancel:   o.Cancel,
				Observer: msink,
				Code:     code,
			})
			if err != nil {
				pooled = nil
				return nil, nil, &InternalError{Phase: "init", Msg: err.Error(), Run: report.Runs}
			}
		} else if err := pooled.Reset(src); err != nil {
			return nil, nil, &InternalError{Phase: "init", Msg: err.Error(), Run: report.Runs}
		}
		m = pooled
		for d := 0; d < o.Depth; d++ {
			args := make([]machine.Value, len(fn.Params))
			for i, p := range fn.Params {
				cell, aerr := m.Mem().Alloc(1)
				if aerr != nil {
					return m, &machine.RunError{Outcome: machine.Crashed, Msg: aerr.Error()}, nil
				}
				// The key scheme must match the directed engine's (and
				// Replay's): "d<depth>.<param name>", falling back to the
				// parameter index.  Recorded vectors are useless otherwise.
				name := p.Name
				if name == "" {
					name = fmt.Sprintf("arg%d", i)
				}
				key := fmt.Sprintf("d%d.%s", d, name)
				if ierr := m.RandomInit(cell, p.Type, key); ierr != nil {
					return m, &machine.RunError{Outcome: machine.Crashed, Msg: ierr.Error()}, nil
				}
				v, verr := m.ArgValue(cell)
				if verr != nil {
					return m, &machine.RunError{Outcome: machine.Crashed, Msg: verr.Error()}, nil
				}
				args[i] = v
			}
			if _, rerr := m.RunCall(o.Toplevel, args); rerr != nil {
				return m, rerr, nil
			}
		}
		return m, nil, nil
	}

	for report.Runs < o.MaxRuns {
		if reason, stop := tripped(deadline, o.Cancel); stop {
			report.Stopped = reason
			return report, nil
		}
		report.Runs++
		emit(obs.Event{Kind: obs.RunStart, Run: report.Runs})
		m, rerr, fault := oneRandomRun()
		if fault != nil {
			report.InternalErrors = append(report.InternalErrors, *fault)
			if fault.Phase == "init" || len(report.InternalErrors) >= maxInternalFaults {
				report.Stopped = StopInternal
				return report, nil
			}
			continue // fresh randoms next run
		}

		report.Steps += m.Steps()
		metrics.Add(obs.CRuns, 1)
		metrics.Observe(obs.HStepsPerRun, m.Steps())
		newly := 0
		for _, br := range m.Branches {
			if report.Coverage.Record(br.Site, br.Taken) {
				newly++
			}
		}
		rec.observe(lastInputs, m.Branches)
		if st, fired := tl.Tick(newly, 0, 0); fired {
			metrics.Add(obs.CStalls, 1)
			emit(obs.Event{Kind: obs.CoverageStall, Run: int(st.Run), Covered: st.Covered, Window: st.Window})
		}
		if sink != nil {
			emit(obs.Event{Kind: obs.RunEnd, Run: report.Runs, Steps: m.Steps(),
				Outcome: runOutcome(rerr), Path: pathString(m.Branches)})
		}

		if rerr != nil && rerr.Outcome == machine.Interrupted {
			if reason, stop := tripped(deadline, o.Cancel); stop {
				report.Stopped = reason
			} else {
				report.Stopped = StopDeadline
			}
			return report, nil
		}
		if rerr != nil && rerr.Outcome != machine.HaltOK {
			isBug := rerr.Outcome == machine.Aborted || rerr.Outcome == machine.Crashed ||
				(rerr.Outcome == machine.StepLimit && o.ReportStepLimit)
			if isBug {
				sig := bugSig(rerr)
				if !seenBugs[sig] {
					seenBugs[sig] = true
					report.Bugs = append(report.Bugs, Bug{
						Kind:   rerr.Outcome,
						Msg:    rerr.Msg,
						Pos:    rerr.Pos,
						Run:    report.Runs,
						Inputs: copyIM(lastInputs),
					})
					metrics.Add(obs.CBugs, 1)
					emit(obs.Event{Kind: obs.BugFound, Run: report.Runs,
						Outcome: rerr.Outcome.String(), Msg: rerr.Msg, Pos: rerr.Pos.String()})
				}
				if o.StopAtFirstBug {
					report.Stopped = StopFirstBug
					return report, nil
				}
			}
		}
	}
	report.Stopped = StopMaxRuns
	return report, nil
}
