package concolic

import (
	"encoding/json"
	"testing"

	"dart/internal/obs"
	"dart/internal/progs"
)

// TestExplainDeterministicAcrossWorkers: the resolved explanation — one
// terminal reason per uncovered direction — is an exact function of the
// seed on tree-exhausting searches: workers 1 (classic stack engine),
// 2, and 8 (frontier engine) must produce byte-identical reports.  The
// explain analog of TestProfileDeterministicAcrossWorkers; run under
// -race in CI.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name, src, top string
	}{
		{"clusters", progs.Clusters, "clusters"},
		{"solver-gate", progs.SolverGate, "gate"},
		{"maze", maze, "explore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			var base string
			for _, workers := range []int{1, 2, 8} {
				rep, err := Run(prog, Options{
					Toplevel:       tc.top,
					MaxRuns:        2000,
					Seed:           3,
					Workers:        workers,
					SolveCacheCap:  -1,
					CollectExplain: true,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.Explain == nil {
					t.Fatalf("workers=%d: no explain ledger collected", workers)
				}
				resolved := ResolveExplain(prog, rep.Explain, rep.Coverage)
				raw, err := json.Marshal(resolved)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					base = string(raw)
					continue
				}
				if string(raw) != base {
					t.Errorf("workers=%d report diverges from workers=1:\n  w1: %s\n  w%d: %s",
						workers, base, workers, raw)
				}
			}
		})
	}
}

// TestExplainAccountingCloses: covered + every reason bucket equals the
// direction universe (2 × branch sites), with no silent remainder, and
// the report's covered count agrees with the coverage set.
func TestExplainAccountingCloses(t *testing.T) {
	prog := compile(t, progs.Clusters)
	rep, err := Run(prog, Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 1, CollectExplain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ResolveExplain(prog, rep.Explain, rep.Coverage)
	if res.Directions == 0 || res.Directions%2 != 0 {
		t.Fatalf("direction universe = %d", res.Directions)
	}
	sum := res.Covered
	for _, n := range res.Buckets {
		sum += n
	}
	if sum != res.Directions {
		t.Errorf("accounting leak: covered %d + buckets = %d, want %d (buckets %v)",
			res.Covered, sum, res.Directions, res.Buckets)
	}
	if res.Covered != rep.Coverage.Covered() {
		t.Errorf("report covered %d, coverage set says %d", res.Covered, rep.Coverage.Covered())
	}
	// The ledger rides Report.Explain with the timeline stamped on.
	if len(rep.Explain.Timeline) == 0 {
		t.Error("no timeline samples stamped on the snapshot")
	}
}

// TestExplainUncoveredReasonEvents: a finished search's resolved reason
// buckets are emitted as UncoveredReason events and mirrored into the
// metrics registry — the three surfaces must agree.
func TestExplainUncoveredReasonEvents(t *testing.T) {
	prog := compile(t, progs.Clusters)
	var c obs.Collector
	rep, err := Run(prog, Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 1,
		CollectExplain: true, Observer: &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ResolveExplain(prog, rep.Explain, rep.Coverage)
	fromEvents := map[string]int{}
	for _, ev := range c.Events() {
		if ev.Kind == obs.UncoveredReason {
			fromEvents[ev.Reason] += ev.Count
		}
	}
	for reason, n := range res.Buckets {
		if fromEvents[reason] != n {
			t.Errorf("reason %q: events say %d, report says %d", reason, fromEvents[reason], n)
		}
		if got := rep.Metrics.Counters[obs.UncoveredPrefix+reason]; got != int64(n) {
			t.Errorf("reason %q: metrics say %d, report says %d", reason, got, n)
		}
	}
	if len(fromEvents) != len(res.Buckets) {
		t.Errorf("event buckets %v, report buckets %v", fromEvents, res.Buckets)
	}
}

// nonlinearPlateau degenerates the directed search to random restarts:
// the guard leaves the linear theory, so no flip can target it and
// coverage goes flat while the run budget burns — the stall detector's
// home turf.
const nonlinearPlateau = `
int plateau(int x) {
    if (x * x == 1073741824)
        abort();
    return 0;
}
`

// TestExplainStallDetector: a plateauing search fires coverage-stall
// events; the event count, the snapshot's stall counter, and the
// metrics counter must agree, and a fixed seed reproduces the count.
func TestExplainStallDetector(t *testing.T) {
	prog := compile(t, nonlinearPlateau)
	run := func() (*Report, int) {
		var c obs.Collector
		rep, err := Run(prog, Options{
			Toplevel: "plateau", MaxRuns: 600, Seed: 7,
			CollectExplain: true, StallWindow: 100, Observer: &c,
		})
		if err != nil {
			t.Fatal(err)
		}
		stallEvents := 0
		for _, ev := range c.Events() {
			if ev.Kind == obs.CoverageStall {
				stallEvents++
				if ev.Window != 100 {
					t.Errorf("stall event window = %d, want 100", ev.Window)
				}
			}
		}
		return rep, stallEvents
	}
	rep, stallEvents := run()
	if rep.Explain.Stalls == 0 {
		t.Fatal("plateauing search fired no stalls")
	}
	if int64(stallEvents) != rep.Explain.Stalls {
		t.Errorf("stall events %d, snapshot says %d", stallEvents, rep.Explain.Stalls)
	}
	if got := rep.Metrics.Counters[obs.CStalls]; got != rep.Explain.Stalls {
		t.Errorf("metrics stalls %d, snapshot says %d", got, rep.Explain.Stalls)
	}
	// ~500 flat runs after the initial coverage: windows of 100 close
	// every 100 flat runs, never more than runs/window times.
	if rep.Explain.Stalls > int64(rep.Runs)/100 {
		t.Errorf("stalls %d exceed runs/window = %d", rep.Explain.Stalls, rep.Runs/100)
	}
	rep2, _ := run()
	if rep2.Explain.Stalls != rep.Explain.Stalls {
		t.Errorf("same seed, different stall counts: %d vs %d", rep2.Explain.Stalls, rep.Explain.Stalls)
	}
}

// TestExplainStallWindowDisabled: a negative StallWindow turns the
// detector off — no stalls, no events — while the ledger still
// collects.
func TestExplainStallWindowDisabled(t *testing.T) {
	prog := compile(t, nonlinearPlateau)
	var c obs.Collector
	rep, err := Run(prog, Options{
		Toplevel: "plateau", MaxRuns: 600, Seed: 7,
		CollectExplain: true, StallWindow: -1, Observer: &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil {
		t.Fatal("explain ledger missing")
	}
	if rep.Explain.Stalls != 0 {
		t.Errorf("disabled detector counted %d stalls", rep.Explain.Stalls)
	}
	for _, ev := range c.Events() {
		if ev.Kind == obs.CoverageStall {
			t.Fatal("disabled detector emitted a stall event")
		}
	}
}

// TestExplainRandomMode: the random baseline carries the timeline and
// resolves honestly — reached-but-dark directions are "not-attempted"
// (random testing attempts no flips), unreached sites "never-reached".
func TestExplainRandomMode(t *testing.T) {
	prog := compile(t, progs.Clusters)
	rep, err := RandomTest(prog, Options{
		Toplevel: "clusters", MaxRuns: 200, Seed: 1,
		CollectExplain: true, StallWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil {
		t.Fatal("random mode collected no explain snapshot")
	}
	if len(rep.Explain.Timeline) == 0 {
		t.Error("random mode stamped no timeline")
	}
	res := ResolveExplain(prog, rep.Explain, rep.Coverage)
	sum := res.Covered
	for reason, n := range res.Buckets {
		sum += n
		if reason != obs.ReasonNotAttempted && reason != obs.ReasonNeverReached {
			t.Errorf("random mode resolved flip-cause bucket %q (%d)", reason, n)
		}
	}
	if sum != res.Directions {
		t.Errorf("accounting leak: %d covered + buckets = %d, want %d", res.Covered, sum, res.Directions)
	}
}
