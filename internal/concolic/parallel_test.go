package concolic

import (
	"fmt"
	"sort"
	"testing"

	"dart/internal/obs"
	"dart/internal/progs"
)

// bugSigs is the canonical bug-set identity of a report: the sorted
// (kind, msg, pos) signatures, ignoring run indices and input padding —
// exactly what "deterministic modulo worker count" promises.
func bugSigs(rep *Report) []string {
	sigs := make([]string, 0, len(rep.Bugs))
	for _, b := range rep.Bugs {
		sigs = append(sigs, b.Kind.String()+"|"+b.Msg+"|"+b.Pos.String())
	}
	sort.Strings(sigs)
	return sigs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// multiBug holds three distinct reachable aborts behind independent
// conditions, so the search-wide bug set exercises cross-worker dedup
// and the canonical merge order.
const multiBug = `
int multi(int a, int b) {
    if (a == 7)
        abort();
    if (b == 9)
        abort();
    if (a + b == 100)
        abort();
    return 0;
}
`

// TestWorkersDeterminism is the PR's core contract: on searches that
// exhaust their execution tree, the bug set and branch coverage are
// identical at workers = 1, 2, and 8, and among frontier-scheduled
// searches so are the completeness flags and misprediction counts.
//
// Two scoped caveats, both inherent to the engines rather than to the
// pool:
//
//   - At workers=1 the DFS strategy runs the paper's classic stack,
//     which restarts with fresh randoms forever when bugs keep the tree
//     from proving completeness — so its stop reason is max-runs, its
//     restart padding differs from the frontier's single tree, and its
//     flags are compared only against itself.  Every frontier search
//     (workers>1, and BFS at workers=1) must agree exactly.
//
//   - The test programs sum fresh 32-bit inputs, and the machine wraps
//     where the solver's exact arithmetic does not.  On seeds whose
//     padding wraps, the engine honestly mispredicts (clearing
//     Complete) but which subtrees survive becomes padding-dependent.
//     Seed 3's draws stay in the exact regime for every program here —
//     the regime Theorem 1's hypotheses assume — which a seed scan
//     verified holds for all worker counts.
func TestWorkersDeterminism(t *testing.T) {
	cases := []struct {
		name, src, top string
	}{
		{"clusters", progs.Clusters, "clusters"},
		{"solver-gate", progs.SolverGate, "gate"},
		{"multi-bug", multiBug, "multi"},
	}
	for _, tc := range cases {
		for _, strat := range []Strategy{DFS, BFS} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, strat), func(t *testing.T) {
				prog := compile(t, tc.src)
				var base, fbase *Report
				for _, workers := range []int{1, 2, 8} {
					rep, err := Run(prog, Options{
						Toplevel: tc.top,
						MaxRuns:  2000,
						Seed:     3,
						Strategy: strat,
						Workers:  workers,
					})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if rep.Workers != workers {
						t.Errorf("workers=%d: Report.Workers = %d", workers, rep.Workers)
					}
					frontier := workers > 1 || strat != DFS
					if frontier && rep.Stopped != StopExhausted {
						t.Fatalf("workers=%d: stopped %q, want exhausted (runs=%d)", workers, rep.Stopped, rep.Runs)
					}
					if base == nil {
						base = rep
						if len(rep.Bugs) == 0 {
							t.Fatalf("baseline found no bugs")
						}
					} else {
						if got, want := bugSigs(rep), bugSigs(base); !equalStrings(got, want) {
							t.Errorf("workers=%d: bug set %v, want %v", workers, got, want)
						}
						if rep.Coverage.Covered() != base.Coverage.Covered() {
							t.Errorf("workers=%d: coverage %d, want %d", workers, rep.Coverage.Covered(), base.Coverage.Covered())
						}
					}
					if !frontier {
						continue
					}
					if fbase == nil {
						fbase = rep
						continue
					}
					if rep.Complete != fbase.Complete ||
						rep.AllLinear != fbase.AllLinear ||
						rep.AllLocsDefinite != fbase.AllLocsDefinite ||
						rep.SolverComplete != fbase.SolverComplete ||
						rep.Mispredicts != fbase.Mispredicts {
						t.Errorf("workers=%d: flags (%v %v %v %v m=%d), want (%v %v %v %v m=%d)", workers,
							rep.Complete, rep.AllLinear, rep.AllLocsDefinite, rep.SolverComplete, rep.Mispredicts,
							fbase.Complete, fbase.AllLinear, fbase.AllLocsDefinite, fbase.SolverComplete, fbase.Mispredicts)
					}
				}
			})
		}
	}
}

// TestWorkersCompleteNoBugs checks Theorem 1(b) survives the merge: a
// bug-free exhaustible program reports Complete at every worker count.
func TestWorkersCompleteNoBugs(t *testing.T) {
	prog := compile(t, `
int safe(int a, int b) {
    if (a > 10) {
        if (b > 10)
            return 2;
        return 1;
    }
    return 0;
}
`)
	for _, workers := range []int{1, 2, 8} {
		rep, err := Run(prog, Options{Toplevel: "safe", MaxRuns: 500, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Errorf("workers=%d: Complete=false (stopped=%s, runs=%d)", workers, rep.Stopped, rep.Runs)
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("workers=%d: unexpected bugs %v", workers, rep.Bugs)
		}
	}
}

// TestParallelFirstBugStops: StopAtFirstBug aborts the pool with
// exactly one reported bug and the matching stop reason.
func TestParallelFirstBugStops(t *testing.T) {
	prog := compile(t, multiBug)
	rep, err := Run(prog, Options{
		Toplevel: "multi", MaxRuns: 2000, Seed: 5,
		Workers: 4, StopAtFirstBug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopFirstBug {
		t.Errorf("stopped %q, want first-bug", rep.Stopped)
	}
	if len(rep.Bugs) == 0 {
		t.Error("no bug on a first-bug stop")
	}
	if rep.Complete {
		t.Error("Complete=true after an aborted search")
	}
}

// TestParallelMaxRunsBudget: the shared run budget bounds total
// executions across workers, not per worker.
func TestParallelMaxRunsBudget(t *testing.T) {
	prog := compile(t, progs.SolverGate)
	rep, err := Run(prog, Options{Toplevel: "gate", MaxRuns: 5, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs > 5 {
		t.Errorf("runs = %d, want <= shared MaxRuns 5", rep.Runs)
	}
	if rep.Stopped != StopMaxRuns {
		t.Errorf("stopped %q, want max-runs", rep.Stopped)
	}
}

// TestFrontierDropCounted: overflowing MaxFrontier is no longer silent —
// the drop count reaches the report and clears Complete, sequential and
// parallel alike.
func TestFrontierDropCounted(t *testing.T) {
	for _, workers := range []int{1, 2} {
		rep, err := Run(compile(t, progs.SolverGate), Options{
			Toplevel: "gate", MaxRuns: 2000, Seed: 7,
			Strategy: BFS, Workers: workers, MaxFrontier: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.FrontierDropped == 0 {
			t.Errorf("workers=%d: FrontierDropped = 0, want > 0", workers)
		}
		if rep.Complete {
			t.Errorf("workers=%d: Complete=true after dropping flips", workers)
		}
	}
}

// TestParallelSharedCacheHarmless: the sharded solve cache changes how
// much solver work a parallel search spends, never what it finds.
func TestParallelSharedCacheHarmless(t *testing.T) {
	prog := compile(t, progs.SolverGate)
	with, err := Run(prog, Options{Toplevel: "gate", MaxRuns: 2000, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(prog, Options{Toplevel: "gate", MaxRuns: 2000, Seed: 7, Workers: 4, SolveCacheCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(bugSigs(with), bugSigs(without)) {
		t.Errorf("cache changed the bug set: %v vs %v", bugSigs(with), bugSigs(without))
	}
	if with.Coverage.Covered() != without.Coverage.Covered() {
		t.Errorf("cache changed coverage: %d vs %d", with.Coverage.Covered(), without.Coverage.Covered())
	}
	if without.SolveCacheHits != 0 || without.SolveCacheMisses != 0 {
		t.Errorf("disabled cache reported activity: %d hits, %d misses", without.SolveCacheHits, without.SolveCacheMisses)
	}
}

// TestParallelLiveMetricsMatchReport: per-worker events folded through
// LiveMetrics reproduce the merged report's counters exactly — the
// live-equals-final invariant the obs layer promises.
func TestParallelLiveMetricsMatchReport(t *testing.T) {
	live := obs.NewLiveMetrics()
	rep, err := Run(compile(t, multiBug), Options{
		Toplevel: "multi", MaxRuns: 2000, Seed: 11,
		Workers: 4, Observer: live,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("no report metrics with an observer attached")
	}
	snap := live.Snapshot()
	for name, want := range rep.Metrics.Counters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("live counter %s = %d, report has %d", name, got, want)
		}
	}
	for name, got := range snap.Counters {
		if want := rep.Metrics.Counters[name]; got != want {
			t.Errorf("live counter %s = %d, report has %d", name, got, want)
		}
	}
}

// TestParallelEventsCarryWorker: every event of a parallel search names
// its 1-based worker; sequential searches stay worker-silent so their
// traces are byte-identical to pre-parallel ones.
func TestParallelEventsCarryWorker(t *testing.T) {
	var par obs.Collector
	if _, err := Run(compile(t, progs.Clusters), Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 2, Workers: 3, Observer: &par,
	}); err != nil {
		t.Fatal(err)
	}
	events := par.Events()
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	for _, ev := range events {
		if ev.Worker < 1 || ev.Worker > 3 {
			t.Fatalf("event %s has worker %d, want 1..3", ev.Kind, ev.Worker)
		}
	}

	var seq obs.Collector
	if _, err := Run(compile(t, progs.Clusters), Options{
		Toplevel: "clusters", MaxRuns: 500, Seed: 2, Observer: &seq,
	}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range seq.Events() {
		if ev.Worker != 0 {
			t.Fatalf("sequential event %s has worker %d, want 0", ev.Kind, ev.Worker)
		}
	}
}

// TestParallelBugsReplay: Theorem 1(a) per bug, merged report included —
// every reported input vector replays to its error under the sequential
// engine's dedicated replay path (the recorded IM drives the run).
func TestParallelBugsReplay(t *testing.T) {
	prog := compile(t, multiBug)
	rep, err := Run(prog, Options{Toplevel: "multi", MaxRuns: 2000, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Fatal("no bugs to replay")
	}
	for _, b := range rep.Bugs {
		got, err := Replay(prog, Options{Toplevel: "multi"}, b.Inputs)
		if err != nil {
			t.Fatalf("replay %v: %v", b, err)
		}
		if got == nil || got.Outcome != b.Kind || got.Pos != b.Pos {
			t.Errorf("replay of %v reproduced %v", b, got)
		}
	}
}

// TestParallelStrategies: every branch-selection strategy runs under
// the pool and finds the gauntlet's bug.
func TestParallelStrategies(t *testing.T) {
	prog := compile(t, progs.Clusters)
	for _, strat := range []Strategy{DFS, BFS, RandomBranch} {
		rep, err := Run(prog, Options{
			Toplevel: "clusters", MaxRuns: 2000, Seed: 9, Strategy: strat, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(rep.Bugs) != 1 {
			t.Errorf("%s: %d bugs, want 1", strat, len(rep.Bugs))
		}
	}
}
