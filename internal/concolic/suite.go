// Suite replay: the warm path of the incremental re-audit pipeline.
//
// A distilled suite is a handful of recorded input vectors; replaying
// it is pure concrete execution — no symbolic shadow, no solver — on
// the compiled engine with one pooled machine, so an unchanged function
// re-validates in milliseconds.  The replay reports everything the
// corpus needs to validate its entry against the current program:
// each case's covered branch directions and termination.
package concolic

import (
	"fmt"
	"time"

	"dart/internal/ir"
	"dart/internal/machine"
)

// CaseResult describes one replayed suite case.
type CaseResult struct {
	// Cover is every branch direction the case executed (deduped, in
	// first-execution order).
	Cover []CovDir
	// Err is the run's abnormal termination (nil for a clean halt);
	// Interrupted means the suite's deadline or cancel tripped.
	Err *machine.RunError
	// Missing lists input keys the vector did not contain (the program
	// drew fresh inputs the recording never saw — a stale vector).
	Missing []string
}

// ReplaySuite executes each recorded input vector concretely on one
// pooled compiled machine and reports per-case coverage and outcome.
// Options supplies the toplevel, depth, step budget, library bindings,
// timeout, and engine selection exactly as for a search; solver- and
// strategy-related options are ignored.  A machine-construction
// failure, or an internal panic while replaying, returns an error — the
// corpus treats any error as "entry invalid, fall back to full search".
func ReplaySuite(prog *ir.Prog, opts Options, cases []map[string]int64) (results []CaseResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			results, err = nil, fmt.Errorf("concolic: suite replay panic: %v", r)
		}
	}()
	o := opts.withDefaults()
	fn, ok := prog.Lookup(o.Toplevel)
	if !ok {
		return nil, fmt.Errorf("concolic: toplevel function %q is not defined in the program", o.Toplevel)
	}
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = time.Now().Add(o.Timeout)
	}
	code := compileFor(prog, o)
	results = make([]CaseResult, 0, len(cases))
	var pooled *machine.Machine
	argbuf := make([]machine.Value, len(fn.Params))
	dirbuf := map[CovDir]bool{}
	for _, inputs := range cases {
		src := &replaySource{im: inputs}
		if pooled == nil {
			pooled, err = machine.New(machine.Config{
				Prog:     prog,
				Inputs:   src,
				LibImpls: o.LibImpls,
				MaxSteps: o.MaxSteps,
				Deadline: deadline,
				Cancel:   o.Cancel,
				Code:     code,
			})
			if err != nil {
				return nil, err
			}
		} else if rerr := pooled.Reset(src); rerr != nil {
			return nil, rerr
		}
		res := CaseResult{}
		for d := 0; d < o.Depth && res.Err == nil; d++ {
			for i, p := range fn.Params {
				name := p.Name
				if name == "" {
					name = fmt.Sprintf("arg%d", i)
				}
				key := fmt.Sprintf("d%d.%s", d, name)
				cell, aerr := pooled.Mem().Alloc(1)
				if aerr != nil {
					return nil, aerr
				}
				if ierr := pooled.RandomInit(cell, p.Type, key); ierr != nil {
					return nil, ierr
				}
				v, verr := pooled.ArgValue(cell)
				if verr != nil {
					return nil, verr
				}
				argbuf[i] = v
			}
			if _, rerr := pooled.RunCall(o.Toplevel, argbuf[:len(fn.Params)]); rerr != nil {
				res.Err = rerr
			}
		}
		clear(dirbuf)
		for _, rec := range pooled.Branches {
			if rec.Site < 0 {
				continue
			}
			d := CovDir{Site: rec.Site, Taken: rec.Taken}
			if dirbuf[d] {
				continue
			}
			dirbuf[d] = true
			res.Cover = append(res.Cover, d)
		}
		res.Missing = src.missing
		results = append(results, res)
	}
	return results, nil
}
