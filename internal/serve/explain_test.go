package serve

// Coverage-explainer and keep-alive tests for the job service: the
// per-job explain report on the envelope (execution data, absent on
// store-served jobs) and the SSE heartbeat that keeps idle streams
// alive through proxies and slow consumers.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dart/internal/obs"
	"dart/internal/progs"
)

// explainEnv is the explain subset of the job envelope.
type explainEnv struct {
	ID      string             `json:"id"`
	State   string             `json:"state"`
	Cached  bool               `json:"cached"`
	Explain *obs.ExplainReport `json:"explain"`
}

func decodeExplainEnv(t *testing.T, body string) explainEnv {
	t.Helper()
	var env explainEnv
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("envelope: %v\n%s", err, body)
	}
	return env
}

// TestJobEnvelopeCarriesExplain: a freshly executed job's envelope
// resolves the search's coverage explanation — every branch direction
// covered or exactly one reason — while a store-served resubmission
// (which never executed) carries none, mirroring the profile rule.
func TestJobEnvelopeCarriesExplain(t *testing.T) {
	_, ts := newHTTPService(t, Config{})

	id := submitOne(t, ts.URL)
	resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=30")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: %d\n%s", resp.StatusCode, body)
	}
	env := decodeExplainEnv(t, body)
	if env.State != "done" || env.Explain == nil {
		t.Fatalf("fresh job envelope: state=%q explain=%v", env.State, env.Explain)
	}
	rep := env.Explain
	if rep.Directions == 0 || rep.Directions%2 != 0 {
		t.Fatalf("direction universe = %d", rep.Directions)
	}
	sum := rep.Covered
	for _, n := range rep.Buckets {
		sum += n
	}
	if sum != rep.Directions {
		t.Errorf("accounting leak: covered %d + buckets = %d, want %d (buckets %v)",
			rep.Covered, sum, rep.Directions, rep.Buckets)
	}

	// Identical resubmission: served from the store, no explain.
	resp, body = post(t, ts.URL+"/jobs?runs=100", progs.Section21)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached POST: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil || !sub.Cached {
		t.Fatalf("cached submit: %v\n%s", err, body)
	}
	_, body = get(t, ts.URL+"/jobs/"+sub.ID)
	if env := decodeExplainEnv(t, body); !env.Cached || env.Explain != nil {
		t.Fatalf("cached envelope: cached=%v explain=%+v", env.Cached, env.Explain)
	}
}

// TestJobSSEHeartbeat: while a job stream has nothing to say, the
// server emits ": keep-alive" SSE comments at the configured cadence,
// so idle connections survive proxy timeouts; the terminal done event
// still arrives afterward.  A slow consumer only delays itself — the
// comment lines are valid SSE that clients must ignore.
func TestJobSSEHeartbeat(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1, Heartbeat: 30 * time.Millisecond})
	svc.beforeRun = func(j *Job) { g.hold(j) }
	defer g.release()

	id := submitOne(t, ts.URL)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type line struct{ text string }
	lines := make(chan line, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- line{sc.Text()}
		}
	}()

	// The held job streams no events after the initial state, so the
	// next traffic must be heartbeats.  Slow-consume deliberately: read
	// with pauses and require at least two beats.
	beats, sawDone := 0, false
	deadline := time.After(10 * time.Second)
collect:
	for beats < 2 {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before two heartbeats")
			}
			if strings.HasPrefix(l.text, ": keep-alive") {
				beats++
				time.Sleep(10 * time.Millisecond)
			}
		case <-deadline:
			break collect
		}
	}
	if beats < 2 {
		t.Fatalf("saw %d heartbeats within 10s, want >= 2", beats)
	}

	g.release()
	deadline = time.After(30 * time.Second)
	for !sawDone {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("stream ended without a done event")
			}
			if l.text == "event: done" {
				sawDone = true
			}
		case <-deadline:
			t.Fatal("no done event within 30s of release")
		}
	}
}
