package serve

// Corpus-backed persistence tests: a restarted service must serve
// byte-identical cached reports from the disk spill, and a store miss
// with intact function entries must answer through the audit's corpus
// fast path — in both cases indistinguishable (in report bytes) from a
// fresh run.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dart/internal/corpus"
	"dart/internal/progs"
)

// TestRestartServesFromCorpusDisk is the spill's core guarantee: stop
// the service, start a new one on the same corpus dir, and an identical
// submission is served from disk with the exact bytes the pre-restart
// submission produced.
func TestRestartServesFromCorpusDisk(t *testing.T) {
	dir := t.TempDir()
	c1, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Corpus: c1})
	j1, err := s1.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	b1, cached := j1.Report()
	if cached {
		t.Fatal("first submission claims cached")
	}
	s1.Drain(5 * time.Second)

	c2, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Corpus: c2})
	defer s2.Drain(time.Second)
	j2, err := s2.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	b2, cached := j2.Report()
	if !cached {
		t.Fatal("post-restart submission was not served from the spill")
	}
	if src := j2.envelope().CacheSource; src != cacheSourceDisk {
		t.Errorf("cache source %q, want %q", src, cacheSourceDisk)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("restart changed the report bytes:\npre:  %s\npost: %s", b1, b2)
	}
	if got := s2.Gauges()["jobs_store_disk_hits"]; got != 1 {
		t.Errorf("jobs_store_disk_hits = %v, want 1", got)
	}

	// The disk hit was promoted into the LRU: a third identical
	// submission is a plain memory hit.
	j3, err := s2.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j3)
	if src := j3.envelope().CacheSource; src != cacheSourceMemory {
		t.Errorf("promoted hit source %q, want %q", src, cacheSourceMemory)
	}
}

// TestRestartCorpusFastPath removes the report spill but keeps the
// function entries: the job must re-execute (store miss), answer every
// function from the corpus (distilled-suite replay), and still produce
// byte-identical report bytes.
func TestRestartCorpusFastPath(t *testing.T) {
	dir := t.TempDir()
	c1, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Corpus: c1})
	j1, err := s1.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	b1, _ := j1.Report()
	s1.Drain(5 * time.Second)

	// Drop the spilled reports; the per-function entries survive.
	if err := os.RemoveAll(filepath.Join(dir, "reports")); err != nil {
		t.Fatal(err)
	}

	c2, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Corpus: c2})
	defer s2.Drain(time.Second)
	j2, err := s2.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	b2, cached := j2.Report()
	if cached {
		t.Fatal("store hit despite the spill being removed")
	}
	env := j2.envelope()
	if env.CorpusHits == 0 {
		t.Error("no corpus hits: the warm fast path never fired")
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("warm re-execution changed the report bytes:\ncold: %s\nwarm: %s", b1, b2)
	}
}
