// Package serve turns the whole-library audit into a long-running
// service: audit-as-a-service.  POST a MiniC program (or name a
// registered library) and get a job id; a bounded queue feeds a fixed
// pool of executors, each running one job — a fault-tolerant audit of
// every function of the submitted program (package audit, PR 1) — under
// per-job panic isolation, a per-job wall-clock deadline, and a bounded
// retry-with-backoff policy that degrades a persistently faulting job
// to an honest partial report instead of failing it.
//
// The robustness contract, in order of importance:
//
//   - One poisoned job can never take down the service or its
//     neighbours: executor faults are recovered per attempt, deadlines
//     are per job, and the report always says what was and was not
//     covered (Stopped/StopReason, mirroring the per-search
//     Report.Stopped semantics of PR 1).
//   - Memory is bounded everywhere: the queue has a fixed depth (full
//     means 429 + Retry-After, never an unbounded backlog), the result
//     store and the completed-job history are capped with counted LRU
//     eviction, and job sources/IR are released the moment a job
//     finishes.
//   - Shutdown is graceful: Drain stops admission, lets in-flight and
//     queued jobs finish, and at the drain deadline checkpoints the
//     rest — cancelling their searches so they complete with honest
//     partial reports — before returning.
//
// Reports contain only deterministic fields (no wall-clock data), so a
// submission with the same (source, seed, options) always produces
// byte-identical report bytes — which is what lets the bounded
// content-addressed result store serve repeat submissions from cache,
// marked cached but provably indistinguishable from a fresh run.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dart/internal/audit"
	"dart/internal/concolic"
	"dart/internal/corpus"
	"dart/internal/iface"
	"dart/internal/ir"
	"dart/internal/machine"
	"dart/internal/obs"
	"dart/internal/parser"
	"dart/internal/sema"
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth   = 64
	DefaultJobTimeout   = 60 * time.Second
	DefaultDrainTimeout = 10 * time.Second
	DefaultMaxBody      = 1 << 20
	DefaultHistoryCap   = 512
	DefaultAuditRuns    = 1000
	DefaultMaxWaiters   = 256
	defaultMaxRetries   = 2
	defaultRetryBackoff = 25 * time.Millisecond
	// DefaultHeartbeat is the keep-alive interval on streaming responses
	// (GET /jobs/{id} as SSE): a comment frame every interval of idleness
	// keeps proxies and slow consumers from reaping a healthy stream.
	DefaultHeartbeat = 15 * time.Second
)

// Config configures the job service.
type Config struct {
	// QueueDepth bounds the job queue (default 64).  A full queue
	// rejects submissions with ErrQueueFull — load is shed at admission,
	// memory never grows with traffic.
	QueueDepth int
	// Executors is the audit-executor pool size (default GOMAXPROCS):
	// how many jobs run concurrently.  Each job's audit itself fans its
	// functions over max(1, GOMAXPROCS/Executors) audit workers, so the
	// service respects one total CPU budget.
	Executors int
	// JobTimeout is the per-job wall-clock deadline (default 60s;
	// negative disables).  A job that exceeds it is checkpointed: its
	// in-flight searches are cancelled and the job completes with a
	// partial report marked Stopped/StopReason "deadline".
	JobTimeout time.Duration
	// DrainTimeout bounds Drain when the caller passes none (default 10s).
	DrainTimeout time.Duration
	// MaxBody caps the POST /jobs request body (default 1 MiB); larger
	// submissions are refused with 413.
	MaxBody int64
	// StoreCap bounds the content-addressed result store in entries
	// (0 = DefaultStoreCap, negative = caching off).
	StoreCap int
	// Corpus, when non-nil, makes the service incremental across
	// restarts: finished job reports spill to the corpus's reports/
	// area (an in-memory store miss re-loads and serves byte-identical
	// bytes), and every job's audit runs with the corpus attached —
	// unchanged functions replay their distilled suites and the
	// persistent solve cache pre-answers repeated constraint systems.
	Corpus *corpus.Corpus
	// HistoryCap bounds how many completed job records are retained for
	// GET /jobs/{id} (default 512); older completed jobs are evicted in
	// completion order.
	HistoryCap int
	// AuditRuns is the per-function run budget for submissions that do
	// not specify one (default 1000, the paper's oSIP budget).
	AuditRuns int
	// MaxRuns caps the per-function run budget a submission may request
	// (0 = no cap beyond the int range).
	MaxRuns int
	// MaxRetries bounds the retry-with-backoff policy for isolated
	// executor faults (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt (default 25ms).
	RetryBackoff time.Duration
	// Libraries maps registered library names to their MiniC sources, so
	// POST /jobs?lib=name audits a built-in without shipping its source.
	Libraries map[string]string
	// Sink receives the service's job-lifecycle events and every
	// per-search event of every job, each tagged with its job id.
	// Usually the ops server's Sink().  May be nil.
	Sink obs.Sink
	// MaxWaiters bounds the total number of blocking GET /jobs/{id}
	// completion waiters — long-polls and SSE streams — held open at
	// once (default 256; negative disables waiting entirely).  Beyond
	// the cap, wait requests degrade to 429 so slow readers cannot pin
	// unbounded handler goroutines.
	MaxWaiters int
	// Heartbeat is the keep-alive interval for streaming responses
	// (default DefaultHeartbeat; negative disables): an SSE comment
	// frame is emitted after every interval of idleness while a stream
	// waits on job completion.
	Heartbeat time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.Executors <= 0 {
		out.Executors = runtime.GOMAXPROCS(0)
	}
	if out.JobTimeout == 0 {
		out.JobTimeout = DefaultJobTimeout
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = DefaultDrainTimeout
	}
	if out.MaxBody <= 0 {
		out.MaxBody = DefaultMaxBody
	}
	if out.StoreCap == 0 {
		out.StoreCap = DefaultStoreCap
	}
	if out.HistoryCap <= 0 {
		out.HistoryCap = DefaultHistoryCap
	}
	if out.AuditRuns <= 0 {
		out.AuditRuns = DefaultAuditRuns
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = defaultMaxRetries
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = defaultRetryBackoff
	}
	if out.MaxWaiters == 0 {
		out.MaxWaiters = DefaultMaxWaiters
	}
	if out.Heartbeat == 0 {
		out.Heartbeat = DefaultHeartbeat
	}
	return out
}

// Submission is one job request.
type Submission struct {
	// Source is the MiniC program to audit; empty when Lib names a
	// registered library instead.
	Source string
	// Lib names a registered library (Config.Libraries).
	Lib string
	// Seed drives the audit (function i runs with Seed+i); default 1.
	Seed int64
	// Runs is the per-function run budget (0 = Config.AuditRuns).
	Runs int
	// Depth is the calls-per-run depth parameter (0 = 1).
	Depth int
	// Random selects the pure random-testing baseline.
	Random bool
	// FnTimeout is an optional per-function deadline inside the job.
	// Reports produced under a tripped per-function deadline are partial
	// and therefore never cached.
	FnTimeout time.Duration
}

// Admission errors.
var (
	// ErrQueueFull: the bounded queue is at capacity; retry later (HTTP
	// 429 + Retry-After).
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining: the service is shutting down and admits no new work
	// (HTTP 503 + Retry-After).
	ErrDraining = errors.New("service draining")
)

// BadSubmissionError wraps a submission the service refused for its
// content (unknown library, compile failure); HTTP 400.
type BadSubmissionError struct{ Reason string }

func (e *BadSubmissionError) Error() string { return e.Reason }

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.  A job always reaches StateDone — there is no
// failed state; failure modes degrade to a done job whose report is
// partial and whose StopReason says why (DESIGN.md maps these states to
// the audit package's supervision verdicts).
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
)

// Job is one submission's record.
type Job struct {
	// ID is the service-assigned job id ("j1", "j2", ...).
	ID string

	svc  *Service
	spec Submission
	key  string // content-address of (source, seed, options)

	// compiled program, released on completion to keep memory bounded.
	prog *ir.Prog
	sem  *sema.Program

	// done is closed when the job reaches StateDone.
	done chan struct{}
	// cancel is closed (once) to checkpoint the job: deadline or drain.
	cancel    chan struct{}
	cancelled bool

	mu         sync.Mutex
	state      JobState
	cached     bool
	cacheSrc   string // where a cached report came from: "store"/"corpus-disk"
	corpusHits int    // functions this job answered from the corpus fast path
	report     []byte // deterministic report JSON, set at completion
	// profile is the job's merged search-cost profile plus its queue
	// wait, set at completion.  It lives on the job envelope only —
	// never inside the cacheable report, which must stay wall-clock
	// free (see report.go) — so cache-served jobs have none.
	profile *obs.ProfileSnapshot
	// explain is the job's resolved coverage explanation — every branch
	// direction of the submitted program accounted covered or carrying
	// exactly one "why not" reason.  Resolved at completion against the
	// job's compiled program (before its release) and served on the job
	// envelope; cache-served jobs have none.
	explain    *obs.ExplainReport
	errMsg     string
	stopReason string // "", "deadline", "drain", "internal-fault"
	retries    int
	created    time.Time
	started    time.Time
	finished   time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job completes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Report returns the completed report bytes (nil before StateDone) and
// whether they were served from the content-addressed store.
func (j *Job) Report() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.cached
}

// StopReason returns why the job was cut short ("" = it ran to its
// natural end).
func (j *Job) StopReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopReason
}

// noteStop records the first checkpoint reason and cancels the job's
// in-flight searches.  Later reasons lose the race and are dropped.
func (j *Job) noteStop(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled {
		return
	}
	j.cancelled = true
	j.stopReason = reason
	close(j.cancel)
}

// Service is the audit-as-a-service layer: bounded queue, executor
// pool, result store.
type Service struct {
	cfg   Config
	sink  obs.Sink // guarded: a panicking observer cannot hurt the service
	store *store

	mu       sync.RWMutex
	draining bool
	queue    chan *Job
	jobs     map[string]*Job
	order    []string // live job ids in admission order
	history  []string // completed job ids in completion order (eviction)
	nextID   uint64

	running   int64 // jobs currently executing (under mu)
	drainKill chan struct{}
	wg        sync.WaitGroup

	// waiters counts blocking GET /jobs/{id} completion waiters
	// (long-polls plus SSE streams) held open across all jobs, bounded
	// by cfg.MaxWaiters.
	waiters atomic.Int64

	// beforeRun, when non-nil, runs inside each attempt's recover
	// barrier just before the audit; tests use it to poison a job.
	beforeRun func(*Job)

	// profileSink, when non-nil, receives each completed job's cost
	// profile; RegisterOn points it at the ops server so GET /profile
	// aggregates across every submission, not just the last envelope.
	profileSink func(*obs.ProfileSnapshot)
}

// New starts a service: the executor pool is live on return.
func New(cfg Config) *Service {
	c := cfg.withDefaults()
	s := &Service{
		cfg:       c,
		sink:      obs.Guarded(c.Sink),
		store:     newStore(c.StoreCap, c.Corpus),
		queue:     make(chan *Job, c.QueueDepth),
		jobs:      map[string]*Job{},
		drainKill: make(chan struct{}),
	}
	for i := 0; i < c.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// emit sends a lifecycle event to the sink (nil-safe).
func (s *Service) emit(ev obs.Event) {
	if s.sink != nil {
		s.sink.Event(ev)
	}
}

// Submit admits one job: resolve and compile the source, answer from
// the result store when the identical (source, seed, options) has
// already been audited, otherwise enqueue.  It never blocks: a full
// queue is ErrQueueFull, a draining service ErrDraining.
func (s *Service) Submit(sub Submission) (*Job, error) {
	src := sub.Source
	if sub.Lib != "" {
		reg, ok := s.cfg.Libraries[sub.Lib]
		if !ok {
			s.reject("bad-request")
			return nil, &BadSubmissionError{Reason: fmt.Sprintf("unknown library %q", sub.Lib)}
		}
		src = reg
	}
	if src == "" {
		s.reject("bad-request")
		return nil, &BadSubmissionError{Reason: "empty submission: provide a MiniC source body or ?lib=name"}
	}
	if sub.Seed == 0 {
		sub.Seed = 1
	}
	if sub.Runs <= 0 {
		sub.Runs = s.cfg.AuditRuns
	}
	if s.cfg.MaxRuns > 0 && sub.Runs > s.cfg.MaxRuns {
		s.reject("bad-request")
		return nil, &BadSubmissionError{Reason: fmt.Sprintf("runs %d exceeds the service cap %d", sub.Runs, s.cfg.MaxRuns)}
	}
	if sub.Depth <= 0 {
		sub.Depth = 1
	}
	sub.Source = src

	prog, sem, err := compile(src)
	if err != nil {
		s.reject("bad-request")
		return nil, &BadSubmissionError{Reason: err.Error()}
	}

	key := cacheKey(src, sub.Seed, sub.Runs, sub.Depth, sub.Random, sub.FnTimeout)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject("draining")
		return nil, ErrDraining
	}
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%d", s.nextID),
		svc:     s,
		spec:    sub,
		key:     key,
		done:    make(chan struct{}),
		cancel:  make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}

	// Served from the store: the job is born completed, its report the
	// cached bytes — byte-identical to what a fresh run would produce.
	if cached, src := s.store.get(key); src != "" {
		j.state = StateDone
		j.cached = true
		j.cacheSrc = src
		j.report = cached
		j.finished = j.created
		close(j.done)
		s.admit(j)
		s.retire(j)
		s.mu.Unlock()
		s.emit(obs.Event{Kind: obs.JobQueued, Job: j.ID, Depth: len(s.queue)})
		s.emit(obs.Event{Kind: obs.JobEnd, Job: j.ID, Status: "cached"})
		return j, nil
	}

	j.prog, j.sem = prog, sem
	select {
	case s.queue <- j:
	default:
		s.nextID-- // the id was never observable
		s.mu.Unlock()
		s.reject("queue-full")
		return nil, ErrQueueFull
	}
	s.admit(j)
	depth := len(s.queue)
	s.mu.Unlock()
	s.emit(obs.Event{Kind: obs.JobQueued, Job: j.ID, Depth: depth})
	return j, nil
}

// reject emits the one JobRejected event every refused submission owes.
func (s *Service) reject(why string) {
	s.emit(obs.Event{Kind: obs.JobRejected, Status: why})
}

// admit records a job in the live tables.  Caller holds mu.
func (s *Service) admit(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

// retire appends a completed job to the bounded history, evicting the
// oldest completed records (and their ids from the order list) beyond
// HistoryCap.  Caller holds mu.
func (s *Service) retire(j *Job) {
	s.history = append(s.history, j.ID)
	for len(s.history) > s.cfg.HistoryCap {
		evict := s.history[0]
		s.history = s.history[1:]
		delete(s.jobs, evict)
		for i, id := range s.order {
			if id == evict {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// Job returns the job record for id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the live job records in admission order.
func (s *Service) Jobs() []*Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Ready implements the ops readiness probe: not ready while draining or
// while the queue is saturated, so load balancers stop routing before
// clients see 429s.
func (s *Service) Ready() (bool, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false, "draining"
	}
	if len(s.queue) >= cap(s.queue) {
		return false, "queue saturated"
	}
	return true, ""
}

// Gauges provides the service's live /metrics gauges.
func (s *Service) Gauges() map[string]float64 {
	s.mu.RLock()
	queueDepth := len(s.queue)
	queueCap := cap(s.queue)
	running := s.running
	draining := 0.0
	if s.draining {
		draining = 1
	}
	s.mu.RUnlock()
	hits, misses, evictions, diskHits := s.store.stats()
	return map[string]float64{
		"jobs_queue_depth":      float64(queueDepth),
		"jobs_queue_capacity":   float64(queueCap),
		"jobs_running":          float64(running),
		"jobs_draining":         draining,
		"jobs_store_entries":    float64(s.store.len()),
		"jobs_store_hits":       float64(hits),
		"jobs_store_misses":     float64(misses),
		"jobs_store_evictions":  float64(evictions),
		"jobs_store_disk_hits":  float64(diskHits),
		"jobs_history_retained": float64(len(s.history)),
	}
}

// Drain shuts the service down gracefully: stop admitting, let
// in-flight and queued jobs finish, and at the deadline checkpoint
// whatever is still running — their searches are cancelled and each job
// completes with an honest partial report (StopReason "drain").  Drain
// returns once every executor has exited; timeout 0 selects
// Config.DrainTimeout.  Draining twice is safe.
func (s *Service) Drain(timeout time.Duration) {
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.queue) // executors drain the backlog, then exit
	s.mu.Unlock()

	kill := time.AfterFunc(timeout, func() { close(s.drainKill) })
	s.wg.Wait()
	kill.Stop()
}

// executor is one worker of the fixed pool: pull, run, repeat, until
// the queue is closed and empty.
func (s *Service) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: deadline arm, retry loop around
// the isolated attempt, report finalization.  It never lets the job
// escape without a completed record — that is the service's core
// robustness promise.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	s.running++
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.mu.Unlock()
	s.emit(obs.Event{Kind: obs.JobStart, Job: j.ID})

	// The job's checkpoint sources: its own deadline, and the service's
	// drain kill.  Whichever fires first records the reason and cancels
	// the in-flight searches; the audit then returns quickly with honest
	// per-function Cancelled statuses.
	var deadline *time.Timer
	if s.cfg.JobTimeout > 0 {
		deadline = time.AfterFunc(s.cfg.JobTimeout, func() { j.noteStop("deadline") })
	}
	finished := make(chan struct{})
	go func() {
		select {
		case <-s.drainKill:
			j.noteStop("drain")
		case <-finished:
		}
	}()

	var res *audit.Result
	var faultMsg string
	for attempt := 0; ; attempt++ {
		r, err := s.attempt(j)
		if err == nil {
			res = r
			break
		}
		faultMsg = err.Error()
		if attempt >= s.cfg.MaxRetries || j.checkpointed() {
			break
		}
		s.emit(obs.Event{Kind: obs.JobRetry, Job: j.ID, Run: attempt + 1, Msg: faultMsg})
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		// Exponential backoff, cut short by a checkpoint: a draining
		// service must not sit out a backoff window.
		select {
		case <-time.After(s.cfg.RetryBackoff << uint(attempt)):
		case <-j.cancel:
		}
	}
	if deadline != nil {
		deadline.Stop()
	}
	close(finished)

	s.finalize(j, res, faultMsg)
}

// checkpointed reports whether the job's cancel has fired.
func (j *Job) checkpointed() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// attempt runs the job's audit once under the executor's recover
// barrier.  The audit has its own per-function isolation (PR 1); this
// barrier is the per-job line of defense above it, so even a fault in
// the audit scaffolding itself (or in report assembly) is contained to
// this job.
func (s *Service) attempt(j *Job) (res *audit.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panic: %v", r)
		}
	}()
	if s.beforeRun != nil {
		s.beforeRun(j)
	}
	fns := iface.Candidates(j.sem)
	auditJobs := runtime.GOMAXPROCS(0) / s.cfg.Executors
	if auditJobs < 1 {
		auditJobs = 1
	}
	res = audit.Run(j.prog, audit.Options{
		Toplevels: fns,
		Seed:      j.spec.Seed,
		MaxRuns:   j.spec.Runs,
		Depth:     j.spec.Depth,
		UseRandom: j.spec.Random,
		Timeout:   j.spec.FnTimeout,
		Jobs:      auditJobs,
		Workers:   1,
		Cancel:    j.cancel,
		Observer:  obs.WithJob(j.ID, s.sink),
		// Every job gets a cost profile: it rides the job envelope
		// (wall-clock is fine there), and audits are long enough that
		// the profiler's per-run clock reads are noise.
		CollectProfile: true,
		// And a coverage explanation: the resolved "why not covered"
		// ledger is deterministic data, but it rides the envelope (not
		// the cacheable report) because it is a derived view, not the
		// report's identity.
		CollectExplain: true,
		// The incremental corpus, when configured: unchanged functions
		// replay their distilled suites instead of re-searching, and
		// repeated constraint systems hit the persistent solve cache.
		// The result is byte-identical either way (tryWarm's gates),
		// so the report stays cacheable; hit counts ride the envelope.
		Corpus: s.cfg.Corpus,
	})
	return res, nil
}

// finalize turns the attempt outcome into the job's completed record:
// build the deterministic report, cache it when cacheable, release the
// job's compiled program, retire the record into the bounded history,
// and announce the end.
func (s *Service) finalize(j *Job, res *audit.Result, faultMsg string) {
	j.mu.Lock()
	stopReason := j.stopReason
	j.mu.Unlock()

	rep := buildReport(res, stopReason, faultMsg)
	bytes := rep.marshal()

	status := "done"
	switch {
	case rep.StopReason != "":
		status = rep.StopReason
	case rep.Buggy > 0:
		status = "bugs"
	}
	if cacheable(rep) {
		s.store.put(j.key, bytes)
	}

	// The job's cost profile: the audit's merged per-search profile
	// plus a synthesized job_queue_wait phase (admission → executor
	// pickup) — envelope-only data, never part of the cacheable report.
	profile := &obs.ProfileSnapshot{}
	if res != nil && res.Profile != nil {
		profile.Merge(res.Profile)
	}
	j.mu.Lock()
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()
	profile.Merge(&obs.ProfileSnapshot{Phases: []obs.PhaseProfile{
		{Phase: obs.SpanJobQueueWait, Count: 1, Nanos: queueWait.Nanoseconds()},
	}})

	// The job's coverage explanation, resolved while the compiled
	// program (the site universe) is still alive — the release below is
	// exactly why this cannot be deferred to request time.
	var explain *obs.ExplainReport
	if res != nil && res.Explain != nil && j.prog != nil {
		explain = concolic.ResolveExplain(j.prog, res.Explain, res.Coverage)
	}

	s.mu.Lock()
	s.running--
	j.mu.Lock()
	j.state = StateDone
	j.report = bytes
	if res != nil {
		j.corpusHits = res.CorpusHits
	}
	j.errMsg = faultMsg
	j.profile = profile
	j.explain = explain
	j.finished = time.Now()
	j.prog, j.sem = nil, nil // release: memory stays bounded
	j.mu.Unlock()
	s.retire(j)
	s.mu.Unlock()
	close(j.done)

	if s.profileSink != nil {
		s.profileSink(profile)
	}

	ev := obs.Event{Kind: obs.JobEnd, Job: j.ID, Status: status, Runs: rep.TotalRuns}
	ev.Bugs = 0
	for i := range rep.Entries {
		ev.Bugs += len(rep.Entries[i].Bugs)
	}
	s.emit(ev)
}

// acquireWaiter reserves one slot of the bounded completion-waiter
// pool (long-poll and SSE handlers).  It returns false — the caller
// must degrade to an immediate response — when the pool is exhausted
// or waiting is disabled.
func (s *Service) acquireWaiter() bool {
	if s.cfg.MaxWaiters < 0 {
		return false
	}
	if s.waiters.Add(1) > int64(s.cfg.MaxWaiters) {
		s.waiters.Add(-1)
		return false
	}
	return true
}

// releaseWaiter returns a slot taken by acquireWaiter.
func (s *Service) releaseWaiter() { s.waiters.Add(-1) }

// Profile returns the job's completed cost profile (nil while running
// and for cache-served jobs).
func (j *Job) Profile() *obs.ProfileSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile
}

// Explain returns the job's resolved coverage explanation (nil while
// running and for cache-served jobs).
func (j *Job) Explain() *obs.ExplainReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.explain
}

// cacheable reports whether rep may be served to future identical
// submissions.  Only full, fault-free runs qualify: a report shaped by
// a deadline, a drain, or an internal fault is honest but not
// deterministic, so caching it would break the byte-identity guarantee.
func cacheable(rep *JobReport) bool {
	return rep.StopReason == "" && rep.TimedOut == 0 && rep.Cancelled == 0 && rep.Faulted == 0
}

// compile mirrors dart.Compile for the service (the root package sits
// above this one): parse, type-check against the standard library
// signatures, lower, optimize.
func compile(src string) (*ir.Prog, *sema.Program, error) {
	file, err := parser.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	sem, err := sema.Check(file, machine.StdLibSigs())
	if err != nil {
		return nil, nil, fmt.Errorf("check: %w", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		return nil, nil, fmt.Errorf("compile: %w", err)
	}
	ir.Optimize(prog)
	return prog, sem, nil
}
