// The job report: the deterministic, cacheable rendering of one job's
// audit outcome.  Every field is a pure function of (source, seed,
// options) — statuses, run counts, bugs with their replayable inputs,
// branch coverage, completeness — and wall-clock data is deliberately
// absent, so equal submissions marshal to byte-identical reports and
// the content-addressed store can serve one job's bytes as another's
// result.  Timing lives on the job envelope (GET /jobs/{id}), never in
// the report.
package serve

import (
	"encoding/json"

	"dart/internal/audit"
)

// JobReport is the deterministic outcome of one job.
type JobReport struct {
	// Functions is how many toplevel functions the audit covered.
	Functions int `json:"functions"`
	// TotalRuns sums the executions spent across the job.
	TotalRuns int `json:"total_runs"`
	// Per-status function counts (the audit package's verdicts).
	OK        int `json:"ok"`
	Buggy     int `json:"buggy"`
	TimedOut  int `json:"timed_out"`
	Faulted   int `json:"faulted"`
	Cancelled int `json:"cancelled"`
	// Aggregate branch coverage over the whole submitted program.
	CoverageCovered int `json:"branch_directions_covered"`
	CoverageTotal   int `json:"branch_directions_total"`
	// Stopped is true when the job was cut short (deadline, drain, or a
	// persistent executor fault) and the report is therefore partial;
	// StopReason says why — the job-level mirror of the per-search
	// Report.Stopped/StopReason semantics.
	Stopped    bool   `json:"stopped"`
	StopReason string `json:"stop_reason,omitempty"`
	// Error carries the final fault description when StopReason is
	// "internal-fault" (the retries were exhausted).
	Error string `json:"error,omitempty"`
	// Entries has one record per function, in sorted function order.
	Entries []JobEntry `json:"entries"`
}

// JobEntry is one function's outcome inside a job.
type JobEntry struct {
	Function string `json:"function"`
	// Status is the audit supervision verdict (ok / bugs / timeout /
	// internal-fault / cancelled).
	Status string `json:"status"`
	Runs   int    `json:"runs"`
	// StopReason is the per-search stop reason, honest under deadlines
	// and cancellation (exhausted / max-runs / first-bug / deadline /
	// cancelled / internal-error).
	StopReason string `json:"stop_reason,omitempty"`
	// SolverComplete is false when a constraint solve was abandoned on
	// budget exhaustion, degrading that search toward random testing.
	SolverComplete bool `json:"solver_complete"`
	// Err is the internal-fault description when no report exists.
	Err  string   `json:"error,omitempty"`
	Bugs []JobBug `json:"bugs"`
}

// JobBug is one distinct bug with its replayable input vector.
type JobBug struct {
	Kind   string           `json:"kind"`
	Msg    string           `json:"message"`
	Pos    string           `json:"position"`
	Run    int              `json:"run"`
	Inputs map[string]int64 `json:"inputs"`
}

// buildReport folds an audit result and the job-level stop disposition
// into the deterministic report.  res may be nil (every attempt
// faulted): the report is then empty but honest — Stopped with reason
// "internal-fault" and the final fault message.
func buildReport(res *audit.Result, stopReason, faultMsg string) *JobReport {
	rep := &JobReport{Entries: []JobEntry{}}
	if res == nil {
		rep.Stopped = true
		rep.StopReason = "internal-fault"
		rep.Error = faultMsg
		return rep
	}
	rep.Functions = res.Functions()
	rep.TotalRuns = res.TotalRuns
	rep.OK, rep.Buggy = res.OK, res.Buggy
	rep.TimedOut, rep.Faulted, rep.Cancelled = res.TimedOut, res.Faulted, res.Cancelled
	if res.Coverage != nil {
		rep.CoverageCovered = res.Coverage.Covered()
		rep.CoverageTotal = res.Coverage.Total()
	}
	if stopReason != "" && res.Cancelled > 0 {
		// The checkpoint demonstrably cut functions short; anything else
		// means the cancel raced the natural end and changed nothing.
		rep.Stopped = true
		rep.StopReason = stopReason
	}
	for _, e := range res.Entries {
		je := JobEntry{
			Function: e.Function,
			Status:   string(e.Status),
			Err:      e.Err,
			Bugs:     []JobBug{},
		}
		if e.Report != nil {
			je.Runs = e.Report.Runs
			je.StopReason = string(e.Report.Stopped)
			je.SolverComplete = e.Report.SolverComplete
			for _, b := range e.Report.Bugs {
				je.Bugs = append(je.Bugs, JobBug{
					Kind:   b.Kind.String(),
					Msg:    b.Msg,
					Pos:    b.Pos.String(),
					Run:    b.Run,
					Inputs: b.Inputs,
				})
			}
		}
		rep.Entries = append(rep.Entries, je)
	}
	return rep
}

// marshal renders the report's canonical bytes: encoding/json with the
// struct field order above and sorted map keys, so equal reports are
// equal bytes.
func (r *JobReport) marshal() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// A pure-data struct cannot fail to marshal; keep the job
		// completable anyway.
		return []byte(`{"stopped":true,"stop_reason":"internal-fault","error":"report marshal failed"}`)
	}
	return b
}
