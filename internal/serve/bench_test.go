package serve

// Jobs-per-second throughput of the service layer (BENCH_pr6.json):
// fresh measures the full admit→compile→audit→report pipeline with a
// distinct identity per job; cached measures the content-addressed
// fast path once the first report is stored.  The submitting client is
// backpressure-aware — a full queue means wait, not fail — so the
// benchmark exercises the bounded queue exactly as a well-behaved
// client would.

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"dart/internal/progs"
)

func benchJobs(b *testing.B, cached bool) {
	s := New(Config{Executors: runtime.GOMAXPROCS(0), QueueDepth: 256, StoreCap: 4096, HistoryCap: 16})
	defer s.Drain(time.Minute)
	b.ReportAllocs()
	b.ResetTimer()

	var jobs []*Job
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		if cached {
			seed = 1
		}
		for {
			j, err := s.Submit(Submission{Source: progs.Section21, Seed: seed, Runs: 100})
			if err == nil {
				jobs = append(jobs, j)
				break
			}
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(time.Millisecond)
				continue
			}
			b.Fatal(err)
		}
	}
	for _, j := range jobs {
		<-j.Done()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "jobs/s")
	}
}

func BenchmarkJobsThroughput(b *testing.B) {
	b.Run("fresh", func(b *testing.B) { benchJobs(b, false) })
	b.Run("cached", func(b *testing.B) { benchJobs(b, true) })
}
