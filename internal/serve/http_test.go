package serve

// HTTP-surface tests over a real (httptest) server: the full
// admission-to-result path, every backpressure status code (429, 503,
// 413), the readiness probe, and the rejection counters on /metrics.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dart/internal/ops"
	"dart/internal/progs"
)

// newHTTPService wires a job service onto an ops server exactly as
// cmd/dart's service mode does, served by httptest.
func newHTTPService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	srv := ops.NewServer(ops.Config{Mode: "serve"})
	cfg.Sink = srv.Sink()
	svc := New(cfg)
	svc.RegisterOn(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Drain(time.Second)
	})
	return svc, ts
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestHTTPSubmitAndFetch(t *testing.T) {
	_, ts := newHTTPService(t, Config{})

	resp, body := post(t, ts.URL+"/jobs?runs=200", progs.Section21)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	if sub.ID == "" || sub.Cached {
		t.Fatalf("submit response: %+v", sub)
	}

	var env struct {
		State          string  `json:"state"`
		Cached         bool    `json:"cached"`
		ElapsedSeconds float64 `json:"elapsed_seconds"`
		Report         *struct {
			Buggy   int `json:"buggy"`
			Entries []struct {
				Function string `json:"function"`
				Bugs     []struct {
					Inputs map[string]int64 `json:"inputs"`
				} `json:"bugs"`
			} `json:"entries"`
		} `json:"report"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d\n%s", sub.ID, resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("envelope: %v\n%s", err, body)
		}
		if env.State == "done" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if env.State != "done" || env.Report == nil || env.Report.Buggy != 1 {
		t.Fatalf("final envelope:\n%s", body)
	}
	// The paper's bug with its replayable input, end to end over HTTP.
	found := false
	for _, e := range env.Report.Entries {
		if e.Function == "h" && len(e.Bugs) == 1 && e.Bugs[0].Inputs["d0.x"] == 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("Section 2.1 bug missing from the served report:\n%s", body)
	}

	// The identical resubmission answers 200 + cached from the store.
	resp, body = post(t, ts.URL+"/jobs?runs=200", progs.Section21)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached POST: %d\n%s", resp.StatusCode, body)
	}
	var cachedSub struct {
		Cached bool   `json:"cached"`
		State  string `json:"state"`
	}
	if err := json.Unmarshal([]byte(body), &cachedSub); err != nil {
		t.Fatal(err)
	}
	if !cachedSub.Cached || cachedSub.State != "done" {
		t.Errorf("cached submit response: %+v", cachedSub)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1, QueueDepth: 1})
	defer g.release()
	svc.beforeRun = func(j *Job) { g.hold(j) }

	// Fill the single executor and the single queue slot, then the next
	// submission must shed with 429 + Retry-After.
	deadline := time.Now().Add(10 * time.Second)
	var got429 bool
	var resp *http.Response
	var body string
	for i := 0; !got429; i++ {
		resp, body = post(t, fmt.Sprintf("%s/jobs?seed=%d&runs=50", ts.URL, i+1), progs.Section21)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("POST %d: %d\n%s", i, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// Saturation flips readiness to 503 with a reason.
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "queue saturated") {
		t.Errorf("/readyz while saturated: %d %q", resp.StatusCode, body)
	}
	// Liveness stays green: the process is healthy, just busy.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while saturated: %d", resp.StatusCode)
	}

	// The shed shows up in the Prometheus exposition.
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "dart_jobs_rejected_total") {
		t.Errorf("/metrics missing dart_jobs_rejected_total:\n%.600s", metrics)
	}
	if strings.Contains(metrics, "dart_jobs_rejected_total 0\n") {
		t.Errorf("rejected counter still zero after a 429:\n%.600s", metrics)
	}
	if !strings.Contains(metrics, "dart_jobs_queue_capacity 1") {
		t.Errorf("service gauges missing from /metrics:\n%.600s", metrics)
	}
}

func TestHTTPBodyCap413(t *testing.T) {
	_, ts := newHTTPService(t, Config{MaxBody: 64})
	resp, body := post(t, ts.URL+"/jobs", strings.Repeat("x", 1024))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "64") {
		t.Errorf("413 body does not state the cap: %q", body)
	}
	// Under the cap still works (it fails compile, but is read in full).
	resp, _ = post(t, ts.URL+"/jobs", "int f(")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("under-cap bad program: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPDraining503(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1})
	svc.beforeRun = func(j *Job) { g.hold(j) }

	if resp, _ := post(t, ts.URL+"/jobs?runs=50", progs.Section21); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed submission: %d", resp.StatusCode)
	}
	drained := make(chan struct{})
	go func() { svc.Drain(50 * time.Millisecond); close(drained) }()
	// Draining flips on immediately; the drain itself finishes when the
	// kill checkpoint frees the gated job.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ready, why := svc.Ready(); !ready && why == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never entered draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := post(t, ts.URL+"/jobs", progs.Section21)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining: %d %q", resp.StatusCode, body)
	}
	<-drained
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPService(t, Config{Libraries: map[string]string{"sec21": progs.Section21}})

	cases := []struct {
		name, url, body string
	}{
		{"bad seed", "/jobs?seed=zzz", progs.Section21},
		{"bad runs", "/jobs?runs=many", progs.Section21},
		{"bad depth", "/jobs?depth=-x", progs.Section21},
		{"bad random", "/jobs?random=perhaps", progs.Section21},
		{"bad fn_timeout", "/jobs?fn_timeout=later", progs.Section21},
		{"unknown lib", "/jobs?lib=nope", ""},
		{"empty submission", "/jobs", ""},
		{"compile failure", "/jobs", "int f( {"},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d\n%s", tc.name, resp.StatusCode, body)
		}
	}

	resp, _ := get(t, ts.URL+"/jobs/j999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /jobs: %d, want 405", dresp.StatusCode)
	}
}

func TestHTTPListAndLibrary(t *testing.T) {
	_, ts := newHTTPService(t, Config{Libraries: map[string]string{"sec21": progs.Section21}})

	resp, body := post(t, ts.URL+"/jobs?lib=sec21&runs=100", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("lib submit: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.Unmarshal([]byte(body), &sub)

	resp, body = get(t, ts.URL+"/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs: %d", resp.StatusCode)
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
		QueueCap int `json:"queue_capacity"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list: %v\n%s", err, body)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID || list.QueueCap != DefaultQueueDepth {
		t.Errorf("list response:\n%s", body)
	}
}

// TestHTTPEventsCarryJobTags: the /events ring serves job-tagged
// lifecycle events, so one NDJSON stream multiplexes every job.
func TestHTTPEventsCarryJobTags(t *testing.T) {
	_, ts := newHTTPService(t, Config{})

	resp, body := post(t, ts.URL+"/jobs?runs=100", progs.Section21)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.Unmarshal([]byte(body), &sub)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, b := get(t, ts.URL+"/jobs/"+sub.ID); strings.Contains(b, `"state": "done"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, events := get(t, ts.URL+"/events")
	var sawQueued, sawEnd, sawSearch bool
	for _, line := range strings.Split(events, "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Kind string `json:"ev"`
			Job  string `json:"job"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue
		}
		if ev.Job != sub.ID {
			continue
		}
		switch ev.Kind {
		case "job-queued":
			sawQueued = true
		case "job-end":
			sawEnd = true
		case "run-start", "audit-fn-start":
			sawSearch = true
		}
	}
	if !sawQueued || !sawEnd {
		t.Errorf("lifecycle events missing from /events (queued=%v end=%v):\n%.600s", sawQueued, sawEnd, events)
	}
	if !sawSearch {
		t.Errorf("per-search events not tagged with the job id:\n%.600s", events)
	}
}
